package defender_test

import (
	"errors"
	"math/big"
	"testing"

	defender "github.com/defender-game/defender"
)

func TestGameValueFacade(t *testing.T) {
	// C5 at k=1: the regular-graph equilibrium value 2/5, via the LP.
	value, err := defender.GameValue(defender.CycleGraph(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if value.Cmp(big.NewRat(2, 5)) != 0 {
		t.Errorf("value = %v, want 2/5", value)
	}
	if _, err := defender.GameValue(defender.CompleteGraph(30), 6); !errors.Is(err, defender.ErrValueTooLarge) {
		t.Errorf("err = %v, want ErrValueTooLarge", err)
	}
}

func TestMaxminGuaranteeMatchesEquilibrium(t *testing.T) {
	g := defender.GridGraph(2, 3)
	ne, err := defender.Solve(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	guarantee, err := defender.MaxminGuarantee(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ne.DefenderGain().Cmp(guarantee) != 0 {
		t.Errorf("gain %v != guarantee %v", ne.DefenderGain(), guarantee)
	}
	// Metrics.
	if ne.ProtectionRatio().Cmp(big.NewRat(2, 3)) != 0 {
		t.Errorf("protection = %v, want 2/3", ne.ProtectionRatio())
	}
	sum := new(big.Rat).Add(ne.DefenderGain(), ne.Escapes())
	if sum.Cmp(big.NewRat(5, 1)) != 0 {
		t.Errorf("gain + escapes = %v, want ν", sum)
	}
}

func TestLearningFacades(t *testing.T) {
	g := defender.StarGraph(5)
	want, err := defender.GameValue(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := defender.FictitiousPlay(g, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Brackets(want) {
		t.Errorf("FP bounds [%v, %v] miss %v", fp.LowerBound, fp.UpperBound, want)
	}
	mw, err := defender.MultiplicativeWeights(g, 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantF, _ := want.Float64()
	if mw.LowerBound > wantF+1e-9 || mw.UpperBound < wantF-1e-9 {
		t.Errorf("MW bounds [%v, %v] miss %v", mw.LowerBound, mw.UpperBound, wantF)
	}
}

func TestWeightedDamageFacade(t *testing.T) {
	g := defender.CycleGraph(6)
	weights := make([]*big.Rat, 6)
	for i := range weights {
		weights[i] = big.NewRat(1, 1)
	}
	damage, defense, err := defender.WeightedDamageValue(g, 2, weights)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform weights: damage = 1 − value = 1 − 2/3 = 1/3.
	if damage.Cmp(big.NewRat(1, 3)) != 0 {
		t.Errorf("damage = %v, want 1/3", damage)
	}
	if defense.SupportSize() == 0 {
		t.Error("empty defense support")
	}
}

func TestFictitiousPlayTupleFacade(t *testing.T) {
	g := defender.CycleGraph(5)
	value, err := defender.GameValue(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := defender.FictitiousPlayTuple(g, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Brackets(value) {
		t.Errorf("bounds [%v, %v] miss %v", res.LowerBound, res.UpperBound, value)
	}
}

func TestComputeRegretFacade(t *testing.T) {
	g := defender.GridGraph(2, 3)
	ne, err := defender.Solve(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := defender.ComputeRegret(ne.Game, ne.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.IsEquilibrium() {
		t.Error("equilibrium has nonzero regret")
	}
}

func TestSolveAnyFacade(t *testing.T) {
	// Small-world graph: no structural family applies; the LP route must
	// deliver a verified equilibrium.
	g := defender.CycleGraph(7)
	ne, family, err := defender.SolveAny(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if family != "lp-minimax" {
		t.Errorf("family = %q", family)
	}
	if err := defender.VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
}

func TestRegretMatchingFacade(t *testing.T) {
	g := defender.StarGraph(5)
	res, err := defender.RegretMatching(g, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := defender.GameValue(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantF, _ := want.Float64()
	if res.LowerBound > wantF+0.05 || res.UpperBound < wantF-0.05 {
		t.Errorf("RM bounds [%.4f, %.4f] miss %.4f", res.LowerBound, res.UpperBound, wantF)
	}
}

func TestProfileSerializationFacade(t *testing.T) {
	g := defender.CycleGraph(6)
	ne, err := defender.Solve(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := defender.EncodeProfile(ne.Game, ne.Profile)
	if err != nil {
		t.Fatal(err)
	}
	gm, mp, err := defender.DecodeProfile(g, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := defender.VerifyNE(gm, mp); err != nil {
		t.Errorf("round-tripped profile fails verification: %v", err)
	}
	if gm.K() != 2 || gm.Attackers() != 3 {
		t.Error("instance parameters lost")
	}
}
