package defender_test

import (
	"fmt"

	defender "github.com/defender-game/defender"
)

// ExampleSolve computes the k-matching equilibrium of a grid network and
// prints the paper's headline quantities.
func ExampleSolve() {
	g := defender.GridGraph(3, 4) // 12 hosts, 17 links, bipartite
	ne, err := defender.Solve(g, 10 /* attackers */, 3 /* scanned links */)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("defender gain:", ne.DefenderGain().RatString())
	fmt.Println("arrest probability:", ne.HitProbability().RatString())
	fmt.Println("attacker support size:", len(ne.VPSupport))
	// Output:
	// defender gain: 5
	// arrest probability: 1/2
	// attacker support size: 6
}

// ExampleHasPureNE walks the Theorem 3.1 frontier on a cycle.
func ExampleHasPureNE() {
	g := defender.CycleGraph(6) // edge-cover number 3
	for k := 2; k <= 4; k++ {
		has, err := defender.HasPureNE(g, k)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("k=%d: %v\n", k, has)
	}
	// Output:
	// k=2: false
	// k=3: true
	// k=4: true
}

// ExampleGameValue shows the LP minimax oracle on an odd cycle, where no
// k-matching equilibrium exists but the game still has an exact value.
func ExampleGameValue() {
	value, err := defender.GameValue(defender.CycleGraph(5), 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("value:", value.RatString())
	// Output:
	// value: 2/5
}

// ExampleLift demonstrates Theorem 4.5: lifting an Edge-model matching
// equilibrium to the Tuple model multiplies the gain by exactly k.
func ExampleLift() {
	g := defender.CompleteBipartiteGraph(3, 4)
	edgeNE, err := defender.SolveEdge(g, 12)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lifted, err := defender.Lift(edgeNE, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("edge-model gain:", edgeNE.DefenderGain().RatString())
	fmt.Println("k=3 gain:", lifted.DefenderGain().RatString())
	// Output:
	// edge-model gain: 3
	// k=3 gain: 9
}

// ExampleSolveAny returns a verified equilibrium even on graphs admitting
// no k-matching equilibrium, reporting which family it used.
func ExampleSolveAny() {
	ne, family, err := defender.SolveAny(defender.PetersenGraph(), 5, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("family:", family)
	fmt.Println("gain:", ne.DefenderGain().RatString()) // 2·2·5/10
	// Output:
	// family: perfect-matching
	// gain: 2
}

// ExampleCyclePathNE computes the patrol (Path-model) equilibrium on a
// ring and its gain (k+1)·ν/n.
func ExampleCyclePathNE() {
	ne, err := defender.CyclePathNE(defender.CycleGraph(12), 8, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("patrol gain:", ne.DefenderGain().RatString())
	// Output:
	// patrol gain: 2
}

// ExampleFindPartition prints the Corollary 4.11 certificate for an even
// cycle: the alternate vertices form the independent set.
func ExampleFindPartition() {
	p, err := defender.FindPartition(defender.CycleGraph(6))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("IS:", p.IS)
	fmt.Println("VC:", p.VC)
	// Output:
	// IS: [1 3 5]
	// VC: [0 2 4]
}
