module github.com/defender-game/defender

go 1.22
