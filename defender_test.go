package defender_test

import (
	"errors"
	"math/big"
	"strings"
	"testing"

	defender "github.com/defender-game/defender"
)

// TestEndToEndBipartite walks the full public API on a bipartite instance:
// partition, solve, verify, lift/reduce, simulate.
func TestEndToEndBipartite(t *testing.T) {
	g := defender.GridGraph(3, 4)
	const nu, k = 10, 3

	p, err := defender.FindPartition(g)
	if err != nil {
		t.Fatalf("FindPartition: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("partition invalid: %v", err)
	}

	ne, err := defender.Solve(g, nu, k)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := defender.VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatalf("VerifyNE: %v", err)
	}
	if err := defender.VerifyCharacterization(ne.Game, ne.Profile); err != nil {
		t.Fatalf("VerifyCharacterization: %v", err)
	}

	// Headline linearity at the API level.
	base, err := defender.SolveEdge(g, nu)
	if err != nil {
		t.Fatalf("SolveEdge: %v", err)
	}
	want := new(big.Rat).Mul(base.DefenderGain(), big.NewRat(k, 1))
	if got := ne.DefenderGain(); got.Cmp(want) != 0 {
		t.Errorf("gain = %v, want %v = k·edge-gain", got, want)
	}

	lifted, err := defender.Lift(base, k)
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	back, err := defender.Reduce(lifted)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if back.DefenderGain().Cmp(base.DefenderGain()) != 0 {
		t.Error("round trip changed the gain")
	}

	res, err := defender.Simulate(ne.Game, ne.Profile, 5000, 1)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if z := res.ZScore(); z > 5 || z < -5 {
		t.Errorf("simulation z-score %v out of range", z)
	}
}

func TestPureAPI(t *testing.T) {
	g := defender.CycleGraph(6)
	has, err := defender.HasPureNE(g, 3)
	if err != nil || !has {
		t.Fatalf("HasPureNE(C6,3) = (%v,%v)", has, err)
	}
	gm, p, err := defender.BuildPureNE(g, 2, 3)
	if err != nil {
		t.Fatalf("BuildPureNE: %v", err)
	}
	ok, err := defender.IsPureNE(gm, p)
	if err != nil || !ok {
		t.Fatalf("IsPureNE = (%v,%v)", ok, err)
	}
	if _, _, err := defender.BuildPureNE(g, 2, 2); !errors.Is(err, defender.ErrNoPureNE) {
		t.Errorf("k=2: err = %v, want ErrNoPureNE", err)
	}
}

func TestNonExistenceErrors(t *testing.T) {
	if _, err := defender.Solve(defender.CompleteGraph(5), 2, 2); !errors.Is(err, defender.ErrNoMatchingNE) {
		t.Errorf("K5: err = %v, want ErrNoMatchingNE", err)
	}
	if _, err := defender.FindPartition(defender.CycleGraph(7)); !errors.Is(err, defender.ErrNoPartition) {
		t.Errorf("C7: err = %v, want ErrNoPartition", err)
	}
	base, err := defender.SolveEdge(defender.PathGraph(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := defender.Lift(base, 5); !errors.Is(err, defender.ErrKTooLarge) {
		t.Errorf("lift: err = %v, want ErrKTooLarge", err)
	}
}

func TestStructuralAPI(t *testing.T) {
	pm, err := defender.PerfectMatchingNE(defender.PetersenGraph(), 4, 2)
	if err != nil {
		t.Fatalf("PerfectMatchingNE: %v", err)
	}
	if err := defender.VerifyNE(pm.Game, pm.Profile); err != nil {
		t.Fatal(err)
	}
	reg, err := defender.RegularGraphEdgeNE(defender.CycleGraph(5), 3)
	if err != nil {
		t.Fatalf("RegularGraphEdgeNE: %v", err)
	}
	if err := defender.VerifyNE(reg.Game, reg.Profile); err != nil {
		t.Fatal(err)
	}
	ok, path, err := defender.HasPurePathNE(defender.CycleGraph(6), 5)
	if err != nil || !ok || len(path) != 6 {
		t.Errorf("path model: ok=%v path=%v err=%v", ok, path, err)
	}
}

func TestGraphUtilitiesAPI(t *testing.T) {
	g, err := defender.ParseGraphString("n 4\n0 1\n1 2\n2 3\n3 0\n")
	if err != nil {
		t.Fatalf("ParseGraphString: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Errorf("m = %d", g.NumEdges())
	}
	if _, err := defender.ParseGraph(strings.NewReader("bogus line\n")); err == nil {
		t.Error("bad input must fail")
	}
	ec, err := defender.MinimumEdgeCover(g)
	if err != nil || len(ec) != 2 {
		t.Errorf("MinimumEdgeCover: %v %v", ec, err)
	}
	vc, err := defender.MinimumVertexCoverBipartite(g)
	if err != nil || len(vc) != 2 {
		t.Errorf("MinimumVertexCoverBipartite: %v %v", vc, err)
	}
	fresh := defender.NewGraph(3)
	if fresh.NumVertices() != 3 {
		t.Error("NewGraph")
	}
	gm, err := defender.NewGame(g, 2, 1)
	if err != nil || gm.Attackers() != 2 {
		t.Errorf("NewGame: %v", err)
	}
}

func TestGeneratorsExported(t *testing.T) {
	cases := []struct {
		name string
		g    *defender.Graph
		n    int
	}{
		{"path", defender.PathGraph(4), 4},
		{"cycle", defender.CycleGraph(5), 5},
		{"complete", defender.CompleteGraph(4), 4},
		{"bipartite", defender.CompleteBipartiteGraph(2, 3), 5},
		{"star", defender.StarGraph(6), 6},
		{"grid", defender.GridGraph(2, 3), 6},
		{"hypercube", defender.HypercubeGraph(3), 8},
		{"petersen", defender.PetersenGraph(), 10},
		{"gnp", defender.RandomGNP(7, 0.5, 1), 7},
		{"randbip", defender.RandomBipartiteGraph(3, 4, 0.5, 1), 7},
		{"tree", defender.RandomTreeGraph(9, 1), 9},
		{"randconn", defender.RandomConnectedGraph(8, 0.2, 1), 8},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.n {
			t.Errorf("%s: n = %d, want %d", c.name, c.g.NumVertices(), c.n)
		}
	}
}
