// Learning: neither player knows any equilibrium theory — they just adapt.
// This example runs fictitious play and multiplicative weights on the Edge
// model, shows both bracketing the exact minimax value computed by the LP
// oracle, and compares against the structural k-matching prediction where
// one exists. Three completely independent routes, one number.
package main

import (
	"fmt"
	"log"

	defender "github.com/defender-game/defender"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	instances := []struct {
		name string
		g    *defender.Graph
	}{
		{"grid 2x3 (bipartite: k-matching theory applies)", defender.GridGraph(2, 3)},
		{"C5 (odd cycle: NO k-matching equilibrium exists)", defender.CycleGraph(5)},
		{"Petersen (3-regular, non-bipartite)", defender.PetersenGraph()},
	}
	for _, inst := range instances {
		fmt.Printf("== %s ==\n", inst.name)

		// Route 1: the structure-free LP oracle (exact rational).
		value, err := defender.GameValue(inst.g, 1)
		if err != nil {
			return err
		}
		fmt.Printf("LP oracle (exact minimax):        value = %s\n", value.RatString())

		// Route 2: structural equilibrium theory, where it applies.
		if ne, err := defender.Solve(inst.g, 1, 1); err == nil {
			fmt.Printf("k-matching theory:                value = %s (= k/|EC|)\n",
				ne.HitProbability().RatString())
		} else {
			fmt.Printf("k-matching theory:                not applicable (%v)\n", err)
		}

		// Route 3a: fictitious play with exact rational bounds.
		fp, err := defender.FictitiousPlay(inst.g, 6000)
		if err != nil {
			return err
		}
		lo, _ := fp.LowerBound.Float64()
		hi, _ := fp.UpperBound.Float64()
		fmt.Printf("fictitious play (6000 rounds):    value ∈ [%.4f, %.4f]  brackets=%v\n",
			lo, hi, fp.Brackets(value))

		// Route 3b: multiplicative weights.
		mw, err := defender.MultiplicativeWeights(inst.g, 15000, 0)
		if err != nil {
			return err
		}
		fmt.Printf("multiplicative weights (15000):   value ∈ [%.4f, %.4f]\n\n",
			mw.LowerBound, mw.UpperBound)
	}
	fmt.Println("Adaptive players converge to exactly the protection level the theory predicts:")
	fmt.Println("the equilibrium is not just a fixed point — it is where learning ends up.")
	return nil
}
