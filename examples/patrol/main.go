// Patrol: a metro-style ring network where the security crawler must scan
// a CONTIGUOUS run of k links (it physically traverses the ring), i.e. the
// Path model of the companion work [8]. The example computes the rotation
// equilibrium, verifies it against path-restricted deviations, and
// quantifies the cost of contiguity against an unconstrained k-link
// scanner — then shows fictitious play discovering the same value.
package main

import (
	"fmt"
	"log"
	"math/big"

	defender "github.com/defender-game/defender"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		stations  = 12
		attackers = 8
	)
	ring := defender.CycleGraph(stations)
	fmt.Printf("ring network: %d stations; ν=%d attackers\n\n", stations, attackers)

	fmt.Printf("%-3s %-16s %-16s %-16s\n", "k", "patrol gain", "free-scan gain", "contiguity cost")
	for k := 1; k <= 5; k++ {
		patrol, err := defender.CyclePathNE(ring, attackers, k)
		if err != nil {
			return err
		}
		if err := defender.VerifyPathNE(patrol.Game, patrol.Profile); err != nil {
			return fmt.Errorf("patrol equilibrium failed verification: %w", err)
		}
		free, err := defender.PerfectMatchingNE(ring, attackers, k)
		if err != nil {
			return err
		}
		cost := new(big.Rat).Sub(free.DefenderGain(), patrol.DefenderGain())
		fmt.Printf("%-3d %-16s %-16s %-16s\n",
			k, patrol.DefenderGain().RatString(), free.DefenderGain().RatString(), cost.RatString())
	}
	fmt.Println("\na patrol covering k+1 consecutive stations catches (k+1)ν/n per round;")
	fmt.Println("an unconstrained scanner covers 2k stations and catches 2kν/n — contiguity")
	fmt.Println("costs (k−1)ν/n, so longer patrols waste proportionally more of the budget.")

	// Decentralized sanity check: fictitious play on the k=3 Tuple model.
	fp, err := defender.FictitiousPlayTuple(ring, 3, 2500)
	if err != nil {
		return err
	}
	value, err := defender.GameValue(ring, 3)
	if err != nil {
		return err
	}
	lo, _ := fp.LowerBound.Float64()
	hi, _ := fp.UpperBound.Float64()
	fmt.Printf("\nfictitious play (k=3, one attacker): value ∈ [%.4f, %.4f], LP oracle %s, brackets=%v\n",
		lo, hi, value.RatString(), fp.Brackets(value))
	return nil
}
