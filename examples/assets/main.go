// Assets: not every host is worth the same. This example extends the
// uniform Tuple model to valued targets: a small office network with one
// precious database server, solved with the exact LP damage oracle. The
// optimal randomized defense provably minimizes the worst-case expected
// damage — and visibly concentrates its scanning on the valuable asset.
package main

import (
	"fmt"
	"log"
	"math/big"

	defender "github.com/defender-game/defender"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A switch (0) connecting: a database server (1), a backup host (2),
	// and four workstations (3..6).
	g := defender.NewGraph(7)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	weights := []*big.Rat{
		big.NewRat(0, 1),   // switch: no data
		big.NewRat(100, 1), // database
		big.NewRat(40, 1),  // backup
		big.NewRat(5, 1), big.NewRat(5, 1), big.NewRat(5, 1), big.NewRat(5, 1),
	}
	names := []string{"switch", "database", "backup", "ws-1", "ws-2", "ws-3", "ws-4"}

	fmt.Println("office network: 7 hosts, 7 links; asset values 0..100")
	fmt.Printf("%-3s %-14s %-18s\n", "k", "worst damage", "vs uniform-defense")
	for k := 1; k <= 3; k++ {
		damage, defense, err := defender.WeightedDamageValue(g, k, weights)
		if err != nil {
			return err
		}
		// Compare with the naive uniform-over-tuples defense.
		naive, err := uniformDamage(g, k, weights)
		if err != nil {
			return err
		}
		df, _ := damage.Float64()
		nf, _ := naive.Float64()
		fmt.Printf("%-3d %-14.2f %-18.2f\n", k, df, nf)
		if k == 1 {
			fmt.Println("\noptimal single-link defense (probability per scanned link):")
			for _, t := range defense.Support() {
				e := t.Edges(g)[0]
				p, _ := defense.Prob(t).Float64()
				fmt.Printf("  %-8s—%-8s  %.3f\n", names[e.U], names[e.V], p)
			}
			fmt.Println()
		}
	}
	fmt.Println("the optimal defense guards the database link heavily; the uniform")
	fmt.Println("defense wastes scans on workstations and concedes far more damage.")
	return nil
}

// uniformDamage computes the worst-case damage of the naive defense that
// scans every single link with equal probability (k=1) or, for k>1, every
// k-subset with equal probability — approximated here by per-link coverage.
func uniformDamage(g *defender.Graph, k int, weights []*big.Rat) (*big.Rat, error) {
	// Per-vertex hit probability under "pick k of m links uniformly":
	// P(v covered) = 1 − C(m−deg(v), k)/C(m, k).
	m := g.NumEdges()
	worst := new(big.Rat)
	for v := 0; v < g.NumVertices(); v++ {
		miss := new(big.Rat).Quo(binom(m-g.Degree(v), k), binom(m, k))
		damage := new(big.Rat).Mul(weights[v], miss)
		if damage.Cmp(worst) > 0 {
			worst = damage
		}
	}
	return worst, nil
}

func binom(n, k int) *big.Rat {
	if k < 0 || k > n {
		return new(big.Rat)
	}
	r := big.NewRat(1, 1)
	for i := 1; i <= k; i++ {
		r.Mul(r, big.NewRat(int64(n-k+i), int64(i)))
	}
	return r
}
