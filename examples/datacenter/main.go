// Datacenter scenario: a two-tier leaf–spine fabric modelled as a bipartite
// graph. The security appliance (defender) can deep-inspect k links at a
// time; ν malware instances pick hosts to infect. The example sizes the
// appliance: how many links must it scan so that each attacker is caught
// with probability at least a target threshold?
package main

import (
	"fmt"
	"log"
	"math/big"

	defender "github.com/defender-game/defender"
)

// buildLeafSpine returns a leaf–spine fabric: `spines` spine switches, each
// connected to all `leaves` leaf switches (a complete bipartite core), plus
// `hostsPerLeaf` hosts hanging off every leaf.
func buildLeafSpine(spines, leaves, hostsPerLeaf int) (*defender.Graph, error) {
	n := spines + leaves + leaves*hostsPerLeaf
	g := defender.NewGraph(n)
	leafID := func(l int) int { return spines + l }
	hostID := func(l, h int) int { return spines + leaves + l*hostsPerLeaf + h }
	for s := 0; s < spines; s++ {
		for l := 0; l < leaves; l++ {
			if err := g.AddEdge(s, leafID(l)); err != nil {
				return nil, err
			}
		}
	}
	for l := 0; l < leaves; l++ {
		for h := 0; h < hostsPerLeaf; h++ {
			if err := g.AddEdge(leafID(l), hostID(l, h)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		spines       = 4
		leaves       = 8
		hostsPerLeaf = 6
		attackers    = 20
	)
	g, err := buildLeafSpine(spines, leaves, hostsPerLeaf)
	if err != nil {
		return err
	}
	fmt.Printf("leaf–spine fabric: %d spines, %d leaves, %d hosts — %d nodes, %d links\n",
		spines, leaves, hostsPerLeaf*leaves, g.NumVertices(), g.NumEdges())
	fmt.Printf("bipartite: %v (Thm 5.1 applies: k-matching equilibria exist for all k)\n\n", g.IsBipartite())

	// At equilibrium, rational malware concentrates on the least-protected
	// independent set; the arrest probability is k/|EC|.
	base, err := defender.Solve(g, attackers, 1)
	if err != nil {
		return err
	}
	fmt.Printf("equilibrium attacker support: %d hosts (the maximum independent set)\n", len(base.VPSupport))
	fmt.Printf("equilibrium edge support: %d links\n\n", len(base.EdgeSupport))

	fmt.Println("appliance sizing (ν = 20 malware instances):")
	fmt.Printf("%-4s  %-12s  %-18s  %-14s\n", "k", "caught/round", "arrest probability", "escape rate")
	target := big.NewRat(1, 4) // want: each attacker caught with prob >= 1/4
	recommended := -1
	maxK := len(base.EdgeSupport)
	for k := 1; k <= maxK; k *= 2 {
		ne, err := defender.Solve(g, attackers, k)
		if err != nil {
			return err
		}
		if err := defender.VerifyNE(ne.Game, ne.Profile); err != nil {
			return fmt.Errorf("k=%d failed verification: %w", k, err)
		}
		hit := ne.HitProbability()
		escape := new(big.Rat).Sub(big.NewRat(1, 1), hit)
		fmt.Printf("%-4d  %-12s  %-18s  %-14s\n",
			k, ne.DefenderGain().RatString(), hit.RatString(), escape.RatString())
		if recommended < 0 && hit.Cmp(target) >= 0 {
			recommended = k
		}
	}
	if recommended < 0 {
		recommended = maxK
	}
	fmt.Printf("\nto reach arrest probability >= %s per attacker, provision k = %d scanned links\n",
		target.RatString(), recommended)
	fmt.Println("(arrest probability k/|EC| is linear in k — doubling the appliance doubles protection)")
	return nil
}
