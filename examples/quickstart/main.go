// Quickstart: compute a k-matching Nash equilibrium on a small bipartite
// network and print the equilibrium structure, the defender's gain and the
// linearity-in-k of the paper's headline theorem.
package main

import (
	"fmt"
	"log"
	"math/big"

	defender "github.com/defender-game/defender"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 3x4 grid network: 12 hosts, 17 links. Grids are bipartite, so
	// Theorem 5.1 guarantees a k-matching equilibrium for every feasible k.
	g := defender.GridGraph(3, 4)
	const attackers = 10

	fmt.Printf("network: %d hosts, %d links\n\n", g.NumVertices(), g.NumEdges())

	// Solve the Edge model first (defender scans a single link).
	edgeNE, err := defender.SolveEdge(g, attackers)
	if err != nil {
		return fmt.Errorf("solve edge model: %w", err)
	}
	fmt.Printf("Edge model (k=1): defender catches %s attackers per round in expectation\n",
		edgeNE.DefenderGain().RatString())

	// Now give the defender more power: scan k links at once.
	for k := 1; k <= 4; k++ {
		ne, err := defender.Solve(g, attackers, k)
		if err != nil {
			return fmt.Errorf("solve k=%d: %w", k, err)
		}
		// Every equilibrium this library produces verifies exactly.
		if err := defender.VerifyNE(ne.Game, ne.Profile); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		ratio := new(big.Rat).Quo(ne.DefenderGain(), edgeNE.DefenderGain())
		fmt.Printf("k=%d: gain=%-6s arrest-probability=%-5s gain/gain(1)=%s\n",
			k, ne.DefenderGain().RatString(), ne.HitProbability().RatString(), ratio.RatString())
	}

	fmt.Println("\nThe gain ratio equals k exactly: the power of the defender is linear (Thm 4.5).")
	return nil
}
