// Simulation: play the k-matching equilibrium for many rounds with a
// Monte-Carlo engine and compare the empirical statistics against the exact
// rational predictions of the theory — then demonstrate that deviating from
// the equilibrium makes the attacker strictly worse off.
package main

import (
	"fmt"
	"log"

	defender "github.com/defender-game/defender"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		attackers = 8
		k         = 3
		rounds    = 200_000
		seed      = 2024
	)
	g := defender.CompleteBipartiteGraph(4, 9)
	ne, err := defender.Solve(g, attackers, k)
	if err != nil {
		return err
	}

	exactGain, _ := ne.DefenderGain().Float64()
	hit, _ := ne.HitProbability().Float64()
	fmt.Printf("instance: K{4,9}, ν=%d attackers, defender power k=%d\n", attackers, k)
	fmt.Printf("theory:  defender catches %.5f per round; each attacker escapes with prob %.5f\n\n",
		exactGain, 1-hit)

	res, err := defender.Simulate(ne.Game, ne.Profile, rounds, seed)
	if err != nil {
		return err
	}
	fmt.Printf("played %d rounds (seed %d):\n", res.Rounds, seed)
	fmt.Printf("  empirical mean catch: %.5f   (exact %.5f, z = %+.2f)\n",
		res.MeanCaught, res.ExpectedCaught, res.ZScore())
	lo, hi := res.EscapeRate[0], res.EscapeRate[0]
	for _, r := range res.EscapeRate[1:] {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	fmt.Printf("  empirical escape rates: %.5f .. %.5f   (exact %.5f)\n\n", lo, hi, 1-hit)

	// Defection experiment: one attacker abandons the equilibrium support
	// and hides on a vertex-cover vertex instead. Those vertices are hit at
	// least as often (Claim 4.4), so the defector can only lose.
	vc, err := defender.MinimumVertexCoverBipartite(g)
	if err != nil {
		return err
	}
	defectTo := vc[0]
	fmt.Printf("defection test: attacker 0 moves all its mass to vertex %d (a cover vertex)\n", defectTo)

	hitProbs := ne.Game.HitProbabilities(ne.Profile)
	equilibriumHit, _ := hitProbs[ne.VPSupport[0]].Float64()
	defectorHit, _ := hitProbs[defectTo].Float64()
	fmt.Printf("  hit probability on the equilibrium support: %.5f\n", equilibriumHit)
	fmt.Printf("  hit probability on the defection vertex:    %.5f\n", defectorHit)
	if defectorHit >= equilibriumHit {
		fmt.Println("  defecting cannot increase the escape probability: the profile is a Nash equilibrium")
	} else {
		fmt.Println("  UNEXPECTED: defection would help — equilibrium property violated!")
	}
	return nil
}
