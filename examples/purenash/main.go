// Pure equilibria: walk the Theorem 3.1 frontier on a small office network.
// A pure Nash equilibrium exists exactly when the security software can
// cover every host at once — k must reach the edge-cover number ρ(G) — and
// Corollary 3.3 rules pure equilibria out whenever n >= 2k+1.
package main

import (
	"fmt"
	"log"

	defender "github.com/defender-game/defender"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An office network: two switches bridging workstation pools.
	//   0,1        = switches (linked to each other)
	//   2,3,4      = pool A on switch 0
	//   5,6,7      = pool B on switch 1
	g := defender.NewGraph(8)
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5}, {1, 6}, {1, 7}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	ec, err := defender.MinimumEdgeCover(g)
	if err != nil {
		return err
	}
	fmt.Printf("office network: %d hosts, %d links, edge-cover number ρ(G) = %d\n\n",
		g.NumVertices(), g.NumEdges(), len(ec))

	const attackers = 3
	for k := 1; k <= g.NumEdges(); k++ {
		has, err := defender.HasPureNE(g, k)
		if err != nil {
			return err
		}
		ruledOut := g.NumVertices() >= 2*k+1
		switch {
		case has:
			gm, p, err := defender.BuildPureNE(g, attackers, k)
			if err != nil {
				return err
			}
			ok, err := defender.IsPureNE(gm, p)
			if err != nil {
				return err
			}
			fmt.Printf("k=%d: PURE NE — defender pins %v, catches all %d attackers (verified=%v)\n",
				k, p.TupleChoice.Edges(g), gm.ProfitTP(p), ok)
		case ruledOut:
			fmt.Printf("k=%d: no pure NE (Cor 3.3: n=%d >= 2k+1=%d) — play mixed instead\n",
				k, g.NumVertices(), 2*k+1)
		default:
			fmt.Printf("k=%d: no pure NE (no edge cover of size %d, Thm 3.1)\n", k, k)
		}
	}

	// Below the pure frontier the defender still has a mixed guarantee.
	fmt.Println()
	for k := 1; k < len(ec); k++ {
		ne, err := defender.Solve(g, attackers, k)
		if err != nil {
			return fmt.Errorf("mixed fallback k=%d: %w", k, err)
		}
		fmt.Printf("k=%d mixed fallback: expected catch %s of %d attackers\n",
			k, ne.DefenderGain().RatString(), attackers)
	}
	return nil
}
