package game

import (
	"encoding/json"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/graph"
)

// The JSON exchange format for mixed configurations. Probabilities are
// encoded as exact rational strings ("1/3"), so profiles round-trip without
// losing the exactness guarantees of the verifier. The graph itself is NOT
// embedded — a profile is interpreted against a graph supplied separately
// (edge indices refer to that graph's edge list) — but the instance
// parameters ν and k are included so a profile is self-describing.
//
//	{
//	  "attackers": 3,
//	  "k": 2,
//	  "vertexPlayers": [ {"probs": {"0": "1/2", "5": "1/2"}}, ... ],
//	  "tuplePlayer":   [ {"edges": [0, 4], "prob": "1/3"}, ... ]
//	}

// profileJSON is the on-wire shape of a mixed configuration.
type profileJSON struct {
	Attackers     int                  `json:"attackers"`
	K             int                  `json:"k"`
	VertexPlayers []vertexStrategyJSON `json:"vertexPlayers"`
	TuplePlayer   []tupleEntryJSON     `json:"tuplePlayer"`
}

type vertexStrategyJSON struct {
	Probs map[string]string `json:"probs"`
}

type tupleEntryJSON struct {
	Edges []int  `json:"edges"`
	Prob  string `json:"prob"`
}

// EncodeProfile serializes a validated mixed configuration of gm to JSON.
func (gm *Game) EncodeProfile(mp MixedProfile) ([]byte, error) {
	if err := gm.Validate(mp); err != nil {
		return nil, err
	}
	out := profileJSON{
		Attackers: gm.attackers,
		K:         gm.k,
	}
	for _, s := range mp.VP {
		entry := vertexStrategyJSON{Probs: make(map[string]string, len(s.support))}
		for _, v := range s.support {
			entry.Probs[fmt.Sprint(v)] = s.prob[v].RatString()
		}
		out.VertexPlayers = append(out.VertexPlayers, entry)
	}
	for _, t := range mp.TP.tuples {
		out.TuplePlayer = append(out.TuplePlayer, tupleEntryJSON{
			Edges: t.IDs(),
			Prob:  mp.TP.prob[t.Key()].RatString(),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeProfile parses a JSON profile against graph g, reconstructing the
// game instance Π_k(G) and the mixed configuration. The profile is fully
// validated (distribution sums, tuple sizes, edge indices) before return.
func DecodeProfile(g *graph.Graph, data []byte) (*Game, MixedProfile, error) {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, MixedProfile{}, fmt.Errorf("game: decode profile: %w", err)
	}
	gm, err := New(g, in.Attackers, in.K)
	if err != nil {
		return nil, MixedProfile{}, err
	}
	if len(in.VertexPlayers) != in.Attackers {
		return nil, MixedProfile{}, fmt.Errorf("%w: %d vertex strategies for ν=%d",
			ErrInvalidProfile, len(in.VertexPlayers), in.Attackers)
	}
	mp := MixedProfile{}
	for i, entry := range in.VertexPlayers {
		probs := make(map[int]*big.Rat, len(entry.Probs))
		for vs, ps := range entry.Probs {
			var v int
			if _, err := fmt.Sscanf(vs, "%d", &v); err != nil {
				return nil, MixedProfile{}, fmt.Errorf("%w: attacker %d: bad vertex key %q",
					ErrInvalidProfile, i, vs)
			}
			p, ok := new(big.Rat).SetString(ps) // lint:invariant(ratraw): decode boundary; each parsed probability is retained
			if !ok {
				return nil, MixedProfile{}, fmt.Errorf("%w: attacker %d: bad probability %q",
					ErrInvalidProfile, i, ps)
			}
			probs[v] = p
		}
		mp.VP = append(mp.VP, NewVertexStrategy(probs))
	}
	tuples := make([]Tuple, 0, len(in.TuplePlayer))
	probs := make([]*big.Rat, 0, len(in.TuplePlayer))
	for j, entry := range in.TuplePlayer {
		t, err := NewTupleFromIDs(g, entry.Edges)
		if err != nil {
			return nil, MixedProfile{}, fmt.Errorf("tuple %d: %w", j, err)
		}
		p, ok := new(big.Rat).SetString(entry.Prob) // lint:invariant(ratraw): decode boundary; each parsed probability is retained
		if !ok {
			return nil, MixedProfile{}, fmt.Errorf("%w: tuple %d: bad probability %q",
				ErrInvalidProfile, j, entry.Prob)
		}
		tuples = append(tuples, t)
		probs = append(probs, p)
	}
	ts, err := NewTupleStrategy(tuples, probs)
	if err != nil {
		return nil, MixedProfile{}, err
	}
	mp.TP = ts
	if err := gm.Validate(mp); err != nil {
		return nil, MixedProfile{}, err
	}
	return gm, mp, nil
}
