package game

import (
	"errors"
	"math/big"
	"strings"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

func buildRoundTripProfile(t *testing.T, g *graph.Graph, nu, k int) (*Game, MixedProfile) {
	t.Helper()
	gm := mustGame(t, g, nu, k)
	t1, err := NewTupleFromIDs(g, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTupleFromIDs(g, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTupleStrategy([]Tuple{t1, t2}, []*big.Rat{ratOf(1, 3), ratOf(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	vp1 := NewVertexStrategy(map[int]*big.Rat{0: ratOf(1, 2), 2: ratOf(1, 2)})
	vp2 := NewVertexStrategy(map[int]*big.Rat{1: ratOf(1, 4), 3: ratOf(3, 4)})
	mp := MixedProfile{VP: []VertexStrategy{vp1, vp2}, TP: ts}
	if err := gm.Validate(mp); err != nil {
		t.Fatal(err)
	}
	return gm, mp
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := graph.Cycle(4)
	gm, mp := buildRoundTripProfile(t, g, 2, 2)
	data, err := gm.EncodeProfile(mp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	gm2, mp2, err := DecodeProfile(g, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gm2.Attackers() != 2 || gm2.K() != 2 {
		t.Errorf("instance params lost: ν=%d k=%d", gm2.Attackers(), gm2.K())
	}
	// Exact equality of all probabilities and profits.
	for v := 0; v < g.NumVertices(); v++ {
		for i := range mp.VP {
			if mp.VP[i].Prob(v).Cmp(mp2.VP[i].Prob(v)) != 0 {
				t.Errorf("attacker %d prob(%d) changed", i, v)
			}
		}
	}
	if gm.ExpectedProfitTP(mp).Cmp(gm2.ExpectedProfitTP(mp2)) != 0 {
		t.Error("defender profit changed across round trip")
	}
}

func TestEncodeRejectsInvalidProfile(t *testing.T) {
	g := graph.Cycle(4)
	gm := mustGame(t, g, 2, 2)
	if _, err := gm.EncodeProfile(MixedProfile{}); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("err = %v, want ErrInvalidProfile", err)
	}
}

func TestDecodeProfileErrors(t *testing.T) {
	g := graph.Cycle(4)
	tests := []struct {
		name string
		json string
	}{
		{"garbage", "{"},
		{"bad k", `{"attackers":1,"k":99,"vertexPlayers":[],"tuplePlayer":[]}`},
		{"arity mismatch", `{"attackers":2,"k":1,"vertexPlayers":[{"probs":{"0":"1"}}],"tuplePlayer":[{"edges":[0],"prob":"1"}]}`},
		{"bad vertex key", `{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"x":"1"}}],"tuplePlayer":[{"edges":[0],"prob":"1"}]}`},
		{"bad vertex prob", `{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"0":"??"}}],"tuplePlayer":[{"edges":[0],"prob":"1"}]}`},
		{"bad tuple edge", `{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"0":"1"}}],"tuplePlayer":[{"edges":[99],"prob":"1"}]}`},
		{"bad tuple prob", `{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"0":"1"}}],"tuplePlayer":[{"edges":[0],"prob":"zz"}]}`},
		{"probs not summing", `{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"0":"1/2"}}],"tuplePlayer":[{"edges":[0],"prob":"1"}]}`},
		{"wrong tuple size", `{"attackers":1,"k":2,"vertexPlayers":[{"probs":{"0":"1"}}],"tuplePlayer":[{"edges":[0],"prob":"1"}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := DecodeProfile(g, []byte(tt.json)); err == nil {
				t.Errorf("DecodeProfile(%q) should fail", tt.json)
			}
		})
	}
}

func TestEncodeContainsRationalStrings(t *testing.T) {
	g := graph.Cycle(4)
	gm, mp := buildRoundTripProfile(t, g, 2, 2)
	data, err := gm.EncodeProfile(mp)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"1/3"`, `"2/3"`, `"1/2"`, `"3/4"`, `"attackers": 2`, `"k": 2`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded profile missing %s:\n%s", want, s)
		}
	}
}
