package game

import (
	"errors"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

func mustGame(t *testing.T, g *graph.Graph, nu, k int) *Game {
	t.Helper()
	gm, err := New(g, nu, k)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return gm
}

func mustTuple(t *testing.T, g *graph.Graph, edges ...graph.Edge) Tuple {
	t.Helper()
	tp, err := NewTuple(g, edges)
	if err != nil {
		t.Fatalf("NewTuple(%v): %v", edges, err)
	}
	return tp
}

func TestNewGameValidation(t *testing.T) {
	g := graph.Cycle(4)
	tests := []struct {
		name    string
		g       *graph.Graph
		nu, k   int
		wantErr error
	}{
		{"nil graph", nil, 1, 1, nil},
		{"empty graph", graph.New(0), 1, 1, nil},
		{"zero attackers", g, 0, 1, ErrBadAttackers},
		{"negative attackers", g, -2, 1, ErrBadAttackers},
		{"k zero", g, 1, 0, ErrBadK},
		{"k above m", g, 1, 5, ErrBadK},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.g, tt.nu, tt.k)
			if err == nil {
				t.Fatal("want error")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
	// Isolated vertices rejected.
	iso := graph.New(3)
	if err := iso.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := New(iso, 1, 1); !errors.Is(err, ErrIsolatedVertex) {
		t.Errorf("err = %v, want ErrIsolatedVertex", err)
	}
	// Valid construction and accessors.
	gm := mustGame(t, g, 3, 2)
	if gm.Graph() != g || gm.Attackers() != 3 || gm.K() != 2 {
		t.Error("accessors broken")
	}
	if gm.String() == "" {
		t.Error("String should render")
	}
}

func TestTupleConstruction(t *testing.T) {
	g := graph.Cycle(5)
	tp := mustTuple(t, g, graph.NewEdge(0, 1), graph.NewEdge(2, 3))
	if tp.Size() != 2 {
		t.Errorf("Size = %d", tp.Size())
	}
	if _, err := NewTuple(g, []graph.Edge{graph.NewEdge(0, 2)}); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("foreign edge: err = %v", err)
	}
	if _, err := NewTupleFromIDs(g, []int{0, 0}); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("duplicate ids: err = %v", err)
	}
	if _, err := NewTupleFromIDs(g, []int{-1}); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("negative id: err = %v", err)
	}
	if _, err := NewTupleFromIDs(g, []int{99}); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("out of range id: err = %v", err)
	}
}

func TestTupleCanonicalization(t *testing.T) {
	g := graph.Cycle(5)
	a := mustTuple(t, g, g.EdgeByID(2), g.EdgeByID(0))
	b := mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(2))
	if !a.Equal(b) {
		t.Error("order must not matter")
	}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := mustTuple(t, g, g.EdgeByID(0))
	if a.Equal(c) {
		t.Error("different sizes are unequal")
	}
	d := mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(3))
	if a.Equal(d) {
		t.Error("different edges are unequal")
	}
	if a.String() != "⟨0,2⟩" {
		t.Errorf("String = %q", a.String())
	}
}

func TestTupleVerticesAndCovers(t *testing.T) {
	g := graph.Path(5) // edges: 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4)
	tp := mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(1))
	vs := tp.Vertices(g)
	want := []int{0, 1, 2}
	if !graph.SetsEqual(vs, want) {
		t.Errorf("Vertices = %v, want %v (shared endpoint deduplicated)", vs, want)
	}
	for _, v := range want {
		if !tp.Covers(g, v) {
			t.Errorf("should cover %d", v)
		}
	}
	if tp.Covers(g, 4) {
		t.Error("should not cover 4")
	}
	if !tp.ContainsEdge(0) || tp.ContainsEdge(3) {
		t.Error("ContainsEdge wrong")
	}
	// Edges resolve back.
	edges := tp.Edges(g)
	if len(edges) != 2 || edges[0] != g.EdgeByID(0) || edges[1] != g.EdgeByID(1) {
		t.Errorf("Edges = %v", edges)
	}
	// IDs returns a copy.
	ids := tp.IDs()
	ids[0] = 99
	if tp.IDs()[0] == 99 {
		t.Error("IDs must return a copy")
	}
}

func TestValidatePure(t *testing.T) {
	g := graph.Cycle(4)
	gm := mustGame(t, g, 2, 2)
	good := PureProfile{
		VertexChoice: []int{0, 3},
		TupleChoice:  mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(2)),
	}
	if err := gm.ValidatePure(good); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []PureProfile{
		{VertexChoice: []int{0}, TupleChoice: good.TupleChoice},                  // wrong arity
		{VertexChoice: []int{0, 9}, TupleChoice: good.TupleChoice},               // bad vertex
		{VertexChoice: []int{0, 1}, TupleChoice: mustTuple(t, g, g.EdgeByID(0))}, // wrong k
	}
	for i, p := range bad {
		if err := gm.ValidatePure(p); !errors.Is(err, ErrInvalidProfile) {
			t.Errorf("bad profile %d: err = %v", i, err)
		}
	}
}

func TestPureProfits(t *testing.T) {
	g := graph.Path(4) // edges (0,1),(1,2),(2,3)
	gm := mustGame(t, g, 3, 1)
	p := PureProfile{
		VertexChoice: []int{0, 1, 3},
		TupleChoice:  mustTuple(t, g, g.EdgeByID(0)), // covers {0,1}
	}
	if got := gm.ProfitTP(p); got != 2 {
		t.Errorf("ProfitTP = %d, want 2 (attackers at 0 and 1 caught)", got)
	}
	wantVP := []int{0, 0, 1}
	for i, want := range wantVP {
		if got := gm.ProfitVP(p, i); got != want {
			t.Errorf("ProfitVP(%d) = %d, want %d", i, got, want)
		}
	}
	// Conservation: ν = IP_tp + Σ IP_i.
	sum := gm.ProfitTP(p)
	for i := range p.VertexChoice {
		sum += gm.ProfitVP(p, i)
	}
	if sum != gm.Attackers() {
		t.Errorf("profit conservation violated: %d != %d", sum, gm.Attackers())
	}
}
