package game

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
)

func ratOf(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestUniformVertexStrategy(t *testing.T) {
	s := UniformVertexStrategy([]int{3, 1, 3, 5})
	if got := s.Support(); !graph.SetsEqual(got, []int{1, 3, 5}) {
		t.Errorf("Support = %v", got)
	}
	if s.Prob(1).Cmp(ratOf(1, 3)) != 0 {
		t.Errorf("Prob(1) = %v, want 1/3", s.Prob(1))
	}
	if s.Prob(2).Sign() != 0 {
		t.Errorf("Prob(2) = %v, want 0", s.Prob(2))
	}
	if err := s.Validate(6); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := s.Validate(4); err == nil {
		t.Error("vertex 5 out of range for n=4")
	}
}

func TestNewVertexStrategyDropsZeros(t *testing.T) {
	s := NewVertexStrategy(map[int]*big.Rat{
		0: ratOf(1, 2),
		1: new(big.Rat), // zero dropped
		2: ratOf(1, 2),
		3: nil, // nil dropped
	})
	if got := s.Support(); !graph.SetsEqual(got, []int{0, 2}) {
		t.Errorf("Support = %v", got)
	}
	if err := s.Validate(3); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestVertexStrategyValidateSums(t *testing.T) {
	s := NewVertexStrategy(map[int]*big.Rat{0: ratOf(1, 2), 1: ratOf(1, 3)})
	if err := s.Validate(2); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("5/6 total: err = %v", err)
	}
	neg := NewVertexStrategy(map[int]*big.Rat{0: ratOf(3, 2), 1: ratOf(-1, 2)})
	if err := neg.Validate(2); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("negative prob: err = %v", err)
	}
}

func TestUniformTupleStrategy(t *testing.T) {
	g := graph.Cycle(4)
	t1 := mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(2))
	t2 := mustTuple(t, g, g.EdgeByID(1), g.EdgeByID(3))
	ts, err := UniformTupleStrategy([]Tuple{t1, t2})
	if err != nil {
		t.Fatalf("UniformTupleStrategy: %v", err)
	}
	if ts.SupportSize() != 2 {
		t.Errorf("SupportSize = %d", ts.SupportSize())
	}
	if ts.Prob(t1).Cmp(ratOf(1, 2)) != 0 {
		t.Errorf("Prob = %v", ts.Prob(t1))
	}
	other := mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(1))
	if ts.Prob(other).Sign() != 0 {
		t.Error("probability outside support must be 0")
	}
	if err := ts.Validate(g, 2); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := ts.Validate(g, 3); err == nil {
		t.Error("wrong k must fail validation")
	}
	// Duplicates rejected.
	if _, err := UniformTupleStrategy([]Tuple{t1, t1}); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("duplicate tuples: err = %v", err)
	}
	// Empty support rejected.
	if _, err := UniformTupleStrategy(nil); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestTupleStrategySupportEdges(t *testing.T) {
	g := graph.Cycle(5)
	t1 := mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(2))
	t2 := mustTuple(t, g, g.EdgeByID(2), g.EdgeByID(4))
	ts, err := UniformTupleStrategy([]Tuple{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.SupportEdges(); !graph.SetsEqual(got, []int{0, 2, 4}) {
		t.Errorf("SupportEdges = %v", got)
	}
}

func TestNewTupleStrategyArityMismatch(t *testing.T) {
	g := graph.Cycle(4)
	t1 := mustTuple(t, g, g.EdgeByID(0))
	if _, err := NewTupleStrategy([]Tuple{t1}, nil); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("mismatch: err = %v", err)
	}
}

func TestSymmetricProfileAndValidate(t *testing.T) {
	g := graph.Cycle(4)
	gm := mustGame(t, g, 3, 2)
	vp := UniformVertexStrategy([]int{0, 2})
	ts, err := UniformTupleStrategy([]Tuple{mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(2))})
	if err != nil {
		t.Fatal(err)
	}
	mp := NewSymmetricProfile(3, vp, ts)
	if len(mp.VP) != 3 {
		t.Fatalf("VP arity = %d", len(mp.VP))
	}
	if err := gm.Validate(mp); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Wrong arity.
	bad := MixedProfile{VP: mp.VP[:2], TP: mp.TP}
	if err := gm.Validate(bad); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("arity: err = %v", err)
	}
}

func TestSupportUnionVP(t *testing.T) {
	g := graph.Path(4)
	mp := MixedProfile{
		VP: []VertexStrategy{
			UniformVertexStrategy([]int{0, 2}),
			UniformVertexStrategy([]int{2, 3}),
		},
	}
	if got := mp.SupportUnionVP(); !graph.SetsEqual(got, []int{0, 2, 3}) {
		t.Errorf("SupportUnionVP = %v", got)
	}
	_ = g
}

func TestVertexLoads(t *testing.T) {
	g := graph.Path(3)
	gm := mustGame(t, g, 2, 1)
	mp := MixedProfile{
		VP: []VertexStrategy{
			UniformVertexStrategy([]int{0, 2}),
			UniformVertexStrategy([]int{0}),
		},
	}
	loads := gm.VertexLoads(mp)
	if loads[0].Cmp(ratOf(3, 2)) != 0 {
		t.Errorf("m(0) = %v, want 3/2", loads[0])
	}
	if loads[1].Sign() != 0 {
		t.Errorf("m(1) = %v, want 0", loads[1])
	}
	if loads[2].Cmp(ratOf(1, 2)) != 0 {
		t.Errorf("m(2) = %v, want 1/2", loads[2])
	}
}

func TestHitProbabilitiesAndTuplesThrough(t *testing.T) {
	g := graph.Path(4) // edges 0:(0,1) 1:(1,2) 2:(2,3)
	gm := mustGame(t, g, 1, 1)
	t0 := mustTuple(t, g, g.EdgeByID(0))
	t2 := mustTuple(t, g, g.EdgeByID(2))
	ts, err := UniformTupleStrategy([]Tuple{t0, t2})
	if err != nil {
		t.Fatal(err)
	}
	mp := NewSymmetricProfile(1, UniformVertexStrategy([]int{0}), ts)
	hit := gm.HitProbabilities(mp)
	wantHits := []*big.Rat{ratOf(1, 2), ratOf(1, 2), ratOf(1, 2), ratOf(1, 2)}
	for v, want := range wantHits {
		if hit[v].Cmp(want) != 0 {
			t.Errorf("Hit(%d) = %v, want %v", v, hit[v], want)
		}
	}
	through := mp.TuplesThrough(g, 1)
	if len(through) != 1 || !through[0].Equal(t0) {
		t.Errorf("TuplesThrough(1) = %v", through)
	}
}

func TestExpectedProfits(t *testing.T) {
	// C4, 2 attackers on {0,2} uniform, defender on {(0,1),(2,3)} uniform, k=1.
	g := graph.Cycle(4)
	gm := mustGame(t, g, 2, 1)
	ts, err := UniformTupleStrategy([]Tuple{
		mustTuple(t, g, graph.NewEdge(0, 1)),
		mustTuple(t, g, graph.NewEdge(2, 3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	mp := NewSymmetricProfile(2, UniformVertexStrategy([]int{0, 2}), ts)

	// Each attacker: hit prob 1/2 on either support vertex -> profit 1/2.
	for i := 0; i < 2; i++ {
		if got := gm.ExpectedProfitVP(mp, i); got.Cmp(ratOf(1, 2)) != 0 {
			t.Errorf("IP_%d = %v, want 1/2", i, got)
		}
	}
	// Defender: each tuple covers one loaded vertex with load 1 -> IP = 1.
	if got := gm.ExpectedProfitTP(mp); got.Cmp(ratOf(1, 1)) != 0 {
		t.Errorf("IP_tp = %v, want 1", got)
	}
}

// Property: expected-profit conservation — IP_tp + Σ_i IP_i = ν for any
// valid profile (every attacker is either caught or not).
func TestPropertyProfitConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(3+rng.Intn(8), 0.4, seed)
		nu := 1 + rng.Intn(4)
		k := 1 + rng.Intn(g.NumEdges())
		gm, err := New(g, nu, k)
		if err != nil {
			return false
		}
		mp, err := randomProfile(rng, g, nu, k)
		if err != nil {
			return false
		}
		if gm.Validate(mp) != nil {
			return false
		}
		total := gm.ExpectedProfitTP(mp)
		for i := 0; i < nu; i++ {
			total.Add(total, gm.ExpectedProfitVP(mp, i))
		}
		return total.Cmp(big.NewRat(int64(nu), 1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomProfile draws random supports and random rational probabilities.
func randomProfile(rng *rand.Rand, g *graph.Graph, nu, k int) (MixedProfile, error) {
	n := g.NumVertices()
	vps := make([]VertexStrategy, nu)
	for i := range vps {
		probs := make(map[int]*big.Rat)
		den := int64(0)
		weights := make(map[int]int64)
		support := 1 + rng.Intn(n)
		for j := 0; j < support; j++ {
			w := int64(1 + rng.Intn(5))
			weights[rng.Intn(n)] += w
			den += w
		}
		for v, w := range weights {
			probs[v] = big.NewRat(w, den)
		}
		vps[i] = NewVertexStrategy(probs)
	}
	// Random distinct tuples; stop early if the tuple space is too small to
	// supply the requested count (e.g. k == m has a single tuple).
	numTuples := 1 + rng.Intn(3)
	seen := make(map[string]bool)
	var tuples []Tuple
	for attempts := 0; len(tuples) < numTuples && attempts < 50; attempts++ {
		perm := rng.Perm(g.NumEdges())[:k]
		tp, err := NewTupleFromIDs(g, perm)
		if err != nil {
			return MixedProfile{}, err
		}
		if seen[tp.Key()] {
			continue
		}
		seen[tp.Key()] = true
		tuples = append(tuples, tp)
	}
	weights := make([]int64, len(tuples))
	var den int64
	for i := range weights {
		weights[i] = int64(1 + rng.Intn(5))
		den += weights[i]
	}
	probs := make([]*big.Rat, len(tuples))
	for i := range probs {
		probs[i] = big.NewRat(weights[i], den)
	}
	ts, err := NewTupleStrategy(tuples, probs)
	if err != nil {
		return MixedProfile{}, err
	}
	return MixedProfile{VP: vps, TP: ts}, nil
}

// Property: Σ_v m(v) = ν and 0 <= Hit(v) <= 1.
func TestPropertyLoadAndHitInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(3+rng.Intn(8), 0.4, seed)
		nu := 1 + rng.Intn(4)
		k := 1 + rng.Intn(g.NumEdges())
		gm, err := New(g, nu, k)
		if err != nil {
			return false
		}
		mp, err := randomProfile(rng, g, nu, k)
		if err != nil || gm.Validate(mp) != nil {
			return false
		}
		loads := gm.VertexLoads(mp)
		sum := new(big.Rat)
		for _, l := range loads {
			if l.Sign() < 0 {
				return false
			}
			sum.Add(sum, l)
		}
		if sum.Cmp(big.NewRat(int64(nu), 1)) != 0 {
			return false
		}
		one := big.NewRat(1, 1)
		for _, h := range gm.HitProbabilities(mp) {
			if h.Sign() < 0 || h.Cmp(one) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
