package game

import (
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// Load-computation micro-benchmarks for `make bench-kernel`:
// VertexLoads/HitProbabilities/TupleLoad are called once per verifier
// invocation and once per best-response round in the dynamics, so their
// constant factor multiplies across every experiment table.

// benchProfile builds a Π_k(K_12) instance with 8 attackers on uniform
// supports and a uniform defender over the cyclic k-tuples.
func benchProfile(tb testing.TB) (*Game, MixedProfile) {
	tb.Helper()
	g := graph.Complete(12)
	const nu, k = 8, 5
	gm, err := New(g, nu, k)
	if err != nil {
		tb.Fatal(err)
	}
	support := make([]int, g.NumVertices())
	for v := range support {
		support[v] = v
	}
	vp := UniformVertexStrategy(support)

	// 22 distinct tuples: sliding windows of k over the edge list.
	tuples := make([]Tuple, 0, 22)
	for w := 0; w < 22; w++ {
		ids := make([]int, k)
		for j := range ids {
			ids[j] = (w*3 + j) % g.NumEdges()
		}
		t, err := NewTupleFromIDs(g, ids)
		if err != nil {
			tb.Fatal(err)
		}
		tuples = append(tuples, t)
	}
	tp, err := UniformTupleStrategy(tuples)
	if err != nil {
		tb.Fatal(err)
	}
	return gm, NewSymmetricProfile(nu, vp, tp)
}

func BenchmarkVertexLoads(b *testing.B) {
	gm, mp := benchProfile(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loads := gm.VertexLoads(mp)
		if loads[0].Sign() <= 0 {
			b.Fatal("expected positive load")
		}
	}
}

func BenchmarkHitProbabilities(b *testing.B) {
	gm, mp := benchProfile(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit := gm.HitProbabilities(mp)
		if hit[0].Sign() < 0 {
			b.Fatal("negative hit probability")
		}
	}
}

func BenchmarkTupleLoad(b *testing.B) {
	gm, mp := benchProfile(b)
	loads := gm.VertexLoads(mp)
	tuples := mp.TP.Support()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := gm.TupleLoad(loads, tuples[i%len(tuples)])
		if l.Sign() <= 0 {
			b.Fatal("expected positive tuple load")
		}
	}
}

func BenchmarkExpectedProfitTP(b *testing.B) {
	gm, mp := benchProfile(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if gm.ExpectedProfitTP(mp).Sign() <= 0 {
			b.Fatal("expected positive defender profit")
		}
	}
}
