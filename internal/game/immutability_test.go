package game

import (
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// TestVertexStrategyProbIsDefensiveCopy: mutating a rat returned by Prob
// must not change the stored strategy — the immutability invariant behind
// every exact equilibrium check (and the ratalias analyzer).
func TestVertexStrategyProbIsDefensiveCopy(t *testing.T) {
	s := UniformVertexStrategy([]int{0, 1, 2})

	p := s.Prob(1)
	p.SetInt64(999) // a hostile caller scribbles on the returned rat

	if got := s.Prob(1); got.Cmp(ratOf(1, 3)) != 0 {
		t.Fatalf("stored probability changed to %v after mutating Prob result", got)
	}
	if err := s.Validate(3); err != nil {
		t.Fatalf("strategy corrupted by caller-side mutation: %v", err)
	}
}

// TestTupleStrategyProbIsDefensiveCopy is the defender-side twin.
func TestTupleStrategyProbIsDefensiveCopy(t *testing.T) {
	g := graph.Cycle(4)
	t1 := mustTuple(t, g, g.EdgeByID(0), g.EdgeByID(2))
	t2 := mustTuple(t, g, g.EdgeByID(1), g.EdgeByID(3))
	ts, err := UniformTupleStrategy([]Tuple{t1, t2})
	if err != nil {
		t.Fatalf("UniformTupleStrategy: %v", err)
	}

	p := ts.Prob(t1)
	p.Add(p, big.NewRat(5, 1))

	if got := ts.Prob(t1); got.Cmp(ratOf(1, 2)) != 0 {
		t.Fatalf("stored tuple probability changed to %v after mutating Prob result", got)
	}
	if err := ts.Validate(g, 2); err != nil {
		t.Fatalf("strategy corrupted by caller-side mutation: %v", err)
	}
}

// TestConstructorsCopyInputProbs: strategies must also be insulated from
// later mutation of the rats the caller constructed them with.
func TestConstructorsCopyInputProbs(t *testing.T) {
	half := ratOf(1, 2)
	s := NewVertexStrategy(map[int]*big.Rat{0: half, 1: ratOf(1, 2)})
	half.SetInt64(7) // caller reuses its rat afterwards

	if got := s.Prob(0); got.Cmp(ratOf(1, 2)) != 0 {
		t.Fatalf("stored probability aliases constructor input: %v", got)
	}
	if err := s.Validate(2); err != nil {
		t.Fatalf("strategy corrupted through constructor aliasing: %v", err)
	}
}
