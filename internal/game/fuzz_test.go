package game

import (
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// FuzzDecodeProfile: arbitrary bytes against a fixed graph must either
// decode to a fully-validated profile or return an error — never panic,
// never yield a profile that fails validation afterwards.
func FuzzDecodeProfile(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"0":"1"}}],"tuplePlayer":[{"edges":[0],"prob":"1"}]}`,
		`{"attackers":2,"k":2,"vertexPlayers":[{"probs":{"0":"1/2","2":"1/2"}},{"probs":{"1":"1"}}],"tuplePlayer":[{"edges":[0,2],"prob":"1"}]}`,
		`{"attackers":-1}`,
		`{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"0":"-1"}}],"tuplePlayer":[{"edges":[0],"prob":"2"}]}`,
		`{"attackers":1,"k":1,"vertexPlayers":[{"probs":{"99":"1"}}],"tuplePlayer":[{"edges":[0],"prob":"1"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	g := graph.Cycle(4)
	f.Fuzz(func(t *testing.T, data []byte) {
		gm, mp, err := DecodeProfile(g, data)
		if err != nil {
			return
		}
		// Accepted profiles must satisfy full validation (decode already
		// validates; this asserts the invariant is real).
		if err := gm.Validate(mp); err != nil {
			t.Fatalf("decoded profile fails validation: %v", err)
		}
		// And re-encode losslessly.
		if _, err := gm.EncodeProfile(mp); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
