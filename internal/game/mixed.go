package game

import (
	"fmt"
	"math/big"
	"sort"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/rat"
)

// ratOne is the constant 1 used by validation; never mutated.
var ratOne = big.NewRat(1, 1)

// VertexStrategy is a mixed strategy of a vertex player: a probability
// distribution over vertices with finite support. Probabilities are exact
// rationals and are treated as immutable once the strategy is built.
type VertexStrategy struct {
	support []int // sorted
	prob    map[int]*big.Rat
	// rprobs caches the support probabilities as small rationals, aligned
	// with support, so the load accumulators run on the internal/rat fast
	// path without touching the big.Rat map.
	rprobs rat.Vec
}

// NewVertexStrategy builds a strategy from explicit vertex probabilities.
// Zero-probability entries are dropped from the support.
func NewVertexStrategy(probs map[int]*big.Rat) VertexStrategy {
	s := VertexStrategy{prob: make(map[int]*big.Rat, len(probs))}
	for v, p := range probs {
		if p == nil || p.Sign() == 0 {
			continue
		}
		s.prob[v] = new(big.Rat).Set(p) // lint:invariant(ratraw): defensive copy retained by the strategy; callers may mutate p
		s.support = append(s.support, v)
	}
	sort.Ints(s.support)
	s.rprobs = rat.NewVec(len(s.support))
	for i, v := range s.support {
		s.rprobs[i].SetBig(s.prob[v])
	}
	return s
}

// UniformVertexStrategy is the uniform distribution over support (Lemma 4.1,
// equation (4)).
func UniformVertexStrategy(support []int) VertexStrategy {
	support = graph.NormalizeSet(support)
	p := make(map[int]*big.Rat, len(support))
	rp := rat.NewVec(len(support))
	for i, v := range support {
		p[v] = big.NewRat(1, int64(len(support))) // lint:invariant(ratraw): each probability escapes into the strategy map
		rp[i].SetFrac64(1, int64(len(support)))
	}
	return VertexStrategy{support: support, prob: p, rprobs: rp}
}

// Support returns D(vp): the sorted vertices with positive probability.
func (s VertexStrategy) Support() []int {
	out := make([]int, len(s.support))
	copy(out, s.support)
	return out
}

// Prob returns the probability assigned to v (zero if outside the support).
// The result is a defensive copy: mutating it cannot corrupt the strategy,
// which stays immutable after construction (the ratalias analyzer enforces
// the same property inside this package).
func (s VertexStrategy) Prob(v int) *big.Rat {
	if p, ok := s.prob[v]; ok {
		return new(big.Rat).Set(p)
	}
	return new(big.Rat)
}

// Validate checks s is a probability distribution over vertices 0..n-1.
func (s VertexStrategy) Validate(n int) error {
	sum := new(big.Rat)
	for _, v := range s.support {
		if v < 0 || v >= n {
			return fmt.Errorf("%w: vertex %d out of range", ErrInvalidProfile, v)
		}
		p := s.prob[v]
		if p.Sign() <= 0 {
			return fmt.Errorf("%w: non-positive probability %v on vertex %d", ErrInvalidProfile, p, v)
		}
		sum.Add(sum, p)
	}
	if sum.Cmp(ratOne) != 0 {
		return fmt.Errorf("%w: vertex probabilities sum to %v, want 1", ErrInvalidProfile, sum)
	}
	return nil
}

// TupleStrategy is the defender's mixed strategy: a distribution over
// tuples with finite support, indexed by canonical tuple key.
type TupleStrategy struct {
	tuples []Tuple // sorted by Key for deterministic iteration
	prob   map[string]*big.Rat
	// rprobs caches the tuple probabilities as small rationals, aligned
	// with tuples, feeding the hit-probability fast path.
	rprobs rat.Vec
}

// NewTupleStrategy builds a strategy from tuples and matching
// probabilities. Zero-probability tuples are dropped; duplicate tuples are
// rejected.
func NewTupleStrategy(tuples []Tuple, probs []*big.Rat) (TupleStrategy, error) {
	if len(tuples) != len(probs) {
		return TupleStrategy{}, fmt.Errorf("%w: %d tuples, %d probabilities", ErrInvalidProfile, len(tuples), len(probs))
	}
	s := TupleStrategy{prob: make(map[string]*big.Rat, len(tuples))}
	for i, t := range tuples {
		p := probs[i]
		if p == nil || p.Sign() == 0 {
			continue
		}
		key := t.Key()
		if _, dup := s.prob[key]; dup {
			return TupleStrategy{}, fmt.Errorf("%w: duplicate tuple %v in support", ErrInvalidProfile, t)
		}
		s.prob[key] = new(big.Rat).Set(p) // lint:invariant(ratraw): defensive copy retained by the strategy; callers may mutate p
		s.tuples = append(s.tuples, t)
	}
	sort.Slice(s.tuples, func(i, j int) bool { return lessTuple(s.tuples[i], s.tuples[j]) })
	s.rprobs = rat.NewVec(len(s.tuples))
	for i, t := range s.tuples {
		s.rprobs[i].SetBig(s.prob[t.Key()])
	}
	return s, nil
}

// UniformTupleStrategy is the uniform distribution over the given tuples
// (Lemma 4.1, equation (3)). Duplicate tuples are rejected.
func UniformTupleStrategy(tuples []Tuple) (TupleStrategy, error) {
	if len(tuples) == 0 {
		return TupleStrategy{}, fmt.Errorf("%w: empty tuple support", ErrInvalidProfile)
	}
	probs := make([]*big.Rat, len(tuples))
	for i := range probs {
		probs[i] = big.NewRat(1, int64(len(tuples))) // lint:invariant(ratraw): each probability escapes into the strategy
	}
	return NewTupleStrategy(tuples, probs)
}

// lessTuple orders tuples lexicographically by edge indices.
func lessTuple(a, b Tuple) bool {
	for i := 0; i < len(a.ids) && i < len(b.ids); i++ {
		if a.ids[i] != b.ids[i] {
			return a.ids[i] < b.ids[i]
		}
	}
	return len(a.ids) < len(b.ids)
}

// Support returns D(tp): the tuples with positive probability, in
// deterministic order.
func (s TupleStrategy) Support() []Tuple {
	out := make([]Tuple, len(s.tuples))
	copy(out, s.tuples)
	return out
}

// SupportSize returns |D(tp)|.
func (s TupleStrategy) SupportSize() int { return len(s.tuples) }

// Prob returns the probability of tuple t (zero outside the support).
// The result is a defensive copy: mutating it cannot corrupt the strategy.
func (s TupleStrategy) Prob(t Tuple) *big.Rat {
	if p, ok := s.prob[t.Key()]; ok {
		return new(big.Rat).Set(p)
	}
	return new(big.Rat)
}

// SupportEdges returns E(D(tp)): the sorted distinct edge indices appearing
// in some support tuple.
func (s TupleStrategy) SupportEdges() []int {
	var ids []int
	for _, t := range s.tuples {
		ids = append(ids, t.ids...)
	}
	return graph.NormalizeSet(ids)
}

// Validate checks s is a probability distribution over k-tuples of g.
func (s TupleStrategy) Validate(g *graph.Graph, k int) error {
	sum := new(big.Rat)
	for _, t := range s.tuples {
		if t.Size() != k {
			return fmt.Errorf("%w: tuple %v has %d edges, want k=%d", ErrInvalidProfile, t, t.Size(), k)
		}
		for _, id := range t.ids {
			if id < 0 || id >= g.NumEdges() {
				return fmt.Errorf("%w: tuple %v references edge id %d out of range", ErrInvalidProfile, t, id)
			}
		}
		p := s.prob[t.Key()]
		if p.Sign() <= 0 {
			return fmt.Errorf("%w: non-positive probability %v on tuple %v", ErrInvalidProfile, p, t)
		}
		sum.Add(sum, p)
	}
	if sum.Cmp(ratOne) != 0 {
		return fmt.Errorf("%w: tuple probabilities sum to %v, want 1", ErrInvalidProfile, sum)
	}
	return nil
}

// MixedProfile is a mixed configuration: one strategy per attacker plus the
// defender's tuple strategy.
type MixedProfile struct {
	VP []VertexStrategy
	TP TupleStrategy
}

// NewSymmetricProfile builds the profile in which all ν attackers play the
// same vertex strategy — the shape of every equilibrium constructed in the
// paper (all vertex players use the uniform distribution on a common
// support).
func NewSymmetricProfile(attackers int, vp VertexStrategy, tp TupleStrategy) MixedProfile {
	vps := make([]VertexStrategy, attackers)
	for i := range vps {
		vps[i] = vp
	}
	return MixedProfile{VP: vps, TP: tp}
}

// Validate checks the whole profile against the game instance.
func (gm *Game) Validate(mp MixedProfile) error {
	if len(mp.VP) != gm.attackers {
		return fmt.Errorf("%w: %d vertex strategies for ν=%d attackers", ErrInvalidProfile, len(mp.VP), gm.attackers)
	}
	for i, s := range mp.VP {
		if err := s.Validate(gm.g.NumVertices()); err != nil {
			return fmt.Errorf("attacker %d: %w", i, err)
		}
	}
	if err := mp.TP.Validate(gm.g, gm.k); err != nil {
		return fmt.Errorf("defender: %w", err)
	}
	return nil
}

// SupportUnionVP returns D(VP): the union of all attacker supports.
func (mp MixedProfile) SupportUnionVP() []int {
	var all []int
	for _, s := range mp.VP {
		all = append(all, s.support...)
	}
	return graph.NormalizeSet(all)
}

// VertexLoads returns m(v) for every vertex: the expected number of
// attackers choosing v (Section 2).
func (gm *Game) VertexLoads(mp MixedProfile) []*big.Rat {
	return gm.vertexLoadsVec(mp).ToBig()
}

// vertexLoadsVec accumulates the loads on the small-rational fast path:
// one vector allocation, no per-entry heap arithmetic while the values
// fit int64 (they are sums of probabilities, so they almost always do).
func (gm *Game) vertexLoadsVec(mp MixedProfile) rat.Vec {
	loads := rat.NewVec(gm.g.NumVertices())
	for _, s := range mp.VP {
		for i, v := range s.support {
			loads[v].Add(&loads[v], &s.rprobs[i])
		}
	}
	return loads
}

// HitProbabilities returns P(Hit(v)) for every vertex: the probability that
// the defender's tuple covers v.
func (gm *Game) HitProbabilities(mp MixedProfile) []*big.Rat {
	return gm.hitVec(mp).ToBig()
}

// hitVec accumulates the hit probabilities on the fast path.
func (gm *Game) hitVec(mp MixedProfile) rat.Vec {
	hit := rat.NewVec(gm.g.NumVertices())
	for i, t := range mp.TP.tuples {
		p := &mp.TP.rprobs[i]
		for _, v := range t.Vertices(gm.g) {
			hit[v].Add(&hit[v], p)
		}
	}
	return hit
}

// TupleLoad returns m(t) = Σ_{v ∈ V(t)} m(v) given precomputed loads.
func (gm *Game) TupleLoad(loads []*big.Rat, t Tuple) *big.Rat {
	var sum, term rat.Rat
	for _, v := range t.Vertices(gm.g) {
		term.SetBig(loads[v])
		sum.Add(&sum, &term)
	}
	return sum.Big()
}

// ExpectedProfitVP evaluates equation (1): the expected profit of attacker
// i, Σ_v P_i(v) · (1 − P(Hit(v))).
func (gm *Game) ExpectedProfitVP(mp MixedProfile, i int) *big.Rat {
	hit := gm.HitProbabilities(mp)
	return gm.expectedProfitVPWithHit(mp, i, hit)
}

// expectedProfitVPWithHit shares precomputed hit probabilities across
// players.
func (gm *Game) expectedProfitVPWithHit(mp MixedProfile, i int, hit []*big.Rat) *big.Rat {
	s := mp.VP[i]
	var one, sum, term, h rat.Rat
	one.SetInt64(1)
	for j, v := range s.support {
		h.SetBig(hit[v])
		term.Sub(&one, &h)
		term.Mul(&term, &s.rprobs[j])
		sum.Add(&sum, &term)
	}
	return sum.Big()
}

// ExpectedProfitTP evaluates equation (2): the defender's expected profit,
// Σ_t P(t) · m(t).
func (gm *Game) ExpectedProfitTP(mp MixedProfile) *big.Rat {
	loads := gm.vertexLoadsVec(mp)
	var sum, tl, contrib rat.Rat
	for i, t := range mp.TP.tuples {
		tl.SetInt64(0)
		for _, v := range t.Vertices(gm.g) {
			tl.Add(&tl, &loads[v])
		}
		contrib.Mul(&mp.TP.rprobs[i], &tl)
		sum.Add(&sum, &contrib)
	}
	return sum.Big()
}

// TuplesThrough returns Tuples(v): the support tuples covering vertex v.
func (mp MixedProfile) TuplesThrough(g *graph.Graph, v int) []Tuple {
	var out []Tuple
	for _, t := range mp.TP.tuples {
		if t.Covers(g, v) {
			out = append(out, t)
		}
	}
	return out
}
