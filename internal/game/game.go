// Package game defines the strategic game Π_k(G) of the Tuple model
// (Definition 2.1 of the paper): ν vertex players (attackers) each choose a
// vertex of an undirected graph G, and one tuple player (the defender)
// chooses a tuple of k distinct edges. An attacker earns 1 iff its vertex is
// not an endpoint of the defender's tuple; the defender earns the number of
// attackers it catches.
//
// The package provides pure and mixed strategy profiles and computes
// individual and expected individual profits exactly, using rational
// arithmetic (math/big.Rat) — equilibrium verification in this library never
// relies on floating-point tolerances.
//
// For k = 1 the game coincides with the Edge model of Mavronicolas et al.
// (the paper's reference [7]).
package game

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/defender-game/defender/internal/graph"
)

// Sentinel errors for game construction and profile validation.
var (
	// ErrIsolatedVertex rejects graphs with isolated vertices; the model is
	// defined on graphs without them (an isolated vertex is a free haven).
	ErrIsolatedVertex = errors.New("game: graph has an isolated vertex")
	// ErrBadK rejects tuple sizes outside 1..m.
	ErrBadK = errors.New("game: k must satisfy 1 <= k <= m")
	// ErrBadAttackers rejects non-positive attacker counts.
	ErrBadAttackers = errors.New("game: number of attackers must be positive")
	// ErrInvalidProfile is wrapped by all profile validation failures.
	ErrInvalidProfile = errors.New("game: invalid strategy profile")
)

// Game is an instance Π_k(G) of the Tuple model.
type Game struct {
	g         *graph.Graph
	attackers int // ν
	k         int
}

// New validates the instance parameters and returns the game Π_k(G) with ν
// vertex players. The paper defines the model on connected graphs; this
// implementation relaxes connectivity (everything in the theory only needs
// the absence of isolated vertices) but enforces 1 <= k <= m and ν >= 1.
func New(g *graph.Graph, attackers, k int) (*Game, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("game: nil or empty graph")
	}
	if g.HasIsolatedVertex() {
		return nil, ErrIsolatedVertex
	}
	if attackers < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadAttackers, attackers)
	}
	if k < 1 || k > g.NumEdges() {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrBadK, k, g.NumEdges())
	}
	return &Game{g: g, attackers: attackers, k: k}, nil
}

// Graph returns the underlying graph G.
func (gm *Game) Graph() *graph.Graph { return gm.g }

// Attackers returns ν, the number of vertex players.
func (gm *Game) Attackers() int { return gm.attackers }

// K returns the tuple size k (the power of the defender).
func (gm *Game) K() int { return gm.k }

// String renders a short description of the instance.
func (gm *Game) String() string {
	return fmt.Sprintf("Π_%d(%v) with ν=%d", gm.k, gm.g, gm.attackers)
}

// Tuple is a defender pure strategy: a set of k distinct edges of G,
// stored as sorted edge indices. Tuples are immutable after construction.
//
// The paper treats tuples as ordered sequences, but profits depend only on
// the edge set, so canonicalizing to sorted indices identifies strategies
// that are strategically identical.
type Tuple struct {
	ids []int
}

// NewTuple builds a tuple from explicit edges. All edges must exist in g and
// be pairwise distinct; size is not checked against k here (the Game does
// that during profile validation) so tuples can be built for any model.
func NewTuple(g *graph.Graph, edges []graph.Edge) (Tuple, error) {
	ids := make([]int, 0, len(edges))
	for _, e := range edges {
		id := g.EdgeID(e)
		if id < 0 {
			return Tuple{}, fmt.Errorf("%w: edge %v not in graph", ErrInvalidProfile, e)
		}
		ids = append(ids, id)
	}
	return NewTupleFromIDs(g, ids)
}

// NewTupleFromIDs builds a tuple from edge indices into g's edge list.
func NewTupleFromIDs(g *graph.Graph, ids []int) (Tuple, error) {
	sorted := make([]int, len(ids))
	copy(sorted, ids)
	sort.Ints(sorted)
	for i, id := range sorted {
		if id < 0 || id >= g.NumEdges() {
			return Tuple{}, fmt.Errorf("%w: edge id %d out of range", ErrInvalidProfile, id)
		}
		if i > 0 && sorted[i-1] == id {
			return Tuple{}, fmt.Errorf("%w: duplicate edge id %d in tuple", ErrInvalidProfile, id)
		}
	}
	return Tuple{ids: sorted}, nil
}

// Size returns the number of edges in the tuple.
func (t Tuple) Size() int { return len(t.ids) }

// IDs returns a copy of the sorted edge indices.
func (t Tuple) IDs() []int {
	out := make([]int, len(t.ids))
	copy(out, t.ids)
	return out
}

// Edges resolves the tuple against g's edge list.
func (t Tuple) Edges(g *graph.Graph) []graph.Edge {
	out := make([]graph.Edge, len(t.ids))
	for i, id := range t.ids {
		out[i] = g.EdgeByID(id)
	}
	return out
}

// Vertices returns V(t): the sorted set of distinct endpoints of the
// tuple's edges.
func (t Tuple) Vertices(g *graph.Graph) []int {
	vs := make([]int, 0, 2*len(t.ids))
	for _, id := range t.ids {
		e := g.EdgeByID(id)
		vs = append(vs, e.U, e.V)
	}
	return graph.NormalizeSet(vs)
}

// Covers reports whether vertex v is an endpoint of some edge of the tuple.
func (t Tuple) Covers(g *graph.Graph, v int) bool {
	for _, id := range t.ids {
		if g.EdgeByID(id).Has(v) {
			return true
		}
	}
	return false
}

// ContainsEdge reports whether the tuple contains the edge with index id.
func (t Tuple) ContainsEdge(id int) bool {
	i := sort.SearchInts(t.ids, id)
	return i < len(t.ids) && t.ids[i] == id
}

// Key returns a canonical string identifying the tuple (for map keys).
func (t Tuple) Key() string {
	var sb strings.Builder
	for i, id := range t.ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(id))
	}
	return sb.String()
}

// Equal reports whether two tuples contain the same edge set.
func (t Tuple) Equal(o Tuple) bool {
	if len(t.ids) != len(o.ids) {
		return false
	}
	for i := range t.ids {
		if t.ids[i] != o.ids[i] {
			return false
		}
	}
	return true
}

// String renders the tuple as its edge-index list.
func (t Tuple) String() string { return "⟨" + t.Key() + "⟩" }

// PureProfile is a pure configuration: one vertex per attacker plus a
// defender tuple.
type PureProfile struct {
	VertexChoice []int // VertexChoice[i] is the vertex of attacker i
	TupleChoice  Tuple
}

// ValidatePure checks that p is a well-formed pure configuration of gm.
func (gm *Game) ValidatePure(p PureProfile) error {
	if len(p.VertexChoice) != gm.attackers {
		return fmt.Errorf("%w: %d vertex choices for ν=%d attackers", ErrInvalidProfile, len(p.VertexChoice), gm.attackers)
	}
	for i, v := range p.VertexChoice {
		if v < 0 || v >= gm.g.NumVertices() {
			return fmt.Errorf("%w: attacker %d chose invalid vertex %d", ErrInvalidProfile, i, v)
		}
	}
	if p.TupleChoice.Size() != gm.k {
		return fmt.Errorf("%w: tuple has %d edges, want k=%d", ErrInvalidProfile, p.TupleChoice.Size(), gm.k)
	}
	for _, id := range p.TupleChoice.ids {
		if id < 0 || id >= gm.g.NumEdges() {
			return fmt.Errorf("%w: tuple edge id %d out of range", ErrInvalidProfile, id)
		}
	}
	return nil
}

// ProfitVP is IP_i of Definition 2.1: attacker i earns 1 iff its vertex is
// not covered by the defender's tuple.
func (gm *Game) ProfitVP(p PureProfile, i int) int {
	if p.TupleChoice.Covers(gm.g, p.VertexChoice[i]) {
		return 0
	}
	return 1
}

// ProfitTP is IP_tp of Definition 2.1: the number of attackers whose vertex
// is covered by the tuple.
func (gm *Game) ProfitTP(p PureProfile) int {
	caught := 0
	for _, v := range p.VertexChoice {
		if p.TupleChoice.Covers(gm.g, v) {
			caught++
		}
	}
	return caught
}
