package cover

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
)

func TestFindNEPartitionBipartiteFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"single edge", graph.Path(2)},
		{"path7", graph.Path(7)},
		{"C10", graph.Cycle(10)},
		{"star", graph.Star(12)},
		{"K47", graph.CompleteBipartite(4, 7)},
		{"grid45", graph.Grid(4, 5)},
		{"hypercube4", graph.Hypercube(4)},
		{"tree", graph.RandomTree(30, 3)},
		{"random bipartite", graph.RandomBipartite(12, 15, 0.25, 4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := FindNEPartitionBipartite(tt.g)
			if err != nil {
				t.Fatalf("FindNEPartitionBipartite: %v", err)
			}
			if err := p.Validate(tt.g); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestFindNEPartitionBipartiteRejectsOddCycle(t *testing.T) {
	if _, err := FindNEPartitionBipartite(graph.Cycle(7)); !errors.Is(err, graph.ErrNotBipartite) {
		t.Errorf("err = %v, want ErrNotBipartite", err)
	}
}

func TestFindNEPartitionExactProvenNegative(t *testing.T) {
	// Odd cycles C5, C7: max IS leaves |VC| = |IS|+1, no SDR into IS.
	for _, n := range []int{3, 5, 7, 9} {
		if _, err := FindNEPartitionExact(graph.Cycle(n), 0); !errors.Is(err, ErrNoPartition) {
			t.Errorf("C%d: err = %v, want ErrNoPartition", n, err)
		}
	}
	// Complete graphs K_n, n >= 3: IS size 1, VC size n-1.
	for _, n := range []int{3, 4, 6} {
		if _, err := FindNEPartitionExact(graph.Complete(n), 0); !errors.Is(err, ErrNoPartition) {
			t.Errorf("K%d: err = %v, want ErrNoPartition", n, err)
		}
	}
}

func TestFindNEPartitionExactPositive(t *testing.T) {
	// K2 partitions as IS={0}, VC={1} (or symmetric).
	p, err := FindNEPartitionExact(graph.Path(2), 0)
	if err != nil {
		t.Fatalf("K2: %v", err)
	}
	if err := p.Validate(graph.Path(2)); err != nil {
		t.Fatal(err)
	}
	// Even cycles.
	for _, n := range []int{4, 6, 8} {
		g := graph.Cycle(n)
		p, err := FindNEPartitionExact(g, 0)
		if err != nil {
			t.Fatalf("C%d: %v", n, err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("C%d: %v", n, err)
		}
	}
}

func TestFindNEPartitionExactTooLarge(t *testing.T) {
	if _, err := FindNEPartitionExact(graph.Cycle(30), 0); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if _, err := FindNEPartitionExact(graph.Cycle(66), 70); !errors.Is(err, ErrTooLarge) {
		t.Errorf("n>64: err = %v, want ErrTooLarge", err)
	}
}

func TestFindNEPartitionGreedy(t *testing.T) {
	g := graph.Grid(5, 8)
	p, err := FindNEPartitionGreedy(g, 16, 1)
	if err != nil {
		t.Fatalf("greedy on grid: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Petersen graph: vertex-transitive non-bipartite; greedy should fail
	// or succeed consistently with the exact decision.
	_, exactErr := FindNEPartitionExact(graph.Petersen(), 0)
	_, greedyErr := FindNEPartitionGreedy(graph.Petersen(), 32, 1)
	if exactErr == nil && greedyErr != nil {
		t.Log("greedy gave up where exact succeeded (allowed, heuristic)")
	}
	if exactErr != nil && greedyErr == nil {
		t.Error("greedy claims a partition where exact proves none")
	}
}

func TestFindNEPartitionCombined(t *testing.T) {
	// Bipartite route.
	if p, err := FindNEPartition(graph.Grid(3, 3)); err != nil || p.Validate(graph.Grid(3, 3)) != nil {
		t.Errorf("grid: %v", err)
	}
	// Exact route (small non-bipartite, positive): C5 plus a pendant? Use a
	// graph known to admit a partition: two K2s joined... take the "bull"-ish
	// graph: triangle with two pendant vertices on distinct corners.
	bull := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 4}} {
		if err := bull.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := FindNEPartition(bull)
	if err != nil {
		t.Fatalf("bull graph: %v", err)
	}
	if err := p.Validate(bull); err != nil {
		t.Fatal(err)
	}
	// Exact route, negative.
	if _, err := FindNEPartition(graph.Complete(5)); !errors.Is(err, ErrNoPartition) {
		t.Errorf("K5: err = %v, want ErrNoPartition", err)
	}
	// Isolated vertex rejected.
	lonely := graph.New(3)
	if err := lonely.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := FindNEPartition(lonely); !errors.Is(err, ErrIsolatedVertex) {
		t.Errorf("isolated: err = %v, want ErrIsolatedVertex", err)
	}
}

func TestPartitionValidateRejectsBadPartitions(t *testing.T) {
	g := graph.Cycle(4)
	tests := []struct {
		name string
		p    Partition
	}{
		{"not a partition", Partition{IS: []int{0}, VC: []int{1, 2}}},
		{"IS not independent", Partition{IS: []int{0, 1}, VC: []int{2, 3}}},
		{"fails expander", Partition{IS: []int{0}, VC: []int{1, 2, 3}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(g); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestEnumerateMaximalIndependentSets(t *testing.T) {
	// C5 has exactly 5 maximal independent sets (the 5 "diagonal pairs").
	var count int
	err := EnumerateMaximalIndependentSets(graph.Cycle(5), func(is []int) bool {
		count++
		if !IsIndependentSet(graph.Cycle(5), is) {
			t.Fatalf("%v not independent", is)
		}
		if len(is) != 2 {
			t.Fatalf("C5 maximal IS %v has size %d", is, len(is))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("C5 maximal IS count = %d, want 5", count)
	}
	// K4: each singleton is maximal.
	count = 0
	if err := EnumerateMaximalIndependentSets(graph.Complete(4), func([]int) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("K4 maximal IS count = %d, want 4", count)
	}
	// Early stop.
	count = 0
	if err := EnumerateMaximalIndependentSets(graph.Complete(4), func([]int) bool { count++; return false }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
	// Too large.
	if err := EnumerateMaximalIndependentSets(graph.Grid(9, 8), func([]int) bool { return true }); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestEnumerateNEPartitions(t *testing.T) {
	// C6: five maximal independent sets, of which exactly the two
	// alternating triples satisfy the expander condition (the antipodal
	// pairs leave |VC| = 4 > 2).
	g := graph.Cycle(6)
	var found [][]int
	if err := EnumerateNEPartitions(g, func(p Partition) bool {
		if err := p.Validate(g); err != nil {
			t.Fatalf("visited invalid partition: %v", err)
		}
		found = append(found, p.IS)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("C6 partitions = %d (%v), want 2", len(found), found)
	}
	// Non-admitting graph: zero visits.
	count, err := CountNEPartitions(graph.Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("K5 partitions = %d, want 0", count)
	}
	// Early stop.
	visits := 0
	if err := EnumerateNEPartitions(g, func(Partition) bool { visits++; return false }); err != nil {
		t.Fatal(err)
	}
	if visits != 1 {
		t.Errorf("early stop visited %d", visits)
	}
	// Size limit propagates.
	if _, err := CountNEPartitions(graph.Grid(9, 8)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestCountNEPartitionsAgreesWithExact(t *testing.T) {
	// Positive count iff FindNEPartitionExact succeeds, over a small zoo.
	zoo := []*graph.Graph{
		graph.Path(5), graph.Cycle(5), graph.Cycle(6), graph.Star(6),
		graph.Complete(4), graph.Petersen(), graph.Grid(2, 3),
	}
	for i, g := range zoo {
		count, err := CountNEPartitions(g)
		if err != nil {
			t.Fatalf("zoo[%d]: %v", i, err)
		}
		_, exactErr := FindNEPartitionExact(g, 0)
		if (count > 0) != (exactErr == nil) {
			t.Errorf("zoo[%d]: count=%d but exact err=%v", i, count, exactErr)
		}
	}
}

// bruteForceMaximalIS enumerates maximal independent sets by checking all
// subsets — oracle for Bron–Kerbosch.
func bruteForceMaximalISCount(g *graph.Graph) int {
	n := g.NumVertices()
	count := 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				set = append(set, v)
			}
		}
		if !IsIndependentSet(g, set) {
			continue
		}
		// Maximal: no vertex outside can be added.
		maximal := true
		member := make(map[int]bool)
		for _, v := range set {
			member[v] = true
		}
		for v := 0; v < n && maximal; v++ {
			if member[v] {
				continue
			}
			ok := true
			g.EachNeighbor(v, func(u int) {
				if member[u] {
					ok = false
				}
			})
			if ok {
				maximal = false
			}
		}
		if maximal {
			count++
		}
	}
	return count
}

// Property: Bron–Kerbosch counts match subset enumeration.
func TestPropertyMaximalISCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		g := graph.RandomGNP(n, 0.4, seed)
		var fast int
		if err := EnumerateMaximalIndependentSets(g, func([]int) bool { fast++; return true }); err != nil {
			return false
		}
		return fast == bruteForceMaximalISCount(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: every partition found by any strategy validates; exact
// non-existence implies greedy non-existence.
func TestPropertyPartitionSearchConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(3+rng.Intn(10), 0.3, seed)
		exact, exactErr := FindNEPartitionExact(g, 0)
		if exactErr == nil {
			if exact.Validate(g) != nil {
				return false
			}
			// IS must be sorted for downstream consumers.
			if !sort.IntsAreSorted(exact.IS) || !sort.IntsAreSorted(exact.VC) {
				return false
			}
		}
		greedy, greedyErr := FindNEPartitionGreedy(g, 8, seed)
		if greedyErr == nil {
			if greedy.Validate(g) != nil {
				return false
			}
			// Greedy success implies a partition exists: exact must agree.
			if errors.Is(exactErr, ErrNoPartition) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
