package cover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
)

func TestIsExpanderSetLiteralTriangle(t *testing.T) {
	// The DESIGN.md discrepancy example: a triangle with S = {1,2} satisfies
	// the literal definition (members may represent each other) ...
	g := graph.Complete(3)
	ok, violator := IsExpanderSet(g, []int{1, 2})
	if !ok {
		t.Fatalf("literal expander should hold, violator %v", violator)
	}
	// ... but fails the equilibrium-relevant IS-restricted condition.
	rep, violator := IsNEExpander(g, []int{0}, []int{1, 2})
	if rep != nil {
		t.Fatal("NE-expander must fail on the triangle")
	}
	if len(violator) == 0 {
		t.Fatal("violator must be reported")
	}
}

func TestIsNEExpanderAlternatingCycle(t *testing.T) {
	g := graph.Cycle(8)
	is := []int{0, 2, 4, 6}
	vc := []int{1, 3, 5, 7}
	rep, violator := IsNEExpander(g, is, vc)
	if rep == nil {
		t.Fatalf("C8 alternating partition must be an NE-expander, violator %v", violator)
	}
	seen := make(map[int]bool)
	for _, v := range vc {
		r, ok := rep[v]
		if !ok || !g.HasEdge(v, r) || !graph.SetContains(is, r) || seen[r] {
			t.Fatalf("bad representative %d for %d", r, v)
		}
		seen[r] = true
	}
}

func TestIsNEExpanderStarFails(t *testing.T) {
	// Star with IS = {hub}: the leaves cannot all be matched into the hub.
	g := graph.Star(4)
	rep, violator := IsNEExpander(g, []int{0}, []int{1, 2, 3})
	if rep != nil {
		t.Fatal("should fail: three leaves, one hub")
	}
	if len(violator) < 2 {
		t.Fatalf("violator %v too small", violator)
	}
}

func TestIsNEExpanderStarCorrectWay(t *testing.T) {
	// Star with IS = leaves, VC = {hub}: hub has 3 leaf representatives.
	g := graph.Star(4)
	rep, violator := IsNEExpander(g, []int{1, 2, 3}, []int{0})
	if rep == nil {
		t.Fatalf("violator %v", violator)
	}
	if r := rep[0]; r < 1 || r > 3 {
		t.Errorf("hub representative = %d", r)
	}
}

func TestExpanderBruteForceLimit(t *testing.T) {
	g := graph.Complete(30)
	s := make([]int, 25)
	for i := range s {
		s[i] = i
	}
	if _, _, err := ExpanderBruteForce(g, s); err == nil {
		t.Error("25-element set must exceed the brute-force limit")
	}
	if _, _, err := NEExpanderBruteForce(g, nil, s); err == nil {
		t.Error("25-element set must exceed the brute-force limit")
	}
}

// Property: the matching-based decision agrees with subset enumeration for
// the literal definition.
func TestPropertyExpanderLiteralAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g := graph.RandomGNP(n, 0.4, seed)
		var s []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				s = append(s, v)
			}
		}
		fast, _ := IsExpanderSet(g, s)
		slow, _, err := ExpanderBruteForce(g, s)
		return err == nil && fast == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: IsNEExpander agrees with subset enumeration.
func TestPropertyNEExpanderAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g := graph.RandomGNP(n, 0.4, seed)
		// Random bi-partition (IS need not be independent here; the check
		// itself doesn't require it).
		var is, vc []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				is = append(is, v)
			} else {
				vc = append(vc, v)
			}
		}
		rep, _ := IsNEExpander(g, is, vc)
		slow, _, err := NEExpanderBruteForce(g, is, vc)
		return err == nil && (rep != nil) == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: violators returned by the fast check are genuine violations.
func TestPropertyViolatorCertificates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := graph.RandomGNP(n, 0.25, seed)
		var is, vc []int
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				is = append(is, v)
			} else {
				vc = append(vc, v)
			}
		}
		rep, violator := IsNEExpander(g, is, vc)
		if rep != nil {
			return true // nothing to certify
		}
		// Count distinct IS-neighbors of the violator.
		member := make(map[int]bool, len(is))
		for _, v := range is {
			member[v] = true
		}
		nbrs := make(map[int]bool)
		for _, v := range violator {
			g.EachNeighbor(v, func(u int) {
				if member[u] {
					nbrs[u] = true
				}
			})
		}
		return len(nbrs) < len(violator)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
