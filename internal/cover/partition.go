package cover

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"github.com/defender-game/defender/internal/graph"
)

// Partition is a split of V(G) into an independent set IS and its
// complement VC such that G is a VC-expander in the equilibrium-relevant
// sense (every X ⊆ VC has ≥ |X| distinct neighbors inside IS). By
// Corollary 4.11 this is exactly the class of graphs admitting k-matching
// Nash equilibria, for every k. Rep is the system of distinct
// representatives matching VC into IS that witnesses the expander property.
type Partition struct {
	IS  []int
	VC  []int
	Rep map[int]int
}

// Validate re-checks all three partition properties against g.
// O(n + |VC| · m) (SDR-dominated); allocates check scratch.
// Sparse counterpart: PartitionCSR.Validate.
func (p Partition) Validate(g *graph.Graph) error {
	if !graph.IsPartition(p.IS, p.VC, g.NumVertices()) {
		return fmt.Errorf("cover: IS and VC do not partition the %d vertices", g.NumVertices())
	}
	if !IsIndependentSet(g, p.IS) {
		return errors.New("cover: IS is not an independent set")
	}
	if rep, violator := IsNEExpander(g, p.IS, p.VC); rep == nil {
		return fmt.Errorf("cover: G is not a VC-expander, violator %v", violator)
	}
	return nil
}

// FindNEPartitionBipartite computes a partition for a bipartite graph:
// VC is a König minimum vertex cover and IS its complement. The paper's
// Theorem 5.1 builds on this route. The graph must have no isolated
// vertices (isolated vertices are in every maximum independent set but make
// the game itself ill-defined). O(m sqrt n + |VC| · m); allocates the
// partition and matching scratch. Sparse: FindNEPartitionBipartiteCSR.
func FindNEPartitionBipartite(g *graph.Graph) (Partition, error) {
	vc, err := MinimumVertexCoverBipartite(g)
	if err != nil {
		return Partition{}, err
	}
	is := graph.SetComplement(vc, g.NumVertices())
	rep, violator := IsNEExpander(g, is, vc)
	if rep == nil {
		// Cannot happen for a König cover of a graph without isolated
		// vertices: each cover vertex is matched, and each matching edge has
		// exactly one endpoint in the cover. Guard anyway.
		return Partition{}, fmt.Errorf("%w: König cover failed expander check, violator %v", ErrPartitionNotFound, violator)
	}
	return Partition{IS: is, VC: vc, Rep: rep}, nil
}

// FindNEPartitionExact decides partition existence exactly by enumerating
// the maximal independent sets of g (if any partition (IS, VC) works, the
// partition obtained by growing IS to a maximal independent set also works,
// because growing IS only shrinks VC and enlarges the neighbor pool).
// It is exponential in the worst case and refuses graphs with more than
// maxVertices vertices (ErrTooLarge); pass 0 for the default limit of 24.
//
// It returns ErrNoPartition when no partition exists — a proof of
// non-existence of k-matching equilibria by Corollary 4.11. Exponential
// (Bron–Kerbosch over maximal independent sets); allocates enumeration
// and SDR scratch per candidate set.
func FindNEPartitionExact(g *graph.Graph, maxVertices int) (Partition, error) {
	if maxVertices <= 0 {
		maxVertices = 24
	}
	n := g.NumVertices()
	if n > maxVertices || n > 64 {
		return Partition{}, fmt.Errorf("%w: n=%d exceeds limit %d", ErrTooLarge, n, maxVertices)
	}
	var found *Partition
	err := EnumerateMaximalIndependentSets(g, func(is []int) bool {
		vc := graph.SetComplement(is, n)
		if rep, _ := IsNEExpander(g, is, vc); rep != nil {
			found = &Partition{IS: is, VC: vc, Rep: rep}
			return false // stop enumeration
		}
		return true
	})
	if err != nil {
		return Partition{}, err
	}
	if found == nil {
		return Partition{}, ErrNoPartition
	}
	return *found, nil
}

// FindNEPartitionGreedy tries several randomized greedy maximal independent
// sets and returns the first one whose complement passes the expander check.
// It cannot prove non-existence: failure is ErrPartitionNotFound.
// O(tries · |VC| · m); allocates candidate orders and per-try scratch.
// Sparse (deterministic-orders-only) counterpart: FindNEPartitionGreedyCSR.
func FindNEPartitionGreedy(g *graph.Graph, tries int, seed int64) (Partition, error) {
	if tries <= 0 {
		tries = 16
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(seed))

	natural := make([]int, n)
	for i := range natural {
		natural[i] = i
	}
	ascending := append([]int(nil), natural...)
	sort.SliceStable(ascending, func(i, j int) bool { return g.Degree(ascending[i]) < g.Degree(ascending[j]) })
	descending := append([]int(nil), natural...)
	sort.SliceStable(descending, func(i, j int) bool { return g.Degree(descending[i]) > g.Degree(descending[j]) })

	// Deterministic candidate orders first (natural order recovers the
	// checkerboard partition on grid-like graphs, ascending degree tends to
	// maximize |IS|), then random shuffles.
	order := natural
	deterministic := [][]int{natural, ascending, descending}
	for attempt := 0; attempt < tries; attempt++ {
		if attempt < len(deterministic) {
			order = deterministic[attempt]
		} else {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		is := GreedyIndependentSet(g, order)
		vc := graph.SetComplement(is, n)
		if rep, _ := IsNEExpander(g, is, vc); rep != nil {
			return Partition{IS: is, VC: vc, Rep: rep}, nil
		}
	}
	return Partition{}, ErrPartitionNotFound
}

// FindNEPartition is the combined search used by the solvers: bipartite
// graphs take the König route (polynomial, always succeeds); otherwise small
// graphs are decided exactly and large graphs heuristically. Cost is the
// chosen route's (polynomial bipartite, exponential exact on n <= 24,
// else the greedy heuristic). Sparse counterpart: FindNEPartitionCSR,
// routing documented in SCALING.md "Routing".
func FindNEPartition(g *graph.Graph) (Partition, error) {
	if g.HasIsolatedVertex() {
		return Partition{}, ErrIsolatedVertex
	}
	if g.IsBipartite() {
		return FindNEPartitionBipartite(g)
	}
	if p, err := FindNEPartitionExact(g, 0); !errors.Is(err, ErrTooLarge) {
		return p, err
	}
	return FindNEPartitionGreedy(g, 32, 1)
}

// EnumerateNEPartitions visits every partition (IS, VC) whose IS is a
// *maximal* independent set satisfying the NE-expander condition — each
// gives rise to a distinct family of k-matching equilibria (different
// attacker supports). Enumeration stops early when visit returns false.
// Shares EnumerateMaximalIndependentSets' n <= 64 limit; exponential in
// the worst case.
//
// Note this intentionally enumerates only maximal independent sets: any
// valid non-maximal IS extends to a maximal one that is also valid (see
// FindNEPartitionExact), so maximal sets witness every equilibrium-
// admitting support family's canonical representative.
func EnumerateNEPartitions(g *graph.Graph, visit func(Partition) bool) error {
	n := g.NumVertices()
	return EnumerateMaximalIndependentSets(g, func(is []int) bool {
		vc := graph.SetComplement(is, n)
		rep, _ := IsNEExpander(g, is, vc)
		if rep == nil {
			return true
		}
		return visit(Partition{IS: is, VC: vc, Rep: rep})
	})
}

// CountNEPartitions counts the partitions EnumerateNEPartitions would
// visit. Exponential like the enumeration; allocates its scratch.
func CountNEPartitions(g *graph.Graph) (int, error) {
	count := 0
	err := EnumerateNEPartitions(g, func(Partition) bool { count++; return true })
	return count, err
}

// EnumerateMaximalIndependentSets runs Bron–Kerbosch with pivoting on the
// complement graph, invoking visit for every maximal independent set (as a
// sorted vertex list). Enumeration stops early when visit returns false.
// Limited to n <= 64 vertices (bitmask representation); returns ErrTooLarge
// beyond that. O(3^(n/3)) worst case; allocates the complement masks and
// one sorted slice per visited set.
func EnumerateMaximalIndependentSets(g *graph.Graph, visit func(is []int) bool) error {
	n := g.NumVertices()
	if n > 64 {
		return fmt.Errorf("%w: n=%d > 64", ErrTooLarge, n)
	}
	if n == 0 {
		visit(nil)
		return nil
	}
	// nonAdj[v] = bitmask of vertices independent of v (complement
	// adjacency, excluding v itself).
	full := ^uint64(0) >> uint(64-n)
	nonAdj := make([]uint64, n)
	for v := 0; v < n; v++ {
		mask := full &^ (1 << uint(v))
		g.EachNeighbor(v, func(u int) { mask &^= 1 << uint(u) })
		nonAdj[v] = mask
	}

	stopped := false
	var expand func(r, p, x uint64)
	expand = func(r, p, x uint64) {
		if stopped {
			return
		}
		if p == 0 && x == 0 {
			if !visit(maskToSet(r)) {
				stopped = true
			}
			return
		}
		// Pivot on the vertex of p|x with the most complement-neighbors in p.
		pivot, best := -1, -1
		for m := p | x; m != 0; m &= m - 1 {
			v := trailing(m)
			if c := popcount(nonAdj[v] & p); c > best {
				best, pivot = c, v
			}
		}
		for m := p &^ nonAdj[pivot]; m != 0; m &= m - 1 {
			v := trailing(m)
			bit := uint64(1) << uint(v)
			expand(r|bit, p&nonAdj[v], x&nonAdj[v])
			p &^= bit
			x |= bit
			if stopped {
				return
			}
		}
	}
	expand(0, full, 0)
	return nil
}

func maskToSet(mask uint64) []int {
	var out []int
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, trailing(m))
	}
	return out
}

func trailing(m uint64) int { return bits.TrailingZeros64(m) }

func popcount(m uint64) int { return bits.OnesCount64(m) }
