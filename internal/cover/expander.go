package cover

import (
	"math/bits"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
)

// The paper (Section 2) defines: G is an S-expander if for every X ⊆ S,
// |X| <= |Neigh_G(X)|. Taken literally, Neigh_G(X) may intersect S itself.
// The matching-equilibrium constructions (Lemma 2.1, Theorem 2.2, Corollary
// 4.11) actually require the stronger, IS-restricted condition
// |X| <= |Neigh_G(X) ∩ IS| for every X ⊆ VC, which by Hall's theorem is
// equivalent to a system of distinct representatives for VC inside IS.
// Both variants are provided; see DESIGN.md §1 for the discrepancy note.

// IsExpanderSet decides the literal S-expander condition: every X ⊆ s has
// at least |X| distinct neighbors anywhere in V. On failure it returns a
// concrete violating subset. O(|s| · m) via Kuhn SDR; allocates the
// search scratch of matching.Representatives.
func IsExpanderSet(g *graph.Graph, s []int) (bool, []int) {
	_, violator := matching.Representatives(g, s, nil)
	return violator == nil, violator
}

// IsNEExpander decides the equilibrium-relevant condition for a partition
// (is, vc): every X ⊆ vc has at least |X| distinct neighbors inside is.
// On success it also returns the system of distinct representatives
// rep[v] ∈ is for every v ∈ vc, which is exactly the matching of VC into IS
// that Algorithm A of [7] threads into the edge-player support. On failure
// rep is nil and violator is a witness subset of vc. O(|vc| · m);
// allocates the membership bitmap, the rep map, and SDR scratch.
func IsNEExpander(g *graph.Graph, is, vc []int) (rep map[int]int, violator []int) {
	member := membership(g.NumVertices(), is)
	return matching.Representatives(g, vc, func(v int) bool { return member[v] })
}

// ExpanderBruteForce checks the literal S-expander condition by enumerating
// all 2^|s| subsets. It is the test oracle for IsExpanderSet and is limited
// to |s| <= 24 (ErrTooLarge beyond that). O(2^|s| · |s| · Δ); allocates
// the stamp array and any returned violator.
func ExpanderBruteForce(g *graph.Graph, s []int) (bool, []int, error) {
	s = graph.NormalizeSet(s)
	if len(s) > 24 {
		return false, nil, ErrTooLarge
	}
	return expanderBruteForce(g, s, nil)
}

// NEExpanderBruteForce is the exponential oracle for IsNEExpander.
// O(2^|vc| · |vc| · Δ), capped at |vc| <= 24 (ErrTooLarge beyond);
// allocates the membership bitmap and stamp array.
func NEExpanderBruteForce(g *graph.Graph, is, vc []int) (bool, []int, error) {
	vc = graph.NormalizeSet(vc)
	if len(vc) > 24 {
		return false, nil, ErrTooLarge
	}
	member := membership(g.NumVertices(), is)
	return expanderBruteForce(g, vc, member)
}

// expanderBruteForce enumerates every subset X of s and counts the distinct
// neighbors of X (restricted to restrict when non-nil).
func expanderBruteForce(g *graph.Graph, s []int, restrict []bool) (bool, []int, error) {
	n := g.NumVertices()
	seen := make([]int, n) // stamped with the subset index to avoid clearing
	for i := range seen {
		seen[i] = -1
	}
	for mask := 1; mask < 1<<uint(len(s)); mask++ {
		count := 0
		for m := mask; m != 0; m &= m - 1 {
			v := s[bits.TrailingZeros(uint(m))]
			g.EachNeighbor(v, func(u int) {
				if seen[u] != mask && (restrict == nil || restrict[u]) {
					seen[u] = mask
					count++
				}
			})
		}
		if count < bits.OnesCount(uint(mask)) {
			var violator []int
			for m := mask; m != 0; m &= m - 1 {
				violator = append(violator, s[bits.TrailingZeros(uint(m))])
			}
			return false, violator, nil
		}
	}
	return true, nil, nil
}
