package cover

import (
	"fmt"
	"sort"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
	"github.com/defender-game/defender/internal/obs"
)

// CSR edge-cover build counter (catalogued in OBSERVABILITY.md): one
// increment per Gallai edge-cover derivation on the sparse path, the
// counterpart of cover.edge_covers_built for million-vertex instances.
var obsCSREdgeCoversBuilt = obs.Default().Counter("cover.csr.edge_covers_built")

// PartitionCSR is the sparse counterpart of Partition: a split of the CSR
// graph's vertices into an independent set IS and VC = V \ IS with G a
// VC-expander, witnessed by Rep. IS and VC are ascending; Rep is indexed
// by vertex — Rep[v] is the distinct IS representative adjacent to v for
// v in VC, and -1 elsewhere. The flat int32 layout replaces Partition's
// map so a 10^6-vertex partition costs three slices, not a million map
// entries.
type PartitionCSR struct {
	IS  []int32
	VC  []int32
	Rep []int32
}

// Validate re-checks all partition properties against c: IS and VC
// partition the vertices, IS is independent, and Rep is an injective map
// from VC into adjacent IS vertices (the Hall witness of the expander
// condition). O(n + m); its two bitsets are pooled.
func (p PartitionCSR) Validate(c *graph.CSR) error {
	n := c.NumVertices()
	if len(p.Rep) != n {
		return fmt.Errorf("cover: csr partition: Rep length %d, want %d", len(p.Rep), n)
	}
	if len(p.IS)+len(p.VC) != n {
		return fmt.Errorf("cover: csr partition: |IS|+|VC| = %d, want %d", len(p.IS)+len(p.VC), n)
	}
	inIS := graph.GetBitset(n)
	defer graph.PutBitset(inIS)
	for _, v := range p.IS {
		if v < 0 || int(v) >= n || inIS.Has(v) {
			return fmt.Errorf("cover: csr partition: IS entry %d out of range or repeated", v)
		}
		inIS.Set(v)
	}
	for _, v := range p.VC {
		if v < 0 || int(v) >= n || inIS.Has(v) {
			return fmt.Errorf("cover: csr partition: VC entry %d out of range or in IS", v)
		}
	}
	for _, v := range p.IS {
		for _, u := range c.Neighbors(int(v)) {
			if inIS.Has(u) {
				return fmt.Errorf("cover: csr partition: IS is not independent, edge (%d,%d)", v, u)
			}
		}
	}
	usedRep := graph.GetBitset(n)
	defer graph.PutBitset(usedRep)
	for _, v := range p.VC {
		r := p.Rep[v]
		if r < 0 || int(r) >= n || !inIS.Has(r) {
			return fmt.Errorf("cover: csr partition: Rep[%d]=%d is not an IS vertex", v, r)
		}
		if !c.HasEdge(int(v), int(r)) {
			return fmt.Errorf("cover: csr partition: Rep[%d]=%d is not adjacent", v, r)
		}
		if usedRep.Has(r) {
			return fmt.Errorf("cover: csr partition: representative %d reused", r)
		}
		usedRep.Set(r)
	}
	return nil
}

// MinimumEdgeCoverCSRFromMatching extends a maximum matching of c (as an
// int32 mate array) into a minimum edge cover by Gallai's identity
// rho = n - mu, exactly like MinimumEdgeCoverFromMatching but on the
// sparse path: matching edges first, then one arbitrary incident edge per
// unmatched vertex. The cover is returned as parallel endpoint slices.
// Returns ErrIsolatedVertex when some vertex has degree 0. O(n + m);
// allocates the two endpoint slices.
func MinimumEdgeCoverCSRFromMatching(c *graph.CSR, mate []int32) (us, vs []int32, err error) {
	n := c.NumVertices()
	if len(mate) != n {
		return nil, nil, fmt.Errorf("cover: mate array has length %d, want %d", len(mate), n)
	}
	if c.HasIsolatedVertex() {
		return nil, nil, ErrIsolatedVertex
	}
	obsCSREdgeCoversBuilt.Inc()
	size := n - matching.SizeCSR(mate)
	us = make([]int32, 0, size)
	vs = make([]int32, 0, size)
	for v := 0; v < n; v++ {
		switch u := mate[v]; {
		case u == matching.Unmatched:
			// Any incident edge will do; the neighbor is necessarily
			// matched, or the matching would not be maximum.
			us = append(us, int32(v))
			vs = append(vs, c.Neighbors(v)[0])
		case int(u) > v:
			us = append(us, int32(v))
			vs = append(vs, u)
		}
	}
	return us, vs, nil
}

// FindNEPartitionBipartiteCSR computes a partition for a bipartite CSR
// graph on the guaranteed König route: VC is a König minimum vertex cover
// derived from a CSR Hopcroft–Karp matching, IS its complement, and the
// representatives are simply the matching mates — every König cover
// vertex is matched, its mate lies in IS (each matching edge has exactly
// one cover endpoint), and mates are distinct. Returns
// graph.ErrNotBipartite on an odd cycle and ErrIsolatedVertex when the
// game is ill-defined. O(m sqrt n); allocates the partition and the
// matching scratch.
func FindNEPartitionBipartiteCSR(c *graph.CSR) (PartitionCSR, error) {
	if c.HasIsolatedVertex() {
		return PartitionCSR{}, ErrIsolatedVertex
	}
	side, err := c.Bipartition()
	if err != nil {
		return PartitionCSR{}, err
	}
	return findNEPartitionBipartiteSide(c, side)
}

// findNEPartitionBipartiteSide is the König route with the 2-coloring
// already in hand — the entry FindNEPartitionCSR uses so the routing
// bipartition doubles as the matching's coloring instead of being
// recomputed. side must be a proper 2-coloring of c.
func findNEPartitionBipartiteSide(c *graph.CSR, side []int8) (PartitionCSR, error) {
	mate := matching.HopcroftKarpCSRSubgraph(c, side)
	vc := matching.KonigVertexCoverCSR(c, side, mate)
	return partitionFromRepMatching(c, vc, mate)
}

// FindNEPartitionGreedyCSR tries deterministic greedy maximal independent
// sets (natural and ascending-degree vertex orders) and keeps the first
// complement that admits a system of distinct representatives, decided by
// a subgraph Hopcroft–Karp between VC and IS. It cannot prove
// non-existence: failure is ErrPartitionNotFound. This is the sparse
// route for non-bipartite graphs, where no polynomial guarantee exists
// (see SCALING.md "Routing"). O(tries · m sqrt n); allocates per-try
// scratch.
func FindNEPartitionGreedyCSR(c *graph.CSR) (PartitionCSR, error) {
	if c.HasIsolatedVertex() {
		return PartitionCSR{}, ErrIsolatedVertex
	}
	n := c.NumVertices()
	natural := make([]int32, n)
	for i := range natural {
		natural[i] = int32(i)
	}
	ascending := sortedByDegreeCSR(c)
	for _, order := range [][]int32{natural, ascending} {
		is := GreedyIndependentSetCSR(c, order)
		side := make([]int8, n) // 0 = VC (left), 1 = IS (right)
		for _, v := range is {
			side[v] = 1
		}
		mate := matching.HopcroftKarpCSRSubgraph(c, side)
		saturated := true
		vc := make([]int32, 0, n-len(is))
		for v := 0; v < n; v++ {
			if side[v] != 0 {
				continue
			}
			vc = append(vc, int32(v))
			if mate[v] == matching.Unmatched {
				saturated = false
				break
			}
		}
		if !saturated {
			continue
		}
		if p, err := partitionFromRepMatching(c, vc, mate); err == nil {
			return p, nil
		}
	}
	return PartitionCSR{}, ErrPartitionNotFound
}

// FindNEPartitionCSR is the combined sparse search the large-instance
// solvers use, routed by the bipartiteness check: bipartite graphs take
// the König route (polynomial, always succeeds), everything else the
// greedy-plus-SDR heuristic (which cannot prove non-existence — exact
// refutation stays on the dense path, FindNEPartitionExact). The routing
// BFS is the König route's 2-coloring, so bipartite instances pay for
// exactly one bipartition. O(m sqrt n) on the bipartite route.
func FindNEPartitionCSR(c *graph.CSR) (PartitionCSR, error) {
	if c.HasIsolatedVertex() {
		return PartitionCSR{}, ErrIsolatedVertex
	}
	if side, err := c.Bipartition(); err == nil {
		return findNEPartitionBipartiteSide(c, side)
	}
	return FindNEPartitionGreedyCSR(c)
}

// GreedyIndependentSetCSR returns a maximal independent set built by
// scanning vertices in the given order, ascending — the sparse analogue
// of GreedyIndependentSet. O(n + m); allocates the set, a blocked bitset,
// and the sort scratch.
func GreedyIndependentSetCSR(c *graph.CSR, order []int32) []int32 {
	n := c.NumVertices()
	blocked := graph.GetBitset(n)
	defer graph.PutBitset(blocked)
	var is []int32
	for _, v := range order {
		if v < 0 || int(v) >= n || blocked.Has(v) {
			continue
		}
		is = append(is, v)
		blocked.Set(v)
		for _, u := range c.Neighbors(int(v)) {
			blocked.Set(u)
		}
	}
	sort.Slice(is, func(i, j int) bool { return is[i] < is[j] })
	return is
}

// partitionFromRepMatching assembles a PartitionCSR from a vertex cover
// and a matching that saturates it with IS-side mates, validating the
// result (the König invariants are structural, but a corrupted matching
// must not produce a silently wrong partition).
func partitionFromRepMatching(c *graph.CSR, vc []int32, mate []int32) (PartitionCSR, error) {
	n := c.NumVertices()
	rep := make([]int32, n)
	for i := range rep {
		rep[i] = matching.Unmatched
	}
	inVC := graph.GetBitset(n)
	defer graph.PutBitset(inVC)
	for _, v := range vc {
		inVC.Set(v)
	}
	is := make([]int32, 0, n-len(vc))
	for v := 0; v < n; v++ {
		if !inVC.Has(int32(v)) {
			is = append(is, int32(v))
		}
	}
	for _, v := range vc {
		r := mate[v]
		if r == matching.Unmatched || inVC.Has(r) {
			return PartitionCSR{}, fmt.Errorf("%w: cover vertex %d has no IS mate", ErrPartitionNotFound, v)
		}
		rep[v] = r
	}
	p := PartitionCSR{IS: is, VC: vc, Rep: rep}
	if err := p.Validate(c); err != nil {
		return PartitionCSR{}, fmt.Errorf("%w: %v", ErrPartitionNotFound, err)
	}
	return p, nil
}

// sortedByDegreeCSR returns the vertices in ascending-degree order
// (stable counting sort over degrees). O(n + Δ); allocates the order and
// bucket slices.
func sortedByDegreeCSR(c *graph.CSR) []int32 {
	n := c.NumVertices()
	maxDeg := c.MaxDegree()
	count := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		count[c.Degree(v)+1]++
	}
	for d := 1; d < len(count); d++ {
		count[d] += count[d-1]
	}
	order := make([]int32, n)
	for v := 0; v < n; v++ {
		d := c.Degree(v)
		order[count[d]] = int32(v)
		count[d]++
	}
	return order
}
