package cover

import (
	"errors"
	"testing"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
)

// chordedC4 is the smallest non-bipartite graph admitting a partition:
// C4 (0-1-2-3-0) plus the chord (1,3). IS = {0, 2}, VC = {1, 3}.
func chordedC4() *graph.CSR {
	g := graph.Cycle(4)
	if err := g.AddEdge(1, 3); err != nil {
		panic(err)
	}
	return graph.FromGraph(g)
}

func TestFindNEPartitionBipartiteCSRMatchesDense(t *testing.T) {
	gen := graph.NewSeededGenerator(23)
	cases := map[string]*graph.Graph{
		"path7": graph.Path(7),
		"k33":   graph.CompleteBipartite(3, 3),
		"grid":  graph.Grid(4, 5),
		"tree":  gen.Tree(40),
		"bip":   gen.Bipartite(12, 15, 0.3),
		"baBip": gen.BarabasiAlbertBipartiteCSR(400, 3).ToGraph(),
	}
	for name, g := range cases {
		c := graph.FromGraph(g)
		p, err := FindNEPartitionBipartiteCSR(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(c); err != nil {
			t.Fatalf("%s: invalid partition: %v", name, err)
		}
		dense, err := FindNEPartitionBipartite(g)
		if err != nil {
			t.Fatalf("%s: dense: %v", name, err)
		}
		// Both routes produce König minimum covers, so the sizes agree
		// even when the covers themselves differ.
		if len(p.VC) != len(dense.VC) {
			t.Errorf("%s: CSR cover size %d, dense %d", name, len(p.VC), len(dense.VC))
		}
	}
}

func TestFindNEPartitionCSRRouting(t *testing.T) {
	// Non-bipartite with a partition: routed to the greedy search.
	c := chordedC4()
	p, err := FindNEPartitionCSR(c)
	if err != nil {
		t.Fatalf("chorded C4: %v", err)
	}
	if err := p.Validate(c); err != nil {
		t.Fatalf("chorded C4: invalid partition: %v", err)
	}
	// C5 admits no partition; the heuristic must give up, not mislabel.
	if _, err := FindNEPartitionCSR(graph.FromGraph(graph.Cycle(5))); !errors.Is(err, ErrPartitionNotFound) {
		t.Errorf("C5: got %v, want ErrPartitionNotFound", err)
	}
	// Isolated vertices make the game ill-defined.
	if _, err := FindNEPartitionCSR(graph.FromGraph(graph.New(3))); !errors.Is(err, ErrIsolatedVertex) {
		t.Errorf("edgeless: got %v, want ErrIsolatedVertex", err)
	}
}

func TestMinimumEdgeCoverCSRGallai(t *testing.T) {
	gen := graph.NewSeededGenerator(29)
	for _, g := range []*graph.Graph{
		graph.Path(9),
		graph.CompleteBipartite(2, 5),
		gen.Connected(30, 0.15),
		gen.BarabasiAlbertBipartiteCSR(300, 2).ToGraph(),
	} {
		if !g.IsBipartite() {
			t.Skip("corpus graph unexpectedly non-bipartite")
		}
		c := graph.FromGraph(g)
		mate, _, err := matching.MaximumBipartiteCSR(c)
		if err != nil {
			t.Fatal(err)
		}
		us, vs, err := MinimumEdgeCoverCSRFromMatching(c, mate)
		if err != nil {
			t.Fatal(err)
		}
		if want := c.NumVertices() - matching.SizeCSR(mate); len(us) != want {
			t.Fatalf("cover size %d, want n-mu = %d", len(us), want)
		}
		covered := graph.NewBitset(c.NumVertices())
		for i := range us {
			if !c.HasEdge(int(us[i]), int(vs[i])) {
				t.Fatalf("cover edge (%d,%d) not in graph", us[i], vs[i])
			}
			covered.Set(us[i])
			covered.Set(vs[i])
		}
		for v := 0; v < c.NumVertices(); v++ {
			if !covered.Has(int32(v)) {
				t.Fatalf("vertex %d uncovered", v)
			}
		}
	}
}

func TestMinimumEdgeCoverCSRRejectsIsolated(t *testing.T) {
	c := graph.FromGraph(graph.New(2))
	if _, _, err := MinimumEdgeCoverCSRFromMatching(c, []int32{-1, -1}); !errors.Is(err, ErrIsolatedVertex) {
		t.Errorf("got %v, want ErrIsolatedVertex", err)
	}
}

func TestGreedyIndependentSetCSRIsMaximalIndependent(t *testing.T) {
	g := graph.NewSeededGenerator(31).GNP(40, 0.2)
	c := graph.FromGraph(g)
	order := make([]int32, c.NumVertices())
	for i := range order {
		order[i] = int32(i)
	}
	is := GreedyIndependentSetCSR(c, order)
	member := graph.NewBitset(c.NumVertices())
	for _, v := range is {
		member.Set(v)
	}
	c.EachEdge(func(u, v int32) {
		if member.Has(u) && member.Has(v) {
			t.Fatalf("edge (%d,%d) inside the independent set", u, v)
		}
	})
	// Maximality: every vertex outside is dominated by the set.
	for v := 0; v < c.NumVertices(); v++ {
		if member.Has(int32(v)) {
			continue
		}
		dominated := false
		for _, u := range c.Neighbors(v) {
			if member.Has(u) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("vertex %d could be added: set not maximal", v)
		}
	}
}

func TestPartitionCSRValidateRejectsCorruption(t *testing.T) {
	c := graph.FromGraph(graph.CompleteBipartite(2, 2))
	p, err := FindNEPartitionBipartiteCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Rep = append([]int32(nil), p.Rep...)
	for _, v := range bad.VC {
		bad.Rep[v] = bad.Rep[bad.VC[0]] // reuse one representative
	}
	if len(bad.VC) > 1 && bad.Validate(c) == nil {
		t.Error("reused representative accepted")
	}
	bad = p
	bad.IS = p.VC // not independent in K22 and not a partition
	if bad.Validate(c) == nil {
		t.Error("corrupted IS accepted")
	}
}
