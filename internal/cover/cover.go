// Package cover implements the covering machinery of the paper: minimum edge
// covers (pure equilibria, Theorem 3.1 and Corollary 3.2), vertex covers and
// independent sets (the support structure of matching equilibria), the
// VC-expander conditions of Corollary 4.11, and the search for independent
// set / vertex cover partitions that admit k-matching Nash equilibria.
package cover

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
	"github.com/defender-game/defender/internal/obs"
)

// Edge-cover build counter (catalogued in OBSERVABILITY.md). Compared
// against experiments.cache.cover.misses it shows how many cover builds
// the structure cache is absorbing.
var obsEdgeCoversBuilt = obs.Default().Counter("cover.edge_covers_built")

// Sentinel errors for cover computations.
var (
	// ErrIsolatedVertex is returned when an edge cover is requested for a
	// graph with an isolated vertex (no edge can cover it).
	ErrIsolatedVertex = errors.New("cover: graph has an isolated vertex, no edge cover exists")
	// ErrNoPartition is returned when it is proven that no independent set /
	// expander partition exists (so no k-matching equilibrium exists).
	ErrNoPartition = errors.New("cover: no matching-equilibrium partition exists")
	// ErrPartitionNotFound is returned when the heuristic search gives up
	// without proving non-existence.
	ErrPartitionNotFound = errors.New("cover: heuristic search found no matching-equilibrium partition")
	// ErrTooLarge is returned by exact (exponential) procedures invoked on
	// graphs beyond their configured size limit.
	ErrTooLarge = errors.New("cover: graph too large for exact enumeration")
)

// IsEdgeCover reports whether edges covers every vertex of g, i.e. each
// vertex of g is an endpoint of some listed edge. All listed edges must
// belong to g. O(n + |edges|) expected; allocates the covered bitmap.
func IsEdgeCover(g *graph.Graph, edges []graph.Edge) bool {
	n := g.NumVertices()
	covered := make([]bool, n)
	for _, e := range edges {
		if g.EdgeID(e) < 0 {
			return false
		}
		covered[e.U] = true
		covered[e.V] = true
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// MinimumEdgeCover computes a minimum edge cover of g using Gallai's
// identity rho(G) = n - mu(G): take a maximum matching and extend every
// unmatched vertex with one arbitrary incident edge (Norman–Rabin). The
// maximum matching is computed with Edmonds' blossom algorithm, so g may be
// non-bipartite. Returns ErrIsolatedVertex if some vertex has degree 0.
// O(n^3) (blossom-dominated); allocates the cover and the matching state.
// Sparse path: cover.MinimumEdgeCoverCSRFromMatching.
func MinimumEdgeCover(g *graph.Graph) ([]graph.Edge, error) {
	return MinimumEdgeCoverCtx(context.Background(), g)
}

// MinimumEdgeCoverCtx is MinimumEdgeCover under ctx's trace: the
// Gallai-identity construction (blossom matching + Norman–Rabin
// extension) is timed as the span "cover.gallai" (histogram
// cover.gallai.seconds), with the blossom leg visible inside it as
// "matching.maximum".
func MinimumEdgeCoverCtx(ctx context.Context, g *graph.Graph) ([]graph.Edge, error) {
	sp, ctx := obs.Default().StartSpanCtx(ctx, "cover.gallai")
	defer sp.End()
	if g.HasIsolatedVertex() {
		return nil, ErrIsolatedVertex
	}
	return MinimumEdgeCoverFromMatching(g, matching.MaximumCtx(ctx, g))
}

// MinimumEdgeCoverFromMatching extends an already-computed maximum matching
// of g (as a mate array) into a minimum edge cover, skipping the blossom
// recomputation — the cache-friendly entry point for callers that memoize
// the matching. mate must be a maximum matching of g (Gallai's identity
// only holds then) and g must have no isolated vertex. O(n + m);
// allocates the cover list and per-vertex neighbor copies.
func MinimumEdgeCoverFromMatching(g *graph.Graph, mate []int) ([]graph.Edge, error) {
	if g.HasIsolatedVertex() {
		return nil, ErrIsolatedVertex
	}
	if len(mate) != g.NumVertices() {
		return nil, fmt.Errorf("cover: mate array has length %d, want %d", len(mate), g.NumVertices())
	}
	obsEdgeCoversBuilt.Inc()
	cover := matching.Edges(mate)
	for v := 0; v < g.NumVertices(); v++ {
		if mate[v] == matching.Unmatched {
			// Any incident edge will do; the neighbor is necessarily
			// matched (otherwise the matching would not be maximum).
			u := g.Neighbors(v)[0]
			cover = append(cover, graph.NewEdge(v, u))
		}
	}
	return cover, nil
}

// EdgeCoverNumber returns rho(G), the size of a minimum edge cover, or an
// error if none exists. Cost of MinimumEdgeCover: O(n^3), allocates the
// cover it then discards.
func EdgeCoverNumber(g *graph.Graph) (int, error) {
	return EdgeCoverNumberCtx(context.Background(), g)
}

// EdgeCoverNumberCtx is EdgeCoverNumber with ctx threaded through to
// MinimumEdgeCoverCtx for trace correlation.
func EdgeCoverNumberCtx(ctx context.Context, g *graph.Graph) (int, error) {
	ec, err := MinimumEdgeCoverCtx(ctx, g)
	if err != nil {
		return 0, err
	}
	return len(ec), nil
}

// HasEdgeCoverOfSize reports whether g has an edge cover with exactly k
// edges. Because any edge cover can be padded with extra edges, this holds
// iff rho(G) <= k <= m. This is the existence test of Theorem 3.1.
// Cost of EdgeCoverNumber: O(n^3) and its allocations.
func HasEdgeCoverOfSize(g *graph.Graph, k int) (bool, error) {
	if k < 0 || k > g.NumEdges() {
		return false, nil
	}
	rho, err := EdgeCoverNumber(g)
	if err != nil {
		if errors.Is(err, ErrIsolatedVertex) {
			return false, nil
		}
		return false, err
	}
	return rho <= k, nil
}

// EdgeCoverOfSize returns an edge cover with exactly k edges, built by
// padding a minimum edge cover with arbitrary unused edges. It returns an
// error when rho(G) > k or k > m. O(n^3 + m) (blossom-dominated);
// allocates the cover and a membership map.
func EdgeCoverOfSize(g *graph.Graph, k int) ([]graph.Edge, error) {
	if k > g.NumEdges() {
		return nil, fmt.Errorf("cover: requested cover size %d exceeds edge count %d", k, g.NumEdges())
	}
	ec, err := MinimumEdgeCover(g)
	if err != nil {
		return nil, err
	}
	if len(ec) > k {
		return nil, fmt.Errorf("cover: minimum edge cover has %d edges > requested %d", len(ec), k)
	}
	in := make(map[graph.Edge]bool, len(ec))
	for _, e := range ec {
		in[e] = true
	}
	for _, e := range g.Edges() {
		if len(ec) == k {
			break
		}
		if !in[e] {
			in[e] = true
			ec = append(ec, e)
		}
	}
	return ec, nil
}

// IsVertexCover reports whether vs covers every edge of g. O(n + m);
// allocates a membership bitmap and the edge-list copy.
func IsVertexCover(g *graph.Graph, vs []int) bool {
	member := membership(g.NumVertices(), vs)
	for _, e := range g.Edges() {
		if !member[e.U] && !member[e.V] {
			return false
		}
	}
	return true
}

// IsVertexCoverOfEdges reports whether vs covers every edge in the list,
// i.e. vs is a vertex cover of the graph obtained by the edge set (condition
// 1 of Theorem 3.4 and condition (iii) of Lemma 2.1). O(n + |edges|);
// allocates the membership bitmap.
func IsVertexCoverOfEdges(n int, edges []graph.Edge, vs []int) bool {
	member := membership(n, vs)
	for _, e := range edges {
		if !member[e.U] && !member[e.V] {
			return false
		}
	}
	return true
}

// IsIndependentSet reports whether no edge of g joins two vertices of vs.
// O(n + m); allocates a membership bitmap and the edge-list copy.
func IsIndependentSet(g *graph.Graph, vs []int) bool {
	member := membership(g.NumVertices(), vs)
	for _, e := range g.Edges() {
		if member[e.U] && member[e.V] {
			return false
		}
	}
	return true
}

// MinimumVertexCoverBipartite computes a minimum vertex cover of a bipartite
// graph via Hopcroft–Karp and König's theorem, in O(m sqrt n). It returns
// graph.ErrNotBipartite for graphs with odd cycles. Allocates the sorted
// cover plus the matching scratch.
func MinimumVertexCoverBipartite(g *graph.Graph) ([]int, error) {
	side, err := g.Bipartition()
	if err != nil {
		return nil, err
	}
	mate, err := matching.HopcroftKarp(g, side)
	if err != nil {
		return nil, err
	}
	vc := matching.KonigVertexCover(g, side, mate)
	sort.Ints(vc)
	return vc, nil
}

// MaximumIndependentSetBipartite returns a maximum independent set of a
// bipartite graph (the complement of a minimum vertex cover). O(m sqrt n);
// allocates the set plus MinimumVertexCoverBipartite's scratch.
func MaximumIndependentSetBipartite(g *graph.Graph) ([]int, error) {
	vc, err := MinimumVertexCoverBipartite(g)
	if err != nil {
		return nil, err
	}
	return graph.SetComplement(vc, g.NumVertices()), nil
}

// GreedyVertexCover returns a maximal-matching-based vertex cover (a
// 2-approximation of the minimum) for arbitrary graphs. O(n + m);
// allocates the cover and the greedy mate array.
func GreedyVertexCover(g *graph.Graph) []int {
	mate := matching.Greedy(g)
	var vc []int
	for v, u := range mate {
		if u != matching.Unmatched {
			vc = append(vc, v)
		}
	}
	return vc
}

// GreedyIndependentSet returns a maximal independent set built by scanning
// vertices in the given order (ascending degree is a good default; pass nil
// to use vertex order 0..n-1). O(n + m); allocates the sorted set and a
// blocked bitmap. Sparse path: GreedyIndependentSetCSR.
func GreedyIndependentSet(g *graph.Graph, order []int) []int {
	n := g.NumVertices()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	blocked := make([]bool, n)
	var is []int
	for _, v := range order {
		if v < 0 || v >= n || blocked[v] {
			continue
		}
		is = append(is, v)
		blocked[v] = true
		g.EachNeighbor(v, func(u int) { blocked[u] = true })
	}
	sort.Ints(is)
	return is
}

// membership converts a vertex list into a boolean lookup of length n.
func membership(n int, vs []int) []bool {
	member := make([]bool, n)
	for _, v := range vs {
		if v >= 0 && v < n {
			member[v] = true
		}
	}
	return member
}
