package cover

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
)

func TestIsEdgeCover(t *testing.T) {
	g := graph.Path(4) // edges (0,1),(1,2),(2,3)
	tests := []struct {
		name  string
		edges []graph.Edge
		want  bool
	}{
		{"ends only", []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)}, true},
		{"middle only", []graph.Edge{graph.NewEdge(1, 2)}, false},
		{"all", []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, true},
		{"foreign edge", []graph.Edge{graph.NewEdge(0, 3)}, false},
		{"empty", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsEdgeCover(g, tt.edges); got != tt.want {
				t.Errorf("IsEdgeCover = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMinimumEdgeCoverSizes(t *testing.T) {
	// Gallai: rho = n - mu.
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single edge", graph.Path(2), 1},
		{"path4", graph.Path(4), 2},
		{"path5", graph.Path(5), 3},
		{"star", graph.Star(6), 5},
		{"C5", graph.Cycle(5), 3},
		{"C6", graph.Cycle(6), 3},
		{"K4", graph.Complete(4), 2},
		{"K5", graph.Complete(5), 3},
		{"petersen", graph.Petersen(), 5},
		{"K34", graph.CompleteBipartite(3, 4), 4},
		{"two triangles", twoTriangles(t), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ec, err := MinimumEdgeCover(tt.g)
			if err != nil {
				t.Fatalf("MinimumEdgeCover: %v", err)
			}
			if !IsEdgeCover(tt.g, ec) {
				t.Fatal("result is not an edge cover")
			}
			if len(ec) != tt.want {
				t.Errorf("|EC| = %d, want %d", len(ec), tt.want)
			}
		})
	}
}

func twoTriangles(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestMinimumEdgeCoverIsolated(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := MinimumEdgeCover(g); !errors.Is(err, ErrIsolatedVertex) {
		t.Errorf("err = %v, want ErrIsolatedVertex", err)
	}
}

// Property: Gallai's identity rho(G) = n - mu(G) on random graphs without
// isolated vertices.
func TestPropertyGallaiIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(25), 0.15, seed)
		ec, err := MinimumEdgeCover(g)
		if err != nil {
			return false
		}
		if !IsEdgeCover(g, ec) {
			return false
		}
		mu := matching.Size(matching.Maximum(g))
		return len(ec) == g.NumVertices()-mu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHasEdgeCoverOfSize(t *testing.T) {
	g := graph.Cycle(6) // rho = 3, m = 6
	tests := []struct {
		k    int
		want bool
	}{
		{-1, false}, {0, false}, {2, false}, {3, true}, {5, true}, {6, true}, {7, false},
	}
	for _, tt := range tests {
		got, err := HasEdgeCoverOfSize(g, tt.k)
		if err != nil {
			t.Fatalf("k=%d: %v", tt.k, err)
		}
		if got != tt.want {
			t.Errorf("HasEdgeCoverOfSize(C6,%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
	// Isolated vertices: no cover of any size, but no hard error.
	lonely := graph.New(2)
	got, err := HasEdgeCoverOfSize(lonely, 1)
	if err != nil || got {
		t.Errorf("isolated: got (%v,%v), want (false,nil)", got, err)
	}
}

func TestEdgeCoverOfSize(t *testing.T) {
	g := graph.Cycle(6)
	for k := 3; k <= 6; k++ {
		ec, err := EdgeCoverOfSize(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(ec) != k || !IsEdgeCover(g, ec) {
			t.Fatalf("k=%d: got %d edges, cover=%v", k, len(ec), IsEdgeCover(g, ec))
		}
		// Distinctness.
		seen := make(map[graph.Edge]bool)
		for _, e := range ec {
			if seen[e] {
				t.Fatalf("k=%d: duplicate edge %v", k, e)
			}
			seen[e] = true
		}
	}
	if _, err := EdgeCoverOfSize(g, 2); err == nil {
		t.Error("k below rho must fail")
	}
	if _, err := EdgeCoverOfSize(g, 7); err == nil {
		t.Error("k above m must fail")
	}
}

func TestVertexCoverPredicates(t *testing.T) {
	g := graph.Cycle(4)
	if !IsVertexCover(g, []int{0, 2}) {
		t.Error("{0,2} covers C4")
	}
	if IsVertexCover(g, []int{0, 1}) {
		t.Error("{0,1} misses edge (2,3)")
	}
	if !IsIndependentSet(g, []int{0, 2}) {
		t.Error("{0,2} independent in C4")
	}
	if IsIndependentSet(g, []int{0, 1}) {
		t.Error("{0,1} adjacent")
	}
	if !IsVertexCoverOfEdges(4, []graph.Edge{{U: 0, V: 1}}, []int{1}) {
		t.Error("{1} covers the single edge")
	}
	if IsVertexCoverOfEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, []int{1}) {
		t.Error("{1} misses (2,3)")
	}
}

func TestMinimumVertexCoverBipartite(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int // König: equals max matching size
	}{
		{"path5", graph.Path(5), 2},
		{"star", graph.Star(9), 1},
		{"K35", graph.CompleteBipartite(3, 5), 3},
		{"C8", graph.Cycle(8), 4},
		{"grid", graph.Grid(3, 3), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			vc, err := MinimumVertexCoverBipartite(tt.g)
			if err != nil {
				t.Fatalf("MinimumVertexCoverBipartite: %v", err)
			}
			if len(vc) != tt.want {
				t.Errorf("|VC| = %d, want %d", len(vc), tt.want)
			}
			if !IsVertexCover(tt.g, vc) {
				t.Error("result is not a vertex cover")
			}
		})
	}
	if _, err := MinimumVertexCoverBipartite(graph.Cycle(5)); !errors.Is(err, graph.ErrNotBipartite) {
		t.Errorf("odd cycle: err = %v", err)
	}
}

// bruteForceMinVertexCover finds the true minimum vertex cover size by
// subset enumeration — the oracle for the König construction.
func bruteForceMinVertexCover(g *graph.Graph) int {
	n := g.NumVertices()
	best := n
	for mask := 0; mask < 1<<uint(n); mask++ {
		var vs []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				vs = append(vs, v)
			}
		}
		if len(vs) < best && IsVertexCover(g, vs) {
			best = len(vs)
		}
	}
	return best
}

// Property: the König minimum vertex cover is truly minimum.
func TestPropertyKonigCoverIsMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomBipartite(1+rng.Intn(5), 1+rng.Intn(5), rng.Float64(), seed)
		if g.NumVertices() > 12 {
			return true
		}
		vc, err := MinimumVertexCoverBipartite(g)
		if err != nil {
			return false
		}
		return len(vc) == bruteForceMinVertexCover(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaximumIndependentSetBipartite(t *testing.T) {
	g := graph.CompleteBipartite(3, 5)
	is, err := MaximumIndependentSetBipartite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(is) != 5 || !IsIndependentSet(g, is) {
		t.Errorf("IS = %v", is)
	}
}

func TestGreedyVertexCover(t *testing.T) {
	g := graph.RandomConnected(30, 0.2, 9)
	vc := GreedyVertexCover(g)
	if !IsVertexCover(g, vc) {
		t.Fatal("greedy result is not a vertex cover")
	}
}

func TestGreedyIndependentSet(t *testing.T) {
	g := graph.Cycle(6)
	is := GreedyIndependentSet(g, nil)
	if !IsIndependentSet(g, is) {
		t.Fatal("not independent")
	}
	if len(is) != 3 {
		t.Errorf("|IS| = %d, want 3 on C6 with natural order", len(is))
	}
	// Custom order and junk entries.
	is2 := GreedyIndependentSet(g, []int{5, 99, -3, 1, 3})
	if !IsIndependentSet(g, is2) {
		t.Fatal("custom order: not independent")
	}
	// Maximality: every vertex outside is adjacent to the set.
	member := make(map[int]bool)
	for _, v := range is {
		member[v] = true
	}
	for v := 0; v < g.NumVertices(); v++ {
		if member[v] {
			continue
		}
		adjacent := false
		g.EachNeighbor(v, func(u int) {
			if member[u] {
				adjacent = true
			}
		})
		if !adjacent {
			t.Fatalf("vertex %d could extend the greedy IS", v)
		}
	}
}

func TestMinimumEdgeCoverFromMatching(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(7), graph.Path(6), graph.Star(5), graph.Petersen(),
	} {
		mate := matching.Maximum(g)
		ec, err := MinimumEdgeCoverFromMatching(g, mate)
		if err != nil {
			t.Fatalf("from matching: %v", err)
		}
		want, err := MinimumEdgeCover(g)
		if err != nil {
			t.Fatalf("fresh: %v", err)
		}
		if len(ec) != len(want) || !IsEdgeCover(g, ec) {
			t.Errorf("cover from matching has %d edges (valid=%v), want %d",
				len(ec), IsEdgeCover(g, ec), len(want))
		}
	}
}

func TestMinimumEdgeCoverFromMatchingRejectsBadInput(t *testing.T) {
	g := graph.Cycle(6)
	if _, err := MinimumEdgeCoverFromMatching(g, make([]int, 2)); err == nil {
		t.Error("want error for a mate array of the wrong length")
	}
	iso := graph.New(3)
	if err := iso.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := MinimumEdgeCoverFromMatching(iso, matching.Maximum(iso)); err == nil {
		t.Error("want ErrIsolatedVertex")
	}
}
