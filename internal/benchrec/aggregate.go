package benchrec

import "sort"

// Aggregate folds repeated timing samples of one table (one entry per
// -bench-repeat pass, all describing the same experiment) into a single
// robust record:
//
//   - WallMS is the minimum across samples. The minimum is the
//     least-interfered-with run — scheduler noise, cache cold-start and
//     background load only ever add time — so it is the stable choice
//     for a longitudinal baseline.
//   - CellsPerSec is recomputed as Cells over that minimum wall time.
//   - The latency percentiles (p50/p95/p99) and max are the median
//     across samples of each per-sample statistic, discarding a single
//     outlier pass without letting it dominate.
//
// Identity fields (ID, Rows, Cells, CellTiming) are taken from the first
// sample; the suite is deterministic for a fixed Config, so they agree
// across passes. Aggregate panics on an empty slice — callers always
// have at least one pass.
func Aggregate(samples []Table) Table {
	if len(samples) == 0 {
		// lint:invariant(nakedpanic): every caller aggregates at least one repeat pass
		panic("benchrec: Aggregate of zero samples")
	}
	agg := samples[0]
	agg.Samples = len(samples)
	if len(samples) == 1 {
		return agg
	}
	walls := make([]float64, len(samples))
	p50s := make([]float64, len(samples))
	p95s := make([]float64, len(samples))
	p99s := make([]float64, len(samples))
	maxes := make([]float64, len(samples))
	for i, s := range samples {
		walls[i] = s.WallMS
		p50s[i] = s.CellP50MS
		p95s[i] = s.CellP95MS
		p99s[i] = s.CellP99MS
		maxes[i] = s.CellMaxMS
	}
	agg.WallMS = min64(walls)
	agg.CellsPerSec = 0
	if agg.CellTiming && agg.WallMS > 0 {
		agg.CellsPerSec = float64(agg.Cells) / (agg.WallMS / 1e3)
	}
	agg.CellP50MS = median(p50s)
	agg.CellP95MS = median(p95s)
	agg.CellP99MS = median(p99s)
	agg.CellMaxMS = median(maxes)
	// The slowest-request trace follows the pass with the worst max
	// latency — the run an investigator would want the waterfall for.
	worst := samples[0]
	for _, s := range samples[1:] {
		if s.CellMaxMS > worst.CellMaxMS {
			worst = s
		}
	}
	agg.SlowestTraceID = worst.SlowestTraceID
	return agg
}

func min64(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// median returns the standard sample median (mean of the two middle
// order statistics for even n).
func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
