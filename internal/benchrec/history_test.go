package benchrec

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func historyReport(ts time.Time, sha string) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Suite:         "experiments",
		Timestamp:     ts,
		GitSHA:        sha,
		GOOS:          "linux",
		GOARCH:        "amd64",
	}
}

func TestHistoryFileName(t *testing.T) {
	ts := time.Date(2026, 8, 5, 9, 30, 1, 0, time.UTC)
	r := historyReport(ts, "0123456789abcdef0123456789abcdef01234567")
	if got, want := HistoryFileName(r), "20260805T093001Z-0123456789ab.json"; got != want {
		t.Errorf("HistoryFileName = %q, want %q", got, want)
	}
	r.GitSHA = ""
	if got := HistoryFileName(r); got != "20260805T093001Z-nogit.json" {
		t.Errorf("no-git name = %q", got)
	}
}

func TestAppendHistoryIsAppendOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	ts := time.Date(2026, 8, 5, 9, 30, 1, 0, time.UTC)
	r := historyReport(ts, "aaaabbbbccccddddeeeeffff0000111122223333")

	first, err := AppendHistory(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	// Same second, same commit: must land in a new file, not overwrite.
	second, err := AppendHistory(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatalf("collision overwrote %s", first)
	}
	if !strings.HasSuffix(second, "-1.json") {
		t.Errorf("collision suffix missing: %s", second)
	}
	for _, p := range []string{first, second} {
		if _, err := Load(p); err != nil {
			t.Errorf("appended record %s does not load: %v", p, err)
		}
	}
}

func TestListHistoryAndLatestPair(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	base := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)

	if _, _, err := LatestPair(dir); err == nil {
		t.Error("LatestPair on a missing dir must fail")
	}

	var paths []string
	for i := 0; i < 3; i++ {
		p, err := AppendHistory(dir, historyReport(base.Add(time.Duration(i)*time.Hour), "feedfacefeedfacefeedfacefeedfacefeedface"))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	listed, err := ListHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 3 {
		t.Fatalf("ListHistory returned %d entries, want 3", len(listed))
	}
	for i := range paths {
		if listed[i] != paths[i] {
			t.Errorf("listed[%d] = %s, want chronological %s", i, listed[i], paths[i])
		}
	}

	baseline, latest, err := LatestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if baseline != paths[1] || latest != paths[2] {
		t.Errorf("LatestPair = (%s, %s), want the two newest (%s, %s)", baseline, latest, paths[1], paths[2])
	}
}

func TestLatestPairNeedsTwoRecords(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	if _, err := AppendHistory(dir, historyReport(time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC), "")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LatestPair(dir); err == nil || !strings.Contains(err.Error(), "need two") {
		t.Errorf("single-record LatestPair error = %v, want a need-two message", err)
	}
}
