package benchrec

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// sampleReport builds a fully populated record like a -bench-out run's.
func sampleReport() *Report {
	r := obs.NewRegistry()
	r.SetEnabled(true)
	r.Counter("experiments.cells.ok").Add(42)
	r.Gauge("experiments.workers.effective").Set(4)
	r.Histogram("experiments.cell_seconds").Observe(0.002)
	return &Report{
		SchemaVersion:    SchemaVersion,
		Suite:            "experiments",
		Quick:            true,
		Seed:             1,
		GitSHA:           "0123456789abcdef0123456789abcdef01234567",
		Timestamp:        time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Hostname:         "bench-host",
		GOOS:             "linux",
		GOARCH:           "amd64",
		WorkersRequested: 0,
		WorkersEffective: 4,
		GoMaxProcs:       4,
		BenchRepeat:      3,
		TotalWallMS:      123.456,
		Tables: []Table{
			{ID: "E1", Rows: 39, Cells: 39, CellTiming: true, Samples: 3,
				WallMS: 0.6, CellsPerSec: 65000, CellP50MS: 0.001, CellP95MS: 0.04, CellP99MS: 0.05, CellMaxMS: 0.09},
			{ID: "E3", Rows: 18, Cells: 0, CellTiming: false, Samples: 3, WallMS: 7.6},
		},
		Metrics: r.Snapshot(),
	}
}

func TestSaveLoadRoundTripsByteIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	orig := sampleReport()
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	second, err := loaded.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("load/save round trip is not byte-identical:\n--- saved ---\n%s\n--- resaved ---\n%s", first, second)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Error("canonical form must end in a newline")
	}
}

func TestLoadRejectsMalformedAndWrongSchema(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, body, wantErr string
	}{
		{"garbage.json", "not json at all", "not a bench record"},
		{"trailing.json", `{"schema_version":2,"suite":"experiments"} {"again":true}`, "trailing data"},
		{"unknown-field.json", `{"schema_version":2,"suite":"experiments","surprise":1}`, "not a bench record"},
		{"pre-schema.json", `{"suite":"experiments","tables":[]}`, "no schema_version"},
		{"future.json", `{"schema_version":99,"suite":"experiments"}`, "schema_version 99"},
		{"no-suite.json", `{"schema_version":2}`, "empty suite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(write(tc.name, tc.body))
			if err == nil {
				t.Fatalf("Load(%s) accepted invalid input", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Load of a missing file must fail")
	}
}

func TestStampEnvironment(t *testing.T) {
	var r Report
	before := time.Now().UTC().Add(-time.Second)
	r.StampEnvironment("")
	if r.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	if r.GOOS != runtime.GOOS || r.GOARCH != runtime.GOARCH {
		t.Errorf("goos/goarch = %s/%s", r.GOOS, r.GOARCH)
	}
	if r.Timestamp.Before(before) || r.Timestamp.Location() != time.UTC {
		t.Errorf("timestamp %v not a fresh UTC time", r.Timestamp)
	}
	if r.Timestamp.Nanosecond() != 0 {
		t.Error("timestamp must be truncated to seconds for a stable canonical form")
	}
	// This test runs inside the repository, so the best-effort SHA resolves.
	if len(r.GitSHA) != 40 {
		t.Errorf("git_sha = %q, want a 40-char commit inside the repo", r.GitSHA)
	}
}

func TestGitSHAOutsideRepo(t *testing.T) {
	if sha := GitSHA(t.TempDir()); sha != "" {
		t.Errorf("GitSHA outside a checkout = %q, want empty", sha)
	}
}

func TestAggregateRobustStatistics(t *testing.T) {
	samples := []Table{
		{ID: "E2", Rows: 26, Cells: 6, CellTiming: true, WallMS: 12, CellsPerSec: 500, CellP50MS: 1.6, CellP95MS: 3.5, CellP99MS: 3.9, CellMaxMS: 4.0},
		{ID: "E2", Rows: 26, Cells: 6, CellTiming: true, WallMS: 10, CellsPerSec: 600, CellP50MS: 1.5, CellP95MS: 3.0, CellP99MS: 3.5, CellMaxMS: 3.6},
		// A pass hit by background load: must not drag the aggregate.
		{ID: "E2", Rows: 26, Cells: 6, CellTiming: true, WallMS: 90, CellsPerSec: 66, CellP50MS: 9.9, CellP95MS: 30, CellP99MS: 31, CellMaxMS: 32},
	}
	agg := Aggregate(samples)
	if agg.ID != "E2" || agg.Rows != 26 || agg.Cells != 6 || !agg.CellTiming {
		t.Errorf("identity fields wrong: %+v", agg)
	}
	if agg.Samples != 3 {
		t.Errorf("samples = %d, want 3", agg.Samples)
	}
	if agg.WallMS != 10 {
		t.Errorf("wall = %v, want the minimum 10", agg.WallMS)
	}
	if want := 6 / (10.0 / 1e3); agg.CellsPerSec != want {
		t.Errorf("cells_per_sec = %v, want %v (cells over min wall)", agg.CellsPerSec, want)
	}
	if agg.CellP50MS != 1.6 || agg.CellP95MS != 3.5 || agg.CellP99MS != 3.9 || agg.CellMaxMS != 4.0 {
		t.Errorf("percentiles not the per-statistic medians: %+v", agg)
	}
}

func TestAggregateZeroCellTable(t *testing.T) {
	samples := []Table{
		{ID: "E3", Rows: 18, WallMS: 8},
		{ID: "E3", Rows: 18, WallMS: 7},
	}
	agg := Aggregate(samples)
	if agg.WallMS != 7 || agg.CellsPerSec != 0 || agg.CellTiming {
		t.Errorf("zero-cell aggregate must keep throughput zero: %+v", agg)
	}
}

func TestAggregateSingleSample(t *testing.T) {
	agg := Aggregate([]Table{{ID: "E1", Cells: 3, CellTiming: true, WallMS: 5, CellsPerSec: 600}})
	if agg.Samples != 1 || agg.WallMS != 5 || agg.CellsPerSec != 600 {
		t.Errorf("single-sample aggregate must pass through: %+v", agg)
	}
}
