package benchrec

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// History file names start with the run's UTC timestamp in this compact
// layout, so a lexical sort of the directory is a chronological sort of
// the record.
const historyStampLayout = "20060102T150405Z"

// HistoryFileName derives the append-only store's file name for a report:
// "<timestamp>-<sha12>.json", falling back to "nogit" outside a checkout.
// The timestamp prefix makes lexical directory order chronological.
func HistoryFileName(r *Report) string {
	sha := r.GitSHA
	if sha == "" {
		sha = "nogit"
	} else if len(sha) > 12 {
		sha = sha[:12]
	}
	return fmt.Sprintf("%s-%s.json", r.Timestamp.UTC().Format(historyStampLayout), sha)
}

// AppendHistory writes the report to dir (created if missing) under its
// HistoryFileName, suffixing "-1", "-2", … rather than overwriting when
// two runs of the same second and commit collide — the store is
// append-only by construction. It returns the path written.
func AppendHistory(dir string, r *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("benchrec: history dir: %w", err)
	}
	base := strings.TrimSuffix(HistoryFileName(r), ".json")
	path := filepath.Join(dir, base+".json")
	for i := 1; ; i++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		} else if err != nil {
			return "", fmt.Errorf("benchrec: history dir: %w", err)
		}
		path = filepath.Join(dir, fmt.Sprintf("%s-%d.json", base, i))
	}
	if err := r.Save(path); err != nil {
		return "", err
	}
	return path, nil
}

// ListHistory returns the history record paths in dir, oldest first
// (lexical order — chronological by construction of HistoryFileName).
// Non-JSON files (a README, editor droppings) are ignored.
func ListHistory(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("benchrec: history dir: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	return paths, nil
}

// LatestPair returns the two most recent history records in dir — the
// benchdiff baseline (second newest) and candidate (newest) — or an error
// when the store holds fewer than two.
func LatestPair(dir string) (baseline, latest string, err error) {
	paths, err := ListHistory(dir)
	if err != nil {
		return "", "", err
	}
	if len(paths) < 2 {
		return "", "", fmt.Errorf("benchrec: history %s holds %d record(s); need two to diff", dir, len(paths))
	}
	return paths[len(paths)-2], paths[len(paths)-1], nil
}
