// Package benchrec defines the versioned on-disk schema of the perf
// baselines written by cmd/experiments (-bench-out, -bench-history) and
// consumed by cmd/benchdiff: a Report stamps one suite run with its git
// SHA, timestamp and host environment, carries per-table wall time,
// throughput and cell-latency percentiles, and embeds the full
// observability snapshot of internal/obs.
//
// The package is the single serializer for that schema: Save writes
// canonical indented JSON and Load rejects malformed input and unknown
// schema versions, so a report produced by Save round-trips through
// Load/Save byte-identically. History (history.go) appends reports to a
// directory, one file per run, building the longitudinal record that
// benchdiff gates against; Aggregate (aggregate.go) folds repeated
// samples of one table into a robust min/median record.
package benchrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// SchemaVersion is the current bench-record schema. Version 1 was the
// unversioned BENCH_experiments.json of the first observability PR (no
// environment stamp, no p99/max, no cell_timing marker); Load rejects
// those with a regeneration hint rather than silently comparing
// incompatible shapes.
const SchemaVersion = 2

// Report is one suite run's perf record: the schema of
// BENCH_experiments.json and of every bench/history entry.
type Report struct {
	// SchemaVersion identifies the record shape; Load accepts only the
	// package's SchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Suite names the producing command ("experiments").
	Suite string `json:"suite"`
	// Quick records whether the reduced sweeps ran.
	Quick bool `json:"quick"`
	// Seed is the workload seed the suite ran with.
	Seed int64 `json:"seed"`
	// GitSHA is the commit the binary was built from (best effort; empty
	// when the working tree is not a git checkout).
	GitSHA string `json:"git_sha,omitempty"`
	// Timestamp is the UTC completion time of the run, second resolution
	// so the canonical JSON form is stable.
	Timestamp time.Time `json:"timestamp"`
	// Hostname, GOOS and GOARCH identify the machine: cross-host deltas
	// are hardware comparisons, not regressions, and benchdiff flags them.
	Hostname string `json:"hostname,omitempty"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	// WorkersRequested is the raw -workers flag (0 = defaulted);
	// WorkersEffective is the pool size the tables actually ran with.
	WorkersRequested int `json:"workers_requested"`
	WorkersEffective int `json:"workers_effective"`
	GoMaxProcs       int `json:"gomaxprocs"`
	// BenchRepeat is the number of timing passes each table ran
	// (-bench-repeat); per-table figures aggregate that many samples.
	BenchRepeat int `json:"bench_repeat"`
	// TotalWallMS is the wall time of the whole suite invocation,
	// including every repeat pass.
	TotalWallMS float64 `json:"total_wall_ms"`
	// Tables holds one aggregated entry per experiment, in run order.
	Tables []Table `json:"tables"`
	// Metrics is the observability snapshot taken after the suite. With
	// BenchRepeat > 1 counters accumulate across all passes.
	Metrics obs.Snapshot `json:"metrics"`
}

// Table is one experiment's aggregated perf entry.
type Table struct {
	// ID is the experiment identifier ("E1".."E16").
	ID string `json:"id"`
	// Rows is the number of rendered table rows; Cells the number of
	// runner-executed work units behind them.
	Rows  int `json:"rows"`
	Cells int `json:"cells"`
	// CellTiming is false for tables whose work happens outside the cell
	// runner (Cells == 0): their throughput and percentile fields are
	// structurally zero, not a measurement, and benchdiff skips
	// throughput comparison for them.
	CellTiming bool `json:"cell_timing"`
	// Samples is how many timing passes this entry aggregates.
	Samples int `json:"samples"`
	// Threads is the solver thread budget the table ran with (0 = the
	// suite's single-threaded default). Tables from one -threads ladder
	// share a record; benchdiff compares like against like because rungs
	// above 1 carry a /threads=N ID suffix.
	Threads int `json:"threads,omitempty"`
	// WallMS is the table's wall time: the minimum across samples (the
	// least-interfered-with run; see Aggregate).
	WallMS float64 `json:"wall_ms"`
	// CellsPerSec is Cells over the minimum wall time.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Cell latency percentiles and max in milliseconds: the median
	// across samples of each per-sample nearest-rank statistic.
	CellP50MS float64 `json:"cell_p50_ms"`
	CellP95MS float64 `json:"cell_p95_ms"`
	CellP99MS float64 `json:"cell_p99_ms"`
	CellMaxMS float64 `json:"cell_max_ms"`
	// SlowestTraceID is the trace id (X-Defender-Trace-Id) of the request
	// behind CellMaxMS, recorded by suites that drive a traced service
	// (cmd/loadgen): the record's worst latency links straight to its
	// tracetool waterfall. Empty for suites without request traces.
	SlowestTraceID string `json:"slowest_trace_id,omitempty"`
}

// StampEnvironment fills the report's provenance fields: SchemaVersion,
// GitSHA (best effort, from repoDir or the working directory when empty),
// Timestamp (now, UTC, second resolution), Hostname, GOOS and GOARCH.
func (r *Report) StampEnvironment(repoDir string) {
	r.SchemaVersion = SchemaVersion
	r.GitSHA = GitSHA(repoDir)
	r.Timestamp = time.Now().UTC().Truncate(time.Second)
	if host, err := os.Hostname(); err == nil {
		r.Hostname = host
	}
	r.GOOS = runtime.GOOS
	r.GOARCH = runtime.GOARCH
}

// GitSHA returns the HEAD commit of the repository containing dir (the
// working directory when dir is empty), or "" when git or the repository
// is unavailable — bench records stay usable outside a checkout.
func GitSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Marshal renders the report in its canonical form: two-space indented
// JSON with a trailing newline. Save, the history store and the
// -bench-out emission all funnel through here, so any two byte-equal
// records are the same measurement.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchrec: marshal report: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the report to path in canonical form.
func (r *Report) Save(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchrec: save report: %w", err)
	}
	return nil
}

// Parse decodes a bench record, rejecting malformed JSON, unknown fields,
// and any schema version other than the current one with a descriptive
// error. name labels the source in errors (a path, usually).
func Parse(name string, data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchrec: %s is not a bench record: %w", name, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("benchrec: %s has trailing data after the report object", name)
	}
	switch {
	case r.SchemaVersion == 0:
		return nil, fmt.Errorf("benchrec: %s has no schema_version — pre-v%d record; regenerate it with a current cmd/experiments -bench-out", name, SchemaVersion)
	case r.SchemaVersion != SchemaVersion:
		return nil, fmt.Errorf("benchrec: %s has schema_version %d, this tool reads %d", name, r.SchemaVersion, SchemaVersion)
	}
	if r.Suite == "" {
		return nil, fmt.Errorf("benchrec: %s has an empty suite field", name)
	}
	return &r, nil
}

// Load reads and validates the bench record at path.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchrec: %w", err)
	}
	return Parse(path, data)
}
