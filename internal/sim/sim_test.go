package sim

import (
	"errors"
	"math"
	"testing"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestRunValidations(t *testing.T) {
	g := graph.Cycle(4)
	ne, err := core.SolveTupleModel(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ne.Game, ne.Profile, 0, 1); !errors.Is(err, ErrBadRounds) {
		t.Errorf("rounds=0: err = %v, want ErrBadRounds", err)
	}
	bad := ne.Profile
	bad.VP = bad.VP[:1]
	if _, err := Run(ne.Game, bad, 10, 1); !errors.Is(err, game.ErrInvalidProfile) {
		t.Errorf("invalid profile: err = %v, want ErrInvalidProfile", err)
	}
}

func TestRunConvergesToExactExpectation(t *testing.T) {
	// k-matching NE on K_{3,5}: MeanCaught must approach kν/|IS| within 4σ.
	g := graph.CompleteBipartite(3, 5)
	ne, err := core.SolveTupleModel(g, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ne.Game, ne.Profile, 40_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ne.DefenderGain().Float64()
	if math.Abs(res.ExpectedCaught-want) > 1e-12 {
		t.Errorf("ExpectedCaught = %v, want %v", res.ExpectedCaught, want)
	}
	if z := math.Abs(res.ZScore()); z > 4 {
		t.Errorf("empirical mean %.4f vs exact %.4f: |z| = %.2f > 4", res.MeanCaught, want, z)
	}
	if res.Rounds != 40_000 {
		t.Errorf("Rounds = %d", res.Rounds)
	}
}

func TestRunEscapeRatesMatchHitProbability(t *testing.T) {
	// In a k-matching NE every attacker escapes with probability
	// 1 − k/|EC| (Claim 4.3).
	g := graph.Grid(3, 4)
	ne, err := core.SolveTupleModel(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ne.Game, ne.Profile, 30_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	hitProb, _ := ne.HitProbability().Float64()
	wantEscape := 1 - hitProb
	for i, rate := range res.EscapeRate {
		if math.Abs(rate-wantEscape) > 0.02 {
			t.Errorf("attacker %d escape rate %.4f, want ≈ %.4f", i, rate, wantEscape)
		}
	}
}

func TestRunVertexHitFrequencies(t *testing.T) {
	// Support vertices are hit with empirical frequency ≈ k/|EC|.
	g := graph.CompleteBipartite(2, 6)
	ne, err := core.SolveTupleModel(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ne.Game, ne.Profile, 30_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	hit := ne.Game.HitProbabilities(ne.Profile)
	for v := 0; v < g.NumVertices(); v++ {
		want, _ := hit[v].Float64()
		if math.Abs(res.VertexHitFreq[v]-want) > 0.02 {
			t.Errorf("vertex %d hit freq %.4f, want ≈ %.4f", v, res.VertexHitFreq[v], want)
		}
	}
}

func TestRunDeterministicSeeds(t *testing.T) {
	g := graph.Cycle(6)
	ne, err := core.SolveTupleModel(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(ne.Game, ne.Profile, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ne.Game, ne.Profile, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanCaught != b.MeanCaught {
		t.Error("same seed must reproduce results")
	}
	c, err := Run(ne.Game, ne.Profile, 1000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanCaught == c.MeanCaught && a.VarCaught == c.VarCaught {
		t.Log("different seeds produced identical stats (unlikely but possible)")
	}
}

func TestBestResponseGainZeroAtEquilibrium(t *testing.T) {
	g := graph.Grid(3, 3)
	ne, err := core.SolveTupleModel(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ne.Game.Attackers(); i++ {
		gain, err := BestResponseGain(ne.Game, ne.Profile, i)
		if err != nil {
			t.Fatal(err)
		}
		if gain.Sign() != 0 {
			t.Errorf("attacker %d has deviation gain %v at equilibrium", i, gain)
		}
	}
	if _, err := BestResponseGain(ne.Game, ne.Profile, 99); err == nil {
		t.Error("attacker index out of range must fail")
	}
}

func TestBestResponseGainPositiveOffEquilibrium(t *testing.T) {
	// Attacker mass on a covered vertex while another vertex is hit less
	// often: positive deviation gain.
	g := graph.Path(4)
	gm, err := game.New(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := game.NewTupleFromIDs(g, []int{0}) // covers {0,1}
	if err != nil {
		t.Fatal(err)
	}
	ts, err := game.UniformTupleStrategy([]game.Tuple{tp})
	if err != nil {
		t.Fatal(err)
	}
	mp := game.NewSymmetricProfile(1, game.UniformVertexStrategy([]int{0}), ts)
	gain, err := BestResponseGain(gm, mp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gain.Sign() <= 0 {
		t.Errorf("gain = %v, want positive", gain)
	}
}

func TestZScoreDegenerate(t *testing.T) {
	r := Result{MeanCaught: 2, ExpectedCaught: 2}
	if z := r.ZScore(); z != 0 {
		t.Errorf("z = %v, want 0", z)
	}
	r2 := Result{MeanCaught: 3, ExpectedCaught: 2}
	if z := r2.ZScore(); !math.IsInf(z, 1) {
		t.Errorf("z = %v, want +Inf", z)
	}
	r3 := Result{MeanCaught: 1, ExpectedCaught: 2}
	if z := r3.ZScore(); !math.IsInf(z, -1) {
		t.Errorf("z = %v, want -Inf", z)
	}
}

func TestSamplerDistribution(t *testing.T) {
	// Deterministic single-outcome sampler.
	g := graph.Path(2)
	ne, err := core.SolveTupleModel(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ne.Game, ne.Profile, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	// K2: single edge covers everything; defender always catches ν=1.
	if res.MeanCaught != 1 || res.VarCaught != 0 || res.StdErr != 0 {
		t.Errorf("K2 run: %+v", res)
	}
}
