// Package sim provides a Monte-Carlo playout engine for the Tuple model:
// it samples pure outcomes from a mixed configuration round after round and
// accumulates empirical statistics. The experiments use it to validate the
// exact expected profits (equations (1) and (2) of the paper) — e.g. the
// defender's empirical catch count converging on k·ν/|IS| in a k-matching
// equilibrium — and to demonstrate deviation incentives for out-of-
// equilibrium profiles.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"github.com/defender-game/defender/internal/game"
)

// ErrBadRounds rejects non-positive round counts.
var ErrBadRounds = errors.New("sim: rounds must be positive")

// Result holds the empirical statistics of a simulation run.
type Result struct {
	// Rounds is the number of independent rounds played.
	Rounds int
	// MeanCaught is the empirical mean of the defender's profit (number of
	// attackers caught per round).
	MeanCaught float64
	// VarCaught is the unbiased sample variance of the per-round catch.
	VarCaught float64
	// StdErr is the standard error of MeanCaught.
	StdErr float64
	// EscapeRate[i] is the fraction of rounds attacker i escaped.
	EscapeRate []float64
	// VertexHitFreq[v] is the fraction of rounds in which the defender's
	// sampled tuple covered vertex v.
	VertexHitFreq []float64
	// ExpectedCaught is the exact expectation IP_tp from the profile, for
	// convenience in reports.
	ExpectedCaught float64
}

// meanAgreeTol bounds when the empirical mean is considered to coincide
// with the exact expectation in ZScore's degenerate zero-StdErr branch.
// Empirical means are integer multiples of 1/rounds, so a genuine
// disagreement is many orders of magnitude larger than this.
const meanAgreeTol = 1e-12

// ZScore returns (MeanCaught − ExpectedCaught) / StdErr, the standardized
// deviation of the empirical mean from the exact expectation. Values within
// ±3 are expected for a correct sampler. Returns 0 when StdErr is 0 and the
// means agree (within meanAgreeTol), +Inf/-Inf otherwise.
func (r Result) ZScore() float64 {
	diff := r.MeanCaught - r.ExpectedCaught
	if r.StdErr <= 0 { // the standard error is non-negative by construction
		if math.Abs(diff) <= meanAgreeTol {
			return 0
		}
		return math.Inf(int(math.Copysign(1, diff)))
	}
	return diff / r.StdErr
}

// sampler draws indices from a fixed discrete distribution via inverse CDF.
type sampler struct {
	cum []float64
}

// newSampler converts exact rational probabilities to a float cumulative.
func newSampler(probs []*big.Rat) sampler {
	cum := make([]float64, len(probs))
	total := 0.0
	for i, p := range probs {
		f, _ := p.Float64()
		total += f
		cum[i] = total
	}
	// Guard the tail against float rounding.
	if len(cum) > 0 {
		cum[len(cum)-1] = 1.0
	}
	return sampler{cum: cum}
}

// draw returns an index distributed according to the sampler.
func (s sampler) draw(rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Run plays the mixed configuration for the given number of rounds with a
// deterministic seed and returns the empirical statistics.
func Run(gm *game.Game, mp game.MixedProfile, rounds int, seed int64) (Result, error) {
	if rounds <= 0 {
		return Result{}, fmt.Errorf("%w: %d", ErrBadRounds, rounds)
	}
	if err := gm.Validate(mp); err != nil {
		return Result{}, err
	}
	g := gm.Graph()
	rng := rand.New(rand.NewSource(seed))

	// Precompute attacker samplers.
	nu := gm.Attackers()
	vpSupports := make([][]int, nu)
	vpSamplers := make([]sampler, nu)
	for i, s := range mp.VP {
		support := s.Support()
		probs := make([]*big.Rat, len(support))
		for j, v := range support {
			probs[j] = s.Prob(v)
		}
		vpSupports[i] = support
		vpSamplers[i] = newSampler(probs)
	}

	// Precompute defender sampler and per-tuple coverage bitmaps.
	tuples := mp.TP.Support()
	tpProbs := make([]*big.Rat, len(tuples))
	coverage := make([][]bool, len(tuples))
	for j, t := range tuples {
		tpProbs[j] = mp.TP.Prob(t)
		cov := make([]bool, g.NumVertices())
		for _, v := range t.Vertices(g) {
			cov[v] = true
		}
		coverage[j] = cov
	}
	tpSampler := newSampler(tpProbs)

	var (
		sumCaught   float64
		sumCaughtSq float64
		escapes     = make([]int, nu)
		hits        = make([]int, g.NumVertices())
	)
	for round := 0; round < rounds; round++ {
		cov := coverage[tpSampler.draw(rng)]
		for v, c := range cov {
			if c {
				hits[v]++
			}
		}
		caught := 0
		for i := 0; i < nu; i++ {
			v := vpSupports[i][vpSamplers[i].draw(rng)]
			if cov[v] {
				caught++
			} else {
				escapes[i]++
			}
		}
		sumCaught += float64(caught)
		sumCaughtSq += float64(caught) * float64(caught)
	}

	mean := sumCaught / float64(rounds)
	variance := 0.0
	if rounds > 1 {
		variance = (sumCaughtSq - sumCaught*mean) / float64(rounds-1)
		if variance < 0 {
			variance = 0 // float cancellation guard
		}
	}
	escapeRate := make([]float64, nu)
	for i, e := range escapes {
		escapeRate[i] = float64(e) / float64(rounds)
	}
	hitFreq := make([]float64, g.NumVertices())
	for v, h := range hits {
		hitFreq[v] = float64(h) / float64(rounds)
	}
	expected, _ := gm.ExpectedProfitTP(mp).Float64()
	return Result{
		Rounds:         rounds,
		MeanCaught:     mean,
		VarCaught:      variance,
		StdErr:         math.Sqrt(variance / float64(rounds)),
		EscapeRate:     escapeRate,
		VertexHitFreq:  hitFreq,
		ExpectedCaught: expected,
	}, nil
}

// BestResponseGain estimates, by simulation against the defender's marginal
// coverage, how much a single attacker could gain by relocating to the
// least-covered vertex instead of playing its equilibrium strategy. In an
// exact equilibrium the advantage is zero; the experiments use this as an
// empirical no-regret check.
func BestResponseGain(gm *game.Game, mp game.MixedProfile, attacker int) (*big.Rat, error) {
	if err := gm.Validate(mp); err != nil {
		return nil, err
	}
	if attacker < 0 || attacker >= gm.Attackers() {
		return nil, fmt.Errorf("sim: attacker index %d out of range", attacker)
	}
	hit := gm.HitProbabilities(mp)
	minHit := new(big.Rat).Set(hit[0])
	for _, h := range hit[1:] {
		if h.Cmp(minHit) < 0 {
			minHit.Set(h)
		}
	}
	// Equilibrium payoff of this attacker.
	current := gm.ExpectedProfitVP(mp, attacker)
	best := new(big.Rat).Sub(big.NewRat(1, 1), minHit)
	return new(big.Rat).Sub(best, current), nil
}
