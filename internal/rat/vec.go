package rat

import "math/big"

// Vec is a dense vector of Rat values. Because Rat is a value type, a Vec
// is one contiguous allocation and element arithmetic on the small path
// touches no heap memory at all — the scratch-buffer shape the solver hot
// loops (simplex rows, vertex-load accumulators, branch-and-bound
// potentials) are written against.
type Vec []Rat

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// FromBig converts a slice of big.Rat values (nil entries count as zero)
// into a Vec, demoting every value that fits int64.
func FromBig(rs []*big.Rat) Vec {
	v := make(Vec, len(rs))
	for i, r := range rs {
		if r != nil {
			v[i].SetBig(r)
		}
	}
	return v
}

// ToBig converts v into freshly allocated big.Rat values — the bridge
// back to the library's public *big.Rat surfaces.
func (v Vec) ToBig() []*big.Rat {
	out := make([]*big.Rat, len(v))
	for i := range v {
		out[i] = v[i].Big()
	}
	return out
}

// Clone returns an independent copy of v. Promoted entries share their
// immutable big.Rat payloads, which no operation mutates in place.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero resets every entry of v to 0, keeping the storage.
func (v Vec) Zero() {
	for i := range v {
		v[i] = Rat{}
	}
}

// Sum sets z to the sum of v's entries and returns z.
func (v Vec) Sum(z *Rat) *Rat {
	z.SetInt64(0)
	for i := range v {
		z.Add(z, &v[i])
	}
	return z
}
