package rat

import (
	"math/big"
	"testing"
)

// The kernel micro-benchmarks, consumed by `make bench-kernel` through
// cmd/benchkernel: each op benchmark has a big.Rat twin with the same
// workload so the fast-path speedup is directly visible in one run.

// workload is a fixed cycle of small fractions shaped like the solver's
// values (probabilities 1/|M|, loads ν/(2k), pivot ratios).
var workload = [][2]int64{
	{1, 3}, {2, 7}, {-5, 12}, {7, 24}, {1, 60}, {-11, 30}, {13, 8}, {3, 40},
}

func BenchmarkAddSmall(b *testing.B) {
	var acc, term Rat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := workload[i%len(workload)]
		term.SetFrac64(w[0], w[1])
		acc.Add(&acc, &term)
	}
}

func BenchmarkAddBigRat(b *testing.B) {
	acc := new(big.Rat)
	term := new(big.Rat)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := workload[i%len(workload)]
		term.SetFrac64(w[0], w[1])
		acc.Add(acc, term)
	}
}

func BenchmarkMulSmall(b *testing.B) {
	var acc, term Rat
	acc.SetFrac64(355, 113)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := workload[i%len(workload)]
		term.SetFrac64(w[0], w[1])
		acc.Mul(&acc, &term)
		if !acc.IsSmall() {
			acc.SetFrac64(355, 113) // keep the loop on the fast path
		}
	}
}

func BenchmarkMulBigRat(b *testing.B) {
	acc := big.NewRat(355, 113)
	term := new(big.Rat)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := workload[i%len(workload)]
		term.SetFrac64(w[0], w[1])
		acc.Mul(acc, term)
		if acc.Num().BitLen() > 62 || acc.Denom().BitLen() > 62 {
			acc.SetFrac64(355, 113)
		}
	}
}

func BenchmarkCmpSmall(b *testing.B) {
	var x, y Rat
	x.SetFrac64(7919, 7907)
	y.SetFrac64(7907, 7901)
	sink := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += x.Cmp(&y)
	}
	if sink <= 0 {
		b.Fatal("comparison produced the wrong sign")
	}
}

func BenchmarkCmpBigRat(b *testing.B) {
	x := big.NewRat(7919, 7907)
	y := big.NewRat(7907, 7901)
	sink := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += x.Cmp(y)
	}
	if sink <= 0 {
		b.Fatal("comparison produced the wrong sign")
	}
}

// BenchmarkVecAccumulate is the vertex-load accumulation shape: scatter
// adds into a dense vector with zero allocations per element.
func BenchmarkVecAccumulate(b *testing.B) {
	v := NewVec(64)
	var term Rat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := workload[i%len(workload)]
		term.SetFrac64(w[0], w[1])
		slot := &v[i%len(v)]
		slot.Add(slot, &term)
	}
}
