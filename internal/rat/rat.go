// Package rat implements an exact small-rational value type for the
// solver hot loops: a numerator/denominator pair of int64 that performs
// Add/Sub/Mul/Quo/Cmp with overflow-checked machine arithmetic and
// promotes *losslessly* to math/big.Rat the moment a result stops
// fitting. Nearly every intermediate value in Π_k(G) instances is a tiny
// fraction (1/|M|, ν/(2k), sums of a handful of such terms), so the fast
// path runs allocation-free at machine-word speed while the big.Rat slow
// path keeps the exactness guarantee of DESIGN.md §"Exactness" — no
// floating point, no tolerances, ever.
//
// The zero value of Rat is 0, ready to use, mirroring big.Rat. Values are
// always stored normalized: denominator positive, gcd(|num|, den) == 1.
// A promoted value demotes back to the small form whenever a later result
// fits int64 again, so a single overflowing intermediate does not condemn
// the rest of a computation to heap arithmetic.
//
// Correctness is enforced differentially: FuzzRatVsBigRat drives every
// operation against big.Rat as the oracle, and the promotion-boundary
// unit tests pin the exact int64 edges (see rat_test.go).
package rat

import (
	"math"
	"math/big"
	"math/bits"
)

// Rat is an exact rational number. It is either *small* — an int64
// numerator/denominator pair with den >= 1 and gcd(|num|, den) == 1 — or
// *promoted*, in which case the value lives in p and num/den are unused.
// The zero value is 0. Rat values must not be copied while an operation
// is writing to them, but plain value copies (assignment, slices of Rat)
// are fine and are how Vec avoids per-cell allocation.
type Rat struct {
	num, den int64
	// p holds the promoted value. It is treated as immutable: every
	// operation that lands here installs a freshly allocated big.Rat, so
	// two Rats may share one p safely.
	p *big.Rat
}

// parts returns the small form's numerator and denominator, mapping the
// zero value {0, 0} to the canonical 0/1. Callers must ensure !x.isBig().
func (x *Rat) parts() (int64, int64) {
	if x.den == 0 {
		return 0, 1
	}
	return x.num, x.den
}

func (x *Rat) isBig() bool { return x.p != nil }

// IsSmall reports whether x currently fits the int64 fast path. It is a
// diagnostic for tests and benchmarks; arithmetic handles both forms.
func (x *Rat) IsSmall() bool { return !x.isBig() }

// Frac64 returns the normalized numerator and denominator when x is
// small, with ok=false when x has been promoted beyond int64 range.
func (x *Rat) Frac64() (num, den int64, ok bool) {
	if x.isBig() {
		return 0, 0, false
	}
	n, d := x.parts()
	return n, d, true
}

// SetInt64 sets z to n and returns z.
func (z *Rat) SetInt64(n int64) *Rat {
	z.num, z.den, z.p = n, 1, nil
	return z
}

// SetFrac64 sets z to a/b exactly and returns z. It panics when b == 0,
// matching big.Rat's division-by-zero behavior. The result is normalized
// and promotes only in the one unrepresentable corner (odd a with
// b == math.MinInt64, whose reduced denominator 2^63 exceeds int64).
func (z *Rat) SetFrac64(a, b int64) *Rat {
	if b == 0 {
		// lint:invariant(nakedpanic): zero denominator is a caller contract violation;
		// panicking matches big.Rat.SetFrac64.
		panic("rat: division by zero")
	}
	return z.setReduced(a, b)
}

// setReduced normalizes a/b (b != 0) into z, promoting when the reduced
// pair cannot be represented with den >= 1 in int64.
func (z *Rat) setReduced(a, b int64) *Rat {
	g := int64(gcd64(a, b))
	// g divides both exactly; the only hazard left is sign restoration.
	a /= g
	b /= g
	if b < 0 {
		// Negate both. Either negation can overflow only at MinInt64.
		if a == math.MinInt64 || b == math.MinInt64 {
			br := new(big.Rat).SetFrac(big.NewInt(a), big.NewInt(b))
			return z.adopt(br)
		}
		a, b = -a, -b
	}
	z.num, z.den, z.p = a, b, nil
	return z
}

// adopt installs a freshly allocated big.Rat as z's value, demoting to
// the small form when it fits. br must not be retained by the caller.
func (z *Rat) adopt(br *big.Rat) *Rat {
	if br.Num().IsInt64() && br.Denom().IsInt64() {
		// big.Rat keeps denominators positive and reduced, so the pair is
		// already in our normal form.
		z.num, z.den, z.p = br.Num().Int64(), br.Denom().Int64(), nil
		return z
	}
	z.p = br
	return z
}

// Set sets z to x and returns z.
func (z *Rat) Set(x *Rat) *Rat {
	z.num, z.den, z.p = x.num, x.den, x.p
	return z
}

// SetBig sets z to the value of r (copied, never aliased) and returns z.
func (z *Rat) SetBig(r *big.Rat) *Rat {
	if r.Num().IsInt64() && r.Denom().IsInt64() {
		z.num, z.den, z.p = r.Num().Int64(), r.Denom().Int64(), nil
		return z
	}
	return z.adopt(new(big.Rat).Set(r))
}

// Big returns x as a freshly allocated big.Rat.
func (x *Rat) Big() *big.Rat {
	return x.ToBig(new(big.Rat))
}

// ToBig writes x into dst and returns dst.
func (x *Rat) ToBig(dst *big.Rat) *big.Rat {
	if x.isBig() {
		return dst.Set(x.p)
	}
	n, d := x.parts()
	return dst.SetFrac64(n, d)
}

// bigVal returns a read-only big.Rat view of x, allocating only for
// small values (the slow path already gave up on zero-alloc).
func (x *Rat) bigVal() *big.Rat {
	if x.isBig() {
		return x.p
	}
	n, d := x.parts()
	return new(big.Rat).SetFrac64(n, d)
}

// Sign returns -1, 0 or +1 according to the sign of x.
func (x *Rat) Sign() int {
	if x.isBig() {
		return x.p.Sign()
	}
	switch {
	case x.num > 0:
		return 1
	case x.num < 0:
		return -1
	default:
		return 0
	}
}

// Add sets z = x + y and returns z. z may alias x or y.
func (z *Rat) Add(x, y *Rat) *Rat {
	if x.isBig() || y.isBig() {
		return z.adopt(new(big.Rat).Add(x.bigVal(), y.bigVal()))
	}
	a, b := x.parts()
	c, d := y.parts()
	return z.addSmall(a, b, c, d)
}

// Sub sets z = x - y and returns z. z may alias x or y.
func (z *Rat) Sub(x, y *Rat) *Rat {
	if x.isBig() || y.isBig() {
		return z.adopt(new(big.Rat).Sub(x.bigVal(), y.bigVal()))
	}
	a, b := x.parts()
	c, d := y.parts()
	if c == math.MinInt64 {
		// -c is unrepresentable; route through big once.
		return z.adopt(new(big.Rat).Sub(x.bigVal(), y.bigVal()))
	}
	return z.addSmall(a, b, -c, d)
}

// addSmall computes a/b + c/d with Knuth's gcd trick (TAOCP 4.5.1):
// with t = a·(d/g) + c·(b/g) and g = gcd(b, d), the result is
// (t/h) / ((b/g)·(d/h)) where h = gcd(t, g) — every division is exact
// and the intermediates are as small as the mathematics allows. Any
// checked overflow falls back to one big.Rat round trip, which demotes
// again if the *reduced* result fits.
func (z *Rat) addSmall(a, b, c, d int64) *Rat {
	g := int64(gcd64(b, d)) // b, d >= 1 so g >= 1
	db := d / g
	bb := b / g
	t1, ok1 := mul64(a, db)
	t2, ok2 := mul64(c, bb)
	if ok1 && ok2 {
		if t, ok := add64(t1, t2); ok {
			h := int64(gcd64(t, g))
			if den, ok := mul64(bb, d/h); ok {
				z.num, z.den, z.p = t/h, den, nil
				return z
			}
		}
	}
	x := new(big.Rat).SetFrac64(a, b)
	y := new(big.Rat).SetFrac64(c, d)
	return z.adopt(x.Add(x, y))
}

// Mul sets z = x * y and returns z. z may alias x or y.
func (z *Rat) Mul(x, y *Rat) *Rat {
	if x.isBig() || y.isBig() {
		return z.adopt(new(big.Rat).Mul(x.bigVal(), y.bigVal()))
	}
	a, b := x.parts()
	c, d := y.parts()
	return z.mulSmall(a, b, c, d)
}

// mulSmall computes (a/b)·(c/d) with cross-reduction: dividing a by
// gcd(a, d) and c by gcd(c, b) first makes the final products the reduced
// answer directly and keeps them in range whenever the result fits.
func (z *Rat) mulSmall(a, b, c, d int64) *Rat {
	g1 := int64(gcd64(a, d))
	g2 := int64(gcd64(c, b))
	a, d = a/g1, d/g1
	c, b = c/g2, b/g2
	num, ok1 := mul64(a, c)
	den, ok2 := mul64(b, d)
	if ok1 && ok2 {
		// b, d >= 1 after exact division, so den >= 1: already normal.
		z.num, z.den, z.p = num, den, nil
		return z
	}
	x := new(big.Rat).SetFrac64(a, b)
	y := new(big.Rat).SetFrac64(c, d)
	return z.adopt(x.Mul(x, y))
}

// Quo sets z = x / y and returns z. It panics when y is zero, matching
// big.Rat. z may alias x or y.
func (z *Rat) Quo(x, y *Rat) *Rat {
	if y.Sign() == 0 {
		// lint:invariant(nakedpanic): division by zero is a caller contract violation;
		// panicking matches big.Rat.Quo.
		panic("rat: division by zero")
	}
	if x.isBig() || y.isBig() {
		return z.adopt(new(big.Rat).Quo(x.bigVal(), y.bigVal()))
	}
	a, b := x.parts()
	c, d := y.parts()
	// a/b ÷ c/d = (a·d)/(b·c): reuse cross-reduced multiplication with
	// the flipped divisor, restoring the sign to the numerator first.
	if c < 0 {
		if c == math.MinInt64 {
			return z.adopt(new(big.Rat).Quo(x.bigVal(), y.bigVal()))
		}
		c, d = -c, -d
	}
	return z.mulSmall(a, b, d, c)
}

// Neg sets z = -x and returns z.
func (z *Rat) Neg(x *Rat) *Rat {
	if x.isBig() {
		return z.adopt(new(big.Rat).Neg(x.p))
	}
	n, d := x.parts()
	if n == math.MinInt64 {
		return z.adopt(new(big.Rat).Neg(x.bigVal()))
	}
	z.num, z.den, z.p = -n, d, nil
	return z
}

// Inv sets z = 1/x and returns z. It panics when x is zero.
func (z *Rat) Inv(x *Rat) *Rat {
	if x.Sign() == 0 {
		// lint:invariant(nakedpanic): inverting zero is a caller contract violation;
		// panicking matches big.Rat.Inv.
		panic("rat: division by zero")
	}
	if x.isBig() {
		return z.adopt(new(big.Rat).Inv(x.p))
	}
	n, d := x.parts()
	if n < 0 {
		if n == math.MinInt64 {
			return z.adopt(new(big.Rat).Inv(x.bigVal()))
		}
		n, d = -n, -d
	}
	z.num, z.den, z.p = d, n, nil
	return z
}

// Cmp compares x and y and returns -1, 0 or +1. The small/small case is
// an allocation-free 128-bit cross multiplication, so comparison-heavy
// loops (ratio tests, branch-and-bound bounds) never touch the heap.
func (x *Rat) Cmp(y *Rat) int {
	if x.isBig() || y.isBig() {
		return x.bigVal().Cmp(y.bigVal())
	}
	a, b := x.parts()
	c, d := y.parts()
	// Compare a/b with c/d, b, d > 0: the sign split means the 128-bit
	// magnitude comparison only runs for same-sign operands.
	sa, sc := sign64(a), sign64(c)
	if sa != sc {
		if sa < sc {
			return -1
		}
		return 1
	}
	if sa == 0 {
		return 0
	}
	// |a|·d vs |c|·b in 128 bits, flipped when both are negative.
	h1, l1 := bits.Mul64(abs64(a), uint64(d))
	h2, l2 := bits.Mul64(abs64(c), uint64(b))
	var m int
	switch {
	case h1 != h2:
		if h1 < h2 {
			m = -1
		} else {
			m = 1
		}
	case l1 != l2:
		if l1 < l2 {
			m = -1
		} else {
			m = 1
		}
	}
	return m * sa
}

// String renders x in big.Rat's a/b notation.
func (x *Rat) String() string {
	if x.isBig() {
		return x.p.RatString()
	}
	n, d := x.parts()
	return new(big.Rat).SetFrac64(n, d).RatString()
}

// add64 returns a+b and whether it fit int64.
func add64(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, false
	}
	return c, true
}

// mul64 returns a·b and whether it fit int64. The c/b != a quotient test
// catches every overflow except MinInt64·(-1), which wraps back to a
// consistent quotient, so MinInt64 operands are screened explicitly.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// abs64 returns |a| as a uint64; correct for MinInt64.
func abs64(a int64) uint64 {
	if a < 0 {
		return -uint64(a)
	}
	return uint64(a)
}

func sign64(a int64) int {
	switch {
	case a > 0:
		return 1
	case a < 0:
		return -1
	default:
		return 0
	}
}

// gcd64 returns gcd(|a|, |b|) as a uint64, with gcd(0, 0) = 1 so callers
// can divide unconditionally. The magnitudes make MinInt64 safe.
func gcd64(a, b int64) uint64 {
	x, y := abs64(a), abs64(b)
	for y != 0 {
		x, y = y, x%y
	}
	if x == 0 {
		return 1
	}
	return x
}
