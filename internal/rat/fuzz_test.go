package rat

import (
	"math"
	"math/big"
	"testing"
)

// FuzzRatVsBigRat is the differential fuzzer of the exact-arithmetic
// kernel: every op sequence is replayed against math/big.Rat as the
// oracle and the values must agree exactly at each step, the small-form
// invariant (den >= 1, reduced) must hold, and Cmp must match the oracle
// in both directions. The two-step chain deliberately feeds results —
// including promoted ones — back in as operands, so overflow-promotion,
// big/small mixed arithmetic, and demotion are all exercised from raw
// int64 corners (the seed corpus pins MinInt64/MaxInt64 edges).
func FuzzRatVsBigRat(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4), uint8(0))
	f.Add(int64(math.MaxInt64), int64(1), int64(1), int64(1), uint8(0))
	f.Add(int64(math.MinInt64), int64(1), int64(-1), int64(1), uint8(2))
	f.Add(int64(1), int64(math.MinInt64), int64(1), int64(3), uint8(1))
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64-1), int64(math.MaxInt64-1), int64(math.MaxInt64-2), uint8(4))
	f.Add(int64((1<<32)-1), int64((1<<32)+1), int64((1<<31)+7), int64((1<<31)-9), uint8(3))

	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64, ops uint8) {
		if ad == 0 || bd == 0 {
			t.Skip("zero denominator")
		}
		var x, y Rat
		x.SetFrac64(an, ad)
		y.SetFrac64(bn, bd)
		ox := new(big.Rat).SetFrac(big.NewInt(an), big.NewInt(ad))
		oy := new(big.Rat).SetFrac(big.NewInt(bn), big.NewInt(bd))
		agree(t, "seed x", &x, ox)
		agree(t, "seed y", &y, oy)

		// Two chained ops drawn from the op byte; the first result becomes
		// the left operand of the second.
		for step := 0; step < 2; step++ {
			op := (ops >> (4 * step)) & 0x0f
			var z Rat
			oz := new(big.Rat)
			switch op % 5 {
			case 0:
				z.Add(&x, &y)
				oz.Add(ox, oy)
			case 1:
				z.Sub(&x, &y)
				oz.Sub(ox, oy)
			case 2:
				z.Mul(&x, &y)
				oz.Mul(ox, oy)
			case 3:
				if y.Sign() == 0 {
					t.Skip("division by zero")
				}
				z.Quo(&x, &y)
				oz.Quo(ox, oy)
			case 4:
				z.Neg(&x)
				oz.Neg(ox)
			}
			agree(t, "result", &z, oz)
			if got, want := x.Cmp(&y), ox.Cmp(oy); got != want {
				t.Fatalf("Cmp = %d, oracle %d (x=%v y=%v)", got, want, x.String(), y.String())
			}
			if got, want := y.Cmp(&x), oy.Cmp(ox); got != want {
				t.Fatalf("reverse Cmp = %d, oracle %d", got, want)
			}
			x.Set(&z)
			ox.Set(oz)
		}
	})
}

// agree asserts the kernel value matches the oracle exactly and is
// normalized when small.
func agree(t *testing.T, ctx string, x *Rat, oracle *big.Rat) {
	t.Helper()
	if x.Big().Cmp(oracle) != 0 {
		t.Fatalf("%s: rat %v != big.Rat %v", ctx, x.String(), oracle.RatString())
	}
	if !x.isBig() {
		n, d := x.parts()
		if d < 1 {
			t.Fatalf("%s: denominator %d < 1", ctx, d)
		}
		if g := gcd64(n, d); g != 1 {
			t.Fatalf("%s: %d/%d not reduced", ctx, n, d)
		}
	} else if oracle.Num().IsInt64() && oracle.Denom().IsInt64() {
		t.Fatalf("%s: %v fits int64 but is promoted (missed demotion)", ctx, x.String())
	}
}
