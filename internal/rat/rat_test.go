package rat

import (
	"math"
	"math/big"
	"testing"
)

// bigOf is the test oracle's view of a Rat.
func bigOf(x *Rat) *big.Rat { return x.Big() }

// checkNormal asserts the small-form invariant: den >= 1 and
// gcd(|num|, den) == 1 (the zero value {0,0} is the one tolerated alias
// of 0/1).
func checkNormal(t *testing.T, x *Rat, ctx string) {
	t.Helper()
	if x.isBig() {
		return
	}
	n, d := x.parts()
	if d < 1 {
		t.Fatalf("%s: denominator %d < 1", ctx, d)
	}
	if g := gcd64(n, d); g != 1 {
		t.Fatalf("%s: %d/%d not reduced (gcd %d)", ctx, n, d, g)
	}
}

func TestZeroValueIsZero(t *testing.T) {
	var z Rat
	if z.Sign() != 0 {
		t.Fatalf("zero value sign = %d", z.Sign())
	}
	if got := z.String(); got != "0" {
		t.Fatalf("zero value String = %q", got)
	}
	var w Rat
	w.Add(&z, &z)
	if w.Sign() != 0 || !w.IsSmall() {
		t.Fatalf("0+0 = %v (small=%v)", w.String(), w.IsSmall())
	}
	one := new(Rat).SetInt64(1)
	if z.Cmp(one) != -1 || one.Cmp(&z) != 1 {
		t.Fatal("zero value does not compare as 0")
	}
}

func TestSetFrac64Normalizes(t *testing.T) {
	cases := []struct {
		a, b int64
		want string
	}{
		{6, 4, "3/2"},
		{-6, 4, "-3/2"},
		{6, -4, "-3/2"},
		{-6, -4, "3/2"},
		{0, -7, "0"},
		{math.MinInt64, math.MinInt64, "1"},
		{0, math.MinInt64, "0"},
		{math.MinInt64, 2, "-4611686018427387904"},
	}
	for _, c := range cases {
		var z Rat
		z.SetFrac64(c.a, c.b)
		checkNormal(t, &z, "SetFrac64")
		if got := z.String(); got != c.want {
			t.Errorf("SetFrac64(%d, %d) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

// TestSetFrac64PromotesUnrepresentable: 1/MinInt64 reduces to a
// denominator of 2^63, one past int64 — the only SetFrac64 promotion.
func TestSetFrac64PromotesUnrepresentable(t *testing.T) {
	var z Rat
	z.SetFrac64(1, math.MinInt64)
	if z.IsSmall() {
		t.Fatal("1/MinInt64 should promote (denominator 2^63)")
	}
	want := new(big.Rat).SetFrac(big.NewInt(1), big.NewInt(math.MinInt64))
	if bigOf(&z).Cmp(want) != 0 {
		t.Fatalf("1/MinInt64 = %v, want %v", z.String(), want.RatString())
	}
	// And the promoted value still participates in exact arithmetic.
	var w Rat
	w.Mul(&z, new(Rat).SetInt64(math.MinInt64))
	if w.Sign() <= 0 || w.Cmp(new(Rat).SetInt64(1)) != 0 {
		t.Fatalf("(1/MinInt64)·MinInt64 = %v, want 1", w.String())
	}
	if !w.IsSmall() {
		t.Error("product fits int64 but did not demote")
	}
}

func TestDivisionByZeroPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"SetFrac64": func() { new(Rat).SetFrac64(1, 0) },
		"Quo":       func() { new(Rat).Quo(new(Rat).SetInt64(1), new(Rat)) },
		"Inv":       func() { new(Rat).Inv(new(Rat)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s by zero did not panic", name)
				}
			}()
			f()
		}()
	}
}

// promotionCase drives one op over values straddling the int64 boundary
// and checks the result against big.Rat, including demotion behavior.
type promotionCase struct {
	name           string
	x, y           *big.Rat
	op             func(z, x, y *Rat) *Rat
	oracle         func(z, x, y *big.Rat) *big.Rat
	wantSmallAfter bool
}

func runPromotionCase(t *testing.T, c promotionCase) {
	t.Helper()
	var x, y, z Rat
	x.SetBig(c.x)
	y.SetBig(c.y)
	c.op(&z, &x, &y)
	checkNormal(t, &z, c.name)
	want := c.oracle(new(big.Rat), c.x, c.y)
	if bigOf(&z).Cmp(want) != 0 {
		t.Fatalf("%s: got %v, want %v", c.name, z.String(), want.RatString())
	}
	if z.IsSmall() != c.wantSmallAfter {
		t.Errorf("%s: IsSmall = %v, want %v", c.name, z.IsSmall(), c.wantSmallAfter)
	}
}

// TestPromotionBoundaries covers int64 overflow on all five ops: max/min
// numerators on Add/Sub, denominator overflow on Add, numerator overflow
// on Mul, denominator overflow on Quo, and Cmp across the boundary.
func TestPromotionBoundaries(t *testing.T) {
	maxI := big.NewRat(math.MaxInt64, 1)
	minI := big.NewRat(math.MinInt64, 1)
	cases := []promotionCase{
		{
			name: "Add/max-numerator-overflow",
			x:    maxI, y: big.NewRat(1, 1),
			op:     func(z, x, y *Rat) *Rat { return z.Add(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Add(x, y) },
		},
		{
			name: "Add/min-numerator-overflow",
			x:    minI, y: big.NewRat(-1, 1),
			op:     func(z, x, y *Rat) *Rat { return z.Add(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Add(x, y) },
		},
		{
			name: "Add/denominator-overflow",
			// Coprime denominators near 2^32 whose product exceeds int64.
			x: big.NewRat(1, (1<<32)-1), y: big.NewRat(1, (1<<32)+1),
			op:     func(z, x, y *Rat) *Rat { return z.Add(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Add(x, y) },
		},
		{
			name: "Add/cancellation-demotes",
			x:    maxI, y: maxI,
			// (MaxInt64 + MaxInt64) - MaxInt64 via two adds would promote;
			// here MaxInt64 + (-MaxInt64) stays small at 0.
			op:             func(z, x, y *Rat) *Rat { var ny Rat; ny.Neg(y); return z.Add(x, &ny) },
			oracle:         func(z, x, y *big.Rat) *big.Rat { return z.Sub(x, y) },
			wantSmallAfter: true,
		},
		{
			name: "Sub/min-minus-one",
			x:    minI, y: big.NewRat(1, 1),
			op:     func(z, x, y *Rat) *Rat { return z.Sub(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Sub(x, y) },
		},
		{
			name: "Sub/negating-min-int64",
			x:    new(big.Rat), y: minI,
			op:     func(z, x, y *Rat) *Rat { return z.Sub(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Sub(x, y) },
		},
		{
			name: "Mul/numerator-overflow",
			x:    maxI, y: big.NewRat(2, 1),
			op:     func(z, x, y *Rat) *Rat { return z.Mul(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Mul(x, y) },
		},
		{
			name: "Mul/cross-reduction-stays-small",
			x:    big.NewRat(math.MaxInt64, 3), y: big.NewRat(3, math.MaxInt64),
			op:             func(z, x, y *Rat) *Rat { return z.Mul(x, y) },
			oracle:         func(z, x, y *big.Rat) *big.Rat { return z.Mul(x, y) },
			wantSmallAfter: true,
		},
		{
			name: "Quo/denominator-overflow",
			x:    big.NewRat(1, math.MaxInt64), y: big.NewRat(3, 1),
			op:     func(z, x, y *Rat) *Rat { return z.Quo(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Quo(x, y) },
		},
		{
			name: "Quo/min-int64-divisor",
			x:    big.NewRat(1, 3), y: minI,
			op:     func(z, x, y *Rat) *Rat { return z.Quo(x, y) },
			oracle: func(z, x, y *big.Rat) *big.Rat { return z.Quo(x, y) },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runPromotionCase(t, c) })
	}
}

// TestCmpAcrossBoundary checks the 128-bit comparison where the cross
// products overflow int64, and small-vs-promoted comparisons.
func TestCmpAcrossBoundary(t *testing.T) {
	var a, b Rat
	a.SetFrac64(math.MaxInt64, math.MaxInt64-1) // slightly above 1
	b.SetFrac64(math.MaxInt64-1, math.MaxInt64-2)
	// a = M/(M-1) < (M-1)/(M-2) = b because (M-1)^2 > M(M-2).
	if got := a.Cmp(&b); got != -1 {
		t.Errorf("Cmp high-magnitude = %d, want -1", got)
	}
	if got := b.Cmp(&a); got != 1 {
		t.Errorf("reverse Cmp = %d, want 1", got)
	}
	if got := a.Cmp(&a); got != 0 {
		t.Errorf("self Cmp = %d, want 0", got)
	}
	var big1, small1 Rat
	big1.Add(new(Rat).SetInt64(math.MaxInt64), new(Rat).SetInt64(1)) // promoted 2^63
	small1.SetInt64(math.MaxInt64)
	if big1.IsSmall() {
		t.Fatal("MaxInt64+1 should be promoted")
	}
	if big1.Cmp(&small1) != 1 || small1.Cmp(&big1) != -1 {
		t.Error("promoted vs small comparison wrong")
	}
	// Negative side.
	var negA, negB Rat
	negA.SetFrac64(-math.MaxInt64, math.MaxInt64-1)
	negB.SetFrac64(-(math.MaxInt64 - 1), math.MaxInt64-2)
	if got := negA.Cmp(&negB); got != 1 {
		t.Errorf("negated Cmp = %d, want 1", got)
	}
}

func TestAliasedOperands(t *testing.T) {
	var x Rat
	x.SetFrac64(3, 7)
	x.Add(&x, &x) // 6/7
	if got := x.String(); got != "6/7" {
		t.Fatalf("x.Add(x,x) = %s, want 6/7", got)
	}
	x.Mul(&x, &x) // 36/49
	if got := x.String(); got != "36/49" {
		t.Fatalf("x.Mul(x,x) = %s, want 36/49", got)
	}
	x.Sub(&x, &x)
	if x.Sign() != 0 {
		t.Fatalf("x.Sub(x,x) = %s, want 0", x.String())
	}
}

func TestSetBigDemotes(t *testing.T) {
	huge := new(big.Rat).SetFrac(
		new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(3))
	var z Rat
	z.SetBig(huge)
	if z.IsSmall() {
		t.Fatal("2^80/3 should be promoted")
	}
	if bigOf(&z).Cmp(huge) != 0 {
		t.Fatal("promoted value mismatch")
	}
	// SetBig copies: mutating the source must not leak in.
	saved := new(big.Rat).Set(huge)
	huge.Add(huge, big.NewRat(1, 1))
	if bigOf(&z).Cmp(saved) != 0 {
		t.Fatal("SetBig aliased its argument")
	}
	z.SetBig(big.NewRat(22, 7))
	if !z.IsSmall() {
		t.Fatal("22/7 should demote to small form")
	}
	if n, d, ok := z.Frac64(); !ok || n != 22 || d != 7 {
		t.Fatalf("Frac64 = %d/%d ok=%v", n, d, ok)
	}
}

func TestNegInvBoundaries(t *testing.T) {
	var z Rat
	z.Neg(new(Rat).SetInt64(math.MinInt64))
	if z.IsSmall() {
		t.Fatal("-MinInt64 must promote")
	}
	want := new(big.Rat).Neg(big.NewRat(math.MinInt64, 1))
	if bigOf(&z).Cmp(want) != 0 {
		t.Fatalf("Neg(MinInt64) = %v", z.String())
	}
	var w Rat
	w.Inv(new(Rat).SetInt64(math.MinInt64))
	if w.IsSmall() {
		t.Fatal("1/MinInt64 must promote")
	}
	w.Inv(new(Rat).SetFrac64(-3, 5))
	if !w.IsSmall() {
		t.Fatal("Inv(-3/5) should stay small")
	}
	if got := w.String(); got != "-5/3" {
		t.Fatalf("Inv(-3/5) = %s", got)
	}
}

func TestVecRoundTrip(t *testing.T) {
	src := []*big.Rat{
		big.NewRat(1, 3),
		nil, // counts as zero
		new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 70), big.NewInt(7)),
		big.NewRat(-5, 2),
	}
	v := FromBig(src)
	if !v[0].IsSmall() || !v[1].IsSmall() || v[2].IsSmall() || !v[3].IsSmall() {
		t.Fatal("FromBig small/promoted split wrong")
	}
	out := v.ToBig()
	if out[1].Sign() != 0 {
		t.Error("nil entry should convert to 0")
	}
	if out[2].Cmp(src[2]) != 0 || out[0].Cmp(src[0]) != 0 || out[3].Cmp(src[3]) != 0 {
		t.Error("round trip lost values")
	}
	// ToBig must return independent values.
	out[0].SetInt64(99)
	if v[0].Big().Cmp(big.NewRat(1, 3)) != 0 {
		t.Error("ToBig aliased vector state")
	}

	cl := v.Clone()
	cl[0].SetInt64(8)
	if v[0].Big().Cmp(big.NewRat(1, 3)) != 0 {
		t.Error("Clone shares mutable state")
	}
	var sum Rat
	v.Sum(&sum)
	want := new(big.Rat).Add(src[0], src[2])
	want.Add(want, src[3])
	if sum.Big().Cmp(want) != 0 {
		t.Errorf("Sum = %v, want %v", sum.String(), want.RatString())
	}
	v.Zero()
	for i := range v {
		if v[i].Sign() != 0 {
			t.Fatalf("Zero left entry %d = %v", i, v[i].String())
		}
	}
}

// TestAccumulationMatchesBigRat replays a long mixed-op accumulation and
// checks the running value against big.Rat at every step — the shape of
// the simplex and load-accumulation loops.
func TestAccumulationMatchesBigRat(t *testing.T) {
	var acc Rat
	acc.SetInt64(0)
	oracle := new(big.Rat)
	term := new(Rat)
	for i := int64(1); i <= 200; i++ {
		term.SetFrac64(i*i-3, i+1)
		switch i % 4 {
		case 0:
			acc.Add(&acc, term)
			oracle.Add(oracle, term.Big())
		case 1:
			acc.Sub(&acc, term)
			oracle.Sub(oracle, term.Big())
		case 2:
			acc.Mul(&acc, term)
			oracle.Mul(oracle, term.Big())
		case 3:
			acc.Quo(&acc, term)
			oracle.Quo(oracle, term.Big())
		}
		checkNormal(t, &acc, "accumulation")
		if bigOf(&acc).Cmp(oracle) != 0 {
			t.Fatalf("step %d: acc %v != oracle %v", i, acc.String(), oracle.RatString())
		}
	}
}
