package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzServeSolve drives arbitrary bodies through the full HTTP decode and
// validation path of POST /v1/solve and asserts the two contract
// invariants the clients of this API lean on:
//
//  1. the handler never panics, whatever the body holds — hostile JSON,
//     hostile graph6, absurd n/k/attackers;
//  2. every non-200 response carries the structured ErrorBody with a
//     non-empty machine-readable code and human-readable message (200s
//     and 202s carry their own documented shapes).
//
// The server is configured small (32-vertex cap, tight sync wait) so the
// fuzzer spends its budget on the decode path, not on big solves.
func FuzzServeSolve(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json at all`,
		`{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3]],"k":1}`,
		`{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[0,5]],"k":2,"attackers":4}`,
		`{"graph6":"Bw","k":1}`,
		`{"graph6":"IsP@PGXD_","k":3}`,
		`{"graph6":"~~~~","k":1}`,
		`{"graph6":"Ao","k":1}`,
		`{"graph6":">>graph6<<Bw\n","k":1}`,
		`{"n":-1,"edges":[[0,1]],"k":1}`,
		`{"n":2,"edges":[[1,1]],"k":1}`,
		`{"n":2,"edges":[[0,1]],"k":0}`,
		`{"n":2,"edges":[[0,1]],"k":-5,"attackers":-5}`,
		`{"n":9999999,"edges":[[0,1]],"k":1}`,
		`{"n":2,"edges":[[0,1]],"k":1,"timeout_ms":-1}`,
		`{"n":2,"edges":[[0,1]],"k":1,"unknown_field":true}`,
		`{"n":2,"edges":[[0,1]],"k":1} trailing`,
		`{"graph6":"Bw","n":3,"edges":[[0,1]],"k":1}`,
		`{"k":1}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"n":3,"edges":[[0,1],[1,2],[0,2]],"k":18446744073709551615}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	srv := New(Config{
		Workers:      2,
		QueueCap:     64,
		SyncWait:     5 * time.Second,
		SolveTimeout: 2 * time.Second,
		MaxVertices:  32,
	})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // a panic here fails the fuzz run

		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q for body %q", ct, body)
		}
		switch w.Code {
		case http.StatusOK:
			var resp SolveResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Result == nil {
				t.Fatalf("malformed 200 body (%v): %s", err, w.Body.String())
			}
		case http.StatusAccepted:
			var js JobStatus
			if err := json.Unmarshal(w.Body.Bytes(), &js); err != nil || js.ID == "" || js.Poll == "" {
				t.Fatalf("malformed 202 body (%v): %s", err, w.Body.String())
			}
		default:
			var eb ErrorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
				t.Fatalf("non-200 response %d is not a structured error (%v): %s",
					w.Code, err, w.Body.String())
			}
			if eb.Error.Code == "" || eb.Error.Message == "" {
				t.Fatalf("non-200 response %d missing code/message: %s", w.Code, w.Body.String())
			}
		}
	})
}
