package server

import (
	"context"
	"sync"

	"github.com/defender-game/defender/internal/obs"
)

// Response-cache metrics (catalogued in OBSERVABILITY.md). The
// conservation laws, asserted under -race by the handler tests: every
// solve request performs exactly one Lookup, so hits + misses equals the
// requests that reached the cache; only a missed request can become the
// leader that stores, so stores <= misses; and coalesced counts the
// followers that piggybacked on a leader's in-flight solve.
var (
	cacheHits      = obs.Default().Counter("server.cache.hits")
	cacheMisses    = obs.Default().Counter("server.cache.misses")
	cacheStores    = obs.Default().Counter("server.cache.stores")
	cacheCoalesced = obs.Default().Counter("server.cache.coalesced")
	cacheEntries   = obs.Default().Gauge("server.cache.entries")
)

// inflightEntry is one in-progress solve that followers wait on.
type inflightEntry struct {
	ready chan struct{} // closed when res/err are set
	res   *SolveResult
	err   error
}

// solveCache is the response cache of the solve API, keyed by
// "graph6|k=K|nu=N" so structurally identical graphs share one entry
// regardless of how the request spelled them. It memoizes successful
// results forever (they are pure functions of the key) and coalesces
// concurrent misses of one key into a single solve — the reason N
// identical requests cost one solve plus N-1 hits even when they arrive
// in one burst. Stored *SolveResult values are shared and treated as
// immutable by every reader.
type solveCache struct {
	mu       sync.Mutex
	done     map[string]*SolveResult
	inflight map[string]*inflightEntry
}

func newSolveCache() *solveCache {
	return &solveCache{
		done:     make(map[string]*SolveResult),
		inflight: make(map[string]*inflightEntry),
	}
}

// Lookup is the handler's fast path: a hit answers the request without
// touching the broker. Exactly one Lookup runs per solve request, which
// is what makes the hit/miss counters request-conservation laws.
func (c *solveCache) Lookup(key string) (*SolveResult, bool) {
	c.mu.Lock()
	res, ok := c.done[key]
	c.mu.Unlock()
	if ok {
		cacheHits.Inc()
	} else {
		cacheMisses.Inc()
	}
	return res, ok
}

// Do computes the entry for key: the first caller (the leader) runs
// compute and stores a successful result; concurrent callers for the
// same key wait for the leader instead of solving again. Errors are not
// cached — the next request retries. Do runs on a broker worker; ctx
// bounds a follower's wait.
func (c *solveCache) Do(ctx context.Context, key string, compute func() (*SolveResult, error)) (*SolveResult, error) {
	c.mu.Lock()
	// A racing leader may have stored between the handler's Lookup miss
	// and this worker picking the request up.
	if res, ok := c.done[key]; ok {
		c.mu.Unlock()
		return res, nil
	}
	if e, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		cacheCoalesced.Inc()
		select {
		case <-e.ready:
			return e.res, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &inflightEntry{ready: make(chan struct{})}
	c.inflight[key] = e
	c.mu.Unlock()

	e.res, e.err = compute()
	c.mu.Lock()
	delete(c.inflight, key)
	if e.err == nil {
		c.done[key] = e.res
		cacheStores.Inc()
		cacheEntries.Set(float64(len(c.done)))
	}
	c.mu.Unlock()
	close(e.ready)
	return e.res, e.err
}

// Len reports the number of completed entries.
func (c *solveCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}
