package server

import (
	"fmt"
	"sync"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// jobsPending gauges the number of jobs still awaiting their solve
// (catalogued in OBSERVABILITY.md).
var jobsPending = obs.Default().Gauge("server.jobs.pending")

// job is one asynchronous solve handle. Fields are guarded by the owning
// store's mutex; get returns snapshot copies.
type job struct {
	id     string
	status string
	result *SolveResult
	apiErr *apiError
	doneAt time.Time
}

// jobStore tracks 202 job handles: sequential ids (deterministic for the
// golden contract tests — uniqueness only needs to hold per process),
// completion records, and TTL-based purging of finished jobs so a
// long-running server does not accumulate every result it ever computed.
// Pending jobs are never purged: their broker request is still in flight
// and will complete.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*job
	ttl  time.Duration
	now  func() time.Time // injectable for the TTL tests
}

func newJobStore(ttl time.Duration) *jobStore {
	return &jobStore{jobs: make(map[string]*job), ttl: ttl, now: time.Now}
}

// create registers a fresh pending job and returns its id.
func (s *jobStore) create() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("j%08d", s.seq)
	s.jobs[id] = &job{id: id, status: JobPending}
	s.pendingLocked()
	return id
}

// complete records a job's terminal state.
func (s *jobStore) complete(id string, result *SolveResult, apiErr *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.status != JobPending {
		return
	}
	j.result = result
	j.apiErr = apiErr
	j.doneAt = s.now()
	if apiErr == nil {
		j.status = JobDone
	} else {
		j.status = JobFailed
	}
	s.pendingLocked()
}

// get returns a snapshot of the job, purging expired finished jobs on the
// way (access-driven, so an idle store holds at most the jobs of its TTL
// window without needing a sweeper goroutine).
func (s *jobStore) get(id string) (job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := s.now().Add(-s.ttl)
	for jid, j := range s.jobs {
		if j.status != JobPending && j.doneAt.Before(cutoff) {
			delete(s.jobs, jid)
		}
	}
	j, ok := s.jobs[id]
	if !ok {
		return job{}, false
	}
	return *j, true
}

// pendingLocked refreshes the pending-jobs gauge; callers hold s.mu.
func (s *jobStore) pendingLocked() {
	n := 0
	for _, j := range s.jobs {
		if j.status == JobPending {
			n++
		}
	}
	jobsPending.Set(float64(n))
}
