package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/server/broker"
)

// Request-path metrics (catalogued in OBSERVABILITY.md). Accounting law,
// asserted by the handler tests: solve.requests == solve.ok +
// solve.accepted + solve.rejected + solve.errors once the server is
// quiescent.
var (
	solveRequests = obs.Default().Counter("server.solve.requests")
	solveOK       = obs.Default().Counter("server.solve.ok")
	solveAccepted = obs.Default().Counter("server.solve.accepted")
	solveRejected = obs.Default().Counter("server.solve.rejected")
	solveErrors   = obs.Default().Counter("server.solve.errors")
	jobsRequests  = obs.Default().Counter("server.jobs.requests")
)

// Config tunes a Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers is the broker pool size (default 4): the maximum number of
	// concurrent solves.
	Workers int
	// QueueCap bounds the broker queue (default 64); a full queue sheds
	// load as 429 + Retry-After.
	QueueCap int
	// SyncWait is how long POST /v1/solve waits for the result before
	// converting to a 202 job handle (default 2s).
	SyncWait time.Duration
	// SolveTimeout is the per-solve deadline (default 60s); a request's
	// timeout_ms may lower it but never raise it.
	SolveTimeout time.Duration
	// JobTTL is how long finished jobs stay pollable (default 10m).
	JobTTL time.Duration
	// MaxVertices caps accepted graphs (default 256): the exact solvers
	// are built for instance sizes where exactness is tractable.
	MaxVertices int
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.SyncWait == 0 {
		c.SyncWait = 2 * time.Second
	}
	if c.SolveTimeout == 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.JobTTL == 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 256
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the defender solve service: an http.Handler plus the broker,
// response cache and job store behind it. Construct with New, serve
// Handler(), and Close on the way out.
type Server struct {
	cfg    Config
	broker *broker.Broker
	cache  *solveCache
	jobs   *jobStore
	mux    *http.ServeMux

	// solveFn is the instance solver; tests swap it to script slow or
	// failing solves deterministically.
	solveFn func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error)
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		broker:  broker.New(cfg.Workers, cfg.QueueCap),
		cache:   newSolveCache(),
		jobs:    newJobStore(cfg.JobTTL),
		solveFn: solve,
	}
	s.mux = http.NewServeMux()
	// Methods are checked inside the handlers so that 405s carry the
	// same structured error body as every other non-2xx response.
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errBad(http.StatusNotFound, CodeNotFound, "no such route %s", r.URL.Path))
	})
	return s
}

// Handler returns the public API handler. Debug surfaces (/metrics,
// pprof) live on the separate mux of obs.NewDebugMux, bound privately by
// cmd/defenderd.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops admission and waits for in-flight solves, bounded by ctx.
func (s *Server) Close(ctx context.Context) error {
	return s.broker.Shutdown(ctx)
}

// writeError emits the structured non-2xx contract body.
func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, ErrorBody{Error: ErrorInfo{Code: e.code, Message: e.message}})
}

// solveError counts and writes a solve-path failure.
func solveError(w http.ResponseWriter, e *apiError) {
	solveErrors.Inc()
	writeError(w, e)
}

// handleSolve implements POST /v1/solve: decode → cache fast path →
// broker admission → bounded synchronous wait → 200, or a 202 job
// handle whose completion a goroutine records from the broker's
// per-request channel.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, errBad(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"use POST %s", r.URL.Path))
		return
	}
	solveRequests.Inc()
	start := time.Now()
	sp := obs.Default().StartSpan("server.solve")
	defer sp.End()

	req, apiErr := decodeSolveRequest(w, r, s.cfg.MaxBodyBytes)
	if apiErr != nil {
		sp.Annotate("outcome", "bad_request")
		solveError(w, apiErr)
		return
	}
	drainBody(r)
	g, g6, apiErr := buildGraph(req, s.cfg.MaxVertices)
	if apiErr != nil {
		sp.Annotate("outcome", "bad_request")
		solveError(w, apiErr)
		return
	}
	sp.Annotate("graph6", g6)
	sp.Annotate("k", strconv.Itoa(req.K))

	key := g6 + "|k=" + strconv.Itoa(req.K) + "|nu=" + strconv.Itoa(req.Attackers)
	if res, ok := s.cache.Lookup(key); ok {
		sp.Annotate("outcome", "cache_hit")
		solveOK.Inc()
		writeJSON(w, http.StatusOK, SolveResponse{Result: res, Cached: true, SolveMS: msSince(start)})
		return
	}

	timeout := s.cfg.SolveTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	// The solve's context is detached from the HTTP request's: a 202
	// conversion outlives this handler, and a poller still wants the
	// result after the submitting client hangs up. The deadline bounds
	// abandoned work.
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	ch, err := s.broker.Submit(ctx, func(ctx context.Context) (any, error) {
		return s.cache.Do(ctx, key, func() (*SolveResult, error) {
			return s.solveFn(ctx, g, g6, req.K, req.Attackers)
		})
	})
	if err != nil {
		cancel()
		sp.Annotate("outcome", "rejected")
		solveRejected.Inc()
		w.Header().Set("Retry-After", "1")
		code := CodeQueueFull
		if errors.Is(err, broker.ErrClosed) {
			code = CodeInternal
		}
		writeError(w, errBad(http.StatusTooManyRequests, code, "%v", err))
		return
	}

	select {
	case res := <-ch:
		cancel()
		s.respondSolved(w, sp, res, start)
	case <-time.After(s.cfg.SyncWait):
		id := s.jobs.create()
		go func() {
			defer cancel()
			res := <-ch
			if res.Err != nil {
				s.jobs.complete(id, nil, solveErr(res.Err))
				return
			}
			s.jobs.complete(id, res.Value.(*SolveResult), nil)
		}()
		sp.Annotate("outcome", "accepted")
		solveAccepted.Inc()
		poll := "/v1/jobs/" + id
		w.Header().Set("Location", poll)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, JobStatus{ID: id, Status: JobPending, Poll: poll})
	}
}

// respondSolved writes the synchronous outcome of a broker result.
func (s *Server) respondSolved(w http.ResponseWriter, sp obs.Span, res broker.Result, start time.Time) {
	if res.Err != nil {
		sp.Annotate("outcome", "error")
		solveError(w, solveErr(res.Err))
		return
	}
	sp.Annotate("outcome", "ok")
	solveOK.Inc()
	writeJSON(w, http.StatusOK, SolveResponse{
		Result:  res.Value.(*SolveResult),
		SolveMS: msSince(start),
	})
}

// handleJob implements GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errBad(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"use GET %s", r.URL.Path))
		return
	}
	jobsRequests.Inc()
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, errBad(http.StatusNotFound, CodeNotFound, "no such job"))
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, errBad(http.StatusNotFound, CodeNotFound, "unknown or expired job %q", id))
		return
	}
	status := JobStatus{ID: j.id, Status: j.status, Poll: "/v1/jobs/" + j.id}
	switch j.status {
	case JobPending:
		w.Header().Set("Retry-After", "1")
	case JobDone:
		status.Result = j.result
	case JobFailed:
		status.Error = &ErrorInfo{Code: j.apiErr.code, Message: j.apiErr.message}
	}
	writeJSON(w, http.StatusOK, status)
}

// handleHealthz is the liveness probe cmd/defenderd's boot (and the
// loadtest harness) waits on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
