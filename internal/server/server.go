package server

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	obslog "github.com/defender-game/defender/internal/obs/log"
	"github.com/defender-game/defender/internal/par"
	"github.com/defender-game/defender/internal/server/broker"
)

// Request-path metrics (catalogued in OBSERVABILITY.md). Accounting law,
// asserted by the handler tests: solve.requests == solve.ok +
// solve.accepted + solve.rejected + solve.errors once the server is
// quiescent.
var (
	solveRequests = obs.Default().Counter("server.solve.requests")
	solveOK       = obs.Default().Counter("server.solve.ok")
	solveAccepted = obs.Default().Counter("server.solve.accepted")
	solveRejected = obs.Default().Counter("server.solve.rejected")
	solveErrors   = obs.Default().Counter("server.solve.errors")
	jobsRequests  = obs.Default().Counter("server.jobs.requests")
)

// Readiness metrics: every /readyz evaluation bumps the check counter
// (and the unavailable counter when it sheds), and publishes the SLO
// monitor's burn rates as gauges so the scrape path sees what the
// probe saw.
var (
	readyzChecks      = obs.Default().Counter("server.readyz.checks")
	readyzUnavailable = obs.Default().Counter("server.readyz.unavailable")
	availabilityBurn  = obs.Default().Gauge("server.slo.availability_burn")
	latencyBurn       = obs.Default().Gauge("server.slo.latency_burn")
)

// solverThreadsGauge publishes the per-solve thread budget the server
// settled on after the oversubscription clamp (catalogued in
// OBSERVABILITY.md) — compare against the -solver-threads request to see
// whether the clamp engaged.
var solverThreadsGauge = obs.Default().Gauge("server.solver.threads")

// Config tunes a Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers is the broker pool size (default 4): the maximum number of
	// concurrent solves.
	Workers int
	// SolverThreads is the par thread budget each solve may fan out to
	// (default 1). Unlike the bench harness — which deliberately allows
	// oversubscribed rungs — the service clamps the product
	// Workers × SolverThreads to GOMAXPROCS: Workers concurrent solves
	// each fanning out SolverThreads goroutines on an oversubscribed box
	// would just trade latency for scheduler churn. The clamped value is
	// published as server.solver.threads.
	SolverThreads int
	// QueueCap bounds the broker queue (default 64); a full queue sheds
	// load as 429 + Retry-After.
	QueueCap int
	// SyncWait is how long POST /v1/solve waits for the result before
	// converting to a 202 job handle (default 2s).
	SyncWait time.Duration
	// SolveTimeout is the per-solve deadline (default 60s); a request's
	// timeout_ms may lower it but never raise it.
	SolveTimeout time.Duration
	// JobTTL is how long finished jobs stay pollable (default 10m).
	JobTTL time.Duration
	// MaxVertices caps accepted graphs (default 256): the exact solvers
	// are built for instance sizes where exactness is tractable.
	MaxVertices int
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
	// TraceSampleRate is the head-based trace sampling rate in [0, 1].
	// nil means the default 1.0 (every request's spans reach the JSONL
	// sink); a pointer to 0 disables sampling entirely. Sampling is
	// deterministic per trace ID, so a trace is always all-or-nothing.
	TraceSampleRate *float64
	// QueueHighWater is the broker queue depth at which /readyz starts
	// reporting unavailable (default 3/4 of QueueCap): drain traffic
	// before the queue fills into 429s.
	QueueHighWater int
	// MaxBurnRate is the SLO burn rate (availability or latency) at
	// which /readyz trips (default 10: the classic fast-burn page
	// threshold).
	MaxBurnRate float64
	// SLO tunes the rolling-window monitor behind /readyz; zero fields
	// take the obs.SLOConfig defaults.
	SLO obs.SLOConfig
	// RequestLog, when non-nil, receives one structured line per API
	// request (event "request": method, path, status, latency, trace
	// ID). A nil logger discards.
	RequestLog *obslog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.SolverThreads == 0 {
		c.SolverThreads = 1
	}
	if lid := max(1, runtime.GOMAXPROCS(0)/c.Workers); c.SolverThreads > lid {
		c.SolverThreads = lid
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.SyncWait == 0 {
		c.SyncWait = 2 * time.Second
	}
	if c.SolveTimeout == 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.JobTTL == 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 256
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.TraceSampleRate == nil {
		// nil (not 0) is the "defaulted" sentinel, so a caller can
		// disable sampling with an explicit pointer to 0.
		rate := 1.0
		c.TraceSampleRate = &rate
	}
	if c.QueueHighWater == 0 {
		c.QueueHighWater = c.QueueCap * 3 / 4
		if c.QueueHighWater < 1 {
			c.QueueHighWater = 1
		}
	}
	// lint:invariant(floateq): zero-value sentinel check, not a computed
	// float comparison.
	if c.MaxBurnRate == 0 {
		c.MaxBurnRate = 10
	}
	return c
}

// Server is the defender solve service: an http.Handler plus the broker,
// response cache and job store behind it. Construct with New, serve
// Handler(), and Close on the way out.
type Server struct {
	cfg    Config
	broker *broker.Broker
	cache  *solveCache
	jobs   *jobStore
	mux    *http.ServeMux
	slo    *obs.SLOMonitor

	// solveFn is the instance solver; tests swap it to script slow or
	// failing solves deterministically.
	solveFn func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error)
}

// New builds a Server from cfg (zero fields defaulted). The clamped
// SolverThreads becomes the process-wide par budget — defenderd runs one
// Server per process, so the solve stack under every broker worker
// inherits it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	par.SetThreads(cfg.SolverThreads)
	solverThreadsGauge.Set(float64(cfg.SolverThreads))
	s := &Server{
		cfg:     cfg,
		broker:  broker.New(cfg.Workers, cfg.QueueCap),
		cache:   newSolveCache(),
		jobs:    newJobStore(cfg.JobTTL),
		slo:     obs.NewSLOMonitor(cfg.SLO),
		solveFn: solve,
	}
	s.mux = http.NewServeMux()
	// Methods are checked inside the handlers so that 405s carry the
	// same structured error body as every other non-2xx response.
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errBad(http.StatusNotFound, CodeNotFound, "no such route %s", r.URL.Path))
	})
	return s
}

// Handler returns the public API handler: the route mux wrapped in the
// per-request observability layer (ingress). Debug surfaces (/metrics,
// pprof, /slo) live on the separate mux of obs.NewDebugMux, bound
// privately by cmd/defenderd.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serveTraced) }

// SolverThreads reports the per-solve thread budget after the
// oversubscription clamp — what -solver-threads actually bought.
func (s *Server) SolverThreads() int { return s.cfg.SolverThreads }

// statusWriter captures the response status for the request log and the
// SLO monitor. WriteHeader-less handlers imply 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards http.Flusher to the underlying writer, so a streaming
// handler behind Handler() keeps its flush behavior despite the wrap.
// The other optional interfaces (http.Hijacker, io.ReaderFrom) are not
// forwarded: every handler here writes plain buffered JSON.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// serveTraced is the ingress of every API request: it establishes the
// request's TraceContext (honoring a valid inbound X-Defender-Trace-Id,
// minting one otherwise), echoes the ID on the response, serves the
// route, then records the outcome into the SLO monitor and the request
// log. Trace creation precedes routing so every handler — and the
// broker and solver stack below handleSolve — sees the same trace in
// its context.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := r.Header.Get(TraceHeader)
	if !obs.ValidTraceID(traceID) {
		traceID = obs.NewTraceID()
	}
	tc := obs.TraceContext{TraceID: traceID, Sampled: obs.SampleTrace(traceID, *s.cfg.TraceSampleRate)}
	r = r.WithContext(obs.ContextWithTrace(r.Context(), tc))
	w.Header().Set(TraceHeader, traceID)

	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)

	latency := time.Since(start)
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		// Probes (/healthz, /readyz) stay out of the SLO window: they are
		// cheap, always succeed, and would dilute the burn rates the
		// /readyz decision is based on.
		ok := sw.status < http.StatusInternalServerError && sw.status != http.StatusTooManyRequests
		s.slo.Record(ok, latency)
	}
	s.cfg.RequestLog.Log("request", obslog.Fields{
		"method":     r.Method,
		"path":       r.URL.Path,
		"status":     sw.status,
		"latency_ms": float64(latency) / float64(time.Millisecond),
		"trace_id":   traceID,
		"sampled":    tc.Sampled,
	})
}

// SLOHandler returns the /slo debug endpoint: the monitor's current
// window evaluation as JSON. cmd/defenderd mounts it on the private
// debug mux next to /metrics.
func (s *Server) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.slo.Status())
	})
}

// handleReadyz is the readiness probe: unlike the pure-liveness
// /healthz it says whether this instance should receive NEW traffic.
// It sheds (503 + structured ReadyStatus body) when the broker queue
// is above the high-water mark or an SLO burn rate is past
// MaxBurnRate, so load balancers drain the instance before overload
// turns into 429 storms or budget exhaustion.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	readyzChecks.Inc()
	st := ReadyStatus{
		Status:         "ready",
		QueueDepth:     s.broker.QueueDepth(),
		QueueHighWater: s.cfg.QueueHighWater,
		SLO:            s.slo.Status(),
	}
	availabilityBurn.Set(st.SLO.AvailabilityBurnRate)
	latencyBurn.Set(st.SLO.LatencyBurnRate)
	switch {
	case st.QueueDepth >= st.QueueHighWater:
		st.Status, st.Reason = "unavailable", "queue_high_water"
	case st.SLO.AvailabilityBurnRate >= s.cfg.MaxBurnRate,
		st.SLO.LatencyBurnRate >= s.cfg.MaxBurnRate:
		st.Status, st.Reason = "unavailable", "burn_rate"
	}
	if st.Reason != "" {
		readyzUnavailable.Inc()
		writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// Close stops admission and waits for in-flight solves, bounded by ctx.
func (s *Server) Close(ctx context.Context) error {
	return s.broker.Shutdown(ctx)
}

// writeError emits the structured non-2xx contract body.
func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, ErrorBody{Error: ErrorInfo{Code: e.code, Message: e.message}})
}

// solveError counts and writes a solve-path failure.
func solveError(w http.ResponseWriter, e *apiError) {
	solveErrors.Inc()
	writeError(w, e)
}

// handleSolve implements POST /v1/solve: decode → cache fast path →
// broker admission → bounded synchronous wait → 200, or a 202 job
// handle whose completion a goroutine records from the broker's
// per-request channel.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, errBad(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"use POST %s", r.URL.Path))
		return
	}
	solveRequests.Inc()
	start := time.Now()
	// The span adopts the trace serveTraced installed; the derived
	// context makes it the parent of the broker's queue-wait span and of
	// every solver span below.
	sp, traceCtx := obs.Default().StartSpanCtx(r.Context(), "server.solve")
	defer sp.End()

	req, apiErr := decodeSolveRequest(w, r, s.cfg.MaxBodyBytes)
	if apiErr != nil {
		sp.Annotate("outcome", "bad_request")
		solveError(w, apiErr)
		return
	}
	drainBody(r)
	g, g6, apiErr := buildGraph(req, s.cfg.MaxVertices)
	if apiErr != nil {
		sp.Annotate("outcome", "bad_request")
		solveError(w, apiErr)
		return
	}
	sp.Annotate("graph6", g6)
	sp.Annotate("k", strconv.Itoa(req.K))

	key := g6 + "|k=" + strconv.Itoa(req.K) + "|nu=" + strconv.Itoa(req.Attackers)
	if res, ok := s.cache.Lookup(key); ok {
		sp.Annotate("outcome", "cache_hit")
		solveOK.Inc()
		writeJSON(w, http.StatusOK, SolveResponse{Result: res, Cached: true, SolveMS: msSince(start)})
		return
	}

	timeout := s.cfg.SolveTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	// The solve's context is detached from the HTTP request's: a 202
	// conversion outlives this handler, and a poller still wants the
	// result after the submitting client hangs up. The deadline bounds
	// abandoned work. DetachTrace keeps the request's trace across the
	// detachment, so the queue-wait and solver spans stay correlated.
	ctx, cancel := context.WithTimeout(obs.DetachTrace(traceCtx), timeout)
	ch, err := s.broker.Submit(ctx, func(ctx context.Context) (any, error) {
		return s.cache.Do(ctx, key, func() (*SolveResult, error) {
			return s.solveFn(ctx, g, g6, req.K, req.Attackers)
		})
	})
	if err != nil {
		cancel()
		sp.Annotate("outcome", "rejected")
		solveRejected.Inc()
		w.Header().Set("Retry-After", "1")
		code := CodeQueueFull
		if errors.Is(err, broker.ErrClosed) {
			code = CodeInternal
		}
		writeError(w, errBad(http.StatusTooManyRequests, code, "%v", err))
		return
	}

	select {
	case res := <-ch:
		cancel()
		s.respondSolved(w, sp, res, start)
	case <-time.After(s.cfg.SyncWait):
		id := s.jobs.create()
		go func() {
			defer cancel()
			res := <-ch
			if res.Err != nil {
				s.jobs.complete(id, nil, solveErr(res.Err))
				return
			}
			s.jobs.complete(id, res.Value.(*SolveResult), nil)
		}()
		sp.Annotate("outcome", "accepted")
		solveAccepted.Inc()
		poll := "/v1/jobs/" + id
		w.Header().Set("Location", poll)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, JobStatus{ID: id, Status: JobPending, Poll: poll})
	}
}

// respondSolved writes the synchronous outcome of a broker result.
func (s *Server) respondSolved(w http.ResponseWriter, sp obs.Span, res broker.Result, start time.Time) {
	if res.Err != nil {
		sp.Annotate("outcome", "error")
		solveError(w, solveErr(res.Err))
		return
	}
	sp.Annotate("outcome", "ok")
	solveOK.Inc()
	writeJSON(w, http.StatusOK, SolveResponse{
		Result:  res.Value.(*SolveResult),
		SolveMS: msSince(start),
	})
}

// handleJob implements GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errBad(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"use GET %s", r.URL.Path))
		return
	}
	jobsRequests.Inc()
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, errBad(http.StatusNotFound, CodeNotFound, "no such job"))
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, errBad(http.StatusNotFound, CodeNotFound, "unknown or expired job %q", id))
		return
	}
	status := JobStatus{ID: j.id, Status: j.status, Poll: "/v1/jobs/" + j.id}
	switch j.status {
	case JobPending:
		w.Header().Set("Retry-After", "1")
	case JobDone:
		status.Result = j.result
	case JobFailed:
		status.Error = &ErrorInfo{Code: j.apiErr.code, Message: j.apiErr.message}
	}
	writeJSON(w, http.StatusOK, status)
}

// handleHealthz is the liveness probe cmd/defenderd's boot (and the
// loadtest harness) waits on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
