package server

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/defender-game/defender/internal/graph"
)

// -update regenerates the committed API-contract transcripts:
//
//	go test ./internal/server -run TestGoldenContract -update
var update = flag.Bool("update", false, "rewrite the contract transcripts under testdata/golden")

// solveMSRe masks the one volatile field of the wire contract so the
// transcripts are machine-independent.
var solveMSRe = regexp.MustCompile(`("solve_ms": )[0-9.eE+-]+`)

// transcript accumulates request/response pairs in the canonical golden
// rendering.
type transcript struct {
	b strings.Builder
}

// roundTrip runs one request through the handler and appends the masked
// exchange to the transcript.
func (tr *transcript) roundTrip(s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)

	fmt.Fprintf(&tr.b, "### %s %s\n", method, path)
	if body != "" {
		fmt.Fprintf(&tr.b, "%s\n", body)
	}
	fmt.Fprintf(&tr.b, "<<< %d %s\n", w.Code, http.StatusText(w.Code))
	for _, h := range []string{"Content-Type", "Location", "Retry-After"} {
		if v := w.Header().Get(h); v != "" {
			fmt.Fprintf(&tr.b, "<<< %s: %s\n", h, v)
		}
	}
	masked := solveMSRe.ReplaceAllString(w.Body.String(), `${1}"<volatile>"`)
	tr.b.WriteString(masked)
	if !strings.HasSuffix(masked, "\n") {
		tr.b.WriteString("\n")
	}
	tr.b.WriteString("\n")
	return w
}

// TestGoldenContract pins the full wire contract of the /v1 API: exact
// p/q game values, error bodies, headers, and the 202 → poll → result
// flow. Any change to the contract shows up as a transcript diff that
// must be reviewed (and regenerated with -update).
func TestGoldenContract(t *testing.T) {
	scenarios := []struct {
		id  string
		run func(t *testing.T, tr *transcript)
	}{
		{"solve_c6_k2", goldenSolveC6},
		{"solve_petersen_k5", goldenSolvePetersen},
		{"errors", goldenErrors},
		{"job_flow", goldenJobFlow},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.id, func(t *testing.T) {
			tr := &transcript{}
			sc.run(t, tr)
			got := tr.b.String()
			path := filepath.Join("testdata", "golden", sc.id+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden transcript (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("API contract drifted from %s\n--- got ---\n%s--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

func goldenServer(t *testing.T, tweaks ...func(*Config)) *Server {
	t.Helper()
	return newTestServer(t, tweaks...)
}

// goldenSolveC6: the canonical sync solve — C6 at k=2, ν=4, where no
// pure NE exists (ρ=3) and the k-matching construction gives value 2/3 —
// followed by the identical request answered from the cache.
func goldenSolveC6(t *testing.T, tr *transcript) {
	s := goldenServer(t)
	body := `{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[0,5]],"k":2,"attackers":4}`
	if w := tr.roundTrip(s, http.MethodPost, "/v1/solve", body); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}
	if w := tr.roundTrip(s, http.MethodPost, "/v1/solve", body); w.Code != http.StatusOK {
		t.Fatalf("cached solve: %d %s", w.Code, w.Body.String())
	}
}

// goldenSolvePetersen: a graph6-addressed solve of the Petersen graph at
// k=5, exercising the perfect-matching family and the LP value oracle.
func goldenSolvePetersen(t *testing.T, tr *transcript) {
	s := goldenServer(t)
	if w := tr.roundTrip(s, http.MethodPost, "/v1/solve", `{"graph6":"IsP@PGXD_","k":5}`); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}
}

// goldenErrors pins the structured error bodies of the non-2xx contract.
func goldenErrors(t *testing.T, tr *transcript) {
	s := goldenServer(t, func(c *Config) { c.MaxVertices = 32 })
	tr.roundTrip(s, http.MethodPost, "/v1/solve", `{"graph6":"~~~~","k":1}`)
	tr.roundTrip(s, http.MethodPost, "/v1/solve", `{"n":3,"edges":[[0,1]],"k":1}`)
	tr.roundTrip(s, http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":9}`)
	tr.roundTrip(s, http.MethodPost, "/v1/solve", `{"n":40,"edges":[[0,1]],"k":1}`)
	tr.roundTrip(s, http.MethodGet, "/v1/solve", "")
	tr.roundTrip(s, http.MethodGet, "/v1/jobs/j99999999", "")
	tr.roundTrip(s, http.MethodGet, "/no/such/route", "")
}

// goldenJobFlow scripts the asynchronous contract: a gated solve converts
// to a 202 with a deterministic job id, polls as pending, and — once the
// gate opens — polls as done with the full result.
func goldenJobFlow(t *testing.T, tr *transcript) {
	release := make(chan struct{})
	s := goldenServer(t, func(c *Config) { c.SyncWait = 10 * time.Millisecond })
	inner := s.solveFn
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		<-release
		return inner(ctx, g, g6, k, attackers)
	}

	w := tr.roundTrip(s, http.MethodPost, "/v1/solve", `{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3]],"k":1}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("want 202, got %d: %s", w.Code, w.Body.String())
	}
	var js JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if w := tr.roundTrip(s, http.MethodGet, js.Poll, ""); w.Code != http.StatusOK {
		t.Fatalf("pending poll: %d", w.Code)
	}

	close(release)
	// Wait for completion off-transcript, then record the final poll.
	deadline := time.After(10 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodGet, js.Poll, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		var st JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == JobDone {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job never completed: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	tr.roundTrip(s, http.MethodGet, js.Poll, "")
}
