package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// maxRenderedTuples caps the defender-support enumeration included in a
// response body: an lp-minimax support can hold thousands of tuples, and
// the full list belongs in a follow-up endpoint, not every solve
// response. The count is always reported.
const maxRenderedTuples = 512

// apiError is an error with its HTTP mapping attached; every handler
// failure path funnels through one.
type apiError struct {
	status  int
	code    string
	message string
}

func (e *apiError) Error() string { return e.code + ": " + e.message }

func errBad(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, message: fmt.Sprintf(format, args...)}
}

// decodeSolveRequest reads and validates the body of POST /v1/solve up to
// the graph-independent checks. The body is capped at maxBody bytes and
// unknown fields are rejected, so contract drift fails loudly.
func decodeSolveRequest(w http.ResponseWriter, r *http.Request, maxBody int64) (*SolveRequest, *apiError) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, errBad(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, errBad(http.StatusBadRequest, CodeBadRequest, "invalid JSON body: %v", err)
	}
	if dec.More() {
		return nil, errBad(http.StatusBadRequest, CodeBadRequest, "trailing data after the request object")
	}
	if req.Attackers == 0 {
		req.Attackers = 1
	}
	if req.Attackers < 1 {
		return nil, errBad(http.StatusUnprocessableEntity, CodeBadAttackers,
			"attackers must be >= 1, got %d", req.Attackers)
	}
	if req.TimeoutMS < 0 {
		return nil, errBad(http.StatusBadRequest, CodeBadRequest, "timeout_ms must be >= 0")
	}
	return &req, nil
}

// buildGraph materializes the request's graph and its canonical graph6
// key, enforcing the server's size cap and the model's validity rules
// (no isolated vertices, 1 <= k <= m).
func buildGraph(req *SolveRequest, maxVertices int) (*graph.Graph, string, *apiError) {
	hasG6 := req.Graph6 != ""
	hasEdges := req.N != 0 || len(req.Edges) != 0
	if hasG6 == hasEdges {
		return nil, "", errBad(http.StatusBadRequest, CodeBadRequest,
			"exactly one of graph6 or n+edges must be given")
	}
	var g *graph.Graph
	if hasG6 {
		parsed, err := graph.ParseGraph6(req.Graph6)
		if err != nil {
			return nil, "", errBad(http.StatusBadRequest, CodeBadGraph6, "%v", err)
		}
		g = parsed
	} else {
		if req.N < 1 {
			return nil, "", errBad(http.StatusBadRequest, CodeBadGraph, "n must be >= 1, got %d", req.N)
		}
		if req.N > maxVertices {
			return nil, "", errBad(http.StatusUnprocessableEntity, CodeGraphTooLarge,
				"n=%d exceeds the server cap of %d vertices", req.N, maxVertices)
		}
		built := graph.New(req.N)
		for _, e := range req.Edges {
			if err := built.AddEdge(e[0], e[1]); err != nil {
				return nil, "", errBad(http.StatusBadRequest, CodeBadGraph, "edge [%d,%d]: %v", e[0], e[1], err)
			}
		}
		g = built
	}
	if g.NumVertices() > maxVertices {
		return nil, "", errBad(http.StatusUnprocessableEntity, CodeGraphTooLarge,
			"n=%d exceeds the server cap of %d vertices", g.NumVertices(), maxVertices)
	}
	if g.HasIsolatedVertex() {
		return nil, "", errBad(http.StatusUnprocessableEntity, CodeIsolatedVertex,
			"the Tuple model is undefined on graphs with isolated vertices")
	}
	if req.K < 1 || req.K > g.NumEdges() {
		return nil, "", errBad(http.StatusUnprocessableEntity, CodeBadK,
			"k must satisfy 1 <= k <= m=%d, got %d", g.NumEdges(), req.K)
	}
	g6, err := graph.FormatGraph6(g)
	if err != nil {
		// Unreachable under the vertex cap; keep the contract total.
		return nil, "", errBad(http.StatusUnprocessableEntity, CodeGraphTooLarge, "%v", err)
	}
	return g, g6, nil
}

// solveErr maps a solver failure to its API shape.
func solveErr(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return errBad(http.StatusGatewayTimeout, CodeTimeout, "solve exceeded its deadline")
	case errors.Is(err, core.ErrValueTooLarge):
		return errBad(http.StatusUnprocessableEntity, CodeTooLarge, "%v", err)
	case errors.Is(err, game.ErrBadK):
		return errBad(http.StatusUnprocessableEntity, CodeBadK, "%v", err)
	case errors.Is(err, game.ErrIsolatedVertex):
		return errBad(http.StatusUnprocessableEntity, CodeIsolatedVertex, "%v", err)
	default:
		return errBad(http.StatusInternalServerError, CodeInternal, "solve failed: %v", err)
	}
}

// solve runs the full pipeline for one instance: edge-cover number and
// pure-NE existence (Theorem 3.1), a verified mixed equilibrium
// (core.SolveAny), and the exact ν=1 game value — by LP oracle when the
// tuple space is enumerable, else by the structured equilibrium's closed
// form (Claim 4.3). It runs on a broker worker; ctx is observed between
// stages (the exact LP itself is not interruptible).
func solve(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
	res := &SolveResult{
		Graph6:    g6,
		N:         g.NumVertices(),
		M:         g.NumEdges(),
		K:         k,
		Attackers: attackers,
	}
	rho, err := cover.EdgeCoverNumberCtx(ctx, g)
	if err != nil {
		return nil, err
	}
	res.Rho = rho
	res.PureNE = k >= rho
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	ne, family, err := core.SolveAnyCtx(ctx, g, attackers, k)
	switch {
	case err == nil:
		res.MixedNE = renderMixedNE(g, ne, family, res)
	case errors.Is(err, core.ErrValueTooLarge):
		res.Notes = append(res.Notes,
			"no structured equilibrium family applies and the tuple space exceeds the LP enumeration budget; mixed_ne unavailable")
	default:
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if value, _, _, err := core.GameValueCtx(ctx, g, k); err == nil {
		res.GameValue = value.RatString()
		res.GameValueSource = "lp"
	} else if !errors.Is(err, core.ErrValueTooLarge) {
		return nil, err
	} else if res.MixedNE != nil && (family == "k-matching" || family == "perfect-matching") {
		// Claim 4.3: in these families every support vertex lies on
		// exactly one support edge, so the per-attacker arrest
		// probability k/|E(D(tp))| is the constant-sum game's value.
		res.GameValue = ne.HitProbability().RatString()
		res.GameValueSource = "closed-form"
	} else {
		res.Notes = append(res.Notes,
			"tuple space exceeds the LP enumeration budget and no closed form applies; game_value unavailable")
	}
	return res, nil
}

// renderMixedNE shapes a verified equilibrium for the wire.
func renderMixedNE(g *graph.Graph, ne core.TupleEquilibrium, family string, res *SolveResult) *MixedNE {
	m := &MixedNE{
		Family:       family,
		VPSupport:    append([]int{}, ne.VPSupport...),
		EdgeSupport:  renderEdges(ne.EdgeSupport),
		TupleCount:   len(ne.Tuples),
		DefenderGain: ne.DefenderGain().RatString(),
	}
	if family == "k-matching" || family == "perfect-matching" {
		m.HitProbability = ne.HitProbability().RatString()
	}
	if len(ne.Tuples) <= maxRenderedTuples {
		m.Tuples = make([][][2]int, len(ne.Tuples))
		m.TupleProbs = make([]string, len(ne.Tuples))
		for i, t := range ne.Tuples {
			m.Tuples[i] = renderEdges(t.Edges(g))
			m.TupleProbs[i] = ne.Profile.TP.Prob(t).RatString()
		}
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"defender support holds %d tuples, above the %d-tuple rendering cap; tuples/tuple_probs elided",
			len(ne.Tuples), maxRenderedTuples))
	}
	return m
}

func renderEdges(edges []graph.Edge) [][2]int {
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed write means the client hung up; nothing to do.
	_ = enc.Encode(v)
}

// drainBody discards any unread request body so keep-alive connections
// stay reusable.
func drainBody(r *http.Request) {
	// Best effort; the connection is simply not reused on error.
	_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, 1<<16))
}
