package broker

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// TestMain enables the default registry so the broker counters record —
// the suite's conservation laws read them directly.
func TestMain(m *testing.M) {
	obs.Default().SetEnabled(true)
	m.Run()
}

// counterDelta runs fn and reports how much each named counter moved.
func counterDelta(names []string, fn func()) map[string]uint64 {
	before := make(map[string]uint64, len(names))
	for _, n := range names {
		before[n] = obs.Default().Counter(n).Value()
	}
	fn()
	d := make(map[string]uint64, len(names))
	for _, n := range names {
		d[n] = obs.Default().Counter(n).Value() - before[n]
	}
	return d
}

var accounting = []string{
	"broker.submitted", "broker.rejected",
	"broker.completed", "broker.failed", "broker.cancelled",
}

// stableGoroutines samples the goroutine count until it stops moving, so
// leak checks tolerate runtime bookkeeping goroutines that exit lazily.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	last := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last {
			return n
		}
		last = n
	}
	return last
}

// TestBrokerConcurrentSubmit hammers the broker from many goroutines and
// asserts every accepted submission resolves exactly once with the right
// value, and that the accounting conservation law holds:
// submitted == completed + failed + cancelled.
func TestBrokerConcurrentSubmit(t *testing.T) {
	const clients = 16
	const perClient = 50
	d := counterDelta(accounting, func() {
		b := New(4, clients*perClient)
		defer func() {
			if err := b.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()
		var wg sync.WaitGroup
		var sum atomic.Int64
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					v := c*perClient + i
					ch, err := b.Submit(context.Background(), func(context.Context) (any, error) {
						return v, nil
					})
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					res := <-ch
					if res.Err != nil {
						t.Errorf("task error: %v", res.Err)
						return
					}
					got := res.Value.(int)
					if got != v {
						t.Errorf("cross-delivered result: got %d want %d", got, v)
						return
					}
					sum.Add(int64(got))
				}
			}(c)
		}
		wg.Wait()
		want := int64(clients*perClient) * int64(clients*perClient-1) / 2
		if sum.Load() != want {
			t.Errorf("result sum = %d, want %d", sum.Load(), want)
		}
	})
	if d["broker.submitted"] != clients*perClient {
		t.Errorf("submitted = %d, want %d", d["broker.submitted"], clients*perClient)
	}
	if d["broker.submitted"] != d["broker.completed"]+d["broker.failed"]+d["broker.cancelled"] {
		t.Errorf("conservation violated: %v", d)
	}
}

// TestBrokerQueueFull: with workers wedged and the queue at capacity,
// Submit rejects immediately with ErrQueueFull and hands out no channel.
func TestBrokerQueueFull(t *testing.T) {
	release := make(chan struct{})
	b := New(1, 2)
	defer b.Shutdown(context.Background())
	block := func(context.Context) (any, error) { <-release; return nil, nil }

	var chans []<-chan Result
	// One task wedges the worker; two more fill the queue. The worker
	// dequeues asynchronously, so allow for one extra slot opening up.
	deadline := time.After(5 * time.Second)
	for len(chans) < 4 {
		ch, err := b.Submit(context.Background(), block)
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		chans = append(chans, ch)
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
		}
	}
	if _, err := b.Submit(context.Background(), block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	close(release)
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Errorf("wedged task resolved with error: %v", res.Err)
		}
	}
}

// TestBrokerDeadlineCancellation: requests whose context expires while
// queued are resolved with the context error without occupying a worker,
// and count as cancelled.
func TestBrokerDeadlineCancellation(t *testing.T) {
	d := counterDelta(accounting, func() {
		release := make(chan struct{})
		b := New(1, 64)
		// Wedge the single worker so queued requests age out.
		wedge, err := b.Submit(context.Background(), func(context.Context) (any, error) {
			<-release
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var ran atomic.Int64
		ctx, cancel := context.WithCancel(context.Background())
		var chans []<-chan Result
		for i := 0; i < 10; i++ {
			ch, err := b.Submit(ctx, func(context.Context) (any, error) {
				ran.Add(1)
				return nil, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
		cancel()
		close(release)
		if res := <-wedge; res.Err != nil {
			t.Errorf("wedge task: %v", res.Err)
		}
		for _, ch := range chans {
			res := <-ch
			if !errors.Is(res.Err, context.Canceled) {
				t.Errorf("queued-then-cancelled request resolved with %v, want context.Canceled", res.Err)
			}
		}
		if ran.Load() != 0 {
			t.Errorf("%d cancelled tasks still ran", ran.Load())
		}
		if err := b.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	})
	if d["broker.cancelled"] != 10 {
		t.Errorf("cancelled = %d, want 10", d["broker.cancelled"])
	}
	if d["broker.submitted"] != d["broker.completed"]+d["broker.failed"]+d["broker.cancelled"] {
		t.Errorf("conservation violated: %v", d)
	}
}

// TestBrokerShutdownMidFlight shuts the broker down while tasks are
// running and queued: accepted work still resolves, later submits get
// ErrClosed, and — the leak check — the goroutine count returns to its
// pre-broker level.
func TestBrokerShutdownMidFlight(t *testing.T) {
	before := stableGoroutines(t)
	d := counterDelta(accounting, func() {
		b := New(4, 256)
		var chans []<-chan Result
		for i := 0; i < 100; i++ {
			ch, err := b.Submit(context.Background(), func(context.Context) (any, error) {
				time.Sleep(time.Millisecond)
				return "done", nil
			})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
		ctx, cancelTO := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancelTO()
		if err := b.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		// Every accepted request is still resolved after shutdown.
		for _, ch := range chans {
			if res := <-ch; res.Err != nil {
				t.Errorf("in-flight task after shutdown: %v", res.Err)
			}
		}
		if _, err := b.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
			t.Errorf("submit after shutdown = %v, want ErrClosed", err)
		}
		// Idempotent.
		if err := b.Shutdown(context.Background()); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	})
	if d["broker.submitted"] != 100 {
		t.Errorf("submitted = %d, want 100", d["broker.submitted"])
	}
	if d["broker.submitted"] != d["broker.completed"]+d["broker.failed"]+d["broker.cancelled"] {
		t.Errorf("conservation violated: %v", d)
	}
	if d["broker.rejected"] != 1 {
		t.Errorf("rejected = %d, want 1 (the post-shutdown submit)", d["broker.rejected"])
	}
	after := stableGoroutines(t)
	if after > before {
		t.Errorf("goroutine leak: %d before, %d after shutdown", before, after)
	}
}

// TestBrokerTaskFailure: task errors flow to the caller and count as
// failed, not completed.
func TestBrokerTaskFailure(t *testing.T) {
	boom := errors.New("boom")
	d := counterDelta(accounting, func() {
		b := New(2, 8)
		defer b.Shutdown(context.Background())
		ch, err := b.Submit(context.Background(), func(context.Context) (any, error) {
			return nil, boom
		})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-ch; !errors.Is(res.Err, boom) {
			t.Errorf("got %v, want boom", res.Err)
		}
	})
	if d["broker.failed"] != 1 || d["broker.completed"] != 0 {
		t.Errorf("accounting: %v", d)
	}
}
