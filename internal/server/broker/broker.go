// Package broker is the admission-control layer of the solve service: a
// bounded worker pool with an explicit queue in front of it, so the
// expensive exact solvers can never be stampeded by request traffic.
//
// Each submission carries its own context and a private, buffered result
// channel (the per-request command-channel pattern): workers deliver
// without blocking, callers wait however they like — synchronously with a
// timeout, or from a job goroutine after the HTTP handler has already
// returned a 202. Backpressure is explicit and immediate: a full queue
// rejects with ErrQueueFull at submit time (the handler turns that into a
// 429 with Retry-After) instead of stacking unbounded goroutines, and a
// request whose deadline expires while queued is abandoned without ever
// occupying a worker.
//
// Accounting invariant, asserted by the race suite: every submission that
// Submit accepts is eventually resolved exactly once —
//
//	broker.submitted == broker.completed + broker.failed + broker.cancelled
//
// after the broker drains, and Shutdown leaks no goroutines.
package broker

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// Sentinel errors of the admission path.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; callers should shed load (HTTP 429).
	ErrQueueFull = errors.New("broker: queue full")
	// ErrClosed is returned by Submit after Shutdown has begun.
	ErrClosed = errors.New("broker: shut down")
)

// Broker-level metrics (catalogued in OBSERVABILITY.md).
var (
	submitted  = obs.Default().Counter("broker.submitted")
	rejected   = obs.Default().Counter("broker.rejected")
	completed  = obs.Default().Counter("broker.completed")
	failed     = obs.Default().Counter("broker.failed")
	cancelled  = obs.Default().Counter("broker.cancelled")
	queueDepth = obs.Default().Gauge("broker.queue_depth")
	workersG   = obs.Default().Gauge("broker.workers")
	runHist    = obs.Default().Histogram("broker.run_seconds")
)

// Task is one unit of work. The context is the submission's context;
// long tasks should check it at stage boundaries.
type Task func(ctx context.Context) (any, error)

// Result is a task's terminal outcome, delivered on the per-request
// channel exactly once.
type Result struct {
	Value any
	Err   error
}

// request pairs a task with its private delivery channel.
type request struct {
	ctx  context.Context
	task Task
	out  chan Result // buffered 1: delivery never blocks a worker
	// wait times the submission-to-pickup interval as the span
	// "broker.queue_wait" (histogram broker.queue_wait.seconds): when the
	// submission context carries a trace, queue time shows up as its own
	// region of the request's waterfall instead of vanishing into the
	// handler's wall clock. Started by Submit before the enqueue — a
	// worker may dequeue the request immediately — and ended by the
	// worker at pickup, even for requests whose deadline already expired.
	wait obs.Span
}

// Broker is a bounded worker pool. Construct with New; the zero value is
// not usable.
type Broker struct {
	queue chan *request
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// New starts a broker with the given worker count and queue capacity.
// Both are clamped to at least 1.
func New(workers, queueCap int) *Broker {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	b := &Broker{queue: make(chan *request, queueCap)}
	workersG.Set(float64(workers))
	for i := 0; i < workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// Submit enqueues task and returns its private result channel. The
// channel receives exactly one Result — the task's outcome, or the
// context's error if the deadline expired while the request was still
// queued. Submit itself never blocks: a full queue returns ErrQueueFull
// and a closed broker ErrClosed, and in both cases no channel is handed
// out (nothing will ever be delivered).
func (b *Broker) Submit(ctx context.Context, task Task) (<-chan Result, error) {
	req := &request{ctx: ctx, task: task, out: make(chan Result, 1)}
	// The queue-wait span parents to ctx's current span (the handler's
	// "server.solve"); the derived child context is dropped on purpose so
	// the task's own spans stay siblings of the wait, not children of it.
	// On rejection the span is abandoned un-Ended: nothing waited.
	req.wait, _ = obs.Default().StartSpanCtx(ctx, "broker.queue_wait")
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		rejected.Inc()
		return nil, ErrClosed
	}
	select {
	case b.queue <- req:
		// Enqueued under the lock so Shutdown cannot close the queue
		// between the closed check and the send.
		b.mu.Unlock()
		submitted.Inc()
		queueDepth.Set(float64(len(b.queue)))
		return req.out, nil
	default:
		b.mu.Unlock()
		rejected.Inc()
		return nil, ErrQueueFull
	}
}

// QueueDepth reports the number of requests currently waiting for a
// worker.
func (b *Broker) QueueDepth() int { return len(b.queue) }

// worker drains the queue until Shutdown closes it. Every dequeued
// request is resolved exactly once: expired requests are cancelled
// without running, everything else runs to completion (tasks observe
// their context at their own boundaries).
func (b *Broker) worker() {
	defer b.wg.Done()
	for req := range b.queue {
		queueDepth.Set(float64(len(b.queue)))
		req.wait.End()
		if err := req.ctx.Err(); err != nil {
			cancelled.Inc()
			req.out <- Result{Err: err}
			continue
		}
		start := time.Now()
		v, err := req.task(req.ctx)
		runHist.Observe(time.Since(start).Seconds())
		switch {
		case err == nil:
			completed.Inc()
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			cancelled.Inc()
		default:
			failed.Inc()
		}
		req.out <- Result{Value: v, Err: err}
	}
}

// Shutdown stops admission immediately and waits — up to ctx — for the
// workers to drain the queue. Requests already accepted are still
// resolved (run, or cancelled if their own context has expired), so no
// per-request channel is ever left undelivered. Shutdown is idempotent.
func (b *Broker) Shutdown(ctx context.Context) error {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		workersG.Set(0)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
