package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	obslog "github.com/defender-game/defender/internal/obs/log"
)

// captureTrace routes obs.Default()'s span JSONL into a buffer for the
// duration of the test. The server package suite runs sequentially, so
// the buffer sees only this test's spans.
func captureTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	obs.Default().SetTraceWriter(&buf)
	t.Cleanup(func() { obs.Default().SetTraceWriter(nil) })
	return &buf
}

// spansOf decodes the capture buffer and keeps the spans of one trace.
func spansOf(t *testing.T, buf *bytes.Buffer, traceID string) []obs.SpanEvent {
	t.Helper()
	var out []obs.SpanEvent
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev obs.SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if ev.TraceID == traceID {
			out = append(out, ev)
		}
	}
	return out
}

func TestTraceHeaderOnEveryResponse(t *testing.T) {
	s := newTestServer(t)
	for _, tc := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":1}`},
		{http.MethodPost, "/v1/solve", `{"k":1}`}, // 400
		{http.MethodGet, "/v1/jobs/nope", ""},     // 404
		{http.MethodGet, "/healthz", ""},
		{http.MethodGet, "/readyz", ""},
		{http.MethodGet, "/no/such/route", ""},
	} {
		w := do(s, tc.method, tc.path, tc.body)
		if id := w.Header().Get(TraceHeader); !obs.ValidTraceID(id) {
			t.Errorf("%s %s: %s = %q, want a valid trace ID", tc.method, tc.path, TraceHeader, id)
		}
	}
}

func TestTraceHeaderInboundHonored(t *testing.T) {
	s := newTestServer(t)
	inbound := strings.Repeat("ab", 16)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(TraceHeader, inbound)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if got := w.Header().Get(TraceHeader); got != inbound {
		t.Errorf("valid inbound trace ID not honored: got %q, want %q", got, inbound)
	}

	// An invalid inbound ID (wrong length, bad chars) is replaced, never
	// echoed back.
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(TraceHeader, "not-a-trace-id")
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if got := w.Header().Get(TraceHeader); got == "not-a-trace-id" || !obs.ValidTraceID(got) {
		t.Errorf("invalid inbound ID handled wrong: %q", got)
	}
}

// TestTraceConnectedThroughBroker: a synchronous solve produces a
// connected trace — server.solve as root, broker.queue_wait (and the
// solver spans) as descendants, all under the inbound trace ID.
func TestTraceConnectedThroughBroker(t *testing.T) {
	buf := captureTrace(t)
	s := newTestServer(t)
	inbound := strings.Repeat("cd", 16)
	req := httptest.NewRequest(http.MethodPost, "/v1/solve",
		bytes.NewReader([]byte(`{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3]],"k":1}`)))
	req.Header.Set(TraceHeader, inbound)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}

	spans := spansOf(t, buf, inbound)
	byName := map[string]obs.SpanEvent{}
	for _, ev := range spans {
		byName[ev.Name] = ev
	}
	root, ok := byName["server.solve"]
	if !ok {
		t.Fatalf("no server.solve span in trace: %+v", spans)
	}
	if root.ParentID != "" {
		t.Errorf("server.solve parent = %q, want root", root.ParentID)
	}
	wait, ok := byName["broker.queue_wait"]
	if !ok {
		t.Fatalf("no broker.queue_wait span in trace: %+v", spans)
	}
	if wait.ParentID != root.SpanID {
		t.Errorf("queue_wait parent = %q, want server.solve %q", wait.ParentID, root.SpanID)
	}
	// Connectivity: every non-root span's parent must be a span of the
	// same trace.
	ids := map[string]bool{}
	for _, ev := range spans {
		ids[ev.SpanID] = true
	}
	for _, ev := range spans {
		if ev.ParentID != "" && !ids[ev.ParentID] {
			t.Errorf("span %s has orphan parent %q", ev.Name, ev.ParentID)
		}
	}
}

// TestCancelledRequestSpanStillCloses (the deadline-cancellation leg of
// the orphan-span suite): a request whose deadline expires while still
// queued gets its 504, and its queue-wait span still closes — carrying
// the request's trace ID — when the worker finally dequeues it.
func TestCancelledRequestSpanStillCloses(t *testing.T) {
	buf := captureTrace(t)
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 4
	})
	inner := s.solveFn
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		<-release
		return inner(ctx, g, g6, k, attackers)
	}

	// Wedge the single worker.
	wedged := make(chan struct{})
	go func() {
		do(s, http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":1}`)
		close(wedged)
	}()
	waitFor(t, func() bool { return s.broker.QueueDepth() == 0 && obsInFlight(s) })

	// The victim: queued behind the wedge with a deadline it cannot make.
	victim := strings.Repeat("ef", 16)
	req := httptest.NewRequest(http.MethodPost, "/v1/solve",
		bytes.NewReader([]byte(`{"n":3,"edges":[[0,1],[1,2],[0,2]],"k":1,"timeout_ms":20}`)))
	req.Header.Set(TraceHeader, victim)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(w, req)
		close(done)
	}()

	time.Sleep(50 * time.Millisecond) // let the victim's deadline lapse while queued
	close(release)
	<-done
	<-wedged

	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("victim status %d, want 504: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(TraceHeader); got != victim {
		t.Errorf("victim response trace = %q, want %q", got, victim)
	}
	spans := spansOf(t, buf, victim)
	var sawWait, sawRoot bool
	for _, ev := range spans {
		switch ev.Name {
		case "broker.queue_wait":
			sawWait = true
		case "server.solve":
			sawRoot = true
		}
	}
	if !sawWait || !sawRoot {
		t.Errorf("cancelled request's spans incomplete (wait=%v root=%v): %+v", sawWait, sawRoot, spans)
	}
}

// obsInFlight reports whether the wedge request has reached the solver
// (the single worker is busy).
func obsInFlight(s *Server) bool {
	return obs.Default().Counter("broker.submitted").Value() > 0
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition never held")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestShutdownMidFlightSpansClose (the shutdown leg): requests still
// queued when Close begins are drained by the workers, and every
// accepted request's queue-wait span closes — none leak un-Ended.
func TestShutdownMidFlightSpansClose(t *testing.T) {
	buf := captureTrace(t)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 8, SyncWait: 5 * time.Millisecond, MaxVertices: 64})
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		<-release
		return &SolveResult{Graph6: g6, N: g.NumVertices(), M: g.NumEdges(), K: k, Attackers: attackers}, nil
	}

	// One wedge + two queued requests, each with its own trace ID; all
	// convert to 202 jobs after SyncWait.
	traces := []string{strings.Repeat("11", 16), strings.Repeat("22", 16), strings.Repeat("33", 16)}
	for i, id := range traces {
		body := fmt.Sprintf(`{"n":%d,"edges":[%s],"k":1}`, i+2, pathEdges(i+2))
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader([]byte(body)))
		req.Header.Set(TraceHeader, id)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusAccepted {
			t.Fatalf("request %d: status %d, want 202: %s", i, w.Code, w.Body.String())
		}
	}

	// Shut down while two requests are still queued; release the wedge so
	// the drain can finish.
	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}

	for _, id := range traces {
		sawWait := false
		for _, ev := range spansOf(t, buf, id) {
			if ev.Name == "broker.queue_wait" {
				sawWait = true
			}
		}
		if !sawWait {
			t.Errorf("trace %s leaked its queue-wait span across shutdown", id)
		}
	}
}

func TestReadyz(t *testing.T) {
	s := newTestServer(t)
	w := do(s, http.MethodGet, "/readyz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("idle readyz = %d: %s", w.Code, w.Body.String())
	}
	var st ReadyStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ready" || st.Reason != "" || st.QueueHighWater != s.cfg.QueueHighWater {
		t.Errorf("idle body: %+v", st)
	}
	if st.SLO.Availability != 1 {
		t.Errorf("idle SLO availability = %v, want 1", st.SLO.Availability)
	}
}

func TestReadyzQueueHighWater(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 4
		c.QueueHighWater = 1
		c.SyncWait = 5 * time.Millisecond
	})
	inner := s.solveFn
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		<-release
		return inner(ctx, g, g6, k, attackers)
	}
	defer close(release)

	// Wedge the worker, then queue one more distinct graph: depth 1 >=
	// high water 1.
	do(s, http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":1}`)
	do(s, http.MethodPost, "/v1/solve", `{"n":3,"edges":[[0,1],[1,2],[0,2]],"k":1}`)
	waitFor(t, func() bool { return s.broker.QueueDepth() >= 1 })

	d := counterDelta([]string{"server.readyz.checks", "server.readyz.unavailable"}, func() {
		w := do(s, http.MethodGet, "/readyz", "")
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("readyz over high water = %d, want 503: %s", w.Code, w.Body.String())
		}
		var st ReadyStatus
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "unavailable" || st.Reason != "queue_high_water" {
			t.Errorf("body: %+v", st)
		}
	})
	if d["server.readyz.checks"] != 1 || d["server.readyz.unavailable"] != 1 {
		t.Errorf("readyz counters: %v", d)
	}
}

func TestReadyzBurnRateTrip(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBurnRate = 5 })
	// Saturate the window with server-side failures: availability burn
	// far above 5 with the default 0.999 objective.
	for i := 0; i < 50; i++ {
		s.slo.Record(false, time.Millisecond)
	}
	w := do(s, http.MethodGet, "/readyz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("burning readyz = %d, want 503: %s", w.Code, w.Body.String())
	}
	var st ReadyStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Reason != "burn_rate" {
		t.Errorf("reason = %q, want burn_rate (%+v)", st.Reason, st)
	}
	if st.SLO.AvailabilityBurnRate < 5 {
		t.Errorf("availability burn = %v, want >= 5", st.SLO.AvailabilityBurnRate)
	}
}

// TestSLORecordsOnlyAPIRequests: /v1 outcomes land in the SLO window;
// probe endpoints do not.
func TestSLORecordsOnlyAPIRequests(t *testing.T) {
	s := newTestServer(t)
	do(s, http.MethodGet, "/healthz", "")
	do(s, http.MethodGet, "/readyz", "")
	if st := s.slo.Status(); st.Requests != 0 {
		t.Fatalf("probes recorded into the SLO window: %+v", st)
	}
	do(s, http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":1}`)
	do(s, http.MethodGet, "/v1/jobs/nope", "") // 404: client error, SLO-ok
	st := s.slo.Status()
	if st.Requests != 2 || st.Errors != 0 {
		t.Fatalf("API outcomes: %+v, want 2 requests, 0 errors", st)
	}
}

func TestSLOHandler(t *testing.T) {
	s := newTestServer(t)
	s.slo.Record(true, time.Millisecond)
	w := httptest.NewRecorder()
	s.SLOHandler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/slo", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("slo handler = %d", w.Code)
	}
	var st obs.SLOStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("slo body: %v\n%s", err, w.Body.String())
	}
	if st.Requests != 1 {
		t.Errorf("slo requests = %d, want 1", st.Requests)
	}
}

// TestRequestLog: every API request produces one structured line whose
// trace_id matches the response header.
func TestRequestLog(t *testing.T) {
	var logBuf bytes.Buffer
	s := newTestServer(t, func(c *Config) { c.RequestLog = obslog.New(&logBuf) })
	w := do(s, http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	traceID := w.Header().Get(TraceHeader)

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %q", len(lines), logBuf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if entry["event"] != "request" || entry["method"] != "POST" ||
		entry["path"] != "/v1/solve" || entry["status"] != float64(200) {
		t.Errorf("log envelope wrong: %v", entry)
	}
	if entry["trace_id"] != traceID {
		t.Errorf("log trace_id = %v, want %v (the response header)", entry["trace_id"], traceID)
	}
	if _, ok := entry["latency_ms"].(float64); !ok {
		t.Errorf("latency_ms missing or non-numeric: %v", entry["latency_ms"])
	}
}
