package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/par"
)

// TestMain enables the default registry: the accounting tests read the
// server.* counters, and running the whole suite with metrics on proves
// recording never changes responses.
func TestMain(m *testing.M) {
	obs.Default().SetEnabled(true)
	m.Run()
}

// newTestServer builds a server with fast test defaults; callers may
// mutate cfg via the variadic tweak.
func newTestServer(t *testing.T, tweaks ...func(*Config)) *Server {
	t.Helper()
	cfg := Config{Workers: 2, QueueCap: 16, SyncWait: 30 * time.Second, SolveTimeout: 30 * time.Second, MaxVertices: 64}
	for _, tw := range tweaks {
		tw(&cfg)
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

// do runs one request through the handler without a network hop.
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeSolve(t *testing.T, w *httptest.ResponseRecorder) SolveResponse {
	t.Helper()
	var resp SolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding solve response: %v\nbody: %s", err, w.Body.String())
	}
	return resp
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("decoding error body: %v\nbody: %s", err, w.Body.String())
	}
	return eb
}

func counterDelta(names []string, fn func()) map[string]uint64 {
	before := make(map[string]uint64, len(names))
	for _, n := range names {
		before[n] = obs.Default().Counter(n).Value()
	}
	fn()
	d := make(map[string]uint64, len(names))
	for _, n := range names {
		d[n] = obs.Default().Counter(n).Value() - before[n]
	}
	return d
}

// TestSolverThreadsClamp pins the oversubscription policy: the per-solve
// thread budget times the broker pool never exceeds GOMAXPROCS, and the
// default is a single-threaded solve.
func TestSolverThreadsClamp(t *testing.T) {
	defer par.SetThreads(0)
	s := newTestServer(t, func(c *Config) { c.Workers = 2; c.SolverThreads = 1024 })
	want := runtime.GOMAXPROCS(0) / 2
	if want < 1 {
		want = 1
	}
	if got := s.SolverThreads(); got != want {
		t.Errorf("SolverThreads() = %d, want clamp to %d", got, want)
	}
	if got := par.Threads(); got != want {
		t.Errorf("par.Threads() = %d after New, want %d", got, want)
	}
	if got := newTestServer(t).SolverThreads(); got != 1 {
		t.Errorf("default SolverThreads() = %d, want 1", got)
	}
}

func TestSolveCycleKMatching(t *testing.T) {
	s := newTestServer(t)
	w := do(s, http.MethodPost, "/v1/solve",
		`{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[0,5]],"k":2,"attackers":4}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeSolve(t, w)
	r := resp.Result
	if r == nil {
		t.Fatal("nil result")
	}
	if r.N != 6 || r.M != 6 || r.K != 2 || r.Attackers != 4 {
		t.Errorf("instance echo wrong: %+v", r)
	}
	if r.Rho != 3 || r.PureNE {
		t.Errorf("C6: rho=%d pure=%v, want rho=3 pure=false at k=2", r.Rho, r.PureNE)
	}
	if r.MixedNE == nil || r.MixedNE.Family != "k-matching" {
		t.Fatalf("expected a k-matching NE, got %+v", r.MixedNE)
	}
	// C6 at k=2: the attacker support is the size-3 independent set, the
	// arrest probability k/|E(D(tp))| = 2/3, defender gain k·ν/|IS| = 8/3.
	if r.MixedNE.HitProbability != "2/3" {
		t.Errorf("hit probability = %q, want 2/3", r.MixedNE.HitProbability)
	}
	if r.MixedNE.DefenderGain != "8/3" {
		t.Errorf("defender gain = %q, want 8/3", r.MixedNE.DefenderGain)
	}
	if r.GameValue != "2/3" || r.GameValueSource != "lp" {
		t.Errorf("game value = %q (%s), want 2/3 from lp", r.GameValue, r.GameValueSource)
	}
	if resp.Cached {
		t.Error("first solve reported cached")
	}
	if len(r.MixedNE.Tuples) != r.MixedNE.TupleCount || len(r.MixedNE.TupleProbs) != r.MixedNE.TupleCount {
		t.Errorf("tuple rendering mismatch: %d tuples, %d probs, count %d",
			len(r.MixedNE.Tuples), len(r.MixedNE.TupleProbs), r.MixedNE.TupleCount)
	}
	if r.Graph6 == "" {
		t.Error("missing canonical graph6 echo")
	}
}

// TestSolveCacheSharedAcrossSpellings: the same graph submitted as an
// edge list and as graph6 hits one cache entry, and the hit is flagged.
func TestSolveCacheSharedAcrossSpellings(t *testing.T) {
	s := newTestServer(t)
	body1 := `{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3]],"k":1}`
	w := do(s, http.MethodPost, "/v1/solve", body1)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	first := decodeSolve(t, w)
	if first.Cached {
		t.Fatal("first request cached")
	}
	g6 := first.Result.Graph6

	d := counterDelta([]string{"server.cache.hits", "server.cache.misses"}, func() {
		w = do(s, http.MethodPost, "/v1/solve", fmt.Sprintf(`{"graph6":%q,"k":1}`, g6))
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	second := decodeSolve(t, w)
	if !second.Cached {
		t.Error("graph6 spelling of a solved graph missed the cache")
	}
	if d["server.cache.hits"] != 1 || d["server.cache.misses"] != 0 {
		t.Errorf("cache counters: %v", d)
	}
	a, b := first.Result, second.Result
	if a.GameValue != b.GameValue || a.Rho != b.Rho {
		t.Errorf("cached result drifted: %+v vs %+v", a, b)
	}
	// Different k is a different entry.
	w = do(s, http.MethodPost, "/v1/solve", fmt.Sprintf(`{"graph6":%q,"k":2}`, g6))
	if w.Code != http.StatusOK || decodeSolve(t, w).Cached {
		t.Errorf("k=2 must be a fresh solve (status %d)", w.Code)
	}
}

func TestSolveValidationErrors(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"empty body", ``, http.StatusBadRequest, CodeBadRequest},
		{"malformed json", `{"n":4`, http.StatusBadRequest, CodeBadRequest},
		{"unknown field", `{"n":3,"edges":[[0,1],[1,2]],"k":1,"bogus":true}`, http.StatusBadRequest, CodeBadRequest},
		{"trailing data", `{"n":3,"edges":[[0,1],[1,2]],"k":1} {}`, http.StatusBadRequest, CodeBadRequest},
		{"no graph", `{"k":1}`, http.StatusBadRequest, CodeBadRequest},
		{"both graphs", `{"graph6":"Bw","n":3,"edges":[[0,1]],"k":1}`, http.StatusBadRequest, CodeBadRequest},
		{"bad graph6", `{"graph6":"~~~~","k":1}`, http.StatusBadRequest, CodeBadGraph6},
		{"graph6 padding garbage", `{"graph6":"Ao","k":1}`, http.StatusBadRequest, CodeBadGraph6},
		{"self loop", `{"n":2,"edges":[[1,1]],"k":1}`, http.StatusBadRequest, CodeBadGraph},
		{"edge out of range", `{"n":2,"edges":[[0,5]],"k":1}`, http.StatusBadRequest, CodeBadGraph},
		{"negative n", `{"n":-2,"edges":[[0,1]],"k":1}`, http.StatusBadRequest, CodeBadGraph},
		{"graph too large", `{"n":65,"edges":[[0,1]],"k":1}`, http.StatusUnprocessableEntity, CodeGraphTooLarge},
		{"isolated vertex", `{"n":3,"edges":[[0,1]],"k":1}`, http.StatusUnprocessableEntity, CodeIsolatedVertex},
		{"k zero", `{"n":2,"edges":[[0,1]],"k":0}`, http.StatusUnprocessableEntity, CodeBadK},
		{"k over m", `{"n":2,"edges":[[0,1]],"k":5}`, http.StatusUnprocessableEntity, CodeBadK},
		{"bad attackers", `{"n":2,"edges":[[0,1]],"k":1,"attackers":-3}`, http.StatusUnprocessableEntity, CodeBadAttackers},
		{"negative timeout", `{"n":2,"edges":[[0,1]],"k":1,"timeout_ms":-1}`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := counterDelta([]string{"server.solve.errors"}, func() {
				w := do(s, http.MethodPost, "/v1/solve", tc.body)
				if w.Code != tc.wantStatus {
					t.Fatalf("status %d, want %d (%s)", w.Code, tc.wantStatus, w.Body.String())
				}
				eb := decodeError(t, w)
				if eb.Error.Code != tc.wantCode {
					t.Errorf("code %q, want %q", eb.Error.Code, tc.wantCode)
				}
				if eb.Error.Message == "" {
					t.Error("empty error message")
				}
			})
			if d["server.solve.errors"] != 1 {
				t.Errorf("solve.errors moved by %d, want 1", d["server.solve.errors"])
			}
		})
	}
}

func TestBodyTooLarge(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 128 })
	w := do(s, http.MethodPost, "/v1/solve",
		`{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3]],"k":1,"graph6":"`+strings.Repeat("x", 200)+`"}`)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
	if eb := decodeError(t, w); eb.Error.Code != CodeBodyTooLarge {
		t.Errorf("code %q", eb.Error.Code)
	}
}

func TestMethodAndRouteContract(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		method, path string
		wantStatus   int
		wantCode     string
	}{
		{http.MethodGet, "/v1/solve", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{http.MethodDelete, "/v1/solve", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{http.MethodPost, "/v1/jobs/j00000001", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{http.MethodGet, "/v1/jobs/nope", http.StatusNotFound, CodeNotFound},
		{http.MethodGet, "/v1/jobs/", http.StatusNotFound, CodeNotFound},
		{http.MethodGet, "/v1/jobs/a/b", http.StatusNotFound, CodeNotFound},
		{http.MethodGet, "/nope", http.StatusNotFound, CodeNotFound},
		{http.MethodGet, "/", http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		w := do(s, tc.method, tc.path, "")
		if w.Code != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, w.Code, tc.wantStatus)
			continue
		}
		if eb := decodeError(t, w); eb.Error.Code != tc.wantCode {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, eb.Error.Code, tc.wantCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	w := do(s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Errorf("healthz: %d %s", w.Code, w.Body.String())
	}
}

// TestAsyncJobFlow scripts the 202 contract with a gated solve: submit →
// 202 + Location, poll pending with Retry-After, release, poll done with
// the real result.
func TestAsyncJobFlow(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) { c.SyncWait = 10 * time.Millisecond })
	inner := s.solveFn
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		<-release
		return inner(ctx, g, g6, k, attackers)
	}

	w := do(s, http.MethodPost, "/v1/solve", `{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3]],"k":1}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", w.Code, w.Body.String())
	}
	var js JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js.Status != JobPending || js.ID == "" {
		t.Fatalf("202 body: %+v", js)
	}
	if loc := w.Header().Get("Location"); loc != js.Poll {
		t.Errorf("Location %q != poll %q", loc, js.Poll)
	}

	w = do(s, http.MethodGet, js.Poll, "")
	if w.Code != http.StatusOK {
		t.Fatalf("poll status %d", w.Code)
	}
	var pending JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &pending); err != nil {
		t.Fatal(err)
	}
	if pending.Status != JobPending {
		t.Fatalf("pending poll: %+v", pending)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("pending poll missing Retry-After")
	}

	close(release)
	deadline := time.After(10 * time.Second)
	var done JobStatus
	for done.Status != JobDone {
		select {
		case <-deadline:
			t.Fatalf("job never completed: %+v", done)
		case <-time.After(5 * time.Millisecond):
		}
		w = do(s, http.MethodGet, js.Poll, "")
		if err := json.Unmarshal(w.Body.Bytes(), &done); err != nil {
			t.Fatal(err)
		}
	}
	if done.Result == nil || done.Result.MixedNE == nil || done.Result.GameValue != "1/2" {
		t.Errorf("C4 k=1 job result: %+v", done.Result)
	}
	// The async result is cached like a sync one.
	w = do(s, http.MethodPost, "/v1/solve", `{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3]],"k":1}`)
	if w.Code != http.StatusOK || !decodeSolve(t, w).Cached {
		t.Errorf("async-solved graph should hit the cache (status %d)", w.Code)
	}
}

// TestAsyncJobFailure: a failing solve surfaces as a failed job with the
// structured error, not a hung handle.
func TestAsyncJobFailure(t *testing.T) {
	boom := fmt.Errorf("synthetic failure")
	s := newTestServer(t, func(c *Config) { c.SyncWait = time.Millisecond })
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, boom
	}
	w := do(s, http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":1}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status %d, want 202", w.Code)
	}
	var js JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for js.Status != JobFailed {
		select {
		case <-deadline:
			t.Fatalf("job never failed: %+v", js)
		case <-time.After(5 * time.Millisecond):
		}
		w = do(s, http.MethodGet, js.Poll, "")
		if err := json.Unmarshal(w.Body.Bytes(), &js); err != nil {
			t.Fatal(err)
		}
	}
	if js.Error == nil || js.Error.Code != CodeInternal {
		t.Errorf("failed job error: %+v", js.Error)
	}
	// Failures are not cached: the next request solves again.
	if c := s.cache.Len(); c != 0 {
		t.Errorf("failed solve was cached (%d entries)", c)
	}
}

// TestJobTTLPurge: finished jobs expire after the TTL; pending jobs never
// do.
func TestJobTTLPurge(t *testing.T) {
	s := newTestServer(t)
	now := time.Now()
	s.jobs.now = func() time.Time { return now }
	id := s.jobs.create()
	s.jobs.complete(id, &SolveResult{Graph6: "A_"}, nil)
	pendingID := s.jobs.create()

	if _, ok := s.jobs.get(id); !ok {
		t.Fatal("fresh job missing")
	}
	now = now.Add(s.cfg.JobTTL + time.Second)
	if _, ok := s.jobs.get(id); ok {
		t.Error("expired job still pollable")
	}
	if _, ok := s.jobs.get(pendingID); !ok {
		t.Error("pending job was purged")
	}
	// Unblock the pending handle so Close doesn't wait on it (it has no
	// broker request in this unit test).
	s.jobs.complete(pendingID, nil, errBad(http.StatusInternalServerError, CodeInternal, "abandoned"))
}

// TestSolveTimeout: a request deadline shorter than the solve yields the
// structured timeout error on the synchronous path.
func TestSolveTimeout(t *testing.T) {
	s := newTestServer(t)
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	w := do(s, http.MethodPost, "/v1/solve", `{"n":2,"edges":[[0,1]],"k":1,"timeout_ms":10}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if eb := decodeError(t, w); eb.Error.Code != CodeTimeout {
		t.Errorf("code %q", eb.Error.Code)
	}
}

// TestQueueFullSheds: with one wedged worker and a one-slot queue,
// further distinct-graph requests get 429 + Retry-After.
func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 1
		c.SyncWait = 50 * time.Millisecond
	})
	s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
		<-release
		return &SolveResult{Graph6: g6, N: g.NumVertices(), M: g.NumEdges(), K: k, Attackers: attackers}, nil
	}
	defer close(release)

	// Distinct graphs so nothing coalesces: path graphs of growing size.
	codes := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"n":%d,"edges":[%s],"k":1}`, n, pathEdges(n))
			w := do(s, http.MethodPost, "/v1/solve", body)
			codes <- w.Code
			if w.Code == http.StatusTooManyRequests {
				if w.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				if eb := decodeError(t, w); eb.Error.Code != CodeQueueFull {
					t.Errorf("429 code %q", eb.Error.Code)
				}
			}
		}(i + 2)
	}
	wg.Wait()
	close(codes)
	shed := 0
	for c := range codes {
		if c == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed == 0 {
		t.Error("no request was shed despite a wedged one-slot broker")
	}
}

func pathEdges(n int) string {
	parts := make([]string, 0, n-1)
	for i := 0; i < n-1; i++ {
		parts = append(parts, fmt.Sprintf("[%d,%d]", i, i+1))
	}
	return strings.Join(parts, ",")
}

// TestCacheConservationUnderRace is the PR 3 conservation suite lifted to
// the service: many concurrent clients requesting one graph must observe
// hits + misses == requests, 1 <= stores <= misses, and the broker's
// submitted == completed + failed + cancelled — while -race watches the
// whole path. It also proves coalescing: the solve runs far fewer times
// than there are requests.
func TestCacheConservationUnderRace(t *testing.T) {
	const clients = 12
	const perClient = 15
	names := []string{
		"server.solve.requests", "server.solve.ok", "server.solve.accepted",
		"server.solve.rejected", "server.solve.errors",
		"server.cache.hits", "server.cache.misses", "server.cache.stores",
		"broker.submitted", "broker.completed", "broker.failed", "broker.cancelled",
	}
	var solves int32
	var solvesMu sync.Mutex
	d := counterDelta(names, func() {
		s := newTestServer(t, func(c *Config) { c.QueueCap = clients * perClient })
		inner := s.solveFn
		s.solveFn = func(ctx context.Context, g *graph.Graph, g6 string, k, attackers int) (*SolveResult, error) {
			solvesMu.Lock()
			solves++
			solvesMu.Unlock()
			return inner(ctx, g, g6, k, attackers)
		}
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					w := do(s, http.MethodPost, "/v1/solve", `{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[0,5]],"k":2}`)
					if w.Code != http.StatusOK {
						t.Errorf("status %d: %s", w.Code, w.Body.String())
						return
					}
				}
			}()
		}
		wg.Wait()
		// Drain the broker before reading its counters.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Fatal(err)
		}
	})
	total := uint64(clients * perClient)
	if d["server.solve.requests"] != total {
		t.Errorf("requests = %d, want %d", d["server.solve.requests"], total)
	}
	if got := d["server.solve.ok"] + d["server.solve.accepted"] + d["server.solve.rejected"] + d["server.solve.errors"]; got != total {
		t.Errorf("ok+accepted+rejected+errors = %d, want %d (%v)", got, total, d)
	}
	if d["server.cache.hits"]+d["server.cache.misses"] != total {
		t.Errorf("hits(%d)+misses(%d) != lookups(%d)", d["server.cache.hits"], d["server.cache.misses"], total)
	}
	if st := d["server.cache.stores"]; st < 1 || st > d["server.cache.misses"] {
		t.Errorf("stores = %d, want 1 <= stores <= misses (%d)", st, d["server.cache.misses"])
	}
	if d["broker.submitted"] != d["broker.completed"]+d["broker.failed"]+d["broker.cancelled"] {
		t.Errorf("broker conservation violated: %v", d)
	}
	if int(solves) != 1 {
		t.Errorf("solve ran %d times for one key; coalescing should make it exactly 1", solves)
	}
}

// TestServerCloseLeaksNothing: a busy server shuts down without leaking
// workers or job goroutines.
func TestServerCloseLeaksNothing(t *testing.T) {
	before := stableGoroutines(t)
	s := New(Config{Workers: 4, QueueCap: 32, SyncWait: time.Millisecond, MaxVertices: 64})
	for i := 0; i < 20; i++ {
		do(s, http.MethodPost, "/v1/solve", `{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[0,4]],"k":1}`)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	after := stableGoroutines(t)
	if after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

func stableGoroutines(t *testing.T) int {
	t.Helper()
	last := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last {
			return n
		}
		last = n
	}
	return last
}
