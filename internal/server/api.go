// Package server implements the defender-as-a-service HTTP/JSON API of
// cmd/defenderd: POST /v1/solve accepts a graph (edge list or graph6) and
// a defender power k, and returns Nash-equilibrium existence, the
// defender's mixed strategy, and the exact game value with every rational
// rendered as a "p/q" string. Solves that outrun the synchronous wait
// window return a 202 job handle polled at GET /v1/jobs/{id}.
//
// Requests flow through a bounded worker broker
// (internal/server/broker) in front of a graph6-keyed response cache, so
// N requests for one graph cost one solve plus N-1 cache hits, and
// overload sheds as 429 + Retry-After instead of queueing unboundedly.
// The wire contract is pinned by golden request/response pairs under
// testdata/golden and fuzzed end-to-end by FuzzServeSolve.
package server

// api.go defines the wire contract: every request and response body of
// the /v1 API. Fields marked "p/q" carry exact rationals rendered with
// math/big.Rat.RatString ("2/3", or "1" for integers) — the service
// never converts game values to floating point.

import "github.com/defender-game/defender/internal/obs"

// TraceHeader is the request/response header carrying the request's
// trace ID. Every response sets it; a request may supply its own valid
// (32 lowercase hex) ID to correlate client-side records with the
// server's span JSONL — see TRACING.md.
const TraceHeader = "X-Defender-Trace-Id"

// SolveRequest is the body of POST /v1/solve. Exactly one of Graph6 or
// (N, Edges) must describe the graph.
type SolveRequest struct {
	// Graph6 is the graph in canonical graph6 encoding.
	Graph6 string `json:"graph6,omitempty"`
	// N and Edges give the graph as an explicit edge list on vertices
	// 0..n-1.
	N     int      `json:"n,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`
	// K is the defender power: edges per tuple, 1 <= k <= m.
	K int `json:"k"`
	// Attackers is the number of vertex players ν (default 1).
	Attackers int `json:"attackers,omitempty"`
	// TimeoutMS optionally lowers the server's per-solve deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// MixedNE is the defender's side of a verified mixed Nash equilibrium.
type MixedNE struct {
	// Family is the construction that produced the equilibrium:
	// "k-matching", "perfect-matching", "regular" or "lp-minimax".
	Family string `json:"family"`
	// VPSupport is D(VP), the common attacker support.
	VPSupport []int `json:"vp_support"`
	// EdgeSupport is E(D(tp)), the distinct edges of support tuples.
	EdgeSupport [][2]int `json:"edge_support"`
	// TupleCount is |D(tp)|. Tuples and TupleProbs enumerate the support
	// tuples (each tuple a list of edges) with their probabilities
	// ("p/q"); both are omitted when the support exceeds the rendering
	// cap, with a note explaining the elision.
	TupleCount int        `json:"tuple_count"`
	Tuples     [][][2]int `json:"tuples,omitempty"`
	TupleProbs []string   `json:"tuple_probs,omitempty"`
	// DefenderGain is IP_tp, the expected number of arrested attackers
	// ("p/q").
	DefenderGain string `json:"defender_gain"`
	// HitProbability is the per-attacker arrest probability k/|E(D(tp))|
	// ("p/q"), present for the structured families (Claim 4.3).
	HitProbability string `json:"hit_probability,omitempty"`
}

// SolveResult is the cacheable payload of a completed solve: a pure
// function of (graph, k, attackers). Handlers treat stored results as
// immutable — the response cache hands the same pointer to every hit.
type SolveResult struct {
	// Graph6 is the canonical encoding of the solved graph (also the
	// response-cache key, together with K and Attackers).
	Graph6 string `json:"graph6"`
	// N, M, K, Attackers echo the solved instance.
	N         int `json:"n"`
	M         int `json:"m"`
	K         int `json:"k"`
	Attackers int `json:"attackers"`
	// Rho is the edge-cover number ρ(G); a pure NE exists iff k >= ρ(G)
	// (Theorem 3.1), which PureNE reports.
	Rho    int  `json:"rho"`
	PureNE bool `json:"pure_ne"`
	// MixedNE is the verified mixed equilibrium, or null when no
	// equilibrium could be computed within the enumeration budget (a
	// note explains why).
	MixedNE *MixedNE `json:"mixed_ne,omitempty"`
	// GameValue is the exact ν=1 minimax value ("p/q"): the probability
	// the defender catches an optimally-playing attacker.
	// GameValueSource records how it was obtained: "lp" (the
	// structure-free LP oracle) or "closed-form" (k/|E(D(tp))| from the
	// verified structured equilibrium, Claim 4.3). Empty when
	// unavailable.
	GameValue       string `json:"game_value,omitempty"`
	GameValueSource string `json:"game_value_source,omitempty"`
	// Notes carries human-readable caveats (elided tuple rendering,
	// unavailable LP value, ...).
	Notes []string `json:"notes,omitempty"`
}

// SolveResponse is the 200 body of POST /v1/solve.
type SolveResponse struct {
	Result *SolveResult `json:"result"`
	// Cached reports whether the result was answered from the response
	// cache without a solve.
	Cached bool `json:"cached"`
	// SolveMS is the request's server-side latency in milliseconds
	// (volatile; golden tests mask it).
	SolveMS float64 `json:"solve_ms"`
}

// JobStatus values.
const (
	JobPending = "pending"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the body of a 202 solve response and of GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Poll is the URL to poll for completion.
	Poll string `json:"poll"`
	// Result is set once Status is "done".
	Result *SolveResult `json:"result,omitempty"`
	// Error is set once Status is "failed".
	Error *ErrorInfo `json:"error,omitempty"`
}

// ReadyStatus is the body of GET /readyz: 200 with status "ready", or
// 503 with status "unavailable" and the tripped condition in Reason,
// so load balancers (and operators reading the body) see why the
// instance is shedding. SLO carries the rolling-window burn rates
// behind the decision.
type ReadyStatus struct {
	Status string `json:"status"`
	// Reason names the tripped condition ("queue_high_water" or
	// "burn_rate"); empty when ready.
	Reason string `json:"reason,omitempty"`
	// QueueDepth and QueueHighWater expose the backpressure check's
	// inputs.
	QueueDepth     int `json:"queue_depth"`
	QueueHighWater int `json:"queue_high_water"`
	// SLO is the monitor's current window evaluation.
	SLO obs.SLOStatus `json:"slo"`
}

// ErrorBody is the body of every non-2xx response: machine-readable code
// plus human-readable message, always present (asserted by
// FuzzServeSolve).
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo is the structured error payload.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes of the /v1 API.
const (
	CodeBadRequest       = "bad_request"       // malformed JSON or request shape
	CodeBadGraph6        = "bad_graph6"        // graph6 string rejected
	CodeBadGraph         = "bad_graph"         // edge list rejected
	CodeGraphTooLarge    = "graph_too_large"   // vertex count over the server cap
	CodeBadK             = "bad_k"             // k outside 1..m
	CodeBadAttackers     = "bad_attackers"     // attackers < 1
	CodeIsolatedVertex   = "isolated_vertex"   // model undefined on the graph
	CodeTooLarge         = "too_large"         // tuple space over the enumeration budget
	CodeTimeout          = "timeout"           // per-solve deadline exceeded
	CodeQueueFull        = "queue_full"        // broker backpressure (429)
	CodeNotFound         = "not_found"         // unknown route or job id
	CodeMethodNotAllowed = "method_not_allowed"
	CodeBodyTooLarge     = "body_too_large"    // request body over the byte cap
	CodeInternal         = "internal"          // unexpected solver failure
)
