package experiments

import (
	"os"
	"sync"
	"testing"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
)

// TestMain enables the process-wide metrics registry for every test in the
// package. This is deliberate: the golden-table and parallel-determinism
// tests then run with the instrumentation live, proving that recording
// counters, gauges, histograms and spans perturbs neither the computed
// values nor the byte-identical rendering guarantee.
func TestMain(m *testing.M) {
	obs.Default().SetEnabled(true)
	os.Exit(m.Run())
}

// counterDelta snapshots a set of counters around fn and returns how much
// each grew. The registry is process-wide, so deltas — not absolutes — are
// the only sound assertion when other tests share the process.
func counterDelta(names []string, fn func()) map[string]uint64 {
	before := make(map[string]uint64, len(names))
	snap := obs.Default().Snapshot()
	for _, n := range names {
		before[n] = snap.Counters[n]
	}
	fn()
	snap = obs.Default().Snapshot()
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		out[n] = snap.Counters[n] - before[n]
	}
	return out
}

// TestCacheCountersAccounting pins the hit/miss/store arithmetic of the
// cache instrumentation on a fresh cache: first lookup of a key is exactly
// one miss and one store, the second is exactly one hit, and
// hits + misses equals total lookups.
func TestCacheCountersAccounting(t *testing.T) {
	c := newStructCache()
	g := graph.Cycle(6)
	names := []string{
		"experiments.cache.matching.hits",
		"experiments.cache.matching.misses",
		"experiments.cache.matching.stores",
	}

	d := counterDelta(names, func() { c.MaximumMatching(g) })
	if d["experiments.cache.matching.misses"] != 1 || d["experiments.cache.matching.stores"] != 1 || d["experiments.cache.matching.hits"] != 0 {
		t.Errorf("first lookup: want 1 miss + 1 store + 0 hits, got %v", d)
	}
	d = counterDelta(names, func() { c.MaximumMatching(g) })
	if d["experiments.cache.matching.hits"] != 1 || d["experiments.cache.matching.misses"] != 0 || d["experiments.cache.matching.stores"] != 0 {
		t.Errorf("second lookup: want 1 hit + 0 misses + 0 stores, got %v", d)
	}
	// A structurally identical but distinct *Graph also hits.
	d = counterDelta(names, func() { c.MaximumMatching(graph.Cycle(6)) })
	if d["experiments.cache.matching.hits"] != 1 {
		t.Errorf("structural key: want a hit for an identical graph, got %v", d)
	}
}

// TestCacheCountersUnderConcurrency drives a fresh cache from many
// goroutines and checks conservation laws that hold regardless of
// interleaving: hits+misses == lookups, stores >= 1 (someone filled the
// entry), and stores <= misses (only a miss ever stores). Run under -race
// this also proves the counters themselves are data-race-free.
func TestCacheCountersUnderConcurrency(t *testing.T) {
	const workers = 8
	const reps = 25
	c := newStructCache()
	g := graph.Cycle(9)
	names := []string{
		"experiments.cache.value.hits",
		"experiments.cache.value.misses",
		"experiments.cache.value.stores",
	}
	d := counterDelta(names, func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < reps; r++ {
					if _, err := c.GameValue(g, 1); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
	hits, misses, stores := d["experiments.cache.value.hits"], d["experiments.cache.value.misses"], d["experiments.cache.value.stores"]
	if hits+misses != workers*reps {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d lookups", hits, misses, hits+misses, workers*reps)
	}
	if stores < 1 || stores > misses {
		t.Errorf("stores = %d, want 1 <= stores <= misses (%d)", stores, misses)
	}
}

// TestRunnerCountersAccounting: a table run of C cells adds exactly C to
// started and ok (no failures on the golden workload), and C observations
// to the cell-latency histogram.
func TestRunnerCountersAccounting(t *testing.T) {
	var e Experiment
	for _, cand := range All() {
		if cand.ID == "E1" {
			e = cand
		}
	}
	if e.ID == "" {
		t.Fatal("E1 not registered")
	}
	names := []string{
		"experiments.cells.started",
		"experiments.cells.ok",
		"experiments.cells.failed",
	}
	histBefore := obs.Default().Snapshot().Histograms["experiments.cell_seconds"].Count

	var cells int
	d := counterDelta(names, func() {
		table, err := e.Run(Config{Quick: true, Seed: 1, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		cells = table.Stats.Cells
	})
	if cells == 0 {
		t.Fatal("E1 ran no cells")
	}
	want := uint64(cells)
	if d["experiments.cells.started"] != want || d["experiments.cells.ok"] != want || d["experiments.cells.failed"] != 0 {
		t.Errorf("cell counters: want %d started, %d ok, 0 failed; got %v", want, want, d)
	}
	histAfter := obs.Default().Snapshot().Histograms["experiments.cell_seconds"].Count
	if histAfter-histBefore != want {
		t.Errorf("cell_seconds histogram grew by %d, want %d", histAfter-histBefore, want)
	}
}
