package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the committed golden tables:
//
//	go test ./internal/experiments -run TestGoldenTables -update
var update = flag.Bool("update", false, "rewrite the golden tables under testdata/golden")

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".golden")
}

// TestGoldenTables pins the canonical rendering of every Quick-mode table:
// any change to workloads, formatting, or computed values shows up as a
// golden diff that must be reviewed (and regenerated with -update).
// Canonical renderings mask the volatile timing cells, so the files are
// machine-independent.
func TestGoldenTables(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1, Workers: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			got := table.CanonicalRender()
			path := goldenPath(e.ID)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s canonical rendering drifted from %s\n--- got ---\n%s--- want ---\n%s",
					e.ID, path, got, want)
			}
		})
	}
}

// TestParallelMatchesSequential is the determinism guarantee of the cell
// runner: for every experiment, a workers=8 run renders byte-identically
// to a workers=1 run (volatile timing cells masked).
func TestParallelMatchesSequential(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			seqTable, err := e.Run(Config{Quick: true, Seed: 1, Workers: 1})
			if err != nil {
				t.Fatalf("%s sequential: %v", e.ID, err)
			}
			parTable, err := e.Run(Config{Quick: true, Seed: 1, Workers: 8})
			if err != nil {
				t.Fatalf("%s parallel: %v", e.ID, err)
			}
			seq, par := seqTable.CanonicalRender(), parTable.CanonicalRender()
			if seq != par {
				t.Errorf("%s: workers=8 output differs from workers=1\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
					e.ID, seq, par)
			}
		})
	}
}

// TestCanonicalRenderMasksVolatileCells checks the masking itself: volatile
// columns render as "~" in canonical form but verbatim in Render.
func TestCanonicalRenderMasksVolatileCells(t *testing.T) {
	table := Table{
		ID:       "EX",
		Title:    "volatile demo",
		Claim:    "c",
		Headers:  []string{"a", "time", "check"},
		Volatile: []int{1},
	}
	table.AddRow("1", "123µs", "ok")
	plain, canon := table.Render(), table.CanonicalRender()
	if !contains(plain, "123µs") {
		t.Errorf("Render must keep timing cells:\n%s", plain)
	}
	if contains(canon, "123µs") || !contains(canon, "~") {
		t.Errorf("CanonicalRender must mask timing cells:\n%s", canon)
	}
	// Same Volatile set, different timing values → identical canonical form.
	other := table
	other.Rows = [][]string{{"1", "999ms", "ok"}}
	if other.CanonicalRender() != canon {
		t.Error("canonical renderings with different timings must be identical")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestGoldenFilesExistForAllExperiments keeps the golden directory in sync
// with the registry: a new experiment without a committed golden file (or a
// stale file for a removed one) fails here rather than silently skipping.
func TestGoldenFilesExistForAllExperiments(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	want := make(map[string]bool)
	for _, e := range All() {
		want[e.ID+".golden"] = true
		if _, err := os.Stat(goldenPath(e.ID)); err != nil {
			t.Errorf("no golden file for %s: %v", e.ID, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range entries {
		if !want[entry.Name()] {
			t.Errorf("stale golden file %s has no registered experiment", entry.Name())
		}
	}
	if len(entries) != len(want) {
		t.Errorf("%d golden files for %d experiments", len(entries), len(want))
	}
}

// TestRenderedAndCanonicalWidthsAgree guards a subtle regression: masking
// must happen before column widths are computed, so canonical output is
// stable even when real timing strings are wider than the mask.
func TestRenderedAndCanonicalWidthsAgree(t *testing.T) {
	table := Table{
		Headers:  []string{"x", "t"},
		Volatile: []int{1},
	}
	table.AddRow("a", "1.234567s")
	canon := table.CanonicalRender()
	if contains(canon, "~        ") {
		t.Errorf("mask padded to the unmasked width — widths leak volatility:\n%s", canon)
	}
}

func init() {
	// Tests compare against committed goldens, which were generated with
	// seed 1; make that explicit if DefaultConfig ever changes.
	if DefaultConfig().Seed != 1 {
		panic(fmt.Sprintf("golden tables assume seed 1, DefaultConfig has %d", DefaultConfig().Seed))
	}
}
