package experiments

import (
	"fmt"
	"math"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/sim"
)

// E5MonteCarlo regenerates the expected-profit formulas (equations (1)-(2),
// Lemma 4.1) empirically: playing the k-matching equilibrium for many
// rounds, the defender's average catch must converge on k·ν/|IS| and every
// attacker's escape frequency on 1 − k/|EC|, within sampling error. One
// runner cell per workload; every cell derives its simulation seed from
// cfg.Seed and its own k, so results are independent of scheduling.
func E5MonteCarlo(cfg Config) (Table, error) {
	t := Table{
		ID:    "E5",
		Title: "Monte-Carlo validation of the equilibrium predictions",
		Claim: "Eq. (2)/Cor 4.10: empirical catch → k·ν/|IS|; Claim 4.3: escape rate → 1 − k/|EC|",
		Headers: []string{
			"graph", "ν", "k", "rounds", "exact-gain", "empirical", "z", "escape-err", "check",
		},
	}
	rounds := 50_000
	if cfg.Quick {
		rounds = 4_000
	}
	const nu = 9
	workloads := bipartiteWorkloads(cfg)
	r := newRunner(cfg)
	cells := make([]Cell, len(workloads))
	for i, w := range workloads {
		w := w
		cells[i] = func() ([][]string, error) {
			base, err := core.SolveTupleModel(w.g, nu, 1)
			if err != nil {
				return nil, fmt.Errorf("experiments: E5 %s: %w", w.name, err)
			}
			maxK := len(base.EdgeSupport)
			var rows [][]string
			for _, k := range []int{1, maxK / 2} {
				if k < 1 || k > maxK {
					continue
				}
				ne, err := core.SolveTupleModel(w.g, nu, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: E5 %s k=%d: %w", w.name, k, err)
				}
				res, err := sim.Run(ne.Game, ne.Profile, rounds, cfg.Seed+int64(k))
				if err != nil {
					return nil, fmt.Errorf("experiments: E5 %s k=%d: %w", w.name, k, err)
				}
				// Worst per-attacker deviation from the predicted escape rate.
				hitProb, _ := ne.HitProbability().Float64()
				wantEscape := 1 - hitProb
				worst := 0.0
				for _, escRate := range res.EscapeRate {
					if d := math.Abs(escRate - wantEscape); d > worst {
						worst = d
					}
				}
				z := res.ZScore()
				ok := math.Abs(z) <= 4 && worst <= 0.03
				rows = append(rows, []string{
					w.name,
					fmt.Sprint(nu),
					fmt.Sprint(k),
					fmt.Sprint(res.Rounds),
					fmt.Sprintf("%.4f", res.ExpectedCaught),
					fmt.Sprintf("%.4f", res.MeanCaught),
					fmt.Sprintf("%+.2f", z),
					fmt.Sprintf("%.4f", worst),
					verdict(ok),
				})
			}
			return rows, nil
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"z is the standardized deviation of the empirical mean; |z| <= 4 expected",
		"escape-err is the worst per-attacker deviation from 1 − k/|EC|",
	)
	return r.finish(t), nil
}
