package experiments

import (
	"strings"
	"testing"
)

func TestFiguresSelfCheck(t *testing.T) {
	for _, f := range Figures() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			fig, err := f.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", f.ID, err)
			}
			if !fig.OK {
				t.Errorf("%s self-check failed", f.ID)
			}
			if fig.Body == "" || fig.Title == "" {
				t.Errorf("%s rendered empty", f.ID)
			}
		})
	}
}

func TestRenderASCIIBasics(t *testing.T) {
	out := renderASCII([]Series{
		{Label: "line", Points: [][2]float64{{0, 0}, {1, 1}, {2, 2}}},
	}, 20, 8, "x", "y")
	for _, want := range []string{"*", "line", "(x)", "y"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Degenerate inputs.
	if got := renderASCII(nil, 20, 8, "x", "y"); got != "(no data)\n" {
		t.Errorf("empty series: %q", got)
	}
	flat := renderASCII([]Series{{Label: "flat", Points: [][2]float64{{1, 5}, {2, 5}}}}, 5, 3, "x", "y")
	if !strings.Contains(flat, "*") {
		t.Error("flat series must still render markers")
	}
}

func TestRenderASCIIMultipleGlyphs(t *testing.T) {
	out := renderASCII([]Series{
		{Label: "a", Points: [][2]float64{{0, 0}}},
		{Label: "b", Points: [][2]float64{{1, 1}}},
		{Label: "c", Points: [][2]float64{{2, 4}}},
	}, 24, 8, "x", "y")
	for _, g := range []string{"*", "o", "+"} {
		if !strings.Contains(out, g) {
			t.Errorf("missing glyph %q", g)
		}
	}
}
