package experiments

import (
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// E14WeightedDefense evaluates the valued-targets extension: the exact
// minimax damage of the optimal defense versus the naive uniform defense,
// across weight profiles and budgets. Self-checks: (a) with uniform
// weights the damage equals 1 − GameValue; (b) optimal never exceeds the
// uniform defense's worst-case damage; (c) damage is non-increasing in k
// and hits zero at k = ρ(G).
func E14WeightedDefense(cfg Config) (Table, error) {
	t := Table{
		ID:    "E14",
		Title: "Valued targets: optimal versus uniform defense (damage minimax)",
		Claim: "optimal defense minimizes max_v w(v)·(1−P(Hit(v))); uniform weights reduce to 1 − value",
		Headers: []string{
			"graph", "weights", "k", "optimal-damage", "uniform-damage", "check",
		},
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"star6", graph.Star(6)},
		{"C6", graph.Cycle(6)},
		{"grid23", graph.Grid(2, 3)},
	}
	if !cfg.Quick {
		workloads = append(workloads, struct {
			name string
			g    *graph.Graph
		}{"wheel7", graph.Wheel(7)})
	}

	for _, w := range workloads {
		n := w.g.NumVertices()
		profiles := []struct {
			name    string
			weights []*big.Rat
		}{
			{"uniform", constantWeights(n, 1)},
			{"one-hot×10", oneHotWeights(n, 1, 10)},
			{"linear-ramp", rampWeights(n)},
		}
		maxK := 3
		if w.g.NumEdges() < maxK {
			maxK = w.g.NumEdges()
		}
		for _, prof := range profiles {
			prev := new(big.Rat).SetInt64(1 << 30)
			for k := 1; k <= maxK; k++ {
				optimal, _, err := core.WeightedDamageValue(w.g, k, prof.weights)
				if err != nil {
					return Table{}, fmt.Errorf("experiments: E14 %s/%s k=%d: %w", w.name, prof.name, k, err)
				}
				uniform := uniformDefenseDamage(w.g, k, prof.weights)
				ok := optimal.Cmp(uniform) <= 0 && optimal.Cmp(prev) <= 0
				if prof.name == "uniform" {
					value, _, _, err := core.GameValue(w.g, k)
					if err != nil {
						return Table{}, fmt.Errorf("experiments: E14 %s k=%d: %w", w.name, k, err)
					}
					want := new(big.Rat).Sub(big.NewRat(1, 1), value)
					ok = ok && optimal.Cmp(want) == 0
				}
				prev = optimal
				t.AddRow(
					w.name, prof.name, fmt.Sprint(k),
					optimal.RatString(), uniform.RatString(), verdict(ok),
				)
			}
		}
	}
	t.Notes = append(t.Notes,
		"uniform-damage is the worst case of scanning a uniformly random k-subset of links",
		"optimal damage is non-increasing in k and reaches 0 at k = ρ(G) (full pure coverage)",
	)
	return t, nil
}

func constantWeights(n int, v int64) []*big.Rat {
	w := make([]*big.Rat, n)
	for i := range w {
		w[i] = big.NewRat(v, 1)
	}
	return w
}

func oneHotWeights(n, hot int, scale int64) []*big.Rat {
	w := constantWeights(n, 1)
	if hot >= 0 && hot < n {
		w[hot] = big.NewRat(scale, 1)
	}
	return w
}

func rampWeights(n int) []*big.Rat {
	w := make([]*big.Rat, n)
	for i := range w {
		w[i] = big.NewRat(int64(i+1), 1)
	}
	return w
}

// uniformDefenseDamage computes the exact worst-case damage of scanning a
// uniformly random k-subset of edges: P(v uncovered) = C(m−deg v, k)/C(m,k).
func uniformDefenseDamage(g *graph.Graph, k int, weights []*big.Rat) *big.Rat {
	m := g.NumEdges()
	worst := new(big.Rat)
	for v := 0; v < g.NumVertices(); v++ {
		miss := new(big.Rat).Quo(binomRat(m-g.Degree(v), k), binomRat(m, k))
		damage := new(big.Rat).Mul(weights[v], miss)
		if damage.Cmp(worst) > 0 {
			worst = damage
		}
	}
	return worst
}

func binomRat(n, k int) *big.Rat {
	if k < 0 || k > n {
		return new(big.Rat)
	}
	r := big.NewRat(1, 1)
	for i := 1; i <= k; i++ {
		r.Mul(r, big.NewRat(int64(n-k+i), int64(i)))
	}
	return r
}
