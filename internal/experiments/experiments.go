// Package experiments regenerates the paper's results as tables. The paper
// ("The Power of the Defender", ICDCS 2006) is theory-only — it has no
// measured tables or figures — so each experiment here turns one theorem
// into a measurable, self-checking artifact: existence frontiers, exact
// equilibrium verification, the linear-in-k defender gain, Monte-Carlo
// validation, and running-time scaling. EXPERIMENTS.md records expected
// versus measured output for every table; cmd/experiments prints them.
//
// Tables are built from independent (graph, k) cells executed on a bounded
// worker pool (see Runner): parallel runs reassemble rows in declared order,
// so the rendered output is independent of the worker count.
package experiments

import (
	"fmt"
	"strings"
)

// Config tunes the sweep sizes of all experiments.
type Config struct {
	// Quick shrinks every sweep so the full suite runs in well under a
	// second — used by tests and the benchmark harness.
	Quick bool
	// Seed feeds every randomized workload; experiments are deterministic
	// for a fixed Config.
	Seed int64
	// Workers bounds the cell worker pool of every table builder;
	// <= 0 means runtime.GOMAXPROCS(0). Output is byte-identical for any
	// worker count (timing columns excepted; see Table.CanonicalRender).
	Workers int

	// failFirstCell is a test hook: when set, every Runner fails its first
	// cell with errCellFault, exercising each builder's error path so the
	// zero-table-on-error contract can be swept without contriving real
	// failures per experiment.
	failFirstCell bool
}

// DefaultConfig is the configuration used by cmd/experiments.
func DefaultConfig() Config { return Config{Seed: 1} }

// Table is one experiment's rendered result.
type Table struct {
	// ID is the experiment identifier ("E1".."E16"), matching the
	// section headers of EXPERIMENTS.md.
	ID string
	// Title is the human-readable one-line experiment name.
	Title string
	// Claim is the paper statement being regenerated.
	Claim string
	// Headers is the column header row.
	Headers []string
	// Rows holds the stringified result cells, one slice per row, in
	// declaration order regardless of worker scheduling.
	Rows [][]string
	// Notes are free-form footnote lines printed after the rows.
	Notes []string
	// Volatile lists column indices whose cells are environment-dependent
	// (wall-clock timings). Render prints them verbatim; CanonicalRender
	// masks them so golden files and determinism checks stay reproducible.
	Volatile []int
	// Stats carries the runner's execution metrics for the builders that
	// run on the cell pool. It is not rendered; cmd/experiments uses it
	// for the -bench-out emission.
	Stats RunStats
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned plain-text rendering of the table.
func (t Table) Render() string { return t.render(false) }

// CanonicalRender renders the table with every volatile (timing) cell
// replaced by the placeholder "~". Two runs of the same experiment with the
// same Config — at any worker counts — produce byte-identical canonical
// renderings; the golden-table suite asserts exactly that.
func (t Table) CanonicalRender() string { return t.render(true) }

func (t Table) render(maskVolatile bool) string {
	rows := t.Rows
	if maskVolatile && len(t.Volatile) > 0 {
		volatile := make(map[int]bool, len(t.Volatile))
		for _, c := range t.Volatile {
			volatile[c] = true
		}
		rows = make([][]string, len(t.Rows))
		for i, row := range t.Rows {
			masked := make([]string, len(row))
			for j, cell := range row {
				if volatile[j] {
					masked[j] = "~"
				} else {
					masked[j] = cell
				}
			}
			rows[i] = masked
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Failures returns the rows whose last cell is not "ok" — every experiment
// writes a self-check verdict in its final column.
func (t Table) Failures() [][]string {
	var bad [][]string
	for _, row := range t.Rows {
		if len(row) > 0 && row[len(row)-1] != "ok" {
			bad = append(bad, row)
		}
	}
	return bad
}

// Experiment is one experiment entry point. Every builder honors the
// zero-table contract: on a non-nil error the returned Table is the zero
// value, never a partially filled table.
type Experiment struct {
	// ID is the table identifier ("E1".."E16") used by -only selection.
	ID string
	// Name is the short kebab-case slug of the experiment.
	Name string
	// Run builds the table for one configuration.
	Run func(Config) (Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "pure-existence", Run: E1PureExistence},
		{ID: "E2", Name: "gain-vs-k", Run: E2GainVsK},
		{ID: "E3", Name: "reduction-roundtrip", Run: E3ReductionRoundTrip},
		{ID: "E4", Name: "atuple-scaling", Run: E4ATupleScaling},
		{ID: "E5", Name: "monte-carlo", Run: E5MonteCarlo},
		{ID: "E6", Name: "characterization", Run: E6Characterization},
		{ID: "E7", Name: "hit-profile", Run: E7HitProfile},
		{ID: "E8", Name: "substrates", Run: E8Substrates},
		{ID: "E9", Name: "extensions", Run: E9Extensions},
		{ID: "E10", Name: "value-oracle", Run: E10ValueOracle},
		{ID: "E11", Name: "learning-dynamics", Run: E11LearningDynamics},
		{ID: "E12", Name: "protection-economics", Run: E12ProtectionEconomics},
		{ID: "E13", Name: "robust-defense", Run: E13RobustDefense},
		{ID: "E14", Name: "weighted-defense", Run: E14WeightedDefense},
		{ID: "E15", Name: "path-model", Run: E15PathModel},
		{ID: "E16", Name: "complete-solver", Run: E16CompleteSolver},
	}
}

// verdict renders a boolean self-check as the canonical last-column cell.
func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
