// Package experiments regenerates the paper's results as tables. The paper
// ("The Power of the Defender", ICDCS 2006) is theory-only — it has no
// measured tables or figures — so each experiment here turns one theorem
// into a measurable, self-checking artifact: existence frontiers, exact
// equilibrium verification, the linear-in-k defender gain, Monte-Carlo
// validation, and running-time scaling. EXPERIMENTS.md records expected
// versus measured output for every table; cmd/experiments prints them.
package experiments

import (
	"fmt"
	"strings"
)

// Config tunes the sweep sizes of all experiments.
type Config struct {
	// Quick shrinks every sweep so the full suite runs in well under a
	// second — used by tests and the benchmark harness.
	Quick bool
	// Seed feeds every randomized workload; experiments are deterministic
	// for a fixed Config.
	Seed int64
}

// DefaultConfig is the configuration used by cmd/experiments.
func DefaultConfig() Config { return Config{Seed: 1} }

// Table is one experiment's rendered result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being regenerated
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned plain-text rendering of the table.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Failures returns the rows whose last cell is not "ok" — every experiment
// writes a self-check verdict in its final column.
func (t Table) Failures() [][]string {
	var bad [][]string
	for _, row := range t.Rows {
		if len(row) > 0 && row[len(row)-1] != "ok" {
			bad = append(bad, row)
		}
	}
	return bad
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (Table, error)
}

// All lists every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{ID: "E1", Name: "pure-existence", Run: E1PureExistence},
		{ID: "E2", Name: "gain-vs-k", Run: E2GainVsK},
		{ID: "E3", Name: "reduction-roundtrip", Run: E3ReductionRoundTrip},
		{ID: "E4", Name: "atuple-scaling", Run: E4ATupleScaling},
		{ID: "E5", Name: "monte-carlo", Run: E5MonteCarlo},
		{ID: "E6", Name: "characterization", Run: E6Characterization},
		{ID: "E7", Name: "hit-profile", Run: E7HitProfile},
		{ID: "E8", Name: "substrates", Run: E8Substrates},
		{ID: "E9", Name: "extensions", Run: E9Extensions},
		{ID: "E10", Name: "value-oracle", Run: E10ValueOracle},
		{ID: "E11", Name: "learning-dynamics", Run: E11LearningDynamics},
		{ID: "E12", Name: "protection-economics", Run: E12ProtectionEconomics},
		{ID: "E13", Name: "robust-defense", Run: E13RobustDefense},
		{ID: "E14", Name: "weighted-defense", Run: E14WeightedDefense},
		{ID: "E15", Name: "path-model", Run: E15PathModel},
		{ID: "E16", Name: "complete-solver", Run: E16CompleteSolver},
	}
}

// verdict renders a boolean self-check as the canonical last-column cell.
func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
