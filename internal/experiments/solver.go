package experiments

import (
	"fmt"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// E16CompleteSolver sweeps SolveAny over a zoo spanning every family route
// — bipartite, perfectly-matchable, regular, and none-of-the-above — and
// verifies each returned equilibrium exactly. This is the coverage claim
// of the unified solver made measurable: a verified equilibrium for every
// instance the enumeration limits allow.
func E16CompleteSolver(cfg Config) (Table, error) {
	t := Table{
		ID:    "E16",
		Title: "Complete solver: a verified equilibrium for every instance",
		Claim: "SolveAny = structural families + LP minimax fallback; all outputs pass the exact verifier",
		Headers: []string{
			"graph", "n", "m", "k", "family", "gain", "verified", "check",
		},
	}
	const nu = 5
	zoo := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"grid3x4", graph.Grid(3, 4), 2},
		{"tree15", graph.RandomTree(15, 3), 2},
		{"heawood", graph.Heawood(), 2},
		{"K6", graph.Complete(6), 2},
		{"petersen", graph.Petersen(), 2},
		{"C5", graph.Cycle(5), 1},
		{"C5", graph.Cycle(5), 2},
		{"wheel7", graph.Wheel(7), 1},
		{"wheel7", graph.Wheel(7), 2},
		{"lollipop41", graph.Lollipop(4, 1), 1},
		{"barbell3", graph.Barbell(3), 1},
	}
	if !cfg.Quick {
		zoo = append(zoo, []struct {
			name string
			g    *graph.Graph
			k    int
		}{
			{"ws12", graph.WattsStrogatz(12, 4, 0.2, cfg.Seed), 1},
			{"ba14", graph.BarabasiAlbert(14, 2, cfg.Seed), 1},
			{"gnp12", graph.RandomConnected(12, 0.3, cfg.Seed), 1},
		}...)
	}
	for _, z := range zoo {
		ne, family, err := core.SolveAny(z.g, nu, z.k)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E16 %s k=%d: %w", z.name, z.k, err)
		}
		verErr := core.VerifyNE(ne.Game, ne.Profile)
		t.AddRow(
			z.name,
			fmt.Sprint(z.g.NumVertices()),
			fmt.Sprint(z.g.NumEdges()),
			fmt.Sprint(z.k),
			family,
			ne.DefenderGain().RatString(),
			fmt.Sprint(verErr == nil),
			verdict(verErr == nil),
		)
	}
	t.Notes = append(t.Notes,
		"family order: k-matching → perfect-matching → regular (k=1) → LP minimax lift",
		"the LP fallback is exact and lifts to any ν because payoffs scale linearly in the attacker population",
	)
	return t, nil
}
