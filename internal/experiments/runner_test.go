package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestRunnerRowsInDeclaredOrder is the determinism core: rows come back in
// cell-declaration order no matter how many workers race, even when later
// cells finish first.
func TestRunnerRowsInDeclaredOrder(t *testing.T) {
	const n = 40
	r := NewRunner(8)
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = func() ([][]string, error) {
			// Earlier-declared cells sleep longer, inverting finish order.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			return [][]string{{fmt.Sprint(i)}}, nil
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rows) != n {
		t.Fatalf("got %d rows, want %d", len(rows), n)
	}
	for i, row := range rows {
		if row[0] != fmt.Sprint(i) {
			t.Fatalf("row %d = %q, want %q", i, row[0], fmt.Sprint(i))
		}
	}
}

// TestRunnerMultiRowCells checks concatenation of variable-size row groups.
func TestRunnerMultiRowCells(t *testing.T) {
	r := NewRunner(4)
	rows, err := r.Run([]Cell{
		func() ([][]string, error) { return [][]string{{"a"}, {"b"}}, nil },
		func() ([][]string, error) { return nil, nil },
		func() ([][]string, error) { return [][]string{{"c"}}, nil },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if rows[i][0] != w {
			t.Errorf("row %d = %q, want %q", i, rows[i][0], w)
		}
	}
}

// TestRunnerErrorPrecedence: when several cells fail, the earliest-declared
// failure is reported — independent of scheduling — and no rows leak out.
func TestRunnerErrorPrecedence(t *testing.T) {
	errA := errors.New("cell 2 failed")
	errB := errors.New("cell 5 failed")
	r := NewRunner(8)
	cells := make([]Cell, 8)
	for i := range cells {
		i := i
		cells[i] = func() ([][]string, error) {
			switch i {
			case 2:
				time.Sleep(2 * time.Millisecond) // fail late...
				return nil, errA
			case 5:
				return nil, errB // ...while a later cell fails first
			}
			return [][]string{{"x"}}, nil
		}
	}
	rows, err := r.Run(cells)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want earliest-declared %v", err, errA)
	}
	if rows != nil {
		t.Fatalf("rows = %v, want nil on error", rows)
	}
}

func TestRunnerStats(t *testing.T) {
	r := NewRunner(3)
	var cells []Cell
	for i := 0; i < 10; i++ {
		cells = append(cells, func() ([][]string, error) {
			time.Sleep(200 * time.Microsecond)
			return [][]string{{"ok"}}, nil
		})
	}
	if _, err := r.Run(cells); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := r.Stats()
	if s.Cells != 10 {
		t.Errorf("Cells = %d, want 10", s.Cells)
	}
	if s.Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", s.Wall)
	}
	if s.CellP50 <= 0 || s.CellP95 < s.CellP50 {
		t.Errorf("percentiles p50=%v p95=%v inconsistent", s.CellP50, s.CellP95)
	}
	if s.CellP99 < s.CellP95 || s.CellMax < s.CellP99 {
		t.Errorf("tail stats p95=%v p99=%v max=%v not monotone", s.CellP95, s.CellP99, s.CellMax)
	}
	if s.CellsPerSec() <= 0 {
		t.Errorf("CellsPerSec = %v, want > 0", s.CellsPerSec())
	}
}

func TestRunnerStatsAccumulateAcrossRuns(t *testing.T) {
	r := NewRunner(2)
	one := []Cell{func() ([][]string, error) { return nil, nil }}
	for i := 0; i < 3; i++ {
		if _, err := r.Run(one); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if got := r.Stats().Cells; got != 3 {
		t.Errorf("Cells = %d, want 3 accumulated", got)
	}
}

func TestNewRunnerDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := NewRunner(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers = %d, want %d", got, want)
	}
	if got := NewRunner(-3).Workers(); got < 1 {
		t.Errorf("Workers = %d, want >= 1", got)
	}
	if got := NewRunner(5).Workers(); got != 5 {
		t.Errorf("Workers = %d, want 5", got)
	}
}

func TestRunnerNoCells(t *testing.T) {
	rows, err := NewRunner(4).Run(nil)
	if err != nil || rows != nil {
		t.Errorf("empty Run = (%v, %v), want (nil, nil)", rows, err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := percentile(sorted, 95); got != 10 {
		t.Errorf("p95 = %v, want 10", got)
	}
	if got := percentile([]time.Duration{7}, 50); got != 7 {
		t.Errorf("single-element p50 = %v, want 7", got)
	}
	if got := percentile(sorted, 99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
}

// TestRunnerStatsMax: CellMax is the exact slowest cell, not an estimate.
func TestRunnerStatsMax(t *testing.T) {
	r := NewRunner(2)
	_, err := r.Run([]Cell{
		func() ([][]string, error) { return nil, nil },
		func() ([][]string, error) { time.Sleep(3 * time.Millisecond); return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.CellMax < 3*time.Millisecond {
		t.Errorf("CellMax = %v, want >= 3ms (the slow cell)", s.CellMax)
	}
	if s.CellP99 > s.CellMax {
		t.Errorf("p99 %v exceeds max %v", s.CellP99, s.CellMax)
	}
}

// TestFailFirstCellHook: the Config test hook makes the runner fail its
// first declared cell without running it.
func TestFailFirstCellHook(t *testing.T) {
	r := newRunner(Config{Workers: 4, failFirstCell: true})
	ran := false
	_, err := r.Run([]Cell{
		func() ([][]string, error) { ran = true; return nil, nil },
		func() ([][]string, error) { return [][]string{{"x"}}, nil },
	})
	if !errors.Is(err, errCellFault) {
		t.Fatalf("err = %v, want errCellFault", err)
	}
	if ran {
		t.Error("faulted cell must not run")
	}
}
