package experiments

import (
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// bipartiteWorkloads is the shared set of bipartite instances used by the
// gain, reduction and Monte-Carlo experiments.
func bipartiteWorkloads(cfg Config) []struct {
	name string
	g    *graph.Graph
} {
	out := []struct {
		name string
		g    *graph.Graph
	}{
		{"K{3,4}", graph.CompleteBipartite(3, 4)},
		{"K{4,6}", graph.CompleteBipartite(4, 6)},
		{"cycle12", graph.Cycle(12)},
		{"grid3x4", graph.Grid(3, 4)},
		{"tree24", graph.RandomTree(24, cfg.Seed)},
		{"bip8+10", graph.RandomBipartite(8, 10, 0.3, cfg.Seed)},
	}
	if !cfg.Quick {
		out = append(out, []struct {
			name string
			g    *graph.Graph
		}{
			{"grid5x6", graph.Grid(5, 6)},
			{"hypercube4", graph.Hypercube(4)},
			{"bip15+20", graph.RandomBipartite(15, 20, 0.2, cfg.Seed+1)},
		}...)
	}
	return out
}

// E2GainVsK regenerates the paper's headline (Theorem 4.5, Corollaries
// 4.7/4.10): the defender's expected gain in a k-matching equilibrium is
// exactly k times the Edge-model matching-equilibrium gain — linear in the
// defender's power. Every equilibrium in the table is verified exactly.
// Each workload graph is one runner cell (its probed ks depend on the
// k=1 base solve, so the per-graph sweep stays together).
func E2GainVsK(cfg Config) (Table, error) {
	t := Table{
		ID:    "E2",
		Title: "Defender gain versus power k (the headline linearity)",
		Claim: "Thm 4.5 / Cor 4.7, 4.10: IP_tp(Π_k) = k · IP_tp(Π_1) = k·ν/|IS|",
		Headers: []string{
			"graph", "n", "|IS|", "|EC|", "ν", "k", "gain", "gain/gain(1)", "verifiedNE", "check",
		},
	}
	const nu = 12
	workloads := bipartiteWorkloads(cfg)
	r := newRunner(cfg)
	cells := make([]Cell, len(workloads))
	for i, w := range workloads {
		w := w
		cells[i] = func() ([][]string, error) {
			base, err := core.SolveTupleModel(w.g, nu, 1)
			if err != nil {
				return nil, fmt.Errorf("experiments: E2 %s: %w", w.name, err)
			}
			gain1 := base.DefenderGain()
			maxK := len(base.EdgeSupport)
			ks := []int{1, 2, 3, maxK / 2, maxK}
			seen := map[int]bool{}
			var rows [][]string
			for _, k := range ks {
				if k < 1 || k > maxK || seen[k] {
					continue
				}
				seen[k] = true
				ne, err := core.SolveTupleModel(w.g, nu, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: E2 %s k=%d: %w", w.name, k, err)
				}
				verErr := core.VerifyNE(ne.Game, ne.Profile)
				gain := ne.DefenderGain()
				ratio := new(big.Rat).Quo(gain, gain1)
				wantRatio := big.NewRat(int64(k), 1)
				ok := verErr == nil && ratio.Cmp(wantRatio) == 0
				rows = append(rows, []string{
					w.name,
					fmt.Sprint(w.g.NumVertices()),
					fmt.Sprint(len(ne.VPSupport)),
					fmt.Sprint(len(ne.EdgeSupport)),
					fmt.Sprint(nu),
					fmt.Sprint(k),
					gain.RatString(),
					ratio.RatString(),
					fmt.Sprint(verErr == nil),
					verdict(ok),
				})
			}
			return rows, nil
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"gain is exact rational arithmetic; ratio column must equal k exactly",
		"verifiedNE runs the exact Theorem 3.4 best-response verifier on every profile",
	)
	return r.finish(t), nil
}

// E7HitProfile regenerates Claims 4.3/4.4 and Theorem 3.4 condition 2: in a
// k-matching equilibrium every attacker-support vertex is hit with
// probability exactly k/|EC| and no vertex is hit less — the defender's
// quality of protection grows linearly in k. One runner cell per workload.
func E7HitProfile(cfg Config) (Table, error) {
	t := Table{
		ID:    "E7",
		Title: "Hit-probability profile and quality of protection",
		Claim: "Claims 4.3/4.4: P(Hit(v)) = k/|E(D(tp))| on the support, >= elsewhere",
		Headers: []string{
			"graph", "k", "k/|EC|", "minHit(support)", "maxHit(support)", "minHit(all)", "check",
		},
	}
	workloads := bipartiteWorkloads(cfg)
	r := newRunner(cfg)
	cells := make([]Cell, len(workloads))
	for i, w := range workloads {
		w := w
		cells[i] = func() ([][]string, error) {
			base, err := core.SolveTupleModel(w.g, 6, 1)
			if err != nil {
				return nil, fmt.Errorf("experiments: E7 %s: %w", w.name, err)
			}
			maxK := len(base.EdgeSupport)
			var rows [][]string
			for _, k := range []int{1, 2, maxK} {
				if k < 1 || k > maxK {
					continue
				}
				ne, err := core.SolveTupleModel(w.g, 6, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: E7 %s k=%d: %w", w.name, k, err)
				}
				hit := ne.Game.HitProbabilities(ne.Profile)
				want := ne.HitProbability()

				minSup := new(big.Rat).Set(hit[ne.VPSupport[0]])
				maxSup := new(big.Rat).Set(minSup)
				for _, v := range ne.VPSupport {
					if hit[v].Cmp(minSup) < 0 {
						minSup.Set(hit[v])
					}
					if hit[v].Cmp(maxSup) > 0 {
						maxSup.Set(hit[v])
					}
				}
				minAll := new(big.Rat).Set(hit[0])
				for _, h := range hit {
					if h.Cmp(minAll) < 0 {
						minAll.Set(h)
					}
				}
				ok := minSup.Cmp(want) == 0 && maxSup.Cmp(want) == 0 && minAll.Cmp(want) == 0
				rows = append(rows, []string{
					w.name,
					fmt.Sprint(k),
					want.RatString(),
					minSup.RatString(),
					maxSup.RatString(),
					minAll.RatString(),
					verdict(ok),
				})
			}
			return rows, nil
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"uniform hit probability on the support equals the global minimum: attackers are indifferent",
		"quality of protection k/|EC| is the per-attacker arrest probability — linear in k",
	)
	return r.finish(t), nil
}
