package experiments

import (
	"fmt"
	"time"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
)

// E4ATupleScaling regenerates Theorem 4.13: after Algorithm A, the tuple
// construction of Algorithm A_tuple runs in O(k·n). The table sweeps n and
// k on cycle workloads (|EC| = n/2 there) and reports ns per unit of k·|EC|,
// which should stay roughly flat as the product grows by orders of
// magnitude. One runner cell per cycle size; the timing columns are
// volatile (masked in canonical renderings) and the self-check structural.
func E4ATupleScaling(cfg Config) (Table, error) {
	t := Table{
		ID:    "E4",
		Title: "Algorithm A_tuple running time versus k·n",
		Claim: "Thm 4.13: A_tuple terminates in O(k·n) after Algorithm A",
		Headers: []string{
			"n", "|EC|", "k", "δ", "lift-time", "ns/(k·|EC|)", "check",
		},
		Volatile: []int{4, 5},
	}
	sizes := []int{64, 256, 1024, 4096}
	ks := []int{1, 4, 16, 64}
	if cfg.Quick {
		sizes = []int{64, 256}
		ks = []int{1, 8}
	}
	r := newRunner(cfg)
	cells := make([]Cell, len(sizes))
	for i, n := range sizes {
		n := n
		cells[i] = func() ([][]string, error) {
			g := graph.Cycle(n)
			edgeNE, err := core.SolveEdgeModel(g, 4)
			if err != nil {
				return nil, fmt.Errorf("experiments: E4 n=%d: %w", n, err)
			}
			var rows [][]string
			for _, k := range ks {
				if k > len(edgeNE.EdgeSupport) {
					continue
				}
				start := time.Now()
				lifted, err := core.LiftToTupleModel(edgeNE, k)
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("experiments: E4 n=%d k=%d: %w", n, k, err)
				}
				unit := float64(elapsed.Nanoseconds()) / float64(k*len(edgeNE.EdgeSupport))
				// Self-check is structural (timings are environment-dependent):
				// the construction emitted δ tuples of k edges each.
				wantDelta := len(edgeNE.EdgeSupport) / gcdInt(len(edgeNE.EdgeSupport), k)
				ok := len(lifted.Tuples) == wantDelta
				rows = append(rows, []string{
					fmt.Sprint(n),
					fmt.Sprint(len(edgeNE.EdgeSupport)),
					fmt.Sprint(k),
					fmt.Sprint(len(lifted.Tuples)),
					elapsed.Round(time.Microsecond).String(),
					fmt.Sprintf("%.1f", unit),
					verdict(ok),
				})
			}
			return rows, nil
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"ns/(k·|EC|) staying near-constant across two orders of magnitude demonstrates the O(k·n) bound",
		"timings exclude Algorithm A (step 1), matching the theorem's accounting",
	)
	return r.finish(t), nil
}

// E8Substrates benchmarks the substrate algorithms and re-validates
// Gallai's identity at scale: Hopcroft–Karp on bipartite workloads, blossom
// on general graphs, and minimum edge covers sized exactly n − μ. One
// runner cell per size; this table deliberately bypasses the structure
// cache — it is measuring the algorithms, not their memoization.
func E8Substrates(cfg Config) (Table, error) {
	t := Table{
		ID:    "E8",
		Title: "Substrate algorithms: matchings and covers at scale",
		Claim: "Cor 3.2 machinery: maximum matching and minimum edge cover in polynomial time",
		Headers: []string{
			"workload", "n", "m", "algorithm", "result", "time", "check",
		},
		Volatile: []int{5},
	}
	sizes := []int{200, 800}
	if cfg.Quick {
		sizes = []int{100}
	}
	r := newRunner(cfg)
	cells := make([]Cell, len(sizes))
	for i, n := range sizes {
		n := n
		cells[i] = func() ([][]string, error) {
			var rows [][]string
			// Bipartite: Hopcroft–Karp.
			bg := graph.RandomBipartite(n/2, n/2, 8.0/float64(n), cfg.Seed)
			start := time.Now()
			mate, err := matching.MaximumBipartite(bg)
			hkTime := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("experiments: E8 HK n=%d: %w", n, err)
			}
			hkOK := matching.Verify(bg, mate) == nil
			rows = append(rows, []string{
				"random bipartite", fmt.Sprint(bg.NumVertices()), fmt.Sprint(bg.NumEdges()),
				"hopcroft-karp", fmt.Sprintf("mu=%d", matching.Size(mate)),
				hkTime.Round(time.Microsecond).String(), verdict(hkOK),
			})

			// General: blossom + edge cover (Gallai check).
			gg := graph.RandomConnected(n, 6.0/float64(n), cfg.Seed+2)
			start = time.Now()
			gmate := matching.Maximum(gg)
			blTime := time.Since(start)
			mu := matching.Size(gmate)
			start = time.Now()
			ec, err := cover.MinimumEdgeCover(gg)
			ecTime := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("experiments: E8 EC n=%d: %w", n, err)
			}
			gallai := len(ec) == gg.NumVertices()-mu && cover.IsEdgeCover(gg, ec)
			rows = append(rows, []string{
				"random connected", fmt.Sprint(gg.NumVertices()), fmt.Sprint(gg.NumEdges()),
				"blossom", fmt.Sprintf("mu=%d", mu),
				blTime.Round(time.Microsecond).String(), verdict(matching.Verify(gg, gmate) == nil),
			})
			rows = append(rows, []string{
				"random connected", fmt.Sprint(gg.NumVertices()), fmt.Sprint(gg.NumEdges()),
				"min-edge-cover", fmt.Sprintf("rho=%d=n-mu", len(ec)),
				ecTime.Round(time.Microsecond).String(), verdict(gallai),
			})
			return rows, nil
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"Gallai's identity rho = n - mu is asserted on every general-graph row",
	)
	return r.finish(t), nil
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
