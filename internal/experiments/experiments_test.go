package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// TestAllExperimentsSelfCheck runs every experiment in quick mode and
// asserts that every row's built-in verdict is "ok" — this is the
// regression gate for the whole reproduction.
func TestAllExperimentsSelfCheck(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table, err := r.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s failed: %v", r.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			for _, row := range table.Failures() {
				t.Errorf("%s self-check failed: %v", r.ID, row)
			}
		})
	}
}

func TestAllRunnersHaveDistinctIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range All() {
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Name == "" || r.Run == nil {
			t.Errorf("%s: incomplete runner", r.ID)
		}
	}
}

func TestTableRender(t *testing.T) {
	table := Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "rendering works",
		Headers: []string{"a", "long-header"},
		Notes:   []string{"a note"},
	}
	table.AddRow("1", "2")
	table.AddRow("333", "4")
	out := table.Render()
	for _, want := range []string{"EX — demo", "claim: rendering works", "long-header", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Alignment: header separator row present.
	if !strings.Contains(out, "---") {
		t.Error("missing separator")
	}
}

func TestFailuresDetection(t *testing.T) {
	table := Table{Headers: []string{"x", "check"}}
	table.AddRow("1", "ok")
	table.AddRow("2", "FAIL")
	if got := len(table.Failures()); got != 1 {
		t.Errorf("Failures = %d, want 1", got)
	}
}

func TestVerdict(t *testing.T) {
	if verdict(true) != "ok" || verdict(false) != "FAIL" {
		t.Error("verdict rendering wrong")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Quick {
		t.Error("default config must run the full sweeps")
	}
}
