package experiments

import (
	"fmt"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
)

// E1PureExistence regenerates Theorem 3.1 and Corollary 3.3 as a frontier
// table: for each graph family and each k, pure equilibria exist exactly
// when k reaches the edge-cover number ρ(G), and never while n >= 2k+1.
// Each (family, k) probe is one runner cell; ρ(G) comes from the shared
// structure cache so the frontier sweep computes each blossom matching once.
func E1PureExistence(cfg Config) (Table, error) {
	t := Table{
		ID:    "E1",
		Title: "Pure Nash equilibrium existence frontier",
		Claim: "Thm 3.1: pure NE exists iff G has an edge cover of size k; Cor 3.3: none while n >= 2k+1",
		Headers: []string{
			"graph", "n", "m", "rho(G)", "k", "n>=2k+1", "HasPureNE", "theory", "check",
		},
	}
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path8", graph.Path(8)},
		{"cycle9", graph.Cycle(9)},
		{"cycle10", graph.Cycle(10)},
		{"star8", graph.Star(8)},
		{"complete6", graph.Complete(6)},
		{"grid3x4", graph.Grid(3, 4)},
		{"petersen", graph.Petersen()},
		{"randconn16", graph.RandomConnected(16, 0.2, cfg.Seed)},
	}
	if !cfg.Quick {
		families = append(families,
			struct {
				name string
				g    *graph.Graph
			}{"grid5x6", graph.Grid(5, 6)},
			struct {
				name string
				g    *graph.Graph
			}{"hypercube4", graph.Hypercube(4)},
			struct {
				name string
				g    *graph.Graph
			}{"randconn32", graph.RandomConnected(32, 0.15, cfg.Seed+1)},
		)
	}

	r := newRunner(cfg)
	var cells []Cell
	for _, fam := range families {
		rho, err := stcache.EdgeCoverNumber(fam.g)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E1 %s: %w", fam.name, err)
		}
		// Probe around the frontier: below, at, and above rho.
		for _, k := range []int{rho - 2, rho - 1, rho, rho + 1, fam.g.NumEdges()} {
			if k < 1 || k > fam.g.NumEdges() {
				continue
			}
			fam, k := fam, k
			cells = append(cells, func() ([][]string, error) {
				has, err := core.HasPureNE(fam.g, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: E1 %s k=%d: %w", fam.name, k, err)
				}
				theory := rho <= k
				cor33 := fam.g.NumVertices() >= 2*k+1
				// Consistency: theorem matches, and Cor 3.3 never contradicts.
				ok := has == theory && (!cor33 || !has)
				return [][]string{{
					fam.name,
					fmt.Sprint(fam.g.NumVertices()),
					fmt.Sprint(fam.g.NumEdges()),
					fmt.Sprint(rho),
					fmt.Sprint(k),
					fmt.Sprint(cor33),
					fmt.Sprint(has),
					fmt.Sprint(theory),
					verdict(ok),
				}}, nil
			})
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"rho(G) = n - mu(G) by Gallai's identity, computed with blossom matching",
		"'theory' column is the Thm 3.1 prediction rho <= k; 'check' also asserts Cor 3.3 consistency",
	)
	return r.finish(t), nil
}

// E6Characterization regenerates Corollary 4.11: the fraction of graphs
// admitting k-matching equilibria, decided exactly by maximal-independent-
// set enumeration on small instances, with the heuristic search compared
// against the exact decision. Each ensemble is one runner cell (its sampled
// graphs share nothing across ensembles).
func E6Characterization(cfg Config) (Table, error) {
	t := Table{
		ID:    "E6",
		Title: "Graphs admitting k-matching equilibria (Cor 4.11 characterization)",
		Claim: "Π_k(G) has a k-matching NE iff V partitions into independent IS + VC with G a VC-expander",
		Headers: []string{
			"ensemble", "graphs", "admit(exact)", "heuristic-found", "heuristic-missed", "false-positive", "check",
		},
	}
	samples := 40
	if cfg.Quick {
		samples = 10
	}

	type ensemble struct {
		name string
		gen  func(i int) *graph.Graph
	}
	ensembles := []ensemble{
		{"gnp n=10 p=0.2", func(i int) *graph.Graph { return graph.RandomConnected(10, 0.2, cfg.Seed+int64(i)) }},
		{"gnp n=12 p=0.35", func(i int) *graph.Graph { return graph.RandomConnected(12, 0.35, cfg.Seed+1000+int64(i)) }},
		{"bipartite 6+6", func(i int) *graph.Graph { return graph.RandomBipartite(6, 6, 0.3, cfg.Seed+2000+int64(i)) }},
		{"odd cycles", func(i int) *graph.Graph { return graph.Cycle(2*(i%5) + 5) }},
		{"even cycles", func(i int) *graph.Graph { return graph.Cycle(2*(i%5) + 6) }},
		{"scale-free BA(14,2)", func(i int) *graph.Graph { return graph.BarabasiAlbert(14, 2, cfg.Seed+3000+int64(i)) }},
		{"small-world WS(14,4,.2)", func(i int) *graph.Graph { return graph.WattsStrogatz(14, 4, 0.2, cfg.Seed+4000+int64(i)) }},
	}

	r := newRunner(cfg)
	cells := make([]Cell, len(ensembles))
	for i, ens := range ensembles {
		ens := ens
		cells[i] = func() ([][]string, error) {
			var admit, found, missed, falsePos int
			for i := 0; i < samples; i++ {
				g := ens.gen(i)
				_, exactErr := cover.FindNEPartitionExact(g, 0)
				exists := exactErr == nil
				if exists {
					admit++
				}
				_, greedyErr := cover.FindNEPartitionGreedy(g, 16, cfg.Seed)
				switch {
				case greedyErr == nil && exists:
					found++
				case greedyErr == nil && !exists:
					falsePos++ // impossible if the verifier is sound
				case greedyErr != nil && exists:
					missed++
				}
			}
			// Self-check: no false positives; bipartite ensembles always admit.
			ok := falsePos == 0
			if ens.name == "bipartite 6+6" || ens.name == "even cycles" {
				ok = ok && admit == samples
			}
			if ens.name == "odd cycles" {
				ok = ok && admit == 0
			}
			return [][]string{{
				ens.name,
				fmt.Sprint(samples),
				fmt.Sprint(admit),
				fmt.Sprint(found),
				fmt.Sprint(missed),
				fmt.Sprint(falsePos),
				verdict(ok),
			}}, nil
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"exact decision enumerates maximal independent sets (Bron–Kerbosch) and tests the Hall/SDR condition",
		"bipartite graphs always admit (Thm 5.1); odd cycles and cliques never do",
	)
	return r.finish(t), nil
}
