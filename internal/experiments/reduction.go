package experiments

import (
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// E3ReductionRoundTrip regenerates Theorem 4.5: the polynomial-time
// reduction from matching equilibria of Π_1(G) to k-matching equilibria of
// Π_k(G) and back. Each row lifts an Edge-model equilibrium to every probed
// k, verifies the lifted profile exactly, reduces it back, verifies again,
// and checks that supports and gains round-trip.
func E3ReductionRoundTrip(cfg Config) (Table, error) {
	t := Table{
		ID:    "E3",
		Title: "Matching ⇄ k-matching reduction round trip",
		Claim: "Thm 4.5: matching NE of Π_1 ↦ k-matching NE of Π_k and back, gains scale by k",
		Headers: []string{
			"graph", "|IS|", "|EC|", "k", "δ=|D(tp)|", "liftNE", "reduceNE", "supports", "gain×k", "check",
		},
	}
	const nu = 7
	for _, w := range bipartiteWorkloads(cfg) {
		edgeNE, err := core.SolveEdgeModel(w.g, nu)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E3 %s: %w", w.name, err)
		}
		maxK := len(edgeNE.EdgeSupport)
		for _, k := range []int{2, 3, maxK} {
			if k < 1 || k > maxK {
				continue
			}
			lifted, err := core.LiftToTupleModel(edgeNE, k)
			if err != nil {
				return Table{}, fmt.Errorf("experiments: E3 %s k=%d lift: %w", w.name, k, err)
			}
			liftOK := core.VerifyNE(lifted.Game, lifted.Profile) == nil
			back, err := core.ReduceToEdgeModel(lifted)
			if err != nil {
				return Table{}, fmt.Errorf("experiments: E3 %s k=%d reduce: %w", w.name, k, err)
			}
			reduceOK := core.VerifyNE(back.Game, back.Profile) == nil
			supportsOK := graph.SetsEqual(back.VPSupport, edgeNE.VPSupport) &&
				len(back.EdgeSupport) == len(edgeNE.EdgeSupport)
			wantGain := new(big.Rat).Mul(edgeNE.DefenderGain(), big.NewRat(int64(k), 1))
			gainOK := lifted.DefenderGain().Cmp(wantGain) == 0 &&
				back.DefenderGain().Cmp(edgeNE.DefenderGain()) == 0
			ok := liftOK && reduceOK && supportsOK && gainOK
			t.AddRow(
				w.name,
				fmt.Sprint(len(edgeNE.VPSupport)),
				fmt.Sprint(len(edgeNE.EdgeSupport)),
				fmt.Sprint(k),
				fmt.Sprint(len(lifted.Tuples)),
				fmt.Sprint(liftOK),
				fmt.Sprint(reduceOK),
				fmt.Sprint(supportsOK),
				fmt.Sprint(gainOK),
				verdict(ok),
			)
		}
	}
	t.Notes = append(t.Notes,
		"δ = |EC| / gcd(|EC|, k) cyclic windows (Lemma 4.8, Claim 4.9)",
		"this table also answers the conjecture of [7]: matching equilibria transfer across models",
	)
	return t, nil
}
