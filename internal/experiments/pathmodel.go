package experiments

import (
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// E15PathModel evaluates the Path-model extension ([8]): the rotation
// mixed equilibrium on cycles (gain (k+1)·ν/n, verified by the
// path-restricted checker) and the cost of contiguity — a defender forced
// to clean a connected path earns strictly less than one free to pick any
// k links, for every k >= 2.
func E15PathModel(cfg Config) (Table, error) {
	t := Table{
		ID:    "E15",
		Title: "Path model: rotation equilibria and the cost of contiguity",
		Claim: "cycle rotation NE has gain (k+1)ν/n (verified); (k+1)ν/n < 2kν/n for k >= 2",
		Headers: []string{
			"cycle", "k", "path-gain", "(k+1)ν/n", "tuple-gain", "contiguity-cost", "check",
		},
	}
	const nu = 12
	sizes := []int{6, 8, 10}
	if cfg.Quick {
		sizes = []int{6, 8}
	}
	for _, n := range sizes {
		g := graph.Cycle(n)
		for k := 1; k <= 3 && k <= n/2; k++ {
			pathNE, err := core.CyclePathNE(g, nu, k)
			if err != nil {
				return Table{}, fmt.Errorf("experiments: E15 C%d k=%d: %w", n, k, err)
			}
			verOK := core.VerifyPathNE(pathNE.Game, pathNE.Profile) == nil
			want := big.NewRat(int64(k+1)*nu, int64(n))
			tupleNE, err := core.PerfectMatchingNE(g, nu, k)
			if err != nil {
				return Table{}, fmt.Errorf("experiments: E15 C%d k=%d tuple: %w", n, k, err)
			}
			cost := new(big.Rat).Sub(tupleNE.DefenderGain(), pathNE.DefenderGain())
			ok := verOK && pathNE.DefenderGain().Cmp(want) == 0 &&
				((k == 1 && cost.Sign() == 0) || (k >= 2 && cost.Sign() > 0))
			t.AddRow(
				fmt.Sprintf("C%d", n), fmt.Sprint(k),
				pathNE.DefenderGain().RatString(), want.RatString(),
				tupleNE.DefenderGain().RatString(), cost.RatString(),
				verdict(ok),
			)
		}
	}
	t.Notes = append(t.Notes,
		"path-gain verified by the path-restricted best-response checker (deviations over simple paths only)",
		"contiguity-cost = tuple-gain − path-gain: zero at k=1, strictly positive for k >= 2",
	)
	return t, nil
}
