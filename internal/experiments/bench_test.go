package experiments

import (
	"testing"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// The perf-trajectory benchmarks behind `make bench`: the LP value oracle,
// the pure-strategy tuple enumeration it feeds on, the memoized lookups,
// and one full Quick table on the cell runner at 1 and GOMAXPROCS workers.
// `make bench` runs these and then has cmd/experiments write the
// BENCH_experiments.json baseline.

func BenchmarkGameValue(b *testing.B) {
	g := graph.Cycle(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.GameValue(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleEnumeration(b *testing.B) {
	g := graph.Cycle(18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := core.EnumerateTuples(g, 3); len(got) != 816 {
			b.Fatalf("enumerated %d tuples, want C(18,3)=816", len(got))
		}
	}
}

// BenchmarkCachedGameValue measures the memoized hot path: every iteration
// after the first is a pure cache hit plus a defensive copy.
func BenchmarkCachedGameValue(b *testing.B) {
	g := graph.Cycle(10)
	c := newStructCache()
	if _, err := c.GameValue(g, 2); err != nil { // prewarm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GameValue(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQuickTable runs one full Quick-mode table per iteration.
func benchQuickTable(b *testing.B, id string, workers int) {
	b.Helper()
	var exp Experiment
	for _, e := range All() {
		if e.ID == id {
			exp = e
		}
	}
	if exp.Run == nil {
		b.Fatalf("no experiment %s", id)
	}
	cfg := Config{Quick: true, Seed: 1, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Failures()) > 0 {
			b.Fatalf("%s self-check failed", id)
		}
	}
}

func BenchmarkQuickTableE10Sequential(b *testing.B) { benchQuickTable(b, "E10", 1) }
func BenchmarkQuickTableE10Parallel(b *testing.B)   { benchQuickTable(b, "E10", 0) }
func BenchmarkQuickTableE12Sequential(b *testing.B) { benchQuickTable(b, "E12", 1) }
func BenchmarkQuickTableE12Parallel(b *testing.B)   { benchQuickTable(b, "E12", 0) }
