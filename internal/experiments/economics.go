package experiments

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// E12ProtectionEconomics turns the linear-in-k law into the sizing
// question a practitioner asks: how many scanned links buy a target
// protection level, and is the equilibrium defense maxmin-optimal? For
// each workload the table reports the protection ratio k/|IS| at probe
// budgets, the minimum k reaching 50% protection (= ⌈|IS|/2⌉ by
// linearity), and — where the LP oracle is affordable — that the
// equilibrium gain equals the defender's best possible guarantee ν·value.
func E12ProtectionEconomics(cfg Config) (Table, error) {
	t := Table{
		ID:    "E12",
		Title: "Protection economics: budget k versus guaranteed protection",
		Claim: "protection ratio = k/|IS| exactly (linearity); equilibrium gain = maxmin guarantee ν·value",
		Headers: []string{
			"graph", "|IS|", "k", "protection", "k50", "maxmin=gain", "check",
		},
	}
	const nu = 10
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"K{3,4}", graph.CompleteBipartite(3, 4)},
		{"cycle12", graph.Cycle(12)},
		{"grid3x4", graph.Grid(3, 4)},
		{"ladder6", graph.Ladder(6)},
		{"caterpillar4x2", graph.Caterpillar(4, 2)},
		{"binarytree4", graph.CompleteBinaryTree(4)},
	}
	if !cfg.Quick {
		workloads = append(workloads, []struct {
			name string
			g    *graph.Graph
		}{
			{"grid4x5", graph.Grid(4, 5)},
			{"bip8+10", graph.RandomBipartite(8, 10, 0.3, cfg.Seed)},
		}...)
	}

	// The maxmin-oracle probes dominate the whole suite's runtime (exact
	// simplex over up to C(m,k) tuple columns), so this table decomposes
	// into one runner cell per (graph, k): the cheap k=1 base solve in the
	// declaration phase fixes each workload's probe budget, then the
	// expensive LP cells run on the worker pool.
	r := newRunner(cfg)
	var cells []Cell
	for _, w := range workloads {
		base, err := core.SolveTupleModel(w.g, nu, 1)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E12 %s: %w", w.name, err)
		}
		isSize := len(base.VPSupport)
		k50 := (isSize + 1) / 2 // smallest k with k/|IS| >= 1/2

		for _, k := range []int{1, k50, isSize} {
			if k < 1 || k > isSize {
				continue
			}
			w, k := w, k
			cells = append(cells, func() ([][]string, error) {
				half := big.NewRat(1, 2)
				ne, err := core.SolveTupleModel(w.g, nu, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: E12 %s k=%d: %w", w.name, k, err)
				}
				protection := ne.ProtectionRatio()
				wantProtection := big.NewRat(int64(k), int64(isSize))
				ok := protection.Cmp(wantProtection) == 0
				// k50 really is the 50% frontier.
				if k == k50 {
					ok = ok && protection.Cmp(half) >= 0
					if k50 > 1 {
						prev := big.NewRat(int64(k50-1), int64(isSize))
						ok = ok && prev.Cmp(half) < 0
					}
				}
				// Maxmin optimality via the LP oracle where affordable. Quick
				// mode keeps the oracle to small tuple spaces so the whole
				// suite stays fast.
				maxminCell := "skipped"
				oracleBudget := 20_000
				if cfg.Quick {
					oracleBudget = 1_000
				}
				if tupleSpaceWithin(w.g.NumEdges(), k, oracleBudget) {
					guarantee, err := core.MaxminGuarantee(w.g, nu, k)
					switch {
					case err == nil:
						agree := ne.DefenderGain().Cmp(guarantee) == 0
						maxminCell = fmt.Sprint(agree)
						ok = ok && agree
					case errors.Is(err, core.ErrValueTooLarge):
						// Tuple space too large: structural guarantees only.
					default:
						return nil, fmt.Errorf("experiments: E12 %s k=%d: %w", w.name, k, err)
					}
				}
				return [][]string{{
					w.name,
					fmt.Sprint(isSize),
					fmt.Sprint(k),
					protection.RatString(),
					fmt.Sprint(k50),
					maxminCell,
					verdict(ok),
				}}, nil
			})
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"k50 = ⌈|IS|/2⌉ is the exact 50%-protection budget — a direct corollary of the linearity theorem",
		"maxmin=gain certifies (via the LP oracle) that the equilibrium defense is the best guaranteed defense",
	)
	return r.finish(t), nil
}

// tupleSpaceWithin reports whether C(m, k) <= limit without overflow.
func tupleSpaceWithin(m, k, limit int) bool {
	if k < 0 || k > m {
		return false
	}
	if k > m-k {
		k = m - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (m - k + i) / i
		if c > limit {
			return false
		}
	}
	return true
}
