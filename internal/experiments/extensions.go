package experiments

import (
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// E9Extensions exercises the structural equilibria lifted from the
// companion work [8]: perfect-matching equilibria of Π_k (gain 2kν/n,
// linear in k), regular-graph Edge-model equilibria (gain 2ν/n), and the
// Path-model pure-equilibrium frontier (Hamiltonian path at k = n−1).
func E9Extensions(cfg Config) (Table, error) {
	t := Table{
		ID:    "E9",
		Title: "Structural extensions: perfect-matching, regular and path equilibria",
		Claim: "[8]-style equilibria lifted to Π_k where sound; gains stay linear in k",
		Headers: []string{
			"family", "instance", "k", "gain", "expected", "verifiedNE", "check",
		},
	}
	const nu = 6

	// Perfect-matching equilibria across k.
	pmInstances := []struct {
		name string
		g    *graph.Graph
	}{
		{"C8", graph.Cycle(8)},
		{"K6", graph.Complete(6)},
		{"petersen", graph.Petersen()},
		{"hypercube3", graph.Hypercube(3)},
	}
	if !cfg.Quick {
		pmInstances = append(pmInstances, struct {
			name string
			g    *graph.Graph
		}{"grid4x4", graph.Grid(4, 4)})
	}
	for _, inst := range pmInstances {
		n := inst.g.NumVertices()
		for _, k := range []int{1, 2, n / 2} {
			if k < 1 || k > n/2 {
				continue
			}
			ne, err := core.PerfectMatchingNE(inst.g, nu, k)
			if err != nil {
				return Table{}, fmt.Errorf("experiments: E9 %s k=%d: %w", inst.name, k, err)
			}
			verErr := core.VerifyNE(ne.Game, ne.Profile)
			want := big.NewRat(2*int64(k)*nu, int64(n))
			ok := verErr == nil && ne.DefenderGain().Cmp(want) == 0
			t.AddRow(
				"perfect-matching", inst.name, fmt.Sprint(k),
				ne.DefenderGain().RatString(), want.RatString(),
				fmt.Sprint(verErr == nil), verdict(ok),
			)
		}
	}

	// Regular-graph Edge-model equilibria.
	for _, inst := range []struct {
		name string
		g    *graph.Graph
	}{
		{"C7", graph.Cycle(7)},
		{"K5", graph.Complete(5)},
		{"petersen", graph.Petersen()},
	} {
		ne, err := core.RegularGraphEdgeNE(inst.g, nu)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E9 regular %s: %w", inst.name, err)
		}
		verErr := core.VerifyNE(ne.Game, ne.Profile)
		want := big.NewRat(2*nu, int64(inst.g.NumVertices()))
		ok := verErr == nil && ne.DefenderGain().Cmp(want) == 0
		t.AddRow(
			"regular-edge", inst.name, "1",
			ne.DefenderGain().RatString(), want.RatString(),
			fmt.Sprint(verErr == nil), verdict(ok),
		)
	}

	// Path-model pure equilibria: frontier at k = n−1 with a Hamiltonian
	// path; stars never admit one.
	for _, inst := range []struct {
		name     string
		g        *graph.Graph
		hamilton bool
	}{
		{"C6", graph.Cycle(6), true},
		{"grid2x4", graph.Grid(2, 4), true},
		{"star6", graph.Star(6), false},
		{"petersen", graph.Petersen(), true},
	} {
		n := inst.g.NumVertices()
		exists, path, err := core.HasPurePathNE(inst.g, n-1)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E9 path %s: %w", inst.name, err)
		}
		// Below the frontier there is never a pure path NE.
		below, _, err := core.HasPurePathNE(inst.g, n-2)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E9 path %s: %w", inst.name, err)
		}
		ok := exists == inst.hamilton && !below && (!exists || len(path) == n)
		t.AddRow(
			"path-model", inst.name, fmt.Sprint(n-1),
			fmt.Sprintf("pureNE=%v", exists), fmt.Sprintf("hamiltonian=%v", inst.hamilton),
			"-", verdict(ok),
		)
	}

	t.Notes = append(t.Notes,
		"perfect-matching gain 2kν/n exceeds the k-matching gain kν/|IS| exactly when |IS| > n/2",
		"path-model pure NE requires the defender's single path to cover all of V: k = n−1 and a Hamiltonian path",
	)
	return t, nil
}
