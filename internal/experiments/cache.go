package experiments

import (
	"fmt"
	"math/big"
	"sync"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
	"github.com/defender-game/defender/internal/obs"
)

// cacheMetrics is one key kind's worth of cache observability: lookup
// outcomes as counters plus the current entry count as a gauge, named
// "experiments.cache.<kind>.{hits,misses,stores}" and
// "experiments.cache.<kind>.entries" (catalogued in OBSERVABILITY.md).
// Under concurrent misses of the same key, stores may exceed distinct
// keys: two workers can both miss and both store — last write wins, which
// is sound because entries are pure functions of the key.
type cacheMetrics struct {
	hits    *obs.Counter
	misses  *obs.Counter
	stores  *obs.Counter
	entries *obs.Gauge
}

func newCacheMetrics(kind string) cacheMetrics {
	prefix := "experiments.cache." + kind + "."
	return cacheMetrics{
		hits:    obs.Default().Counter(prefix + "hits"),    // lint:invariant(metricname): per-kind family, catalogued as experiments.cache.<kind>.hits
		misses:  obs.Default().Counter(prefix + "misses"),  // lint:invariant(metricname): per-kind family, catalogued as experiments.cache.<kind>.misses
		stores:  obs.Default().Counter(prefix + "stores"),  // lint:invariant(metricname): per-kind family, catalogued as experiments.cache.<kind>.stores
		entries: obs.Default().Gauge(prefix + "entries"),   // lint:invariant(metricname): per-kind family, catalogued as experiments.cache.<kind>.entries
	}
}

// lookup records a lookup outcome.
func (m cacheMetrics) lookup(hit bool) {
	if hit {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
}

// stored records a store and the resulting entry count.
func (m cacheMetrics) stored(entries int) {
	m.stores.Inc()
	m.entries.Set(float64(entries))
}

// Per-kind metrics of the process-wide structure cache.
var (
	matchingCacheMetrics = newCacheMetrics("matching")
	coverCacheMetrics    = newCacheMetrics("cover")
	tuplesCacheMetrics   = newCacheMetrics("tuples")
	valueCacheMetrics    = newCacheMetrics("value")
)

// structCache memoizes the pure-structure computations that many (graph, k)
// cells share — maximum matchings, minimum edge covers, tuple enumerations,
// and LP game values — so repeated probes of the same graph stop re-running
// blossom / Hopcroft–Karp / simplex from scratch. It is safe for concurrent
// use by the runner's worker pool.
//
// Graphs are keyed structurally (graph6), so two independently constructed
// but identical graphs share entries across tables. Every lookup hands out
// defensive copies of mutable values (mate arrays, edge slices, *big.Rat),
// per the ratalias discipline: a caller mutating its copy cannot corrupt
// the cache or another cell.
type structCache struct {
	mu     sync.Mutex
	mates  map[string][]int
	covers map[string][]graph.Edge
	tuples map[string][]game.Tuple
	values map[string]*big.Rat
}

func newStructCache() *structCache {
	return &structCache{
		mates:  make(map[string][]int),
		covers: make(map[string][]graph.Edge),
		tuples: make(map[string][]game.Tuple),
		values: make(map[string]*big.Rat),
	}
}

// stcache is the process-wide cache shared by all table builders. Entries
// are pure functions of graph structure, so sharing across configurations
// and tables is sound.
var stcache = newStructCache()

// key returns the structural cache key of g. Encoding is O(n²); the graphs
// the experiments cache are all small, but degrade gracefully to a
// per-instance key if graph6 ever rejects one.
func (c *structCache) key(g *graph.Graph) string {
	s, err := graph.FormatGraph6(g)
	if err != nil {
		return fmt.Sprintf("ptr:%p", g)
	}
	return s
}

// MaximumMatching returns a maximum matching of g as a fresh mate array.
func (c *structCache) MaximumMatching(g *graph.Graph) []int {
	key := c.key(g)
	c.mu.Lock()
	mate, ok := c.mates[key]
	c.mu.Unlock()
	matchingCacheMetrics.lookup(ok)
	if !ok {
		mate = matching.Maximum(g)
		c.mu.Lock()
		c.mates[key] = mate
		n := len(c.mates)
		c.mu.Unlock()
		matchingCacheMetrics.stored(n)
	}
	return matching.CloneMate(mate)
}

// MinimumEdgeCover returns a minimum edge cover of g as a fresh edge slice,
// derived from the cached maximum matching via Gallai's identity.
func (c *structCache) MinimumEdgeCover(g *graph.Graph) ([]graph.Edge, error) {
	if g.HasIsolatedVertex() {
		return nil, cover.ErrIsolatedVertex
	}
	key := c.key(g)
	c.mu.Lock()
	ec, ok := c.covers[key]
	c.mu.Unlock()
	coverCacheMetrics.lookup(ok)
	if !ok {
		mate := c.MaximumMatching(g)
		var err error
		ec, err = cover.MinimumEdgeCoverFromMatching(g, mate)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.covers[key] = ec
		n := len(c.covers)
		c.mu.Unlock()
		coverCacheMetrics.stored(n)
	}
	out := make([]graph.Edge, len(ec))
	copy(out, ec)
	return out, nil
}

// EdgeCoverNumber returns rho(G) from the cached minimum edge cover.
func (c *structCache) EdgeCoverNumber(g *graph.Graph) (int, error) {
	ec, err := c.MinimumEdgeCover(g)
	if err != nil {
		return 0, err
	}
	return len(ec), nil
}

// Tuples returns the enumeration of all k-subsets of g's edges. The
// returned slice is a fresh header+elements copy; Tuple values themselves
// are immutable and safely shared.
func (c *structCache) Tuples(g *graph.Graph, k int) []game.Tuple {
	key := fmt.Sprintf("%s|k=%d", c.key(g), k)
	c.mu.Lock()
	ts, ok := c.tuples[key]
	c.mu.Unlock()
	tuplesCacheMetrics.lookup(ok)
	if !ok {
		ts = core.EnumerateTuples(g, k)
		c.mu.Lock()
		c.tuples[key] = ts
		n := len(c.tuples)
		c.mu.Unlock()
		tuplesCacheMetrics.stored(n)
	}
	out := make([]game.Tuple, len(ts))
	copy(out, ts)
	return out
}

// GameValue returns the exact minimax value of Π_k(G) with one attacker,
// as a fresh *big.Rat.
func (c *structCache) GameValue(g *graph.Graph, k int) (*big.Rat, error) {
	key := fmt.Sprintf("%s|k=%d", c.key(g), k)
	c.mu.Lock()
	v, ok := c.values[key]
	c.mu.Unlock()
	valueCacheMetrics.lookup(ok)
	if !ok {
		value, _, _, err := core.GameValue(g, k)
		if err != nil {
			return nil, err
		}
		// Store a private copy: GameValue's result may alias LP-internal
		// state that a later caller could mutate.
		v = new(big.Rat).Set(value)
		c.mu.Lock()
		c.values[key] = v
		n := len(c.values)
		c.mu.Unlock()
		valueCacheMetrics.stored(n)
	}
	return new(big.Rat).Set(v), nil
}

// Size reports the number of cached entries per kind (matchings, covers,
// tuple enumerations, values) — observability for tests and benchmarks.
func (c *structCache) Size() (mates, covers, tuples, values int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mates), len(c.covers), len(c.tuples), len(c.values)
}
