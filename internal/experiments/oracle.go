package experiments

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/dynamics"
	"github.com/defender-game/defender/internal/graph"
)

// E10ValueOracle cross-checks the structured equilibria against the
// structure-free LP minimax oracle: for ν = 1 the game is constant-sum, so
// every equilibrium shares one value. The oracle enumerates all C(m,k)
// tuples and solves the matrix game by exact simplex — if any construction
// were wrong, its predicted value would disagree here. Each (graph, k)
// probe is one runner cell; the LP values come from the shared structure
// cache, so probes repeated by other tables (E12, E14, E16 zoos) are free.
func E10ValueOracle(cfg Config) (Table, error) {
	t := Table{
		ID:    "E10",
		Title: "LP minimax oracle versus structured equilibrium predictions (ν=1)",
		Claim: "constant-sum: all NE share the minimax value; k-matching predicts k/|EC|, perfect-matching 2k/n, regular d/m",
		Headers: []string{
			"graph", "k", "LP-value", "prediction", "source", "check",
		},
	}

	type probe struct {
		name string
		g    *graph.Graph
		ks   []int
	}
	probes := []probe{
		{"path5", graph.Path(5), []int{1, 2}},
		{"C6", graph.Cycle(6), []int{1, 2, 3}},
		{"C8", graph.Cycle(8), []int{1, 2}},
		{"star6", graph.Star(6), []int{1, 2}},
		{"K33", graph.CompleteBipartite(3, 3), []int{1, 2}},
		{"grid23", graph.Grid(2, 3), []int{1, 2}},
		{"C5", graph.Cycle(5), []int{1, 2}},
		{"C7", graph.Cycle(7), []int{1}},
		{"K4", graph.Complete(4), []int{1, 2}},
		{"K5", graph.Complete(5), []int{1}},
		{"petersen", graph.Petersen(), []int{1}},
	}
	if cfg.Quick {
		probes = probes[:6]
	}

	r := newRunner(cfg)
	var cells []Cell
	for _, p := range probes {
		for _, k := range p.ks {
			p, k := p, k
			cells = append(cells, func() ([][]string, error) {
				value, err := stcache.GameValue(p.g, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: E10 %s k=%d: %w", p.name, k, err)
				}
				prediction, source, err := structuredPrediction(p.g, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: E10 %s k=%d: %w", p.name, k, err)
				}
				ok := prediction == nil || value.Cmp(prediction) == 0
				pred := "none known"
				if prediction != nil {
					pred = prediction.RatString()
				}
				return [][]string{{
					p.name, fmt.Sprint(k), value.RatString(), pred, source, verdict(ok),
				}}, nil
			})
		}
	}
	rows, err := r.Run(cells)
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"the LP oracle enumerates every defender tuple and solves the zero-sum game by exact simplex",
		"'none known' rows (no structural construction applies) still report the true value",
	)
	return r.finish(t), nil
}

// structuredPrediction returns the hit-probability prediction of whichever
// structural equilibrium family applies to (g, k), or nil if none does.
func structuredPrediction(g *graph.Graph, k int) (*big.Rat, string, error) {
	if ne, err := core.SolveTupleModel(g, 1, k); err == nil {
		return ne.HitProbability(), "k-matching", nil
	} else if !errors.Is(err, core.ErrNoMatchingNE) && !errors.Is(err, core.ErrKTooLarge) {
		return nil, "", err
	}
	if ne, err := core.PerfectMatchingNE(g, 1, k); err == nil {
		return ne.HitProbability(), "perfect-matching", nil
	} else if !errors.Is(err, core.ErrNoPerfectMatching) && !errors.Is(err, core.ErrKTooLarge) {
		return nil, "", err
	}
	if k == 1 {
		if regular, d := g.IsRegular(); regular {
			return big.NewRat(int64(d), int64(g.NumEdges())), "regular", nil
		}
	}
	return nil, "-", nil
}

// E11LearningDynamics shows decentralized learning reaching the same value:
// fictitious play (exact rational bounds) and multiplicative weights
// (no-regret averages) bracket the LP value on every instance, without
// either player knowing any equilibrium structure.
func E11LearningDynamics(cfg Config) (Table, error) {
	t := Table{
		ID:    "E11",
		Title: "Learning dynamics converge to the minimax value (Edge model, ν=1)",
		Claim: "fictitious play and multiplicative weights bracket the game value; gap shrinks with rounds",
		Headers: []string{
			"graph", "algorithm", "rounds", "lower", "upper", "LP-value", "gap", "check",
		},
	}
	fpRounds, mwRounds := 8000, 20000
	if cfg.Quick {
		fpRounds, mwRounds = 1500, 4000
	}
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"C5", graph.Cycle(5)},
		{"C6", graph.Cycle(6)},
		{"star5", graph.Star(5)},
		{"K4", graph.Complete(4)},
		{"grid23", graph.Grid(2, 3)},
		{"K24", graph.CompleteBipartite(2, 4)},
	}
	if !cfg.Quick {
		instances = append(instances, struct {
			name string
			g    *graph.Graph
		}{"petersen", graph.Petersen()})
	}

	for _, inst := range instances {
		value, err := stcache.GameValue(inst.g, 1)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E11 %s: %w", inst.name, err)
		}
		valueF, _ := value.Float64()

		fp, err := dynamics.FictitiousPlay(inst.g, fpRounds)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E11 %s fp: %w", inst.name, err)
		}
		gapF, _ := fp.Gap().Float64()
		lo, _ := fp.LowerBound.Float64()
		hi, _ := fp.UpperBound.Float64()
		t.AddRow(
			inst.name, "fictitious-play", fmt.Sprint(fp.Rounds),
			fmt.Sprintf("%.4f", lo), fmt.Sprintf("%.4f", hi),
			value.RatString(), fmt.Sprintf("%.4f", gapF),
			verdict(fp.Brackets(value) && gapF <= 0.2),
		)

		mw, err := dynamics.MultiplicativeWeights(inst.g, mwRounds, 0)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E11 %s mw: %w", inst.name, err)
		}
		okMW := mw.LowerBound <= valueF+1e-9 && mw.UpperBound >= valueF-1e-9 &&
			mw.UpperBound-mw.LowerBound <= 0.15
		t.AddRow(
			inst.name, "mult-weights", fmt.Sprint(mw.Rounds),
			fmt.Sprintf("%.4f", mw.LowerBound), fmt.Sprintf("%.4f", mw.UpperBound),
			value.RatString(), fmt.Sprintf("%.4f", mw.UpperBound-mw.LowerBound),
			verdict(okMW),
		)

		rm, err := dynamics.RegretMatching(inst.g, 4*mwRounds, cfg.Seed)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E11 %s rm: %w", inst.name, err)
		}
		// Randomized play: allow sampling slack around the value.
		const slack = 0.05
		okRM := rm.LowerBound <= valueF+slack && rm.UpperBound >= valueF-slack
		t.AddRow(
			inst.name, "regret-matching", fmt.Sprint(rm.Rounds),
			fmt.Sprintf("%.4f", rm.LowerBound), fmt.Sprintf("%.4f", rm.UpperBound),
			value.RatString(), fmt.Sprintf("%.4f", rm.UpperBound-rm.LowerBound),
			verdict(okRM),
		)
	}
	// Tuple-model fictitious play (k = 2) on a subset of instances: the
	// defender best-responds with an exact integer branch-and-bound.
	tupleRounds := 2500
	if cfg.Quick {
		tupleRounds = 800
	}
	for _, inst := range instances[:3] {
		if inst.g.NumEdges() < 2 {
			continue
		}
		value, err := stcache.GameValue(inst.g, 2)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E11 %s k=2: %w", inst.name, err)
		}
		fp, err := dynamics.FictitiousPlayTuple(inst.g, 2, tupleRounds)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: E11 %s fp-tuple: %w", inst.name, err)
		}
		gapF, _ := fp.Gap().Float64()
		lo, _ := fp.LowerBound.Float64()
		hi, _ := fp.UpperBound.Float64()
		t.AddRow(
			inst.name, "fp-tuple(k=2)", fmt.Sprint(fp.Rounds),
			fmt.Sprintf("%.4f", lo), fmt.Sprintf("%.4f", hi),
			value.RatString(), fmt.Sprintf("%.4f", gapF),
			verdict(fp.Brackets(value) && gapF <= 0.3),
		)
	}

	t.Notes = append(t.Notes,
		"fictitious-play bounds are exact rationals from integer play counts (Robinson 1951 guarantees convergence)",
		"multiplicative-weights bounds come from the time-averaged strategies at the no-regret rate O(sqrt(ln N / T))",
		"regret-matching (Hart & Mas-Colell) uses randomized sampled play; its empirical bounds carry sampling noise",
	)
	return t, nil
}
