package experiments

import (
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// E13RobustDefense demonstrates that the equilibrium defense is robust to
// irrational attackers: because every vertex is hit with probability at
// least k/|EC| (Claims 4.3/4.4), the defender's expected catch against ANY
// attacker behavior is at least the equilibrium gain k·ν/|IS|. The table
// pits the equilibrium tuple distribution against five attacker behaviors
// and computes the exact expected catch for each.
func E13RobustDefense(cfg Config) (Table, error) {
	t := Table{
		ID:    "E13",
		Title: "Robustness: equilibrium defense versus irrational attackers",
		Claim: "min_v P(Hit(v)) = k/|EC| ⇒ expected catch >= k·ν/|IS| against every attacker behavior",
		Headers: []string{
			"graph", "k", "attacker-behavior", "exact-catch", "floor k·ν/|IS|", "check",
		},
	}
	const nu = 6
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"K{3,4}", graph.CompleteBipartite(3, 4)},
		{"grid3x4", graph.Grid(3, 4)},
		{"cycle10", graph.Cycle(10)},
		{"caterpillar3x2", graph.Caterpillar(3, 2)},
	}
	if !cfg.Quick {
		workloads = append(workloads, struct {
			name string
			g    *graph.Graph
		}{"bip6+9", graph.RandomBipartite(6, 9, 0.3, cfg.Seed)})
	}

	for _, w := range workloads {
		for _, k := range []int{1, 2} {
			ne, err := core.SolveTupleModel(w.g, nu, k)
			if err != nil {
				return Table{}, fmt.Errorf("experiments: E13 %s k=%d: %w", w.name, k, err)
			}
			floor := ne.DefenderGain()
			for _, behavior := range attackerBehaviors(w.g, ne.VPSupport) {
				profile := game.NewSymmetricProfile(nu, behavior.strategy, ne.Profile.TP)
				if err := ne.Game.Validate(profile); err != nil {
					return Table{}, fmt.Errorf("experiments: E13 %s/%s: %w", w.name, behavior.name, err)
				}
				catch := ne.Game.ExpectedProfitTP(profile)
				ok := catch.Cmp(floor) >= 0
				if behavior.name == "equilibrium" {
					ok = catch.Cmp(floor) == 0 // the floor is attained exactly
				}
				t.AddRow(
					w.name, fmt.Sprint(k), behavior.name,
					catch.RatString(), floor.RatString(), verdict(ok),
				)
			}
		}
	}
	t.Notes = append(t.Notes,
		"all catches computed exactly from equation (2); 'equilibrium' attains the floor, everything else can only exceed it",
		"this is the defender-side reading of the equilibrium: it doubles as a worst-case guarantee",
	)
	return t, nil
}

// namedBehavior pairs an attacker strategy with a label.
type namedBehavior struct {
	name     string
	strategy game.VertexStrategy
}

// attackerBehaviors builds the zoo of attacker models evaluated by E13.
func attackerBehaviors(g *graph.Graph, equilibriumSupport []int) []namedBehavior {
	n := g.NumVertices()
	allV := make([]int, n)
	for v := range allV {
		allV[v] = v
	}

	// Degree-weighted: P(v) = deg(v)/2m — attackers drawn to hubs.
	degree := make(map[int]*big.Rat, n)
	for v := 0; v < n; v++ {
		degree[v] = big.NewRat(int64(g.Degree(v)), int64(2*g.NumEdges()))
	}

	// Hub-concentrated: every attacker on one maximum-degree vertex.
	hub := 0
	for v := 1; v < n; v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}

	// Cover-seeking: uniform over the complement of the equilibrium
	// support (the vertex cover) — the worst misreading of the theory.
	coverSide := graph.SetComplement(equilibriumSupport, n)
	if len(coverSide) == 0 {
		coverSide = allV
	}

	return []namedBehavior{
		{"equilibrium", game.UniformVertexStrategy(equilibriumSupport)},
		{"uniform-all", game.UniformVertexStrategy(allV)},
		{"degree-weighted", game.NewVertexStrategy(degree)},
		{"hub-concentrated", game.UniformVertexStrategy([]int{hub})},
		{"cover-seeking", game.UniformVertexStrategy(coverSide)},
	}
}
