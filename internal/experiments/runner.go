package experiments

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// Runner metrics (catalogued in OBSERVABILITY.md). Cell outcomes are
// counted process-wide; per-cell latency feeds both the suite-wide
// histogram and — via finish, which knows the table ID — one histogram per
// table, so a slow table is attributable without re-running it.
var (
	obsCellsStarted = obs.Default().Counter("experiments.cells.started")
	obsCellsOK      = obs.Default().Counter("experiments.cells.ok")
	obsCellsFailed  = obs.Default().Counter("experiments.cells.failed")
	obsCellSeconds  = obs.Default().Histogram("experiments.cell_seconds")
)

// A Cell is one independent unit of table work — typically one (graph, k)
// probe — returning the rows it contributes. Cells of one table must not
// share mutable state: the runner executes them concurrently.
type Cell func() ([][]string, error)

// Runner executes a table's cells on a bounded worker pool and reassembles
// their rows in declared order, so the assembled table is byte-identical to
// a sequential run regardless of worker count or scheduling.
type Runner struct {
	workers   int
	failFirst bool // Config.failFirstCell test hook

	mu        sync.Mutex
	durations []time.Duration
	wall      time.Duration
}

// errCellFault is the injected failure of the failFirstCell test hook.
var errCellFault = errors.New("experiments: injected cell fault")

// NewRunner returns a runner with the given worker bound; workers <= 0
// means runtime.GOMAXPROCS(0).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// newRunner builds the runner a table builder uses for one Config.
func newRunner(cfg Config) *Runner {
	r := NewRunner(cfg.Workers)
	r.failFirst = cfg.failFirstCell
	return r
}

// Workers returns the worker bound.
func (r *Runner) Workers() int { return r.workers }

// Run executes every cell on at most Workers() goroutines and returns all
// produced rows concatenated in cell-declaration order. If any cells fail,
// the error of the earliest-declared failing cell is returned (again
// independent of scheduling) and no rows. Per-cell durations accumulate
// into Stats across Run calls.
func (r *Runner) Run(cells []Cell) ([][]string, error) {
	type result struct {
		rows [][]string
		err  error
	}
	results := make([]result, len(cells))
	durations := make([]time.Duration, len(cells))

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := r.workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				obsCellsStarted.Inc()
				cellStart := time.Now()
				if i == 0 && r.failFirst {
					results[i] = result{err: errCellFault}
				} else {
					rows, err := cells[i]()
					results[i] = result{rows: rows, err: err}
				}
				durations[i] = time.Since(cellStart)
				obsCellSeconds.Observe(durations[i].Seconds())
				if results[i].err != nil {
					obsCellsFailed.Inc()
				} else {
					obsCellsOK.Inc()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	r.mu.Lock()
	r.durations = append(r.durations, durations...)
	r.wall += time.Since(start)
	r.mu.Unlock()

	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
	}
	var rows [][]string
	for _, res := range results {
		rows = append(rows, res.rows...)
	}
	return rows, nil
}

// RunStats summarizes the cell executions of a runner (or of one table,
// via Table.Stats).
type RunStats struct {
	// Cells is the number of cells executed.
	Cells int
	// Wall is the wall-clock time spent inside Run (all calls summed).
	Wall time.Duration
	// CellP50 is the median single-cell latency.
	CellP50 time.Duration
	// CellP95 is the 95th-percentile single-cell latency.
	CellP95 time.Duration
	// CellP99 is the 99th-percentile single-cell latency.
	CellP99 time.Duration
	// CellMax is the slowest single cell observed.
	CellMax time.Duration
}

// CellsPerSec is the cell throughput over the runner's wall time.
func (s RunStats) CellsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Cells) / s.Wall.Seconds()
}

// Stats returns the metrics accumulated by every Run call so far.
func (r *Runner) Stats() RunStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RunStats{Cells: len(r.durations), Wall: r.wall}
	if len(r.durations) == 0 {
		return s
	}
	sorted := make([]time.Duration, len(r.durations))
	copy(sorted, r.durations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.CellP50 = percentile(sorted, 50)
	s.CellP95 = percentile(sorted, 95)
	s.CellP99 = percentile(sorted, 99)
	s.CellMax = sorted[len(sorted)-1]
	return s
}

// percentile returns the nearest-rank p-th percentile of ascending sorted
// durations.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// finish stamps the runner's stats onto a completed table and replays the
// per-cell durations into the table's own latency histogram
// ("experiments.table.<ID>.cell_seconds") — the runner itself never learns
// the table ID, but every builder funnels through finish exactly once.
func (r *Runner) finish(t Table) Table {
	t.Stats = r.Stats()
	if t.ID != "" && obs.Default().Enabled() {
		// lint:invariant(metricname): per-table family, catalogued as experiments.table.<id>.cell_seconds
		h := obs.Default().Histogram("experiments.table." + t.ID + ".cell_seconds")
		r.mu.Lock()
		durations := append([]time.Duration(nil), r.durations...)
		r.mu.Unlock()
		for _, d := range durations {
			h.Observe(d.Seconds())
		}
	}
	return t
}
