package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

// timeLift measures one lift invocation.
func timeLift(ne core.EdgeEquilibrium, k int) (time.Duration, core.TupleEquilibrium, error) {
	start := time.Now()
	lifted, err := core.LiftToTupleModel(ne, k)
	return time.Since(start), lifted, err
}

// The paper has no figures; these regenerate its two headline *shapes* as
// plain-text plots: F1, the linear growth of the defender gain in k, and
// F2, the linear growth of Algorithm A_tuple's work in k·n. cmd/experiments
// prints them after the tables with -figures.

// Figure is a rendered plain-text plot plus the self-check flag.
type Figure struct {
	// ID is the figure identifier ("F1", "F2").
	ID string
	// Title is the one-line figure caption.
	Title string
	// Body is the rendered ASCII plot.
	Body string
	// OK reports whether the figure's monotonicity self-check passed.
	OK bool
}

// Series is one labelled polyline of (x, y) points.
type Series struct {
	// Label names the series in the plot legend.
	Label string
	// Points are the (x, y) pairs in drawing order.
	Points [][2]float64
}

// renderASCII draws the series on a width×height character canvas with
// one marker glyph per series and a simple legend. It is intentionally
// minimal: monotone shapes (the only thing the figures assert) survive
// terminal rendering; precise values live in the tables.
func renderASCII(series []Series, width, height int, xLabel, yLabel string) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	// Degenerate (single-valued) ranges get unit width; the negated form
	// avoids float equality and also catches NaN bounds.
	if !(maxX > minX) {
		maxX = minX + 1
	}
	if !(maxY > minY) {
		maxY = minY + 1
	}
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	for si, s := range series {
		glyph := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			c := int(math.Round((p[0] - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((p[1]-minY)/(maxY-minY)*float64(height-1)))
			canvas[r][c] = glyph
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", yLabel)
	for r := 0; r < height; r++ {
		y := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%9.2f |%s\n", y, canvas[r])
	}
	fmt.Fprintf(&sb, "%9s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%9s  %-*.2f%*.2f   (%s)\n", "", width/2, minX, width-width/2, maxX, xLabel)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", glyphs[si%len(glyphs)], s.Label)
	}
	return sb.String()
}

// F1GainLinearity plots defender gain against k for several families — the
// paper's headline as a picture. The self-check asserts every series is
// exactly linear through the origin (gain = k · gain(1)).
func F1GainLinearity(cfg Config) (Figure, error) {
	fams := []struct {
		name string
		g    *graph.Graph
	}{
		{"K{4,6}", graph.CompleteBipartite(4, 6)},
		{"grid3x4", graph.Grid(3, 4)},
		{"cycle16", graph.Cycle(16)},
	}
	const nu = 12
	var series []Series
	linear := true
	for _, f := range fams {
		base, err := core.SolveTupleModel(f.g, nu, 1)
		if err != nil {
			return Figure{}, fmt.Errorf("experiments: F1 %s: %w", f.name, err)
		}
		gain1, _ := base.DefenderGain().Float64()
		maxK := len(base.EdgeSupport)
		if cfg.Quick && maxK > 4 {
			maxK = 4
		}
		s := Series{Label: fmt.Sprintf("%s (|IS|=%d)", f.name, len(base.VPSupport))}
		for k := 1; k <= maxK; k++ {
			ne, err := core.SolveTupleModel(f.g, nu, k)
			if err != nil {
				return Figure{}, fmt.Errorf("experiments: F1 %s k=%d: %w", f.name, k, err)
			}
			gain, _ := ne.DefenderGain().Float64()
			s.Points = append(s.Points, [2]float64{float64(k), gain})
			if math.Abs(gain-float64(k)*gain1) > 1e-9 {
				linear = false
			}
		}
		series = append(series, s)
	}
	return Figure{
		ID:    "F1",
		Title: "Defender gain versus power k (exactly linear, Thm 4.5)",
		Body:  renderASCII(series, 56, 14, "k", "IP_tp"),
		OK:    linear,
	}, nil
}

// F2LiftScaling plots Algorithm A_tuple's lift time against k·|EC| on
// cycles — Theorem 4.13's O(k·n) as a picture. The self-check only asserts
// monotone growth of work with k·|EC| at fixed k (timings are noisy).
func F2LiftScaling(cfg Config) (Figure, error) {
	sizes := []int{128, 512, 2048}
	if cfg.Quick {
		sizes = []int{64, 256}
	}
	const k = 8
	s := Series{Label: fmt.Sprintf("lift time at k=%d", k)}
	var deltas []int
	for _, n := range sizes {
		g := graph.Cycle(n)
		edgeNE, err := core.SolveEdgeModel(g, 4)
		if err != nil {
			return Figure{}, fmt.Errorf("experiments: F2 n=%d: %w", n, err)
		}
		elapsed, lifted, err := timeLift(edgeNE, k)
		if err != nil {
			return Figure{}, fmt.Errorf("experiments: F2 n=%d: %w", n, err)
		}
		s.Points = append(s.Points, [2]float64{
			float64(k * len(edgeNE.EdgeSupport)),
			float64(elapsed.Microseconds()),
		})
		deltas = append(deltas, len(lifted.Tuples))
	}
	// Structural self-check: δ grew proportionally with |EC| at fixed k.
	ok := true
	for i := 1; i < len(deltas); i++ {
		if deltas[i] <= deltas[i-1] {
			ok = false
		}
	}
	return Figure{
		ID:    "F2",
		Title: "Algorithm A_tuple lift time versus k·|EC| (O(k·n), Thm 4.13)",
		Body:  renderASCII([]Series{s}, 56, 12, "k·|EC|", "µs"),
		OK:    ok,
	}, nil
}

// Figures lists the figure generators in presentation order.
func Figures() []struct {
	ID  string
	Run func(Config) (Figure, error)
} {
	return []struct {
		ID  string
		Run func(Config) (Figure, error)
	}{
		{"F1", F1GainLinearity},
		{"F2", F2LiftScaling},
	}
}
