package experiments

import (
	"errors"
	"reflect"
	"testing"
)

// runnerBacked lists the experiments whose tables are decomposed into
// runner cells; the fault-injection hook must reach all of them.
var runnerBacked = map[string]bool{
	"E1": true, "E2": true, "E4": true, "E5": true, "E6": true,
	"E7": true, "E8": true, "E10": true, "E12": true,
}

// TestZeroTableOnError sweeps every registered experiment for the error
// contract: a builder that returns a non-nil error must return the zero
// Table, never a partially filled one. The failFirstCell hook makes every
// runner-backed builder actually take its error path.
func TestZeroTableOnError(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1, Workers: 4, failFirstCell: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(cfg)
			if err != nil {
				if !reflect.DeepEqual(table, Table{}) {
					t.Errorf("%s returned a non-zero Table alongside error %v", e.ID, err)
				}
				if runnerBacked[e.ID] && !errors.Is(err, errCellFault) {
					t.Errorf("%s error %v does not wrap the injected fault", e.ID, err)
				}
				return
			}
			if runnerBacked[e.ID] {
				t.Errorf("%s uses the runner but survived the injected cell fault", e.ID)
			}
		})
	}
}

// TestRunnerBackedListMatchesStats cross-checks the runnerBacked list
// against reality: an experiment reports cell stats iff it is listed.
func TestRunnerBackedListMatchesStats(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1, Workers: 2}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if got := table.Stats.Cells > 0; got != runnerBacked[e.ID] {
				t.Errorf("%s: cells=%d but runnerBacked=%v", e.ID, table.Stats.Cells, runnerBacked[e.ID])
			}
		})
	}
}
