package experiments

import (
	"math/big"
	"sync"
	"testing"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
)

// randomCacheWorkload draws connected test graphs from graph.Generator.
func randomCacheWorkload(seed int64, count int) []*graph.Graph {
	gen := graph.NewSeededGenerator(seed)
	out := make([]*graph.Graph, count)
	for i := range out {
		n := 5 + gen.Rand().Intn(8)
		out[i] = gen.Connected(n, 0.35)
	}
	return out
}

// TestCacheMatchesFreshComputations is the memoization soundness property:
// for random seeded graphs, every cached result — matching, edge cover,
// edge-cover number, tuple enumeration, game value — equals the fresh
// computation, on first (miss) and second (hit) lookup alike.
func TestCacheMatchesFreshComputations(t *testing.T) {
	c := newStructCache()
	for _, g := range randomCacheWorkload(7, 12) {
		for pass := 0; pass < 2; pass++ { // pass 0 fills, pass 1 hits
			mate := c.MaximumMatching(g)
			if err := matching.Verify(g, mate); err != nil {
				t.Fatalf("cached matching invalid: %v", err)
			}
			if got, want := matching.Size(mate), matching.Size(matching.Maximum(g)); got != want {
				t.Errorf("cached matching size %d, fresh %d", got, want)
			}

			ec, err := c.MinimumEdgeCover(g)
			if err != nil {
				t.Fatalf("cached edge cover: %v", err)
			}
			fresh, err := cover.MinimumEdgeCover(g)
			if err != nil {
				t.Fatalf("fresh edge cover: %v", err)
			}
			if len(ec) != len(fresh) || !cover.IsEdgeCover(g, ec) {
				t.Errorf("cached cover size %d (valid=%v), fresh %d",
					len(ec), cover.IsEdgeCover(g, ec), len(fresh))
			}
			rho, err := c.EdgeCoverNumber(g)
			if err != nil || rho != len(fresh) {
				t.Errorf("cached rho = (%d, %v), want %d", rho, err, len(fresh))
			}

			tuples := c.Tuples(g, 2)
			freshTuples := core.EnumerateTuples(g, 2)
			if len(tuples) != len(freshTuples) {
				t.Fatalf("cached %d tuples, fresh %d", len(tuples), len(freshTuples))
			}
			for i := range tuples {
				if !tuples[i].Equal(freshTuples[i]) {
					t.Fatalf("tuple %d differs: %v vs %v", i, tuples[i], freshTuples[i])
				}
			}

			value, err := c.GameValue(g, 1)
			if err != nil {
				t.Fatalf("cached value: %v", err)
			}
			freshValue, _, _, err := core.GameValue(g, 1)
			if err != nil {
				t.Fatalf("fresh value: %v", err)
			}
			if value.Cmp(freshValue) != 0 {
				t.Errorf("cached value %v, fresh %v", value, freshValue)
			}
		}
	}
}

// TestCacheLookupsAreDefensiveCopies: mutating anything a lookup returned
// must not corrupt later lookups (the ratalias discipline applied to the
// cache boundary).
func TestCacheLookupsAreDefensiveCopies(t *testing.T) {
	c := newStructCache()
	g := graph.Cycle(8)

	mate := c.MaximumMatching(g)
	for i := range mate {
		mate[i] = -99
	}
	if err := matching.Verify(g, c.MaximumMatching(g)); err != nil {
		t.Errorf("mate mutation leaked into cache: %v", err)
	}

	ec, err := c.MinimumEdgeCover(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ec {
		ec[i] = graph.NewEdge(0, 1)
	}
	ec2, err := c.MinimumEdgeCover(g)
	if err != nil || !cover.IsEdgeCover(g, ec2) {
		t.Errorf("edge-cover mutation leaked into cache (err=%v)", err)
	}

	ts := c.Tuples(g, 2)
	ts[0] = ts[len(ts)-1]
	if got := c.Tuples(g, 2); !got[0].Equal(core.EnumerateTuples(g, 2)[0]) {
		t.Error("tuple-slice mutation leaked into cache")
	}

	v, err := c.GameValue(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).Set(v)
	v.Add(v, big.NewRat(17, 1))
	again, err := c.GameValue(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cmp(want) != 0 {
		t.Errorf("rat mutation leaked into cache: %v, want %v", again, want)
	}
}

// TestCacheConcurrentLookups hammers one cache from many goroutines —
// mutating every returned value — and checks all lookups agree with the
// fresh computation. Run under -race this is the concurrency-safety
// property of the memoization layer.
func TestCacheConcurrentLookups(t *testing.T) {
	graphs := randomCacheWorkload(11, 4)
	c := newStructCache()
	wants := make([]*big.Rat, len(graphs))
	rhos := make([]int, len(graphs))
	for i, g := range graphs {
		value, _, _, err := core.GameValue(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = value
		rho, err := cover.EdgeCoverNumber(g)
		if err != nil {
			t.Fatal(err)
		}
		rhos[i] = rho
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers*len(graphs)*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i, g := range graphs {
					v, err := c.GameValue(g, 1)
					if err != nil {
						errs <- err.Error()
						continue
					}
					if v.Cmp(wants[i]) != 0 {
						errs <- "concurrent value lookup disagrees with fresh computation"
					}
					v.Add(v, big.NewRat(int64(w+1), 1)) // sabotage our copy

					rho, err := c.EdgeCoverNumber(g)
					if err != nil {
						errs <- err.Error()
						continue
					}
					if rho != rhos[i] {
						errs <- "concurrent rho lookup disagrees with fresh computation"
					}
					mate := c.MaximumMatching(g)
					mate[0] = -7 // sabotage our copy
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestCacheKeysAreStructural: two independently built but identical graphs
// share one cache entry, so cross-table probes of the same family hit.
func TestCacheKeysAreStructural(t *testing.T) {
	c := newStructCache()
	c.MaximumMatching(graph.Cycle(6))
	c.MaximumMatching(graph.Cycle(6)) // distinct *Graph, same structure
	mates, _, _, _ := c.Size()
	if mates != 1 {
		t.Errorf("identical graphs created %d entries, want 1", mates)
	}
	c.MaximumMatching(graph.Cycle(7))
	if mates, _, _, _ = c.Size(); mates != 2 {
		t.Errorf("distinct graphs share entries: %d, want 2", mates)
	}
}

// TestCacheIsolatedVertexError: cover lookups surface ErrIsolatedVertex
// like the uncached API, and cache nothing for the failing graph.
func TestCacheIsolatedVertexError(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c := newStructCache()
	if _, err := c.MinimumEdgeCover(g); err == nil {
		t.Error("want ErrIsolatedVertex for a graph with an isolated vertex")
	}
	if _, err := c.EdgeCoverNumber(g); err == nil {
		t.Error("want ErrIsolatedVertex from EdgeCoverNumber")
	}
	if _, covers, _, _ := c.Size(); covers != 0 {
		t.Errorf("failed lookup cached %d covers, want 0", covers)
	}
}
