package core

import (
	"errors"
	"slices"
	"testing"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/par"
)

// bigSparseInstance is above every parallel grain (1<<15), so a thread
// budget > 1 really engages the multicore bodies: CSR build, bipartition,
// Hopcroft–Karp BFS and the verifier all fan out on it.
func bigSparseInstance() *graph.CSR {
	return graph.NewSeededGenerator(47).BarabasiAlbertBipartiteCSR(40_000, 3)
}

// equalEquilibria reports every field of two sparse equilibria that the
// byte-identity contract covers: supports, edge labeling, tuple table,
// and the closed-form gain/hit rationals derived from them.
func equalEquilibria(t *testing.T, label string, a, b *SparseEquilibrium) {
	t.Helper()
	if !slices.Equal(a.VPSupport, b.VPSupport) {
		t.Errorf("%s: attacker supports differ", label)
	}
	if !slices.Equal(a.EdgeU, b.EdgeU) || !slices.Equal(a.EdgeV, b.EdgeV) {
		t.Errorf("%s: edge supports differ", label)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("%s: tuple counts differ: %d vs %d", label, len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if !slices.Equal(a.Tuples[i], b.Tuples[i]) {
			t.Fatalf("%s: tuple %d differs", label, i)
		}
	}
	if a.DefenderGain().Cmp(b.DefenderGain()) != 0 {
		t.Errorf("%s: gains differ: %v vs %v", label, a.DefenderGain(), b.DefenderGain())
	}
	if a.HitProbability().Cmp(b.HitProbability()) != 0 {
		t.Errorf("%s: hit probabilities differ: %v vs %v", label, a.HitProbability(), b.HitProbability())
	}
}

// TestSolveKMatchingCSRThreadsIdentity is the determinism contract of the
// whole parallel pipeline: the equilibrium solved under thread budgets 1,
// 2 and 8 is bit-identical — same supports, same edge labeling, same
// tuple table — on the golden corpus and on an instance large enough for
// every parallel body to actually engage. Budget 8 on this box is
// oversubscribed on purpose: correctness must not depend on GOMAXPROCS.
func TestSolveKMatchingCSRThreadsIdentity(t *testing.T) {
	defer par.SetThreads(0)
	instances := sparseCorpus()
	instances["baBip40k"] = bigSparseInstance()
	for name, c := range instances {
		var base *SparseEquilibrium
		for _, threads := range []int{1, 2, 8} {
			par.SetThreads(threads)
			ne, err := SolveKMatchingCSR(c, 5, 2)
			if errors.Is(err, ErrKTooLarge) {
				break
			}
			if err != nil {
				t.Fatalf("%s threads=%d: %v", name, threads, err)
			}
			if err := VerifyKMatchingCSR(ne); err != nil {
				t.Fatalf("%s threads=%d: audit: %v", name, threads, err)
			}
			if base == nil {
				base = ne
				continue
			}
			equalEquilibria(t, name, base, ne)
		}
	}
}

// TestVerifyKMatchingCSRParallelMatchesSerial differentially replays the
// two verifier bodies against each other: both accept a valid large
// equilibrium, and on every corrupted variant both reject with the exact
// same error — the parallel body's smallest-index fault reduction is the
// serial body's first error.
func TestVerifyKMatchingCSRParallelMatchesSerial(t *testing.T) {
	defer par.SetThreads(0)
	par.SetThreads(1)
	c := bigSparseInstance()
	base := func() *SparseEquilibrium {
		ne, err := SolveKMatchingCSR(c, 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		return ne
	}
	for _, workers := range []int{2, 3} {
		if err := verifyKMatchingCSRParallel(base(), workers); err != nil {
			t.Fatalf("workers=%d: parallel body rejects a valid equilibrium: %v", workers, err)
		}
	}
	if err := verifyKMatchingCSRSerial(base()); err != nil {
		t.Fatalf("serial body rejects a valid equilibrium: %v", err)
	}

	mutations := map[string]func(*SparseEquilibrium){
		"support-not-sorted": func(ne *SparseEquilibrium) {
			ne.VPSupport[0], ne.VPSupport[1] = ne.VPSupport[1], ne.VPSupport[0]
		},
		"fake-edge": func(ne *SparseEquilibrium) {
			ne.EdgeU[0], ne.EdgeV[0] = ne.VPSupport[0], ne.VPSupport[1]
		},
		"repeat-edge-in-tuple": func(ne *SparseEquilibrium) {
			ne.Tuples[0] = []int32{ne.Tuples[0][0], ne.Tuples[0][0], ne.Tuples[0][1], ne.Tuples[0][2]}
		},
		"short-tuple": func(ne *SparseEquilibrium) {
			ne.Tuples[len(ne.Tuples)-1] = ne.Tuples[len(ne.Tuples)-1][:2]
		},
		"edge-out-of-support": func(ne *SparseEquilibrium) {
			ne.Tuples[0][0] = int32(len(ne.EdgeU))
		},
	}
	for name, mutate := range mutations {
		ne := base()
		mutate(ne)
		serialErr := verifyKMatchingCSRSerial(ne)
		if serialErr == nil {
			t.Fatalf("%s: serial body accepted the mutant", name)
		}
		for _, workers := range []int{2, 3} {
			ne := base()
			mutate(ne)
			parErr := verifyKMatchingCSRParallel(ne, workers)
			if parErr == nil {
				t.Fatalf("%s workers=%d: parallel body accepted the mutant", name, workers)
			}
			if parErr.Error() != serialErr.Error() {
				t.Errorf("%s workers=%d: parallel error %q, serial error %q",
					name, workers, parErr, serialErr)
			}
		}
	}
}
