package core

import (
	"math/big"

	"github.com/defender-game/defender/internal/graph"
)

// Quality-of-protection metrics, in the spirit of the follow-up literature
// on the "price of defense": how much of the network the equilibrium
// actually protects, and how that compares with the best guarantee any
// defender strategy could extract against fully adversarial attackers.

// Escapes returns ν − IP_tp: the expected number of attackers that evade
// the defender each round at this equilibrium.
func (ne TupleEquilibrium) Escapes() *big.Rat {
	nu := new(big.Rat).SetInt64(int64(ne.Game.Attackers()))
	return nu.Sub(nu, ne.DefenderGain())
}

// ProtectionRatio returns IP_tp / ν ∈ [0, 1]: the fraction of the attack
// force arrested in expectation. For a k-matching equilibrium this equals
// k/|IS| — the paper's linear-in-k quality of protection.
func (ne TupleEquilibrium) ProtectionRatio() *big.Rat {
	return new(big.Rat).Quo(ne.DefenderGain(), new(big.Rat).SetInt64(int64(ne.Game.Attackers())))
}

// Escapes is the Edge-model analogue of TupleEquilibrium.Escapes.
func (ne EdgeEquilibrium) Escapes() *big.Rat {
	nu := new(big.Rat).SetInt64(int64(ne.Game.Attackers()))
	return nu.Sub(nu, ne.DefenderGain())
}

// ProtectionRatio is the Edge-model analogue of
// TupleEquilibrium.ProtectionRatio (= 1/|IS| for matching equilibria).
func (ne EdgeEquilibrium) ProtectionRatio() *big.Rat {
	return new(big.Rat).Quo(ne.DefenderGain(), new(big.Rat).SetInt64(int64(ne.Game.Attackers())))
}

// MaxminGuarantee computes the best expected catch count a defender can
// GUARANTEE in Π_k(G) against ν fully adversarial attackers: ν times the
// single-attacker minimax value (each attacker independently faces the
// defender's minimax coverage, and can independently cap it at the value).
// It inherits GameValue's enumeration limits (ErrValueTooLarge).
//
// On graphs admitting k-matching equilibria the equilibrium gain k·ν/|IS|
// attains this guarantee exactly — playing the equilibrium is maxmin-
// optimal for the defender — which the tests assert via the LP oracle.
func MaxminGuarantee(g *graph.Graph, attackers, k int) (*big.Rat, error) {
	value, _, _, err := GameValue(g, k)
	if err != nil {
		return nil, err
	}
	return value.Mul(value, new(big.Rat).SetInt64(int64(attackers))), nil
}
