package core

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// ErrNoMatchingNE is returned when a graph admits no matching (or
// k-matching) Nash equilibrium.
var ErrNoMatchingNE = errors.New("core: graph admits no matching Nash equilibrium")

// EdgeEquilibrium is a structured mixed Nash equilibrium of the Edge model
// Π_1(G): all attackers play uniformly on a common support, the defender
// plays uniformly on a set of edges. Algorithm A produces *matching*
// equilibria of this shape (Definition 2.2 and Lemma 2.1: the support is an
// independent set IS and every defender edge touches exactly one IS
// vertex); RegularGraphEdgeNE produces the all-vertices/all-edges shape.
type EdgeEquilibrium struct {
	Game    *game.Game
	Profile game.MixedProfile
	// VPSupport is D(vp), the common attacker support (= IS for matching
	// equilibria).
	VPSupport []int
	// EdgeSupport is D(tp) in labeling order e_0, e_1, ...; Algorithm
	// A_tuple consumes this exact order in its cyclic construction.
	EdgeSupport []graph.Edge
}

// DefenderGain returns the defender's expected profit IP_tp, computed
// exactly from the profile via equation (2). For matching equilibria it
// equals ν / |IS| (equation (11) of the paper), asserted by the tests.
func (ne EdgeEquilibrium) DefenderGain() *big.Rat {
	return ne.Game.ExpectedProfitTP(ne.Profile)
}

// AlgorithmA reconstructs the matching-equilibrium algorithm of [7] that
// the paper invokes as a subroutine (step 1 of Algorithm A_tuple). Given a
// partition (IS, VC) with IS independent and G a VC-expander, it builds the
// edge-player support:
//
//   - one edge (v, rep[v]) per VC vertex v, where rep is the system of
//     distinct representatives matching VC into IS (the expander witness),
//   - plus one arbitrary incident edge for every IS vertex not used as a
//     representative (its neighbors all lie in VC because IS is
//     independent).
//
// Every support edge therefore touches exactly one IS vertex, every IS
// vertex touches exactly one support edge, and the support covers all of V:
// the conditions of Lemma 2.1. Both players use uniform distributions.
func AlgorithmA(g *graph.Graph, attackers int, p cover.Partition) (EdgeEquilibrium, error) {
	if err := p.Validate(g); err != nil {
		return EdgeEquilibrium{}, fmt.Errorf("core: algorithm A: %w", err)
	}
	rep := p.Rep
	if rep == nil {
		var violator []int
		rep, violator = cover.IsNEExpander(g, p.IS, p.VC)
		if rep == nil {
			return EdgeEquilibrium{}, fmt.Errorf("core: algorithm A: partition fails expander condition, violator %v", violator)
		}
	}

	// usedIS[v] = true once IS vertex v is incident to a support edge.
	usedIS := make(map[int]bool, len(p.IS))
	support := make([]graph.Edge, 0, len(p.IS))
	for _, v := range p.VC {
		r, ok := rep[v]
		if !ok {
			return EdgeEquilibrium{}, fmt.Errorf("core: algorithm A: no representative for cover vertex %d", v)
		}
		if usedIS[r] {
			return EdgeEquilibrium{}, fmt.Errorf("core: algorithm A: representative %d reused", r)
		}
		usedIS[r] = true
		support = append(support, graph.NewEdge(v, r))
	}
	for _, v := range p.IS {
		if usedIS[v] {
			continue
		}
		nbrs := g.Neighbors(v)
		if len(nbrs) == 0 {
			return EdgeEquilibrium{}, fmt.Errorf("core: algorithm A: %w", game.ErrIsolatedVertex)
		}
		support = append(support, graph.NewEdge(v, nbrs[0]))
		usedIS[v] = true
	}

	gm, err := game.New(g, attackers, 1)
	if err != nil {
		return EdgeEquilibrium{}, err
	}
	profile, err := uniformProfile(gm, p.IS, edgesAsTuples(g, support))
	if err != nil {
		return EdgeEquilibrium{}, err
	}
	return EdgeEquilibrium{
		Game:        gm,
		Profile:     profile,
		VPSupport:   graph.NormalizeSet(p.IS),
		EdgeSupport: support,
	}, nil
}

// SolveEdgeModel finds a matching NE of Π_1(G) end to end: it searches for
// an (IS, VC) partition (König route for bipartite graphs, exact or greedy
// otherwise; see cover.FindNEPartition) and runs Algorithm A. It returns
// ErrNoMatchingNE when non-existence is proven and
// cover.ErrPartitionNotFound when the heuristic gives up.
func SolveEdgeModel(g *graph.Graph, attackers int) (EdgeEquilibrium, error) {
	p, err := cover.FindNEPartition(g)
	if err != nil {
		if errors.Is(err, cover.ErrNoPartition) {
			return EdgeEquilibrium{}, fmt.Errorf("%w: %v", ErrNoMatchingNE, err)
		}
		return EdgeEquilibrium{}, err
	}
	return AlgorithmA(g, attackers, p)
}

// uniformProfile builds the symmetric profile of Lemma 4.1: every attacker
// uniform on vpSupport, the defender uniform on the tuple support.
func uniformProfile(gm *game.Game, vpSupport []int, tuples []game.Tuple) (game.MixedProfile, error) {
	ts, err := game.UniformTupleStrategy(tuples)
	if err != nil {
		return game.MixedProfile{}, err
	}
	mp := game.NewSymmetricProfile(gm.Attackers(), game.UniformVertexStrategy(vpSupport), ts)
	if err := gm.Validate(mp); err != nil {
		return game.MixedProfile{}, err
	}
	return mp, nil
}

// edgesAsTuples wraps each edge as a 1-tuple (the Edge model is the Tuple
// model with k = 1).
func edgesAsTuples(g *graph.Graph, edges []graph.Edge) []game.Tuple {
	out := make([]game.Tuple, 0, len(edges))
	for _, e := range edges {
		t, err := game.NewTuple(g, []graph.Edge{e})
		if err != nil {
			// lint:invariant(nakedpanic): callers only pass edges of g, so NewTuple
			// cannot fail; a violation is a bug worth crashing on.
			panic(fmt.Sprintf("core: edge %v not in graph: %v", e, err))
		}
		out = append(out, t)
	}
	return out
}
