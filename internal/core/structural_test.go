package core

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestPerfectMatchingNEFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"K2", graph.Path(2)},
		{"C6", graph.Cycle(6)},
		{"C8", graph.Cycle(8)},
		{"K4", graph.Complete(4)},
		{"K6", graph.Complete(6)},
		{"petersen", graph.Petersen()},
		{"hypercube3", graph.Hypercube(3)},
		{"grid44", graph.Grid(4, 4)},
		{"disjoint edges", graph.PerfectMatchingGraph(8)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			maxK := tt.g.NumVertices() / 2
			if maxK > 4 {
				maxK = 4
			}
			for k := 1; k <= maxK; k++ {
				ne, err := PerfectMatchingNE(tt.g, 3, k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if err := VerifyNE(ne.Game, ne.Profile); err != nil {
					t.Fatalf("k=%d: not a NE: %v", k, err)
				}
				// Gain 2kν/n, linear in k (the extension's analogue of the
				// headline result).
				want := big.NewRat(2*int64(k)*3, int64(tt.g.NumVertices()))
				if got := ne.DefenderGain(); got.Cmp(want) != 0 {
					t.Errorf("k=%d: gain %v, want %v", k, got, want)
				}
			}
		})
	}
}

func TestPerfectMatchingNEErrors(t *testing.T) {
	// Odd vertex count: no perfect matching.
	if _, err := PerfectMatchingNE(graph.Cycle(5), 1, 1); !errors.Is(err, ErrNoPerfectMatching) {
		t.Errorf("C5: err = %v, want ErrNoPerfectMatching", err)
	}
	// Star K_{1,3}: even count, no perfect matching.
	if _, err := PerfectMatchingNE(graph.Star(4), 1, 1); !errors.Is(err, ErrNoPerfectMatching) {
		t.Errorf("star: err = %v, want ErrNoPerfectMatching", err)
	}
	// k beyond |M|.
	if _, err := PerfectMatchingNE(graph.Cycle(6), 1, 4); !errors.Is(err, ErrKTooLarge) {
		t.Errorf("k=4 on C6: err = %v, want ErrKTooLarge", err)
	}
}

func TestRegularGraphEdgeNE(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"C5", graph.Cycle(5)},
		{"C7", graph.Cycle(7)},
		{"K5", graph.Complete(5)},
		{"petersen", graph.Petersen()},
		{"hypercube3", graph.Hypercube(3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ne, err := RegularGraphEdgeNE(tt.g, 4)
			if err != nil {
				t.Fatalf("RegularGraphEdgeNE: %v", err)
			}
			if err := VerifyNE(ne.Game, ne.Profile); err != nil {
				t.Fatalf("not a NE: %v", err)
			}
			// Gain = 2ν/n for regular graphs.
			want := big.NewRat(2*4, int64(tt.g.NumVertices()))
			if got := ne.DefenderGain(); got.Cmp(want) != 0 {
				t.Errorf("gain = %v, want %v", got, want)
			}
		})
	}
	if _, err := RegularGraphEdgeNE(graph.Path(4), 1); !errors.Is(err, ErrNotRegular) {
		t.Errorf("path: err = %v, want ErrNotRegular", err)
	}
}

// TestNaiveRegularLiftFails documents why RegularGraphEdgeNE does not lift
// to Π_k via cyclic tuples: on C5 with k=2, consecutive windows contain
// adjacent edges covering only 3 vertices while disjoint pairs cover 4.
func TestNaiveRegularLiftFails(t *testing.T) {
	g := graph.Cycle(5)
	gm, err := game.New(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, g.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	tuples, err := CyclicTuples(g, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	allV := []int{0, 1, 2, 3, 4}
	ts, err := game.UniformTupleStrategy(tuples)
	if err != nil {
		t.Fatal(err)
	}
	mp := game.NewSymmetricProfile(2, game.UniformVertexStrategy(allV), ts)
	if err := VerifyNE(gm, mp); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("naive lift should fail verification, got %v", err)
	}
}

// TestPerfectMatchingVsKMatchingGain compares the two families where both
// exist: on C6, |IS| = 3 = n/2, so the k-matching gain kν/3 equals the
// perfect-matching gain 2kν/6 — the families tie exactly at |IS| = n/2.
func TestPerfectMatchingVsKMatchingGain(t *testing.T) {
	g := graph.Cycle(6)
	km, err := SolveTupleModel(g, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := PerfectMatchingNE(g, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if km.DefenderGain().Cmp(pm.DefenderGain()) != 0 {
		t.Errorf("C6 gains should tie: k-matching %v vs perfect-matching %v",
			km.DefenderGain(), pm.DefenderGain())
	}
}
