package core

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestEnumerateKEdgePathsCounts(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
		want int
	}{
		{"P4 k1", graph.Path(4), 1, 3}, // each edge
		{"P4 k2", graph.Path(4), 2, 2}, // 0-1-2, 1-2-3
		{"P4 k3", graph.Path(4), 3, 1}, // the whole path
		{"C5 k1", graph.Cycle(5), 1, 5},
		{"C5 k2", graph.Cycle(5), 2, 5}, // one arc per middle vertex
		{"C5 k3", graph.Cycle(5), 3, 5},
		{"K4 k2", graph.Complete(4), 2, 12}, // 4·C(3,2) ordered /? middle choose 2 ends: 4·3=12
		{"star5 k2", graph.Star(5), 2, 6},   // through the hub: C(4,2)
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			paths, err := EnumerateKEdgePaths(tt.g, tt.k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != tt.want {
				t.Errorf("paths = %d, want %d (%v)", len(paths), tt.want, paths)
			}
			for _, p := range paths {
				if len(p) != tt.k+1 {
					t.Errorf("path %v has %d vertices, want %d", p, len(p), tt.k+1)
				}
			}
		})
	}
}

func TestEnumerateKEdgePathsCap(t *testing.T) {
	if _, err := EnumerateKEdgePaths(graph.Complete(10), 5, 50); !errors.Is(err, ErrTooManyPaths) {
		t.Errorf("err = %v, want ErrTooManyPaths", err)
	}
	if _, err := EnumerateKEdgePaths(graph.Path(3), 0, 0); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestPathAsTuple(t *testing.T) {
	g := graph.Cycle(5)
	tp, err := PathAsTuple(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Size() != 2 {
		t.Errorf("size = %d", tp.Size())
	}
	if _, err := PathAsTuple(g, []int{0, 2}); err == nil {
		t.Error("non-edge hop must fail")
	}
	if _, err := PathAsTuple(g, []int{0}); err == nil {
		t.Error("single vertex must fail")
	}
}

func TestCyclePathNE(t *testing.T) {
	const nu = 6
	for _, n := range []int{5, 6, 8, 9} {
		g := graph.Cycle(n)
		for k := 1; k <= 3 && k <= n-2; k++ {
			ne, err := CyclePathNE(g, nu, k)
			if err != nil {
				t.Fatalf("C%d k=%d: %v", n, k, err)
			}
			if err := VerifyPathNE(ne.Game, ne.Profile); err != nil {
				t.Fatalf("C%d k=%d: not a path-model NE: %v", n, k, err)
			}
			// Gain = (k+1)·ν/n.
			want := big.NewRat(int64(k+1)*nu, int64(n))
			if got := ne.DefenderGain(); got.Cmp(want) != 0 {
				t.Errorf("C%d k=%d: gain %v, want %v", n, k, got, want)
			}
		}
	}
}

func TestCyclePathNEErrors(t *testing.T) {
	if _, err := CyclePathNE(graph.Path(5), 1, 1); err == nil {
		t.Error("non-cycle must fail")
	}
	if _, err := CyclePathNE(graph.Cycle(5), 1, 4); !errors.Is(err, ErrKTooLarge) {
		t.Errorf("k=n-1: err = %v, want ErrKTooLarge", err)
	}
	// Two disjoint triangles are 2-regular but disconnected.
	two, _ := graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3))
	if _, err := CyclePathNE(two, 1, 1); err == nil {
		t.Error("disconnected 2-regular graph must fail")
	}
}

// TestContiguityCostsTheDefender: on even cycles where both models apply,
// the Path-model gain (k+1)ν/n is strictly below the Tuple-model
// perfect-matching gain 2kν/n for k >= 2 and equal at k = 1.
func TestContiguityCostsTheDefender(t *testing.T) {
	const nu = 12
	g := graph.Cycle(8)
	for k := 1; k <= 4; k++ {
		pathNE, err := CyclePathNE(g, nu, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		tupleNE, err := PerfectMatchingNE(g, nu, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		cmp := pathNE.DefenderGain().Cmp(tupleNE.DefenderGain())
		if k == 1 && cmp != 0 {
			t.Errorf("k=1: path %v vs tuple %v, want equal",
				pathNE.DefenderGain(), tupleNE.DefenderGain())
		}
		if k >= 2 && cmp >= 0 {
			t.Errorf("k=%d: path gain %v should be strictly below tuple gain %v",
				k, pathNE.DefenderGain(), tupleNE.DefenderGain())
		}
	}
}

// TestVerifyPathNERejectsNonPaths: a Tuple-model equilibrium whose support
// tuples are not contiguous is not a Path-model profile.
func TestVerifyPathNERejectsNonPaths(t *testing.T) {
	g := graph.Cycle(8)
	ne, err := PerfectMatchingNE(g, 2, 2) // disjoint edges: never a path
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPathNE(ne.Game, ne.Profile); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("err = %v, want ErrNotEquilibrium (support not paths)", err)
	}
}

// TestVerifyPathNERejectsBadLoads: rotation defense against a concentrated
// attacker is not an equilibrium (the attacker should spread out).
func TestVerifyPathNERejectsBadLoads(t *testing.T) {
	g := graph.Cycle(6)
	ne, err := CyclePathNE(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	concentrated := game.NewSymmetricProfile(2, game.UniformVertexStrategy([]int{0}), ne.Profile.TP)
	if err := VerifyPathNE(ne.Game, concentrated); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("err = %v, want ErrNotEquilibrium", err)
	}
}
