package core

import (
	"errors"
	"math/big"
	"sort"
	"testing"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
)

// TestEquilibriumZoo is the wide-sweep integration test: for every graph
// in the zoo and every feasible k (capped for the exhaustive verifier),
// solve, then check every property the paper promises about the result in
// one place. This is deliberately redundant with the focused tests — its
// job is to catch cross-cutting regressions.
func TestEquilibriumZoo(t *testing.T) {
	zoo := []struct {
		name string
		g    *graph.Graph
	}{
		{"K2", graph.Path(2)},
		{"P3", graph.Path(3)},
		{"P6", graph.Path(6)},
		{"P9", graph.Path(9)},
		{"C4", graph.Cycle(4)},
		{"C8", graph.Cycle(8)},
		{"C14", graph.Cycle(14)},
		{"star4", graph.Star(4)},
		{"star11", graph.Star(11)},
		{"K23", graph.CompleteBipartite(2, 3)},
		{"K35", graph.CompleteBipartite(3, 5)},
		{"K44", graph.CompleteBipartite(4, 4)},
		{"grid25", graph.Grid(2, 5)},
		{"grid33", graph.Grid(3, 3)},
		{"ladder5", graph.Ladder(5)},
		{"Q3", graph.Hypercube(3)},
		{"Q4", graph.Hypercube(4)},
		{"tree15", graph.RandomTree(15, 5)},
		{"tree31", graph.CompleteBinaryTree(5)},
		{"caterpillar52", graph.Caterpillar(5, 2)},
		{"bip57", graph.RandomBipartite(5, 7, 0.35, 9)},
		{"bull", bullGraph(t)},
	}
	const nu = 5
	for _, z := range zoo {
		z := z
		t.Run(z.name, func(t *testing.T) {
			p, err := cover.FindNEPartition(z.g)
			if err != nil {
				t.Fatalf("partition: %v", err)
			}
			maxK := len(p.IS)
			if maxK > 5 {
				maxK = 5
			}
			edgeNE, err := AlgorithmA(z.g, nu, p)
			if err != nil {
				t.Fatalf("algorithm A: %v", err)
			}
			gain1 := edgeNE.DefenderGain()

			for k := 1; k <= maxK; k++ {
				ne, err := AlgorithmATuple(z.g, nu, k, p)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				// (1) Exact Nash equilibrium, both routes.
				if err := VerifyNE(ne.Game, ne.Profile); err != nil {
					t.Fatalf("k=%d: VerifyNE: %v", k, err)
				}
				if err := VerifyCharacterization(ne.Game, ne.Profile); err != nil {
					t.Fatalf("k=%d: VerifyCharacterization: %v", k, err)
				}
				// (2) k-matching configuration shape.
				if err := CheckKMatchingConfiguration(ne.Game, ne.Profile); err != nil {
					t.Fatalf("k=%d: configuration: %v", k, err)
				}
				// (3) Support bookkeeping: sorted, independent, sized |IS|.
				if !sort.IntsAreSorted(ne.VPSupport) {
					t.Fatalf("k=%d: VP support unsorted", k)
				}
				if !cover.IsIndependentSet(z.g, ne.VPSupport) {
					t.Fatalf("k=%d: VP support not independent", k)
				}
				if len(ne.EdgeSupport) != len(ne.VPSupport) {
					t.Fatalf("k=%d: |EC|=%d != |IS|=%d", k, len(ne.EdgeSupport), len(ne.VPSupport))
				}
				// (4) δ = |EC|/gcd(|EC|,k) tuples, equal multiplicity.
				wantDelta := len(ne.EdgeSupport) / gcd(len(ne.EdgeSupport), k)
				if len(ne.Tuples) != wantDelta {
					t.Fatalf("k=%d: δ=%d, want %d", k, len(ne.Tuples), wantDelta)
				}
				// (5) Gain linearity and closed forms.
				wantGain := new(big.Rat).Mul(gain1, big.NewRat(int64(k), 1))
				if ne.DefenderGain().Cmp(wantGain) != 0 {
					t.Fatalf("k=%d: gain %v, want %v", k, ne.DefenderGain(), wantGain)
				}
				closed := big.NewRat(int64(k)*int64(nu), int64(len(ne.VPSupport)))
				if ne.DefenderGain().Cmp(closed) != 0 {
					t.Fatalf("k=%d: gain %v, closed form %v", k, ne.DefenderGain(), closed)
				}
				// (6) Metrics consistency.
				total := new(big.Rat).Add(ne.DefenderGain(), ne.Escapes())
				if total.Cmp(big.NewRat(int64(nu), 1)) != 0 {
					t.Fatalf("k=%d: gain+escapes=%v", k, total)
				}
				// (7) Round trip through the Edge model.
				back, err := ReduceToEdgeModel(ne)
				if err != nil {
					t.Fatalf("k=%d: reduce: %v", k, err)
				}
				if back.DefenderGain().Cmp(gain1) != 0 {
					t.Fatalf("k=%d: reduced gain %v, want %v", k, back.DefenderGain(), gain1)
				}
			}
		})
	}
}

// bullGraph: triangle with two horns — the non-bipartite zoo member that
// still admits a matching partition.
func bullGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestZooNonAdmitting sweeps the families proven NOT to admit k-matching
// equilibria and confirms both the partition search and the solver agree.
func TestZooNonAdmitting(t *testing.T) {
	zoo := []struct {
		name string
		g    *graph.Graph
	}{
		{"C3", graph.Cycle(3)},
		{"C5", graph.Cycle(5)},
		{"C9", graph.Cycle(9)},
		{"K4", graph.Complete(4)},
		{"K7", graph.Complete(7)},
		{"petersen", graph.Petersen()},
		{"wheel6", graph.Wheel(6)},
	}
	for _, z := range zoo {
		z := z
		t.Run(z.name, func(t *testing.T) {
			if _, err := cover.FindNEPartitionExact(z.g, 0); !errors.Is(err, cover.ErrNoPartition) {
				t.Fatalf("partition err = %v, want ErrNoPartition", err)
			}
			if _, err := SolveTupleModel(z.g, 2, 1); !errors.Is(err, ErrNoMatchingNE) {
				t.Fatalf("solver err = %v, want ErrNoMatchingNE", err)
			}
		})
	}
}

// TestZooWheelHasNoPartition double-checks the wheel claim used above: the
// hub is adjacent to everything, so IS ⊆ rim; rim vertices adjacent in a
// cycle; any IS misses the hub's cover requirement... verified by brute
// force for small wheels.
func TestZooWheelHasNoPartition(t *testing.T) {
	for _, n := range []int{5, 6, 7, 8} {
		g := graph.Wheel(n)
		_, err := cover.FindNEPartitionExact(g, 0)
		if !errors.Is(err, cover.ErrNoPartition) {
			t.Errorf("W%d: err = %v, want ErrNoPartition", n, err)
		}
	}
}
