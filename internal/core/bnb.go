package core

import (
	"math/big"
	"sort"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/rat"
)

// Branch-and-bound maximizer for the general case of MaxTupleLoad:
// arbitrary nonnegative vertex loads, where neither structural shortcut
// applies. The search explores edge subsets in descending-potential order
// (potential of an edge = sum of its endpoint loads, an upper bound on its
// marginal contribution) and prunes any branch whose optimistic bound —
// current load plus the largest remaining potentials — cannot beat the
// incumbent. Exact when it completes; bounded by a node budget so callers
// get ErrCannotVerify instead of an open-ended search.
//
// All arithmetic runs on internal/rat: loads coming from game profiles
// have word-sized numerators and denominators, so potentials, prefix
// bounds, and the running load stay on the allocation-free int64 fast
// path and only promote to big.Rat on overflow.

// BnBNodeBudget caps the number of search-tree nodes the branch-and-bound
// maximizer expands before giving up. When the budget trips, MaxTupleLoad
// returns ErrCannotVerify rather than an inexact answer — the budget
// bounds time, never correctness. The counters core.bnb.nodes_expanded
// and core.bnb.nodes_pruned report how much of the budget a search used.
const BnBNodeBudget = 4_000_000

// bnbNodeBudget is the live budget; tests shrink it to force the
// exhausted path deterministically.
var bnbNodeBudget = BnBNodeBudget

var (
	obsBnBExpanded = obs.Default().Counter("core.bnb.nodes_expanded")
	obsBnBPruned   = obs.Default().Counter("core.bnb.nodes_pruned")
)

// maxLoadBranchBound computes max_t m(t) exactly for arbitrary nonnegative
// loads, or ok=false if the node budget is exhausted first.
func maxLoadBranchBound(g *graph.Graph, k int, loads []*big.Rat) (*big.Rat, game.Tuple, bool) {
	m := g.NumEdges()
	rloads := rat.FromBig(loads)
	// Edges sorted by descending potential.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	potential := rat.NewVec(m)
	for id := 0; id < m; id++ {
		e := g.EdgeByID(id)
		potential[id].Add(&rloads[e.U], &rloads[e.V])
	}
	sort.SliceStable(order, func(a, b int) bool {
		return potential[order[a]].Cmp(&potential[order[b]]) > 0
	})
	// prefix[i] = sum of the i largest potentials (in sorted order), so the
	// best c potentials at sorted positions >= pos sum to
	// prefix[min(pos+c, m)] - prefix[pos].
	prefix := rat.NewVec(m + 1)
	for i, id := range order {
		prefix[i+1].Add(&prefix[i], &potential[id])
	}

	var (
		best    rat.Rat
		bestIDs []int
		found   = false
		chosen  = make([]int, 0, k)
		covered = make([]int, g.NumVertices())
		current rat.Rat
		bound   rat.Rat // scratch for the optimistic bound
		nodes   = 0
		pruned  = 0
		budget  = bnbNodeBudget
		overrun = false
	)
	var dfs func(pos int)
	dfs = func(pos int) {
		if overrun {
			return
		}
		nodes++
		if nodes > budget {
			overrun = true
			return
		}
		if len(chosen) == k {
			if !found || current.Cmp(&best) > 0 {
				best.Set(&current)
				bestIDs = append(bestIDs[:0], chosen...)
				found = true
			}
			return
		}
		remainingSlots := k - len(chosen)
		if m-pos < remainingSlots {
			return // not enough edges left
		}
		// Optimistic bound: current + best possible remaining potentials.
		hi := pos + remainingSlots
		if hi > m {
			hi = m
		}
		bound.Sub(&prefix[hi], &prefix[pos])
		bound.Add(&bound, &current)
		if found && bound.Cmp(&best) <= 0 {
			pruned++
			return
		}
		// Branch 1: take order[pos].
		id := order[pos]
		e := g.EdgeByID(id)
		addedU := covered[e.U] == 0
		addedV := covered[e.V] == 0
		covered[e.U]++
		covered[e.V]++
		if addedU {
			current.Add(&current, &rloads[e.U])
		}
		if addedV {
			current.Add(&current, &rloads[e.V])
		}
		chosen = append(chosen, id)
		dfs(pos + 1)
		chosen = chosen[:len(chosen)-1]
		covered[e.U]--
		covered[e.V]--
		if addedU {
			current.Sub(&current, &rloads[e.U])
		}
		if addedV {
			current.Sub(&current, &rloads[e.V])
		}
		// Branch 2: skip order[pos].
		dfs(pos + 1)
	}
	dfs(0)
	obsBnBExpanded.Add(uint64(nodes))
	obsBnBPruned.Add(uint64(pruned))
	if overrun || !found {
		return nil, game.Tuple{}, false
	}
	t, err := game.NewTupleFromIDs(g, bestIDs)
	if err != nil {
		return nil, game.Tuple{}, false
	}
	return best.Big(), t, true
}
