package core

import (
	"math/big"
	"sort"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// Branch-and-bound maximizer for the general case of MaxTupleLoad:
// arbitrary nonnegative vertex loads, where neither structural shortcut
// applies. The search explores edge subsets in descending-potential order
// (potential of an edge = sum of its endpoint loads, an upper bound on its
// marginal contribution) and prunes any branch whose optimistic bound —
// current load plus the largest remaining potentials — cannot beat the
// incumbent. Exact when it completes; bounded by a node budget so callers
// get ErrCannotVerify instead of an open-ended search.

// bnbNodeBudget caps the number of search-tree nodes expanded.
const bnbNodeBudget = 4_000_000

// maxLoadBranchBound computes max_t m(t) exactly for arbitrary nonnegative
// loads, or ok=false if the node budget is exhausted first.
func maxLoadBranchBound(g *graph.Graph, k int, loads []*big.Rat) (*big.Rat, game.Tuple, bool) {
	m := g.NumEdges()
	// Edges sorted by descending potential.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	potential := make([]*big.Rat, m)
	for id := 0; id < m; id++ {
		e := g.EdgeByID(id)
		potential[id] = new(big.Rat).Add(loads[e.U], loads[e.V])
	}
	sort.SliceStable(order, func(a, b int) bool {
		return potential[order[a]].Cmp(potential[order[b]]) > 0
	})
	// prefix[i] = sum of the i largest potentials (in sorted order).
	prefix := make([]*big.Rat, m+1)
	prefix[0] = new(big.Rat)
	for i, id := range order {
		prefix[i+1] = new(big.Rat).Add(prefix[i], potential[id])
	}
	// topRemaining(pos, c) = sum of the c largest potentials at sorted
	// positions >= pos — they are exactly positions pos..pos+c-1.
	topRemaining := func(pos, c int) *big.Rat {
		hi := pos + c
		if hi > m {
			hi = m
		}
		return new(big.Rat).Sub(prefix[hi], prefix[pos])
	}

	var (
		best      = new(big.Rat).SetInt64(-1)
		bestIDs   []int
		chosen    = make([]int, 0, k)
		covered   = make(map[int]int, 2*k)
		current   = new(big.Rat)
		nodes     = 0
		exhausted = false
	)
	var dfs func(pos int)
	dfs = func(pos int) {
		if exhausted {
			return
		}
		nodes++
		if nodes > bnbNodeBudget {
			exhausted = true
			return
		}
		if len(chosen) == k {
			if current.Cmp(best) > 0 {
				best.Set(current)
				bestIDs = append(bestIDs[:0], chosen...)
			}
			return
		}
		remainingSlots := k - len(chosen)
		if m-pos < remainingSlots {
			return // not enough edges left
		}
		// Optimistic bound: current + best possible remaining potentials.
		bound := new(big.Rat).Add(current, topRemaining(pos, remainingSlots))
		if bound.Cmp(best) <= 0 {
			return
		}
		// Branch 1: take order[pos].
		id := order[pos]
		e := g.EdgeByID(id)
		addedU := covered[e.U] == 0
		addedV := covered[e.V] == 0
		covered[e.U]++
		covered[e.V]++
		if addedU {
			current.Add(current, loads[e.U])
		}
		if addedV {
			current.Add(current, loads[e.V])
		}
		chosen = append(chosen, id)
		dfs(pos + 1)
		chosen = chosen[:len(chosen)-1]
		covered[e.U]--
		covered[e.V]--
		if addedU {
			current.Sub(current, loads[e.U])
		}
		if addedV {
			current.Sub(current, loads[e.V])
		}
		// Branch 2: skip order[pos].
		dfs(pos + 1)
	}
	dfs(0)
	if exhausted || best.Sign() < 0 {
		return nil, game.Tuple{}, false
	}
	t, err := game.NewTupleFromIDs(g, bestIDs)
	if err != nil {
		return nil, game.Tuple{}, false
	}
	return best, t, true
}
