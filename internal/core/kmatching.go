package core

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// ErrNotKMatching is wrapped by all k-matching configuration violations.
var ErrNotKMatching = errors.New("core: not a k-matching configuration")

// TupleEquilibrium is a structured mixed Nash equilibrium of the Tuple
// model Π_k(G): all attackers play uniformly on a common support, the
// defender plays uniformly on a set of k-tuples. Algorithm A_tuple,
// BuildKMatchingNE and LiftToTupleModel produce *k-matching* equilibria of
// this shape (Definition 4.2); PerfectMatchingNE produces the
// all-vertices/perfect-matching shape.
type TupleEquilibrium struct {
	Game    *game.Game
	Profile game.MixedProfile
	// VPSupport is D(VP), the common attacker support (an independent set
	// for k-matching equilibria, all of V for perfect-matching ones).
	VPSupport []int
	// EdgeSupport is E(D(tp)): the distinct edges appearing in support
	// tuples, in the labeling order used by the cyclic construction.
	EdgeSupport []graph.Edge
	// Tuples is D(tp): the defender's support tuples.
	Tuples []game.Tuple
}

// DefenderGain returns the defender's expected profit IP_tp — the expected
// number of arrested attackers — computed exactly from the profile via
// equation (2). For k-matching equilibria it equals k·ν / |D(VP)|
// (equation (12) of the paper): the paper's headline result is that the
// gain grows linearly in the defender power k. The tests assert the closed
// form against this exact computation.
func (ne TupleEquilibrium) DefenderGain() *big.Rat {
	return ne.Game.ExpectedProfitTP(ne.Profile)
}

// HitProbability returns P(Hit(v)) = k / |E(D(tp))| for v in the attacker
// support (Claim 4.3) — the probability any individual attacker is caught.
// Valid for both k-matching and perfect-matching equilibria, where every
// support vertex lies on exactly one support edge.
func (ne TupleEquilibrium) HitProbability() *big.Rat {
	return big.NewRat(int64(ne.Game.K()), int64(len(ne.EdgeSupport)))
}

// CheckKMatchingConfiguration verifies Definition 4.1 against a profile:
//
//	(1) D(VP) is an independent set of G,
//	(2) each vertex of D(VP) is incident to exactly one edge of E(D(tp)),
//	(3) every edge of E(D(tp)) belongs to the same number of support tuples.
//
// A nil return means mp's supports form a k-matching configuration.
func CheckKMatchingConfiguration(gm *game.Game, mp game.MixedProfile) error {
	g := gm.Graph()
	vpSupport := mp.SupportUnionVP()
	if !cover.IsIndependentSet(g, vpSupport) {
		return fmt.Errorf("%w: attacker support %v is not independent", ErrNotKMatching, vpSupport)
	}

	edgeIDs := mp.TP.SupportEdges()
	incident := make(map[int]int, len(vpSupport))
	for _, id := range edgeIDs {
		e := g.EdgeByID(id)
		if graph.SetContains(vpSupport, e.U) {
			incident[e.U]++
		}
		if graph.SetContains(vpSupport, e.V) {
			incident[e.V]++
		}
	}
	for _, v := range vpSupport {
		if incident[v] != 1 {
			return fmt.Errorf("%w: support vertex %d incident to %d support edges, want exactly 1", ErrNotKMatching, v, incident[v])
		}
	}

	mult := EdgeMultiplicity(mp.TP.Support())
	want := -1
	for _, id := range edgeIDs {
		m := mult[id]
		if want == -1 {
			want = m
		}
		if m != want {
			return fmt.Errorf("%w: edge %v occurs in %d tuples, others in %d", ErrNotKMatching, g.EdgeByID(id), m, want)
		}
	}
	return nil
}

// checkCoverConditions verifies condition 1 of Theorem 3.4: E(D(tp)) is an
// edge cover of G and D(VP) is a vertex cover of the graph it induces.
func checkCoverConditions(gm *game.Game, mp game.MixedProfile) error {
	g := gm.Graph()
	edgeIDs := mp.TP.SupportEdges()
	edges := make([]graph.Edge, len(edgeIDs))
	for i, id := range edgeIDs {
		edges[i] = g.EdgeByID(id)
	}
	if !cover.IsEdgeCover(g, edges) {
		return fmt.Errorf("%w: E(D(tp)) is not an edge cover of G", ErrNotKMatching)
	}
	if !cover.IsVertexCoverOfEdges(g.NumVertices(), edges, mp.SupportUnionVP()) {
		return fmt.Errorf("%w: D(VP) is not a vertex cover of the graph obtained by E(D(tp))", ErrNotKMatching)
	}
	return nil
}

// BuildKMatchingNE applies Lemma 4.1: given supports that form a k-matching
// configuration additionally satisfying condition 1 of Theorem 3.4, the
// uniform distributions (equations (3) and (4)) form a mixed Nash
// equilibrium. The function validates both hypotheses and returns the
// assembled equilibrium.
func BuildKMatchingNE(g *graph.Graph, attackers, k int, vpSupport []int, tuples []game.Tuple) (TupleEquilibrium, error) {
	gm, err := game.New(g, attackers, k)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	profile, err := uniformProfile(gm, vpSupport, tuples)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	if err := CheckKMatchingConfiguration(gm, profile); err != nil {
		return TupleEquilibrium{}, err
	}
	if err := checkCoverConditions(gm, profile); err != nil {
		return TupleEquilibrium{}, err
	}
	edgeIDs := profile.TP.SupportEdges()
	edges := make([]graph.Edge, len(edgeIDs))
	for i, id := range edgeIDs {
		edges[i] = g.EdgeByID(id)
	}
	return TupleEquilibrium{
		Game:        gm,
		Profile:     profile,
		VPSupport:   graph.NormalizeSet(vpSupport),
		EdgeSupport: edges,
		Tuples:      profile.TP.Support(),
	}, nil
}
