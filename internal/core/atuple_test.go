package core

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
)

func TestAlgorithmATupleAcrossK(t *testing.T) {
	// The paper's main pipeline: for every family and every feasible k,
	// A_tuple must output an exact k-matching Nash equilibrium.
	for name, g := range bipartiteFamilies(t) {
		t.Run(name, func(t *testing.T) {
			p, err := cover.FindNEPartitionBipartite(g)
			if err != nil {
				t.Fatalf("partition: %v", err)
			}
			maxK := len(p.IS)
			if maxK > 6 {
				maxK = 6 // keep exhaustive verification honest but fast
			}
			for k := 1; k <= maxK; k++ {
				ne, err := AlgorithmATuple(g, 4, k, p)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if err := VerifyNE(ne.Game, ne.Profile); err != nil {
					t.Fatalf("k=%d: not a NE: %v", k, err)
				}
				if err := CheckKMatchingConfiguration(ne.Game, ne.Profile); err != nil {
					t.Fatalf("k=%d: not a k-matching configuration: %v", k, err)
				}
				// Gain formula k·ν/|IS| (equation (12)).
				want := big.NewRat(int64(k)*4, int64(len(ne.VPSupport)))
				if got := ne.DefenderGain(); got.Cmp(want) != 0 {
					t.Fatalf("k=%d: gain %v, want %v", k, got, want)
				}
				// Hit probability k/|EC| (Claim 4.3).
				wantHit := big.NewRat(int64(k), int64(len(ne.EdgeSupport)))
				if got := ne.HitProbability(); got.Cmp(wantHit) != 0 {
					t.Fatalf("k=%d: hit %v, want %v", k, got, wantHit)
				}
			}
		})
	}
}

func TestAlgorithmATupleKTooLarge(t *testing.T) {
	g := graph.Path(2) // |IS| = 1, only one support edge
	p, err := cover.FindNEPartitionBipartite(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AlgorithmATuple(g, 1, 2, p); err == nil {
		t.Error("k > |EC| must fail")
	}
}

func TestSolveTupleModelEndToEnd(t *testing.T) {
	g := graph.Grid(3, 4)
	ne, err := SolveTupleModel(g, 6, 3)
	if err != nil {
		t.Fatalf("SolveTupleModel: %v", err)
	}
	if err := VerifyCharacterization(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveTupleModel(graph.Complete(5), 2, 2); !errors.Is(err, ErrNoMatchingNE) {
		t.Errorf("K5: err = %v, want ErrNoMatchingNE", err)
	}
}

func TestSolveTupleModelGainLinearInK(t *testing.T) {
	// The headline theorem made concrete: gain(k) = k * gain(1).
	g := graph.CompleteBipartite(4, 6)
	base, err := SolveTupleModel(g, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	g1 := base.DefenderGain()
	for k := 2; k <= 6; k++ {
		ne, err := SolveTupleModel(g, 12, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := new(big.Rat).Mul(g1, big.NewRat(int64(k), 1))
		if got := ne.DefenderGain(); got.Cmp(want) != 0 {
			t.Errorf("k=%d: gain %v, want %v = k·gain(1)", k, got, want)
		}
	}
}

func TestAdmitsKMatchingNE(t *testing.T) {
	if _, err := AdmitsKMatchingNE(graph.Grid(4, 4)); err != nil {
		t.Errorf("grid must admit: %v", err)
	}
	if _, err := AdmitsKMatchingNE(graph.Cycle(9)); !errors.Is(err, ErrNoMatchingNE) {
		t.Errorf("C9: err = %v, want ErrNoMatchingNE", err)
	}
	if _, err := AdmitsKMatchingNE(graph.Petersen()); err == nil {
		t.Error("petersen admits no partition (max IS = 4, VC = 6)")
	}
}

// TestTheorem34EquivalenceOnEquilibria: for constructed equilibria the
// direct best-response verification and the Theorem 3.4 characterization
// agree (that is the theorem's content).
func TestTheorem34EquivalenceOnEquilibria(t *testing.T) {
	for name, g := range bipartiteFamilies(t) {
		t.Run(name, func(t *testing.T) {
			ne, err := SolveTupleModel(g, 3, 2)
			if errors.Is(err, ErrKTooLarge) {
				return // |IS| = 1 families cannot host k=2
			}
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if err := VerifyNE(ne.Game, ne.Profile); err != nil {
				t.Errorf("VerifyNE: %v", err)
			}
			if err := VerifyCharacterization(ne.Game, ne.Profile); err != nil {
				t.Errorf("VerifyCharacterization: %v", err)
			}
		})
	}
}
