package core

import (
	"errors"
	"testing"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestCheckKMatchingConfigurationViolations(t *testing.T) {
	g := graph.Cycle(6) // edges i:(i,i+1 mod 6)
	gm, err := game.New(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mkTuple := func(ids ...int) game.Tuple {
		tp, err := game.NewTupleFromIDs(g, ids)
		if err != nil {
			t.Fatalf("tuple %v: %v", ids, err)
		}
		return tp
	}
	mkProfile := func(vp []int, tuples ...game.Tuple) game.MixedProfile {
		ts, err := game.UniformTupleStrategy(tuples)
		if err != nil {
			t.Fatalf("tuple strategy: %v", err)
		}
		return game.NewSymmetricProfile(2, game.UniformVertexStrategy(vp), ts)
	}

	t.Run("dependent attacker support", func(t *testing.T) {
		mp := mkProfile([]int{0, 1}, mkTuple(0, 3))
		if err := CheckKMatchingConfiguration(gm, mp); !errors.Is(err, ErrNotKMatching) {
			t.Errorf("err = %v, want ErrNotKMatching", err)
		}
	})

	t.Run("support vertex on two support edges", func(t *testing.T) {
		// Vertex 1 lies on edges 0:(0,1) and 1:(1,2).
		mp := mkProfile([]int{1}, mkTuple(0, 1))
		if err := CheckKMatchingConfiguration(gm, mp); !errors.Is(err, ErrNotKMatching) {
			t.Errorf("err = %v, want ErrNotKMatching", err)
		}
	})

	t.Run("support vertex on no support edge", func(t *testing.T) {
		mp := mkProfile([]int{0, 3}, mkTuple(1, 4)) // edges (1,2),(4,5)
		if err := CheckKMatchingConfiguration(gm, mp); !errors.Is(err, ErrNotKMatching) {
			t.Errorf("err = %v, want ErrNotKMatching", err)
		}
	})

	t.Run("unequal edge multiplicity", func(t *testing.T) {
		// Tuples {0,2}, {0,4}: edge 0 twice, edges 2 and 4 once.
		mp := mkProfile([]int{0, 3}, mkTuple(0, 2), mkTuple(0, 4))
		if err := CheckKMatchingConfiguration(gm, mp); !errors.Is(err, ErrNotKMatching) {
			t.Errorf("err = %v, want ErrNotKMatching", err)
		}
	})

	t.Run("valid configuration passes", func(t *testing.T) {
		// C6 alternating: IS = {0,2,4}, cyclic 2-windows over (0,1),(2,3),(4,5).
		mp := mkProfile([]int{0, 2, 4}, mkTuple(0, 2), mkTuple(2, 4), mkTuple(0, 4))
		if err := CheckKMatchingConfiguration(gm, mp); err != nil {
			t.Errorf("valid configuration rejected: %v", err)
		}
	})
}

func TestBuildKMatchingNEDirect(t *testing.T) {
	// Hand-rolled supports on C6, bypassing Algorithm A.
	g := graph.Cycle(6)
	tuples, err := CyclicTuples(g, []int{0, 2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := BuildKMatchingNE(g, 5, 2, []int{0, 2, 4}, tuples)
	if err != nil {
		t.Fatalf("BuildKMatchingNE: %v", err)
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatalf("not a NE: %v", err)
	}
	if len(ne.Tuples) != 3 {
		t.Errorf("|D(tp)| = %d, want 3", len(ne.Tuples))
	}
}

func TestBuildKMatchingNERejectsNonCover(t *testing.T) {
	// Edge support {(0,1),(2,3)} leaves 4,5 uncovered on C6: condition 1 of
	// Theorem 3.4 fails.
	g := graph.Cycle(6)
	tuples, err := CyclicTuples(g, []int{0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildKMatchingNE(g, 2, 2, []int{0, 2}, tuples); !errors.Is(err, ErrNotKMatching) {
		t.Errorf("err = %v, want ErrNotKMatching", err)
	}
}

func TestBuildKMatchingNERejectsBadGame(t *testing.T) {
	g := graph.Cycle(6)
	tuples, err := CyclicTuples(g, []int{0, 2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildKMatchingNE(g, 0, 2, []int{0, 2, 4}, tuples); !errors.Is(err, game.ErrBadAttackers) {
		t.Errorf("err = %v, want ErrBadAttackers", err)
	}
}
