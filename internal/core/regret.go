package core

import (
	"math/big"

	"github.com/defender-game/defender/internal/game"
)

// Regret quantifies how far a profile is from equilibrium, per player:
// each attacker's regret is the profit gain of relocating to a least-hit
// vertex, the defender's regret is the gain of switching to a maximum-load
// tuple. A profile is a mixed Nash equilibrium iff every regret is zero,
// so Regret is the quantitative refinement of VerifyNE — `defender check`
// prints it for rejected profiles, and ε-equilibrium analyses can bound it.
type Regret struct {
	// Attacker[i] = max_v IP_i(s_-i, v) − IP_i(s): always >= 0.
	Attacker []*big.Rat
	// Defender = max_t IP_tp(s_-tp, t) − IP_tp(s): always >= 0.
	Defender *big.Rat
}

// MaxAttacker returns the largest attacker regret.
func (r Regret) MaxAttacker() *big.Rat {
	max := new(big.Rat)
	for _, a := range r.Attacker {
		if a.Cmp(max) > 0 {
			max = a
		}
	}
	return new(big.Rat).Set(max)
}

// IsEquilibrium reports whether every regret vanishes.
func (r Regret) IsEquilibrium() bool {
	if r.Defender.Sign() != 0 {
		return false
	}
	for _, a := range r.Attacker {
		if a.Sign() != 0 {
			return false
		}
	}
	return true
}

// ComputeRegret evaluates the exact deviation incentives of every player.
// It shares MaxTupleLoad's exactness envelope (ErrCannotVerify when the
// defender's best response is out of reach).
func ComputeRegret(gm *game.Game, mp game.MixedProfile) (Regret, error) {
	if err := gm.Validate(mp); err != nil {
		return Regret{}, err
	}
	hit := gm.HitProbabilities(mp)
	minHit := new(big.Rat).Set(hit[0])
	for _, h := range hit[1:] {
		if h.Cmp(minHit) < 0 {
			minHit.Set(h)
		}
	}
	one := big.NewRat(1, 1)
	bestVP := new(big.Rat).Sub(one, minHit)

	reg := Regret{Attacker: make([]*big.Rat, gm.Attackers())}
	for i := range mp.VP {
		current := gm.ExpectedProfitVP(mp, i)
		r := new(big.Rat).Sub(bestVP, current) // lint:invariant(ratraw): each regret escapes into the returned Regret slice
		if r.Sign() < 0 {
			r.SetInt64(0) // numerically impossible; guard regardless
		}
		reg.Attacker[i] = r
	}

	loads := gm.VertexLoads(mp)
	maxLoad, _, err := MaxTupleLoad(gm.Graph(), gm.K(), loads)
	if err != nil {
		return Regret{}, err
	}
	current := gm.ExpectedProfitTP(mp)
	d := new(big.Rat).Sub(maxLoad, current)
	if d.Sign() < 0 {
		d.SetInt64(0)
	}
	reg.Defender = d
	return reg, nil
}
