package core

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func uniformWeights(n int) []*big.Rat {
	w := make([]*big.Rat, n)
	for i := range w {
		w[i] = big.NewRat(1, 1)
	}
	return w
}

// TestWeightedDamageUniformReducesToGameValue: with w ≡ 1 the minimax
// damage is exactly 1 − GameValue.
func TestWeightedDamageUniformReducesToGameValue(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"C5 k1", graph.Cycle(5), 1},
		{"C6 k2", graph.Cycle(6), 2},
		{"star5 k1", graph.Star(5), 1},
		{"grid23 k2", graph.Grid(2, 3), 2},
	} {
		t.Run(tt.name, func(t *testing.T) {
			damage, _, err := WeightedDamageValue(tt.g, tt.k, uniformWeights(tt.g.NumVertices()))
			if err != nil {
				t.Fatal(err)
			}
			value, _, _, err := GameValue(tt.g, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Rat).Sub(big.NewRat(1, 1), value)
			if damage.Cmp(want) != 0 {
				t.Errorf("damage = %v, want 1 − value = %v", damage, want)
			}
		})
	}
}

// TestWeightedDamageConcentratesOnValue: on a star whose hub is worthless
// and one leaf precious, the optimal defense keeps the precious leaf's
// edge almost surely covered.
func TestWeightedDamageConcentratesOnValue(t *testing.T) {
	g := graph.Star(5) // hub 0, leaves 1..4
	w := make([]*big.Rat, 5)
	w[0] = new(big.Rat)
	w[1] = big.NewRat(100, 1)
	for v := 2; v <= 4; v++ {
		w[v] = big.NewRat(1, 1)
	}
	damage, ts, err := WeightedDamageValue(g, 1, w)
	if err != nil {
		t.Fatal(err)
	}
	// With one scanned edge the defender cannot cover every leaf; damage
	// is positive but far below 100 (the precious leaf is protected).
	if damage.Sign() <= 0 {
		t.Fatalf("damage = %v, want positive", damage)
	}
	if damage.Cmp(big.NewRat(3, 1)) > 0 {
		t.Fatalf("damage = %v, want small (precious leaf prioritized)", damage)
	}
	// The precious leaf's edge carries most of the defense probability.
	preciousEdge, err := game.NewTuple(g, []graph.Edge{graph.NewEdge(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	p := ts.Prob(preciousEdge)
	if p.Cmp(big.NewRat(9, 10)) < 0 {
		t.Errorf("precious edge probability = %v, want >= 9/10", p)
	}
}

// TestWeightedDamageMonotoneInK: more defender power can only reduce the
// worst-case damage.
func TestWeightedDamageMonotoneInK(t *testing.T) {
	g := graph.Cycle(6)
	w := []*big.Rat{
		big.NewRat(5, 1), big.NewRat(1, 1), big.NewRat(3, 1),
		big.NewRat(1, 2), big.NewRat(2, 1), big.NewRat(1, 1),
	}
	prev := new(big.Rat).SetInt64(1 << 30)
	for k := 1; k <= 3; k++ {
		damage, _, err := WeightedDamageValue(g, k, w)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if damage.Cmp(prev) > 0 {
			t.Errorf("damage increased at k=%d: %v > %v", k, damage, prev)
		}
		prev = damage
	}
	// At k = ρ(G) = 3, an edge cover exists: damage must be zero.
	if prev.Sign() != 0 {
		t.Errorf("damage at k=rho is %v, want 0", prev)
	}
}

func TestWeightedDamageValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, _, err := WeightedDamageValue(graph.New(0), 1, nil); err == nil {
		t.Error("empty graph must fail")
	}
	if _, _, err := WeightedDamageValue(g, 0, uniformWeights(4)); !errors.Is(err, game.ErrBadK) {
		t.Errorf("k=0: err = %v", err)
	}
	if _, _, err := WeightedDamageValue(g, 1, uniformWeights(3)); err == nil {
		t.Error("weight arity mismatch must fail")
	}
	bad := uniformWeights(4)
	bad[2] = big.NewRat(-1, 1)
	if _, _, err := WeightedDamageValue(g, 1, bad); err == nil {
		t.Error("negative weight must fail")
	}
	bad[2] = nil
	if _, _, err := WeightedDamageValue(g, 1, bad); err == nil {
		t.Error("nil weight must fail")
	}
	if _, _, err := WeightedDamageValue(graph.Complete(30), 6, uniformWeights(30)); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("oversized: err = %v", err)
	}
	iso := graph.New(3)
	if err := iso.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := WeightedDamageValue(iso, 1, uniformWeights(3)); !errors.Is(err, game.ErrIsolatedVertex) {
		t.Errorf("isolated: err = %v", err)
	}
}
