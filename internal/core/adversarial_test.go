package core

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// Verifier soundness under tampering: starting from a genuine equilibrium,
// every strict perturbation of the probability mass must be rejected. A
// verifier that waves tampered profiles through would make every other
// green test in this repository meaningless, so these tests attack it
// directly.

// perturbVertexStrategy moves probability mass eps from one support vertex
// of the common attacker strategy onto another vertex (possibly outside
// the support), returning the tampered profile.
func perturbVertexStrategy(gm *game.Game, mp game.MixedProfile, from, to int, eps *big.Rat) game.MixedProfile {
	s := mp.VP[0]
	probs := make(map[int]*big.Rat)
	for _, v := range s.Support() {
		probs[v] = new(big.Rat).Set(s.Prob(v))
	}
	probs[from] = new(big.Rat).Sub(probs[from], eps)
	if _, ok := probs[to]; !ok {
		probs[to] = new(big.Rat)
	}
	probs[to] = new(big.Rat).Add(probs[to], eps)
	tampered := game.NewVertexStrategy(probs)
	return game.NewSymmetricProfile(gm.Attackers(), tampered, mp.TP)
}

// perturbTupleStrategy moves probability eps from the first support tuple
// to the second.
func perturbTupleStrategy(gm *game.Game, mp game.MixedProfile, eps *big.Rat) (game.MixedProfile, error) {
	tuples := mp.TP.Support()
	if len(tuples) < 2 {
		return game.MixedProfile{}, errors.New("need two support tuples")
	}
	probs := make([]*big.Rat, len(tuples))
	for i, t := range tuples {
		probs[i] = new(big.Rat).Set(mp.TP.Prob(t))
	}
	probs[0] = new(big.Rat).Sub(probs[0], eps)
	probs[1] = new(big.Rat).Add(probs[1], eps)
	ts, err := game.NewTupleStrategy(tuples, probs)
	if err != nil {
		return game.MixedProfile{}, err
	}
	out := mp
	out.TP = ts
	return out, nil
}

func TestVerifierRejectsAttackerTampering(t *testing.T) {
	g := graph.CompleteBipartite(3, 4)
	ne, err := SolveTupleModel(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatalf("baseline must verify: %v", err)
	}
	eps := big.NewRat(1, 20)

	// Move attacker mass from a support vertex onto a cover vertex (hit
	// more often): the tampered support vertex set now contains a vertex
	// that is not a best response.
	from := ne.VPSupport[0]
	var to int
	for v := 0; v < g.NumVertices(); v++ {
		if !graph.SetContains(ne.VPSupport, v) {
			to = v
			break
		}
	}
	tampered := perturbVertexStrategy(ne.Game, ne.Profile, from, to, eps)
	if err := VerifyNE(ne.Game, tampered); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("attacker tampering passed verification: %v", err)
	}
}

func TestVerifierRejectsDefenderTampering(t *testing.T) {
	g := graph.Grid(3, 4)
	ne, err := SolveTupleModel(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tampered, err := perturbTupleStrategy(ne.Game, ne.Profile, big.NewRat(1, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Unequal tuple probabilities skew hit probabilities: some support
	// vertex of the attackers stops being minimal.
	if err := VerifyNE(ne.Game, tampered); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("defender tampering passed verification: %v", err)
	}
}

// Property: random small perturbations of genuine equilibria are always
// rejected (on instances where the perturbation actually changes the
// best-response structure — all bipartite families used here).
func TestPropertyVerifierRejectsPerturbations(t *testing.T) {
	families := []*graph.Graph{
		graph.CompleteBipartite(2, 4),
		graph.Cycle(8),
		graph.Grid(2, 4),
		graph.Star(6),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := families[int(uint64(seed)%uint64(len(families)))]
		ne, err := SolveTupleModel(g, 2, 1+rng.Intn(2))
		if errors.Is(err, ErrKTooLarge) {
			return true
		}
		if err != nil {
			return false
		}
		eps := big.NewRat(1, int64(10+rng.Intn(50)))
		from := ne.VPSupport[rng.Intn(len(ne.VPSupport))]
		to := rng.Intn(g.NumVertices())
		if to == from {
			return true // identity move: still an equilibrium, skip
		}
		tampered := perturbVertexStrategy(ne.Game, ne.Profile, from, to, eps)
		if err := ne.Game.Validate(tampered); err != nil {
			return true // perturbation produced an invalid distribution
		}
		err = VerifyNE(ne.Game, tampered)
		if err == nil {
			// Moving mass within the equilibrium support keeps all best
			// responses best: that IS still an equilibrium. Only accept
			// a pass in that case.
			return graph.SetContains(ne.VPSupport, to)
		}
		return errors.Is(err, ErrNotEquilibrium)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestVerifierAcceptsWithinSupportReweighting documents the flip side: the
// attackers' equilibrium conditions constrain only the SUPPORT (all
// support vertices minimal-hit), so rebalancing attacker mass across the
// equilibrium support... changes tuple loads and may break the DEFENDER's
// indifference. On K_{2,2} symmetry keeps it an equilibrium.
func TestVerifierAcceptsWithinSupportReweighting(t *testing.T) {
	g := graph.CompleteBipartite(2, 2) // C4
	ne, err := SolveTupleModel(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ne.VPSupport) != 2 {
		t.Fatalf("|IS| = %d, want 2", len(ne.VPSupport))
	}
	// On K_{2,2} with IS = one side and EC the two parallel edges, moving
	// attacker mass between the two IS vertices changes edge loads and
	// breaks defender indifference -> must be rejected.
	tampered := perturbVertexStrategy(ne.Game, ne.Profile, ne.VPSupport[0], ne.VPSupport[1], big.NewRat(1, 4))
	if err := VerifyNE(ne.Game, tampered); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("load-skewing reweight passed: %v", err)
	}
}
