package core

import (
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

func TestEscapesAndProtectionRatio(t *testing.T) {
	g := graph.CompleteBipartite(3, 4) // |IS| = 4
	ne, err := SolveTupleModel(g, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	// gain = 2·12/4 = 6; escapes = 6; protection = 1/2.
	if got := ne.Escapes(); got.Cmp(big.NewRat(6, 1)) != 0 {
		t.Errorf("Escapes = %v, want 6", got)
	}
	if got := ne.ProtectionRatio(); got.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("ProtectionRatio = %v, want 1/2", got)
	}
	// Conservation: gain + escapes = ν.
	sum := new(big.Rat).Add(ne.DefenderGain(), ne.Escapes())
	if sum.Cmp(big.NewRat(12, 1)) != 0 {
		t.Errorf("gain + escapes = %v, want 12", sum)
	}
}

func TestEdgeEquilibriumMetrics(t *testing.T) {
	g := graph.Cycle(8) // |IS| = 4
	ne, err := SolveEdgeModel(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ne.ProtectionRatio(); got.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("ProtectionRatio = %v, want 1/4", got)
	}
	if got := ne.Escapes(); got.Cmp(big.NewRat(6, 1)) != 0 {
		t.Errorf("Escapes = %v, want 6", got)
	}
}

// TestEquilibriumAttainsMaxminGuarantee: the equilibrium gain equals the
// defender's best possible guarantee ν·value — playing the k-matching
// equilibrium is maxmin-optimal.
func TestEquilibriumAttainsMaxminGuarantee(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"path5", graph.Path(5), 1},
		{"C6 k1", graph.Cycle(6), 1},
		{"C6 k2", graph.Cycle(6), 2},
		{"K33", graph.CompleteBipartite(3, 3), 2},
		{"star5", graph.Star(5), 2},
	}
	const nu = 7
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ne, err := SolveTupleModel(tt.g, nu, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			guarantee, err := MaxminGuarantee(tt.g, nu, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			if ne.DefenderGain().Cmp(guarantee) != 0 {
				t.Errorf("gain %v != maxmin guarantee %v", ne.DefenderGain(), guarantee)
			}
		})
	}
}

// TestMaxminGuaranteeOnNonMatchingGraphs: where no k-matching NE exists
// the guarantee is still well-defined (and exceeds what a naive uniform
// defense would promise on, e.g., odd cycles).
func TestMaxminGuaranteeOnNonMatchingGraphs(t *testing.T) {
	got, err := MaxminGuarantee(graph.Cycle(5), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(4, 1)) != 0 { // 10 · 2/5
		t.Errorf("C5 guarantee = %v, want 4", got)
	}
	if _, err := MaxminGuarantee(graph.Complete(30), 1, 6); err == nil {
		t.Error("oversized tuple space must fail")
	}
}
