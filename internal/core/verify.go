package core

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
	"github.com/defender-game/defender/internal/rat"
)

// Sentinel errors of the verifier.
var (
	// ErrNotEquilibrium is wrapped by every failed equilibrium condition.
	ErrNotEquilibrium = errors.New("core: profile is not a Nash equilibrium")
	// ErrCannotVerify is returned when the exact maximum tuple load cannot
	// be computed for the instance (no structural shortcut applies and the
	// tuple space is too large to enumerate). It does NOT mean the profile
	// is not an equilibrium.
	ErrCannotVerify = errors.New("core: cannot verify exactly: maximum tuple load out of reach")
)

// exhaustiveTupleLimit caps the number of k-subsets the exhaustive maximum
// tuple load enumerator is willing to visit.
const exhaustiveTupleLimit = 2_000_000

// VerifyNE checks exactly — in rational arithmetic, no tolerances — that mp
// is a mixed Nash equilibrium of gm, using the support characterization of
// mixed equilibria (every pure strategy in a player's support must be a best
// response):
//
//   - every vertex in every attacker's support attains the minimum hit
//     probability min_v P(Hit(v)) (condition 2(a) of Theorem 3.4), and
//   - every tuple in the defender's support attains the maximum expected
//     load max_{t ∈ E^k} m(t) (condition 3(a) of Theorem 3.4).
//
// The maximum over the (combinatorially large) tuple space is computed by
// MaxTupleLoad; see its documentation for the cases handled exactly.
func VerifyNE(gm *game.Game, mp game.MixedProfile) error {
	if err := gm.Validate(mp); err != nil {
		return err
	}
	g := gm.Graph()

	// Attacker side: support vertices must minimize the hit probability.
	hit := gm.HitProbabilities(mp)
	minHit := new(big.Rat).Set(hit[0])
	for _, h := range hit[1:] {
		if h.Cmp(minHit) < 0 {
			minHit.Set(h)
		}
	}
	for i, s := range mp.VP {
		for _, v := range s.Support() {
			if hit[v].Cmp(minHit) != 0 {
				return fmt.Errorf("%w: attacker %d plays vertex %d with hit probability %v > min %v",
					ErrNotEquilibrium, i, v, hit[v], minHit)
			}
		}
	}

	// Defender side: support tuples must maximize the expected load.
	loads := gm.VertexLoads(mp)
	maxLoad, witness, err := MaxTupleLoad(g, gm.K(), loads)
	if err != nil {
		return err
	}
	for _, t := range mp.TP.Support() {
		if l := gm.TupleLoad(loads, t); l.Cmp(maxLoad) != 0 {
			return fmt.Errorf("%w: defender plays tuple %v with load %v < max %v (witness %v)",
				ErrNotEquilibrium, t, l, maxLoad, witness)
		}
	}
	return nil
}

// VerifyCharacterization checks all conditions 1–3 of Theorem 3.4. For
// valid profiles this is equivalent to VerifyNE (that is the theorem); the
// experiments assert the equivalence empirically.
func VerifyCharacterization(gm *game.Game, mp game.MixedProfile) error {
	if err := VerifyNE(gm, mp); err != nil { // conditions 2(a) and 3(a)
		return err
	}
	if err := checkCoverConditions(gm, mp); err != nil { // condition 1
		return fmt.Errorf("%w: %v", ErrNotEquilibrium, err)
	}
	// Condition 3(b): the attacker mass concentrates on V(D(tp)).
	loads := gm.VertexLoads(mp)
	onSupport := new(big.Rat)
	seen := make(map[int]bool)
	for _, t := range mp.TP.Support() {
		for _, v := range t.Vertices(gm.Graph()) {
			if !seen[v] {
				seen[v] = true
				onSupport.Add(onSupport, loads[v])
			}
		}
	}
	nu := new(big.Rat).SetInt64(int64(gm.Attackers()))
	if onSupport.Cmp(nu) != 0 {
		return fmt.Errorf("%w: attacker mass on V(D(tp)) is %v, want ν=%v", ErrNotEquilibrium, onSupport, nu)
	}
	return nil
}

// MaxTupleLoad computes max over all tuples t of k distinct edges of
// m(t) = Σ_{v ∈ V(t)} load(v), together with a witness tuple attaining it.
//
// The general problem is weighted maximum coverage with sets of size two
// (NP-hard for arbitrary loads and k), but every case arising from the
// paper's equilibria is polynomial and handled exactly:
//
//  1. loads supported on an independent set (every k-matching equilibrium):
//     each edge covers at most one loaded vertex, so the maximum is the sum
//     of the min(k, #loaded) largest loads;
//  2. equal positive load on every vertex (perfect-matching and
//     regular-graph equilibria): the maximum is load · min(n, k + min(k, μ))
//     where μ is the maximum matching number, by a component-counting
//     argument, achieved by a maximum matching extended greedily;
//  3. any instance whose C(m, k) tuple space is small is enumerated
//     exhaustively (also the test oracle for cases 1 and 2).
//
// If no case applies, ErrCannotVerify is returned.
func MaxTupleLoad(g *graph.Graph, k int, loads []*big.Rat) (*big.Rat, game.Tuple, error) {
	if k < 1 || k > g.NumEdges() {
		return nil, game.Tuple{}, fmt.Errorf("core: max tuple load: invalid k=%d for m=%d", k, g.NumEdges())
	}
	var positive []int
	for v, l := range loads {
		switch {
		case l == nil:
			return nil, game.Tuple{}, fmt.Errorf("core: max tuple load: nil load for vertex %d", v)
		case l.Sign() < 0:
			return nil, game.Tuple{}, fmt.Errorf("core: max tuple load: negative load %v on vertex %d", l, v)
		case l.Sign() > 0:
			positive = append(positive, v)
		}
	}

	if independentInGraph(g, positive) {
		return maxLoadIndependent(g, k, loads, positive)
	}
	if uniform, c := uniformLoads(g, loads); uniform {
		return maxLoadUniform(g, k, c)
	}
	if combinationsWithin(g.NumEdges(), k, exhaustiveTupleLimit) {
		return maxLoadExhaustive(g, k, loads)
	}
	// General loads on a larger instance: budgeted branch and bound —
	// exact when it completes, ErrCannotVerify when the budget runs out.
	if value, witness, ok := maxLoadBranchBound(g, k, loads); ok {
		return value, witness, nil
	}
	return nil, game.Tuple{}, fmt.Errorf("%w: m=%d, k=%d", ErrCannotVerify, g.NumEdges(), k)
}

// independentInGraph reports whether no edge of g joins two of the vertices.
func independentInGraph(g *graph.Graph, vs []int) bool {
	member := make(map[int]bool, len(vs))
	for _, v := range vs {
		member[v] = true
	}
	for _, e := range g.Edges() {
		if member[e.U] && member[e.V] {
			return false
		}
	}
	return true
}

// maxLoadIndependent handles case 1: loaded vertices pairwise non-adjacent.
// Each edge then covers at most one loaded vertex, so any k edges collect at
// most the k largest loads among coverable (non-isolated) loaded vertices —
// and exactly that is achievable because edges incident to distinct loaded
// vertices are automatically distinct.
func maxLoadIndependent(g *graph.Graph, k int, loads []*big.Rat, positive []int) (*big.Rat, game.Tuple, error) {
	// Loaded isolated vertices can never be covered: drop them up front.
	sorted := make([]int, 0, len(positive))
	for _, v := range positive {
		if g.Degree(v) > 0 {
			sorted = append(sorted, v)
		}
	}
	// Sort coverable loaded vertices by decreasing load.
	sort.SliceStable(sorted, func(i, j int) bool { return loads[sorted[i]].Cmp(loads[sorted[j]]) > 0 })
	take := k
	if len(sorted) < take {
		take = len(sorted)
	}

	sum := new(big.Rat)
	usedEdges := make(map[int]bool, k)
	ids := make([]int, 0, k)
	for _, v := range sorted[:take] {
		id := g.EdgeID(graph.NewEdge(v, g.Neighbors(v)[0]))
		sum.Add(sum, loads[v])
		usedEdges[id] = true
		ids = append(ids, id)
	}
	// Pad with arbitrary unused edges. Padding happens only when every
	// coverable loaded vertex is already covered (take == len(sorted) < k),
	// so padding edges contribute zero additional load.
	for id := 0; id < g.NumEdges() && len(ids) < k; id++ {
		if !usedEdges[id] {
			usedEdges[id] = true
			ids = append(ids, id)
		}
	}
	t, err := game.NewTupleFromIDs(g, ids)
	if err != nil {
		return nil, game.Tuple{}, err
	}
	return sum, t, nil
}

// uniformLoads reports whether every vertex carries the same positive load.
// The returned rat is a defensive copy, never an alias of the caller's
// loads slice.
func uniformLoads(g *graph.Graph, loads []*big.Rat) (bool, *big.Rat) {
	if g.NumVertices() == 0 || loads[0].Sign() <= 0 {
		return false, nil
	}
	for _, l := range loads[1:] {
		if l.Cmp(loads[0]) != 0 {
			return false, nil
		}
	}
	return true, new(big.Rat).Set(loads[0])
}

// maxLoadUniform handles case 2: every vertex has load c. The maximum
// number of vertices coverable by k edges is min(n, k + min(k, μ)): a
// chosen subgraph with k edges and p components covers at most k + p
// vertices, p <= min(k, μ); achieved by extending a maximum matching one
// fresh vertex at a time.
func maxLoadUniform(g *graph.Graph, k int, c *big.Rat) (*big.Rat, game.Tuple, error) {
	mate := matching.Maximum(g)
	matchEdges := matching.Edges(mate)
	mu := len(matchEdges)

	covered := make([]bool, g.NumVertices())
	var ids []int
	useMatching := mu
	if k < useMatching {
		useMatching = k
	}
	for _, e := range matchEdges[:useMatching] {
		ids = append(ids, g.EdgeID(e))
		covered[e.U], covered[e.V] = true, true
	}
	// Extend: every uncovered vertex has only covered neighbors (a maximum
	// matching is maximal), so each extension edge adds exactly one vertex.
	if len(ids) < k {
		for v := 0; v < g.NumVertices() && len(ids) < k; v++ {
			if covered[v] {
				continue
			}
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			ids = append(ids, g.EdgeID(graph.NewEdge(v, nbrs[0])))
			covered[v] = true
		}
	}
	// Pad with arbitrary unused edges once everything reachable is covered.
	used := make(map[int]bool, len(ids))
	for _, id := range ids {
		used[id] = true
	}
	for id := 0; id < g.NumEdges() && len(ids) < k; id++ {
		if !used[id] {
			used[id] = true
			ids = append(ids, id)
		}
	}
	t, err := game.NewTupleFromIDs(g, ids)
	if err != nil {
		return nil, game.Tuple{}, err
	}
	count := 0
	for _, cov := range covered {
		if cov {
			count++
		}
	}
	bound := k + min(k, mu)
	if bound > g.NumVertices() {
		bound = g.NumVertices()
	}
	if count != bound {
		// The component-counting bound was not attained constructively
		// (possible only in exotic disconnected corner cases); fall back.
		if combinationsWithin(g.NumEdges(), k, exhaustiveTupleLimit) {
			loads := make([]*big.Rat, g.NumVertices())
			for i := range loads {
				loads[i] = new(big.Rat).Set(c) // lint:invariant(ratraw): one independently-mutated big.Rat per vertex; no aliasing across entries
			}
			return maxLoadExhaustive(g, k, loads)
		}
		return nil, game.Tuple{}, fmt.Errorf("%w: uniform-load construction reached %d of %d vertices", ErrCannotVerify, count, bound)
	}
	value := new(big.Rat).Mul(c, new(big.Rat).SetInt64(int64(count)))
	return value, t, nil
}

// maxLoadExhaustive handles case 3: enumerate every k-subset of edges.
// The inner loop runs on internal/rat so the C(m, k) iterations stay
// allocation-free for word-sized loads.
func maxLoadExhaustive(g *graph.Graph, k int, loads []*big.Rat) (*big.Rat, game.Tuple, error) {
	m := g.NumEdges()
	rloads := rat.FromBig(loads)
	var best rat.Rat
	bestIDs := make([]int, 0, k)
	first := true

	idx := make([]int, k)
	covered := make([]int, g.NumVertices()) // vertex -> multiplicity in current selection
	var current rat.Rat

	var recurse func(pos, next int)
	recurse = func(pos, next int) {
		if pos == k {
			if first || current.Cmp(&best) > 0 {
				best.Set(&current)
				bestIDs = append(bestIDs[:0], idx...)
				first = false
			}
			return
		}
		for id := next; id <= m-(k-pos); id++ {
			e := g.EdgeByID(id)
			idx[pos] = id
			addedU := covered[e.U] == 0
			addedV := covered[e.V] == 0
			covered[e.U]++
			covered[e.V]++
			if addedU {
				current.Add(&current, &rloads[e.U])
			}
			if addedV {
				current.Add(&current, &rloads[e.V])
			}
			recurse(pos+1, id+1)
			covered[e.U]--
			covered[e.V]--
			if addedU {
				current.Sub(&current, &rloads[e.U])
			}
			if addedV {
				current.Sub(&current, &rloads[e.V])
			}
		}
	}
	recurse(0, 0)
	t, err := game.NewTupleFromIDs(g, bestIDs)
	if err != nil {
		return nil, game.Tuple{}, err
	}
	return best.Big(), t, nil
}

// tupleLoadOf computes m(t) for a tuple against explicit loads.
func tupleLoadOf(g *graph.Graph, loads []*big.Rat, t game.Tuple) *big.Rat {
	sum := new(big.Rat)
	for _, v := range t.Vertices(g) {
		sum.Add(sum, loads[v])
	}
	return sum
}

// combinationsWithin reports whether C(m, k) <= limit without overflowing.
func combinationsWithin(m, k, limit int) bool {
	if k < 0 || k > m {
		return false
	}
	if k > m-k {
		k = m - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (m - k + i) / i
		if c > limit {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
