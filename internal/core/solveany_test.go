package core

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// TestSolveAnyFamilies: the unified solver picks the expected family per
// instance and every returned profile verifies exactly.
func TestSolveAnyFamilies(t *testing.T) {
	tests := []struct {
		name       string
		g          *graph.Graph
		k          int
		wantFamily string
	}{
		{"bipartite grid", graph.Grid(3, 4), 2, "k-matching"},
		{"even cycle", graph.Cycle(8), 3, "k-matching"},
		{"K6 (clique, PM)", graph.Complete(6), 2, "perfect-matching"},
		{"petersen k1", graph.Petersen(), 1, "perfect-matching"},
		{"C5 k1", graph.Cycle(5), 1, "regular"},
		{"C5 k2 (LP only)", graph.Cycle(5), 2, "lp-minimax"},
		{"C7 k2 (LP only)", graph.Cycle(7), 2, "lp-minimax"},
		{"wheel6 k1 (has PM)", graph.Wheel(6), 1, "perfect-matching"},
		{"wheel7 k1 (LP only)", graph.Wheel(7), 1, "lp-minimax"},
		{"lollipop41 k1 (LP only)", graph.Lollipop(4, 1), 1, "lp-minimax"},
	}
	const nu = 3
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ne, family, err := SolveAny(tt.g, nu, tt.k)
			if err != nil {
				t.Fatalf("SolveAny: %v", err)
			}
			if family != tt.wantFamily {
				t.Errorf("family = %q, want %q", family, tt.wantFamily)
			}
			if err := VerifyNE(ne.Game, ne.Profile); err != nil {
				t.Fatalf("profile (%s) is not an equilibrium: %v", family, err)
			}
		})
	}
}

// TestSolveAnyLPLiftScalesWithNu: the LP-minimax lift is an equilibrium
// for every attacker count, with gain exactly ν·value.
func TestSolveAnyLPLiftScalesWithNu(t *testing.T) {
	g := graph.Cycle(5)
	value, _, _, err := GameValue(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, nu := range []int{1, 3, 7} {
		ne, family, err := SolveAny(g, nu, 2)
		if err != nil {
			t.Fatalf("ν=%d: %v", nu, err)
		}
		if family != "lp-minimax" {
			t.Fatalf("ν=%d: family %q", nu, family)
		}
		if err := VerifyNE(ne.Game, ne.Profile); err != nil {
			t.Fatalf("ν=%d: %v", nu, err)
		}
		want := new(big.Rat).SetInt64(int64(nu))
		want.Mul(want, value)
		if ne.DefenderGain().Cmp(want) != 0 {
			t.Errorf("ν=%d: gain %v, want ν·value = %v", nu, ne.DefenderGain(), want)
		}
	}
}

// TestSolveAnySmallWorld: a Watts–Strogatz graph that admits no structural
// family still gets a verified equilibrium through the LP route.
func TestSolveAnySmallWorld(t *testing.T) {
	g := graph.WattsStrogatz(12, 4, 0.2, 5)
	ne, family, err := SolveAny(g, 2, 1)
	if err != nil {
		t.Fatalf("SolveAny: %v", err)
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatalf("family %s: %v", family, err)
	}
}

// TestSolveAnyOversized: a graph whose tuple space defeats the LP must
// surface ErrValueTooLarge rather than hang.
func TestSolveAnyOversized(t *testing.T) {
	// K9 minus a perfect matching... simpler: an irregular non-bipartite
	// graph with no PM and a huge C(m,k): complete graph K30 with one
	// pendant vertex (odd n ⇒ no PM, irregular, non-bipartite).
	g := graph.Complete(30)
	big := graph.New(31)
	for _, e := range g.Edges() {
		if err := big.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if err := big.AddEdge(29, 30); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveAny(big, 1, 6); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("err = %v, want ErrValueTooLarge", err)
	}
}

// TestSolveAnyRandomStress: SolveAny must deliver a verified equilibrium
// on every random connected instance within the enumeration limits.
func TestSolveAnyRandomStress(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := graph.RandomConnected(5+int(seed%8), 0.35, seed)
		k := 1 + int(seed%2)
		if k > g.NumEdges() {
			k = 1
		}
		ne, family, err := SolveAny(g, 3, k)
		if errors.Is(err, ErrValueTooLarge) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := VerifyNE(ne.Game, ne.Profile); err != nil {
			t.Fatalf("seed %d (family %s): %v\n%s", seed, family, err, g.EncodeString())
		}
	}
}

// TestHeawoodFamiliesTie: the Heawood graph is bipartite with |IS| = n/2,
// so the k-matching gain kν/|IS| and the perfect-matching gain 2kν/n are
// exactly equal — the two families tie on half-independence graphs.
func TestHeawoodFamiliesTie(t *testing.T) {
	g := graph.Heawood()
	const nu = 6
	for k := 1; k <= 3; k++ {
		km, err := SolveTupleModel(g, nu, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		pm, err := PerfectMatchingNE(g, nu, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if km.DefenderGain().Cmp(pm.DefenderGain()) != 0 {
			t.Errorf("k=%d: k-matching %v vs perfect-matching %v",
				k, km.DefenderGain(), pm.DefenderGain())
		}
		if err := VerifyNE(km.Game, km.Profile); err != nil {
			t.Fatal(err)
		}
		if err := VerifyNE(pm.Game, pm.Profile); err != nil {
			t.Fatal(err)
		}
	}
}
