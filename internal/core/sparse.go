package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strconv"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/rat"
)

// Sparse verification counter (catalogued in OBSERVABILITY.md): one
// increment per completed VerifyKMatchingCSR run — the Theorem 3.4 audit
// every scaling record performs on its 10^6-vertex equilibria.
var obsCSRVerifications = obs.Default().Counter("core.csr.verifications")

// SparseEquilibrium is a k-matching mixed Nash equilibrium of Π_k(G) in
// flat int32 form — the million-vertex counterpart of TupleEquilibrium.
// It never materializes a game.Game (whose strategy tables are Θ(n·m)):
// both supports are implicit uniform distributions, so three slices and a
// tuple index table describe the whole profile.
//
//   - VPSupport is D(VP), the common attacker support (= IS, ascending);
//     every attacker plays uniformly on it.
//   - EdgeU/EdgeV are E(D(tp)) in the labeling order e_0, e_1, ... of the
//     cyclic construction; edge i joins EdgeU[i] and EdgeV[i].
//   - Tuples is D(tp): each tuple lists K distinct edge indices into
//     EdgeU/EdgeV; the defender plays uniformly on the tuples.
type SparseEquilibrium struct {
	C         *graph.CSR
	Attackers int
	K         int
	VPSupport []int32
	EdgeU     []int32
	EdgeV     []int32
	Tuples    [][]int32
}

// DefenderGain returns the defender's expected profit k·ν / |D(VP)|
// (equation (12) of the paper) as an exact rational. For the sparse
// construction this closed form is proven by VerifyKMatchingCSR, which
// recomputes every tuple load in the rat domain. O(1); allocates the
// result.
func (ne *SparseEquilibrium) DefenderGain() *big.Rat {
	return big.NewRat(int64(ne.K)*int64(ne.Attackers), int64(len(ne.VPSupport)))
}

// HitProbability returns P(Hit(v)) = k / |E(D(tp))| for v in the attacker
// support (Claim 4.3). O(1); allocates the result.
func (ne *SparseEquilibrium) HitProbability() *big.Rat {
	return big.NewRat(int64(ne.K), int64(len(ne.EdgeU)))
}

// Multiplicity returns how many support tuples each support edge belongs
// to: k·δ / |E(D(tp))| with δ = |D(tp)| (Claim 4.9). O(1), does not
// allocate.
func (ne *SparseEquilibrium) Multiplicity() int {
	return ne.K * len(ne.Tuples) / len(ne.EdgeU)
}

// AlgorithmACSR runs step 1–2 of Algorithm A_tuple on the sparse path:
// given a validated partition it assembles the edge-player support of
// Algorithm A — one edge (v, Rep[v]) per VC vertex, then one arbitrary
// incident edge per unused IS vertex — in the exact labeling order the
// dense AlgorithmA uses (VC ascending, then leftover IS ascending), so
// the two paths are differentially comparable. Every support edge touches
// exactly one IS vertex and each IS vertex exactly one support edge.
// O(n + m); allocates the endpoint slices and a bitset.
func AlgorithmACSR(c *graph.CSR, p cover.PartitionCSR) (us, vs []int32, err error) {
	if err := p.Validate(c); err != nil {
		return nil, nil, fmt.Errorf("core: algorithm A csr: %w", err)
	}
	usedIS := graph.NewBitset(c.NumVertices())
	us = make([]int32, 0, len(p.IS))
	vs = make([]int32, 0, len(p.IS))
	for _, v := range p.VC {
		r := p.Rep[v]
		usedIS.Set(r)
		us = append(us, v)
		vs = append(vs, r)
	}
	for _, v := range p.IS {
		if usedIS.Has(v) {
			continue
		}
		row := c.Neighbors(int(v))
		if len(row) == 0 {
			return nil, nil, fmt.Errorf("core: algorithm A csr: %w", game.ErrIsolatedVertex)
		}
		// The neighbor lies in VC because IS is independent.
		us = append(us, v)
		vs = append(vs, row[0])
		usedIS.Set(v)
	}
	return us, vs, nil
}

// AlgorithmATupleCSR is Algorithm A_tuple (Figure 1) on the sparse path:
// Algorithm A's edge support, labeled consecutively, traversed cyclically
// in windows of k (δ = E/gcd(E,k) tuples, each edge in exactly k·δ/E of
// them), with both players uniform — a k-matching NE of Π_k(G) by
// Theorem 4.12, computed in O(k·n) after the partition (Theorem 4.13).
// Returns ErrKTooLarge when k exceeds the support size |IS|. Allocates
// the equilibrium slices.
func AlgorithmATupleCSR(c *graph.CSR, attackers, k int, p cover.PartitionCSR) (*SparseEquilibrium, error) {
	return AlgorithmATupleCSRCtx(context.Background(), c, attackers, k, p)
}

// AlgorithmATupleCSRCtx is AlgorithmATupleCSR under ctx's trace: the
// construction is timed as the span "core.atuple_csr" (histogram
// core.atuple_csr.seconds), so sparse-path solves show the O(k·n)
// construction leg separately from the partition search around it.
func AlgorithmATupleCSRCtx(ctx context.Context, c *graph.CSR, attackers, k int, p cover.PartitionCSR) (*SparseEquilibrium, error) {
	sp, _ := obs.Default().StartSpanCtx(ctx, "core.atuple_csr")
	sp.Annotate("k", strconv.Itoa(k))
	defer sp.End()
	if attackers < 1 {
		return nil, fmt.Errorf("core: algorithm A_tuple csr: attackers=%d, want >= 1", attackers)
	}
	us, vs, err := AlgorithmACSR(c, p)
	if err != nil {
		return nil, err
	}
	e := len(us)
	if k < 1 {
		return nil, fmt.Errorf("core: algorithm A_tuple csr: k=%d, want >= 1", k)
	}
	if k > e {
		return nil, fmt.Errorf("%w: k=%d > |E(D(tp))|=%d", ErrKTooLarge, k, e)
	}
	delta := e / gcd(e, k)
	tuples := make([][]int32, delta)
	pos := 0
	for i := range tuples {
		t := make([]int32, k)
		for j := 0; j < k; j++ {
			t[j] = int32(pos)
			pos = (pos + 1) % e
		}
		tuples[i] = t
	}
	return &SparseEquilibrium{
		C:         c,
		Attackers: attackers,
		K:         k,
		VPSupport: p.IS,
		EdgeU:     us,
		EdgeV:     vs,
		Tuples:    tuples,
	}, nil
}

// SolveKMatchingCSR computes a k-matching NE of Π_k(G) end to end on the
// sparse path: partition search routed by bipartiteness
// (cover.FindNEPartitionCSR), then Algorithm A_tuple. For bipartite
// graphs this is the Theorem 5.1 pipeline at max{O(k·n), O(m√n)} — the
// single-digit-seconds route for 10^6-vertex instances. Allocates the
// equilibrium and the partition scratch.
func SolveKMatchingCSR(c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	return SolveKMatchingCSRCtx(context.Background(), c, attackers, k)
}

// SolveKMatchingCSRCtx is SolveKMatchingCSR under ctx's trace: the whole
// sparse pipeline is timed as the span "core.solve_sparse" with the
// construction nested beneath it as "core.atuple_csr".
func SolveKMatchingCSRCtx(ctx context.Context, c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	sp, ctx := obs.Default().StartSpanCtx(ctx, "core.solve_sparse")
	sp.Annotate("k", strconv.Itoa(k))
	sp.Annotate("n", strconv.Itoa(c.NumVertices()))
	defer sp.End()
	p, err := cover.FindNEPartitionCSR(c)
	if err != nil {
		if errors.Is(err, cover.ErrNoPartition) {
			return nil, fmt.Errorf("%w: %v", ErrNoMatchingNE, err)
		}
		return nil, err
	}
	return AlgorithmATupleCSRCtx(ctx, c, attackers, k, p)
}

// VerifyKMatchingCSR checks — exactly, with loads computed in the
// int64-first rat domain, and without materializing a game.Game — that ne
// is a k-matching mixed Nash equilibrium, auditing every condition of
// Theorem 3.4 plus the Definition 4.1 configuration shape:
//
//   - D(VP) is an independent set and every support vertex is incident to
//     exactly one support edge, which belongs to exactly k·δ/E tuples
//     (Definition 4.1, checked by explicit counting over all tuples);
//   - E(D(tp)) is an edge cover of G and D(VP) a vertex cover of it
//     (condition 1);
//   - every support vertex attains the minimum hit probability, computed
//     for all n vertices by counting covering tuples (condition 2(a));
//   - every support tuple attains the maximum expected load k·ν/|IS|,
//     each tuple load accumulated in rat arithmetic (condition 3(a) — the
//     independent-support maximum of MaxTupleLoad case 1);
//   - the attacker mass on V(D(tp)) is exactly ν (condition 3(b)).
//
// O(n + m + k·δ) time; allocates O(n) counting scratch. A nil return is a
// proof of equilibrium; the differential tests cross-check it against the
// dense VerifyCharacterization through ToTupleEquilibrium.
func VerifyKMatchingCSR(ne *SparseEquilibrium) error {
	c := ne.C
	n := c.NumVertices()
	e := len(ne.EdgeU)
	is := ne.VPSupport
	if ne.Attackers < 1 {
		return fmt.Errorf("%w: attackers=%d", ErrNotEquilibrium, ne.Attackers)
	}
	if len(ne.EdgeV) != e || e == 0 {
		return fmt.Errorf("%w: malformed edge support (%d,%d)", ErrNotEquilibrium, e, len(ne.EdgeV))
	}
	if ne.K < 1 || ne.K > e {
		return fmt.Errorf("%w: k=%d outside 1..%d", ErrNotEquilibrium, ne.K, e)
	}

	// Support shape: IS ascending, distinct, independent in G.
	inIS := graph.NewBitset(n)
	for i, v := range is {
		if v < 0 || int(v) >= n || (i > 0 && is[i-1] >= v) {
			return fmt.Errorf("%w: attacker support not ascending/in-range at %d", ErrNotEquilibrium, v)
		}
		inIS.Set(v)
	}
	for _, v := range is {
		for _, u := range c.Neighbors(int(v)) {
			if inIS.Has(u) {
				return fmt.Errorf("%w: attacker support not independent, edge (%d,%d)", ErrNotEquilibrium, v, u)
			}
		}
	}

	// Edge support: real edges of G, covering every vertex (condition 1),
	// each touching exactly one IS vertex with D(VP) covering every
	// support edge, and IS↔edge incidence a bijection (Definition 4.1(2)).
	incident := make([]int32, n)
	covered := graph.NewBitset(n)
	for i := 0; i < e; i++ {
		u, v := ne.EdgeU[i], ne.EdgeV[i]
		if !c.HasEdge(int(u), int(v)) {
			return fmt.Errorf("%w: support edge %d=(%d,%d) is not an edge of G", ErrNotEquilibrium, i, u, v)
		}
		covered.Set(u)
		covered.Set(v)
		touch := 0
		if inIS.Has(u) {
			incident[u]++
			touch++
		}
		if inIS.Has(v) {
			incident[v]++
			touch++
		}
		if touch != 1 {
			return fmt.Errorf("%w: support edge (%d,%d) touches %d IS vertices, want 1", ErrNotEquilibrium, u, v, touch)
		}
	}
	for v := 0; v < n; v++ {
		if !covered.Has(int32(v)) {
			return fmt.Errorf("%w: E(D(tp)) does not cover vertex %d", ErrNotEquilibrium, v)
		}
	}
	for _, v := range is {
		if incident[v] != 1 {
			return fmt.Errorf("%w: support vertex %d incident to %d support edges, want 1", ErrNotEquilibrium, v, incident[v])
		}
	}
	if len(is) != e {
		return fmt.Errorf("%w: |IS|=%d != |E(D(tp))|=%d, incidence is not a bijection", ErrNotEquilibrium, len(is), e)
	}

	// Tuple table: δ tuples of k distinct in-range edges, every edge in
	// exactly r = k·δ/e of them (Definition 4.1(3), explicit count).
	delta := len(ne.Tuples)
	if delta == 0 || (ne.K*delta)%e != 0 {
		return fmt.Errorf("%w: %d tuples of %d edges cannot spread %d support edges evenly", ErrNotEquilibrium, delta, ne.K, e)
	}
	r := ne.K * delta / e
	mult := make([]int32, e)
	seenEdge := make([]int32, e)
	for i := range seenEdge {
		seenEdge[i] = -1
	}
	for ti, t := range ne.Tuples {
		if len(t) != ne.K {
			return fmt.Errorf("%w: tuple %d has %d edges, want k=%d", ErrNotEquilibrium, ti, len(t), ne.K)
		}
		for _, id := range t {
			if id < 0 || int(id) >= e {
				return fmt.Errorf("%w: tuple %d lists edge %d outside support", ErrNotEquilibrium, ti, id)
			}
			if seenEdge[id] == int32(ti) {
				return fmt.Errorf("%w: tuple %d repeats edge %d", ErrNotEquilibrium, ti, id)
			}
			seenEdge[id] = int32(ti)
			mult[id]++
		}
	}
	for id, m := range mult {
		if m != int32(r) {
			return fmt.Errorf("%w: edge %d occurs in %d tuples, others in %d", ErrNotEquilibrium, id, m, r)
		}
	}

	// Condition 2(a): hit counts for all n vertices — hitCount[v]·(1/δ) is
	// P(Hit(v)); support vertices must attain the minimum. Counts are
	// exact, so the comparison stays in integers over the common
	// denominator δ.
	hitCount := make([]int32, n)
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for ti, t := range ne.Tuples {
		for _, id := range t {
			for _, v := range [2]int32{ne.EdgeU[id], ne.EdgeV[id]} {
				if stamp[v] != int32(ti) {
					stamp[v] = int32(ti)
					hitCount[v]++
				}
			}
		}
	}
	minHit := hitCount[0]
	for _, h := range hitCount[1:] {
		if h < minHit {
			minHit = h
		}
	}
	for _, v := range is {
		if hitCount[v] != minHit {
			return fmt.Errorf("%w: support vertex %d has hit probability %d/%d > min %d/%d",
				ErrNotEquilibrium, v, hitCount[v], delta, minHit, delta)
		}
	}

	// Condition 3(a): each IS vertex carries load ν/|IS| (uniform
	// attackers on IS), so the loads are supported on an independent set
	// and the maximum tuple load is the k largest loads: k·ν/|IS|
	// (MaxTupleLoad case 1; k <= |IS| holds by the bijection). Every
	// support tuple must attain it — accumulated in the rat domain, where
	// these small fractions stay on the allocation-free int64 path.
	var perVertex, want, tupleLoad rat.Rat
	perVertex.SetFrac64(int64(ne.Attackers), int64(len(is)))
	want.SetFrac64(int64(ne.K)*int64(ne.Attackers), int64(len(is)))
	for ti, t := range ne.Tuples {
		tupleLoad.SetInt64(0)
		for _, id := range t {
			for _, v := range [2]int32{ne.EdgeU[id], ne.EdgeV[id]} {
				if inIS.Has(v) {
					// Distinct edges touch distinct IS vertices (the
					// bijection), so no double counting inside a tuple.
					tupleLoad.Add(&tupleLoad, &perVertex)
				}
			}
		}
		if tupleLoad.Cmp(&want) != 0 {
			return fmt.Errorf("%w: tuple %d has load %v < max %v", ErrNotEquilibrium, ti, tupleLoad.Big(), want.Big())
		}
	}

	// Condition 3(b): the attacker mass on V(D(tp)) is exactly ν. Every
	// support edge lies in some tuple (r >= 1), so V(D(tp)) is the set of
	// support endpoints; summing ν/|IS| over its IS members must give ν.
	var mass, nu rat.Rat
	nu.SetInt64(int64(ne.Attackers))
	for _, v := range is {
		if hitCount[v] > 0 {
			mass.Add(&mass, &perVertex)
		}
	}
	if mass.Cmp(&nu) != 0 {
		return fmt.Errorf("%w: attacker mass on V(D(tp)) is %v, want ν=%v", ErrNotEquilibrium, mass.Big(), nu.Big())
	}

	obsCSRVerifications.Inc()
	return nil
}

// ToTupleEquilibrium expands the sparse equilibrium into the dense
// TupleEquilibrium form, materializing the game.Game — the bridge the
// differential tests use to replay a sparse solve through
// BuildKMatchingNE and VerifyCharacterization. Θ(n·m) game tables: small
// graphs only, never the 10^6-vertex path. Allocates the full game.
func (ne *SparseEquilibrium) ToTupleEquilibrium() (TupleEquilibrium, error) {
	g := ne.C.ToGraph()
	vp := make([]int, len(ne.VPSupport))
	for i, v := range ne.VPSupport {
		vp[i] = int(v)
	}
	tuples := make([]game.Tuple, len(ne.Tuples))
	for i, t := range ne.Tuples {
		edges := make([]graph.Edge, len(t))
		for j, id := range t {
			edges[j] = graph.NewEdge(int(ne.EdgeU[id]), int(ne.EdgeV[id]))
		}
		tuple, err := game.NewTuple(g, edges)
		if err != nil {
			return TupleEquilibrium{}, fmt.Errorf("core: sparse tuple %d: %w", i, err)
		}
		tuples[i] = tuple
	}
	return BuildKMatchingNE(g, ne.Attackers, ne.K, vp, tuples)
}

// SolveKMatchingCSRVerified is the scaling pipeline's entry point: solve
// and then immediately audit the result with VerifyKMatchingCSR, so every
// benchmark row carries a Theorem 3.4 proof, not just a construction.
// Cost is one solve plus one O(n + m + k·δ) verification.
func SolveKMatchingCSRVerified(c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	return SolveKMatchingCSRVerifiedCtx(context.Background(), c, attackers, k)
}

// SolveKMatchingCSRVerifiedCtx is SolveKMatchingCSRVerified with ctx
// threaded into the solve for trace correlation.
func SolveKMatchingCSRVerifiedCtx(ctx context.Context, c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	ne, err := SolveKMatchingCSRCtx(ctx, c, attackers, k)
	if err != nil {
		return nil, err
	}
	if err := VerifyKMatchingCSR(ne); err != nil {
		return nil, fmt.Errorf("core: sparse solve failed its own audit: %w", err)
	}
	return ne, nil
}
