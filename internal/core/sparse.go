package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"sync/atomic"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/par"
	"github.com/defender-game/defender/internal/rat"
)

// Sparse verification counter (catalogued in OBSERVABILITY.md): one
// increment per completed VerifyKMatchingCSR run — the Theorem 3.4 audit
// every scaling record performs on its 10^6-vertex equilibria.
var obsCSRVerifications = obs.Default().Counter("core.csr.verifications")

// Parallel verification counter (catalogued in OBSERVABILITY.md): the
// subset of core.csr.verifications that ran the multicore verifier body —
// instances large enough, and the thread budget wide enough, for the
// grain guard to engage. core.csr.verifications minus this is the inline
// count.
var obsCSRParallelVerifications = obs.Default().Counter("core.csr.parallel.verifications")

// verifyParallelGrain is the index-range size below which the verifier
// stays on its serial body; both bodies are bit-identical (differentially
// tested), the guard is purely about fan-out cost.
const verifyParallelGrain = 1 << 15

// SparseEquilibrium is a k-matching mixed Nash equilibrium of Π_k(G) in
// flat int32 form — the million-vertex counterpart of TupleEquilibrium.
// It never materializes a game.Game (whose strategy tables are Θ(n·m)):
// both supports are implicit uniform distributions, so three slices and a
// tuple index table describe the whole profile.
//
//   - VPSupport is D(VP), the common attacker support (= IS, ascending);
//     every attacker plays uniformly on it.
//   - EdgeU/EdgeV are E(D(tp)) in the labeling order e_0, e_1, ... of the
//     cyclic construction; edge i joins EdgeU[i] and EdgeV[i].
//   - Tuples is D(tp): each tuple lists K distinct edge indices into
//     EdgeU/EdgeV; the defender plays uniformly on the tuples.
type SparseEquilibrium struct {
	C         *graph.CSR
	Attackers int
	K         int
	VPSupport []int32
	EdgeU     []int32
	EdgeV     []int32
	Tuples    [][]int32
}

// DefenderGain returns the defender's expected profit k·ν / |D(VP)|
// (equation (12) of the paper) as an exact rational. For the sparse
// construction this closed form is proven by VerifyKMatchingCSR, which
// recomputes every tuple load in the rat domain. O(1); allocates the
// result.
func (ne *SparseEquilibrium) DefenderGain() *big.Rat {
	return big.NewRat(int64(ne.K)*int64(ne.Attackers), int64(len(ne.VPSupport)))
}

// HitProbability returns P(Hit(v)) = k / |E(D(tp))| for v in the attacker
// support (Claim 4.3). O(1); allocates the result.
func (ne *SparseEquilibrium) HitProbability() *big.Rat {
	return big.NewRat(int64(ne.K), int64(len(ne.EdgeU)))
}

// Multiplicity returns how many support tuples each support edge belongs
// to: k·δ / |E(D(tp))| with δ = |D(tp)| (Claim 4.9). O(1), does not
// allocate.
func (ne *SparseEquilibrium) Multiplicity() int {
	return ne.K * len(ne.Tuples) / len(ne.EdgeU)
}

// AlgorithmACSR runs step 1–2 of Algorithm A_tuple on the sparse path:
// given a validated partition it assembles the edge-player support of
// Algorithm A — one edge (v, Rep[v]) per VC vertex, then one arbitrary
// incident edge per unused IS vertex — in the exact labeling order the
// dense AlgorithmA uses (VC ascending, then leftover IS ascending), so
// the two paths are differentially comparable. Every support edge touches
// exactly one IS vertex and each IS vertex exactly one support edge.
// O(n + m); allocates the endpoint slices and a bitset.
func AlgorithmACSR(c *graph.CSR, p cover.PartitionCSR) (us, vs []int32, err error) {
	if err := p.Validate(c); err != nil {
		return nil, nil, fmt.Errorf("core: algorithm A csr: %w", err)
	}
	return algorithmACSRTrusted(c, p)
}

// algorithmACSRTrusted is AlgorithmACSR minus the partition re-check —
// the internal entry for pipelines whose partition was just validated by
// the search that produced it (partitionFromRepMatching always
// validates), so the end-to-end solve audits each invariant once instead
// of twice.
func algorithmACSRTrusted(c *graph.CSR, p cover.PartitionCSR) (us, vs []int32, err error) {
	usedIS := graph.GetBitset(c.NumVertices())
	defer graph.PutBitset(usedIS)
	us = make([]int32, 0, len(p.IS))
	vs = make([]int32, 0, len(p.IS))
	for _, v := range p.VC {
		r := p.Rep[v]
		usedIS.Set(r)
		us = append(us, v)
		vs = append(vs, r)
	}
	for _, v := range p.IS {
		if usedIS.Has(v) {
			continue
		}
		row := c.Neighbors(int(v))
		if len(row) == 0 {
			return nil, nil, fmt.Errorf("core: algorithm A csr: %w", game.ErrIsolatedVertex)
		}
		// The neighbor lies in VC because IS is independent.
		us = append(us, v)
		vs = append(vs, row[0])
		usedIS.Set(v)
	}
	return us, vs, nil
}

// AlgorithmATupleCSR is Algorithm A_tuple (Figure 1) on the sparse path:
// Algorithm A's edge support, labeled consecutively, traversed cyclically
// in windows of k (δ = E/gcd(E,k) tuples, each edge in exactly k·δ/E of
// them), with both players uniform — a k-matching NE of Π_k(G) by
// Theorem 4.12, computed in O(k·n) after the partition (Theorem 4.13).
// Returns ErrKTooLarge when k exceeds the support size |IS|. Allocates
// the equilibrium slices.
func AlgorithmATupleCSR(c *graph.CSR, attackers, k int, p cover.PartitionCSR) (*SparseEquilibrium, error) {
	return AlgorithmATupleCSRCtx(context.Background(), c, attackers, k, p)
}

// AlgorithmATupleCSRCtx is AlgorithmATupleCSR under ctx's trace: the
// construction is timed as the span "core.atuple_csr" (histogram
// core.atuple_csr.seconds), so sparse-path solves show the O(k·n)
// construction leg separately from the partition search around it.
func AlgorithmATupleCSRCtx(ctx context.Context, c *graph.CSR, attackers, k int, p cover.PartitionCSR) (*SparseEquilibrium, error) {
	return algorithmATupleCSRCtx(ctx, c, attackers, k, p, false)
}

// algorithmATupleCSRCtx is the construction body; trusted skips the
// partition re-validation for internal callers whose partition search
// already validated it.
func algorithmATupleCSRCtx(ctx context.Context, c *graph.CSR, attackers, k int, p cover.PartitionCSR, trusted bool) (*SparseEquilibrium, error) {
	sp, _ := obs.Default().StartSpanCtx(ctx, "core.atuple_csr")
	sp.Annotate("k", strconv.Itoa(k))
	defer sp.End()
	if attackers < 1 {
		return nil, fmt.Errorf("core: algorithm A_tuple csr: attackers=%d, want >= 1", attackers)
	}
	builder := AlgorithmACSR
	if trusted {
		builder = algorithmACSRTrusted
	}
	us, vs, err := builder(c, p)
	if err != nil {
		return nil, err
	}
	e := len(us)
	if k < 1 {
		return nil, fmt.Errorf("core: algorithm A_tuple csr: k=%d, want >= 1", k)
	}
	if k > e {
		return nil, fmt.Errorf("%w: k=%d > |E(D(tp))|=%d", ErrKTooLarge, k, e)
	}
	delta := e / gcd(e, k)
	tuples := make([][]int32, delta)
	pos := 0
	for i := range tuples {
		t := make([]int32, k)
		for j := 0; j < k; j++ {
			t[j] = int32(pos)
			pos = (pos + 1) % e
		}
		tuples[i] = t
	}
	return &SparseEquilibrium{
		C:         c,
		Attackers: attackers,
		K:         k,
		VPSupport: p.IS,
		EdgeU:     us,
		EdgeV:     vs,
		Tuples:    tuples,
	}, nil
}

// SolveKMatchingCSR computes a k-matching NE of Π_k(G) end to end on the
// sparse path: partition search routed by bipartiteness
// (cover.FindNEPartitionCSR), then Algorithm A_tuple. For bipartite
// graphs this is the Theorem 5.1 pipeline at max{O(k·n), O(m√n)} — the
// single-digit-seconds route for 10^6-vertex instances. Allocates the
// equilibrium and the partition scratch.
func SolveKMatchingCSR(c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	return SolveKMatchingCSRCtx(context.Background(), c, attackers, k)
}

// SolveKMatchingCSRCtx is SolveKMatchingCSR under ctx's trace: the whole
// sparse pipeline is timed as the span "core.solve_sparse" with the
// construction nested beneath it as "core.atuple_csr".
func SolveKMatchingCSRCtx(ctx context.Context, c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	sp, ctx := obs.Default().StartSpanCtx(ctx, "core.solve_sparse")
	sp.Annotate("k", strconv.Itoa(k))
	sp.Annotate("n", strconv.Itoa(c.NumVertices()))
	defer sp.End()
	p, err := cover.FindNEPartitionCSR(c)
	if err != nil {
		if errors.Is(err, cover.ErrNoPartition) {
			return nil, fmt.Errorf("%w: %v", ErrNoMatchingNE, err)
		}
		return nil, err
	}
	// The search validated p on the way out, so the construction may
	// trust it — one Validate per solve, not two.
	return algorithmATupleCSRCtx(ctx, c, attackers, k, p, true)
}

// VerifyKMatchingCSR checks — exactly, with loads computed in the
// int64-first rat domain, and without materializing a game.Game — that ne
// is a k-matching mixed Nash equilibrium, auditing every condition of
// Theorem 3.4 plus the Definition 4.1 configuration shape:
//
//   - D(VP) is an independent set and every support vertex is incident to
//     exactly one support edge, which belongs to exactly k·δ/E tuples
//     (Definition 4.1, checked by explicit counting over all tuples);
//   - E(D(tp)) is an edge cover of G and D(VP) a vertex cover of it
//     (condition 1);
//   - every support vertex attains the minimum hit probability, computed
//     for all n vertices by counting covering tuples (condition 2(a));
//   - every support tuple attains the maximum expected load k·ν/|IS|,
//     each tuple load accumulated in rat arithmetic (condition 3(a) — the
//     independent-support maximum of MaxTupleLoad case 1);
//   - the attacker mass on V(D(tp)) is exactly ν (condition 3(b)).
//
// O(n + m + k·δ) time; the O(n) counting scratch is pooled. A nil return
// is a proof of equilibrium; the differential tests cross-check it
// against the dense VerifyCharacterization through ToTupleEquilibrium.
//
// Above verifyParallelGrain vertices the audit runs on the par worker
// budget: the hit-count stamping and tuple-load recomputation are
// embarrassingly parallel over tuples with per-worker stamp arrays and
// rat scratch, partial counts merged in worker order as exact integer
// sums, and every rejection reduced to the smallest violating index —
// the same verdict, and the same error, the serial body produces.
func VerifyKMatchingCSR(ne *SparseEquilibrium) error {
	e := len(ne.EdgeU)
	if ne.Attackers < 1 {
		return fmt.Errorf("%w: attackers=%d", ErrNotEquilibrium, ne.Attackers)
	}
	if len(ne.EdgeV) != e || e == 0 {
		return fmt.Errorf("%w: malformed edge support (%d,%d)", ErrNotEquilibrium, e, len(ne.EdgeV))
	}
	if ne.K < 1 || ne.K > e {
		return fmt.Errorf("%w: k=%d outside 1..%d", ErrNotEquilibrium, ne.K, e)
	}
	if workers := par.Split(par.Workers(0), ne.C.NumVertices(), verifyParallelGrain); workers > 1 {
		if err := verifyKMatchingCSRParallel(ne, workers); err != nil {
			return err
		}
		obsCSRParallelVerifications.Inc()
	} else if err := verifyKMatchingCSRSerial(ne); err != nil {
		return err
	}
	obsCSRVerifications.Inc()
	return nil
}

// verifyKMatchingCSRSerial is the single-threaded audit body — the
// reference the parallel body must match bit for bit.
func verifyKMatchingCSRSerial(ne *SparseEquilibrium) error {
	c := ne.C
	n := c.NumVertices()
	e := len(ne.EdgeU)
	is := ne.VPSupport

	// Support shape: IS ascending, distinct, independent in G.
	inIS := graph.GetBitset(n)
	defer graph.PutBitset(inIS)
	for i, v := range is {
		if v < 0 || int(v) >= n || (i > 0 && is[i-1] >= v) {
			return fmt.Errorf("%w: attacker support not ascending/in-range at %d", ErrNotEquilibrium, v)
		}
		inIS.Set(v)
	}
	for _, v := range is {
		for _, u := range c.Neighbors(int(v)) {
			if inIS.Has(u) {
				return fmt.Errorf("%w: attacker support not independent, edge (%d,%d)", ErrNotEquilibrium, v, u)
			}
		}
	}

	// Edge support: real edges of G, covering every vertex (condition 1),
	// each touching exactly one IS vertex with D(VP) covering every
	// support edge, and IS↔edge incidence a bijection (Definition 4.1(2)).
	incident := par.GetInt32(n)
	defer par.PutInt32(incident)
	clear(incident)
	covered := graph.GetBitset(n)
	defer graph.PutBitset(covered)
	for i := 0; i < e; i++ {
		u, v := ne.EdgeU[i], ne.EdgeV[i]
		if !c.HasEdge(int(u), int(v)) {
			return fmt.Errorf("%w: support edge %d=(%d,%d) is not an edge of G", ErrNotEquilibrium, i, u, v)
		}
		covered.Set(u)
		covered.Set(v)
		touch := 0
		if inIS.Has(u) {
			incident[u]++
			touch++
		}
		if inIS.Has(v) {
			incident[v]++
			touch++
		}
		if touch != 1 {
			return fmt.Errorf("%w: support edge (%d,%d) touches %d IS vertices, want 1", ErrNotEquilibrium, u, v, touch)
		}
	}
	for v := 0; v < n; v++ {
		if !covered.Has(int32(v)) {
			return fmt.Errorf("%w: E(D(tp)) does not cover vertex %d", ErrNotEquilibrium, v)
		}
	}
	for _, v := range is {
		if incident[v] != 1 {
			return fmt.Errorf("%w: support vertex %d incident to %d support edges, want 1", ErrNotEquilibrium, v, incident[v])
		}
	}
	if len(is) != e {
		return fmt.Errorf("%w: |IS|=%d != |E(D(tp))|=%d, incidence is not a bijection", ErrNotEquilibrium, len(is), e)
	}

	// Tuple table: δ tuples of k distinct in-range edges, every edge in
	// exactly r = k·δ/e of them (Definition 4.1(3), explicit count).
	delta := len(ne.Tuples)
	if delta == 0 || (ne.K*delta)%e != 0 {
		return fmt.Errorf("%w: %d tuples of %d edges cannot spread %d support edges evenly", ErrNotEquilibrium, delta, ne.K, e)
	}
	r := ne.K * delta / e
	mult := par.GetInt32(e)
	defer par.PutInt32(mult)
	clear(mult)
	seenEdge := par.GetInt32(e)
	defer par.PutInt32(seenEdge)
	for i := range seenEdge {
		seenEdge[i] = -1
	}
	for ti, t := range ne.Tuples {
		if len(t) != ne.K {
			return fmt.Errorf("%w: tuple %d has %d edges, want k=%d", ErrNotEquilibrium, ti, len(t), ne.K)
		}
		for _, id := range t {
			if id < 0 || int(id) >= e {
				return fmt.Errorf("%w: tuple %d lists edge %d outside support", ErrNotEquilibrium, ti, id)
			}
			if seenEdge[id] == int32(ti) {
				return fmt.Errorf("%w: tuple %d repeats edge %d", ErrNotEquilibrium, ti, id)
			}
			seenEdge[id] = int32(ti)
			mult[id]++
		}
	}
	for id, m := range mult {
		if m != int32(r) {
			return fmt.Errorf("%w: edge %d occurs in %d tuples, others in %d", ErrNotEquilibrium, id, m, r)
		}
	}

	// Condition 2(a): hit counts for all n vertices — hitCount[v]·(1/δ) is
	// P(Hit(v)); support vertices must attain the minimum. Counts are
	// exact, so the comparison stays in integers over the common
	// denominator δ.
	hitCount := par.GetInt32(n)
	defer par.PutInt32(hitCount)
	clear(hitCount)
	stamp := par.GetInt32(n)
	defer par.PutInt32(stamp)
	for i := range stamp {
		stamp[i] = -1
	}
	for ti, t := range ne.Tuples {
		for _, id := range t {
			for _, v := range [2]int32{ne.EdgeU[id], ne.EdgeV[id]} {
				if stamp[v] != int32(ti) {
					stamp[v] = int32(ti)
					hitCount[v]++
				}
			}
		}
	}
	minHit := hitCount[0]
	for _, h := range hitCount[1:] {
		if h < minHit {
			minHit = h
		}
	}
	for _, v := range is {
		if hitCount[v] != minHit {
			return fmt.Errorf("%w: support vertex %d has hit probability %d/%d > min %d/%d",
				ErrNotEquilibrium, v, hitCount[v], delta, minHit, delta)
		}
	}

	// Condition 3(a): each IS vertex carries load ν/|IS| (uniform
	// attackers on IS), so the loads are supported on an independent set
	// and the maximum tuple load is the k largest loads: k·ν/|IS|
	// (MaxTupleLoad case 1; k <= |IS| holds by the bijection). Every
	// support tuple must attain it — accumulated in the rat domain, where
	// these small fractions stay on the allocation-free int64 path.
	var perVertex, want, tupleLoad rat.Rat
	perVertex.SetFrac64(int64(ne.Attackers), int64(len(is)))
	want.SetFrac64(int64(ne.K)*int64(ne.Attackers), int64(len(is)))
	for ti, t := range ne.Tuples {
		tupleLoad.SetInt64(0)
		for _, id := range t {
			for _, v := range [2]int32{ne.EdgeU[id], ne.EdgeV[id]} {
				if inIS.Has(v) {
					// Distinct edges touch distinct IS vertices (the
					// bijection), so no double counting inside a tuple.
					tupleLoad.Add(&tupleLoad, &perVertex)
				}
			}
		}
		if tupleLoad.Cmp(&want) != 0 {
			return fmt.Errorf("%w: tuple %d has load %v < max %v", ErrNotEquilibrium, ti, tupleLoad.Big(), want.Big())
		}
	}

	// Condition 3(b): the attacker mass on V(D(tp)) is exactly ν. Every
	// support edge lies in some tuple (r >= 1), so V(D(tp)) is the set of
	// support endpoints; summing ν/|IS| over its IS members must give ν.
	var mass, nu rat.Rat
	nu.SetInt64(int64(ne.Attackers))
	for _, v := range is {
		if hitCount[v] > 0 {
			mass.Add(&mass, &perVertex)
		}
	}
	if mass.Cmp(&nu) != 0 {
		return fmt.Errorf("%w: attacker mass on V(D(tp)) is %v, want ν=%v", ErrNotEquilibrium, mass.Big(), nu.Big())
	}
	return nil
}

// verifyKMatchingCSRParallel is the multicore audit body. Every block
// mirrors the serial reference: scans fan out over contiguous chunks,
// per-worker partials (hit counts, stamps, multiplicities) merge in
// worker order as integer sums — which are order-invariant — and a
// failing block reduces its per-worker faults to the smallest index,
// reproducing the serial error exactly. Shared marks (covered set,
// IS-incidence counts) use atomic claims whose final state is
// scheduling-independent.
func verifyKMatchingCSRParallel(ne *SparseEquilibrium, workers int) error {
	c := ne.C
	n := c.NumVertices()
	e := len(ne.EdgeU)
	is := ne.VPSupport
	faults := make([]par.Fault, workers)
	reset := func() {
		for i := range faults {
			faults[i] = par.Fault{}
		}
	}

	// Support shape: ascending/distinct is a sequential relation — the
	// serial scan is O(|IS|) and stays — but the independence audit reads
	// the finished bitset only, so it fans out.
	inIS := graph.GetBitset(n)
	defer graph.PutBitset(inIS)
	for i, v := range is {
		if v < 0 || int(v) >= n || (i > 0 && is[i-1] >= v) {
			return fmt.Errorf("%w: attacker support not ascending/in-range at %d", ErrNotEquilibrium, v)
		}
		inIS.Set(v)
	}
	par.For(par.Split(workers, len(is), verifyParallelGrain), len(is), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := is[i]
			for _, u := range c.Neighbors(int(v)) {
				if inIS.Has(u) {
					faults[w] = par.Fault{At: i, Err: fmt.Errorf("%w: attacker support not independent, edge (%d,%d)", ErrNotEquilibrium, v, u)}
					return
				}
			}
		}
	})
	if err := par.FirstFault(faults); err != nil {
		return err
	}

	// Edge support, fanned out over edges: membership and touch checks
	// are per-edge; the covered set and IS-incidence counters are shared
	// marks under atomic claim/add.
	incident := par.GetInt32(n)
	defer par.PutInt32(incident)
	clear(incident)
	covered := graph.GetBitset(n)
	defer graph.PutBitset(covered)
	reset()
	par.For(par.Split(workers, e, verifyParallelGrain), e, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			u, v := ne.EdgeU[i], ne.EdgeV[i]
			if !c.HasEdge(int(u), int(v)) {
				faults[w] = par.Fault{At: i, Err: fmt.Errorf("%w: support edge %d=(%d,%d) is not an edge of G", ErrNotEquilibrium, i, u, v)}
				return
			}
			covered.SetAtomic(u)
			covered.SetAtomic(v)
			touch := 0
			if inIS.Has(u) {
				atomic.AddInt32(&incident[u], 1)
				touch++
			}
			if inIS.Has(v) {
				atomic.AddInt32(&incident[v], 1)
				touch++
			}
			if touch != 1 {
				faults[w] = par.Fault{At: i, Err: fmt.Errorf("%w: support edge (%d,%d) touches %d IS vertices, want 1", ErrNotEquilibrium, u, v, touch)}
				return
			}
		}
	})
	if err := par.FirstFault(faults); err != nil {
		return err
	}
	reset()
	par.For(workers, n, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			if !covered.Has(int32(v)) {
				faults[w] = par.Fault{At: v, Err: fmt.Errorf("%w: E(D(tp)) does not cover vertex %d", ErrNotEquilibrium, v)}
				return
			}
		}
	})
	if err := par.FirstFault(faults); err != nil {
		return err
	}
	reset()
	par.For(par.Split(workers, len(is), verifyParallelGrain), len(is), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := is[i]; incident[v] != 1 {
				faults[w] = par.Fault{At: i, Err: fmt.Errorf("%w: support vertex %d incident to %d support edges, want 1", ErrNotEquilibrium, v, incident[v])}
				return
			}
		}
	})
	if err := par.FirstFault(faults); err != nil {
		return err
	}
	if len(is) != e {
		return fmt.Errorf("%w: |IS|=%d != |E(D(tp))|=%d, incidence is not a bijection", ErrNotEquilibrium, len(is), e)
	}

	// Tuple table, fanned out over tuples: each tuple is audited whole by
	// one worker against its own seen-stamp array, and the per-worker
	// multiplicity histograms merge in worker order.
	delta := len(ne.Tuples)
	if delta == 0 || (ne.K*delta)%e != 0 {
		return fmt.Errorf("%w: %d tuples of %d edges cannot spread %d support edges evenly", ErrNotEquilibrium, delta, ne.K, e)
	}
	r := ne.K * delta / e
	tupleWorkers := par.Split(workers, delta, max(1, verifyParallelGrain/max(ne.K, 1)))
	mults := make([][]int32, tupleWorkers)
	reset()
	par.For(tupleWorkers, delta, func(w, lo, hi int) {
		mult := par.GetInt32(e)
		clear(mult)
		mults[w] = mult
		seenEdge := par.GetInt32(e)
		defer par.PutInt32(seenEdge)
		for i := range seenEdge {
			seenEdge[i] = -1
		}
		for ti := lo; ti < hi; ti++ {
			t := ne.Tuples[ti]
			if len(t) != ne.K {
				faults[w] = par.Fault{At: ti, Err: fmt.Errorf("%w: tuple %d has %d edges, want k=%d", ErrNotEquilibrium, ti, len(t), ne.K)}
				return
			}
			for _, id := range t {
				if id < 0 || int(id) >= e {
					faults[w] = par.Fault{At: ti, Err: fmt.Errorf("%w: tuple %d lists edge %d outside support", ErrNotEquilibrium, ti, id)}
					return
				}
				if seenEdge[id] == int32(ti) {
					faults[w] = par.Fault{At: ti, Err: fmt.Errorf("%w: tuple %d repeats edge %d", ErrNotEquilibrium, ti, id)}
					return
				}
				seenEdge[id] = int32(ti)
				mult[id]++
			}
		}
	})
	err := par.FirstFault(faults)
	if err == nil {
		mult := mults[0]
		par.For(par.Split(workers, e, verifyParallelGrain), e, func(w, lo, hi int) {
			for id := lo; id < hi; id++ {
				var m int32
				for _, part := range mults {
					m += part[id]
				}
				mult[id] = m
				if m != int32(r) && faults[w].Err == nil {
					faults[w] = par.Fault{At: id, Err: fmt.Errorf("%w: edge %d occurs in %d tuples, others in %d", ErrNotEquilibrium, id, m, r)}
				}
			}
		})
		err = par.FirstFault(faults)
	}
	for _, m := range mults {
		par.PutInt32(m)
	}
	if err != nil {
		return err
	}

	// Condition 2(a), fanned out over tuples: per-worker hit counts under
	// per-worker stamps — a vertex hit by tuples in two chunks is counted
	// once per chunk and the counts add — then an order-invariant integer
	// merge and a parallel min reduction.
	hitCount := par.GetInt32(n)
	defer par.PutInt32(hitCount)
	hits := make([][]int32, tupleWorkers)
	par.For(tupleWorkers, delta, func(w, lo, hi int) {
		count := par.GetInt32(n)
		clear(count)
		hits[w] = count
		stamp := par.GetInt32(n)
		defer par.PutInt32(stamp)
		for i := range stamp {
			stamp[i] = -1
		}
		for ti := lo; ti < hi; ti++ {
			for _, id := range ne.Tuples[ti] {
				for _, v := range [2]int32{ne.EdgeU[id], ne.EdgeV[id]} {
					if stamp[v] != int32(ti) {
						stamp[v] = int32(ti)
						count[v]++
					}
				}
			}
		}
	})
	mins := make([]int32, workers)
	for i := range mins {
		// Neutral element: a worker left without a chunk (For clamps its
		// fan-out to the range length) must not drag the minimum to 0.
		mins[i] = 1<<31 - 1
	}
	par.For(workers, n, func(w, lo, hi int) {
		m := int32(1<<31 - 1)
		for v := lo; v < hi; v++ {
			var h int32
			for _, part := range hits {
				h += part[v]
			}
			hitCount[v] = h
			if h < m {
				m = h
			}
		}
		mins[w] = m
	})
	for _, h := range hits {
		par.PutInt32(h)
	}
	minHit := mins[0]
	for _, m := range mins[1:] {
		if m < minHit {
			minHit = m
		}
	}
	reset()
	par.For(par.Split(workers, len(is), verifyParallelGrain), len(is), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := is[i]; hitCount[v] != minHit {
				faults[w] = par.Fault{At: i, Err: fmt.Errorf("%w: support vertex %d has hit probability %d/%d > min %d/%d",
					ErrNotEquilibrium, v, hitCount[v], delta, minHit, delta)}
				return
			}
		}
	})
	if err := par.FirstFault(faults); err != nil {
		return err
	}

	// Condition 3(a), fanned out over tuples with per-worker rat scratch;
	// each tuple's load is recomputed exactly as in the serial body, in
	// the int64-first rat domain.
	var perVertex, want rat.Rat
	perVertex.SetFrac64(int64(ne.Attackers), int64(len(is)))
	want.SetFrac64(int64(ne.K)*int64(ne.Attackers), int64(len(is)))
	reset()
	par.For(tupleWorkers, delta, func(w, lo, hi int) {
		var tupleLoad rat.Rat
		for ti := lo; ti < hi; ti++ {
			tupleLoad.SetInt64(0)
			for _, id := range ne.Tuples[ti] {
				for _, v := range [2]int32{ne.EdgeU[id], ne.EdgeV[id]} {
					if inIS.Has(v) {
						// Distinct edges touch distinct IS vertices (the
						// bijection), so no double counting inside a tuple.
						tupleLoad.Add(&tupleLoad, &perVertex)
					}
				}
			}
			if tupleLoad.Cmp(&want) != 0 {
				faults[w] = par.Fault{At: ti, Err: fmt.Errorf("%w: tuple %d has load %v < max %v", ErrNotEquilibrium, ti, tupleLoad.Big(), want.Big())}
				return
			}
		}
	})
	if err := par.FirstFault(faults); err != nil {
		return err
	}

	// Condition 3(b): count the hit IS vertices with per-worker integer
	// partials, then compare count·(ν/|IS|) — the same exact rational the
	// serial body accumulates term by term — against ν.
	counts := make([]int64, workers)
	par.For(workers, len(is), func(w, lo, hi int) {
		var cnt int64
		for i := lo; i < hi; i++ {
			if hitCount[is[i]] > 0 {
				cnt++
			}
		}
		counts[w] = cnt
	})
	var hit int64
	for _, cnt := range counts {
		hit += cnt
	}
	var mass, nu rat.Rat
	nu.SetInt64(int64(ne.Attackers))
	mass.SetFrac64(hit*int64(ne.Attackers), int64(len(is)))
	if mass.Cmp(&nu) != 0 {
		return fmt.Errorf("%w: attacker mass on V(D(tp)) is %v, want ν=%v", ErrNotEquilibrium, mass.Big(), nu.Big())
	}
	return nil
}

// ToTupleEquilibrium expands the sparse equilibrium into the dense
// TupleEquilibrium form, materializing the game.Game — the bridge the
// differential tests use to replay a sparse solve through
// BuildKMatchingNE and VerifyCharacterization. Θ(n·m) game tables: small
// graphs only, never the 10^6-vertex path. Allocates the full game.
func (ne *SparseEquilibrium) ToTupleEquilibrium() (TupleEquilibrium, error) {
	g := ne.C.ToGraph()
	vp := make([]int, len(ne.VPSupport))
	for i, v := range ne.VPSupport {
		vp[i] = int(v)
	}
	tuples := make([]game.Tuple, len(ne.Tuples))
	for i, t := range ne.Tuples {
		edges := make([]graph.Edge, len(t))
		for j, id := range t {
			edges[j] = graph.NewEdge(int(ne.EdgeU[id]), int(ne.EdgeV[id]))
		}
		tuple, err := game.NewTuple(g, edges)
		if err != nil {
			return TupleEquilibrium{}, fmt.Errorf("core: sparse tuple %d: %w", i, err)
		}
		tuples[i] = tuple
	}
	return BuildKMatchingNE(g, ne.Attackers, ne.K, vp, tuples)
}

// SolveKMatchingCSRVerified is the scaling pipeline's entry point: solve
// and then immediately audit the result with VerifyKMatchingCSR, so every
// benchmark row carries a Theorem 3.4 proof, not just a construction.
// Cost is one solve plus one O(n + m + k·δ) verification.
func SolveKMatchingCSRVerified(c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	return SolveKMatchingCSRVerifiedCtx(context.Background(), c, attackers, k)
}

// SolveKMatchingCSRVerifiedCtx is SolveKMatchingCSRVerified with ctx
// threaded into the solve for trace correlation.
func SolveKMatchingCSRVerifiedCtx(ctx context.Context, c *graph.CSR, attackers, k int) (*SparseEquilibrium, error) {
	ne, err := SolveKMatchingCSRCtx(ctx, c, attackers, k)
	if err != nil {
		return nil, err
	}
	if err := VerifyKMatchingCSR(ne); err != nil {
		return nil, fmt.Errorf("core: sparse solve failed its own audit: %w", err)
	}
	return ne, nil
}
