package core

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
)

// bipartiteFamilies is the shared stable of graphs used across the
// equilibrium tests — all admit matching equilibria via the König route.
func bipartiteFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"K2":        graph.Path(2),
		"path5":     graph.Path(5),
		"path8":     graph.Path(8),
		"C6":        graph.Cycle(6),
		"C10":       graph.Cycle(10),
		"star9":     graph.Star(9),
		"K34":       graph.CompleteBipartite(3, 4),
		"K55":       graph.CompleteBipartite(5, 5),
		"grid34":    graph.Grid(3, 4),
		"hypercube": graph.Hypercube(3),
		"tree20":    graph.RandomTree(20, 7),
		"randbip":   graph.RandomBipartite(6, 9, 0.3, 11),
	}
}

func TestAlgorithmAOnBipartiteFamilies(t *testing.T) {
	for name, g := range bipartiteFamilies(t) {
		t.Run(name, func(t *testing.T) {
			p, err := cover.FindNEPartitionBipartite(g)
			if err != nil {
				t.Fatalf("partition: %v", err)
			}
			ne, err := AlgorithmA(g, 3, p)
			if err != nil {
				t.Fatalf("AlgorithmA: %v", err)
			}
			// The real test: the produced profile is an exact NE.
			if err := VerifyNE(ne.Game, ne.Profile); err != nil {
				t.Fatalf("not a NE: %v", err)
			}
			if err := VerifyCharacterization(ne.Game, ne.Profile); err != nil {
				t.Fatalf("characterization fails: %v", err)
			}
			// Matching-configuration shape (Definition 2.2 via the k=1
			// specialization of Definition 4.1, Observation 4.1).
			if err := CheckKMatchingConfiguration(ne.Game, ne.Profile); err != nil {
				t.Fatalf("not a matching configuration: %v", err)
			}
			// |EC| = |IS| (each IS vertex on exactly one support edge).
			if len(ne.EdgeSupport) != len(ne.VPSupport) {
				t.Errorf("|EC| = %d, |IS| = %d", len(ne.EdgeSupport), len(ne.VPSupport))
			}
			// Gain formula ν/|IS| (equation (11)).
			want := big.NewRat(int64(ne.Game.Attackers()), int64(len(ne.VPSupport)))
			if got := ne.DefenderGain(); got.Cmp(want) != 0 {
				t.Errorf("gain = %v, want %v", got, want)
			}
		})
	}
}

func TestAlgorithmARejectsBadPartition(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := AlgorithmA(g, 1, cover.Partition{IS: []int{0, 1}, VC: []int{2, 3}}); err == nil {
		t.Error("adjacent IS must be rejected")
	}
	if _, err := AlgorithmA(g, 1, cover.Partition{IS: []int{0}, VC: []int{1, 2, 3}}); err == nil {
		t.Error("non-expander partition must be rejected")
	}
}

func TestAlgorithmAIgnoresStaleRep(t *testing.T) {
	// A partition whose Rep is nil forces recomputation of the SDR.
	g := graph.Cycle(6)
	p := cover.Partition{IS: []int{0, 2, 4}, VC: []int{1, 3, 5}}
	ne, err := AlgorithmA(g, 2, p)
	if err != nil {
		t.Fatalf("AlgorithmA: %v", err)
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEdgeModel(t *testing.T) {
	// Bipartite route.
	ne, err := SolveEdgeModel(graph.Grid(3, 3), 5)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
	// Proven non-existence (K4 has no IS/expander partition).
	if _, err := SolveEdgeModel(graph.Complete(4), 1); !errors.Is(err, ErrNoMatchingNE) {
		t.Errorf("K4: err = %v, want ErrNoMatchingNE", err)
	}
	// Odd cycles likewise.
	if _, err := SolveEdgeModel(graph.Cycle(7), 1); !errors.Is(err, ErrNoMatchingNE) {
		t.Errorf("C7: err = %v, want ErrNoMatchingNE", err)
	}
}

func TestSolveEdgeModelNonBipartitePositive(t *testing.T) {
	// Triangle with pendants on two corners admits a matching NE:
	// IS = {3, 4, 2}? No — 2 is adjacent to both corners... the exact
	// search will find whatever works; just verify the output.
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ne, err := SolveEdgeModel(g, 2)
	if err != nil {
		t.Fatalf("SolveEdgeModel: %v", err)
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
	if !cover.IsIndependentSet(g, ne.VPSupport) {
		t.Error("support must be independent")
	}
}

func TestMatchingNEUniformHitOnSupport(t *testing.T) {
	// Claims 4.3/4.4 at k=1: support vertices are hit with probability
	// 1/|EC|, all others at least that.
	g := graph.CompleteBipartite(2, 5)
	ne, err := SolveEdgeModel(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	hit := ne.Game.HitProbabilities(ne.Profile)
	want := big.NewRat(1, int64(len(ne.EdgeSupport)))
	for _, v := range ne.VPSupport {
		if hit[v].Cmp(want) != 0 {
			t.Errorf("Hit(%d) = %v, want %v", v, hit[v], want)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if hit[v].Cmp(want) < 0 {
			t.Errorf("Hit(%d) = %v below support level %v", v, hit[v], want)
		}
	}
}
