package core

import (
	"fmt"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// This file implements the two directions of Theorem 4.5: the polynomial-
// time reductions between matching equilibria of the Edge model Π_1(G) and
// k-matching equilibria of the Tuple model Π_k(G). Corollaries 4.7 and 4.10
// — IP_tp(s) = k · IP_tp(s') — are exposed through the DefenderGain methods
// of the two equilibrium types and asserted by the tests.

// LiftToTupleModel is Lemma 4.8: from a matching mixed NE s' of Π_1(G),
// construct a k-matching mixed NE s of Π_k(G) by labeling D_s'(tp)
// consecutively, forming the δ = E/gcd(E,k) cyclic k-windows as the tuple
// support, keeping D(VP) = D_s'(vp), and playing uniformly.
func LiftToTupleModel(ne EdgeEquilibrium, k int) (TupleEquilibrium, error) {
	g := ne.Game.Graph()
	if k < 1 {
		return TupleEquilibrium{}, fmt.Errorf("core: lift: k must be positive, got %d", k)
	}
	if k > len(ne.EdgeSupport) {
		return TupleEquilibrium{}, fmt.Errorf("%w: k=%d > |E(D(tp))|=%d", ErrKTooLarge, k, len(ne.EdgeSupport))
	}
	ids := make([]int, len(ne.EdgeSupport))
	for i, e := range ne.EdgeSupport {
		id := g.EdgeID(e)
		if id < 0 {
			return TupleEquilibrium{}, fmt.Errorf("core: lift: support edge %v not in graph", e)
		}
		ids[i] = id
	}
	tuples, err := CyclicTuples(g, ids, k)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	kne, err := BuildKMatchingNE(g, ne.Game.Attackers(), k, ne.VPSupport, tuples)
	if err != nil {
		return TupleEquilibrium{}, fmt.Errorf("core: lift to Π_%d: %w", k, err)
	}
	// Preserve the labeling order of the source equilibrium so that
	// round-tripping is the identity on supports.
	kne.EdgeSupport = append([]graph.Edge(nil), ne.EdgeSupport...)
	return kne, nil
}

// ReduceToEdgeModel is Lemma 4.6: from a k-matching mixed NE s of Π_k(G),
// construct a matching mixed NE s' of Π_1(G) with D_s'(vp) := D_s(VP) and
// D_s'(tp) := E(D_s(tp)), both played uniformly.
func ReduceToEdgeModel(kne TupleEquilibrium) (EdgeEquilibrium, error) {
	g := kne.Game.Graph()
	gm, err := game.New(g, kne.Game.Attackers(), 1)
	if err != nil {
		return EdgeEquilibrium{}, err
	}
	profile, err := uniformProfile(gm, kne.VPSupport, edgesAsTuples(g, kne.EdgeSupport))
	if err != nil {
		return EdgeEquilibrium{}, err
	}
	ne := EdgeEquilibrium{
		Game:        gm,
		Profile:     profile,
		VPSupport:   append([]int(nil), kne.VPSupport...),
		EdgeSupport: append([]graph.Edge(nil), kne.EdgeSupport...),
	}
	// The construction is guaranteed by Lemma 4.6; re-check the matching
	// configuration conditions to fail loudly on malformed input.
	if err := CheckKMatchingConfiguration(gm, profile); err != nil {
		return EdgeEquilibrium{}, fmt.Errorf("core: reduce to Π_1: %w", err)
	}
	if err := checkCoverConditions(gm, profile); err != nil {
		return EdgeEquilibrium{}, fmt.Errorf("core: reduce to Π_1: %w", err)
	}
	return ne, nil
}
