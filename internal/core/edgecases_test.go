package core

import (
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// Boundary instances that exercise the degenerate corners of every
// construction at once.

func TestSmallestInstanceK2(t *testing.T) {
	// K2, one attacker, k = 1 = m: the only edge covers everything.
	g := graph.Path(2)
	ne, err := SolveTupleModel(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCharacterization(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
	if ne.DefenderGain().Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("gain = %v, want 1 (certain catch)", ne.DefenderGain())
	}
	if ne.HitProbability().Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("hit = %v, want 1", ne.HitProbability())
	}
	// Pure NE exists too (k = ρ = 1).
	has, err := HasPureNE(g, 1)
	if err != nil || !has {
		t.Errorf("HasPureNE = (%v, %v), want true", has, err)
	}
}

func TestDisconnectedBipartiteInstance(t *testing.T) {
	// Three disjoint edges: disconnected, bipartite, no isolated vertices.
	// The theory only needs the absence of isolated vertices; everything
	// must work across components.
	g := graph.PerfectMatchingGraph(6)
	for k := 1; k <= 3; k++ {
		ne, err := SolveTupleModel(g, 4, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := VerifyNE(ne.Game, ne.Profile); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := big.NewRat(int64(k)*4, int64(len(ne.VPSupport)))
		if ne.DefenderGain().Cmp(want) != 0 {
			t.Errorf("k=%d: gain %v, want %v", k, ne.DefenderGain(), want)
		}
	}
	// The perfect-matching construction also covers this instance.
	pm, err := PerfectMatchingNE(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNE(pm.Game, pm.Profile); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedMixedComponents(t *testing.T) {
	// An even cycle next to a star: bipartite, disconnected.
	g, _ := graph.DisjointUnion(graph.Cycle(4), graph.Star(4))
	ne, err := SolveTupleModel(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCharacterization(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
	// The edge support must span both components (it is an edge cover).
	touched := make(map[int]bool)
	for _, e := range ne.EdgeSupport {
		touched[e.U] = true
		touched[e.V] = true
	}
	if len(touched) != g.NumVertices() {
		t.Errorf("edge support covers %d of %d vertices", len(touched), g.NumVertices())
	}
}

func TestSingleAttackerManyEdgesOfPower(t *testing.T) {
	// k = |EC| exactly: hit probability 1 everywhere on the support —
	// every attacker is caught with certainty.
	g := graph.CompleteBipartite(2, 5)
	base, err := SolveTupleModel(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := len(base.EdgeSupport)
	ne, err := SolveTupleModel(g, 1, k)
	if err != nil {
		t.Fatal(err)
	}
	if ne.HitProbability().Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("hit = %v, want 1 at k = |EC|", ne.HitProbability())
	}
	if len(ne.Tuples) != 1 {
		t.Errorf("δ = %d, want 1 (single tuple containing every support edge)", len(ne.Tuples))
	}
}

func TestLargeAttackerPopulation(t *testing.T) {
	// ν = 10000 attackers stress the rational arithmetic but change
	// nothing structurally.
	g := graph.Grid(3, 3)
	ne, err := SolveTupleModel(g, 10_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
	want := big.NewRat(2*10_000, int64(len(ne.VPSupport)))
	if ne.DefenderGain().Cmp(want) != 0 {
		t.Errorf("gain = %v, want %v", ne.DefenderGain(), want)
	}
}

func TestStarExtremes(t *testing.T) {
	// Stars maximize |IS|/n: the defender's per-k protection is the
	// weakest possible among connected graphs of the same order.
	g := graph.Star(50)
	ne, err := SolveTupleModel(g, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ne.VPSupport) != 49 {
		t.Errorf("|IS| = %d, want 49 leaves", len(ne.VPSupport))
	}
	if ne.HitProbability().Cmp(big.NewRat(1, 49)) != 0 {
		t.Errorf("hit = %v, want 1/49", ne.HitProbability())
	}
	if err := VerifyNE(ne.Game, ne.Profile); err != nil {
		t.Fatal(err)
	}
}
