package core

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// TestGameValueMatchesKMatchingPrediction is the oracle cross-check: for
// ν = 1 the game is constant-sum, so the LP minimax value must equal the
// k-matching equilibrium's hit probability k/|E(D(tp))| wherever such an
// equilibrium exists — the LP knows nothing about matchings.
func TestGameValueMatchesKMatchingPrediction(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		maxK int
	}{
		{"K2", graph.Path(2), 1},
		{"path4", graph.Path(4), 2},
		{"path5", graph.Path(5), 2},
		{"C6", graph.Cycle(6), 3},
		{"C8", graph.Cycle(8), 2},
		{"star5", graph.Star(5), 2},
		{"K33", graph.CompleteBipartite(3, 3), 2},
		{"grid23", graph.Grid(2, 3), 2},
		{"tree8", graph.RandomTree(8, 3), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for k := 1; k <= tt.maxK && k <= tt.g.NumEdges(); k++ {
				ne, err := SolveTupleModel(tt.g, 1, k)
				if errors.Is(err, ErrKTooLarge) {
					continue
				}
				if err != nil {
					t.Fatalf("k=%d solve: %v", k, err)
				}
				value, _, _, err := GameValue(tt.g, k)
				if err != nil {
					t.Fatalf("k=%d value: %v", k, err)
				}
				if value.Cmp(ne.HitProbability()) != 0 {
					t.Errorf("k=%d: LP value %v != k-matching prediction %v",
						k, value, ne.HitProbability())
				}
			}
		})
	}
}

// TestGameValueOnNonMatchingGraphs: graphs with no k-matching equilibrium
// still have a minimax value; for regular graphs at k=1 it must match the
// regular-graph equilibrium's hit probability d/m = 2/n.
func TestGameValueOnNonMatchingGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want *big.Rat
	}{
		{"C5", graph.Cycle(5), big.NewRat(2, 5)},
		{"C7", graph.Cycle(7), big.NewRat(2, 7)},
		{"K4", graph.Complete(4), big.NewRat(1, 2)},
		{"K5", graph.Complete(5), big.NewRat(2, 5)},
		{"petersen", graph.Petersen(), big.NewRat(1, 5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			value, _, _, err := GameValue(tt.g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if value.Cmp(tt.want) != 0 {
				t.Errorf("value = %v, want %v", value, tt.want)
			}
		})
	}
}

// TestGameValuePerfectMatchingPrediction: at any k <= n/2 on a graph with
// a perfect matching, the LP value must be >= the perfect-matching
// equilibrium hit probability 2k/n... in fact equal, since for ν=1 all
// equilibria share the value.
func TestGameValuePerfectMatchingPrediction(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"C6", graph.Cycle(6)},
		{"K4", graph.Complete(4)},
		{"Q3", graph.Hypercube(3)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			for k := 1; k <= 2; k++ {
				ne, err := PerfectMatchingNE(tt.g, 1, k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				value, _, _, err := GameValue(tt.g, k)
				if err != nil {
					t.Fatal(err)
				}
				want := ne.HitProbability()
				if value.Cmp(want) != 0 {
					t.Errorf("k=%d: LP value %v != PM prediction %v", k, value, want)
				}
			}
		})
	}
}

// TestGameValueIncreasingInK: more defender power can never decrease the
// minimax value (the defender can always ignore extra edges... formally,
// any (k)-tuple extends to a (k+1)-tuple covering at least as much).
func TestGameValueIncreasingInK(t *testing.T) {
	g := graph.Cycle(5)
	prev := new(big.Rat)
	for k := 1; k <= g.NumEdges(); k++ {
		value, _, _, err := GameValue(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if value.Cmp(prev) < 0 {
			t.Errorf("value decreased at k=%d: %v < %v", k, value, prev)
		}
		prev = value
	}
	// At k = m the defender covers everything: value 1.
	if prev.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("value at k=m is %v, want 1", prev)
	}
}

// TestDefenderStrategyFromValueIsEquilibrium: the oracle's defender
// strategy, paired with an attacker best response, verifies as an exact NE
// via the Theorem 3.4 machinery.
func TestDefenderStrategyFromValueIsEquilibrium(t *testing.T) {
	g := graph.Cycle(5) // no k-matching NE exists; LP finds the NE anyway
	value, ts, err := DefenderStrategyFromValue(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := game.New(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker best response: uniform over minimum-hit vertices.
	probe := game.NewSymmetricProfile(1, game.UniformVertexStrategy([]int{0}), ts)
	hit := gm.HitProbabilities(probe)
	minHit := new(big.Rat).Set(hit[0])
	for _, h := range hit[1:] {
		if h.Cmp(minHit) < 0 {
			minHit.Set(h)
		}
	}
	if minHit.Cmp(value) != 0 {
		t.Fatalf("defender strategy guarantees %v, value is %v", minHit, value)
	}
	var support []int
	for v, h := range hit {
		if h.Cmp(minHit) == 0 {
			support = append(support, v)
		}
	}
	mp := game.NewSymmetricProfile(1, game.UniformVertexStrategy(support), ts)
	if err := VerifyNE(gm, mp); err != nil {
		t.Errorf("LP-derived profile is not an equilibrium: %v", err)
	}
}

func TestGameValueErrors(t *testing.T) {
	if _, _, _, err := GameValue(graph.New(0), 1); err == nil {
		t.Error("empty graph must fail")
	}
	iso := graph.New(3)
	if err := iso.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := GameValue(iso, 1); !errors.Is(err, game.ErrIsolatedVertex) {
		t.Errorf("err = %v, want ErrIsolatedVertex", err)
	}
	if _, _, _, err := GameValue(graph.Path(3), 5); !errors.Is(err, game.ErrBadK) {
		t.Errorf("err = %v, want ErrBadK", err)
	}
	if _, _, _, err := GameValue(graph.Complete(30), 6); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("err = %v, want ErrValueTooLarge", err)
	}
}

func TestEnumerateTuples(t *testing.T) {
	g := graph.Cycle(5)
	tuples := EnumerateTuples(g, 2)
	if len(tuples) != 10 { // C(5,2)
		t.Fatalf("C(5,2) = %d, want 10", len(tuples))
	}
	seen := make(map[string]bool)
	for _, tp := range tuples {
		if tp.Size() != 2 {
			t.Fatalf("tuple %v has size %d", tp, tp.Size())
		}
		if seen[tp.Key()] {
			t.Fatalf("duplicate tuple %v", tp)
		}
		seen[tp.Key()] = true
	}
}
