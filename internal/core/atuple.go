package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
)

// ErrKTooLarge is returned when k exceeds the size of the constructed edge
// support |E(D(tp))| = |IS|: tuples of k distinct edges cannot then be drawn
// from the support, so no k-matching equilibrium with this support exists.
// (The paper assumes k <= |D_s'(tp)| implicitly: Claim 4.3 yields hit
// probability k/|E(D(tp))|, which must not exceed 1.)
var ErrKTooLarge = errors.New("core: k exceeds the matching-equilibrium edge support size")

// AlgorithmATuple is the paper's Algorithm A_tuple (Figure 1): given a
// partition of V(G) into an independent set IS and VC = V \ IS with G a
// VC-expander, it
//
//  1. runs Algorithm A on Π_1(G) to obtain a matching NE s',
//  2. labels the edges of D_s'(tp) consecutively,
//  3. forms the set T of cyclic k-windows over those edges (CyclicTuples),
//  4. takes D(VP) := IS and D(tp) := T,
//  5. assigns the uniform distributions of Lemma 4.1.
//
// The result is a k-matching mixed Nash equilibrium of Π_k(G) (Theorem
// 4.12) computed in O(k·n) time after step 1 (Theorem 4.13).
func AlgorithmATuple(g *graph.Graph, attackers, k int, p cover.Partition) (TupleEquilibrium, error) {
	edgeNE, err := AlgorithmA(g, attackers, p)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	return LiftToTupleModel(edgeNE, k)
}

// SolveTupleModel computes a k-matching NE of Π_k(G) end to end: it finds a
// partition (cover.FindNEPartition) and runs Algorithm A_tuple. For
// bipartite graphs this is the paper's Theorem 5.1 pipeline with total cost
// max{O(k·n), O(m√n)}.
func SolveTupleModel(g *graph.Graph, attackers, k int) (TupleEquilibrium, error) {
	return SolveTupleModelCtx(context.Background(), g, attackers, k)
}

// SolveTupleModelCtx is SolveTupleModel under ctx's trace: the partition
// search plus construction is timed as the span "core.solve_tuple",
// nested under the caller's span when ctx carries one.
func SolveTupleModelCtx(ctx context.Context, g *graph.Graph, attackers, k int) (TupleEquilibrium, error) {
	sp, _ := obs.Default().StartSpanCtx(ctx, "core.solve_tuple")
	sp.Annotate("k", strconv.Itoa(k))
	defer sp.End()
	p, err := cover.FindNEPartition(g)
	if err != nil {
		if errors.Is(err, cover.ErrNoPartition) {
			return TupleEquilibrium{}, fmt.Errorf("%w: %v", ErrNoMatchingNE, err)
		}
		return TupleEquilibrium{}, err
	}
	return AlgorithmATuple(g, attackers, k, p)
}

// AdmitsKMatchingNE decides the characterization of Corollary 4.11: Π_k(G)
// admits a k-matching NE iff V(G) partitions into an independent set IS and
// VC with G a VC-expander. The returned error distinguishes proven
// non-existence (ErrNoMatchingNE) from a heuristic give-up
// (cover.ErrPartitionNotFound); the partition is returned on success.
//
// Note the characterization is independent of k; availability of tuples of
// k distinct support edges additionally needs k <= |IS| (ErrKTooLarge is
// reported by the constructions when violated).
func AdmitsKMatchingNE(g *graph.Graph) (cover.Partition, error) {
	p, err := cover.FindNEPartition(g)
	if errors.Is(err, cover.ErrNoPartition) {
		return cover.Partition{}, fmt.Errorf("%w: %v", ErrNoMatchingNE, err)
	}
	return p, err
}
