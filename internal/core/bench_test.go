package core

import (
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// MaxTupleLoad micro-benchmarks for `make bench-kernel`: the general-case
// branch-and-bound search is the most expensive exact path in the
// verifier, so it is pinned here on an instance that defeats both
// structural shortcuts and the exhaustive enumerator.

// bnbInstance is a deterministic mid-size instance that must go through
// maxLoadBranchBound: dependent non-uniform loads and C(m, k) well beyond
// the exhaustive limit.
func bnbInstance(tb testing.TB) (*graph.Graph, int, []*big.Rat) {
	tb.Helper()
	g := graph.RandomConnected(40, 0.1, 7)
	m := g.NumEdges()
	k := 6
	// If the instance is small enough to enumerate, grow k until the
	// general branch-and-bound path is forced.
	for combinationsWithin(m, k, exhaustiveTupleLimit) && k < m {
		k++
	}
	loads := make([]*big.Rat, g.NumVertices())
	for v := range loads {
		loads[v] = new(big.Rat)
	}
	// Load a connected cluster (dependent ⇒ not the independent-set case)
	// with distinct fractions (⇒ not the uniform case).
	e := g.EdgeByID(0)
	loads[e.U] = big.NewRat(1, 2)
	loads[e.V] = big.NewRat(1, 3)
	for i, v := range g.Neighbors(e.U) {
		loads[v] = big.NewRat(1, int64(4+i))
	}
	for i, v := range g.Neighbors(e.V) {
		if loads[v].Sign() == 0 {
			loads[v] = big.NewRat(1, int64(11+i))
		}
	}
	if independentInGraph(g, positiveVertices(loads)) {
		tb.Fatal("bench premise: loads must be dependent")
	}
	return g, k, loads
}

// positiveVertices lists the vertices with positive load.
func positiveVertices(loads []*big.Rat) []int {
	var out []int
	for v, l := range loads {
		if l.Sign() > 0 {
			out = append(out, v)
		}
	}
	return out
}

// BenchmarkMaxTupleLoadBranchBound measures the budgeted exact search on
// the general-loads path (neither independent nor uniform, m ≈ 80, k=6).
func BenchmarkMaxTupleLoadBranchBound(b *testing.B) {
	g, k, loads := bnbInstance(b)
	if combinationsWithin(g.NumEdges(), k, exhaustiveTupleLimit) {
		b.Fatalf("bench premise: C(%d,%d) within exhaustive limit", g.NumEdges(), k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		value, _, err := MaxTupleLoad(g, k, loads)
		if err != nil {
			b.Fatal(err)
		}
		if value.Sign() <= 0 {
			b.Fatal("expected positive maximum load")
		}
	}
}

// BenchmarkMaxTupleLoadExhaustive measures the dense enumeration path on
// a small instance (C(m, k) ≈ 300k subsets).
func BenchmarkMaxTupleLoadExhaustive(b *testing.B) {
	g := graph.Complete(10) // m = 45
	k := 4                  // C(45,4) = 148995
	loads := make([]*big.Rat, g.NumVertices())
	for v := range loads {
		loads[v] = big.NewRat(int64(1+v%4), int64(2+v%3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		value, _, err := maxLoadExhaustive(g, k, loads)
		if err != nil {
			b.Fatal(err)
		}
		if value.Sign() <= 0 {
			b.Fatal("expected positive maximum load")
		}
	}
}
