package core

import (
	"errors"
	"fmt"

	"github.com/defender-game/defender/internal/graph"
)

// The Path model is the generalized variation studied in the companion work
// [8]: the defender cleans a simple path of the graph instead of an
// arbitrary edge set. A pure profile can be an equilibrium only when the
// defender's single path covers every vertex (otherwise caught attackers
// flee to an uncovered vertex and the defender chases, exactly as in the
// proof of Theorem 3.1). A simple path with k edges covers k+1 distinct
// vertices, so:
//
//	Π^path_k(G) has a pure NE  ⇔  k = n−1 and G has a Hamiltonian path.
//
// Hamiltonicity is NP-complete in general; we decide it exactly with the
// Held–Karp bitmask dynamic program, practical to ~24 vertices.

// ErrPathTooLarge is returned when the Hamiltonian-path decision exceeds
// the supported instance size.
var ErrPathTooLarge = errors.New("core: path model: graph too large for exact Hamiltonian-path decision")

// maxHamiltonianVertices bounds the Held–Karp bitmask DP (2^n states).
const maxHamiltonianVertices = 24

// HasPurePathNE decides pure-equilibrium existence in the Path model with
// path length k (number of edges). On success with exists == true, the
// witness is the covering path as an ordered vertex list.
func HasPurePathNE(g *graph.Graph, k int) (exists bool, path []int, err error) {
	if k != g.NumVertices()-1 {
		// A k-edge path covers k+1 < n vertices (or k > n−1 is not simple):
		// no pure NE, by the fleeing argument.
		return false, nil, nil
	}
	return HamiltonianPath(g)
}

// HamiltonianPath decides whether g has a Hamiltonian path and returns one
// if so, using the Held–Karp dynamic program over subsets: reach[mask][v]
// is true when the vertices of mask can be ordered into a simple path
// ending at v. O(2^n · n^2) time, n <= 24.
func HamiltonianPath(g *graph.Graph) (bool, []int, error) {
	n := g.NumVertices()
	if n > maxHamiltonianVertices {
		return false, nil, fmt.Errorf("%w: n=%d > %d", ErrPathTooLarge, n, maxHamiltonianVertices)
	}
	if n == 0 {
		return false, nil, nil
	}
	if n == 1 {
		return true, []int{0}, nil
	}
	size := 1 << uint(n)
	// parent[mask*n+v] = predecessor of v on a path realizing (mask, v),
	// -1 if unreachable, v itself for singleton starts.
	parent := make([]int8, size*n)
	for i := range parent {
		parent[i] = -1
	}
	for v := 0; v < n; v++ {
		parent[(1<<uint(v))*n+v] = int8(v)
	}
	for mask := 1; mask < size; mask++ {
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) == 0 || parent[mask*n+v] == -1 {
				continue
			}
			g.EachNeighbor(v, func(u int) {
				next := mask | 1<<uint(u)
				if next != mask && parent[next*n+u] == -1 {
					parent[next*n+u] = int8(v)
				}
			})
		}
	}
	full := size - 1
	for end := 0; end < n; end++ {
		if parent[full*n+end] == -1 {
			continue
		}
		// Reconstruct the path backwards.
		path := make([]int, 0, n)
		mask, v := full, end
		for {
			path = append(path, v)
			p := int(parent[mask*n+v])
			if p == v && mask == 1<<uint(v) {
				break
			}
			mask &^= 1 << uint(v)
			v = p
		}
		// Reverse into start→end order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		return true, path, nil
	}
	return false, nil, nil
}
