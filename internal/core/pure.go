package core

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// ErrNoPureNE is returned when Π_k(G) provably has no pure Nash equilibrium.
var ErrNoPureNE = errors.New("core: no pure Nash equilibrium exists")

// HasPureNE decides pure-equilibrium existence by Theorem 3.1: Π_k(G) has a
// pure NE iff G contains an edge cover of size k, i.e. iff ρ(G) <= k <= m.
// Runs in polynomial time (Corollary 3.2) via blossom matching.
func HasPureNE(g *graph.Graph, k int) (bool, error) {
	return cover.HasEdgeCoverOfSize(g, k)
}

// NoPureNEByCorollary33 applies the counting bound of Corollary 3.3:
// whenever n >= 2k+1, every edge cover exceeds k edges, so no pure NE
// exists. This is a sufficient condition only — a cheap pre-check.
func NoPureNEByCorollary33(g *graph.Graph, k int) bool {
	return g.NumVertices() >= 2*k+1
}

// BuildPureNE constructs the pure equilibrium of Theorem 3.1's forward
// direction: the defender plays an edge cover of size k (so every vertex is
// scanned and every attacker is caught wherever it stands); attackers place
// themselves arbitrarily (vertex 0 here — any choice yields profit 0).
func BuildPureNE(g *graph.Graph, attackers, k int) (*game.Game, game.PureProfile, error) {
	gm, err := game.New(g, attackers, k)
	if err != nil {
		return nil, game.PureProfile{}, err
	}
	ec, err := cover.EdgeCoverOfSize(g, k)
	if err != nil {
		return nil, game.PureProfile{}, fmt.Errorf("%w: %v", ErrNoPureNE, err)
	}
	t, err := game.NewTuple(g, ec)
	if err != nil {
		return nil, game.PureProfile{}, err
	}
	p := game.PureProfile{
		VertexChoice: make([]int, attackers),
		TupleChoice:  t,
	}
	if err := gm.ValidatePure(p); err != nil {
		return nil, game.PureProfile{}, err
	}
	return gm, p, nil
}

// IsPureNE verifies a pure profile against the equilibrium definition:
// no single player can strictly improve by a unilateral deviation.
//
//   - Each attacker i improves iff it is currently caught and some vertex is
//     uncovered by the defender's tuple.
//   - The defender improves iff some other tuple catches strictly more
//     attackers; the best alternative catch count is a maximum tuple load
//     with integer loads (attacker counts per vertex), computed exactly by
//     MaxTupleLoad — which may return ErrCannotVerify on instances that are
//     simultaneously large and unstructured.
func IsPureNE(gm *game.Game, p game.PureProfile) (bool, error) {
	if err := gm.ValidatePure(p); err != nil {
		return false, err
	}
	g := gm.Graph()

	// Attacker deviations.
	coveredAll := len(p.TupleChoice.Vertices(g)) == g.NumVertices()
	if !coveredAll {
		for i := range p.VertexChoice {
			if gm.ProfitVP(p, i) == 0 {
				// Caught, and an uncovered vertex exists to flee to.
				return false, nil
			}
		}
	}

	// Defender deviation: compare against the best possible tuple.
	counts := make([]*big.Rat, g.NumVertices())
	for i := range counts {
		counts[i] = new(big.Rat) // lint:invariant(ratraw): per-vertex accumulators; each is mutated independently below
	}
	one := big.NewRat(1, 1)
	for _, v := range p.VertexChoice {
		counts[v].Add(counts[v], one)
	}
	maxLoad, _, err := MaxTupleLoad(g, gm.K(), counts)
	if err != nil {
		return false, err
	}
	current := tupleLoadOf(g, counts, p.TupleChoice)
	return current.Cmp(maxLoad) == 0, nil
}
