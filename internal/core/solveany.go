package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/lp"
	"github.com/defender-game/defender/internal/obs"
)

// SolveAny computes SOME mixed Nash equilibrium of Π_k(G) for any graph,
// trying the structural families first and falling back to the LP minimax
// equilibrium:
//
//  1. k-matching (Algorithm A_tuple) — polynomial, any instance size, on
//     graphs admitting the Cor 4.11 partition;
//  2. perfect-matching — graphs with a perfect matching, k <= n/2;
//  3. regular-graph profile at k = 1;
//  4. the exact LP minimax pair of the ν = 1 constant-sum game, lifted to
//     ν symmetric attackers.
//
// The lift in step 4 is sound because both payoffs scale linearly in the
// attacker population: with every attacker playing the minimax mixture x,
// each tuple's expected load is ν times its ν=1 load (so the defender's
// minimax σ stays a best response), and the defender's coverage is
// unchanged (so x stays a best response for each attacker). Step 4 is
// limited to enumerable tuple spaces (ErrValueTooLarge beyond).
//
// The returned family is one of "k-matching", "perfect-matching",
// "regular", "lp-minimax". Every returned profile passes the exact
// verifier (asserted by the tests).
func SolveAny(g *graph.Graph, attackers, k int) (ne TupleEquilibrium, family string, err error) {
	return SolveAnyCtx(context.Background(), g, attackers, k)
}

// SolveAnyCtx is SolveAny under ctx's trace: the family cascade is timed
// as the span "core.solve_any", and ctx is threaded into the structural
// constructions and the LP fallback so their spans nest beneath it in
// the request's waterfall.
func SolveAnyCtx(ctx context.Context, g *graph.Graph, attackers, k int) (ne TupleEquilibrium, family string, err error) {
	sp, ctx := obs.Default().StartSpanCtx(ctx, "core.solve_any")
	defer func() {
		// The chosen family is the interesting dimension when reading a
		// trace: it explains why one solve took µs and the next took ms.
		sp.Annotate("family", family)
		sp.End()
	}()
	if ne, err := SolveTupleModelCtx(ctx, g, attackers, k); err == nil {
		return ne, "k-matching", nil
	} else if !errors.Is(err, ErrNoMatchingNE) && !errors.Is(err, ErrKTooLarge) &&
		!errors.Is(err, cover.ErrPartitionNotFound) && !errors.Is(err, cover.ErrTooLarge) {
		return TupleEquilibrium{}, "", err
	}
	if ne, err := PerfectMatchingNE(g, attackers, k); err == nil {
		return ne, "perfect-matching", nil
	} else if !errors.Is(err, ErrNoPerfectMatching) && !errors.Is(err, ErrKTooLarge) {
		return TupleEquilibrium{}, "", err
	}
	if k == 1 {
		if regular, _ := g.IsRegular(); regular {
			edgeNE, err := RegularGraphEdgeNE(g, attackers)
			if err != nil {
				return TupleEquilibrium{}, "", err
			}
			return TupleEquilibrium{
				Game:        edgeNE.Game,
				Profile:     edgeNE.Profile,
				VPSupport:   edgeNE.VPSupport,
				EdgeSupport: edgeNE.EdgeSupport,
				Tuples:      edgeNE.Profile.TP.Support(),
			}, "regular", nil
		}
	}
	ne, err = lpMinimaxNE(ctx, g, attackers, k)
	if err != nil {
		return TupleEquilibrium{}, "", err
	}
	return ne, "lp-minimax", nil
}

// lpMinimaxNE builds the symmetric lift of the ν = 1 minimax pair.
func lpMinimaxNE(ctx context.Context, g *graph.Graph, attackers, k int) (TupleEquilibrium, error) {
	gm, err := game.New(g, attackers, k)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	if !combinationsWithin(g.NumEdges(), k, valueTupleLimit) {
		return TupleEquilibrium{}, fmt.Errorf("%w: C(%d,%d)", ErrValueTooLarge, g.NumEdges(), k)
	}
	tuples := EnumerateTuples(g, k)
	zero := new(big.Rat)
	one := big.NewRat(1, 1)
	payoff := make([][]*big.Rat, len(tuples))
	for i, t := range tuples {
		row := make([]*big.Rat, g.NumVertices())
		covered := make([]bool, g.NumVertices())
		for _, v := range t.Vertices(g) {
			covered[v] = true
		}
		for v := range row {
			if covered[v] {
				row[v] = one
			} else {
				row[v] = zero
			}
		}
		payoff[i] = row
	}
	gs, err := lp.SolveZeroSumCtx(ctx, payoff)
	if err != nil {
		return TupleEquilibrium{}, fmt.Errorf("core: lp minimax NE: %w", err)
	}
	ts, err := game.NewTupleStrategy(tuples, gs.Row)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	probs := make(map[int]*big.Rat, len(gs.Col))
	for v, p := range gs.Col {
		probs[v] = p
	}
	vs := game.NewVertexStrategy(probs)
	profile := game.NewSymmetricProfile(attackers, vs, ts)
	if err := gm.Validate(profile); err != nil {
		return TupleEquilibrium{}, err
	}
	edgeIDs := profile.TP.SupportEdges()
	edges := make([]graph.Edge, len(edgeIDs))
	for i, id := range edgeIDs {
		edges[i] = g.EdgeByID(id)
	}
	return TupleEquilibrium{
		Game:        gm,
		Profile:     profile,
		VPSupport:   profile.SupportUnionVP(),
		EdgeSupport: edges,
		Tuples:      profile.TP.Support(),
	}, nil
}
