package core

import (
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/lp"
)

// Weighted targets: a practical extension beyond the paper. Hosts carry
// nonnegative values w(v) (database servers are worth more than printers);
// an attacker at v deals damage w(v) if it escapes. The defender's optimal
// randomized k-tuple defense minimizes the worst-case expected damage
//
//	min_σ max_v  w(v) · (1 − P_σ(Hit(v))),
//
// the minimax of the zero-sum damage game — solved exactly by the LP
// oracle over all C(m,k) tuples. With uniform weights this reduces to
// 1 − GameValue (asserted by the tests); with skewed weights the optimal
// defense concentrates on valuable assets, a behavior no uniform
// equilibrium exhibits.

// WeightedDamageValue computes the exact minimax damage and the defender
// strategy attaining it. weights must be nonnegative with length n.
// Shares GameValue's C(m,k) enumeration limit (ErrValueTooLarge).
func WeightedDamageValue(g *graph.Graph, k int, weights []*big.Rat) (*big.Rat, game.TupleStrategy, error) {
	if g.NumVertices() == 0 {
		return nil, game.TupleStrategy{}, fmt.Errorf("core: weighted damage: empty graph")
	}
	if g.HasIsolatedVertex() {
		return nil, game.TupleStrategy{}, game.ErrIsolatedVertex
	}
	if k < 1 || k > g.NumEdges() {
		return nil, game.TupleStrategy{}, fmt.Errorf("%w: k=%d, m=%d", game.ErrBadK, k, g.NumEdges())
	}
	if len(weights) != g.NumVertices() {
		return nil, game.TupleStrategy{}, fmt.Errorf("core: weighted damage: %d weights for %d vertices",
			len(weights), g.NumVertices())
	}
	for v, w := range weights {
		if w == nil || w.Sign() < 0 {
			return nil, game.TupleStrategy{}, fmt.Errorf("core: weighted damage: invalid weight for vertex %d", v)
		}
	}
	if !combinationsWithin(g.NumEdges(), k, valueTupleLimit) {
		return nil, game.TupleStrategy{}, fmt.Errorf("%w: C(%d,%d)", ErrValueTooLarge, g.NumEdges(), k)
	}
	tuples := EnumerateTuples(g, k)

	// Rows = attacker vertices (maximizer of damage), columns = defender
	// tuples: payoff w(v) when the tuple misses v, else 0.
	zero := new(big.Rat)
	payoff := make([][]*big.Rat, g.NumVertices())
	for v := range payoff {
		payoff[v] = make([]*big.Rat, len(tuples))
	}
	for j, t := range tuples {
		covered := make([]bool, g.NumVertices())
		for _, v := range t.Vertices(g) {
			covered[v] = true
		}
		for v := range payoff {
			if covered[v] {
				payoff[v][j] = zero
			} else {
				payoff[v][j] = weights[v]
			}
		}
	}
	gs, err := lp.SolveZeroSum(payoff)
	if err != nil {
		return nil, game.TupleStrategy{}, fmt.Errorf("core: weighted damage: %w", err)
	}
	ts, err := game.NewTupleStrategy(tuples, gs.Col)
	if err != nil {
		return nil, game.TupleStrategy{}, err
	}
	return gs.Value, ts, nil
}
