package core

import (
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestGCDAndLCM(t *testing.T) {
	tests := []struct {
		a, b, gcd, lcm int
	}{
		{1, 1, 1, 1},
		{4, 6, 2, 12},
		{6, 4, 2, 12},
		{7, 13, 1, 91},
		{12, 12, 12, 12},
		{5, 10, 5, 10},
	}
	for _, tt := range tests {
		if got := gcd(tt.a, tt.b); got != tt.gcd {
			t.Errorf("gcd(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.gcd)
		}
		got, err := lcm(tt.a, tt.b)
		if err != nil {
			t.Errorf("lcm(%d,%d): %v", tt.a, tt.b, err)
		} else if got != tt.lcm {
			t.Errorf("lcm(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.lcm)
		}
	}
}

func TestLCMOverflow(t *testing.T) {
	// Two coprime values near 2^32 whose product exceeds MaxInt: the old
	// unchecked a/gcd*b silently wrapped here.
	const a, b = 1<<32 - 1, 1<<32 + 1
	if v, err := lcm(a, b); err == nil {
		t.Fatalf("lcm(%d, %d) = %d, want overflow error", a, b, v)
	}
	// Non-coprime operands stay in range even when a*b would overflow.
	const big = 1 << 40
	v, err := lcm(big, big)
	if err != nil || v != big {
		t.Fatalf("lcm(%d, %d) = %d, %v; want %d", big, big, v, err, big)
	}
}

func TestCyclicTuplesKnownShapes(t *testing.T) {
	g := graph.Cycle(6)
	ids := []int{0, 1, 2, 3, 4, 5}

	tests := []struct {
		k         int
		wantDelta int
		wantMult  int // tuples containing each edge: k/gcd(E,k)
	}{
		{1, 6, 1},
		{2, 3, 1},
		{3, 2, 1},
		{4, 3, 2},
		{5, 6, 5},
		{6, 1, 1},
	}
	for _, tt := range tests {
		tuples, err := CyclicTuples(g, ids, tt.k)
		if err != nil {
			t.Fatalf("k=%d: %v", tt.k, err)
		}
		if len(tuples) != tt.wantDelta {
			t.Errorf("k=%d: δ = %d, want %d", tt.k, len(tuples), tt.wantDelta)
		}
		mult := EdgeMultiplicity(tuples)
		if len(mult) != len(ids) {
			t.Errorf("k=%d: only %d of %d edges used", tt.k, len(mult), len(ids))
		}
		for id, m := range mult {
			if m != tt.wantMult {
				t.Errorf("k=%d: edge %d multiplicity %d, want %d", tt.k, id, m, tt.wantMult)
			}
		}
		for _, tp := range tuples {
			if tp.Size() != tt.k {
				t.Errorf("k=%d: tuple %v has size %d", tt.k, tp, tp.Size())
			}
		}
	}
}

func TestCyclicTuplesRespectsLabelOrder(t *testing.T) {
	// Non-contiguous edge IDs in custom order must be windowed in the given
	// order, not by ID.
	g := graph.Cycle(5)
	ids := []int{3, 0, 4}
	tuples, err := CyclicTuples(g, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	// E=3, k=2 => δ=3: windows (3,0),(4,3),(0,4).
	if len(tuples) != 3 {
		t.Fatalf("δ = %d, want 3", len(tuples))
	}
	wantKeys := map[string]bool{"0,3": true, "3,4": true, "0,4": true}
	for _, tp := range tuples {
		if !wantKeys[tp.Key()] {
			t.Errorf("unexpected tuple %v", tp)
		}
	}
}

func TestCyclicTuplesErrors(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := CyclicTuples(g, []int{0, 1}, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := CyclicTuples(g, []int{0, 1}, 3); err == nil {
		t.Error("k > E must fail")
	}
	if _, err := CyclicTuples(g, []int{0, 99}, 1); err == nil {
		t.Error("invalid edge id must fail")
	}
}

// Property: Claim 4.9 — for any E and 1 <= k <= E, the construction yields
// δ = E/gcd(E,k) distinct tuples and each edge appears in exactly
// k/gcd(E,k) of them.
func TestPropertyClaim49(t *testing.T) {
	g := graph.Complete(10) // 45 edges to draw from
	f := func(seed int64) bool {
		e := 1 + int(seed%20+20)%20 // 1..20
		k := 1 + int(seed/7%int64(e)+int64(e))%e
		ids := make([]int, e)
		for i := range ids {
			ids[i] = i
		}
		tuples, err := CyclicTuples(g, ids, k)
		if err != nil {
			return false
		}
		d := gcd(e, k)
		if len(tuples) != e/d {
			return false
		}
		// Distinctness of tuples as sets.
		seen := make(map[string]bool)
		for _, tp := range tuples {
			if seen[tp.Key()] {
				return false
			}
			seen[tp.Key()] = true
		}
		mult := EdgeMultiplicity(tuples)
		for _, id := range ids {
			if mult[id] != k/d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEdgeMultiplicityEmpty(t *testing.T) {
	if got := EdgeMultiplicity(nil); len(got) != 0 {
		t.Errorf("EdgeMultiplicity(nil) = %v", got)
	}
	g := graph.Path(3)
	tp, err := game.NewTupleFromIDs(g, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	mult := EdgeMultiplicity([]game.Tuple{tp, tp})
	if mult[0] != 2 || mult[1] != 2 {
		t.Errorf("mult = %v", mult)
	}
}
