package core

import (
	"errors"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// validatePath checks that path is a Hamiltonian path of g.
func validatePath(t *testing.T, g *graph.Graph, path []int) {
	t.Helper()
	if len(path) != g.NumVertices() {
		t.Fatalf("path visits %d of %d vertices", len(path), g.NumVertices())
	}
	seen := make(map[int]bool)
	for i, v := range path {
		if seen[v] {
			t.Fatalf("vertex %d repeated", v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(path[i-1], v) {
			t.Fatalf("(%d,%d) is not an edge", path[i-1], v)
		}
	}
}

func TestHamiltonianPathPositive(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"K2", graph.Path(2)},
		{"P6", graph.Path(6)},
		{"C5", graph.Cycle(5)},
		{"C8", graph.Cycle(8)},
		{"K5", graph.Complete(5)},
		{"grid33", graph.Grid(3, 3)},
		{"grid24", graph.Grid(2, 4)},
		{"petersen", graph.Petersen()},
		{"hypercube3", graph.Hypercube(3)},
		{"wheel6", graph.Wheel(6)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ok, path, err := HamiltonianPath(tt.g)
			if err != nil {
				t.Fatalf("HamiltonianPath: %v", err)
			}
			if !ok {
				t.Fatal("Hamiltonian path must exist")
			}
			validatePath(t, tt.g, path)
		})
	}
}

func TestHamiltonianPathNegative(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"star4", graph.Star(4)},
		{"star7", graph.Star(7)},
		{"disconnected", graph.PerfectMatchingGraph(4)},
		{"spider", spiderGraph(t)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ok, _, err := HamiltonianPath(tt.g)
			if err != nil {
				t.Fatalf("HamiltonianPath: %v", err)
			}
			if ok {
				t.Fatal("no Hamiltonian path should exist")
			}
		})
	}
}

// spiderGraph: three paths of length 2 glued at a center — a tree with
// three leaves, so no Hamiltonian path.
func spiderGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestHamiltonianPathEdgeCases(t *testing.T) {
	ok, path, err := HamiltonianPath(graph.New(1))
	if err != nil || !ok || len(path) != 1 {
		t.Errorf("singleton: ok=%v path=%v err=%v", ok, path, err)
	}
	ok, _, err = HamiltonianPath(graph.New(0))
	if err != nil || ok {
		t.Errorf("empty: ok=%v err=%v", ok, err)
	}
	if _, _, err := HamiltonianPath(graph.Grid(5, 5)); !errors.Is(err, ErrPathTooLarge) {
		t.Errorf("n=25: err = %v, want ErrPathTooLarge", err)
	}
}

func TestHasPurePathNE(t *testing.T) {
	// C6: Hamiltonian path exists, so pure path NE iff k = 5.
	g := graph.Cycle(6)
	for k := 1; k <= 6; k++ {
		exists, path, err := HasPurePathNE(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if want := k == 5; exists != want {
			t.Errorf("k=%d: exists=%v, want %v", k, exists, want)
		}
		if exists {
			validatePath(t, g, path)
		}
	}
	// Star: no Hamiltonian path, never a pure path NE.
	star := graph.Star(5)
	exists, _, err := HasPurePathNE(star, 4)
	if err != nil {
		t.Fatal(err)
	}
	if exists {
		t.Error("star admits no pure path NE")
	}
}
