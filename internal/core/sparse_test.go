package core

import (
	"errors"
	"testing"

	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
)

// sparseCorpus returns small instances the sparse pipeline is
// differentially replayed on through the dense game machinery.
func sparseCorpus() map[string]*graph.CSR {
	gen := graph.NewSeededGenerator(41)
	corpus := map[string]*graph.CSR{
		"path6":  graph.FromGraph(graph.Path(6)),
		"k23":    graph.FromGraph(graph.CompleteBipartite(2, 3)),
		"grid34": graph.FromGraph(graph.Grid(3, 4)),
		"tree":   graph.FromGraph(gen.Tree(14)),
		"baBip":  gen.BarabasiAlbertBipartiteCSR(16, 2),
	}
	chorded := graph.Cycle(4)
	if err := chorded.AddEdge(1, 3); err != nil {
		panic(err)
	}
	corpus["chordedC4"] = graph.FromGraph(chorded)
	return corpus
}

// TestSolveKMatchingCSRDifferential is the cross-check of the sparse
// pipeline: every sparse solve must pass its own rat-domain audit
// (VerifyKMatchingCSR), then replay through the dense game machinery
// (BuildKMatchingNE + VerifyCharacterization) with identical exact
// defender gain and hit probability.
func TestSolveKMatchingCSRDifferential(t *testing.T) {
	for name, c := range sparseCorpus() {
		for _, k := range []int{1, 2, 3} {
			ne, err := SolveKMatchingCSR(c, 5, k)
			if errors.Is(err, ErrKTooLarge) {
				continue
			}
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if err := VerifyKMatchingCSR(ne); err != nil {
				t.Fatalf("%s k=%d: sparse audit: %v", name, k, err)
			}
			dense, err := ne.ToTupleEquilibrium()
			if err != nil {
				t.Fatalf("%s k=%d: bridge: %v", name, k, err)
			}
			if err := VerifyCharacterization(dense.Game, dense.Profile); err != nil {
				t.Fatalf("%s k=%d: dense verifier rejects sparse NE: %v", name, k, err)
			}
			if got, want := ne.DefenderGain(), dense.DefenderGain(); got.Cmp(want) != 0 {
				t.Errorf("%s k=%d: sparse gain %v, dense %v", name, k, got, want)
			}
			if got, want := ne.HitProbability(), dense.HitProbability(); got.Cmp(want) != 0 {
				t.Errorf("%s k=%d: sparse hit %v, dense %v", name, k, got, want)
			}
		}
	}
}

func TestSolveKMatchingCSRKTooLarge(t *testing.T) {
	// P2 has |IS| = 1: any k >= 2 must be refused.
	c := graph.FromGraph(graph.Path(2))
	if _, err := SolveKMatchingCSR(c, 3, 2); !errors.Is(err, ErrKTooLarge) {
		t.Errorf("got %v, want ErrKTooLarge", err)
	}
}

func TestSolveKMatchingCSRNoPartition(t *testing.T) {
	// C5 admits no k-matching NE; the sparse heuristic gives up rather
	// than fabricating one.
	c := graph.FromGraph(graph.Cycle(5))
	if _, err := SolveKMatchingCSR(c, 3, 1); !errors.Is(err, cover.ErrPartitionNotFound) {
		t.Errorf("got %v, want ErrPartitionNotFound", err)
	}
}

// TestVerifyKMatchingCSRMutations corrupts a valid sparse equilibrium one
// invariant at a time; the verifier must reject every mutant.
func TestVerifyKMatchingCSRMutations(t *testing.T) {
	base := func() *SparseEquilibrium {
		ne, err := SolveKMatchingCSR(graph.FromGraph(graph.Grid(3, 4)), 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return ne
	}
	mutations := map[string]func(*SparseEquilibrium){
		"no-attackers": func(ne *SparseEquilibrium) { ne.Attackers = 0 },
		"k-mismatch":   func(ne *SparseEquilibrium) { ne.K = 1 },
		"drop-tuple":   func(ne *SparseEquilibrium) { ne.Tuples = ne.Tuples[1:] },
		"repeat-edge-in-tuple": func(ne *SparseEquilibrium) {
			ne.Tuples[0] = []int32{ne.Tuples[0][0], ne.Tuples[0][0]}
		},
		"shrink-support": func(ne *SparseEquilibrium) { ne.VPSupport = ne.VPSupport[1:] },
		"support-not-sorted": func(ne *SparseEquilibrium) {
			ne.VPSupport[0], ne.VPSupport[1] = ne.VPSupport[1], ne.VPSupport[0]
		},
		"fake-edge": func(ne *SparseEquilibrium) {
			ne.EdgeU[0], ne.EdgeV[0] = ne.VPSupport[0], ne.VPSupport[1]
		},
		"drop-edge": func(ne *SparseEquilibrium) {
			ne.EdgeU = ne.EdgeU[1:]
			ne.EdgeV = ne.EdgeV[1:]
		},
	}
	if err := VerifyKMatchingCSR(base()); err != nil {
		t.Fatalf("unmutated equilibrium rejected: %v", err)
	}
	for name, mutate := range mutations {
		ne := base()
		mutate(ne)
		if err := VerifyKMatchingCSR(ne); err == nil {
			t.Errorf("%s: verifier accepted the mutant", name)
		} else if !errors.Is(err, ErrNotEquilibrium) {
			t.Errorf("%s: error %v does not wrap ErrNotEquilibrium", name, err)
		}
	}
}

// TestSolveKMatchingCSRMediumScale runs the verified pipeline at a size
// where the dense path is already impractical, as a fast regression guard
// for the scaling benchmark.
func TestSolveKMatchingCSRMediumScale(t *testing.T) {
	c := graph.NewSeededGenerator(43).BarabasiAlbertBipartiteCSR(50_000, 3)
	ne, err := SolveKMatchingCSRVerified(c, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ne.VPSupport) != len(ne.EdgeU) {
		t.Fatalf("|IS|=%d != |E(D(tp))|=%d", len(ne.VPSupport), len(ne.EdgeU))
	}
	// Closed forms of the paper: gain k·ν/|IS|, hit k/|E'|.
	if gain := ne.DefenderGain(); gain.Sign() <= 0 {
		t.Fatalf("non-positive defender gain %v", gain)
	}
	if ne.Multiplicity() < 1 {
		t.Fatalf("multiplicity %d < 1", ne.Multiplicity())
	}
}
