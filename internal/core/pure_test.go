package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestHasPureNEKnownFrontier(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
		want bool
	}{
		{"K2 k=1", graph.Path(2), 1, true},
		{"path4 k=1", graph.Path(4), 1, false},
		{"path4 k=2", graph.Path(4), 2, true},
		{"path4 k=3", graph.Path(4), 3, true},
		{"C6 k=2", graph.Cycle(6), 2, false},
		{"C6 k=3", graph.Cycle(6), 3, true},
		{"C5 k=3", graph.Cycle(5), 3, true},
		{"star6 k=4", graph.Star(6), 4, false},
		{"star6 k=5", graph.Star(6), 5, true},
		{"K4 k=2", graph.Complete(4), 2, true},
		{"K4 k=1", graph.Complete(4), 1, false},
		{"petersen k=5", graph.Petersen(), 5, true},
		{"petersen k=4", graph.Petersen(), 4, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := HasPureNE(tt.g, tt.k)
			if err != nil {
				t.Fatalf("HasPureNE: %v", err)
			}
			if got != tt.want {
				t.Errorf("HasPureNE = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNoPureNEByCorollary33(t *testing.T) {
	if !NoPureNEByCorollary33(graph.Cycle(5), 2) { // 5 >= 5
		t.Error("C5, k=2: corollary applies")
	}
	if NoPureNEByCorollary33(graph.Cycle(5), 3) { // 5 < 7
		t.Error("C5, k=3: corollary silent")
	}
}

// Property: Corollary 3.3 is consistent with Theorem 3.1 — whenever
// n >= 2k+1, HasPureNE must be false.
func TestPropertyCorollary33ImpliesNonExistence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(3+rng.Intn(12), 0.3, seed)
		k := 1 + rng.Intn(g.NumEdges())
		if !NoPureNEByCorollary33(g, k) {
			return true // corollary silent, nothing to check
		}
		has, err := HasPureNE(g, k)
		return err == nil && !has
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBuildPureNE(t *testing.T) {
	g := graph.Cycle(6)
	gm, p, err := BuildPureNE(g, 3, 3)
	if err != nil {
		t.Fatalf("BuildPureNE: %v", err)
	}
	// Defender catches everyone.
	if got := gm.ProfitTP(p); got != 3 {
		t.Errorf("IP_tp = %d, want ν=3", got)
	}
	for i := 0; i < 3; i++ {
		if gm.ProfitVP(p, i) != 0 {
			t.Errorf("attacker %d should be caught", i)
		}
	}
	ok, err := IsPureNE(gm, p)
	if err != nil {
		t.Fatalf("IsPureNE: %v", err)
	}
	if !ok {
		t.Error("constructed profile must be a pure NE")
	}
	// Below the frontier the construction fails.
	if _, _, err := BuildPureNE(g, 3, 2); err == nil {
		t.Error("k below rho must fail")
	}
}

func TestIsPureNENegative(t *testing.T) {
	g := graph.Path(4) // rho = 2
	gm, err := game.New(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker on covered vertex, uncovered vertices exist -> deviation.
	tp, err := game.NewTupleFromIDs(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	caught := game.PureProfile{VertexChoice: []int{0}, TupleChoice: tp}
	ok, err := IsPureNE(gm, caught)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("caught attacker with an escape is not an equilibrium")
	}
	// Attacker escapes but defender could move onto it.
	free := game.PureProfile{VertexChoice: []int{3}, TupleChoice: tp}
	ok, err = IsPureNE(gm, free)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("defender has a profitable deviation")
	}
}

// bruteForcePureNEExists enumerates every pure configuration (n^ν vertex
// placements × C(m,k) tuples) and tests the equilibrium condition by
// exhaustive unilateral deviations — the oracle for Theorem 3.1.
func bruteForcePureNEExists(t *testing.T, g *graph.Graph, nu, k int) bool {
	t.Helper()
	gm, err := game.New(g, nu, k)
	if err != nil {
		t.Fatalf("game.New: %v", err)
	}
	tuples := allTuples(t, g, k)
	placements := allPlacements(g.NumVertices(), nu)

	for _, tp := range tuples {
		for _, vc := range placements {
			p := game.PureProfile{VertexChoice: vc, TupleChoice: tp}
			if bruteForceIsPureNE(gm, p, tuples) {
				return true
			}
		}
	}
	return false
}

func bruteForceIsPureNE(gm *game.Game, p game.PureProfile, tuples []game.Tuple) bool {
	// Attacker deviations.
	for i := range p.VertexChoice {
		base := gm.ProfitVP(p, i)
		orig := p.VertexChoice[i]
		for v := 0; v < gm.Graph().NumVertices(); v++ {
			p.VertexChoice[i] = v
			if gm.ProfitVP(p, i) > base {
				p.VertexChoice[i] = orig
				return false
			}
		}
		p.VertexChoice[i] = orig
	}
	// Defender deviations.
	base := gm.ProfitTP(p)
	orig := p.TupleChoice
	for _, tp := range tuples {
		p.TupleChoice = tp
		if gm.ProfitTP(p) > base {
			p.TupleChoice = orig
			return false
		}
	}
	p.TupleChoice = orig
	return true
}

func allTuples(t *testing.T, g *graph.Graph, k int) []game.Tuple {
	t.Helper()
	var out []game.Tuple
	ids := make([]int, k)
	var rec func(pos, next int)
	rec = func(pos, next int) {
		if pos == k {
			tp, err := game.NewTupleFromIDs(g, ids)
			if err != nil {
				t.Fatalf("tuple: %v", err)
			}
			out = append(out, tp)
			return
		}
		for id := next; id < g.NumEdges(); id++ {
			ids[pos] = id
			rec(pos+1, id+1)
		}
	}
	rec(0, 0)
	return out
}

func allPlacements(n, nu int) [][]int {
	var out [][]int
	cur := make([]int, nu)
	var rec func(i int)
	rec = func(i int) {
		if i == nu {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v < n; v++ {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// TestTheorem31AgainstBruteForce validates the pure-existence theorem on
// every small graph/parameter combination against exhaustive search.
func TestTheorem31AgainstBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"K2":    graph.Path(2),
		"P3":    graph.Path(3),
		"P4":    graph.Path(4),
		"C3":    graph.Complete(3),
		"C4":    graph.Cycle(4),
		"C5":    graph.Cycle(5),
		"star4": graph.Star(4),
		"K4":    graph.Complete(4),
		"paw":   pawGraph(t),
	}
	for name, g := range graphs {
		for k := 1; k <= g.NumEdges() && k <= 4; k++ {
			for nu := 1; nu <= 2; nu++ {
				want := bruteForcePureNEExists(t, g, nu, k)
				got, err := HasPureNE(g, k)
				if err != nil {
					t.Fatalf("%s k=%d: %v", name, k, err)
				}
				if got != want {
					t.Errorf("%s ν=%d k=%d: HasPureNE=%v, brute force=%v", name, nu, k, got, want)
				}
			}
		}
	}
}

// pawGraph is a triangle with one pendant edge.
func pawGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// Property: BuildPureNE output always passes IsPureNE when it succeeds.
func TestPropertyBuildPureNEIsNE(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(2+rng.Intn(8), 0.4, seed)
		nu := 1 + rng.Intn(3)
		k := 1 + rng.Intn(g.NumEdges())
		gm, p, err := BuildPureNE(g, nu, k)
		if err != nil {
			return true // existence may fail; that's HasPureNE's business
		}
		ok, err := IsPureNE(gm, p)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
