package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strconv"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/lp"
	"github.com/defender-game/defender/internal/obs"
)

// For a single attacker (ν = 1) the Tuple model is a constant-sum game:
// IP_tp + IP_vp = 1 in every outcome. All Nash equilibria of a constant-sum
// game attain the same value, so the minimax value — computable by linear
// programming from the payoff matrix alone — is an *independent oracle* for
// every equilibrium construction in this package: a k-matching equilibrium
// predicts value k/|E(D(tp))|, a perfect-matching equilibrium 2k/n, a
// regular-graph equilibrium d/m, and the LP must agree exactly.

// ErrValueTooLarge is returned when the defender's pure-strategy space
// C(m, k) exceeds the enumeration budget of the LP oracle.
var ErrValueTooLarge = errors.New("core: tuple space too large for the LP value oracle")

// valueTupleLimit caps the number of tuple columns the oracle enumerates.
const valueTupleLimit = 20_000

// GameValue computes the exact minimax value of Π_k(G) with a single
// attacker: the probability that the defender catches the attacker when
// both play optimally. It enumerates all C(m, k) defender tuples as
// matrix-game rows and solves the resulting zero-sum game by exact LP —
// deliberately structure-free, so it can certify (or refute) the
// structured equilibrium constructions. Along with the value it returns
// the defender's optimal mixed strategy over tuples.
func GameValue(g *graph.Graph, k int) (*big.Rat, []game.Tuple, []*big.Rat, error) {
	return GameValueCtx(context.Background(), g, k)
}

// GameValueCtx is GameValue under ctx's trace: the oracle run is timed
// as the span "core.game_value" with the LP solve nested beneath it as
// "lp.simplex".
func GameValueCtx(ctx context.Context, g *graph.Graph, k int) (*big.Rat, []game.Tuple, []*big.Rat, error) {
	sp, ctx := obs.Default().StartSpanCtx(ctx, "core.game_value")
	sp.Annotate("k", strconv.Itoa(k))
	defer sp.End()
	if g.NumVertices() == 0 {
		return nil, nil, nil, fmt.Errorf("core: game value: empty graph")
	}
	if g.HasIsolatedVertex() {
		return nil, nil, nil, game.ErrIsolatedVertex
	}
	if k < 1 || k > g.NumEdges() {
		return nil, nil, nil, fmt.Errorf("%w: k=%d, m=%d", game.ErrBadK, k, g.NumEdges())
	}
	if !combinationsWithin(g.NumEdges(), k, valueTupleLimit) {
		return nil, nil, nil, fmt.Errorf("%w: C(%d,%d)", ErrValueTooLarge, g.NumEdges(), k)
	}
	tuples := EnumerateTuples(g, k)

	// Payoff to the defender (row player, maximizer): 1 if the tuple
	// covers the attacker's vertex.
	zero := new(big.Rat)
	one := big.NewRat(1, 1)
	payoff := make([][]*big.Rat, len(tuples))
	for i, t := range tuples {
		row := make([]*big.Rat, g.NumVertices())
		covered := make([]bool, g.NumVertices())
		for _, v := range t.Vertices(g) {
			covered[v] = true
		}
		for v := range row {
			if covered[v] {
				row[v] = one
			} else {
				row[v] = zero
			}
		}
		payoff[i] = row
	}
	gs, err := lp.SolveZeroSumCtx(ctx, payoff)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: game value: %w", err)
	}
	return gs.Value, tuples, gs.Row, nil
}

// EnumerateTuples lists every k-subset of g's edges as a Tuple, in
// lexicographic edge-index order. The pure defender strategy space of
// Π_k(G) — exported so callers (the experiment cache, benchmarks) can
// memoize or measure the enumeration separately from the LP solve.
func EnumerateTuples(g *graph.Graph, k int) []game.Tuple {
	var out []game.Tuple
	ids := make([]int, k)
	var rec func(pos, next int)
	rec = func(pos, next int) {
		if pos == k {
			t, err := game.NewTupleFromIDs(g, ids)
			if err != nil {
				// lint:invariant(nakedpanic): ids are distinct ascending edge indices
				// by construction, so NewTupleFromIDs cannot fail.
				panic(fmt.Sprintf("core: enumerate tuples: %v", err))
			}
			out = append(out, t)
			return
		}
		for id := next; id <= g.NumEdges()-(k-pos); id++ {
			ids[pos] = id
			rec(pos+1, id+1)
		}
	}
	rec(0, 0)
	return out
}

// DefenderStrategyFromValue assembles the LP oracle's optimal defender
// strategy into a validated game.TupleStrategy (dropping zero-probability
// tuples).
func DefenderStrategyFromValue(g *graph.Graph, k int) (*big.Rat, game.TupleStrategy, error) {
	value, tuples, probs, err := GameValue(g, k)
	if err != nil {
		return nil, game.TupleStrategy{}, err
	}
	ts, err := game.NewTupleStrategy(tuples, probs)
	if err != nil {
		return nil, game.TupleStrategy{}, err
	}
	return value, ts, nil
}
