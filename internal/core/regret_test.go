package core

import (
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestRegretZeroAtEquilibrium(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		ne, err := SolveTupleModel(graph.Grid(3, 4), 4, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		reg, err := ComputeRegret(ne.Game, ne.Profile)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !reg.IsEquilibrium() {
			t.Errorf("k=%d: nonzero regret at equilibrium: attacker %v defender %v",
				k, reg.MaxAttacker(), reg.Defender)
		}
	}
}

func TestRegretPositiveOffEquilibrium(t *testing.T) {
	// Attacker parked on a covered vertex of P4, defender on the wrong edge.
	g := graph.Path(4)
	gm, err := game.New(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := game.NewTupleFromIDs(g, []int{0}) // covers {0,1}
	if err != nil {
		t.Fatal(err)
	}
	ts, err := game.UniformTupleStrategy([]game.Tuple{tp})
	if err != nil {
		t.Fatal(err)
	}
	mp := game.NewSymmetricProfile(1, game.UniformVertexStrategy([]int{0}), ts)
	reg, err := ComputeRegret(gm, mp)
	if err != nil {
		t.Fatal(err)
	}
	if reg.IsEquilibrium() {
		t.Fatal("off-equilibrium profile reported zero regret")
	}
	// Attacker: caught for sure, could escape for sure -> regret 1.
	if reg.Attacker[0].Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("attacker regret = %v, want 1", reg.Attacker[0])
	}
	// Defender: catching 1 already, the best tuple also catches 1 -> 0.
	if reg.Defender.Sign() != 0 {
		t.Errorf("defender regret = %v, want 0", reg.Defender)
	}
	if reg.MaxAttacker().Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("max attacker regret = %v", reg.MaxAttacker())
	}
}

func TestRegretDefenderSide(t *testing.T) {
	// Attacker hides on vertex 3 of P4; defender scans edge (0,1): regret
	// is a full point (move to edge (2,3)).
	g := graph.Path(4)
	gm, err := game.New(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := game.NewTupleFromIDs(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := game.UniformTupleStrategy([]game.Tuple{tp})
	if err != nil {
		t.Fatal(err)
	}
	mp := game.NewSymmetricProfile(2, game.UniformVertexStrategy([]int{3}), ts)
	reg, err := ComputeRegret(gm, mp)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Defender.Cmp(big.NewRat(2, 1)) != 0 {
		t.Errorf("defender regret = %v, want 2 (both attackers catchable)", reg.Defender)
	}
	// The hiding attackers have zero regret: they already escape for sure.
	if reg.MaxAttacker().Sign() != 0 {
		t.Errorf("attacker regret = %v, want 0", reg.MaxAttacker())
	}
}

func TestRegretAgreesWithVerify(t *testing.T) {
	// VerifyNE and Regret.IsEquilibrium must agree on both outcomes.
	ne, err := SolveTupleModel(graph.Cycle(8), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := ComputeRegret(ne.Game, ne.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if (VerifyNE(ne.Game, ne.Profile) == nil) != reg.IsEquilibrium() {
		t.Error("VerifyNE and regret disagree on the equilibrium")
	}
	tampered := perturbVertexStrategy(ne.Game, ne.Profile, ne.VPSupport[0], (ne.VPSupport[0]+1)%8, big.NewRat(1, 8))
	if err := ne.Game.Validate(tampered); err != nil {
		t.Fatal(err)
	}
	regT, err := ComputeRegret(ne.Game, tampered)
	if err != nil {
		t.Fatal(err)
	}
	if (VerifyNE(ne.Game, tampered) == nil) != regT.IsEquilibrium() {
		t.Error("VerifyNE and regret disagree on the tampered profile")
	}
}
