package core

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// Mixed equilibria of the Path model (the [8] variation where the defender
// cleans a simple path of k edges). The defender's strategy space is the
// set of k-edge simple paths — a strict subset of the k-tuples — so the
// Tuple-model verifier does not apply directly: the defender's deviations
// range over paths only. This file provides a path-restricted verifier and
// the rotation construction on cycles, where the arc structure makes the
// equilibrium explicit:
//
//   - defender: uniform over the n rotations of a k-edge arc,
//   - attackers: uniform over all n vertices,
//   - every vertex hit with probability (k+1)/n; every arc loaded (k+1)ν/n.
//
// Comparative corollary (asserted in the tests): contiguity costs the
// defender — the Path-model gain (k+1)ν/n is strictly below the Tuple-model
// perfect-matching gain 2kν/n for every k ≥ 2, and equal at k = 1.

// ErrTooManyPaths is returned when path enumeration exceeds its cap.
var ErrTooManyPaths = errors.New("core: too many simple paths to enumerate")

// EnumerateKEdgePaths lists every simple path with exactly k edges as a
// vertex sequence (deduplicated up to reversal), stopping with
// ErrTooManyPaths beyond cap paths (pass 0 for the default of 100000).
func EnumerateKEdgePaths(g *graph.Graph, k, cap int) ([][]int, error) {
	if cap <= 0 {
		cap = 100_000
	}
	if k < 1 {
		return nil, fmt.Errorf("core: enumerate paths: k must be positive, got %d", k)
	}
	var out [][]int
	inPath := make([]bool, g.NumVertices())
	path := make([]int, 0, k+1)

	var dfs func(v int) error
	dfs = func(v int) error {
		path = append(path, v)
		inPath[v] = true
		defer func() {
			path = path[:len(path)-1]
			inPath[v] = false
		}()
		if len(path) == k+1 {
			// Dedupe by orientation: keep start < end (ties impossible on
			// simple paths with k >= 1).
			if path[0] < path[len(path)-1] {
				out = append(out, append([]int(nil), path...))
				if len(out) > cap {
					return fmt.Errorf("%w: more than %d", ErrTooManyPaths, cap)
				}
			}
			return nil
		}
		for _, u := range g.Neighbors(v) {
			if inPath[u] {
				continue
			}
			if err := dfs(u); err != nil {
				return err
			}
		}
		return nil
	}
	for v := 0; v < g.NumVertices(); v++ {
		if err := dfs(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PathAsTuple converts a vertex sequence into the tuple of its edges.
func PathAsTuple(g *graph.Graph, path []int) (game.Tuple, error) {
	if len(path) < 2 {
		return game.Tuple{}, fmt.Errorf("core: path %v too short", path)
	}
	edges := make([]graph.Edge, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return game.Tuple{}, fmt.Errorf("core: (%d,%d) is not an edge", path[i], path[i+1])
		}
		edges = append(edges, graph.NewEdge(path[i], path[i+1]))
	}
	return game.NewTuple(g, edges)
}

// VerifyPathNE checks that mp is a mixed Nash equilibrium of the PATH
// model: attackers must sit on minimum-hit vertices (as in the Tuple
// model), and every defender support tuple must be a k-edge simple path
// attaining the maximum load over ALL k-edge simple paths (enumerated
// exhaustively; ErrTooManyPaths on huge instances).
func VerifyPathNE(gm *game.Game, mp game.MixedProfile) error {
	if err := gm.Validate(mp); err != nil {
		return err
	}
	g := gm.Graph()

	hit := gm.HitProbabilities(mp)
	minHit := new(big.Rat).Set(hit[0])
	for _, h := range hit[1:] {
		if h.Cmp(minHit) < 0 {
			minHit.Set(h)
		}
	}
	for i, s := range mp.VP {
		for _, v := range s.Support() {
			if hit[v].Cmp(minHit) != 0 {
				return fmt.Errorf("%w: attacker %d on vertex %d: hit %v > min %v",
					ErrNotEquilibrium, i, v, hit[v], minHit)
			}
		}
	}

	paths, err := EnumerateKEdgePaths(g, gm.K(), 0)
	if err != nil {
		return err
	}
	loads := gm.VertexLoads(mp)
	maxLoad := new(big.Rat)
	pathKeys := make(map[string]bool, len(paths))
	for _, p := range paths {
		t, err := PathAsTuple(g, p)
		if err != nil {
			return err
		}
		pathKeys[t.Key()] = true
		if l := gm.TupleLoad(loads, t); l.Cmp(maxLoad) > 0 {
			maxLoad.Set(l)
		}
	}
	for _, t := range mp.TP.Support() {
		if !pathKeys[t.Key()] {
			return fmt.Errorf("%w: support tuple %v is not a simple path", ErrNotEquilibrium, t)
		}
		if l := gm.TupleLoad(loads, t); l.Cmp(maxLoad) != 0 {
			return fmt.Errorf("%w: support path %v load %v < max %v", ErrNotEquilibrium, t, l, maxLoad)
		}
	}
	return nil
}

// CyclePathNE constructs the rotation equilibrium of the Path model on the
// cycle C_n: the defender cleans a uniformly random k-edge arc, attackers
// play uniformly on all vertices. Requires the graph to be exactly a cycle
// and 1 <= k <= n−2 (a longer "path" would close the cycle).
func CyclePathNE(g *graph.Graph, attackers, k int) (TupleEquilibrium, error) {
	if regular, d := g.IsRegular(); !regular || d != 2 || !g.IsConnected() || g.NumVertices() < 3 {
		return TupleEquilibrium{}, errors.New("core: cycle path NE requires a connected cycle")
	}
	n := g.NumVertices()
	if k < 1 || k > n-2 {
		return TupleEquilibrium{}, fmt.Errorf("%w: k=%d on C%d", ErrKTooLarge, k, n)
	}
	gm, err := game.New(g, attackers, k)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	// Walk the cycle once to get a rotation order of vertices.
	order := make([]int, 0, n)
	prev, cur := -1, 0
	for len(order) < n {
		order = append(order, cur)
		nbrs := g.Neighbors(cur)
		next := nbrs[0]
		if next == prev {
			next = nbrs[1]
		}
		prev, cur = cur, next
	}
	tuples := make([]game.Tuple, 0, n)
	for s := 0; s < n; s++ {
		path := make([]int, k+1)
		for j := 0; j <= k; j++ {
			path[j] = order[(s+j)%n]
		}
		t, err := PathAsTuple(g, path)
		if err != nil {
			return TupleEquilibrium{}, err
		}
		tuples = append(tuples, t)
	}
	allV := make([]int, n)
	for v := range allV {
		allV[v] = v
	}
	profile, err := uniformProfile(gm, allV, tuples)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	return TupleEquilibrium{
		Game:        gm,
		Profile:     profile,
		VPSupport:   allV,
		EdgeSupport: g.Edges(),
		Tuples:      tuples,
	}, nil
}
