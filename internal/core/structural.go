package core

import (
	"errors"
	"fmt"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
)

// Structural equilibria beyond k-matching, following the companion work [8]
// (Mavronicolas et al., "A graph-theoretic network security game"), lifted
// to the Tuple model where the lift is sound. Unlike k-matching equilibria,
// the attacker support here is all of V — these equilibria exist on graphs
// (e.g. graphs with perfect matchings, regular graphs) that need not admit
// an independent-set/expander partition.

// ErrNoPerfectMatching is returned when the graph has no perfect matching.
var ErrNoPerfectMatching = errors.New("core: graph has no perfect matching")

// ErrNotRegular is returned when a regular-graph construction is applied to
// an irregular graph.
var ErrNotRegular = errors.New("core: graph is not regular")

// PerfectMatchingNE constructs a mixed NE of Π_k(G) for any graph with a
// perfect matching M and any k <= |M| = n/2:
//
//   - every attacker plays uniformly on V (load ν/n everywhere),
//   - the defender plays uniformly on the cyclic k-windows over M.
//
// Every vertex is hit with probability k/|M| (each vertex lies on exactly
// one matching edge and each edge is in equally many windows), so attackers
// are indifferent everywhere. Every support tuple consists of k pairwise
// disjoint edges and therefore covers 2k vertices — the maximum any tuple
// can cover — so all support tuples attain the maximum load 2kν/n.
//
// The defender gain 2kν/n is again linear in k, and for fixed k it exceeds
// the k-matching gain kν/|IS| exactly when |IS| > n/2.
func PerfectMatchingNE(g *graph.Graph, attackers, k int) (TupleEquilibrium, error) {
	mate := matching.Maximum(g)
	pm := matching.Edges(mate)
	if 2*len(pm) != g.NumVertices() {
		return TupleEquilibrium{}, fmt.Errorf("%w: maximum matching has %d edges for %d vertices",
			ErrNoPerfectMatching, len(pm), g.NumVertices())
	}
	if k < 1 || k > len(pm) {
		return TupleEquilibrium{}, fmt.Errorf("%w: k=%d, |M|=%d", ErrKTooLarge, k, len(pm))
	}
	gm, err := game.New(g, attackers, k)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	ids := make([]int, len(pm))
	for i, e := range pm {
		ids[i] = g.EdgeID(e)
	}
	tuples, err := CyclicTuples(g, ids, k)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	allV := make([]int, g.NumVertices())
	for v := range allV {
		allV[v] = v
	}
	profile, err := uniformProfile(gm, allV, tuples)
	if err != nil {
		return TupleEquilibrium{}, err
	}
	return TupleEquilibrium{
		Game:        gm,
		Profile:     profile,
		VPSupport:   allV,
		EdgeSupport: pm,
		Tuples:      tuples,
	}, nil
}

// RegularGraphEdgeNE constructs the Edge-model (k = 1) mixed NE on a
// d-regular graph: attackers uniform on V, defender uniform on all edges.
// Every vertex is hit with probability d/m (equal by regularity) and every
// edge carries load 2ν/n (equal and maximal since loads are uniform), so
// both sides are indifferent.
//
// The naive cyclic lift of this profile to Π_k is NOT an equilibrium in
// general: a window containing two adjacent edges covers fewer than 2k
// vertices and falls short of the maximum load. The tests demonstrate this
// failure mode; use PerfectMatchingNE for tuple-model defense on regular
// graphs with perfect matchings.
func RegularGraphEdgeNE(g *graph.Graph, attackers int) (EdgeEquilibrium, error) {
	regular, _ := g.IsRegular()
	if !regular {
		return EdgeEquilibrium{}, ErrNotRegular
	}
	gm, err := game.New(g, attackers, 1)
	if err != nil {
		return EdgeEquilibrium{}, err
	}
	allV := make([]int, g.NumVertices())
	for v := range allV {
		allV[v] = v
	}
	profile, err := uniformProfile(gm, allV, edgesAsTuples(g, g.Edges()))
	if err != nil {
		return EdgeEquilibrium{}, err
	}
	return EdgeEquilibrium{
		Game:        gm,
		Profile:     profile,
		VPSupport:   allV,
		EdgeSupport: g.Edges(),
	}, nil
}
