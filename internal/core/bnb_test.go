package core

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
)

// Property: branch and bound agrees with exhaustive enumeration on random
// general loads (not independent, not uniform — the case neither
// structural shortcut covers).
func TestPropertyBranchBoundAgreesWithExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(4+rng.Intn(6), 0.5, seed)
		k := 1 + rng.Intn(min(4, g.NumEdges()))
		loads := make([]*big.Rat, g.NumVertices())
		for i := range loads {
			loads[i] = big.NewRat(int64(rng.Intn(6)), int64(1+rng.Intn(3)))
		}
		bb, bbWitness, ok := maxLoadBranchBound(g, k, loads)
		if !ok {
			return false // these instances are tiny; budget can't blow
		}
		ex, _, err := maxLoadExhaustive(g, k, loads)
		if err != nil {
			return false
		}
		if bb.Cmp(ex) != 0 {
			return false
		}
		// Witness attains the claimed value.
		return tupleLoadOf(g, loads, bbWitness).Cmp(bb) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBranchBoundHandlesZeroLoads(t *testing.T) {
	g := graph.Cycle(6)
	loads := zeroLoads(6)
	value, witness, ok := maxLoadBranchBound(g, 2, loads)
	if !ok {
		t.Fatal("budget blown on trivial instance")
	}
	if value.Sign() != 0 {
		t.Errorf("value = %v, want 0", value)
	}
	if witness.Size() != 2 {
		t.Errorf("witness size = %d", witness.Size())
	}
}

func TestBranchBoundLargeInstance(t *testing.T) {
	// C(60, 4) ≈ 487k exceeds nothing, but use k=6: C(60,6) ≈ 50M — far
	// beyond the exhaustive limit; B&B must still finish by pruning
	// (loads concentrated on few vertices prune aggressively).
	g := graph.RandomConnected(40, 0.08, 3)
	if g.NumEdges() < 45 {
		t.Skip("instance too sparse for the scenario")
	}
	loads := zeroLoads(g.NumVertices())
	loads[0] = big.NewRat(5, 1)
	loads[1] = big.NewRat(4, 1)
	loads[2] = big.NewRat(3, 1)
	loads[3] = big.NewRat(2, 1)
	// Make the loaded set non-independent if possible so the general path
	// is exercised through MaxTupleLoad.
	value, witness, err := MaxTupleLoad(g, 6, loads)
	if err != nil {
		t.Fatalf("MaxTupleLoad: %v", err)
	}
	if tupleLoadOf(g, loads, witness).Cmp(value) != 0 {
		t.Error("witness does not attain the value")
	}
	// Upper bound sanity: cannot exceed the total load.
	total := big.NewRat(14, 1)
	if value.Cmp(total) > 0 {
		t.Errorf("value %v exceeds total load", value)
	}
}

// TestVerifyNEUsesBranchBound: an equilibrium-like profile with general
// loads on a mid-size instance verifies through the B&B path rather than
// erroring. We use the LP oracle's defender strategy on a non-bipartite
// graph with 2 attackers on mixed supports.
func TestVerifyNEUsesBranchBound(t *testing.T) {
	g := graph.Wheel(8) // hub + rim: non-bipartite, loads won't be uniform
	loads := zeroLoads(8)
	loads[0] = big.NewRat(1, 2)
	loads[1] = big.NewRat(1, 3)
	loads[2] = big.NewRat(1, 6)
	// Hub and two adjacent rim vertices: dependent, non-uniform.
	if independentInGraph(g, []int{0, 1, 2}) {
		t.Fatal("test premise: loads must be on dependent vertices")
	}
	value, _, err := MaxTupleLoad(g, 2, loads)
	if err != nil {
		t.Fatalf("MaxTupleLoad: %v", err)
	}
	// Edges (0,1) and (1,2) cover {0,1,2} exactly: total load 1.
	if value.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("value = %v, want 1", value)
	}
}

// TestBranchBoundBudgetTrips pins the budget contract: when the node
// budget is exhausted MaxTupleLoad surfaces ErrCannotVerify (never an
// inexact value), and the core.bnb.* counters account for the work done.
func TestBranchBoundBudgetTrips(t *testing.T) {
	g, k, loads := bnbInstance(t)

	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)

	// Full budget: the search completes and both counters advance.
	before := reg.Snapshot().Counters
	value, witness, err := MaxTupleLoad(g, k, loads)
	if err != nil {
		t.Fatalf("MaxTupleLoad with full budget: %v", err)
	}
	if tupleLoadOf(g, loads, witness).Cmp(value) != 0 {
		t.Error("witness does not attain the value")
	}
	after := reg.Snapshot().Counters
	expanded := after["core.bnb.nodes_expanded"] - before["core.bnb.nodes_expanded"]
	prunedDelta := after["core.bnb.nodes_pruned"] - before["core.bnb.nodes_pruned"]
	if expanded == 0 {
		t.Error("core.bnb.nodes_expanded did not advance on a completed search")
	}
	if expanded > BnBNodeBudget {
		t.Errorf("expanded %d nodes, budget is %d", expanded, BnBNodeBudget)
	}
	if prunedDelta == 0 {
		t.Error("core.bnb.nodes_pruned did not advance; instance too easy to exercise pruning")
	}

	// Starved budget: the same instance must trip to ErrCannotVerify.
	const tiny = 50
	old := bnbNodeBudget
	bnbNodeBudget = tiny
	defer func() { bnbNodeBudget = old }()

	before = reg.Snapshot().Counters
	if _, _, err := MaxTupleLoad(g, k, loads); !errors.Is(err, ErrCannotVerify) {
		t.Fatalf("starved MaxTupleLoad: err = %v, want ErrCannotVerify", err)
	}
	after = reg.Snapshot().Counters
	expanded = after["core.bnb.nodes_expanded"] - before["core.bnb.nodes_expanded"]
	if expanded == 0 || expanded > tiny+1 {
		t.Errorf("starved nodes_expanded delta = %d, want 1..%d", expanded, tiny+1)
	}
}
