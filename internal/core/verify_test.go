package core

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func ratOf(a, b int64) *big.Rat { return big.NewRat(a, b) }

func zeroLoads(n int) []*big.Rat {
	loads := make([]*big.Rat, n)
	for i := range loads {
		loads[i] = new(big.Rat)
	}
	return loads
}

func TestMaxTupleLoadIndependentCase(t *testing.T) {
	// Star K_{1,4}: loads on the (independent) leaves.
	g := graph.Star(5)
	loads := zeroLoads(5)
	loads[1] = ratOf(5, 1)
	loads[2] = ratOf(3, 1)
	loads[3] = ratOf(1, 1)

	tests := []struct {
		k    int
		want *big.Rat
	}{
		{1, ratOf(5, 1)},
		{2, ratOf(8, 1)},
		{3, ratOf(9, 1)},
		{4, ratOf(9, 1)}, // padding beyond the loaded vertices adds nothing
	}
	for _, tt := range tests {
		got, witness, err := MaxTupleLoad(g, tt.k, loads)
		if err != nil {
			t.Fatalf("k=%d: %v", tt.k, err)
		}
		if got.Cmp(tt.want) != 0 {
			t.Errorf("k=%d: max = %v, want %v", tt.k, got, tt.want)
		}
		if witness.Size() != tt.k {
			t.Errorf("k=%d: witness size %d", tt.k, witness.Size())
		}
		if wl := tupleLoadOf(g, loads, witness); wl.Cmp(tt.want) != 0 {
			t.Errorf("k=%d: witness load %v != claimed max %v", tt.k, wl, tt.want)
		}
	}
}

func TestMaxTupleLoadUniformCase(t *testing.T) {
	// C6 with uniform loads 1: μ = 3.
	g := graph.Cycle(6)
	loads := make([]*big.Rat, 6)
	for i := range loads {
		loads[i] = ratOf(1, 1)
	}
	tests := []struct {
		k    int
		want *big.Rat
	}{
		{1, ratOf(2, 1)},
		{2, ratOf(4, 1)},
		{3, ratOf(6, 1)},
		{4, ratOf(6, 1)},
		{6, ratOf(6, 1)},
	}
	for _, tt := range tests {
		got, witness, err := MaxTupleLoad(g, tt.k, loads)
		if err != nil {
			t.Fatalf("k=%d: %v", tt.k, err)
		}
		if got.Cmp(tt.want) != 0 {
			t.Errorf("k=%d: max = %v, want %v", tt.k, got, tt.want)
		}
		if wl := tupleLoadOf(g, loads, witness); wl.Cmp(tt.want) != 0 {
			t.Errorf("k=%d: witness load %v != max %v", tt.k, wl, tt.want)
		}
	}
}

func TestMaxTupleLoadUniformStar(t *testing.T) {
	// Star K_{1,5}: μ = 1, so k edges cover min(6, k+1) vertices.
	g := graph.Star(6)
	loads := make([]*big.Rat, 6)
	for i := range loads {
		loads[i] = ratOf(1, 2)
	}
	for k := 1; k <= 5; k++ {
		want := new(big.Rat).Mul(ratOf(1, 2), ratOf(int64(min(6, k+1)), 1))
		got, _, err := MaxTupleLoad(g, k, loads)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got.Cmp(want) != 0 {
			t.Errorf("k=%d: max = %v, want %v", k, got, want)
		}
	}
}

func TestMaxTupleLoadErrors(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := MaxTupleLoad(g, 0, zeroLoads(3)); err == nil {
		t.Error("k=0 must fail")
	}
	if _, _, err := MaxTupleLoad(g, 3, zeroLoads(3)); err == nil {
		t.Error("k>m must fail")
	}
	loads := zeroLoads(3)
	loads[1] = ratOf(-1, 1)
	if _, _, err := MaxTupleLoad(g, 1, loads); err == nil {
		t.Error("negative load must fail")
	}
	loads = zeroLoads(3)
	loads[0] = nil
	if _, _, err := MaxTupleLoad(g, 1, loads); err == nil {
		t.Error("nil load must fail")
	}
}

// Property: the structural maximizers agree with exhaustive enumeration.
func TestPropertyMaxTupleLoadAgreesWithExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(3+rng.Intn(6), 0.5, seed)
		k := 1 + rng.Intn(g.NumEdges())
		loads := zeroLoads(g.NumVertices())
		switch rng.Intn(2) {
		case 0:
			// Loads on a greedy independent set.
			for _, v := range greedyIS(g) {
				loads[v] = big.NewRat(int64(1+rng.Intn(4)), int64(1+rng.Intn(3)))
			}
		case 1:
			// Uniform loads.
			c := big.NewRat(int64(1+rng.Intn(4)), int64(1+rng.Intn(3)))
			for i := range loads {
				loads[i] = c
			}
		}
		fast, fastWitness, err := MaxTupleLoad(g, k, loads)
		if err != nil {
			return false
		}
		slow, _, err := maxLoadExhaustive(g, k, loads)
		if err != nil {
			return false
		}
		if fast.Cmp(slow) != 0 {
			return false
		}
		return tupleLoadOf(g, loads, fastWitness).Cmp(fast) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// greedyIS is a tiny local maximal-independent-set helper for tests.
func greedyIS(g *graph.Graph) []int {
	blocked := make([]bool, g.NumVertices())
	var is []int
	for v := 0; v < g.NumVertices(); v++ {
		if blocked[v] {
			continue
		}
		is = append(is, v)
		g.EachNeighbor(v, func(u int) { blocked[u] = true })
	}
	return is
}

func TestVerifyNENegativeCases(t *testing.T) {
	// C4: attacker mass on one vertex, defender on an edge missing it.
	g := graph.Cycle(4)
	gm, err := game.New(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := game.NewTuple(g, []graph.Edge{graph.NewEdge(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := game.UniformTupleStrategy([]game.Tuple{tp})
	if err != nil {
		t.Fatal(err)
	}
	// Attacker sits on covered vertex 2 while 0 is free: not a best
	// response for the attacker.
	mp := game.NewSymmetricProfile(1, game.UniformVertexStrategy([]int{2}), ts)
	if err := VerifyNE(gm, mp); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("err = %v, want ErrNotEquilibrium", err)
	}
	// Attacker on uncovered vertex 0, defender wastes its tuple elsewhere:
	// defender deviation exists.
	mp2 := game.NewSymmetricProfile(1, game.UniformVertexStrategy([]int{0}), ts)
	if err := VerifyNE(gm, mp2); !errors.Is(err, ErrNotEquilibrium) {
		t.Errorf("err = %v, want ErrNotEquilibrium", err)
	}
}

func TestVerifyNERejectsInvalidProfile(t *testing.T) {
	g := graph.Cycle(4)
	gm, err := game.New(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Arity mismatch.
	tp, _ := game.NewTuple(g, []graph.Edge{graph.NewEdge(0, 1)})
	ts, _ := game.UniformTupleStrategy([]game.Tuple{tp})
	mp := game.NewSymmetricProfile(1, game.UniformVertexStrategy([]int{0}), ts)
	if err := VerifyNE(gm, mp); !errors.Is(err, game.ErrInvalidProfile) {
		t.Errorf("err = %v, want ErrInvalidProfile", err)
	}
}

func TestVerifyCharacterizationExtraConditions(t *testing.T) {
	// A profile that satisfies best-response conditions but violates the
	// cover conditions cannot exist by Theorem 3.4 for true equilibria;
	// here we exercise the negative path with a doctored profile on K2:
	// the only tuple covers everything, so conditions hold — build instead
	// on P4 where the defender covers only part of the graph but the
	// attacker support is outside... such profiles fail VerifyNE first, so
	// this test confirms the positive path on a genuine equilibrium.
	g := graph.CompleteBipartite(2, 3)
	ne, err := SolveTupleModel(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCharacterization(ne.Game, ne.Profile); err != nil {
		t.Errorf("characterization should hold: %v", err)
	}
}

func TestCombinationsWithin(t *testing.T) {
	tests := []struct {
		m, k, limit int
		want        bool
	}{
		{10, 2, 45, true},
		{10, 2, 44, false},
		{100, 3, 200000, true},
		{100, 50, 1 << 30, false},
		{5, 7, 1000, false},
		{5, -1, 1000, false},
		{5, 0, 1, true},
		{60, 30, 2000000, false},
	}
	for _, tt := range tests {
		if got := combinationsWithin(tt.m, tt.k, tt.limit); got != tt.want {
			t.Errorf("combinationsWithin(%d,%d,%d) = %v, want %v", tt.m, tt.k, tt.limit, got, tt.want)
		}
	}
}
