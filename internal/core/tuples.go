// Package core implements the contribution of "The Power of the Defender"
// (Gelastou, Mavronicolas, Papadopoulou, Philippou, Spirakis; ICDCS 2006):
//
//   - pure Nash equilibria of the Tuple model Π_k(G) (Theorem 3.1,
//     Corollaries 3.2–3.3),
//   - the graph-theoretic characterization of mixed Nash equilibria
//     (Theorem 3.4) and an exact equilibrium verifier built on it,
//   - matching Nash equilibria of the Edge model Π_1(G) via Algorithm A of
//     [7] (Lemma 2.1, Theorem 2.2),
//   - k-matching configurations and k-matching Nash equilibria (Definition
//     4.1, Lemma 4.1), the polynomial-time reductions between matching and
//     k-matching equilibria (Theorem 4.5, Lemmas 4.6 and 4.8), and
//     Algorithm A_tuple (Theorems 4.12–4.13),
//   - structural extensions from the companion work [8]: perfect-matching
//     and regular-graph equilibria, and the Path-model pure equilibria.
//
// All probabilities and profits are exact rationals; every construction in
// this package is cross-checked by the verifier in verify.go.
package core

import (
	"fmt"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// CyclicTuples implements the tuple construction of Lemma 4.8 / step 3 of
// Algorithm A_tuple: the edges (given as indices into g's edge list and
// labeled 0..E-1 in slice order) are traversed cyclically in windows of k,
// producing δ = E / gcd(E, k) tuples
//
//	t_i = ⟨ e_{(i-1)k mod E}, ..., e_{(ik-1) mod E} ⟩ ,  i = 1..δ,
//
// in which every edge appears in exactly δ·k/E = k/gcd(E,k) tuples (Claim
// 4.9). This equal multiplicity is condition (3) of a k-matching
// configuration. Requires 1 <= k <= len(edgeIDs).
func CyclicTuples(g *graph.Graph, edgeIDs []int, k int) ([]game.Tuple, error) {
	e := len(edgeIDs)
	if k < 1 || k > e {
		return nil, fmt.Errorf("core: cyclic tuples need 1 <= k <= %d edges, got k=%d", e, k)
	}
	delta := e / gcd(e, k)
	tuples := make([]game.Tuple, 0, delta)
	pos := 0
	for i := 0; i < delta; i++ {
		ids := make([]int, k)
		for j := 0; j < k; j++ {
			ids[j] = edgeIDs[pos]
			pos = (pos + 1) % e
		}
		t, err := game.NewTupleFromIDs(g, ids)
		if err != nil {
			return nil, fmt.Errorf("core: cyclic tuple %d: %w", i, err)
		}
		tuples = append(tuples, t)
	}
	return tuples, nil
}

// EdgeMultiplicity counts how many of the given tuples contain each edge
// index, returning a map restricted to edges that occur at least once.
func EdgeMultiplicity(tuples []game.Tuple) map[int]int {
	mult := make(map[int]int)
	for _, t := range tuples {
		for _, id := range t.IDs() {
			mult[id]++
		}
	}
	return mult
}

// gcd returns the greatest common divisor of two positive integers.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple of two positive integers, or an
// error if the product a/gcd(a,b)·b overflows int. The quotient check is
// sound because both factors are positive, so the only failure mode is
// magnitude overflow, never sign wrap.
func lcm(a, b int) (int, error) {
	q := a / gcd(a, b)
	l := q * b
	if l/b != q {
		return 0, fmt.Errorf("core: lcm(%d, %d) overflows int", a, b)
	}
	return l, nil
}
