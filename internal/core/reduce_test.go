package core

import (
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

func TestLiftAndReduceRoundTrip(t *testing.T) {
	// Theorem 4.5 in both directions, with supports preserved.
	for name, g := range bipartiteFamilies(t) {
		t.Run(name, func(t *testing.T) {
			edgeNE, err := SolveEdgeModel(g, 5)
			if err != nil {
				t.Fatalf("edge model: %v", err)
			}
			maxK := len(edgeNE.EdgeSupport)
			if maxK > 5 {
				maxK = 5
			}
			for k := 1; k <= maxK; k++ {
				lifted, err := LiftToTupleModel(edgeNE, k)
				if err != nil {
					t.Fatalf("lift k=%d: %v", k, err)
				}
				if err := VerifyNE(lifted.Game, lifted.Profile); err != nil {
					t.Fatalf("lift k=%d not NE: %v", k, err)
				}
				back, err := ReduceToEdgeModel(lifted)
				if err != nil {
					t.Fatalf("reduce k=%d: %v", k, err)
				}
				if err := VerifyNE(back.Game, back.Profile); err != nil {
					t.Fatalf("reduced profile not NE: %v", err)
				}
				// Supports survive the round trip.
				if !graph.SetsEqual(back.VPSupport, edgeNE.VPSupport) {
					t.Errorf("k=%d: VP support changed: %v -> %v", k, edgeNE.VPSupport, back.VPSupport)
				}
				if len(back.EdgeSupport) != len(edgeNE.EdgeSupport) {
					t.Errorf("k=%d: edge support size changed", k)
				}
				// Corollaries 4.7/4.10: gain ratio is exactly k.
				want := new(big.Rat).Mul(edgeNE.DefenderGain(), big.NewRat(int64(k), 1))
				if got := lifted.DefenderGain(); got.Cmp(want) != 0 {
					t.Errorf("k=%d: lifted gain %v, want %v", k, got, want)
				}
				if got := back.DefenderGain(); got.Cmp(edgeNE.DefenderGain()) != 0 {
					t.Errorf("k=%d: reduced gain %v, want %v", k, got, edgeNE.DefenderGain())
				}
			}
		})
	}
}

func TestLiftRejectsBadK(t *testing.T) {
	ne, err := SolveEdgeModel(graph.Cycle(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LiftToTupleModel(ne, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := LiftToTupleModel(ne, len(ne.EdgeSupport)+1); err == nil {
		t.Error("k beyond support must fail")
	}
}

func TestReduceRejectsMalformedEquilibrium(t *testing.T) {
	// Build a genuine equilibrium and corrupt its support records.
	ne, err := SolveTupleModel(graph.Grid(3, 3), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := ne
	corrupt.VPSupport = []int{0} // wrong support breaks the uniform profile
	if _, err := ReduceToEdgeModel(corrupt); err == nil {
		t.Error("corrupted support must be rejected")
	}
}

func TestLiftPreservesLabelingOrder(t *testing.T) {
	ne, err := SolveEdgeModel(graph.Cycle(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := LiftToTupleModel(ne, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lifted.EdgeSupport) != len(ne.EdgeSupport) {
		t.Fatalf("edge support sizes differ")
	}
	for i := range ne.EdgeSupport {
		if lifted.EdgeSupport[i] != ne.EdgeSupport[i] {
			t.Fatalf("labeling order changed at %d: %v vs %v", i, lifted.EdgeSupport[i], ne.EdgeSupport[i])
		}
	}
}
