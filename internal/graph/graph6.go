package graph

import (
	"errors"
	"fmt"
	"strings"
)

// graph6 is McKay's compact ASCII format for simple undirected graphs,
// used by nauty/geng and most graph repositories. Support for it lets the
// experiments consume standard instance collections directly.
//
// Layout: N(n) followed by the upper-triangle adjacency bits x(0,1),
// x(0,2), x(1,2), x(0,3), ... packed big-endian into 6-bit groups, each
// encoded as byte value+63. N(n) is one byte n+63 for n <= 62, or '~'
// followed by three 6-bit bytes for n <= 258047 (the 8-byte form for even
// larger graphs is out of scope here).

// ErrBadGraph6 is returned for malformed graph6 input.
var ErrBadGraph6 = errors.New("graph: malformed graph6")

// ParseGraph6 decodes a single graph6 line (surrounding whitespace and an
// optional ">>graph6<<" header are tolerated). Parsing is strict: the
// vertex count must use its canonical header form, the byte count must
// match exactly, and padding bits in the final adjacency byte must be
// zero, so every accepted string satisfies FormatGraph6(ParseGraph6(s)) ==
// s (after trimming) — the round-trip identity fuzzed by FuzzParseGraph6
// and relied on by every graph6-keyed cache. Strictness matters beyond
// hygiene — graph6 strings key the structure and response caches, and a
// lax parser would let one graph hide under several keys. O(n^2) (the
// full upper triangle is scanned); allocates the graph.
func ParseGraph6(s string) (*Graph, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), ">>graph6<<"))
	if s == "" {
		return nil, fmt.Errorf("%w: empty input", ErrBadGraph6)
	}
	data := []byte(s)
	for _, b := range data {
		if b < 63 || b > 126 {
			return nil, fmt.Errorf("%w: byte %q out of range", ErrBadGraph6, b)
		}
	}
	// Decode N(n).
	var n, pos int
	switch {
	case data[0] == 126 && len(data) >= 4 && data[1] == 126:
		return nil, fmt.Errorf("%w: 8-byte vertex counts not supported", ErrBadGraph6)
	case data[0] == 126:
		if len(data) < 4 {
			return nil, fmt.Errorf("%w: truncated extended vertex count", ErrBadGraph6)
		}
		n = int(data[1]-63)<<12 | int(data[2]-63)<<6 | int(data[3]-63)
		pos = 4
		// The long form is only canonical for 63 <= n <= 258047: smaller
		// counts must use the one-byte header, and larger ones the 8-byte
		// form we reject above. Accepting the non-canonical encodings would
		// break Format∘Parse = identity (the fuzzed round-trip contract)
		// and let one graph hide under several cache keys.
		// (n > 258047 is unreachable here: its second header byte would be
		// '~', which the 8-byte branch above already rejects.)
		if n <= 62 {
			return nil, fmt.Errorf("%w: non-canonical long-form header for n=%d (short form required)", ErrBadGraph6, n)
		}
	default:
		n = int(data[0] - 63)
		pos = 1
	}
	bitsNeeded := n * (n - 1) / 2
	bytesNeeded := (bitsNeeded + 5) / 6
	if len(data)-pos != bytesNeeded {
		return nil, fmt.Errorf("%w: want %d adjacency bytes for n=%d, got %d",
			ErrBadGraph6, bytesNeeded, n, len(data)-pos)
	}
	// The last adjacency byte's bits beyond x(n-2,n-1) are padding and must
	// be zero — trailing garbage bits would otherwise parse as a valid graph
	// and defeat the Format∘Parse = identity round trip.
	if pad := bytesNeeded*6 - bitsNeeded; pad > 0 {
		if last := data[pos+bytesNeeded-1] - 63; last&(1<<uint(pad)-1) != 0 {
			return nil, fmt.Errorf("%w: nonzero padding bits in final adjacency byte", ErrBadGraph6)
		}
	}
	g := New(n)
	bit := 0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			byteIdx := pos + bit/6
			shift := 5 - bit%6
			if (data[byteIdx]-63)>>uint(shift)&1 == 1 {
				if err := g.AddEdge(i, j); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadGraph6, err)
				}
			}
			bit++
		}
	}
	return g, nil
}

// FormatGraph6 encodes g as a graph6 string. Graphs beyond 258047 vertices
// are rejected. The encoding is canonical — one byte sequence per graph —
// so FormatGraph6 inverts ParseGraph6 exactly: Format(Parse(s)) == s for
// every accepted s, and Parse(Format(g)) reproduces g's edge set. O(n^2);
// allocates the output string.
func FormatGraph6(g *Graph) (string, error) {
	n := g.NumVertices()
	if n > 258047 {
		return "", fmt.Errorf("%w: n=%d too large to encode", ErrBadGraph6, n)
	}
	var sb strings.Builder
	if n <= 62 {
		sb.WriteByte(byte(n + 63))
	} else {
		sb.WriteByte(126)
		sb.WriteByte(byte(n>>12&63 + 63))
		sb.WriteByte(byte(n>>6&63 + 63))
		sb.WriteByte(byte(n&63 + 63))
	}
	acc, accBits := 0, 0
	flush := func() {
		sb.WriteByte(byte(acc + 63))
		acc, accBits = 0, 0
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			acc <<= 1
			if g.HasEdge(i, j) {
				acc |= 1
			}
			accBits++
			if accBits == 6 {
				flush()
			}
		}
	}
	if accBits > 0 {
		acc <<= uint(6 - accBits)
		flush()
	}
	return sb.String(), nil
}
