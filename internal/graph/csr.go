package graph

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/par"
)

// CSR construction counter (catalogued in OBSERVABILITY.md): one increment
// per compressed-sparse-row build, whichever constructor ran. Compared
// against solver throughput it shows whether large-instance runs are
// rebuilding their graphs instead of reusing them.
var obsCSRBuilds = obs.Default().Counter("graph.csr.builds")

// CSR bipartition counter (catalogued in OBSERVABILITY.md): one increment
// per BFS 2-coloring attempt on a CSR graph — the routing decision every
// sparse solve starts with (see SCALING.md "Routing").
var obsCSRBipartitions = obs.Default().Counter("graph.csr.bipartitions")

// CSR is a compressed-sparse-row representation of a simple undirected
// graph on vertices 0..n-1: the neighbors of v are
// Col[RowPtr[v]:RowPtr[v+1]], sorted ascending, and every undirected edge
// {u, v} appears twice (u in v's row and v in u's row). It is the
// million-vertex substrate of the solver stack: two flat int32 slices,
// ~8 bytes per directed arc plus 4 bytes per vertex, cache-linear
// iteration, and no per-vertex allocations (compare Graph's per-vertex
// adjacency slices and edge-index map).
//
// A CSR is immutable after construction; all methods are safe for
// concurrent use. Int32 indices cap instances at 2^31-1 vertices and
// directed arcs — two orders of magnitude above the 10^6-vertex target —
// and halve the memory footprint against int64 indexing.
type CSR struct {
	// RowPtr has length n+1; RowPtr[0] = 0 and RowPtr[n] = len(Col).
	RowPtr []int32
	// Col holds the concatenated adjacency rows, each sorted ascending.
	Col []int32
}

// NumVertices returns the number of vertices n. O(1), does not allocate.
func (c *CSR) NumVertices() int { return len(c.RowPtr) - 1 }

// NumEdges returns the number of undirected edges m = len(Col)/2.
// O(1), does not allocate.
func (c *CSR) NumEdges() int { return len(c.Col) / 2 }

// Degree returns the degree of v, or 0 if v is out of range.
// O(1), does not allocate.
func (c *CSR) Degree(v int) int {
	if v < 0 || v >= c.NumVertices() {
		return 0
	}
	return int(c.RowPtr[v+1] - c.RowPtr[v])
}

// Neighbors returns the ascending neighbor row of v as a subslice of Col —
// the allocation-free iteration primitive of the sparse core. The caller
// must not modify the returned slice. O(1), does not allocate; returns nil
// for out-of-range v.
func (c *CSR) Neighbors(v int) []int32 {
	if v < 0 || v >= c.NumVertices() {
		return nil
	}
	return c.Col[c.RowPtr[v]:c.RowPtr[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search in the
// shorter of the two rows. O(log min(deg u, deg v)), does not allocate.
func (c *CSR) HasEdge(u, v int) bool {
	n := c.NumVertices()
	if u < 0 || u >= n || v < 0 || v >= n || u == v {
		return false
	}
	if c.Degree(v) < c.Degree(u) {
		u, v = v, u
	}
	row := c.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// HasIsolatedVertex reports whether some vertex has degree 0 (the Tuple
// model is undefined then). O(n), does not allocate.
func (c *CSR) HasIsolatedVertex() bool {
	for v, n := 0, c.NumVertices(); v < n; v++ {
		if c.RowPtr[v+1] == c.RowPtr[v] {
			return true
		}
	}
	return false
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
// O(n), does not allocate.
func (c *CSR) MaxDegree() int {
	max := 0
	for v, n := 0, c.NumVertices(); v < n; v++ {
		if d := c.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// EachEdge calls fn once per undirected edge with u < v, in ascending
// (u, v) order. O(n + m), does not allocate.
func (c *CSR) EachEdge(fn func(u, v int32)) {
	for u, n := 0, c.NumVertices(); u < n; u++ {
		for _, v := range c.Neighbors(u) {
			if int32(u) < v {
				fn(int32(u), v)
			}
		}
	}
}

// Validate checks the structural invariants every constructor guarantees:
// RowPtr monotone and anchored at 0 and len(Col), rows sorted strictly
// ascending (no parallel edges), no self-loops, in-range columns, and
// symmetry (u lists v iff v lists u). O(n + m log Δ) where Δ is the
// maximum degree; allocates nothing. Intended for fuzzers and for callers
// assembling RowPtr/Col by hand.
func (c *CSR) Validate() error {
	n := c.NumVertices()
	if len(c.RowPtr) == 0 {
		return fmt.Errorf("graph: csr: empty RowPtr")
	}
	if c.RowPtr[0] != 0 || int(c.RowPtr[n]) != len(c.Col) {
		return fmt.Errorf("graph: csr: RowPtr not anchored: first=%d last=%d len(Col)=%d", c.RowPtr[0], c.RowPtr[n], len(c.Col))
	}
	for v := 0; v < n; v++ {
		if c.RowPtr[v+1] < c.RowPtr[v] {
			return fmt.Errorf("graph: csr: RowPtr decreases at vertex %d", v)
		}
		row := c.Neighbors(v)
		for i, u := range row {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("%w: csr row %d lists %d with n=%d", ErrVertexRange, v, u, n)
			}
			if int(u) == v {
				return fmt.Errorf("%w: csr row %d", ErrSelfLoop, v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("%w: csr row %d not strictly ascending at offset %d", ErrDuplicateEdge, v, i)
			}
			if !c.HasEdge(int(u), v) {
				return fmt.Errorf("graph: csr: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// FromGraph converts an adjacency-list Graph into its CSR form. The
// neighbor rows are copied in Graph's already-sorted order, so the result
// is canonical: FromGraph(g).ToGraph() has exactly g's edge set (edge
// insertion order is not preserved — CSR carries no edge list). O(n + m);
// allocates the two CSR slices and nothing else.
func FromGraph(g *Graph) *CSR {
	obsCSRBuilds.Inc()
	n := g.NumVertices()
	c := &CSR{
		RowPtr: make([]int32, n+1),
		Col:    make([]int32, 0, 2*g.NumEdges()),
	}
	for v := 0; v < n; v++ {
		for _, u := range g.adj[v] {
			c.Col = append(c.Col, int32(u))
		}
		c.RowPtr[v+1] = int32(len(c.Col))
	}
	return c
}

// csrParallelGrain is the index-range size below which the CSR bulk
// paths (BuildCSR, Bipartition) stay on their serial code: fan-out for
// fewer elements costs more in goroutine plumbing than the loop body.
// Both routes produce bit-identical results — the guard is purely a
// performance decision, which is what the differential tests pin down.
const csrParallelGrain = 1 << 15

// BuildCSR assembles a CSR from a raw undirected edge list given as
// parallel endpoint slices. It rejects out-of-range endpoints, self-loops
// and duplicate edges (in either orientation) with the package's sentinel
// errors. Construction is a counting sort over the endpoint pair followed
// by a per-row sort: O(n + m log Δ) time, allocating only the CSR slices.
// This is the bulk-load path the large-graph generators use — no
// per-edge map insertions, no per-vertex slices.
//
// Above csrParallelGrain edges the load runs on the par worker budget:
// per-worker degree histograms merged in worker order, a sequential
// prefix sum, then a parallel scatter over atomic row cursors. The
// per-row sort canonicalizes whatever arrival order the scatter
// produced, so the result — and, via smallest-index fault reduction,
// every rejection — is bit-identical to the serial route at any thread
// count (FuzzBuildCSR pins this against the serial reference).
func BuildCSR(n int, us, vs []int32) (*CSR, error) {
	if n < 0 {
		n = 0
	}
	if len(us) != len(vs) {
		return nil, fmt.Errorf("graph: csr: endpoint slices disagree: %d vs %d", len(us), len(vs))
	}
	obsCSRBuilds.Inc()
	c := &CSR{
		RowPtr: make([]int32, n+1),
		Col:    make([]int32, 2*len(us)),
	}
	if workers := par.Split(par.Workers(0), len(us), csrParallelGrain); workers > 1 {
		if err := buildCSRParallel(c, n, us, vs, workers); err != nil {
			return nil, err
		}
		return c, nil
	}
	for i := range us {
		u, v := us[i], vs[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
		}
		c.RowPtr[u+1]++
		c.RowPtr[v+1]++
	}
	for v := 0; v < n; v++ {
		c.RowPtr[v+1] += c.RowPtr[v]
	}
	// fill uses RowPtr as a moving write cursor, then the cursors are
	// rewound by one row at the end (cursor[v] ends exactly at RowPtr[v+1]).
	cursor := par.GetInt32(n)
	copy(cursor, c.RowPtr[:n])
	for i := range us {
		u, v := us[i], vs[i]
		c.Col[cursor[u]] = v
		cursor[u]++
		c.Col[cursor[v]] = u
		cursor[v]++
	}
	par.PutInt32(cursor)
	for v := 0; v < n; v++ {
		row := c.Col[c.RowPtr[v]:c.RowPtr[v+1]]
		slices.Sort(row)
		for i := 1; i < len(row); i++ {
			if row[i-1] == row[i] {
				return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, v, row[i])
			}
		}
	}
	return c, nil
}

// buildCSRParallel is BuildCSR's multicore body. Three passes: validate
// endpoints while counting degrees into per-worker histograms (merged in
// worker order), a sequential prefix sum, then an atomic-cursor scatter
// and a parallel per-row sort with the duplicate check. Rejections
// reduce to the smallest edge (or vertex) index, which is exactly the
// error the serial loop reports first.
func buildCSRParallel(c *CSR, n int, us, vs []int32, workers int) error {
	m := len(us)
	counts := make([][]int32, workers)
	faults := make([]par.Fault, workers)
	par.For(workers, m, func(w, lo, hi int) {
		deg := par.GetInt32(n)
		clear(deg)
		counts[w] = deg
		for i := lo; i < hi; i++ {
			u, v := us[i], vs[i]
			if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
				faults[w] = par.Fault{At: i, Err: fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, n)}
				return
			}
			if u == v {
				faults[w] = par.Fault{At: i, Err: fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)}
				return
			}
			deg[u]++
			deg[v]++
		}
	})
	err := par.FirstFault(faults)
	if err == nil {
		par.For(par.Split(workers, n, csrParallelGrain), n, func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				var d int32
				for _, deg := range counts {
					// For clamps its fan-out to the range length, so with
					// more workers than edges the tail histograms are nil.
					if deg != nil {
						d += deg[v]
					}
				}
				c.RowPtr[v+1] = d
			}
		})
	}
	for _, deg := range counts {
		par.PutInt32(deg)
	}
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		c.RowPtr[v+1] += c.RowPtr[v]
	}
	cursor := par.GetInt32(n)
	copy(cursor, c.RowPtr[:n])
	par.For(workers, m, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			u, v := us[i], vs[i]
			c.Col[atomic.AddInt32(&cursor[u], 1)-1] = v
			c.Col[atomic.AddInt32(&cursor[v], 1)-1] = u
		}
	})
	par.PutInt32(cursor)
	for w := range faults {
		faults[w] = par.Fault{}
	}
	par.For(par.Split(workers, n, 1<<12), n, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := c.Col[c.RowPtr[v]:c.RowPtr[v+1]]
			slices.Sort(row)
			for i := 1; i < len(row); i++ {
				if row[i-1] == row[i] {
					faults[w] = par.Fault{At: v, Err: fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, v, row[i])}
					return
				}
			}
		}
	})
	return par.FirstFault(faults)
}

// ToGraph expands the CSR back into an adjacency-list Graph, inserting
// edges in ascending (u, v) order. The round-trip ToGraph(FromGraph(g))
// preserves g's edge set exactly (property-tested), though not its edge
// insertion order. O(n + m) plus the edge-index map fills — intended for
// the small-graph interop path (exact verifiers, graph6 encoding), not
// for 10^6-vertex instances, where the map alone would dominate memory.
// Allocates the full Graph.
func (c *CSR) ToGraph() *Graph {
	g := New(c.NumVertices())
	c.EachEdge(func(u, v int32) { g.mustAddEdge(int(u), int(v)) })
	return g
}

// Bipartition 2-colors the CSR graph by BFS: side[v] is 0 or 1 with every
// edge crossing sides, isolated vertices on side 0. It returns
// ErrNotBipartite on an odd cycle. This is the routing check of the
// sparse core: bipartite instances take the guaranteed König route,
// everything else the heuristic route (see SCALING.md). O(n + m);
// allocates the side slice; the queue/level scratch is pooled.
//
// Above csrParallelGrain vertices the BFS runs level-synchronously on
// the par worker budget, with components still rooted serially at the
// lowest unvisited vertex. A vertex's color is its BFS-level parity from
// that root — invariant under the order vertices are claimed within a
// level — so the side array is bit-identical to the serial route at any
// thread count. Only the edge cited by the ErrNotBipartite message may
// differ between the serial route (first conflict in queue order) and
// the parallel one (smallest conflict at the first conflicting level);
// the parallel choice is itself thread-count-invariant.
func (c *CSR) Bipartition() ([]int8, error) {
	obsCSRBipartitions.Inc()
	n := c.NumVertices()
	if workers := par.Split(par.Workers(0), n, csrParallelGrain); workers > 1 {
		return c.bipartitionParallel(workers)
	}
	side := make([]int8, n)
	for i := range side {
		side[i] = -1
	}
	queue := par.GetInt32(n)[:0]
	defer par.PutInt32(queue)
	for s := 0; s < n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			sv := side[v]
			for _, u := range c.Neighbors(int(v)) {
				switch side[u] {
				case -1:
					side[u] = 1 - sv
					queue = append(queue, u)
				case sv:
					return nil, fmt.Errorf("%w: odd cycle through edge (%d,%d)", ErrNotBipartite, v, u)
				}
			}
		}
	}
	return side, nil
}

// bipartitionParallel is Bipartition's multicore body: level-synchronous
// BFS per component with atomic CAS level claims. level[v] is the BFS
// distance from v's component root — a deterministic quantity — and the
// returned color is its parity. Frontiers merge in worker order; an odd
// cycle surfaces as an edge between two same-parity levels, reduced to
// the lexicographically smallest (v, u) at the first conflicting level
// so the citation is stable across thread counts.
func (c *CSR) bipartitionParallel(workers int) ([]int8, error) {
	n := c.NumVertices()
	level := par.GetInt32(n)
	defer par.PutInt32(level)
	par.For(workers, n, func(w, lo, hi int) {
		chunk := level[lo:hi]
		for i := range chunk {
			chunk[i] = -1
		}
	})
	frontier := par.GetInt32(n)
	defer par.PutInt32(frontier)
	nexts := make([][]int32, workers)
	type conflict struct{ v, u int32 }
	confs := make([]conflict, workers)

	for s := 0; s < n; s++ {
		if level[s] != -1 {
			continue
		}
		level[s] = 0
		frontier[0] = int32(s)
		frontLen := 1
		for cur := int32(0); frontLen > 0; cur++ {
			fw := par.Split(workers, frontLen, 512)
			for w := 0; w < fw; w++ {
				nexts[w] = nexts[w][:0]
				confs[w] = conflict{-1, -1}
			}
			par.For(fw, frontLen, func(w, lo, hi int) {
				next := nexts[w]
				worst := confs[w]
				for fi := lo; fi < hi; fi++ {
					v := frontier[fi]
					for _, u := range c.Neighbors(int(v)) {
						if atomic.CompareAndSwapInt32(&level[u], -1, cur+1) {
							next = append(next, u)
						} else if lv := atomic.LoadInt32(&level[u]); (lv-cur)&1 == 0 {
							if worst.v == -1 || v < worst.v || (v == worst.v && u < worst.u) {
								worst = conflict{v, u}
							}
						}
					}
				}
				nexts[w] = next
				confs[w] = worst
			})
			worst := conflict{-1, -1}
			for w := 0; w < fw; w++ {
				cw := confs[w]
				if cw.v == -1 {
					continue
				}
				if worst.v == -1 || cw.v < worst.v || (cw.v == worst.v && cw.u < worst.u) {
					worst = cw
				}
			}
			if worst.v != -1 {
				return nil, fmt.Errorf("%w: odd cycle through edge (%d,%d)", ErrNotBipartite, worst.v, worst.u)
			}
			frontLen = 0
			for w := 0; w < fw; w++ {
				frontLen += copy(frontier[frontLen:], nexts[w])
			}
		}
	}
	side := make([]int8, n)
	par.For(workers, n, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			side[v] = int8(level[v] & 1)
		}
	})
	return side, nil
}

// IsBipartite reports whether the CSR graph has no odd cycle.
// O(n + m); allocates Bipartition's scratch.
func (c *CSR) IsBipartite() bool {
	_, err := c.Bipartition()
	return err == nil
}

// Bitset is a fixed-capacity set of small non-negative integers backed by
// a []uint64 — the frontier representation of the sparse algorithms
// (Hopcroft–Karp BFS layers, König reachability). All operations are O(1)
// except Reset (O(capacity/64)); none allocate after construction.
type Bitset struct {
	words []uint64
}

// NewBitset returns an empty bitset with capacity for values 0..n-1.
// Allocates one word per 64 values.
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64)}
}

// Set inserts v. O(1), does not allocate; v must be within capacity.
func (b *Bitset) Set(v int32) { b.words[v>>6] |= 1 << uint(v&63) }

// Has reports whether v is present. O(1), does not allocate.
func (b *Bitset) Has(v int32) bool { return b.words[v>>6]&(1<<uint(v&63)) != 0 }

// TrySetAtomic inserts v with a compare-and-swap loop, reporting whether
// this call inserted it — the vertex-ownership claim of the parallel BFS
// frontiers: exactly one worker wins each vertex, every loser sees a
// false return. Safe for concurrent use with itself, HasAtomic and
// SetAtomic; do not mix with the plain methods inside one parallel
// region. O(1) amortized, does not allocate.
func (b *Bitset) TrySetAtomic(v int32) bool {
	addr := &b.words[v>>6]
	bit := uint64(1) << uint(v&63)
	for {
		old := atomic.LoadUint64(addr)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|bit) {
			return true
		}
	}
}

// SetAtomic inserts v regardless of ownership — for concurrent marking
// where double insertion is harmless (reachability sets, covered-vertex
// masks). O(1) amortized, does not allocate.
func (b *Bitset) SetAtomic(v int32) {
	addr := &b.words[v>>6]
	bit := uint64(1) << uint(v&63)
	for {
		old := atomic.LoadUint64(addr)
		if old&bit != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, old|bit) {
			return
		}
	}
}

// HasAtomic reports whether v is present, with a synchronized read that
// may run concurrently with TrySetAtomic/SetAtomic claims. O(1), does
// not allocate.
func (b *Bitset) HasAtomic(v int32) bool {
	return atomic.LoadUint64(&b.words[v>>6])&(1<<uint(v&63)) != 0
}

// Reset clears the whole set for reuse across phases. O(capacity/64),
// does not allocate.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// bitsetPool backs GetBitset/PutBitset — per-solve bitsets (BFS
// visited sets, verifier masks) are the last per-call allocations the
// sparse paths would otherwise make on every solve.
var bitsetPool = sync.Pool{New: func() any { return &Bitset{} }}

// GetBitset returns a cleared bitset with capacity for values 0..n-1,
// reusing pooled storage when one of sufficient capacity is available.
// Pair with PutBitset on paths that run per solve.
func GetBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	words := (n + 63) / 64
	b := bitsetPool.Get().(*Bitset)
	if cap(b.words) < words {
		b.words = make([]uint64, words)
		return b
	}
	b.words = b.words[:words]
	b.Reset()
	return b
}

// PutBitset returns b to the pool. The caller must not retain b.
func PutBitset(b *Bitset) {
	if b == nil {
		return
	}
	bitsetPool.Put(b)
}
