package graph

import (
	"strings"
	"testing"
)

// FuzzParseGraph6: the graph6 decoder must never panic, and must be
// strict enough that Parse→Format→Parse is the identity: any accepted
// string re-encodes byte-identically (after trimming the optional header
// and whitespace), and the re-parse reproduces the same graph. Strictness
// is load-bearing — graph6 strings key the structure and solve-response
// caches, so two spellings of one graph would split cache entries.
func FuzzParseGraph6(f *testing.F) {
	seeds := []string{
		"", "@", "A_", "Bw", "Bg", "D??", ">>graph6<<Bw\n",
		"Ao",    // nonzero padding
		"~??B?", // non-canonical long form
		"~~~~", "~A", "A__", "\x01_",
		"~?@?" + strings.Repeat("?", 326), // long-form n=64, empty graph
		"IsP@PGXD_",                       // Petersen
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseGraph6(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		enc, err := FormatGraph6(g)
		if err != nil {
			t.Fatalf("accepted graph failed to re-encode: %v", err)
		}
		trimmed := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(input), ">>graph6<<"))
		if enc != trimmed {
			t.Fatalf("Parse→Format is not the identity: %q re-encodes as %q", trimmed, enc)
		}
		back, err := ParseGraph6(enc)
		if err != nil {
			t.Fatalf("re-encoded form rejected: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), back.NumVertices(), back.NumEdges())
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				t.Fatalf("round trip dropped edge %v", e)
			}
		}
	})
}

// FuzzParse: the edge-list parser must never panic and must only produce
// graphs that re-encode to something it can parse back.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"n 3\n0 1\n1 2\n",
		"0 1\n",
		"# comment\n\nn 10\n0 9\n",
		"n -1\n",
		"0 0\n",
		"1 2 3\n",
		"a b\n",
		"n 2\n0 5\n",
		strings.Repeat("0 1\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must round-trip.
		back, err := ParseString(g.EncodeString())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), back.NumVertices(), back.NumEdges())
		}
	})
}
