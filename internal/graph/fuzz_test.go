package graph

import (
	"strings"
	"testing"
)

// FuzzParse: the edge-list parser must never panic and must only produce
// graphs that re-encode to something it can parse back.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"n 3\n0 1\n1 2\n",
		"0 1\n",
		"# comment\n\nn 10\n0 9\n",
		"n -1\n",
		"0 0\n",
		"1 2 3\n",
		"a b\n",
		"n 2\n0 5\n",
		strings.Repeat("0 1\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must round-trip.
		back, err := ParseString(g.EncodeString())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), back.NumVertices(), back.NumEdges())
		}
	})
}
