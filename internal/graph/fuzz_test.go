package graph

import (
	"slices"
	"strings"
	"testing"
)

// FuzzParseGraph6: the graph6 decoder must never panic, and must be
// strict enough that Parse→Format→Parse is the identity: any accepted
// string re-encodes byte-identically (after trimming the optional header
// and whitespace), and the re-parse reproduces the same graph. Strictness
// is load-bearing — graph6 strings key the structure and solve-response
// caches, so two spellings of one graph would split cache entries.
func FuzzParseGraph6(f *testing.F) {
	seeds := []string{
		"", "@", "A_", "Bw", "Bg", "D??", ">>graph6<<Bw\n",
		"Ao",    // nonzero padding
		"~??B?", // non-canonical long form
		"~~~~", "~A", "A__", "\x01_",
		"~?@?" + strings.Repeat("?", 326), // long-form n=64, empty graph
		"IsP@PGXD_",                       // Petersen
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseGraph6(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		enc, err := FormatGraph6(g)
		if err != nil {
			t.Fatalf("accepted graph failed to re-encode: %v", err)
		}
		trimmed := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(input), ">>graph6<<"))
		if enc != trimmed {
			t.Fatalf("Parse→Format is not the identity: %q re-encodes as %q", trimmed, enc)
		}
		back, err := ParseGraph6(enc)
		if err != nil {
			t.Fatalf("re-encoded form rejected: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), back.NumVertices(), back.NumEdges())
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				t.Fatalf("round trip dropped edge %v", e)
			}
		}
	})
}

// FuzzBuildCSR differentially fuzzes the multicore CSR bulk load against
// the serial reference: for any edge list — valid or not — the parallel
// body invoked at several worker counts must reproduce the serial
// BuildCSR outcome exactly, same RowPtr/Col arrays on acceptance and the
// same error (message included) on rejection. Endpoints are raw bytes
// against a small n, so out-of-range, self-loop and duplicate faults all
// occur naturally.
func FuzzBuildCSR(f *testing.F) {
	f.Add(6, []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5})
	f.Add(4, []byte{0, 1, 1, 0})  // duplicate, reversed orientation
	f.Add(3, []byte{1, 1})        // self-loop
	f.Add(2, []byte{0, 7})        // out of range
	f.Add(5, []byte{0, 9, 2, 2, 1, 3}) // range fault before self-loop
	f.Add(0, []byte{})
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		n = int(uint(n) % 64)
		m := len(data) / 2
		us := make([]int32, m)
		vs := make([]int32, m)
		for i := 0; i < m; i++ {
			us[i] = int32(data[2*i])
			vs[i] = int32(data[2*i+1])
		}
		want, wantErr := BuildCSR(n, us, vs)
		for _, workers := range []int{2, 3, 5} {
			got := &CSR{RowPtr: make([]int32, n+1), Col: make([]int32, 2*m)}
			err := buildCSRParallel(got, n, us, vs, workers)
			switch {
			case (err == nil) != (wantErr == nil):
				t.Fatalf("workers=%d: err = %v, serial err = %v", workers, err, wantErr)
			case err != nil:
				if err.Error() != wantErr.Error() {
					t.Fatalf("workers=%d: err %q, serial err %q", workers, err, wantErr)
				}
			default:
				if !slices.Equal(got.RowPtr, want.RowPtr) || !slices.Equal(got.Col, want.Col) {
					t.Fatalf("workers=%d: parallel CSR differs from serial", workers)
				}
			}
		}
	})
}

// FuzzParse: the edge-list parser must never panic and must only produce
// graphs that re-encode to something it can parse back.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"n 3\n0 1\n1 2\n",
		"0 1\n",
		"# comment\n\nn 10\n0 9\n",
		"n -1\n",
		"0 0\n",
		"1 2 3\n",
		"a b\n",
		"n 2\n0 5\n",
		strings.Repeat("0 1\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must round-trip.
		back, err := ParseString(g.EncodeString())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), back.NumVertices(), back.NumEdges())
		}
	})
}
