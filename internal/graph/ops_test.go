package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComplement(t *testing.T) {
	g := Cycle(5)
	c := g.Complement()
	if c.NumEdges() != 5 { // C(5,2) − 5
		t.Errorf("complement edges = %d, want 5", c.NumEdges())
	}
	// C5 is self-complementary.
	if ok, d := c.IsRegular(); !ok || d != 2 {
		t.Error("complement of C5 should be 2-regular")
	}
	if Complete(4).Complement().NumEdges() != 0 {
		t.Error("complement of a clique is edgeless")
	}
}

// Property: g and its complement partition the edge set of K_n.
func TestPropertyComplementPartitionsKn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := RandomGNP(n, rng.Float64(), seed)
		c := g.Complement()
		if g.NumEdges()+c.NumEdges() != n*(n-1)/2 {
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if g.HasEdge(u, v) == c.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLineGraph(t *testing.T) {
	// L(P4) = P3.
	l := Path(4).LineGraph()
	if l.NumVertices() != 3 || l.NumEdges() != 2 {
		t.Errorf("L(P4): n=%d m=%d, want 3, 2", l.NumVertices(), l.NumEdges())
	}
	// L(C5) = C5.
	lc := Cycle(5).LineGraph()
	if lc.NumVertices() != 5 || lc.NumEdges() != 5 {
		t.Errorf("L(C5): n=%d m=%d, want 5, 5", lc.NumVertices(), lc.NumEdges())
	}
	if ok, d := lc.IsRegular(); !ok || d != 2 {
		t.Error("L(C5) should be a 5-cycle")
	}
	// L(K_{1,3}) = K3 (the star's edges pairwise intersect at the hub).
	ls := Star(4).LineGraph()
	if ls.NumEdges() != 3 {
		t.Errorf("L(K1,3) edges = %d, want 3", ls.NumEdges())
	}
}

// Property: |E(L(G))| = Σ_v C(deg v, 2).
func TestPropertyLineGraphEdgeCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(2+rng.Intn(10), 0.4, seed)
		want := 0
		for v := 0; v < g.NumVertices(); v++ {
			d := g.Degree(v)
			want += d * (d - 1) / 2
		}
		return g.LineGraph().NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDisjointUnion(t *testing.T) {
	u, offset := DisjointUnion(Cycle(3), Path(3))
	if offset != 3 {
		t.Errorf("offset = %d, want 3", offset)
	}
	if u.NumVertices() != 6 || u.NumEdges() != 5 {
		t.Errorf("union: n=%d m=%d, want 6, 5", u.NumVertices(), u.NumEdges())
	}
	if u.IsConnected() {
		t.Error("disjoint union must be disconnected")
	}
	if !u.HasEdge(3, 4) || u.HasEdge(2, 3) {
		t.Error("shifted edges wrong")
	}
}

func TestLadder(t *testing.T) {
	g := Ladder(4) // 2x4 grid
	if g.NumVertices() != 8 || g.NumEdges() != 10 {
		t.Errorf("ladder: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsBipartite() || !g.IsConnected() {
		t.Error("ladder must be connected bipartite")
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4)
	if g.NumVertices() != 8 || g.NumEdges() != 13 { // 2·C(4,2) + 1
		t.Errorf("barbell: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("barbell must be connected")
	}
	if g.IsBipartite() {
		t.Error("barbell contains triangles")
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(4, 3)
	if g.NumVertices() != 7 || g.NumEdges() != 9 { // C(4,2) + 3
		t.Errorf("lollipop: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("lollipop must be connected")
	}
	if g.Degree(6) != 1 {
		t.Error("path tip must be a leaf")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(4)
	if g.NumVertices() != 15 || g.NumEdges() != 14 {
		t.Errorf("binary tree: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Error("tree must be connected and bipartite")
	}
	if g.Degree(0) != 2 {
		t.Error("root has two children")
	}
	if CompleteBinaryTree(0).NumVertices() != 0 {
		t.Error("zero levels = empty graph")
	}
	if CompleteBinaryTree(1).NumVertices() != 1 {
		t.Error("one level = single root")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.NumVertices() != 12 || g.NumEdges() != 11 { // a tree
		t.Errorf("caterpillar: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("caterpillar must be connected")
	}
	for i := 0; i < 4; i++ {
		want := 2 + 2 // legs + spine neighbors
		if i == 0 || i == 3 {
			want = 2 + 1
		}
		if g.Degree(i) != want {
			t.Errorf("spine %d degree = %d, want %d", i, g.Degree(i), want)
		}
	}
}

func TestMustEdge(t *testing.T) {
	g := Path(3)
	if e := g.MustEdge(1, 0); e != NewEdge(0, 1) {
		t.Errorf("MustEdge = %v", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEdge on absent edge must panic")
		}
	}()
	g.MustEdge(0, 2)
}
