package graph

// Realistic network-topology generators used by the characterization
// experiments: scale-free (Barabási–Albert) and small-world
// (Watts–Strogatz) graphs model real information networks far better than
// G(n,p), and the equilibrium theory behaves differently on them (hubs
// concentrate the vertex covers). Both are convenience wrappers over the
// corresponding Generator methods.

// BarabasiAlbert grows a scale-free graph by preferential attachment,
// drawn with the given seed; see Generator.BarabasiAlbert.
// Cost of Generator.BarabasiAlbert plus a one-shot generator allocation.
func BarabasiAlbert(n, attach int, seed int64) *Graph {
	return NewSeededGenerator(seed).BarabasiAlbert(n, attach)
}

// WattsStrogatz builds a small-world graph, drawn with the given seed; see
// Generator.WattsStrogatz.
// Cost of Generator.WattsStrogatz plus a one-shot generator allocation.
func WattsStrogatz(n, k int, p float64, seed int64) *Graph {
	return NewSeededGenerator(seed).WattsStrogatz(n, k, p)
}
