package graph

import "math/rand"

// Realistic network-topology generators used by the characterization
// experiments: scale-free (Barabási–Albert) and small-world
// (Watts–Strogatz) graphs model real information networks far better than
// G(n,p), and the equilibrium theory behaves differently on them (hubs
// concentrate the vertex covers).

// BarabasiAlbert grows a scale-free graph by preferential attachment:
// starting from a clique on m0 = attach vertices, every new vertex draws
// `attach` distinct neighbors with probability proportional to current
// degree. The result is connected with no isolated vertices; n must be
// at least attach+1 and attach >= 1.
func BarabasiAlbert(n, attach int, seed int64) *Graph {
	if attach < 1 {
		attach = 1
	}
	if n < attach+1 {
		n = attach + 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Seed clique keeps early degrees positive.
	for u := 0; u < attach; u++ {
		for v := u + 1; v < attach; v++ {
			_ = g.AddEdge(u, v)
		}
	}
	// repeated lists every endpoint once per incident edge: sampling from
	// it is degree-proportional sampling.
	var repeated []int
	for _, e := range g.Edges() {
		repeated = append(repeated, e.U, e.V)
	}
	if len(repeated) == 0 { // attach == 1: no seed edges yet
		repeated = []int{0}
	}
	for v := attach; v < n; v++ {
		chosen := make(map[int]bool, attach)
		for len(chosen) < attach {
			var candidate int
			if len(repeated) == 0 || rng.Intn(10) == 0 {
				// Small uniform component keeps degenerate cases moving.
				candidate = rng.Intn(v)
			} else {
				candidate = repeated[rng.Intn(len(repeated))]
			}
			if candidate != v && !chosen[candidate] {
				chosen[candidate] = true
			}
		}
		for u := range chosen {
			_ = g.AddEdge(v, u)
			repeated = append(repeated, v, u)
		}
	}
	return g
}

// WattsStrogatz builds a small-world graph: a ring lattice on n vertices
// where each vertex connects to its k/2 nearest neighbors on each side
// (k even, k < n), then each lattice edge is rewired with probability p to
// a uniformly random non-duplicate endpoint. Rewirings that would isolate
// a vertex or duplicate an edge are skipped, so the result stays simple
// with minimum degree >= 1.
func WattsStrogatz(n, k int, p float64, seed int64) *Graph {
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	if n <= k {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + j) % n
			if !g.HasEdge(v, u) {
				_ = g.AddEdge(v, u)
			}
		}
	}
	// Rewire: rebuild the edge set with random replacements.
	edges := g.Edges()
	out := New(n)
	for _, e := range edges {
		if rng.Float64() >= p {
			if !out.HasEdge(e.U, e.V) {
				_ = out.AddEdge(e.U, e.V)
			}
			continue
		}
		rewired := false
		for attempt := 0; attempt < 2*n; attempt++ {
			w := rng.Intn(n)
			if w != e.U && !out.HasEdge(e.U, w) && !g.HasEdge(e.U, w) {
				_ = out.AddEdge(e.U, w)
				rewired = true
				break
			}
		}
		if !rewired && !out.HasEdge(e.U, e.V) {
			_ = out.AddEdge(e.U, e.V)
		}
	}
	// Ensure no vertex lost all incident edges to rewiring.
	for v := 0; v < n; v++ {
		if out.Degree(v) == 0 {
			u := (v + 1) % n
			if !out.HasEdge(v, u) {
				_ = out.AddEdge(v, u)
			}
		}
	}
	return out
}
