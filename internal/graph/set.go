package graph

import "sort"

// Vertex sets are represented as sorted, duplicate-free []int slices
// throughout the library. The helpers below normalize and combine them.

// NormalizeSet returns a sorted, duplicate-free copy of vs.
// O(|vs| log |vs|); allocates the copy.
func NormalizeSet(vs []int) []int {
	if len(vs) == 0 {
		return nil
	}
	out := make([]int, len(vs))
	copy(out, vs)
	sort.Ints(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}

// SetContains reports whether sorted set vs contains v.
// O(log |vs|) binary search, does not allocate.
func SetContains(vs []int, v int) bool {
	i := sort.SearchInts(vs, v)
	return i < len(vs) && vs[i] == v
}

// SetComplement returns the sorted complement of sorted set vs within 0..n-1.
// O(n); allocates the result.
func SetComplement(vs []int, n int) []int {
	member := make([]bool, n)
	for _, v := range vs {
		if v >= 0 && v < n {
			member[v] = true
		}
	}
	out := make([]int, 0, n-len(vs))
	for v := 0; v < n; v++ {
		if !member[v] {
			out = append(out, v)
		}
	}
	return out
}

// SetsEqual reports whether two sorted sets hold the same elements.
// O(|a|), does not allocate.
func SetsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SetUnion returns the sorted union of two sorted sets.
// O(|a| + |b|); allocates the result.
func SetUnion(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SetIntersection returns the sorted intersection of two sorted sets.
// O(|a| + |b|); allocates the result.
func SetIntersection(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SetDifference returns the sorted elements of a not present in b.
// O(|a| + |b|); allocates the result.
func SetDifference(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// IsPartition reports whether sorted sets a and b partition 0..n-1.
// O(n), does not allocate.
func IsPartition(a, b []int, n int) bool {
	if len(a)+len(b) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range a {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for _, v := range b {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
