package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEdgeNormalizes(t *testing.T) {
	tests := []struct {
		u, v int
		want Edge
	}{
		{1, 2, Edge{1, 2}},
		{2, 1, Edge{1, 2}},
		{0, 0, Edge{0, 0}},
		{7, 3, Edge{3, 7}},
	}
	for _, tt := range tests {
		if got := NewEdge(tt.u, tt.v); got != tt.want {
			t.Errorf("NewEdge(%d,%d) = %v, want %v", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(3, 5)
	if got := e.Other(3); got != 5 {
		t.Errorf("Other(3) = %d, want 5", got)
	}
	if got := e.Other(5); got != 3 {
		t.Errorf("Other(5) = %d, want 3", got)
	}
	if got := e.Other(7); got != -1 {
		t.Errorf("Other(7) = %d, want -1", got)
	}
}

func TestEdgeHas(t *testing.T) {
	e := NewEdge(2, 9)
	if !e.Has(2) || !e.Has(9) {
		t.Error("Has should report both endpoints")
	}
	if e.Has(5) {
		t.Error("Has(5) should be false")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    int
		wantErr error
	}{
		{"out of range high", 0, 3, ErrVertexRange},
		{"out of range negative", -1, 1, ErrVertexRange},
		{"self loop", 1, 1, ErrSelfLoop},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v); !errors.Is(err, tt.wantErr) {
				t.Errorf("AddEdge(%d,%d) = %v, want %v", tt.u, tt.v, err, tt.wantErr)
			}
		})
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1) failed: %v", err)
	}
	if err := g.AddEdge(1, 0); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate AddEdge(1,0) = %v, want ErrDuplicateEdge", err)
	}
}

func TestAddEdgeAndQueries(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 2, 1)
	mustAdd(t, g, 3, 0)

	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(1, 2) || !g.HasEdge(0, 3) {
		t.Error("HasEdge should be orientation-insensitive")
	}
	if g.HasEdge(2, 3) {
		t.Error("HasEdge(2,3) should be false")
	}
	if g.HasEdge(0, 0) || g.HasEdge(-1, 2) || g.HasEdge(0, 9) {
		t.Error("HasEdge must reject invalid pairs")
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	if got := g.Degree(-1); got != 0 {
		t.Errorf("Degree(-1) = %d, want 0", got)
	}
}

func TestEdgeIDRoundTrip(t *testing.T) {
	g := Cycle(5)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeByID(i)
		if got := g.EdgeID(e); got != i {
			t.Errorf("EdgeID(EdgeByID(%d)) = %d", i, got)
		}
	}
	if got := g.EdgeID(NewEdge(0, 2)); got != -1 {
		t.Errorf("EdgeID of absent edge = %d, want -1", got)
	}
}

func TestEachNeighborMatchesNeighbors(t *testing.T) {
	g := RandomGNP(20, 0.3, 42)
	for v := 0; v < g.NumVertices(); v++ {
		var collected []int
		g.EachNeighbor(v, func(u int) { collected = append(collected, u) })
		if !reflect.DeepEqual(collected, g.Neighbors(v)) && !(len(collected) == 0 && len(g.Neighbors(v)) == 0) {
			t.Fatalf("EachNeighbor(%d) = %v, Neighbors = %v", v, collected, g.Neighbors(v))
		}
	}
}

func TestDegreeBounds(t *testing.T) {
	g := Star(5)
	if got := g.MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
	if got := g.MinDegree(); got != 1 {
		t.Errorf("MinDegree = %d, want 1", got)
	}
	empty := New(0)
	if empty.MinDegree() != 0 || empty.MaxDegree() != 0 {
		t.Error("empty graph degrees should be 0")
	}
}

func TestHasIsolatedVertex(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1)
	if !g.HasIsolatedVertex() {
		t.Error("vertex 2 is isolated")
	}
	mustAdd(t, g, 1, 2)
	if g.HasIsolatedVertex() {
		t.Error("no vertex is isolated now")
	}
}

func TestIncidentEdges(t *testing.T) {
	g := Star(4)
	got := g.IncidentEdges(0)
	want := []Edge{{0, 1}, {0, 2}, {0, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IncidentEdges(0) = %v, want %v", got, want)
	}
	if got := g.IncidentEdges(9); got != nil {
		t.Errorf("IncidentEdges(9) = %v, want nil", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Cycle(4)
	c := g.Clone()
	mustAdd(t, c, 0, 2)
	if g.HasEdge(0, 2) {
		t.Error("mutating the clone must not affect the original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Errorf("clone edges = %d, want %d", c.NumEdges(), g.NumEdges()+1)
	}
}

func TestNeighborhoodOf(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	tests := []struct {
		set  []int
		want []int
	}{
		{[]int{0}, []int{1}},
		{[]int{2}, []int{1, 3}},
		{[]int{0, 4}, []int{1, 3}},
		{[]int{1, 2}, []int{0, 1, 2, 3}}, // includes members adjacent to each other
		{nil, nil},
		{[]int{99}, nil}, // out of range ignored
	}
	for _, tt := range tests {
		if got := g.NeighborhoodOf(tt.set); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("NeighborhoodOf(%v) = %v, want %v", tt.set, got, tt.want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, mapping := g.InducedSubgraph([]int{1, 3, 4, 3}) // duplicate ignored
	if sub.NumVertices() != 3 {
		t.Fatalf("induced vertices = %d, want 3", sub.NumVertices())
	}
	if sub.NumEdges() != 3 {
		t.Errorf("induced edges = %d, want 3 (triangle)", sub.NumEdges())
	}
	if !reflect.DeepEqual(mapping, []int{1, 3, 4}) {
		t.Errorf("mapping = %v, want [1 3 4]", mapping)
	}
}

func TestSubgraphOfEdges(t *testing.T) {
	g := Cycle(6)
	edges := []Edge{NewEdge(0, 1), NewEdge(2, 3)}
	sub, vs := g.SubgraphOfEdges(edges)
	if !reflect.DeepEqual(vs, []int{0, 1, 2, 3}) {
		t.Errorf("V(T) = %v, want [0 1 2 3]", vs)
	}
	if sub.NumEdges() != 2 {
		t.Errorf("E(T) = %d, want 2", sub.NumEdges())
	}
	// Edges not in g are skipped.
	sub2, vs2 := g.SubgraphOfEdges([]Edge{NewEdge(0, 3)})
	if sub2.NumEdges() != 0 || len(vs2) != 0 {
		t.Errorf("foreign edge should be skipped, got %d edges, %v vertices", sub2.NumEdges(), vs2)
	}
}

func TestIsConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"singleton", New(1), true},
		{"two isolated", New(2), false},
		{"path", Path(6), true},
		{"cycle", Cycle(5), true},
		{"disjoint edges", PerfectMatchingGraph(4), false},
		{"complete", Complete(7), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsConnected(); got != tt.want {
				t.Errorf("IsConnected = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestConnectedComponents(t *testing.T) {
	g := PerfectMatchingGraph(6)
	comps := g.ConnectedComponents()
	want := [][]int{{0, 1}, {2, 3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

func TestBipartition(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		bipartite bool
	}{
		{"path", Path(5), true},
		{"even cycle", Cycle(6), true},
		{"odd cycle", Cycle(5), false},
		{"complete bipartite", CompleteBipartite(3, 4), true},
		{"triangle", Complete(3), false},
		{"grid", Grid(3, 4), true},
		{"hypercube", Hypercube(4), true},
		{"star", Star(8), true},
		{"petersen", Petersen(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			side, err := tt.g.Bipartition()
			if tt.bipartite {
				if err != nil {
					t.Fatalf("Bipartition: %v", err)
				}
				for _, e := range tt.g.Edges() {
					if side[e.U] == side[e.V] {
						t.Fatalf("edge %v monochromatic", e)
					}
				}
			} else if !errors.Is(err, ErrNotBipartite) {
				t.Fatalf("err = %v, want ErrNotBipartite", err)
			}
			if got := tt.g.IsBipartite(); got != tt.bipartite {
				t.Errorf("IsBipartite = %v, want %v", got, tt.bipartite)
			}
		})
	}
}

func TestIsRegular(t *testing.T) {
	tests := []struct {
		name   string
		g      *Graph
		want   bool
		degree int
	}{
		{"cycle", Cycle(7), true, 2},
		{"complete", Complete(5), true, 4},
		{"petersen", Petersen(), true, 3},
		{"path", Path(4), false, 0},
		{"empty", New(0), true, 0},
		{"hypercube", Hypercube(3), true, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ok, d := tt.g.IsRegular()
			if ok != tt.want || (ok && d != tt.degree) {
				t.Errorf("IsRegular = (%v,%d), want (%v,%d)", ok, d, tt.want, tt.degree)
			}
		})
	}
}

func TestStringRendering(t *testing.T) {
	g := Cycle(3)
	if got := g.String(); got != "graph{n=3 m=3}" {
		t.Errorf("String = %q", got)
	}
	if got := NewEdge(2, 1).String(); got != "(1,2)" {
		t.Errorf("Edge.String = %q", got)
	}
}

// Property: handshake lemma — the degree sum is twice the edge count.
func TestPropertyHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(2+rng.Intn(30), rng.Float64(), seed)
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adjacency lists stay sorted and symmetric under random insertion.
func TestPropertyAdjacencySortedSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			_ = g.AddEdge(rng.Intn(n), rng.Intn(n)) // errors fine
		}
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			for i := 1; i < len(nbrs); i++ {
				if nbrs[i-1] >= nbrs[i] {
					return false
				}
			}
			for _, u := range nbrs {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: components partition the vertex set.
func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGNP(1+int(seed%25+25)%25, 0.1, seed)
		seen := make(map[int]bool)
		total := 0
		for _, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == g.NumVertices()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustAdd(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}
