package graph

import (
	"testing"
)

func TestPathGenerator(t *testing.T) {
	g := Path(5)
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("P5: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Error("path degree sequence wrong")
	}
	if Path(0).NumVertices() != 0 {
		t.Error("P0 should be empty")
	}
	if Path(1).NumEdges() != 0 {
		t.Error("P1 has no edges")
	}
}

func TestCycleGenerator(t *testing.T) {
	g := Cycle(6)
	if g.NumEdges() != 6 {
		t.Fatalf("C6 edges = %d", g.NumEdges())
	}
	if ok, d := g.IsRegular(); !ok || d != 2 {
		t.Error("cycle should be 2-regular")
	}
	// Degenerate sizes degrade to paths.
	if Cycle(2).NumEdges() != 1 {
		t.Error("Cycle(2) should fall back to one edge")
	}
}

func TestCompleteGenerator(t *testing.T) {
	g := Complete(6)
	if g.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.NumEdges())
	}
	if ok, d := g.IsRegular(); !ok || d != 5 {
		t.Error("K6 should be 5-regular")
	}
}

func TestStarAndWheel(t *testing.T) {
	s := Star(7)
	if s.Degree(0) != 6 || s.NumEdges() != 6 {
		t.Error("star shape wrong")
	}
	w := Wheel(6)
	if w.Degree(0) != 5 {
		t.Errorf("wheel hub degree = %d, want 5", w.Degree(0))
	}
	if w.NumEdges() != 10 {
		t.Errorf("W6 edges = %d, want 10", w.NumEdges())
	}
	for v := 1; v < 6; v++ {
		if w.Degree(v) != 3 {
			t.Errorf("rim vertex %d degree = %d, want 3", v, w.Degree(v))
		}
	}
}

func TestCompleteBipartiteGenerator(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.NumVertices() != 7 || g.NumEdges() != 12 {
		t.Fatalf("K{3,4}: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsBipartite() {
		t.Error("K{3,4} must be bipartite")
	}
	side, _ := g.Bipartition()
	for u := 0; u < 3; u++ {
		if side[u] != side[0] {
			t.Error("left side must be monochromatic")
		}
	}
}

func TestGridGenerator(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("grid n = %d", g.NumVertices())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.NumEdges() != 17 {
		t.Errorf("grid m = %d, want 17", g.NumEdges())
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Error("grid must be connected and bipartite")
	}
}

func TestHypercubeGenerator(t *testing.T) {
	g := Hypercube(4)
	if g.NumVertices() != 16 || g.NumEdges() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if ok, d := g.IsRegular(); !ok || d != 4 {
		t.Error("Q4 should be 4-regular")
	}
	if !g.IsConnected() {
		t.Error("Q4 must be connected")
	}
}

func TestPetersenGenerator(t *testing.T) {
	g := Petersen()
	if g.NumVertices() != 10 || g.NumEdges() != 15 {
		t.Fatalf("petersen: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if ok, d := g.IsRegular(); !ok || d != 3 {
		t.Error("petersen should be 3-regular")
	}
	if g.IsBipartite() {
		t.Error("petersen is not bipartite")
	}
	if !g.IsConnected() {
		t.Error("petersen must be connected")
	}
}

func TestPerfectMatchingGraphGenerator(t *testing.T) {
	g := PerfectMatchingGraph(8)
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if ok, d := g.IsRegular(); !ok || d != 1 {
		t.Error("should be 1-regular")
	}
}

func TestRandomGNPDeterministicAndSimple(t *testing.T) {
	a := RandomGNP(30, 0.2, 7)
	b := RandomGNP(30, 0.2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Error("same seed must give same graph")
	}
	if a.NumEdges() == 0 {
		t.Error("expected some edges at p=0.2, n=30")
	}
	c := RandomGNP(30, 0.2, 8)
	if c.NumEdges() == a.NumEdges() && c.EncodeString() == a.EncodeString() {
		t.Error("different seeds should (overwhelmingly) differ")
	}
	if RandomGNP(10, 0, 1).NumEdges() != 0 {
		t.Error("p=0 must give no edges")
	}
	if g := RandomGNP(10, 1, 1); g.NumEdges() != 45 {
		t.Error("p=1 must give K10")
	}
}

func TestRandomBipartiteNoIsolated(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomBipartite(8, 12, 0.05, seed)
		if g.HasIsolatedVertex() {
			t.Fatalf("seed %d produced an isolated vertex", seed)
		}
		if !g.IsBipartite() {
			t.Fatalf("seed %d produced a non-bipartite graph", seed)
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 40} {
		g := RandomTree(n, int64(n))
		wantEdges := n - 1
		if n == 0 || n == 1 {
			wantEdges = 0
		}
		if g.NumEdges() != wantEdges {
			t.Fatalf("n=%d: edges = %d, want %d", n, g.NumEdges(), wantEdges)
		}
		if n > 0 && !g.IsConnected() {
			t.Fatalf("n=%d: tree must be connected", n)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	g := RandomConnected(25, 0.1, 3)
	if !g.IsConnected() {
		t.Fatal("must be connected")
	}
	if g.NumEdges() < 24 {
		t.Error("must contain at least the tree backbone")
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(12, 3, 5)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	if ok, d := g.IsRegular(); !ok || d != 3 {
		t.Errorf("got irregular or wrong degree %d", d)
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Error("odd degree sum must fail")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Error("d >= n must fail")
	}
}

func TestHeawoodGenerator(t *testing.T) {
	g := Heawood()
	if g.NumVertices() != 14 || g.NumEdges() != 21 {
		t.Fatalf("heawood: n=%d m=%d, want 14, 21", g.NumVertices(), g.NumEdges())
	}
	if ok, d := g.IsRegular(); !ok || d != 3 {
		t.Errorf("heawood should be 3-regular, got (%v,%d)", ok, d)
	}
	if !g.IsBipartite() {
		t.Error("heawood must be bipartite")
	}
	if !g.IsConnected() {
		t.Error("heawood must be connected")
	}
}
