package graph

// CSR-native random generators: the million-vertex instances the sparse
// core targets cannot be built through Graph's per-edge map insertions and
// sorted-slice inserts (a preferential-attachment hub of degree d pays
// O(d) per insert there, O(d²) total). These builders emit flat endpoint
// slices and bulk-load them with BuildCSR instead: O(n + m log Δ) and two
// allocations, independent of the degree distribution.

// BarabasiAlbertCSR grows a scale-free graph by preferential attachment,
// exactly like BarabasiAlbert but straight into CSR form: starting from a
// clique on `attach` vertices, every new vertex draws `attach` distinct
// neighbors with probability proportional to current degree (with a 1-in-10
// uniform mixing draw keeping degenerate cases moving). The result is
// connected with no isolated vertices; n is raised to attach+1 and attach
// to 1 when needed. Deterministic for a fixed Generator stream. O(n + m);
// allocates the endpoint and sampling slices plus the CSR.
//
// Note: plain Barabási–Albert graphs almost never admit k-matching Nash
// equilibria — the seed clique's odd cycles survive into every partition
// attempt and the Corollary 4.11 IS/VC-expander partition typically does
// not exist (asserted by exact enumeration in the core tests). The scaling
// pipeline therefore drives BarabasiAlbertBipartiteCSR; this family is the
// honest negative control.
func (gen *Generator) BarabasiAlbertCSR(n, attach int) *CSR {
	if attach < 1 {
		attach = 1
	}
	if n < attach+1 {
		n = attach + 1
	}
	m := attach*(attach-1)/2 + (n-attach)*attach
	us := make([]int32, 0, m)
	vs := make([]int32, 0, m)
	// repeated lists every endpoint once per incident edge: sampling from
	// it is degree-proportional sampling.
	repeated := make([]int32, 0, 2*m)
	for u := 0; u < attach; u++ {
		for v := u + 1; v < attach; v++ {
			us = append(us, int32(u))
			vs = append(vs, int32(v))
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	if len(repeated) == 0 { // attach == 1: no seed edges yet
		repeated = append(repeated, 0)
	}
	chosen := make([]int32, 0, attach)
	for v := attach; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < attach {
			var candidate int32
			if gen.rng.Intn(10) == 0 {
				// Small uniform component keeps degenerate cases moving.
				candidate = int32(gen.rng.Intn(v))
			} else {
				candidate = repeated[gen.rng.Intn(len(repeated))]
			}
			if int(candidate) == v || containsInt32(chosen, candidate) {
				continue
			}
			chosen = append(chosen, candidate)
		}
		// Attach in sorted order so same-seed runs replay identically
		// regardless of the draw order that filled chosen.
		insertionSortInt32(chosen)
		for _, u := range chosen {
			us = append(us, int32(v))
			vs = append(vs, u)
			repeated = append(repeated, int32(v), u)
		}
	}
	c, err := BuildCSR(n, us, vs)
	if err != nil {
		// lint:invariant(nakedpanic): the sampler emits distinct in-range pairs by construction; a failure is a bug here
		panic("graph: BarabasiAlbertCSR: " + err.Error())
	}
	return c
}

// BarabasiAlbertBipartiteCSR grows a scale-free *bipartite* graph by
// preferential attachment: vertices alternate sides (even indices left,
// odd right), the seed is the single edge {0, 1}, and every new vertex
// draws min(attach, opposite-side size) distinct neighbors from the
// opposite side with probability proportional to current degree (1-in-10
// uniform mixing). The result is connected, has no isolated vertices, and
// is bipartite by construction — the family the sparse k-matching pipeline
// scales on, because bipartiteness guarantees the Corollary 4.11 partition
// via the König route (see SCALING.md "Routing"). Deterministic for a
// fixed Generator stream; n is raised to 2 and attach to 1 when needed.
// O(n + m); allocates the endpoint and sampling slices plus the CSR.
func (gen *Generator) BarabasiAlbertBipartiteCSR(n, attach int) *CSR {
	if attach < 1 {
		attach = 1
	}
	if n < 2 {
		n = 2
	}
	us := make([]int32, 0, n*attach)
	vs := make([]int32, 0, n*attach)
	// One degree-proportional endpoint pool per side.
	repeated := [2][]int32{{0}, {1}}
	us, vs = append(us, 0), append(vs, 1)
	chosen := make([]int32, 0, attach)
	for v := 2; v < n; v++ {
		side := v % 2
		opp := 1 - side
		oppCount := (v + 1 - opp) / 2 // vertices of parity opp below v
		want := attach
		if oppCount < want {
			want = oppCount
		}
		chosen = chosen[:0]
		for len(chosen) < want {
			var candidate int32
			if gen.rng.Intn(10) == 0 {
				candidate = int32(2*gen.rng.Intn(oppCount) + opp)
			} else {
				candidate = repeated[opp][gen.rng.Intn(len(repeated[opp]))]
			}
			if containsInt32(chosen, candidate) {
				continue
			}
			chosen = append(chosen, candidate)
		}
		insertionSortInt32(chosen)
		for _, u := range chosen {
			us = append(us, int32(v))
			vs = append(vs, u)
			repeated[opp] = append(repeated[opp], u)
			repeated[side] = append(repeated[side], int32(v))
		}
	}
	c, err := BuildCSR(n, us, vs)
	if err != nil {
		// lint:invariant(nakedpanic): the sampler emits distinct cross-side in-range pairs by construction; a failure is a bug here
		panic("graph: BarabasiAlbertBipartiteCSR: " + err.Error())
	}
	return c
}

// containsInt32 reports whether x occurs in the (tiny) slice s — the
// distinctness check of the attachment samplers, O(attach) beats a map
// allocation at these sizes.
func containsInt32(s []int32, x int32) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

// insertionSortInt32 sorts the (tiny) slice ascending in place without
// allocating; the samplers hold at most `attach` entries.
func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
