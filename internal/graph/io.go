package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The edge-list exchange format is line-oriented plain text:
//
//	# comment
//	n <numVertices>
//	<u> <v>
//	<u> <v>
//	...
//
// The "n" header is optional; without it the vertex count is one more than
// the largest endpoint mentioned.

// Parse reads a graph in edge-list format from r.
// O(input + m AddEdge insertions); allocates the returned graph and
// line-scanning scratch.
func Parse(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var (
		declared = -1
		pairs    [][2]int
		maxV     = -1
		lineNo   int
	)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex-count header %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: invalid vertex count %q", lineNo, fields[1])
			}
			declared = n
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, errU := strconv.Atoi(fields[0])
		v, errV := strconv.Atoi(fields[1])
		if errU != nil || errV != nil || u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: invalid endpoints %q", lineNo, line)
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		pairs = append(pairs, [2]int{u, v})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: read edge list: %w", err)
	}
	n := maxV + 1
	if declared >= 0 {
		if declared < n {
			return nil, fmt.Errorf("graph: declared n=%d but saw vertex %d", declared, maxV)
		}
		n = declared
	}
	g := New(n)
	for _, p := range pairs {
		if err := g.AddEdge(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ParseString parses an edge list from a string (see Parse).
// Cost of Parse; allocates the string reader.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// Write serializes g in edge-list format, including the "n" header so that
// trailing isolated vertices round-trip.
// O(n + m); allocates the formatting buffers.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.n); err != nil {
		return fmt.Errorf("graph: write edge list: %w", err)
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: write edge list: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: write edge list: %w", err)
	}
	return nil
}

// EncodeString serializes g in edge-list format to a string.
// O(n + m); allocates the returned string.
func (g *Graph) EncodeString() string {
	var sb strings.Builder
	// lint:invariant(errlost): strings.Builder writes cannot fail
	_ = g.Write(&sb)
	return sb.String()
}

// DOT renders g in Graphviz DOT syntax. highlight is an optional set of
// edges to emphasize (drawn bold); pass nil for a plain rendering.
// O(n + m·|highlight|); allocates the returned string.
func (g *Graph) DOT(name string, highlight []Edge) string {
	emph := make(map[Edge]bool, len(highlight))
	for _, e := range highlight {
		emph[NewEdge(e.U, e.V)] = true
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", sanitizeDOTName(name))
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&sb, "  %d;\n", v)
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		if emph[e] {
			fmt.Fprintf(&sb, "  %d -- %d [style=bold];\n", e.U, e.V)
		} else {
			fmt.Fprintf(&sb, "  %d -- %d;\n", e.U, e.V)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// sanitizeDOTName makes an arbitrary string a valid DOT identifier.
func sanitizeDOTName(name string) string {
	if name == "" {
		return "G"
	}
	var sb strings.Builder
	for i, r := range name {
		isAlpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		isDigit := r >= '0' && r <= '9'
		switch {
		case isAlpha || (isDigit && i > 0):
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
