package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	g, err := ParseString("# a triangle\nn 3\n0 1\n1 2\n2 0\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestParseInfersVertexCount(t *testing.T) {
	g, err := ParseString("0 5\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if g.NumVertices() != 6 {
		t.Errorf("n = %d, want 6", g.NumVertices())
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"malformed header", "n\n"},
		{"negative count", "n -1\n"},
		{"three fields", "0 1 2\n"},
		{"non-numeric", "a b\n"},
		{"negative vertex", "-1 0\n"},
		{"declared too small", "n 2\n0 5\n"},
		{"self loop", "3 3\n"},
		{"duplicate", "0 1\n1 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.input); err == nil {
				t.Errorf("ParseString(%q) should fail", tt.input)
			}
		})
	}
}

func TestParseSkipsBlanksAndComments(t *testing.T) {
	g, err := ParseString("\n\n# header\n  # indented comment\n0 1\n\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("m = %d, want 1", g.NumEdges())
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%20+20) % 20
		g := RandomGNP(n+1, 0.3, seed)
		back, err := ParseString(g.EncodeString())
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripPreservesTrailingIsolated(t *testing.T) {
	g := New(5)
	mustAdd(t, g, 0, 1)
	back, err := ParseString(g.EncodeString())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.NumVertices() != 5 {
		t.Errorf("n = %d, want 5 (header must preserve isolated tail)", back.NumVertices())
	}
}

func TestDOT(t *testing.T) {
	g := Path(3)
	dot := g.DOT("p3", []Edge{NewEdge(0, 1)})
	for _, want := range []string{"graph p3 {", "0 -- 1 [style=bold];", "1 -- 2;", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestSanitizeDOTName(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"", "G"},
		{"ok_name", "ok_name"},
		{"3leading", "_leading"},
		{"has space", "has_space"},
		{"k{3,4}", "k_3_4_"},
	}
	for _, tt := range tests {
		if got := sanitizeDOTName(tt.in); got != tt.want {
			t.Errorf("sanitizeDOTName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
