package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Generator draws random graphs from a single injected *rand.Rand, so a
// whole experiment suite is reproducible from one seed: build one
// Generator, thread it everywhere, and every draw — across models and
// interleavings — replays identically. The package-level Random*
// convenience functions construct a fresh seeded Generator per call; code
// that draws more than one graph should hold a Generator instead.
//
// The globalrand analyzer (cmd/defenderlint) enforces that no non-test
// code falls back to the process-global math/rand source.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator wraps an explicit source. A nil rng falls back to a fixed
// seed of 1, keeping the zero-config path deterministic rather than
// silently global.
// O(1); allocates the wrapper (and a default source when rng is nil).
func NewGenerator(rng *rand.Rand) *Generator {
	if rng == nil {
		return NewSeededGenerator(1)
	}
	return &Generator{rng: rng}
}

// NewSeededGenerator builds a Generator with its own source seeded from
// seed.
// O(1); allocates the generator and its rand source.
func NewSeededGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the underlying source, for callers that need auxiliary
// draws (e.g. shuffling experiment orders) from the same replayable
// stream.
// O(1), does not allocate.
func (gen *Generator) Rand() *rand.Rand { return gen.rng }

// GNP draws an Erdős–Rényi graph G(n, p).
// Costs n(n-1)/2 coin flips and the accepted AddEdge insertions;
// allocates the returned graph.
func (gen *Generator) GNP(n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if gen.rng.Float64() < p {
				g.mustAddEdge(u, v)
			}
		}
	}
	return g
}

// Bipartite draws a random bipartite graph with sides of size a and b
// where every cross pair is an edge independently with probability p. To
// avoid isolated vertices (the Tuple model forbids them), every vertex
// that ends up isolated is attached to a uniformly random vertex of the
// other side (requires a, b >= 1).
// Costs a·b coin flips plus the accepted AddEdge insertions; allocates
// the returned graph.
func (gen *Generator) Bipartite(a, b int, p float64) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			if gen.rng.Float64() < p {
				g.mustAddEdge(u, v)
			}
		}
	}
	if a >= 1 && b >= 1 {
		for u := 0; u < a; u++ {
			if g.Degree(u) == 0 {
				g.mustAddEdge(u, a+gen.rng.Intn(b))
			}
		}
		for v := a; v < a+b; v++ {
			if g.Degree(v) == 0 {
				g.mustAddEdge(gen.rng.Intn(a), v)
			}
		}
	}
	return g
}

// Tree draws a uniformly random labelled tree on n vertices, built by
// decoding a random Prüfer sequence.
// O(n log n) (Prüfer decode with sorted bookkeeping); allocates the
// returned tree and decode scratch.
func (gen *Generator) Tree(n int) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.mustAddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = gen.rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Repeatedly attach the smallest leaf to the next Prüfer symbol.
	leaf := -1
	ptr := 0
	next := func() int {
		if leaf != -1 {
			v := leaf
			leaf = -1
			return v
		}
		for degree[ptr] != 1 {
			ptr++
		}
		v := ptr
		ptr++
		return v
	}
	for _, p := range prufer {
		v := next()
		g.mustAddEdge(v, p)
		degree[v]--
		degree[p]--
		if degree[p] == 1 && p < ptr {
			leaf = p
		}
	}
	// Two vertices of degree 1 remain; join them.
	u, v := -1, -1
	for w := 0; w < n; w++ {
		if degree[w] == 1 {
			if u == -1 {
				u = w
			} else {
				v = w
			}
		}
	}
	g.mustAddEdge(u, v)
	return g
}

// Connected draws a connected Erdős–Rényi-style graph: a random tree
// backbone (guaranteeing connectivity and no isolated vertices) plus each
// remaining pair as an edge with probability p.
// O(n^2) coin flips over the remaining pairs plus the spanning-tree
// build; allocates the returned graph.
func (gen *Generator) Connected(n int, p float64) *Graph {
	g := gen.Tree(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && gen.rng.Float64() < p {
				g.mustAddEdge(u, v)
			}
		}
	}
	return g
}

// Regular draws a d-regular graph on n vertices via the pairing model
// with restarts, or an error if n*d is odd or d >= n.
// Expected O(n·d) per attempt over a bounded number of pairing restarts;
// allocates the returned graph and the stub pool.
func (gen *Generator) Regular(n, d int) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: no %d-regular graph on %d vertices (odd degree sum)", d, n)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: degree %d too large for %d vertices", d, n)
	}
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryPairing(n, d, gen.rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: pairing model failed to produce a simple %d-regular graph on %d vertices", d, n)
}

// BarabasiAlbert grows a scale-free graph by preferential attachment:
// starting from a clique on m0 = attach vertices, every new vertex draws
// `attach` distinct neighbors with probability proportional to current
// degree. The result is connected with no isolated vertices; n must be
// at least attach+1 and attach >= 1.
// O(n·attach) draws against the repeated-endpoint pool; allocates the
// returned graph and the pool. CSR counterpart: BarabasiAlbertCSR.
func (gen *Generator) BarabasiAlbert(n, attach int) *Graph {
	if attach < 1 {
		attach = 1
	}
	if n < attach+1 {
		n = attach + 1
	}
	g := New(n)
	// Seed clique keeps early degrees positive.
	for u := 0; u < attach; u++ {
		for v := u + 1; v < attach; v++ {
			g.mustAddEdge(u, v)
		}
	}
	// repeated lists every endpoint once per incident edge: sampling from
	// it is degree-proportional sampling.
	var repeated []int
	for _, e := range g.Edges() {
		repeated = append(repeated, e.U, e.V)
	}
	if len(repeated) == 0 { // attach == 1: no seed edges yet
		repeated = []int{0}
	}
	for v := attach; v < n; v++ {
		chosen := make(map[int]bool, attach)
		for len(chosen) < attach {
			var candidate int
			if len(repeated) == 0 || gen.rng.Intn(10) == 0 {
				// Small uniform component keeps degenerate cases moving.
				candidate = gen.rng.Intn(v)
			} else {
				candidate = repeated[gen.rng.Intn(len(repeated))]
			}
			if candidate != v && !chosen[candidate] {
				chosen[candidate] = true
			}
		}
		// Attach in sorted order: ranging over the map would leak map
		// iteration order into the repeated list and make same-seed runs
		// diverge.
		neighbors := make([]int, 0, attach)
		for u := range chosen {
			neighbors = append(neighbors, u)
		}
		sort.Ints(neighbors)
		for _, u := range neighbors {
			g.mustAddEdge(v, u)
			repeated = append(repeated, v, u)
		}
	}
	return g
}

// WattsStrogatz builds a small-world graph: a ring lattice on n vertices
// where each vertex connects to its k/2 nearest neighbors on each side
// (k even, k < n), then each lattice edge is rewired with probability p to
// a uniformly random non-duplicate endpoint. Rewirings that would isolate
// a vertex or duplicate an edge are skipped, so the result stays simple
// with minimum degree >= 1.
// O(n·k) ring construction plus rewiring draws; allocates the returned
// graph.
func (gen *Generator) WattsStrogatz(n, k int, p float64) *Graph {
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	if n <= k {
		n = k + 1
	}
	g := New(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + j) % n
			if !g.HasEdge(v, u) {
				g.mustAddEdge(v, u)
			}
		}
	}
	// Rewire: rebuild the edge set with random replacements.
	edges := g.Edges()
	out := New(n)
	for _, e := range edges {
		if gen.rng.Float64() >= p {
			if !out.HasEdge(e.U, e.V) {
				out.mustAddEdge(e.U, e.V)
			}
			continue
		}
		rewired := false
		for attempt := 0; attempt < 2*n; attempt++ {
			w := gen.rng.Intn(n)
			if w != e.U && !out.HasEdge(e.U, w) && !g.HasEdge(e.U, w) {
				out.mustAddEdge(e.U, w)
				rewired = true
				break
			}
		}
		if !rewired && !out.HasEdge(e.U, e.V) {
			out.mustAddEdge(e.U, e.V)
		}
	}
	// Ensure no vertex lost all incident edges to rewiring.
	for v := 0; v < n; v++ {
		if out.Degree(v) == 0 {
			u := (v + 1) % n
			if !out.HasEdge(v, u) {
				out.mustAddEdge(v, u)
			}
		}
	}
	return out
}

// tryPairing runs one round of the configuration model.
func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		g.mustAddEdge(u, v)
	}
	return g, true
}
