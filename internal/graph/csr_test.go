package graph

import (
	"errors"
	"reflect"
	"testing"

	"github.com/defender-game/defender/internal/par"
)

// csrCorpus returns the seeded mixed corpus the CSR properties are tested
// over: named families plus random graphs of every generator family.
func csrCorpus() map[string]*Graph {
	corpus := map[string]*Graph{
		"empty":       New(0),
		"isolated3":   New(3),
		"path7":       Path(7),
		"cycle8":      Cycle(8),
		"cycle9":      Cycle(9),
		"complete6":   Complete(6),
		"star9":       Star(9),
		"wheel8":      Wheel(8),
		"k33":         CompleteBipartite(3, 3),
		"k27":         CompleteBipartite(2, 7),
		"grid45":      Grid(4, 5),
		"hypercube4":  Hypercube(4),
		"petersen":    Petersen(),
		"heawood":     Heawood(),
		"matching10":  PerfectMatchingGraph(10),
		"caterpillar": Caterpillar(5, 2),
		"binarytree3": CompleteBinaryTree(3),
	}
	gen := NewSeededGenerator(7)
	corpus["gnp30"] = gen.GNP(30, 0.2)
	corpus["gnp50sparse"] = gen.GNP(50, 0.05)
	corpus["bip20"] = gen.Bipartite(10, 10, 0.3)
	corpus["tree40"] = gen.Tree(40)
	corpus["connected25"] = gen.Connected(25, 0.1)
	corpus["ba60"] = gen.BarabasiAlbert(60, 3)
	corpus["ws40"] = gen.WattsStrogatz(40, 4, 0.2)
	return corpus
}

func edgeSet(g *Graph) map[Edge]bool {
	set := make(map[Edge]bool, g.NumEdges())
	for _, e := range g.Edges() {
		set[e] = true
	}
	return set
}

// TestCSRRoundTripPreservesEdges is the conversion property test:
// ToGraph(FromGraph(g)) has exactly g's edge set on every corpus graph.
func TestCSRRoundTripPreservesEdges(t *testing.T) {
	for name, g := range csrCorpus() {
		c := FromGraph(g)
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: FromGraph invalid: %v", name, err)
		}
		back := c.ToGraph()
		if back.NumVertices() != g.NumVertices() {
			t.Fatalf("%s: round-trip n=%d, want %d", name, back.NumVertices(), g.NumVertices())
		}
		if !reflect.DeepEqual(edgeSet(back), edgeSet(g)) {
			t.Fatalf("%s: round-trip changed the edge set", name)
		}
	}
}

func TestCSRBasicQueriesAgreeWithGraph(t *testing.T) {
	for name, g := range csrCorpus() {
		c := FromGraph(g)
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: dims (%d,%d), want (%d,%d)", name, c.NumVertices(), c.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		if c.HasIsolatedVertex() != g.HasIsolatedVertex() {
			t.Fatalf("%s: HasIsolatedVertex disagrees", name)
		}
		if c.MaxDegree() != g.MaxDegree() {
			t.Fatalf("%s: MaxDegree %d, want %d", name, c.MaxDegree(), g.MaxDegree())
		}
		for v := 0; v < g.NumVertices(); v++ {
			if c.Degree(v) != g.Degree(v) {
				t.Fatalf("%s: degree of %d is %d, want %d", name, v, c.Degree(v), g.Degree(v))
			}
			row := c.Neighbors(v)
			want := g.Neighbors(v)
			if len(row) != len(want) {
				t.Fatalf("%s: neighbor row of %d has %d entries, want %d", name, v, len(row), len(want))
			}
			for i := range row {
				if int(row[i]) != want[i] {
					t.Fatalf("%s: neighbors of %d diverge at %d", name, v, i)
				}
			}
		}
		for u := 0; u < g.NumVertices(); u++ {
			for v := 0; v < g.NumVertices(); v++ {
				if c.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("%s: HasEdge(%d,%d) disagrees", name, u, v)
				}
			}
		}
	}
}

func TestCSREachEdgeVisitsEveryEdgeOnce(t *testing.T) {
	g := NewSeededGenerator(3).GNP(25, 0.3)
	c := FromGraph(g)
	seen := make(map[Edge]int)
	var prev Edge
	first := true
	c.EachEdge(func(u, v int32) {
		if u >= v {
			t.Fatalf("EachEdge emitted (%d,%d) without u < v", u, v)
		}
		e := Edge{U: int(u), V: int(v)}
		if !first && (e.U < prev.U || (e.U == prev.U && e.V <= prev.V)) {
			t.Fatalf("EachEdge order violated: %v after %v", e, prev)
		}
		prev, first = e, false
		seen[e]++
	})
	for e, count := range seen {
		if count != 1 {
			t.Fatalf("edge %v visited %d times", e, count)
		}
	}
	if len(seen) != g.NumEdges() {
		t.Fatalf("visited %d edges, want %d", len(seen), g.NumEdges())
	}
}

func TestBuildCSRRejectsInvalidInput(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		us, vs []int32
		want   error
	}{
		{"range", 3, []int32{0}, []int32{3}, ErrVertexRange},
		{"negative", 3, []int32{-1}, []int32{1}, ErrVertexRange},
		{"selfloop", 3, []int32{1}, []int32{1}, ErrSelfLoop},
		{"dup", 3, []int32{0, 0}, []int32{1, 1}, ErrDuplicateEdge},
		{"dup-flipped", 3, []int32{0, 1}, []int32{1, 0}, ErrDuplicateEdge},
	}
	for _, tc := range cases {
		if _, err := BuildCSR(tc.n, tc.us, tc.vs); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := BuildCSR(3, []int32{0}, nil); err == nil {
		t.Error("mismatched endpoint slices accepted")
	}
}

func TestBuildCSRMatchesFromGraph(t *testing.T) {
	g := NewSeededGenerator(11).Connected(40, 0.1)
	var us, vs []int32
	for _, e := range g.Edges() {
		us = append(us, int32(e.U))
		vs = append(vs, int32(e.V))
	}
	built, err := BuildCSR(g.NumVertices(), us, vs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(built, FromGraph(g)) {
		t.Fatal("BuildCSR and FromGraph disagree on the same edge list")
	}
}

func TestCSRBipartitionAgreesWithGraph(t *testing.T) {
	for name, g := range csrCorpus() {
		c := FromGraph(g)
		side, err := c.Bipartition()
		if (err == nil) != g.IsBipartite() {
			t.Fatalf("%s: CSR bipartite=%v, dense=%v", name, err == nil, g.IsBipartite())
		}
		if err != nil {
			if !errors.Is(err, ErrNotBipartite) {
				t.Fatalf("%s: error not ErrNotBipartite: %v", name, err)
			}
			continue
		}
		for _, e := range g.Edges() {
			if side[e.U] == side[e.V] {
				t.Fatalf("%s: edge %v not cross-sided", name, e)
			}
		}
	}
}

func TestBarabasiAlbertBipartiteCSR(t *testing.T) {
	for _, n := range []int{2, 3, 10, 500} {
		c := NewSeededGenerator(5).BarabasiAlbertBipartiteCSR(n, 3)
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d: invalid CSR: %v", n, err)
		}
		if c.NumVertices() != n {
			t.Fatalf("n=%d: got %d vertices", n, c.NumVertices())
		}
		if c.HasIsolatedVertex() {
			t.Fatalf("n=%d: isolated vertex", n)
		}
		side, err := c.Bipartition()
		if err != nil {
			t.Fatalf("n=%d: not bipartite: %v", n, err)
		}
		for v := 0; v < n; v++ {
			// Construction promises the parity sides; BFS recolors per
			// component, but the graph is connected so colors are the
			// parity classes up to a global flip.
			if (side[v] == side[0]) != (v%2 == 0) {
				t.Fatalf("n=%d: vertex %d not on its parity side", n, v)
			}
		}
	}
}

func TestBarabasiAlbertCSRIsValidAndDeterministic(t *testing.T) {
	a := NewSeededGenerator(9).BarabasiAlbertCSR(300, 3)
	b := NewSeededGenerator(9).BarabasiAlbertCSR(300, 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.HasIsolatedVertex() {
		t.Fatal("isolated vertex in BA CSR")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different BA CSR graphs")
	}
	if c := NewSeededGenerator(10).BarabasiAlbertCSR(300, 3); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical BA CSR graphs")
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, v := range []int32{0, 63, 64, 129} {
		if b.Has(v) {
			t.Fatalf("fresh bitset has %d", v)
		}
		b.Set(v)
		if !b.Has(v) {
			t.Fatalf("bitset lost %d", v)
		}
	}
	if b.Has(1) || b.Has(65) {
		t.Fatal("bitset reports unset values")
	}
	b.Reset()
	for _, v := range []int32{0, 63, 64, 129} {
		if b.Has(v) {
			t.Fatalf("reset bitset still has %d", v)
		}
	}
}

// TestCSRThreadsIdentity pins the multicore determinism contract of the
// bulk CSR paths on an instance above the parallel grain: BuildCSR and
// Bipartition produce bit-identical results under thread budgets 1, 2
// and 8 (8 is deliberately oversubscribed on small CI boxes).
func TestCSRThreadsIdentity(t *testing.T) {
	defer par.SetThreads(0)
	par.SetThreads(1)
	base := NewSeededGenerator(47).BarabasiAlbertBipartiteCSR(40_000, 3)
	baseSide, err := base.Bipartition()
	if err != nil {
		t.Fatal(err)
	}
	var us, vs []int32
	base.EachEdge(func(u, v int32) {
		us = append(us, u)
		vs = append(vs, v)
	})
	for _, threads := range []int{2, 8} {
		par.SetThreads(threads)
		c, err := BuildCSR(base.NumVertices(), us, vs)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !reflect.DeepEqual(c.RowPtr, base.RowPtr) || !reflect.DeepEqual(c.Col, base.Col) {
			t.Fatalf("threads=%d: parallel BuildCSR differs from serial", threads)
		}
		side, err := c.Bipartition()
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !reflect.DeepEqual(side, baseSide) {
			t.Fatalf("threads=%d: parallel Bipartition differs from serial", threads)
		}
	}
}

// TestBipartitionParallelOddCycle checks the parallel route rejects odd
// cycles like the serial one, with a deterministic (thread-invariant)
// conflict edge in the message.
func TestBipartitionParallelOddCycle(t *testing.T) {
	// An odd cycle big enough to clear the grain guard.
	n := 70_001
	us := make([]int32, n)
	vs := make([]int32, n)
	for i := 0; i < n; i++ {
		us[i] = int32(i)
		vs[i] = int32((i + 1) % n)
	}
	c, err := BuildCSR(n, us, vs)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for _, workers := range []int{2, 3, 8} {
		_, err := c.bipartitionParallel(workers)
		if !errors.Is(err, ErrNotBipartite) {
			t.Fatalf("workers=%d: err = %v, want ErrNotBipartite", workers, err)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("workers=%d: conflict message %q differs from %q", workers, err, first)
		}
	}
}
