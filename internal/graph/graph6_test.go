package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseGraph6KnownVectors(t *testing.T) {
	tests := []struct {
		name  string
		g6    string
		wantN int
		wantM int
	}{
		{"K2", "A_", 2, 1},
		{"K3", "Bw", 3, 3},
		{"P3", "Bg", 3, 2},
		{"empty5", "D??", 5, 0},
		{"singleton", "@", 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := ParseGraph6(tt.g6)
			if err != nil {
				t.Fatalf("ParseGraph6(%q): %v", tt.g6, err)
			}
			if g.NumVertices() != tt.wantN || g.NumEdges() != tt.wantM {
				t.Errorf("got n=%d m=%d, want n=%d m=%d",
					g.NumVertices(), g.NumEdges(), tt.wantN, tt.wantM)
			}
		})
	}
}

func TestParseGraph6Header(t *testing.T) {
	g, err := ParseGraph6(">>graph6<<Bw\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("m = %d", g.NumEdges())
	}
}

func TestParseGraph6Errors(t *testing.T) {
	bad := []string{
		"",
		"A",         // truncated adjacency
		"A__",       // too many bytes
		"\x01_",     // byte below 63
		"~A",        // truncated extended count
		"A\x7f\x20", // out-of-range bytes
		"Ao",        // nonzero padding bits (n=2 uses 1 of 6 bits)
		"Bx",        // nonzero padding bits (n=3 uses 3 of 6 bits)
		"~??B?",     // non-canonical long-form header for n=3
		"~??aFE",    // non-canonical long-form header for n=34
		"~~~~",      // 8-byte vertex count (also any claimed n > 258047)
	}
	for _, s := range bad {
		if _, err := ParseGraph6(s); !errors.Is(err, ErrBadGraph6) {
			t.Errorf("ParseGraph6(%q) = %v, want ErrBadGraph6", s, err)
		}
	}
}

// TestParseGraph6LongFormTrailing pins the regression the service cache
// depends on: a valid long-form (n >= 63) encoding followed by trailing
// bytes must be rejected, not silently reinterpreted.
func TestParseGraph6LongFormTrailing(t *testing.T) {
	enc, err := FormatGraph6(Path(63))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseGraph6(enc); err != nil {
		t.Fatalf("canonical long-form encoding rejected: %v", err)
	}
	for _, suffix := range []string{"?", "A", "~~~"} {
		if _, err := ParseGraph6(enc + suffix); !errors.Is(err, ErrBadGraph6) {
			t.Errorf("ParseGraph6(valid+%q) = %v, want ErrBadGraph6", suffix, err)
		}
	}
}

func TestFormatGraph6KnownVectors(t *testing.T) {
	if got, err := FormatGraph6(Complete(3)); err != nil || got != "Bw" {
		t.Errorf("K3 = %q (%v), want Bw", got, err)
	}
	if got, err := FormatGraph6(Path(3)); err != nil || got != "Bg" {
		t.Errorf("P3 = %q (%v), want Bg", got, err)
	}
	if got, err := FormatGraph6(Path(2)); err != nil || got != "A_" {
		t.Errorf("K2 = %q (%v), want A_", got, err)
	}
}

func TestGraph6ExtendedVertexCount(t *testing.T) {
	// n = 100 > 62 uses the '~' form.
	g := Path(100)
	enc, err := FormatGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != '~' {
		t.Fatalf("expected extended header, got %q", enc[:4])
	}
	back, err := ParseGraph6(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 100 || back.NumEdges() != 99 {
		t.Errorf("round trip: n=%d m=%d", back.NumVertices(), back.NumEdges())
	}
}

// Property: FormatGraph6 / ParseGraph6 round-trips arbitrary graphs.
func TestPropertyGraph6RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(70) // crosses the 62 boundary
		g := RandomGNP(n, rng.Float64(), seed)
		enc, err := FormatGraph6(g)
		if err != nil {
			return false
		}
		back, err := ParseGraph6(enc)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
