package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNormalizeSet(t *testing.T) {
	tests := []struct {
		in, want []int
	}{
		{nil, nil},
		{[]int{3, 1, 2}, []int{1, 2, 3}},
		{[]int{5, 5, 5}, []int{5}},
		{[]int{2, 1, 2, 1}, []int{1, 2}},
		{[]int{0}, []int{0}},
	}
	for _, tt := range tests {
		if got := NormalizeSet(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("NormalizeSet(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestSetContains(t *testing.T) {
	s := []int{1, 3, 5}
	for _, v := range s {
		if !SetContains(s, v) {
			t.Errorf("should contain %d", v)
		}
	}
	for _, v := range []int{0, 2, 6} {
		if SetContains(s, v) {
			t.Errorf("should not contain %d", v)
		}
	}
}

func TestSetComplement(t *testing.T) {
	got := SetComplement([]int{1, 3}, 5)
	if !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Errorf("complement = %v", got)
	}
	if got := SetComplement(nil, 3); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("complement of empty = %v", got)
	}
	// Out-of-range members are ignored.
	if got := SetComplement([]int{-1, 7}, 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("complement with junk = %v", got)
	}
}

func TestSetOperations(t *testing.T) {
	a := []int{1, 2, 4}
	b := []int{2, 3, 4, 6}
	if got := SetUnion(a, b); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 6}) {
		t.Errorf("union = %v", got)
	}
	if got := SetIntersection(a, b); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Errorf("intersection = %v", got)
	}
	if got := SetDifference(a, b); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("difference = %v", got)
	}
	if got := SetDifference(b, a); !reflect.DeepEqual(got, []int{3, 6}) {
		t.Errorf("difference = %v", got)
	}
	if got := SetIntersection(a, nil); got != nil {
		t.Errorf("intersection with empty = %v", got)
	}
}

func TestSetsEqual(t *testing.T) {
	if !SetsEqual([]int{1, 2}, []int{1, 2}) {
		t.Error("equal sets")
	}
	if SetsEqual([]int{1}, []int{1, 2}) || SetsEqual([]int{1, 3}, []int{1, 2}) {
		t.Error("unequal sets")
	}
}

func TestIsPartition(t *testing.T) {
	tests := []struct {
		a, b []int
		n    int
		want bool
	}{
		{[]int{0, 2}, []int{1, 3}, 4, true},
		{[]int{0, 1, 2, 3}, nil, 4, true},
		{[]int{0}, []int{1}, 3, false},       // misses 2
		{[]int{0, 1}, []int{1, 2}, 3, false}, // overlap
		{[]int{0, 5}, []int{1, 2}, 4, false}, // out of range
	}
	for _, tt := range tests {
		if got := IsPartition(tt.a, tt.b, tt.n); got != tt.want {
			t.Errorf("IsPartition(%v,%v,%d) = %v, want %v", tt.a, tt.b, tt.n, got, tt.want)
		}
	}
}

// Property: union/intersection/difference respect the map-based model.
func TestPropertySetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []int {
			var s []int
			for i := 0; i < 10; i++ {
				if rng.Intn(2) == 0 {
					s = append(s, i)
				}
			}
			return s
		}
		a, b := mk(), mk()
		inA := make(map[int]bool)
		inB := make(map[int]bool)
		for _, v := range a {
			inA[v] = true
		}
		for _, v := range b {
			inB[v] = true
		}
		var wantU, wantI, wantD []int
		for v := 0; v < 10; v++ {
			if inA[v] || inB[v] {
				wantU = append(wantU, v)
			}
			if inA[v] && inB[v] {
				wantI = append(wantI, v)
			}
			if inA[v] && !inB[v] {
				wantD = append(wantD, v)
			}
		}
		sort.Ints(wantU)
		return reflect.DeepEqual(SetUnion(a, b), wantU) &&
			reflect.DeepEqual(SetIntersection(a, b), wantI) &&
			reflect.DeepEqual(SetDifference(a, b), wantD)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: complement of complement is the identity on normalized sets.
func TestPropertyComplementInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		var s []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				s = append(s, v)
			}
		}
		back := SetComplement(SetComplement(s, n), n)
		if len(s) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(back, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
