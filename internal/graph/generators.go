package graph

// Path returns the path graph P_n on n vertices (n-1 edges).
// O(n); allocates the returned graph.
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.mustAddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph C_n on n >= 3 vertices.
// For n < 3 it returns a path (cycles need at least three vertices).
// O(n); allocates the returned graph.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.mustAddEdge(n-1, 0)
	}
	return g
}

// Complete returns the complete graph K_n.
// O(n^2) insertions; allocates the returned graph.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.mustAddEdge(u, v)
		}
	}
	return g
}

// Star returns the star K_{1,n-1}: vertex 0 is the center.
// O(n); allocates the returned graph.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.mustAddEdge(0, v)
	}
	return g
}

// Wheel returns the wheel W_n: a cycle on vertices 1..n-1 plus hub 0.
// It requires n >= 4 for the rim to be a proper cycle.
// O(n); allocates the returned graph.
func Wheel(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.mustAddEdge(0, v)
	}
	for v := 1; v+1 < n; v++ {
		g.mustAddEdge(v, v+1)
	}
	if n >= 4 {
		g.mustAddEdge(n-1, 1)
	}
	return g
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on the left side and
// a..a+b-1 on the right side.
// O(a·b) insertions; allocates the returned graph.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.mustAddEdge(u, v)
		}
	}
	return g
}

// Grid returns the r x c grid graph. Vertex (i, j) has index i*c + j.
// O(r·c); allocates the returned graph.
func Grid(r, c int) *Graph {
	g := New(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := i*c + j
			if j+1 < c {
				g.mustAddEdge(v, v+1)
			}
			if i+1 < r {
				g.mustAddEdge(v, v+c)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices.
// O(d·2^d) insertions; allocates the returned graph.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				g.mustAddEdge(v, u)
			}
		}
	}
	return g
}

// PerfectMatchingGraph returns n/2 disjoint edges (2i, 2i+1); n must be even
// (an odd trailing vertex is left isolated).
// O(n); allocates the returned graph.
func PerfectMatchingGraph(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v += 2 {
		g.mustAddEdge(v, v+1)
	}
	return g
}

// Petersen returns the Petersen graph (10 vertices, 15 edges, 3-regular).
// O(1)-sized; allocates the returned graph.
func Petersen() *Graph {
	g := New(10)
	for v := 0; v < 5; v++ {
		g.mustAddEdge(v, (v+1)%5)     // outer cycle
		g.mustAddEdge(v, v+5)         // spokes
		g.mustAddEdge(v+5, (v+2)%5+5) // inner pentagram
	}
	return g
}

// Heawood returns the Heawood graph: the bipartite 3-regular cage on 14
// vertices (the incidence graph of the Fano plane). It is simultaneously
// bipartite (k-matching equilibria exist) and perfectly matchable, making
// it the canonical instance where the two equilibrium families tie.
// O(1)-sized; allocates the returned graph.
func Heawood() *Graph {
	g := New(14)
	for v := 0; v < 14; v++ {
		g.mustAddEdge(v, (v+1)%14)
	}
	for _, e := range [][2]int{{0, 5}, {2, 7}, {4, 9}, {6, 11}, {8, 13}, {10, 1}, {12, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			g.mustAddEdge(e[0], e[1])
		}
	}
	return g
}

// RandomGNP returns an Erdős–Rényi graph G(n, p) drawn with the given seed.
// It is a convenience wrapper over Generator.GNP; callers drawing several
// graphs should hold one Generator instead.
// Cost of Generator.GNP plus a one-shot generator allocation.
func RandomGNP(n int, p float64, seed int64) *Graph {
	return NewSeededGenerator(seed).GNP(n, p)
}

// RandomBipartite returns a random bipartite graph without isolated
// vertices, drawn with the given seed; see Generator.Bipartite.
// Cost of Generator.Bipartite plus a one-shot generator allocation.
func RandomBipartite(a, b int, p float64, seed int64) *Graph {
	return NewSeededGenerator(seed).Bipartite(a, b, p)
}

// RandomTree returns a uniformly random labelled tree on n vertices, drawn
// with the given seed; see Generator.Tree.
// Cost of Generator.Tree plus a one-shot generator allocation.
func RandomTree(n int, seed int64) *Graph {
	return NewSeededGenerator(seed).Tree(n)
}

// RandomConnected returns a connected Erdős–Rényi-style graph drawn with
// the given seed; see Generator.Connected.
// Cost of Generator.Connected plus a one-shot generator allocation.
func RandomConnected(n int, p float64, seed int64) *Graph {
	return NewSeededGenerator(seed).Connected(n, p)
}

// RandomRegular returns a d-regular graph on n vertices drawn with the
// given seed, or an error if n*d is odd or d >= n; see Generator.Regular.
// Cost of Generator.Regular plus a one-shot generator allocation.
func RandomRegular(n, d int, seed int64) (*Graph, error) {
	return NewSeededGenerator(seed).Regular(n, d)
}
