package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph P_n on n vertices (n-1 edges).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		_ = g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph C_n on n >= 3 vertices.
// For n < 3 it returns a path (cycles need at least three vertices).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		_ = g.AddEdge(n-1, 0)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// Star returns the star K_{1,n-1}: vertex 0 is the center.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		_ = g.AddEdge(0, v)
	}
	return g
}

// Wheel returns the wheel W_n: a cycle on vertices 1..n-1 plus hub 0.
// It requires n >= 4 for the rim to be a proper cycle.
func Wheel(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		_ = g.AddEdge(0, v)
	}
	for v := 1; v+1 < n; v++ {
		_ = g.AddEdge(v, v+1)
	}
	if n >= 4 {
		_ = g.AddEdge(n-1, 1)
	}
	return g
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on the left side and
// a..a+b-1 on the right side.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// Grid returns the r x c grid graph. Vertex (i, j) has index i*c + j.
func Grid(r, c int) *Graph {
	g := New(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := i*c + j
			if j+1 < c {
				_ = g.AddEdge(v, v+1)
			}
			if i+1 < r {
				_ = g.AddEdge(v, v+c)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				_ = g.AddEdge(v, u)
			}
		}
	}
	return g
}

// PerfectMatchingGraph returns n/2 disjoint edges (2i, 2i+1); n must be even
// (an odd trailing vertex is left isolated).
func PerfectMatchingGraph(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v += 2 {
		_ = g.AddEdge(v, v+1)
	}
	return g
}

// Petersen returns the Petersen graph (10 vertices, 15 edges, 3-regular).
func Petersen() *Graph {
	g := New(10)
	for v := 0; v < 5; v++ {
		_ = g.AddEdge(v, (v+1)%5)     // outer cycle
		_ = g.AddEdge(v, v+5)         // spokes
		_ = g.AddEdge(v+5, (v+2)%5+5) // inner pentagram
	}
	return g
}

// Heawood returns the Heawood graph: the bipartite 3-regular cage on 14
// vertices (the incidence graph of the Fano plane). It is simultaneously
// bipartite (k-matching equilibria exist) and perfectly matchable, making
// it the canonical instance where the two equilibrium families tie.
func Heawood() *Graph {
	g := New(14)
	for v := 0; v < 14; v++ {
		_ = g.AddEdge(v, (v+1)%14)
	}
	for _, e := range [][2]int{{0, 5}, {2, 7}, {4, 9}, {6, 11}, {8, 13}, {10, 1}, {12, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			_ = g.AddEdge(e[0], e[1])
		}
	}
	return g
}

// RandomGNP returns an Erdős–Rényi graph G(n, p) drawn with the given seed.
func RandomGNP(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomBipartite returns a random bipartite graph with sides of size a and b
// where every cross pair is an edge independently with probability p. To
// avoid isolated vertices (the Tuple model forbids them), every vertex that
// ends up isolated is attached to a uniformly random vertex of the other side
// (requires a, b >= 1).
func RandomBipartite(a, b int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			if rng.Float64() < p {
				_ = g.AddEdge(u, v)
			}
		}
	}
	if a >= 1 && b >= 1 {
		for u := 0; u < a; u++ {
			if g.Degree(u) == 0 {
				_ = g.AddEdge(u, a+rng.Intn(b))
			}
		}
		for v := a; v < a+b; v++ {
			if g.Degree(v) == 0 {
				_ = g.AddEdge(rng.Intn(a), v)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices, built by
// decoding a random Prüfer sequence.
func RandomTree(n int, seed int64) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		_ = g.AddEdge(0, 1)
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Repeatedly attach the smallest leaf to the next Prüfer symbol.
	leaf := -1
	ptr := 0
	next := func() int {
		if leaf != -1 {
			v := leaf
			leaf = -1
			return v
		}
		for degree[ptr] != 1 {
			ptr++
		}
		v := ptr
		ptr++
		return v
	}
	for _, p := range prufer {
		v := next()
		_ = g.AddEdge(v, p)
		degree[v]--
		degree[p]--
		if degree[p] == 1 && p < ptr {
			leaf = p
		}
	}
	// Two vertices of degree 1 remain; join them.
	u, v := -1, -1
	for w := 0; w < n; w++ {
		if degree[w] == 1 {
			if u == -1 {
				u = w
			} else {
				v = w
			}
		}
	}
	_ = g.AddEdge(u, v)
	return g
}

// RandomConnected returns a connected Erdős–Rényi-style graph: a random tree
// backbone (guaranteeing connectivity and no isolated vertices) plus each
// remaining pair as an edge with probability p.
func RandomConnected(n int, p float64, seed int64) *Graph {
	g := RandomTree(n, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomRegular returns a d-regular graph on n vertices via the pairing
// model with restarts, or an error if n*d is odd or d >= n.
func RandomRegular(n, d int, seed int64) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: no %d-regular graph on %d vertices (odd degree sum)", d, n)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: degree %d too large for %d vertices", d, n)
	}
	rng := rand.New(rand.NewSource(seed))
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryPairing(n, d, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: pairing model failed to produce a simple %d-regular graph on %d vertices", d, n)
}

// tryPairing runs one round of the configuration model.
func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		_ = g.AddEdge(u, v)
	}
	return g, true
}
