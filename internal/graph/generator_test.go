package graph

import (
	"math/rand"
	"testing"
)

// TestGeneratorSameSeedSameSequence: two generators seeded identically
// replay the same sequence of graphs across interleaved draws of
// different models — the reproducibility contract behind single-seed
// experiment runs.
func TestGeneratorSameSeedSameSequence(t *testing.T) {
	a := NewSeededGenerator(42)
	b := NewSeededGenerator(42)
	draw := func(gen *Generator) []*Graph {
		gs := []*Graph{
			gen.GNP(20, 0.3),
			gen.Tree(15),
			gen.Bipartite(6, 9, 0.4),
			gen.Connected(12, 0.2),
			gen.BarabasiAlbert(18, 2),
			gen.WattsStrogatz(16, 4, 0.3),
		}
		if g, err := gen.Regular(10, 3); err == nil {
			gs = append(gs, g)
		}
		return gs
	}
	ga, gb := draw(a), draw(b)
	if len(ga) != len(gb) {
		t.Fatalf("draw counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if g6(t, ga[i]) != g6(t, gb[i]) {
			t.Errorf("draw %d differs between identically-seeded generators", i)
		}
	}
}

// TestGeneratorMatchesWrappers: each seed-taking convenience function is
// exactly one fresh Generator draw, so existing seeded call sites keep
// their meaning.
func TestGeneratorMatchesWrappers(t *testing.T) {
	const seed = 7
	cases := []struct {
		name    string
		wrapped *Graph
		viaGen  *Graph
	}{
		{"gnp", RandomGNP(25, 0.25, seed), NewSeededGenerator(seed).GNP(25, 0.25)},
		{"bipartite", RandomBipartite(7, 8, 0.3, seed), NewSeededGenerator(seed).Bipartite(7, 8, 0.3)},
		{"tree", RandomTree(20, seed), NewSeededGenerator(seed).Tree(20)},
		{"connected", RandomConnected(14, 0.2, seed), NewSeededGenerator(seed).Connected(14, 0.2)},
		{"ba", BarabasiAlbert(20, 2, seed), NewSeededGenerator(seed).BarabasiAlbert(20, 2)},
		{"ws", WattsStrogatz(18, 4, 0.2, seed), NewSeededGenerator(seed).WattsStrogatz(18, 4, 0.2)},
	}
	for _, c := range cases {
		if g6(t, c.wrapped) != g6(t, c.viaGen) {
			t.Errorf("%s: wrapper and Generator draw differ for seed %d", c.name, seed)
		}
	}
}

// TestNewGeneratorNilRandDeterministic: a nil source degrades to a fixed
// seed, never to the global math/rand stream.
func TestNewGeneratorNilRandDeterministic(t *testing.T) {
	a := NewGenerator(nil).GNP(12, 0.5)
	b := NewGenerator(nil).GNP(12, 0.5)
	if g6(t, a) != g6(t, b) {
		t.Fatal("NewGenerator(nil) draws are not deterministic")
	}
	injected := NewGenerator(rand.New(rand.NewSource(99))).GNP(12, 0.5)
	want := NewSeededGenerator(99).GNP(12, 0.5)
	if g6(t, injected) != g6(t, want) {
		t.Fatal("NewGenerator with explicit source differs from NewSeededGenerator")
	}
}

// g6 canonically encodes g for structural comparison.
func g6(t *testing.T, g *Graph) string {
	t.Helper()
	s, err := FormatGraph6(g)
	if err != nil {
		t.Fatalf("FormatGraph6: %v", err)
	}
	return s
}
