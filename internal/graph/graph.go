// Package graph implements the undirected-graph substrate used throughout the
// library: a compact adjacency representation, structural queries
// (connectivity, bipartiteness, degrees), generators for the graph families
// the experiments run on, and a plain-text edge-list exchange format.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected, which
// is exactly the class of instances the Tuple model of Gelastou et al.
// (ICDCS 2006) is defined on. Vertices are integers 0..n-1; edges are
// normalized so that U < V.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors returned by graph constructors and mutators.
var (
	// ErrVertexRange is returned when a vertex index is outside [0, n).
	ErrVertexRange = errors.New("graph: vertex index out of range")
	// ErrSelfLoop is returned when an edge would connect a vertex to itself.
	ErrSelfLoop = errors.New("graph: self-loops are not allowed")
	// ErrDuplicateEdge is returned when an edge is inserted twice.
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
	// ErrNotBipartite is returned by operations that require a bipartition.
	ErrNotBipartite = errors.New("graph: graph is not bipartite")
)

// Edge is an undirected edge. Edges constructed through this package are
// normalized so that U < V; use NewEdge to normalize arbitrary endpoints.
type Edge struct {
	// U is the smaller endpoint.
	U int
	// V is the larger endpoint.
	V int
}

// NewEdge returns the normalized edge {u, v} with the smaller endpoint first.
// O(1), does not allocate.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e different from w.
// It returns -1 if w is not an endpoint of e. O(1), does not allocate.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		return -1
	}
}

// Has reports whether w is an endpoint of e. O(1), does not allocate.
func (e Edge) Has(w int) bool { return e.U == w || e.V == w }

// String renders the edge as "(u,v)". Allocates the string.
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph on vertices 0..n-1.
//
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count. Graph is not safe for concurrent
// mutation; concurrent reads are safe.
type Graph struct {
	n         int
	adj       [][]int      // adjacency lists, each sorted ascending
	edges     []Edge       // edge list in insertion order, normalized
	edgeIndex map[Edge]int // normalized edge -> index into edges
}

// New returns an empty graph on n vertices (n >= 0). O(n); allocates the
// adjacency skeleton and the edge-index map.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:         n,
		adj:       make([][]int, n),
		edgeIndex: make(map[Edge]int),
	}
}

// NumVertices returns the number of vertices n. O(1), does not allocate.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of edges m. O(1), does not allocate.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v}.
// It returns ErrVertexRange, ErrSelfLoop or ErrDuplicateEdge on invalid input.
// O(d) per insertion (sorted adjacency shift) plus amortized append and
// map-store allocations.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	e := NewEdge(u, v)
	if _, dup := g.edgeIndex[e]; dup {
		return fmt.Errorf("%w: %v", ErrDuplicateEdge, e)
	}
	g.edgeIndex[e] = len(g.edges)
	g.edges = append(g.edges, e)
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	return nil
}

// mustAddEdge inserts {u, v} for construction code whose arithmetic makes
// range, self-loop, and duplicate errors impossible (generators emitting
// distinct in-range pairs, rebuilds iterating an existing edge set). A panic
// here means the construction itself is broken, never the caller's input.
func (g *Graph) mustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		// lint:invariant(nakedpanic): callers enumerate distinct in-range pairs; a failure is a bug in this package
		panic(fmt.Sprintf("graph: internal construction: %v", err))
	}
}

// insertSorted inserts x into the ascending slice s, keeping it sorted.
func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// HasEdge reports whether {u, v} is an edge of g. O(1) expected (map
// lookup), does not allocate.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, ok := g.edgeIndex[NewEdge(u, v)]
	return ok
}

// EdgeID returns the index of edge e in the edge list, or -1 if absent.
// Edge indices are stable identifiers used by tuples of the Tuple model.
// O(1) expected, does not allocate.
func (g *Graph) EdgeID(e Edge) int {
	id, ok := g.edgeIndex[NewEdge(e.U, e.V)]
	if !ok {
		return -1
	}
	return id
}

// EdgeByID returns the edge with the given index.
// It panics if id is out of range, mirroring slice indexing semantics.
// O(1), does not allocate.
func (g *Graph) EdgeByID(id int) Edge { return g.edges[id] }

// Edges returns a copy of the edge list in insertion order. O(m);
// allocates the copy.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Neighbors returns a copy of the (sorted) adjacency list of v. O(d);
// allocates the copy — use EachNeighbor on hot paths.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= g.n {
		return nil
	}
	out := make([]int, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// EachNeighbor calls fn for every neighbor of v in ascending order.
// It avoids the copy made by Neighbors on hot paths. O(d), does not
// allocate (the closure may).
func (g *Graph) EachNeighbor(v int, fn func(u int)) {
	if v < 0 || v >= g.n {
		return
	}
	for _, u := range g.adj[v] {
		fn(u)
	}
}

// Degree returns the degree of v, or 0 if v is out of range.
// O(1), does not allocate.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= g.n {
		return 0
	}
	return len(g.adj[v])
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
// O(n), does not allocate.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
// O(n), does not allocate.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// HasIsolatedVertex reports whether some vertex has degree 0. The Tuple
// model is defined on graphs without isolated vertices (an isolated vertex
// can never be covered by an edge). O(n), does not allocate.
func (g *Graph) HasIsolatedVertex() bool {
	for _, a := range g.adj {
		if len(a) == 0 {
			return true
		}
	}
	return false
}

// IncidentEdges returns the edges incident to v, in ascending neighbor order.
// O(d); allocates the edge slice.
func (g *Graph) IncidentEdges(v int) []Edge {
	if v < 0 || v >= g.n {
		return nil
	}
	out := make([]Edge, 0, len(g.adj[v]))
	for _, u := range g.adj[v] {
		out = append(out, NewEdge(v, u))
	}
	return out
}

// Clone returns a deep copy of g. O(n + m log m) (sorted adjacency
// rebuild); allocates the copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		// AddEdge cannot fail when replaying a valid edge list.
		c.mustAddEdge(e.U, e.V)
	}
	return c
}

// NeighborhoodOf returns Neigh_G(X): the set of all vertices adjacent to at
// least one vertex of set (which may intersect set itself), as a sorted slice.
// O(Σ d(v) + out log out); allocates the seen map and the result.
func (g *Graph) NeighborhoodOf(set []int) []int {
	seen := make(map[int]bool)
	for _, v := range set {
		if v < 0 || v >= g.n {
			continue
		}
		for _, u := range g.adj[v] {
			seen[u] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// together with the mapping from new vertex indices to original ones.
// O(m + |vertices| log |vertices|); allocates the subgraph and mapping.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	keep := make([]int, 0, len(vertices))
	seen := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		if v >= 0 && v < g.n && !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sort.Ints(keep)
	index := make(map[int]int, len(keep))
	for i, v := range keep {
		index[v] = i
	}
	sub := New(len(keep))
	for _, e := range g.edges {
		iu, okU := index[e.U]
		iv, okV := index[e.V]
		if okU && okV {
			sub.mustAddEdge(iu, iv)
		}
	}
	return sub, keep
}

// SubgraphOfEdges returns the graph G_T obtained from an edge set T: its
// vertex set is V(T) and its edge set is T (Section 2 of the paper). The
// returned graph keeps the original vertex numbering of g (vertices not
// touched by T are present but isolated in the returned graph only if their
// index is below the maximum touched index; use the second return value for
// the exact vertex set V(T)). O(n + |edges| log |edges|); allocates the
// subgraph and the sorted vertex set.
func (g *Graph) SubgraphOfEdges(edges []Edge) (*Graph, []int) {
	sub := New(g.n)
	touched := make(map[int]bool)
	for _, e := range edges {
		if g.EdgeID(e) < 0 {
			continue
		}
		if !sub.HasEdge(e.U, e.V) {
			sub.mustAddEdge(e.U, e.V)
		}
		touched[e.U] = true
		touched[e.V] = true
	}
	vs := make([]int, 0, len(touched))
	for v := range touched {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return sub, vs
}

// IsConnected reports whether g is connected. The empty graph and the
// single-vertex graph are considered connected. O(n + m); allocates BFS
// scratch.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.componentOf(0)) == g.n
}

// componentOf returns the vertices reachable from start via BFS.
func (g *Graph) componentOf(start int) []int {
	visited := make([]bool, g.n)
	queue := []int{start}
	visited[start] = true
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.adj[v] {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	return order
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, ordered by smallest contained vertex.
// O(n log n + m); allocates the component slices and BFS scratch.
func (g *Graph) ConnectedComponents() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if visited[v] {
			continue
		}
		comp := g.componentOf(v)
		for _, u := range comp {
			visited[u] = true
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Bipartition attempts to 2-color g. On success it returns side[v] in {0,1}
// for every vertex. Isolated vertices are assigned side 0. If g contains an
// odd cycle it returns ErrNotBipartite. O(n + m); allocates the side
// array and BFS queue. CSR counterpart: (*CSR).Bipartition.
func (g *Graph) Bipartition() ([]int, error) {
	side := make([]int, g.n)
	for i := range side {
		side[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if side[u] == -1 {
					side[u] = 1 - side[v]
					queue = append(queue, u)
				} else if side[u] == side[v] {
					return nil, fmt.Errorf("%w: odd cycle through edge (%d,%d)", ErrNotBipartite, v, u)
				}
			}
		}
	}
	return side, nil
}

// IsBipartite reports whether g has no odd cycle. O(n + m); allocates
// Bipartition's scratch.
func (g *Graph) IsBipartite() bool {
	_, err := g.Bipartition()
	return err == nil
}

// IsRegular reports whether every vertex has the same degree, returning that
// degree. The empty graph is 0-regular. O(n), does not allocate.
func (g *Graph) IsRegular() (bool, int) {
	if g.n == 0 {
		return true, 0
	}
	d := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) != d {
			return false, 0
		}
	}
	return true, d
}

// String renders a short human-readable summary. Allocates the string.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, len(g.edges))
}
