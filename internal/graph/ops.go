package graph

import "fmt"

// Structural operations on graphs. These are used by the experiments to
// widen the instance families (e.g. line graphs turn edge-selection games
// into vertex-selection ones) and by tests as independent oracles.

// Complement returns the simple complement of g: same vertices, an edge
// exactly where g has none.
// O(n^2) insertions; allocates the returned graph.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				c.mustAddEdge(u, v)
			}
		}
	}
	return c
}

// LineGraph returns L(G): one vertex per edge of g (indexed by edge id),
// with two vertices adjacent iff the underlying edges share an endpoint.
// Defender tuples of Π_k(G) correspond to k-vertex subsets of L(G);
// tuples of pairwise disjoint edges correspond to independent sets.
// O(Σ d(v)^2) insertions; allocates the returned graph.
func (g *Graph) LineGraph() *Graph {
	m := g.NumEdges()
	l := New(m)
	for i := 0; i < m; i++ {
		ei := g.EdgeByID(i)
		for j := i + 1; j < m; j++ {
			ej := g.EdgeByID(j)
			if ej.Has(ei.U) || ej.Has(ei.V) {
				l.mustAddEdge(i, j)
			}
		}
	}
	return l
}

// DisjointUnion returns the graph consisting of g followed by h on a
// shifted vertex range, along with the offset of h's vertices.
// O(n + m) over both inputs; allocates the returned graph.
func DisjointUnion(g, h *Graph) (*Graph, int) {
	offset := g.n
	u := New(g.n + h.n)
	for _, e := range g.edges {
		u.mustAddEdge(e.U, e.V)
	}
	for _, e := range h.edges {
		u.mustAddEdge(e.U+offset, e.V+offset)
	}
	return u, offset
}

// Ladder returns the ladder graph L_n: two parallel paths of n vertices
// with rungs between them (the 2×n grid).
// O(n); allocates the returned graph.
func Ladder(n int) *Graph { return Grid(2, n) }

// Barbell returns two K_c cliques joined by a single bridge edge.
// O(c^2) insertions; allocates the returned graph.
func Barbell(c int) *Graph {
	g := New(2 * c)
	for u := 0; u < c; u++ {
		for v := u + 1; v < c; v++ {
			g.mustAddEdge(u, v)
			g.mustAddEdge(c+u, c+v)
		}
	}
	if c >= 1 {
		g.mustAddEdge(c-1, c)
	}
	return g
}

// Lollipop returns K_c with a path of p extra vertices hanging off
// vertex c−1.
// O(c^2 + p) insertions; allocates the returned graph.
func Lollipop(c, p int) *Graph {
	g := New(c + p)
	for u := 0; u < c; u++ {
		for v := u + 1; v < c; v++ {
			g.mustAddEdge(u, v)
		}
	}
	prev := c - 1
	for i := 0; i < p; i++ {
		g.mustAddEdge(prev, c+i)
		prev = c + i
	}
	return g
}

// CompleteBinaryTree returns the complete binary tree with the given
// number of levels (level 1 = a single root), n = 2^levels − 1 vertices.
// O(2^levels); allocates the returned graph.
func CompleteBinaryTree(levels int) *Graph {
	if levels < 1 {
		return New(0)
	}
	n := (1 << uint(levels)) - 1
	g := New(n)
	for v := 1; v < n; v++ {
		g.mustAddEdge(v, (v-1)/2)
	}
	return g
}

// Caterpillar returns a spine path of s vertices with legs pendant leaves
// attached to every spine vertex. Spine vertices are 0..s−1; the legs of
// spine vertex i are s+i·legs .. s+(i+1)·legs−1.
// O(s·legs); allocates the returned graph.
func Caterpillar(s, legs int) *Graph {
	g := New(s + s*legs)
	for v := 0; v+1 < s; v++ {
		g.mustAddEdge(v, v+1)
	}
	for i := 0; i < s; i++ {
		for j := 0; j < legs; j++ {
			g.mustAddEdge(i, s+i*legs+j)
		}
	}
	return g
}

// MustEdge returns the edge {u, v} of g, panicking if absent — a test and
// example helper for statically-known edges.
// O(1) expected, does not allocate (panics on a missing edge).
func (g *Graph) MustEdge(u, v int) Edge {
	if !g.HasEdge(u, v) {
		// lint:invariant(nakedpanic): Must* helper; panicking on a statically-known
		// edge that is absent is the documented contract.
		panic(fmt.Sprintf("graph: edge (%d,%d) not present", u, v))
	}
	return NewEdge(u, v)
}
