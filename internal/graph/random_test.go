package graph

import (
	"testing"
	"testing/quick"
)

func TestBarabasiAlbertBasics(t *testing.T) {
	g := BarabasiAlbert(50, 2, 7)
	if g.NumVertices() != 50 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.HasIsolatedVertex() {
		t.Error("BA graphs must have no isolated vertices")
	}
	if !g.IsConnected() {
		t.Error("BA graphs grown from a clique are connected")
	}
	// Scale-free signature: max degree well above the attachment rate.
	if g.MaxDegree() < 5 {
		t.Errorf("max degree %d suspiciously small for a hub-forming process", g.MaxDegree())
	}
	// Determinism.
	h := BarabasiAlbert(50, 2, 7)
	if h.NumEdges() != g.NumEdges() {
		t.Error("same seed must reproduce")
	}
}

func TestBarabasiAlbertDegenerateParams(t *testing.T) {
	g := BarabasiAlbert(1, 0, 1) // clamped to attach=1, n=2
	if g.NumVertices() < 2 {
		t.Errorf("n = %d, want clamped >= 2", g.NumVertices())
	}
	if g.HasIsolatedVertex() {
		t.Error("clamped BA graph must still cover all vertices")
	}
}

func TestWattsStrogatzBasics(t *testing.T) {
	g := WattsStrogatz(40, 4, 0.1, 3)
	if g.NumVertices() != 40 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.HasIsolatedVertex() {
		t.Error("WS graphs must have no isolated vertices")
	}
	// p=0: pure ring lattice, 2-regular-per-side.
	lattice := WattsStrogatz(20, 4, 0, 1)
	if ok, d := lattice.IsRegular(); !ok || d != 4 {
		t.Errorf("p=0 lattice should be 4-regular, got (%v,%d)", ok, d)
	}
	if lattice.NumEdges() != 40 {
		t.Errorf("lattice edges = %d, want 40", lattice.NumEdges())
	}
}

func TestWattsStrogatzClampsParams(t *testing.T) {
	g := WattsStrogatz(3, 5, 0.5, 1) // k clamped even, n clamped > k
	if g.NumVertices() <= 5 {
		t.Errorf("n = %d, want clamped above k", g.NumVertices())
	}
	odd := WattsStrogatz(20, 3, 0, 1) // k -> 4
	if ok, d := odd.IsRegular(); !ok || d != 4 {
		t.Errorf("odd k should clamp to 4, got (%v,%d)", ok, d)
	}
}

// Property: both topology generators always produce simple graphs without
// isolated vertices (the precondition of the Tuple model).
func TestPropertyTopologiesWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		ba := BarabasiAlbert(10+int(uint64(seed)%30), 1+int(uint64(seed)%3), seed)
		ws := WattsStrogatz(10+int(uint64(seed)%30), 2+2*int(uint64(seed)%2), 0.3, seed)
		for _, g := range []*Graph{ba, ws} {
			if g.HasIsolatedVertex() {
				return false
			}
			// Simplicity is structural (AddEdge rejects duplicates), but
			// re-verify the handshake identity as a cheap corruption check.
			sum := 0
			for v := 0; v < g.NumVertices(); v++ {
				sum += g.Degree(v)
			}
			if sum != 2*g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
