package lp

import (
	"math/big"
	"testing"
)

// TestBealeCyclingExample: Beale's classic LP makes naive Dantzig-rule
// simplex cycle forever on degenerate pivots. Bland's rule must terminate
// at the optimum (value 1/20, x = (1/25, 0, 1, 0)).
//
//	max  3/4 x1 − 150 x2 + 1/50 x3 − 6 x4
//	s.t. 1/4 x1 −  60 x2 − 1/25 x3 + 9 x4 <= 0
//	     1/2 x1 −  90 x2 − 1/50 x3 + 3 x4 <= 0
//	                            x3         <= 1
func TestBealeCyclingExample(t *testing.T) {
	c := []*big.Rat{
		big.NewRat(3, 4), big.NewRat(-150, 1), big.NewRat(1, 50), big.NewRat(-6, 1),
	}
	a := [][]*big.Rat{
		{big.NewRat(1, 4), big.NewRat(-60, 1), big.NewRat(-1, 25), big.NewRat(9, 1)},
		{big.NewRat(1, 2), big.NewRat(-90, 1), big.NewRat(-1, 50), big.NewRat(3, 1)},
		{big.NewRat(0, 1), big.NewRat(0, 1), big.NewRat(1, 1), big.NewRat(0, 1)},
	}
	b := []*big.Rat{new(big.Rat), new(big.Rat), big.NewRat(1, 1)}

	sol, err := Maximize(c, a, b)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal (Bland's rule must not cycle)", sol.Status)
	}
	if sol.Value.Cmp(big.NewRat(1, 20)) != 0 {
		t.Errorf("value = %v, want 1/20", sol.Value)
	}
	if sol.X[0].Cmp(big.NewRat(1, 25)) != 0 || sol.X[1].Sign() != 0 ||
		sol.X[2].Cmp(big.NewRat(1, 1)) != 0 || sol.X[3].Sign() != 0 {
		t.Errorf("x = %v, want (1/25, 0, 1, 0)", sol.X)
	}
	if !checkOptimality(c, a, b, sol) {
		t.Error("duality certificates failed")
	}
}

// TestKleeMintyCube: the 3-dimensional Klee–Minty cube — worst case for
// Dantzig pivoting — still solves exactly (value 125 at x = (0,0,125)).
func TestKleeMintyCube(t *testing.T) {
	c := []*big.Rat{big.NewRat(100, 1), big.NewRat(10, 1), big.NewRat(1, 1)}
	a := [][]*big.Rat{
		{big.NewRat(1, 1), new(big.Rat), new(big.Rat)},
		{big.NewRat(20, 1), big.NewRat(1, 1), new(big.Rat)},
		{big.NewRat(200, 1), big.NewRat(20, 1), big.NewRat(1, 1)},
	}
	b := []*big.Rat{big.NewRat(1, 1), big.NewRat(100, 1), big.NewRat(10000, 1)}

	sol, err := Maximize(c, a, b)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Value.Cmp(big.NewRat(10000, 1)) != 0 {
		t.Errorf("value = %v, want 10000", sol.Value)
	}
	if !checkOptimality(c, a, b, sol) {
		t.Error("duality certificates failed")
	}
}
