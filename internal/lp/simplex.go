// Package lp implements an exact linear-programming solver over rationals
// and, on top of it, a solver for two-player zero-sum matrix games. The
// library uses it as an *independent oracle* for equilibrium values: for
// ν = 1 attacker the Tuple model is a constant-sum game, so every Nash
// equilibrium attains the same minimax value — which the LP computes from
// the payoff matrix alone, with no knowledge of matching structure. The
// experiments cross-check k/|EC| against this oracle.
//
// The solver is a dense tableau simplex with Bland's anti-cycling rule
// (guaranteeing termination) and a single-artificial-variable phase one,
// exact at every pivot — no floating point anywhere. The public surface
// speaks *big.Rat, but the tableau itself runs on the internal/rat
// small-rational kernel: cells are int64 fractions that promote to
// big.Rat only on overflow, and the pivot loops reuse per-tableau scratch
// values instead of allocating per cell (see DESIGN.md "Exact arithmetic
// fast path"). It is meant for the small, structured programs arising
// from games — hundreds of rows and columns — not for industrial LPs.
package lp

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/rat"
)

// Simplex iteration metrics (catalogued in OBSERVABILITY.md): total solves
// and Gauss–Jordan pivots across both phases, plus the per-solve pivot
// distribution. Pivot counts are the honest cost unit of the exact solver
// (each pivot is a full tableau sweep of rational arithmetic), so a p99
// blowup here — not wall time — is the first sign of a degenerate program.
var (
	obsSimplexSolves         = obs.Default().Counter("lp.simplex.solves")
	obsSimplexPivots         = obs.Default().Counter("lp.simplex.pivots")
	obsSimplexPivotsPerSolve = obs.Default().Histogram("lp.simplex.pivots_per_solve")
)

// Status reports the outcome of an LP solve.
type Status int

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota + 1
	// Unbounded: the objective is unbounded above on the feasible region.
	Unbounded
	// Infeasible: the constraints admit no solution.
	Infeasible
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProgram is returned for malformed inputs (dimension mismatches,
// nil coefficients).
var ErrBadProgram = errors.New("lp: malformed linear program")

// Solution is the result of solving a standard-form program.
type Solution struct {
	Status Status
	// Value is the optimal objective (nil unless Status == Optimal).
	Value *big.Rat
	// X is the optimal assignment to the n structural variables.
	X []*big.Rat
	// Dual holds the dual values (shadow prices) of the m constraints:
	// for max{c·x : Ax <= b, x >= 0} these are optimal y >= 0 with
	// A^T y >= c and b·y = c·x (strong duality, asserted in the tests).
	Dual []*big.Rat
}

// Maximize solves
//
//	max  c·x   subject to   A x <= b,   x >= 0
//
// exactly. b may have negative entries; a phase-one start is used when
// needed. Inputs are not mutated.
func Maximize(c []*big.Rat, a [][]*big.Rat, b []*big.Rat) (Solution, error) {
	n := len(c)
	m := len(a)
	if len(b) != m {
		return Solution{}, fmt.Errorf("%w: %d constraint rows but %d bounds", ErrBadProgram, m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return Solution{}, fmt.Errorf("%w: row %d has %d coefficients, want %d", ErrBadProgram, i, len(row), n)
		}
	}
	t, err := newTableau(c, a, b)
	if err != nil {
		return Solution{}, err
	}
	obsSimplexSolves.Inc()
	defer func() { obsSimplexPivotsPerSolve.Observe(float64(t.pivots)) }()
	if t.needsPhaseOne() && t.phaseOne() == Infeasible {
		return Solution{Status: Infeasible}, nil
	}
	if t.optimize() == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	return t.extract(), nil
}

// Minimize solves min c·x s.t. Ax <= b, x >= 0 by negating the objective.
func Minimize(c []*big.Rat, a [][]*big.Rat, b []*big.Rat) (Solution, error) {
	neg := make([]*big.Rat, len(c))
	for j, cj := range c {
		if cj == nil {
			return Solution{}, fmt.Errorf("%w: nil objective coefficient %d", ErrBadProgram, j)
		}
		neg[j] = new(big.Rat).Neg(cj) // lint:invariant(ratraw): each negated coefficient escapes into the program
	}
	sol, err := Maximize(neg, a, b)
	if err != nil || sol.Status != Optimal {
		return sol, err
	}
	sol.Value = new(big.Rat).Neg(sol.Value)
	for i := range sol.Dual {
		sol.Dual[i] = new(big.Rat).Neg(sol.Dual[i]) // lint:invariant(ratraw): each negated dual escapes into the solution
	}
	return sol, nil
}

// tableau is the dense simplex tableau:
//
//	columns: [ x_0..x_{n-1} | s_0..s_{m-1} | a0 | rhs ]
//	rows:    m constraint rows, then the objective row.
//
// Column n+m is the single artificial variable used by phase one; it is
// never allowed to re-enter during phase two (its reduced cost is kept
// positive). basis[i] is the variable index basic in row i.
//
// Cells are internal/rat small rationals: pivots run allocation-free on
// int64 fractions while every entry fits, and any cell that overflows
// promotes to big.Rat transparently without losing exactness.
type tableau struct {
	n, m  int
	cells []rat.Vec
	basis []int
	objC  rat.Vec // original objective, used to rebuild after phase one
	// pivots counts Gauss–Jordan pivots across both phases, feeding the
	// lp.simplex.* metrics.
	pivots int
	// Scratch values reused across every pivot and ratio test so the hot
	// loops perform zero allocations on the small-rational path.
	factor, prod, inv, ratio, best rat.Rat
}

func (t *tableau) width() int { return t.n + t.m + 2 }
func (t *tableau) art() int   { return t.n + t.m }
func (t *tableau) rhs() int   { return t.n + t.m + 1 }

func newTableau(c []*big.Rat, a [][]*big.Rat, b []*big.Rat) (*tableau, error) {
	n, m := len(c), len(a)
	t := &tableau{n: n, m: m, basis: make([]int, m), objC: rat.NewVec(n)}
	for j, cj := range c {
		if cj == nil {
			return nil, fmt.Errorf("%w: nil objective coefficient %d", ErrBadProgram, j)
		}
		t.objC[j].SetBig(cj)
	}
	t.cells = make([]rat.Vec, m+1)
	for i := 0; i <= m; i++ {
		t.cells[i] = rat.NewVec(t.width())
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if a[i][j] == nil {
				return nil, fmt.Errorf("%w: nil coefficient at (%d,%d)", ErrBadProgram, i, j)
			}
			t.cells[i][j].SetBig(a[i][j])
		}
		t.cells[i][n+i].SetInt64(1)      // slack
		t.cells[i][t.art()].SetInt64(-1) // artificial column
		if b[i] == nil {
			return nil, fmt.Errorf("%w: nil bound %d", ErrBadProgram, i)
		}
		t.cells[i][t.rhs()].SetBig(b[i])
		t.basis[i] = n + i
	}
	t.loadObjective()
	return t, nil
}

// loadObjective writes the phase-two objective into the bottom row as
// negated coefficients (negative entry = improving column) and prices out
// the current basis. The artificial column gets a prohibitively positive
// reduced cost so phase two never re-admits it.
func (t *tableau) loadObjective() {
	obj := t.cells[t.m]
	obj.Zero()
	for j := 0; j < t.n; j++ {
		obj[j].Neg(&t.objC[j])
	}
	obj[t.art()].SetInt64(1)
	t.priceOutBasis()
}

// loadPhaseOneObjective sets the objective to "maximize −a0".
func (t *tableau) loadPhaseOneObjective() {
	obj := t.cells[t.m]
	obj.Zero()
	obj[t.art()].SetInt64(1)
	t.priceOutBasis()
}

// priceOutBasis eliminates basic-variable coefficients from the objective
// row so reduced costs are consistent with the current basis.
func (t *tableau) priceOutBasis() {
	obj := t.cells[t.m]
	for i := 0; i < t.m; i++ {
		bj := t.basis[i]
		if obj[bj].Sign() == 0 {
			continue
		}
		t.factor.Set(&obj[bj])
		row := t.cells[i]
		for j := range obj {
			if row[j].Sign() != 0 {
				t.prod.Mul(&t.factor, &row[j])
				obj[j].Sub(&obj[j], &t.prod)
			}
		}
	}
}

// needsPhaseOne reports whether any right-hand side is negative.
func (t *tableau) needsPhaseOne() bool {
	for i := 0; i < t.m; i++ {
		if t.cells[i][t.rhs()].Sign() < 0 {
			return true
		}
	}
	return false
}

// phaseOne makes the basis feasible with the single-artificial-variable
// method: pivot a0 into the most-violated row (making all rhs
// nonnegative), then minimize a0 with Bland's rule. Feasible iff a0
// returns to zero; a0 is then driven out of the basis and banned.
func (t *tableau) phaseOne() Status {
	// Most negative rhs row.
	worst := 0
	for i := 1; i < t.m; i++ {
		if t.cells[i][t.rhs()].Cmp(&t.cells[worst][t.rhs()]) < 0 {
			worst = i
		}
	}
	t.pivot(worst, t.art())
	t.loadPhaseOneObjective()
	if t.optimize() == Unbounded {
		// Cannot happen: the phase-one objective −a0 is bounded by 0.
		return Infeasible
	}
	// a0's optimal value: locate it in the basis.
	for i, bj := range t.basis {
		if bj != t.art() {
			continue
		}
		if t.cells[i][t.rhs()].Sign() != 0 {
			return Infeasible
		}
		// Degenerate: a0 basic at zero. Pivot it out through any nonzero
		// structural/slack coefficient; a fully zero row is redundant and
		// may keep the harmless zero-valued artificial.
		for j := 0; j < t.n+t.m; j++ {
			if t.cells[i][j].Sign() != 0 {
				t.pivot(i, j)
				break
			}
		}
		break
	}
	t.loadObjective()
	return Optimal
}

// optimize runs simplex with Bland's rule from a feasible basis.
func (t *tableau) optimize() Status {
	obj := t.cells[t.m]
	for {
		// Entering variable: lowest index with negative reduced cost. The
		// artificial column may never (re-)enter: in phase one it starts
		// basic and only leaves; in phase two it must stay at zero.
		pc := -1
		for j := 0; j < t.art(); j++ {
			if obj[j].Sign() < 0 {
				pc = j
				break
			}
		}
		if pc == -1 {
			return Optimal
		}
		// Leaving variable: minimum ratio, ties by lowest basis index.
		pr := -1
		for i := 0; i < t.m; i++ {
			if t.cells[i][pc].Sign() <= 0 {
				continue
			}
			t.ratio.Quo(&t.cells[i][t.rhs()], &t.cells[i][pc])
			if pr == -1 {
				pr = i
				t.best.Set(&t.ratio)
				continue
			}
			if c := t.ratio.Cmp(&t.best); c < 0 || (c == 0 && t.basis[i] < t.basis[pr]) {
				pr = i
				t.best.Set(&t.ratio)
			}
		}
		if pr == -1 {
			return Unbounded
		}
		t.pivot(pr, pc)
	}
}

// pivot performs a Gauss–Jordan pivot on (pr, pc) and updates the basis.
// The sweep is in place over the rat cells with reused scratch values —
// no per-cell allocation while the tableau stays in int64 range.
func (t *tableau) pivot(pr, pc int) {
	t.pivots++
	obsSimplexPivots.Inc()
	prow := t.cells[pr]
	t.inv.Inv(&prow[pc])
	for j := range prow {
		if prow[j].Sign() != 0 {
			prow[j].Mul(&prow[j], &t.inv)
		}
	}
	for i := 0; i <= t.m; i++ {
		if i == pr {
			continue
		}
		row := t.cells[i]
		if row[pc].Sign() == 0 {
			continue
		}
		t.factor.Set(&row[pc])
		for j := range row {
			if prow[j].Sign() != 0 {
				t.prod.Mul(&t.factor, &prow[j])
				row[j].Sub(&row[j], &t.prod)
			}
		}
	}
	t.basis[pr] = pc
}

// extract reads the optimal solution, objective value and duals.
func (t *tableau) extract() Solution {
	x := rat.NewVec(t.n)
	for i, bj := range t.basis {
		if bj < t.n {
			x[bj].Set(&t.cells[i][t.rhs()])
		}
	}
	var value, prod rat.Rat
	for j := 0; j < t.n; j++ {
		prod.Mul(&t.objC[j], &x[j])
		value.Add(&value, &prod)
	}
	// Duals: reduced costs of the slack columns at optimum.
	dual := make([]*big.Rat, t.m)
	obj := t.cells[t.m]
	for i := 0; i < t.m; i++ {
		dual[i] = obj[t.n+i].Big()
	}
	return Solution{Status: Optimal, Value: value.Big(), X: x.ToBig(), Dual: dual}
}
