package lp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkGameSolution verifies the exact minimax certificates: both
// strategies are distributions, the row strategy guarantees >= value
// against every column, and the column strategy caps every row at <= value.
func checkGameSolution(t *testing.T, m [][]*big.Rat, gs GameSolution) {
	t.Helper()
	one := big.NewRat(1, 1)
	sum := new(big.Rat)
	for _, p := range gs.Row {
		if p.Sign() < 0 {
			t.Fatalf("negative row probability %v", p)
		}
		sum.Add(sum, p)
	}
	if sum.Cmp(one) != 0 {
		t.Fatalf("row strategy sums to %v", sum)
	}
	sum.SetInt64(0)
	for _, p := range gs.Col {
		if p.Sign() < 0 {
			t.Fatalf("negative col probability %v", p)
		}
		sum.Add(sum, p)
	}
	if sum.Cmp(one) != 0 {
		t.Fatalf("col strategy sums to %v", sum)
	}
	// Row guarantee: for every column j, Σ_i row_i·m[i][j] >= value.
	for j := range m[0] {
		payoff := new(big.Rat)
		for i := range m {
			payoff.Add(payoff, new(big.Rat).Mul(gs.Row[i], m[i][j]))
		}
		if payoff.Cmp(gs.Value) < 0 {
			t.Fatalf("column %d beats the row guarantee: %v < %v", j, payoff, gs.Value)
		}
	}
	// Column cap: for every row i, Σ_j m[i][j]·col_j <= value.
	for i := range m {
		payoff := new(big.Rat)
		for j := range m[i] {
			payoff.Add(payoff, new(big.Rat).Mul(m[i][j], gs.Col[j]))
		}
		if payoff.Cmp(gs.Value) > 0 {
			t.Fatalf("row %d beats the column cap: %v > %v", i, payoff, gs.Value)
		}
	}
}

func matrix(rows ...[]int64) [][]*big.Rat {
	m := make([][]*big.Rat, len(rows))
	for i, row := range rows {
		m[i] = make([]*big.Rat, len(row))
		for j, e := range row {
			m[i][j] = big.NewRat(e, 1)
		}
	}
	return m
}

func TestSolveZeroSumMatchingPennies(t *testing.T) {
	m := matrix([]int64{1, -1}, []int64{-1, 1})
	gs, err := SolveZeroSum(m)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Value.Sign() != 0 {
		t.Errorf("value = %v, want 0", gs.Value)
	}
	half := big.NewRat(1, 2)
	for i := range gs.Row {
		if gs.Row[i].Cmp(half) != 0 || gs.Col[i].Cmp(half) != 0 {
			t.Errorf("strategies not uniform: row=%v col=%v", gs.Row, gs.Col)
		}
	}
	checkGameSolution(t, m, gs)
}

func TestSolveZeroSumRockPaperScissors(t *testing.T) {
	m := matrix(
		[]int64{0, -1, 1},
		[]int64{1, 0, -1},
		[]int64{-1, 1, 0},
	)
	gs, err := SolveZeroSum(m)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Value.Sign() != 0 {
		t.Errorf("value = %v, want 0", gs.Value)
	}
	third := big.NewRat(1, 3)
	for i := 0; i < 3; i++ {
		if gs.Row[i].Cmp(third) != 0 || gs.Col[i].Cmp(third) != 0 {
			t.Errorf("strategies not uniform thirds: row=%v col=%v", gs.Row, gs.Col)
		}
	}
	checkGameSolution(t, m, gs)
}

func TestSolveZeroSumSaddlePoint(t *testing.T) {
	// A dominant pure saddle: value 2 at (row 0, col 1).
	m := matrix(
		[]int64{3, 2},
		[]int64{1, 0},
	)
	gs, err := SolveZeroSum(m)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Value.Cmp(big.NewRat(2, 1)) != 0 {
		t.Errorf("value = %v, want 2", gs.Value)
	}
	checkGameSolution(t, m, gs)
}

func TestSolveZeroSumAsymmetric(t *testing.T) {
	// Classic 2x2 without saddle: value = (ad - bc)/(a+d-b-c).
	// [[4, 1], [2, 3]]: value = (12-2)/(7-3) = 10/4 = 5/2.
	m := matrix([]int64{4, 1}, []int64{2, 3})
	gs, err := SolveZeroSum(m)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Value.Cmp(big.NewRat(5, 2)) != 0 {
		t.Errorf("value = %v, want 5/2", gs.Value)
	}
	checkGameSolution(t, m, gs)
}

func TestSolveZeroSumNonSquare(t *testing.T) {
	// Row player has an extra dominated row; 3x2.
	m := matrix(
		[]int64{4, 1},
		[]int64{2, 3},
		[]int64{0, 0},
	)
	gs, err := SolveZeroSum(m)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Value.Cmp(big.NewRat(5, 2)) != 0 {
		t.Errorf("value = %v, want 5/2", gs.Value)
	}
	if gs.Row[2].Sign() != 0 {
		t.Errorf("dominated row gets probability %v", gs.Row[2])
	}
	checkGameSolution(t, m, gs)
}

func TestSolveZeroSumNegativeMatrix(t *testing.T) {
	// All-negative payoffs exercise the shift.
	m := matrix([]int64{-5, -3}, []int64{-2, -7})
	gs, err := SolveZeroSum(m)
	if err != nil {
		t.Fatal(err)
	}
	checkGameSolution(t, m, gs)
	if gs.Value.Sign() >= 0 {
		t.Errorf("value = %v, want negative", gs.Value)
	}
}

func TestSolveZeroSumValidation(t *testing.T) {
	if _, err := SolveZeroSum(nil); err == nil {
		t.Error("empty matrix must fail")
	}
	if _, err := SolveZeroSum([][]*big.Rat{{}}); err == nil {
		t.Error("empty row must fail")
	}
	if _, err := SolveZeroSum([][]*big.Rat{{big.NewRat(1, 1)}, {}}); err == nil {
		t.Error("ragged matrix must fail")
	}
	if _, err := SolveZeroSum([][]*big.Rat{{nil}}); err == nil {
		t.Error("nil entry must fail")
	}
}

// Property: on random integer matrices the solver always produces exact
// minimax certificates.
func TestPropertyZeroSumCertificates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		m := make([][]*big.Rat, rows)
		for i := range m {
			m[i] = make([]*big.Rat, cols)
			for j := range m[i] {
				m[i][j] = big.NewRat(int64(rng.Intn(11)-5), int64(1+rng.Intn(3)))
			}
		}
		gs, err := SolveZeroSum(m)
		if err != nil {
			return false
		}
		// Inline certificate check (mirrors checkGameSolution).
		one := big.NewRat(1, 1)
		sum := new(big.Rat)
		for _, p := range gs.Row {
			if p.Sign() < 0 {
				return false
			}
			sum.Add(sum, p)
		}
		if sum.Cmp(one) != 0 {
			return false
		}
		sum.SetInt64(0)
		for _, p := range gs.Col {
			if p.Sign() < 0 {
				return false
			}
			sum.Add(sum, p)
		}
		if sum.Cmp(one) != 0 {
			return false
		}
		for j := 0; j < cols; j++ {
			payoff := new(big.Rat)
			for i := 0; i < rows; i++ {
				payoff.Add(payoff, new(big.Rat).Mul(gs.Row[i], m[i][j]))
			}
			if payoff.Cmp(gs.Value) < 0 {
				return false
			}
		}
		for i := 0; i < rows; i++ {
			payoff := new(big.Rat)
			for j := 0; j < cols; j++ {
				payoff.Add(payoff, new(big.Rat).Mul(m[i][j], gs.Col[j]))
			}
			if payoff.Cmp(gs.Value) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
