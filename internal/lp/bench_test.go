package lp

import (
	"math/big"
	"testing"
)

// The simplex micro-benchmarks behind `make bench-kernel` and the CI
// kernel perf gate (cmd/benchkernel → cmd/benchdiff). The pivot loop is
// the honest cost unit of the exact solver — each pivot sweeps the whole
// tableau — so these drive pivot-heavy programs with the rational entry
// shapes the game reductions produce.

// denseProgram builds a deterministic dense LP with fractional
// coefficients: max Σx s.t. a_ij = (1 + ((i·cols+j) mod 7)) / (1 + ((i+j) mod 5)),
// b_i = i+1. Feasible and bounded, and the fractions force nontrivial
// rational pivots.
func denseProgram(rows, cols int) (c []*big.Rat, a [][]*big.Rat, b []*big.Rat) {
	c = make([]*big.Rat, cols)
	for j := range c {
		c[j] = big.NewRat(1, 1)
	}
	a = make([][]*big.Rat, rows)
	for i := range a {
		a[i] = make([]*big.Rat, cols)
		for j := range a[i] {
			a[i][j] = big.NewRat(int64(1+(i*cols+j)%7), int64(1+(i+j)%5))
		}
	}
	b = make([]*big.Rat, rows)
	for i := range b {
		b[i] = big.NewRat(int64(i+1), 1)
	}
	return c, a, b
}

// BenchmarkSimplexPivotDense measures a full phase-two solve of a dense
// 24x24 program — dominated by Gauss–Jordan pivot sweeps.
func BenchmarkSimplexPivotDense(b *testing.B) {
	c, a, bounds := denseProgram(24, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Maximize(c, a, bounds)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkSimplexPhaseOne forces the phase-one start by negating
// half of the bounds, exercising the two-objective pivot path.
func BenchmarkSimplexPhaseOne(b *testing.B) {
	c, a, bounds := denseProgram(18, 18)
	for i := range bounds {
		if i%2 == 1 {
			// x >= small positive amounts: -Σ_j a_ij x_j <= -(i+1)/8.
			for j := range a[i] {
				a[i][j] = new(big.Rat).Neg(a[i][j])
			}
			bounds[i] = big.NewRat(-int64(i+1), 8)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Maximize(c, a, bounds)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkSolveZeroSumOracle runs the end-to-end zero-sum oracle on a
// structured 16x16 payoff matrix — the LP workload the experiments'
// value cross-checks actually issue.
func BenchmarkSolveZeroSumOracle(b *testing.B) {
	n := 16
	m := make([][]*big.Rat, n)
	for i := range m {
		m[i] = make([]*big.Rat, n)
		for j := range m[i] {
			m[i][j] = big.NewRat(int64((i*j)%5-2), int64(1+(i+j)%4))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveZeroSum(m); err != nil {
			b.Fatal(err)
		}
	}
}
