package lp

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

func ri(a int64) *big.Rat { return big.NewRat(a, 1) }

func maxOptimal(t *testing.T, c []*big.Rat, a [][]*big.Rat, b []*big.Rat) Solution {
	t.Helper()
	sol, err := Maximize(c, a, b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func minOptimal(t *testing.T, c []*big.Rat, a [][]*big.Rat, b []*big.Rat) Solution {
	t.Helper()
	sol, err := Minimize(c, a, b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestMaximizeTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36.
	sol := maxOptimal(t,
		[]*big.Rat{ri(3), ri(5)},
		[][]*big.Rat{
			{ri(1), ri(0)},
			{ri(0), ri(2)},
			{ri(3), ri(2)},
		},
		[]*big.Rat{ri(4), ri(12), ri(18)},
	)
	if sol.Value.Cmp(ri(36)) != 0 {
		t.Errorf("value = %v, want 36", sol.Value)
	}
	if sol.X[0].Cmp(ri(2)) != 0 || sol.X[1].Cmp(ri(6)) != 0 {
		t.Errorf("x = %v, want (2,6)", sol.X)
	}
}

func TestMaximizeDegenerateAndFractional(t *testing.T) {
	// max x + y s.t. x + y <= 1, x <= 1/2 -> value 1.
	sol := maxOptimal(t,
		[]*big.Rat{ri(1), ri(1)},
		[][]*big.Rat{
			{ri(1), ri(1)},
			{ri(1), ri(0)},
		},
		[]*big.Rat{ri(1), r(1, 2)},
	)
	if sol.Value.Cmp(ri(1)) != 0 {
		t.Errorf("value = %v, want 1", sol.Value)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	// max x with only x - y <= 1: y free upward drags x unbounded.
	sol, err := Maximize(
		[]*big.Rat{ri(1), ri(0)},
		[][]*big.Rat{{ri(1), ri(-1)}},
		[]*big.Rat{ri(1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestMaximizeInfeasible(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	sol, err := Maximize(
		[]*big.Rat{ri(1)},
		[][]*big.Rat{{ri(1)}},
		[]*big.Rat{ri(-1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestMaximizePhaseOneNeeded(t *testing.T) {
	// max x + y s.t. -x - y <= -2 (i.e. x+y >= 2), x <= 3, y <= 3.
	// Optimum 6 at (3,3); the start basis is infeasible.
	sol := maxOptimal(t,
		[]*big.Rat{ri(1), ri(1)},
		[][]*big.Rat{
			{ri(-1), ri(-1)},
			{ri(1), ri(0)},
			{ri(0), ri(1)},
		},
		[]*big.Rat{ri(-2), ri(3), ri(3)},
	)
	if sol.Value.Cmp(ri(6)) != 0 {
		t.Errorf("value = %v, want 6", sol.Value)
	}
}

func TestMaximizePhaseOneEquality(t *testing.T) {
	// Encode x + y = 1 as two inequalities, maximize 2x + y -> x=1, value 2.
	sol := maxOptimal(t,
		[]*big.Rat{ri(2), ri(1)},
		[][]*big.Rat{
			{ri(1), ri(1)},
			{ri(-1), ri(-1)},
		},
		[]*big.Rat{ri(1), ri(-1)},
	)
	if sol.Value.Cmp(ri(2)) != 0 {
		t.Errorf("value = %v, want 2", sol.Value)
	}
	if sol.X[0].Cmp(ri(1)) != 0 || sol.X[1].Sign() != 0 {
		t.Errorf("x = %v, want (1,0)", sol.X)
	}
}

func TestMinimize(t *testing.T) {
	// min x + y s.t. x + y >= 2 (as -x-y <= -2), x,y >= 0 -> 2.
	sol := minOptimal(t,
		[]*big.Rat{ri(1), ri(1)},
		[][]*big.Rat{{ri(-1), ri(-1)}},
		[]*big.Rat{ri(-2)},
	)
	if sol.Value.Cmp(ri(2)) != 0 {
		t.Errorf("value = %v, want 2", sol.Value)
	}
}

func TestMaximizeValidation(t *testing.T) {
	if _, err := Maximize([]*big.Rat{ri(1)}, [][]*big.Rat{{ri(1), ri(2)}}, []*big.Rat{ri(1)}); !errors.Is(err, ErrBadProgram) {
		t.Error("ragged row must fail")
	}
	if _, err := Maximize([]*big.Rat{ri(1)}, [][]*big.Rat{{ri(1)}}, []*big.Rat{ri(1), ri(2)}); !errors.Is(err, ErrBadProgram) {
		t.Error("bound mismatch must fail")
	}
	if _, err := Maximize([]*big.Rat{nil}, nil, nil); !errors.Is(err, ErrBadProgram) {
		t.Error("nil objective must fail")
	}
	if _, err := Maximize([]*big.Rat{ri(1)}, [][]*big.Rat{{nil}}, []*big.Rat{ri(1)}); !errors.Is(err, ErrBadProgram) {
		t.Error("nil coefficient must fail")
	}
	if _, err := Maximize([]*big.Rat{ri(1)}, [][]*big.Rat{{ri(1)}}, []*big.Rat{nil}); !errors.Is(err, ErrBadProgram) {
		t.Error("nil bound must fail")
	}
}

// checkOptimality verifies an Optimal solution satisfies primal
// feasibility, dual feasibility and strong duality — exact certificates.
func checkOptimality(c []*big.Rat, a [][]*big.Rat, b []*big.Rat, sol Solution) bool {
	// Primal feasibility: Ax <= b, x >= 0.
	for _, xj := range sol.X {
		if xj.Sign() < 0 {
			return false
		}
	}
	for i, row := range a {
		lhs := new(big.Rat)
		for j := range row {
			lhs.Add(lhs, new(big.Rat).Mul(row[j], sol.X[j]))
		}
		if lhs.Cmp(b[i]) > 0 {
			return false
		}
	}
	// Dual feasibility: y >= 0, A^T y >= c.
	for _, yi := range sol.Dual {
		if yi.Sign() < 0 {
			return false
		}
	}
	for j := range c {
		lhs := new(big.Rat)
		for i := range a {
			lhs.Add(lhs, new(big.Rat).Mul(a[i][j], sol.Dual[i]))
		}
		if lhs.Cmp(c[j]) < 0 {
			return false
		}
	}
	// Strong duality: c·x = b·y.
	by := new(big.Rat)
	for i := range b {
		by.Add(by, new(big.Rat).Mul(b[i], sol.Dual[i]))
	}
	return by.Cmp(sol.Value) == 0
}

// Property: on random bounded programs the solver returns certified optima.
func TestPropertyDualityCertificates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		c := make([]*big.Rat, n)
		for j := range c {
			c[j] = big.NewRat(int64(rng.Intn(7)-2), 1)
		}
		a := make([][]*big.Rat, m)
		for i := range a {
			a[i] = make([]*big.Rat, n)
			for j := range a[i] {
				a[i][j] = big.NewRat(int64(rng.Intn(5)), int64(1+rng.Intn(2)))
			}
		}
		b := make([]*big.Rat, m)
		for i := range b {
			b[i] = big.NewRat(int64(rng.Intn(9)), 1)
		}
		// Add a box row to force boundedness.
		box := make([]*big.Rat, n)
		for j := range box {
			box[j] = big.NewRat(1, 1)
		}
		a = append(a, box)
		b = append(b, big.NewRat(20, 1))

		sol, err := Maximize(c, a, b)
		if err != nil {
			return false
		}
		if sol.Status != Optimal {
			// b >= 0 here, so the program is feasible; boxed, so bounded.
			return false
		}
		return checkOptimality(c, a, b, sol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: with negative bounds mixed in, any Optimal answer still carries
// exact certificates, and Infeasible answers have no obvious witness taken
// at face value (spot-checked by trying x = 0).
func TestPropertyPhaseOneCertificates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		c := make([]*big.Rat, n)
		for j := range c {
			c[j] = big.NewRat(int64(rng.Intn(5)-2), 1)
		}
		a := make([][]*big.Rat, m)
		for i := range a {
			a[i] = make([]*big.Rat, n)
			for j := range a[i] {
				a[i][j] = big.NewRat(int64(rng.Intn(7)-3), 1)
			}
		}
		b := make([]*big.Rat, m)
		for i := range b {
			b[i] = big.NewRat(int64(rng.Intn(9)-3), 1)
		}
		box := make([]*big.Rat, n)
		for j := range box {
			box[j] = big.NewRat(1, 1)
		}
		a = append(a, box)
		b = append(b, big.NewRat(10, 1))

		sol, err := Maximize(c, a, b)
		if err != nil {
			return false
		}
		switch sol.Status {
		case Optimal:
			return checkOptimality(c, a, b, sol)
		case Infeasible:
			// x = 0 must genuinely violate some constraint (b_i < 0).
			for i := range b {
				if b[i].Sign() < 0 {
					return true
				}
			}
			return false
		case Unbounded:
			return false // boxed: impossible
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Unbounded.String() != "unbounded" || Infeasible.String() != "infeasible" {
		t.Error("status strings wrong")
	}
	if Status(99).String() != "status(99)" {
		t.Error("unknown status string wrong")
	}
}
