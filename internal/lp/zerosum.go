package lp

import (
	"context"
	"fmt"
	"math/big"
	"strconv"

	"github.com/defender-game/defender/internal/obs"
)

// GameSolution is an exact minimax solution of a two-player zero-sum
// matrix game.
type GameSolution struct {
	// Value is the game value: the payoff the row player (maximizer) can
	// guarantee and the column player (minimizer) can cap.
	Value *big.Rat
	// Row is the row player's optimal mixed strategy.
	Row []*big.Rat
	// Col is the column player's optimal mixed strategy.
	Col []*big.Rat
}

// SolveZeroSum computes the exact value and optimal mixed strategies of
// the zero-sum game with payoff matrix m, where m[i][j] is the payoff to
// the ROW player (the maximizer) when row i meets column j.
//
// The game is reduced to a standard-form LP by the classical positive-
// shift construction: with M' = M + s entrywise positive, the column
// player's program  max Σu  s.t.  M'u <= 1, u >= 0  has optimum 1/V', the
// optimal u rescales to the column strategy, and the LP duals rescale to
// the row strategy. Everything is exact; the minimax guarantees
//
//	min_j (row · M)_j = Value = max_i (M · col)_i
//
// hold as rational identities (asserted by this package's tests).
func SolveZeroSum(m [][]*big.Rat) (GameSolution, error) {
	return SolveZeroSumCtx(context.Background(), m)
}

// SolveZeroSumCtx is SolveZeroSum under ctx's trace: the whole solve —
// reduction, simplex, strategy extraction, including the transposed
// recursion — is timed as one "lp.simplex" span (histogram
// lp.simplex.seconds), so a request waterfall shows how much of a solve
// was exact pivoting. The LP itself is not interruptible; ctx only
// correlates.
func SolveZeroSumCtx(ctx context.Context, m [][]*big.Rat) (GameSolution, error) {
	sp, _ := obs.Default().StartSpanCtx(ctx, "lp.simplex")
	sp.Annotate("rows", strconv.Itoa(len(m)))
	defer sp.End()
	return solveZeroSum(m)
}

func solveZeroSum(m [][]*big.Rat) (GameSolution, error) {
	rows := len(m)
	if rows == 0 {
		return GameSolution{}, fmt.Errorf("%w: empty payoff matrix", ErrBadProgram)
	}
	cols := len(m[0])
	if cols == 0 {
		return GameSolution{}, fmt.Errorf("%w: empty payoff row", ErrBadProgram)
	}
	for i, row := range m {
		if len(row) != cols {
			return GameSolution{}, fmt.Errorf("%w: ragged payoff matrix at row %d", ErrBadProgram, i)
		}
		for j, e := range row {
			if e == nil {
				return GameSolution{}, fmt.Errorf("%w: nil payoff at (%d,%d)", ErrBadProgram, i, j)
			}
		}
	}

	// The reduction below uses the rows as LP constraints, so the tableau
	// is Θ(rows · (rows + cols)). When the row side is the big one (e.g.
	// C(m,k) defender tuples against n vertices), solve the transposed
	// game instead: negating and transposing swaps the players, so
	// value(M) = −value(−Mᵀ) with the strategies exchanged.
	if rows > cols {
		nt := make([][]*big.Rat, cols)
		for j := 0; j < cols; j++ {
			nt[j] = make([]*big.Rat, rows)
			for i := 0; i < rows; i++ {
				nt[j][i] = new(big.Rat).Neg(m[i][j]) // lint:invariant(ratraw): transposed matrix entries each need their own big.Rat
			}
		}
		gs, err := solveZeroSum(nt)
		if err != nil {
			return GameSolution{}, err
		}
		return GameSolution{
			Value: new(big.Rat).Neg(gs.Value),
			Row:   gs.Col,
			Col:   gs.Row,
		}, nil
	}

	// Shift all payoffs to be >= 1 so the game value is strictly positive.
	shift := new(big.Rat).Set(m[0][0])
	for _, row := range m {
		for _, e := range row {
			if e.Cmp(shift) < 0 {
				shift.Set(e)
			}
		}
	}
	one := big.NewRat(1, 1)
	shift.Sub(one, shift) // s = 1 − min entry; M' = M + s >= 1

	a := make([][]*big.Rat, rows)
	for i := range a {
		a[i] = make([]*big.Rat, cols)
		for j := range a[i] {
			a[i][j] = new(big.Rat).Add(m[i][j], shift) // lint:invariant(ratraw): shifted matrix entries each need their own big.Rat
		}
	}
	c := make([]*big.Rat, cols)
	for j := range c {
		c[j] = big.NewRat(1, 1) // lint:invariant(ratraw): objective entries escape into the program; Maximize may mutate them
	}
	b := make([]*big.Rat, rows)
	for i := range b {
		b[i] = big.NewRat(1, 1) // lint:invariant(ratraw): constraint entries escape into the program; Maximize may mutate them
	}

	sol, err := Maximize(c, a, b)
	if err != nil {
		return GameSolution{}, err
	}
	if sol.Status != Optimal || sol.Value.Sign() <= 0 {
		// Cannot happen for a finite positive matrix: the feasible region
		// is a nonempty polytope with positive optimum.
		return GameSolution{}, fmt.Errorf("lp: zero-sum reduction returned %v", sol.Status)
	}
	shiftedValue := new(big.Rat).Inv(sol.Value) // V' = 1/Σu

	col := make([]*big.Rat, cols)
	for j := range col {
		col[j] = new(big.Rat).Mul(sol.X[j], shiftedValue) // lint:invariant(ratraw): each strategy weight escapes into the returned solution
	}
	row := make([]*big.Rat, rows)
	for i := range row {
		row[i] = new(big.Rat).Mul(sol.Dual[i], shiftedValue) // lint:invariant(ratraw): each strategy weight escapes into the returned solution
	}
	value := new(big.Rat).Sub(shiftedValue, shift)
	return GameSolution{Value: value, Row: row, Col: col}, nil
}
