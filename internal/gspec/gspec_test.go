package gspec_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/defender-game/defender/internal/gspec"
)

func TestParseGraphSpecGenerators(t *testing.T) {
	tests := []struct {
		spec  string
		wantN int
		wantM int
	}{
		{"path:5", 5, 4},
		{"cycle:6", 6, 6},
		{"complete:4", 4, 6},
		{"star:5", 5, 4},
		{"kbip:2,3", 5, 6},
		{"grid:2,3", 6, 7},
		{"hypercube:3", 8, 12},
		{"petersen", 10, 15},
		{"tree:9", 9, 8},
		{"tree:9,7", 9, 8},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			g, err := gspec.Parse(tt.spec)
			if err != nil {
				t.Fatalf("gspec.Parse(%q): %v", tt.spec, err)
			}
			if g.NumVertices() != tt.wantN || g.NumEdges() != tt.wantM {
				t.Errorf("got n=%d m=%d, want n=%d m=%d",
					g.NumVertices(), g.NumEdges(), tt.wantN, tt.wantM)
			}
		})
	}
}

func TestParseGraphSpecRandomFamilies(t *testing.T) {
	g, err := gspec.Parse("gnp:10,0.5,3")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Errorf("gnp n = %d", g.NumVertices())
	}
	same, err := gspec.Parse("gnp:10,0.5,3")
	if err != nil {
		t.Fatal(err)
	}
	if same.NumEdges() != g.NumEdges() {
		t.Error("same seed must reproduce")
	}
	b, err := gspec.Parse("bip:4,5,0.4")
	if err != nil {
		t.Fatal(err)
	}
	if b.NumVertices() != 9 || !b.IsBipartite() {
		t.Error("bip spec wrong")
	}
	c, err := gspec.Parse("conn:12,0.2,5")
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsConnected() {
		t.Error("conn spec must be connected")
	}
}

func TestParseGraphSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(path, []byte("n 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := gspec.Parse("@" + path)
	if err != nil {
		t.Fatalf("file spec: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("file graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := gspec.Parse("@" + filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestParseGraphSpecErrors(t *testing.T) {
	bad := []string{
		"", "unknown:3", "path", "path:x", "kbip:2", "grid:3",
		"gnp:10", "gnp:x,0.5", "gnp:10,y", "bip:1,2", "conn:5",
	}
	for _, spec := range bad {
		if _, err := gspec.Parse(spec); err == nil {
			t.Errorf("gspec.Parse(%q) should fail", spec)
		}
	}
}

func TestParseGraphSpecGraph6(t *testing.T) {
	g, err := gspec.Parse("g6:Bw")
	if err != nil {
		t.Fatalf("g6 spec: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("g6:Bw decoded to n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := gspec.Parse("g6:"); err == nil {
		t.Error("empty graph6 must fail")
	}
}

func TestParseGraphSpecBadSeedDefaults(t *testing.T) {
	// A malformed trailing seed falls back to 1 rather than erroring.
	g, err := gspec.Parse("tree:6,notanumber")
	if err != nil {
		t.Fatalf("gspec.Parse: %v", err)
	}
	if g.NumVertices() != 6 {
		t.Errorf("n = %d", g.NumVertices())
	}
}
