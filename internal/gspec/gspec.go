// Package gspec parses the compact graph specifications shared by the
// command-line tools (defender, graphgen):
//
//	path:N  cycle:N  complete:N  star:N  kbip:A,B  grid:R,C  hypercube:D
//	petersen  wheel:N  ladder:N  binarytree:LEVELS  caterpillar:S,LEGS
//	gnp:N,P[,SEED]  bip:A,B,P[,SEED]  tree:N[,SEED]  conn:N,P[,SEED]
//	ba:N,ATTACH[,SEED]  ws:N,K,P[,SEED]  g6:STRING (graph6 encoding)
//	@FILE   edge-list file        -   edge list on stdin
//
// Trailing SEED arguments default to 1 when omitted or malformed, so specs
// remain copy-pasteable across runs.
package gspec

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/defender-game/defender/internal/graph"
)

// Parse resolves a spec into a graph, reading stdin for "-".
func Parse(spec string) (*graph.Graph, error) {
	return ParseFrom(spec, os.Stdin)
}

// ParseFrom is Parse with an explicit reader backing the "-" spec, for
// testability.
func ParseFrom(spec string, stdin io.Reader) (*graph.Graph, error) {
	if spec == "-" {
		return graph.Parse(stdin)
	}
	if rest, ok := strings.CutPrefix(spec, "@"); ok {
		f, err := os.Open(rest)
		if err != nil {
			return nil, fmt.Errorf("gspec: open graph file: %w", err)
		}
		defer f.Close()
		return graph.Parse(f)
	}

	name, argStr, _ := strings.Cut(spec, ":")
	var args []string
	if argStr != "" {
		args = strings.Split(argStr, ",")
	}
	p := &parser{spec: spec, args: args}

	switch name {
	case "path":
		return finish(graph.Path(p.int(0)), p.err)
	case "cycle":
		return finish(graph.Cycle(p.int(0)), p.err)
	case "complete":
		return finish(graph.Complete(p.int(0)), p.err)
	case "star":
		return finish(graph.Star(p.int(0)), p.err)
	case "wheel":
		return finish(graph.Wheel(p.int(0)), p.err)
	case "ladder":
		return finish(graph.Ladder(p.int(0)), p.err)
	case "binarytree":
		return finish(graph.CompleteBinaryTree(p.int(0)), p.err)
	case "kbip":
		return finish(graph.CompleteBipartite(p.int(0), p.int(1)), p.err)
	case "grid":
		return finish(graph.Grid(p.int(0), p.int(1)), p.err)
	case "caterpillar":
		return finish(graph.Caterpillar(p.int(0), p.int(1)), p.err)
	case "hypercube":
		return finish(graph.Hypercube(p.int(0)), p.err)
	case "petersen":
		return graph.Petersen(), nil
	case "gnp":
		return finish(graph.RandomGNP(p.int(0), p.float(1), p.seed(2)), p.err)
	case "bip":
		return finish(graph.RandomBipartite(p.int(0), p.int(1), p.float(2), p.seed(3)), p.err)
	case "tree":
		return finish(graph.RandomTree(p.int(0), p.seed(1)), p.err)
	case "conn":
		return finish(graph.RandomConnected(p.int(0), p.float(1), p.seed(2)), p.err)
	case "ba":
		return finish(graph.BarabasiAlbert(p.int(0), p.int(1), p.seed(2)), p.err)
	case "ws":
		return finish(graph.WattsStrogatz(p.int(0), p.int(1), p.float(2), p.seed(3)), p.err)
	case "g6":
		return graph.ParseGraph6(argStr)
	default:
		return nil, fmt.Errorf("gspec: unknown graph spec %q (try path:N, grid:R,C, ba:N,2, @file, -)", spec)
	}
}

// finish suppresses the partially-built graph when argument parsing
// failed, so callers never see a value alongside an error.
func finish(g *graph.Graph, err error) (*graph.Graph, error) {
	if err != nil {
		return nil, err
	}
	return g, nil
}

// parser accumulates the first argument error while letting generator
// calls read positional arguments fluently. Generators run before the
// error check, but they only ever receive zero values then, and the error
// return suppresses the result.
type parser struct {
	spec string
	args []string
	err  error
}

func (p *parser) raw(i int) (string, bool) {
	if i >= len(p.args) {
		return "", false
	}
	return strings.TrimSpace(p.args[i]), true
}

func (p *parser) int(i int) int {
	s, ok := p.raw(i)
	if !ok {
		p.fail(i, "missing integer argument")
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		p.fail(i, "not an integer")
		return 0
	}
	return v
}

func (p *parser) float(i int) float64 {
	s, ok := p.raw(i)
	if !ok {
		p.fail(i, "missing numeric argument")
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		p.fail(i, "not a number")
		return 0
	}
	return v
}

// seed is lenient: absent or malformed trailing seeds default to 1.
func (p *parser) seed(i int) int64 {
	s, ok := p.raw(i)
	if !ok {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 1
	}
	return v
}

func (p *parser) fail(i int, msg string) {
	if p.err == nil {
		p.err = fmt.Errorf("gspec: spec %q argument %d: %s", p.spec, i+1, msg)
	}
}
