package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// decodeEvents parses the JSONL buffer a test trace writer accumulated.
func decodeEvents(t *testing.T, buf *bytes.Buffer) []SpanEvent {
	t.Helper()
	var events []SpanEvent
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: newSpanID(), Sampled: true}
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v; want %+v, true", got, ok, tc)
	}
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("background context must carry no trace")
	}
	// An invalid TraceContext must not be stored.
	if _, ok := TraceFromContext(ContextWithTrace(context.Background(), TraceContext{})); ok {
		t.Fatal("invalid TraceContext must not round-trip")
	}
}

func TestNewTraceIDShape(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("NewTraceID() = %q is not a valid trace ID", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	cases := []struct {
		id   string
		want bool
	}{
		{strings.Repeat("a", 32), true},
		{strings.Repeat("0", 32), true},
		{strings.Repeat("A", 32), false}, // uppercase rejected
		{strings.Repeat("a", 31), false},
		{strings.Repeat("a", 33), false},
		{strings.Repeat("g", 32), false},
		{"", false},
	}
	for _, c := range cases {
		if got := ValidTraceID(c.id); got != c.want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestSampleTraceDeterministicAndBounded(t *testing.T) {
	id := NewTraceID()
	if !SampleTrace(id, 1.0) {
		t.Error("rate 1.0 must sample everything")
	}
	if SampleTrace(id, 0) {
		t.Error("rate 0 must sample nothing")
	}
	if got1, got2 := SampleTrace(id, 0.5), SampleTrace(id, 0.5); got1 != got2 {
		t.Error("sampling must be deterministic per trace ID")
	}
	// At rate 0.5 a few hundred random IDs must land on both sides.
	sampled := 0
	const n = 400
	for i := 0; i < n; i++ {
		if SampleTrace(NewTraceID(), 0.5) {
			sampled++
		}
	}
	if sampled == 0 || sampled == n {
		t.Errorf("rate 0.5 sampled %d/%d; want a nontrivial split", sampled, n)
	}
}

func TestStartSpanCtxBuildsTraceTree(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	var buf bytes.Buffer
	r.SetTraceWriter(&buf)

	tc := TraceContext{TraceID: NewTraceID(), Sampled: true}
	ctx := ContextWithTrace(context.Background(), tc)

	root, ctx := r.StartSpanCtx(ctx, "test.root")
	child, childCtx := r.StartSpanCtx(ctx, "test.child")
	grand, _ := r.StartSpanCtx(childCtx, "test.grandchild")
	grand.End()
	child.End()
	root.End()

	events := decodeEvents(t, &buf)
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	byName := make(map[string]SpanEvent)
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	re, ce, ge := byName["test.root"], byName["test.child"], byName["test.grandchild"]
	if re.TraceID != tc.TraceID || ce.TraceID != tc.TraceID || ge.TraceID != tc.TraceID {
		t.Fatalf("trace IDs diverged: %q %q %q, want all %q", re.TraceID, ce.TraceID, ge.TraceID, tc.TraceID)
	}
	if re.ParentID != "" {
		t.Errorf("root parent = %q, want empty", re.ParentID)
	}
	if ce.ParentID != re.SpanID {
		t.Errorf("child parent = %q, want root span %q", ce.ParentID, re.SpanID)
	}
	if ge.ParentID != ce.SpanID {
		t.Errorf("grandchild parent = %q, want child span %q", ge.ParentID, ce.SpanID)
	}
	ids := map[string]bool{re.SpanID: true, ce.SpanID: true, ge.SpanID: true}
	if len(ids) != 3 || ids[""] {
		t.Errorf("span IDs not unique and non-empty: %v", ids)
	}
	if root.TraceID() != tc.TraceID {
		t.Errorf("Span.TraceID() = %q, want %q", root.TraceID(), tc.TraceID)
	}
}

func TestStartSpanCtxWithoutTraceActsLikeStartSpan(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	var buf bytes.Buffer
	r.SetTraceWriter(&buf)

	sp, ctx := r.StartSpanCtx(context.Background(), "test.plain")
	if _, ok := TraceFromContext(ctx); ok {
		t.Fatal("ctx must stay trace-free")
	}
	sp.End()
	events := decodeEvents(t, &buf)
	if len(events) != 1 || events[0].TraceID != "" || events[0].SpanID != "" {
		t.Fatalf("free-standing span event = %+v; want no trace fields", events)
	}
	if r.Histogram("test.plain.seconds").Count() != 1 {
		t.Error("free-standing ctx span must still feed its histogram")
	}
}

func TestUnsampledSpanFeedsHistogramNotTrace(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	var buf bytes.Buffer
	r.SetTraceWriter(&buf)

	tc := TraceContext{TraceID: NewTraceID(), Sampled: false}
	sp, _ := r.StartSpanCtx(ContextWithTrace(context.Background(), tc), "test.unsampled")
	sp.End()

	if buf.Len() != 0 {
		t.Fatalf("unsampled span emitted an event: %s", buf.String())
	}
	if r.Histogram("test.unsampled.seconds").Count() != 1 {
		t.Error("unsampled span must still observe its histogram")
	}
	// And no exemplar either: the trace ID leads nowhere in the JSONL.
	for _, b := range r.Histogram("test.unsampled.seconds").Snapshot().Buckets {
		if b.Exemplar != nil {
			t.Errorf("unsampled span left exemplar %+v", b.Exemplar)
		}
	}
}

func TestSampledSpanLeavesExemplar(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	tc := TraceContext{TraceID: NewTraceID(), Sampled: true}
	sp, _ := r.StartSpanCtx(ContextWithTrace(context.Background(), tc), "test.sampled")
	sp.End()

	snap := r.Histogram("test.sampled.seconds").Snapshot()
	if len(snap.Buckets) == 0 {
		t.Fatal("no buckets in snapshot")
	}
	found := false
	for _, b := range snap.Buckets {
		if b.Exemplar != nil {
			found = true
			if b.Exemplar.TraceID != tc.TraceID {
				t.Errorf("exemplar trace = %q, want %q", b.Exemplar.TraceID, tc.TraceID)
			}
			if b.Exemplar.Value < 0 {
				t.Errorf("exemplar value = %v, want >= 0", b.Exemplar.Value)
			}
		}
	}
	if !found {
		t.Fatal("sampled span left no exemplar")
	}
}

func TestStartSpanCtxDisabledRegistryInert(t *testing.T) {
	r := NewRegistry()
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: NewTraceID(), Sampled: true})
	sp, out := r.StartSpanCtx(ctx, "test.disabled")
	if sp.reg != nil {
		t.Error("disabled StartSpanCtx must return the inert zero span")
	}
	if out != ctx {
		t.Error("disabled StartSpanCtx must return ctx unchanged")
	}
	sp.End() // must not panic
}

func TestDetachTrace(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: newSpanID(), Sampled: true}
	ctx, cancel := context.WithCancel(ContextWithTrace(context.Background(), tc))
	cancel()
	detached := DetachTrace(ctx)
	if detached.Err() != nil {
		t.Fatal("detached context must not inherit cancellation")
	}
	got, ok := TraceFromContext(detached)
	if !ok || got != tc {
		t.Fatalf("detached trace = %+v, %v; want %+v", got, ok, tc)
	}
	if DetachTrace(context.Background()).Err() != nil {
		t.Fatal("trace-free detach must return a live background context")
	}
}
