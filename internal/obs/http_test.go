package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestDebugMuxMetricsEndpoint(t *testing.T) {
	r := enabledRegistry()
	r.Counter("demo.hits").Add(7)
	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics body is not a Snapshot: %v", err)
	}
	if snap.Counters["demo.hits"] != 7 {
		t.Errorf("demo.hits = %d, want 7", snap.Counters["demo.hits"])
	}
}

func TestDebugMuxPprofAndExpvar(t *testing.T) {
	r := enabledRegistry()
	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, body %.80s", path, resp.StatusCode, body)
		}
	}
}

func TestStartDebugServer(t *testing.T) {
	r := enabledRegistry()
	r.Counter("served.total").Inc()
	addr, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["served.total"] != 1 {
		t.Errorf("served.total = %d, want 1", snap.Counters["served.total"])
	}
	// /debug/vars must include the published registry.
	resp2, err := http.Get("http://" + addr.String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["defender.metrics"]; !ok {
		t.Error("/debug/vars missing the published defender.metrics entry")
	}
}
