package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Content types of the two text renderings of /metrics.
const (
	// PrometheusContentType labels the classic text format 0.0.4 body
	// (WritePrometheus) — the pre-OpenMetrics format every Prometheus
	// scraper accepts. This rendering never carries exemplars: the
	// 0.0.4 grammar only allows `value [timestamp]` after a sample, so
	// a mid-line `#` would fail the whole scrape.
	PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"
	// OpenMetricsContentType labels the OpenMetrics 1.0 body
	// (WriteOpenMetrics) — the only rendering that carries histogram
	// exemplars, terminated by the mandatory `# EOF`.
	OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format 0.0.4, so the -debug-addr server is scrapeable by
// standard collectors (GET /metrics?format=prometheus, or an Accept
// header asking for text; see NewDebugMux). Without external
// dependencies the encoding is done by hand, which the format is
// explicitly designed to allow.
//
// Dot-separated registry names become underscore-separated Prometheus
// names ("experiments.cells.ok" → "experiments_cells_ok"); metrics are
// emitted in sorted name order so the output is deterministic. Histograms
// become the conventional cumulative triplet: one "_bucket" series per
// geometric bucket upper bound with an `le` label (trailing empty buckets
// elided), a terminal le="+Inf" bucket, and "_sum"/"_count" series. The
// +Inf bucket and _count are both computed from the same bucket sweep, so
// the exposition invariant bucket{le="+Inf"} == count holds even while
// writers race the render.
//
// The body is exemplar-free by design: text format 0.0.4 has no exemplar
// syntax (comments must start a line), so exemplars are exposed only by
// WriteOpenMetrics to clients that negotiated OpenMetrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the same metric families as WritePrometheus
// in the OpenMetrics 1.0 text format: counter samples gain the
// spec-mandated "_total" suffix, histogram buckets holding a sampled
// traced observation carry their `# {trace_id="…"} value timestamp`
// exemplar, and the body ends with the mandatory `# EOF` terminator.
// Serve it only to clients that asked for OpenMetrics (Content-Type
// OpenMetricsContentType); 0.0.4 parsers reject the exemplar suffix.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		sn := pn
		if openMetrics && !strings.HasSuffix(sn, "_total") {
			// OpenMetrics counter samples are "<family>_total"; the TYPE
			// line keeps the family name.
			sn += "_total"
		}
		fmt.Fprintf(bw, "%s %d\n", sn, r.counters[name].Value())
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %s\n", pn, promFloat(r.gauges[name].Value()))
	}

	names = names[:0]
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writePromHistogram(bw, promName(name), r.histograms[name], openMetrics)
	}
	if openMetrics {
		fmt.Fprintf(bw, "# EOF\n")
	}
	return bw.Flush()
}

// writePromHistogram emits one histogram's cumulative series. In the
// OpenMetrics rendering, buckets holding the most recent sampled
// observation of a traced request carry an exemplar suffix —
//
//	name_bucket{le="0.25"} 17 # {trace_id="4bf9..."} 0.21 1754650000.123
//
// — linking the bucket back to a concrete trace in the JSONL stream
// (cmd/tracetool renders it; see TRACING.md). The 0.0.4 rendering omits
// exemplars: its grammar allows nothing after the sample value, so the
// suffix would abort a text-format scrape mid-line.
func writePromHistogram(w io.Writer, pn string, h *Histogram, openMetrics bool) {
	counts := h.bucketCounts()
	last := -1
	for i, c := range counts {
		if c > 0 {
			last = i
		}
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d", pn, promFloat(bucketUpper(i)), cum)
		if openMetrics && counts[i] > 0 {
			if ex := h.exemplars[i].Load(); ex != nil {
				fmt.Fprintf(w, " # {trace_id=%q} %s %s", ex.TraceID, promFloat(ex.Value),
					promFloat(float64(ex.UnixNano)/1e9))
			}
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
	fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", pn, cum)
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z0-9_:], replacing every other rune (the dots of this repo's
// naming scheme, mostly) with '_' and prefixing a '_' when the first rune
// is a digit.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float the way Prometheus parsers expect: shortest
// round-trip form, no localized formatting.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
