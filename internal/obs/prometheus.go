package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format
// this package renders (the pre-OpenMetrics format every Prometheus
// scraper accepts).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, so the -debug-addr server is scrapeable by standard
// collectors (GET /metrics?format=prometheus, or an Accept header asking
// for text; see NewDebugMux). Without external dependencies the encoding
// is done by hand, which the format is explicitly designed to allow.
//
// Dot-separated registry names become underscore-separated Prometheus
// names ("experiments.cells.ok" → "experiments_cells_ok"); metrics are
// emitted in sorted name order so the output is deterministic. Histograms
// become the conventional cumulative triplet: one "_bucket" series per
// geometric bucket upper bound with an `le` label (trailing empty buckets
// elided), a terminal le="+Inf" bucket, and "_sum"/"_count" series. The
// +Inf bucket and _count are both computed from the same bucket sweep, so
// the exposition invariant bucket{le="+Inf"} == count holds even while
// writers race the render.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, r.counters[name].Value())
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %s\n", pn, promFloat(r.gauges[name].Value()))
	}

	names = names[:0]
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writePromHistogram(bw, promName(name), r.histograms[name])
	}
	return bw.Flush()
}

// writePromHistogram emits one histogram's cumulative series. Buckets
// holding the most recent sampled observation of a traced request carry
// an OpenMetrics-style exemplar suffix —
//
//	name_bucket{le="0.25"} 17 # {trace_id="4bf9..."} 0.21 1754650000.123
//
// — linking the bucket back to a concrete trace in the JSONL stream
// (cmd/tracetool renders it; see TRACING.md). Plain Prometheus text-0.0.4
// parsers treat the suffix as a comment; OpenMetrics scrapers ingest it.
func writePromHistogram(w io.Writer, pn string, h *Histogram) {
	counts := h.bucketCounts()
	last := -1
	for i, c := range counts {
		if c > 0 {
			last = i
		}
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d", pn, promFloat(bucketUpper(i)), cum)
		if ex := h.exemplars[i].Load(); ex != nil && counts[i] > 0 {
			fmt.Fprintf(w, " # {trace_id=%q} %s %s", ex.TraceID, promFloat(ex.Value),
				promFloat(float64(ex.UnixNano)/1e9))
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
	fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", pn, cum)
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z0-9_:], replacing every other rune (the dots of this repo's
// naming scheme, mostly) with '_' and prefixing a '_' when the first rune
// is a digit.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float the way Prometheus parsers expect: shortest
// round-trip form, no localized formatting.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
