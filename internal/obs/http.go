package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// NewDebugMux builds the handler behind the -debug-addr flag of
// cmd/experiments and cmd/defender:
//
//	/metrics            the registry snapshot as indented JSON; with
//	                    ?format=prometheus (or an Accept header asking
//	                    for text exposition) the Prometheus 0.0.4
//	                    rendering; with ?format=openmetrics (or an
//	                    OpenMetrics Accept header) the OpenMetrics
//	                    rendering, the only one carrying exemplars
//	/debug/vars         expvar (includes the registry under "defender.metrics")
//	/debug/pprof/...    the standard net/http/pprof profiles
//
// The pprof handlers are wired explicitly rather than via the package's
// import side effect, so nothing is registered on http.DefaultServeMux.
func NewDebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		switch metricsFormat(req) {
		case formatOpenMetrics:
			w.Header().Set("Content-Type", OpenMetricsContentType)
			// lint:invariant(errlost): best-effort debug endpoint; a failed write means the client hung up
			_ = r.WriteOpenMetrics(w)
		case formatPrometheus:
			w.Header().Set("Content-Type", PrometheusContentType)
			// lint:invariant(errlost): best-effort debug endpoint; a failed write means the client hung up
			_ = r.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			// lint:invariant(errlost): best-effort debug endpoint; a failed write means the client hung up
			_ = r.Snapshot().WriteJSON(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// The three /metrics representations metricsFormat chooses between.
const (
	formatJSON = iota
	formatPrometheus
	formatOpenMetrics
)

// metricsFormat decides the /metrics representation. An explicit
// ?format= query wins; otherwise a scraper-style Accept header selects
// the exposition format — OpenMetrics when the client advertises
// application/openmetrics-text (modern Prometheus does, and that is the
// only rendering carrying exemplars), text 0.0.4 for text/plain without
// asking for JSON. Plain curls and browsers (Accept */* or text/html)
// keep getting JSON, so existing tooling is unaffected.
func metricsFormat(req *http.Request) int {
	switch req.URL.Query().Get("format") {
	case "prometheus":
		return formatPrometheus
	case "openmetrics":
		return formatOpenMetrics
	case "json":
		return formatJSON
	}
	accept := req.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/openmetrics-text"):
		return formatOpenMetrics
	case strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json"):
		return formatPrometheus
	}
	return formatJSON
}

// publishOnce guards the process-global expvar name, which panics on
// duplicate registration.
var publishOnce sync.Once

// PublishExpvar exposes r's live snapshot under the expvar name
// "defender.metrics", so /debug/vars carries the same numbers as /metrics.
// Only the first registry published wins; later calls are no-ops (expvar
// names are process-global and permanent).
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("defender.metrics", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// StartDebugServer binds addr (e.g. "localhost:6060"; a ":0" port picks a
// free one), publishes r to expvar, and serves NewDebugMux(r) on a
// background goroutine for the life of the process. It returns the bound
// address, so callers can log the resolved port.
func StartDebugServer(addr string, r *Registry) (net.Addr, error) {
	return StartDebugServerWith(addr, r, nil)
}

// StartDebugServerWith is StartDebugServer with extra handlers mounted on
// the debug mux — how cmd/defenderd adds its /slo status endpoint next to
// /metrics and pprof. Extra patterns must not collide with the mux's own
// (/metrics, /debug/...).
func StartDebugServerWith(addr string, r *Registry, extra map[string]http.Handler) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	PublishExpvar(r)
	mux := NewDebugMux(r)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
