package obs

import (
	"context"
	"encoding/json"
	"io"
	"time"
)

// Span is one timed region of work, produced by Registry.StartSpan (a
// free-standing span) or Registry.StartSpanCtx (a span correlated into a
// request trace) and closed by End. Ending a span does two things: it
// observes the duration into the histogram "<name>.seconds" of the owning
// registry — attaching the trace ID as that bucket's exemplar when the
// span belongs to a sampled trace — and, if a trace writer is installed
// (SetTraceWriter, the -trace-out flag), emits one JSONL SpanEvent.
//
// A Span from a disabled registry is inert: the zero value, whose methods
// do nothing, so `sp := reg.StartSpan(...); defer sp.End()` is safe and
// allocation-free on disabled hot paths.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
	attrs map[string]string

	// Trace correlation (StartSpanCtx); all empty on free-standing spans.
	traceID  string
	spanID   string
	parentID string
	// sampled gates JSONL emission for traced spans. Free-standing spans
	// (no traceID) keep the legacy behavior: always emitted when a writer
	// is installed.
	sampled bool
}

// SpanEvent is the JSONL record written per ended span when tracing is on.
// Offline tooling (cmd/tracetool; OBSERVABILITY.md shows jq recipes)
// aggregates these. TraceID/SpanID/ParentID are set on spans started with
// StartSpanCtx under a valid TraceContext; a span with an empty ParentID
// is the root of its trace.
type SpanEvent struct {
	// Name is the span name, e.g. "core.game_value".
	Name string `json:"name"`
	// TraceID correlates every span of one request (32 hex chars).
	TraceID string `json:"trace_id,omitempty"`
	// SpanID identifies this span within its trace (16 hex chars).
	SpanID string `json:"span_id,omitempty"`
	// ParentID is the SpanID of the enclosing span; empty on the root.
	ParentID string `json:"parent_id,omitempty"`
	// StartUnixNS is the span's start wall-clock time in Unix nanoseconds.
	StartUnixNS int64 `json:"start_unix_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries the optional key/value annotations set via Annotate.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// StartSpan opens a free-standing span named name, uncorrelated to any
// trace. While the registry is disabled this returns the inert zero Span.
func (r *Registry) StartSpan(name string) Span {
	if !r.on() {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now()}
}

// StartSpanCtx opens a span named name under ctx's TraceContext and
// returns, alongside the span, a derived context in which the new span is
// the parent — pass it down so nested StartSpanCtx calls build the trace
// tree. When ctx carries no trace the span behaves exactly like
// StartSpan and ctx is returned unchanged; while the registry is
// disabled both returns are inert.
func (r *Registry) StartSpanCtx(ctx context.Context, name string) (Span, context.Context) {
	if !r.on() {
		return Span{}, ctx
	}
	sp := Span{reg: r, name: name, start: time.Now()}
	tc, ok := TraceFromContext(ctx)
	if !ok || !tc.Valid() {
		return sp, ctx
	}
	sp.traceID = tc.TraceID
	sp.parentID = tc.SpanID
	sp.spanID = newSpanID()
	sp.sampled = tc.Sampled
	child := TraceContext{TraceID: tc.TraceID, SpanID: sp.spanID, Sampled: tc.Sampled}
	return sp, ContextWithTrace(ctx, child)
}

// TraceID returns the span's trace ID ("" on free-standing or inert
// spans).
func (s *Span) TraceID() string { return s.traceID }

// Annotate attaches a key/value pair to the span, visible in the JSONL
// event. No-op on an inert span.
func (s *Span) Annotate(key, value string) {
	if s.reg == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End closes the span: records its duration into the "<name>.seconds"
// histogram (with the trace ID as the bucket exemplar on sampled traced
// spans) and, when a trace writer is set, writes one SpanEvent line. A
// traced-but-unsampled span skips the event, never the histogram.
func (s *Span) End() {
	if s.reg == nil {
		return
	}
	dur := time.Since(s.start)
	h := s.reg.Histogram(s.name + ".seconds")
	if s.traceID != "" && s.sampled {
		h.ObserveWithExemplar(dur.Seconds(), s.traceID)
	} else {
		h.Observe(dur.Seconds())
	}
	if s.traceID == "" || s.sampled {
		s.reg.writeSpanEvent(SpanEvent{
			Name:        s.name,
			TraceID:     s.traceID,
			SpanID:      s.spanID,
			ParentID:    s.parentID,
			StartUnixNS: s.start.UnixNano(),
			DurNS:       dur.Nanoseconds(),
			Attrs:       s.attrs,
		})
	}
	s.reg = nil // make double-End harmless
}

// SetTraceWriter installs w as the JSONL sink for span events; nil
// detaches the current sink. The registry serializes writes, so w needs no
// locking of its own; the caller keeps ownership and closes w after the
// traced workload finishes.
func (r *Registry) SetTraceWriter(w io.Writer) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	r.traceW = w
}

// writeSpanEvent emits one JSONL line if a sink is installed. Encoding
// errors are deliberately dropped: tracing is diagnostics, never a reason
// to fail the traced computation.
func (r *Registry) writeSpanEvent(ev SpanEvent) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.traceW == nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	_, _ = r.traceW.Write(append(data, '\n'))
}
