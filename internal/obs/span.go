package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Span is one timed region of work, produced by Registry.StartSpan and
// closed by End. Ending a span does two things: it observes the duration
// into the histogram "<name>.seconds" of the owning registry, and — if a
// trace writer is installed (SetTraceWriter, the -trace-out flag) — emits
// one JSONL SpanEvent.
//
// A Span from a disabled registry is inert: the zero value, whose methods
// do nothing, so `sp := reg.StartSpan(...); defer sp.End()` is safe and
// allocation-free on disabled hot paths.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
	attrs map[string]string
}

// SpanEvent is the JSONL record written per ended span when tracing is on.
// Offline tooling (OBSERVABILITY.md shows jq recipes) aggregates these.
type SpanEvent struct {
	// Name is the span name, e.g. "core.game_value".
	Name string `json:"name"`
	// StartUnixNS is the span's start wall-clock time in Unix nanoseconds.
	StartUnixNS int64 `json:"start_unix_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries the optional key/value annotations set via Annotate.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// StartSpan opens a span named name. While the registry is disabled this
// returns the inert zero Span.
func (r *Registry) StartSpan(name string) Span {
	if !r.on() {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now()}
}

// Annotate attaches a key/value pair to the span, visible in the JSONL
// event. No-op on an inert span.
func (s *Span) Annotate(key, value string) {
	if s.reg == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End closes the span: records its duration into the "<name>.seconds"
// histogram and, when a trace writer is set, writes one SpanEvent line.
func (s *Span) End() {
	if s.reg == nil {
		return
	}
	dur := time.Since(s.start)
	s.reg.Histogram(s.name + ".seconds").Observe(dur.Seconds())
	s.reg.writeSpanEvent(SpanEvent{
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurNS:       dur.Nanoseconds(),
		Attrs:       s.attrs,
	})
	s.reg = nil // make double-End harmless
}

// SetTraceWriter installs w as the JSONL sink for span events; nil
// detaches the current sink. The registry serializes writes, so w needs no
// locking of its own; the caller keeps ownership and closes w after the
// traced workload finishes.
func (r *Registry) SetTraceWriter(w io.Writer) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	r.traceW = w
}

// writeSpanEvent emits one JSONL line if a sink is installed. Encoding
// errors are deliberately dropped: tracing is diagnostics, never a reason
// to fail the traced computation.
func (r *Registry) writeSpanEvent(ev SpanEvent) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.traceW == nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	_, _ = r.traceW.Write(append(data, '\n'))
}
