package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry. Buckets are geometric: bucket i covers
// (histMin·histGrowth^i, histMin·histGrowth^(i+1)], with bucket 0 also
// absorbing everything <= histMin and the last bucket everything above the
// top bound. With histMin = 1 ns and 1.25 growth, 128 buckets reach ~43
// minutes, and any quantile estimate is within one bucket — a relative
// error bound of 25% — of the true order statistic.
const (
	histMin     = 1e-9
	histGrowth  = 1.25
	histBuckets = 128
)

// logGrowth is precomputed so bucket indexing is one Log and one divide.
var logGrowth = math.Log(histGrowth)

// Histogram is a fixed-memory streaming histogram over non-negative
// float64 observations, safe for concurrent use. It tracks count, sum,
// exact min/max, and geometric buckets from which quantiles are estimated
// (25% relative resolution; exact for the min and max themselves). All
// write methods are no-ops on a nil receiver or while the owning registry
// is disabled.
type Histogram struct {
	reg       *Registry
	count     atomic.Uint64
	sumBits   atomic.Uint64 // float64 bits, CAS-accumulated
	minBits   atomic.Uint64 // float64 bits; +Inf when empty
	maxBits   atomic.Uint64 // float64 bits; -Inf when empty
	buckets   [histBuckets]atomic.Uint64
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket back to a concrete traced request:
// the most recent sampled observation that landed in the bucket, with the
// trace ID to look it up in the trace JSONL (cmd/tracetool) and the
// observation it stands for. Exposed in both the JSON snapshot and the
// `# {trace_id=...}` suffix of the OpenMetrics exposition
// (WriteOpenMetrics; the text 0.0.4 rendering has no exemplar syntax).
type Exemplar struct {
	// TraceID is the trace the observation belongs to.
	TraceID string `json:"trace_id"`
	// Value is the observed value, in the metric's unit.
	Value float64 `json:"value"`
	// UnixNano is when the observation was recorded.
	UnixNano int64 `json:"unix_nano"`
}

func newHistogram(r *Registry) *Histogram {
	h := &Histogram{reg: r}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// reset zeroes the histogram in place (Registry.Reset).
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sumBits.Store(0)
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	for i := range h.buckets {
		h.buckets[i].Store(0)
		h.exemplars[i].Store(nil)
	}
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	idx := int(math.Log(v/histMin) / logGrowth)
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper is the upper bound of bucket i (the quantile representative:
// estimates err high, never low, within one bucket).
func bucketUpper(i int) float64 {
	return histMin * math.Pow(histGrowth, float64(i+1))
}

// Observe records one value. Negative values clamp to zero; NaN is
// dropped.
func (h *Histogram) Observe(v float64) {
	h.observe(v, "")
}

// ObserveWithExemplar records one value and retains traceID as the
// exemplar of the bucket the value lands in (last writer wins), so the
// bucket's tail can be traced back to a concrete request. An empty
// traceID degrades to a plain Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.observe(v, traceID)
}

func (h *Histogram) observe(v float64, traceID string) {
	if h == nil || !h.reg.on() || math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	idx := bucketIndex(v)
	h.buckets[idx].Add(1)
	if traceID != "" {
		h.exemplars[idx].Store(&Exemplar{TraceID: traceID, Value: v, UnixNano: time.Now().UnixNano()})
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) by nearest rank over
// the buckets, clamped into the exact observed [min, max] range — so a
// single-observation histogram reports that observation exactly. Returns 0
// on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	est := bucketUpper(histBuckets - 1)
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			est = bucketUpper(i)
			break
		}
	}
	lo := math.Float64frombits(h.minBits.Load())
	hi := math.Float64frombits(h.maxBits.Load())
	return math.Min(math.Max(est, lo), hi)
}

// bucketCounts copies the raw per-bucket observation counts — the input
// of the cumulative Prometheus _bucket series (prometheus.go). The copy
// is a best-effort cut under concurrent writes, like Snapshot.
func (h *Histogram) bucketCounts() [histBuckets]uint64 {
	var counts [histBuckets]uint64
	if h == nil {
		return counts
	}
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts
}

// BucketSnapshot is one occupied histogram bucket in a snapshot: its
// inclusive upper bound (the geometric boundary, so consumers can
// reconstruct the distribution without reading the Go source), its raw
// (non-cumulative) count, and — when a traced observation landed in it —
// the most recent exemplar.
type BucketSnapshot struct {
	// LE is the bucket's inclusive upper bound, in the metric's unit.
	LE float64 `json:"le"`
	// Count is the number of observations in this bucket (not
	// cumulative).
	Count uint64 `json:"count"`
	// Exemplar is the most recent sampled traced observation in the
	// bucket, if any.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistogramSnapshot is the JSON form of a histogram: count, sum, exact
// min/max, the estimated 50th/95th/99th percentiles in the metric's
// observation unit, and the occupied buckets with their boundaries and
// exemplars.
type HistogramSnapshot struct {
	// Count is the number of observations recorded.
	Count uint64 `json:"count"`
	// Sum is the exact running total of all observed values.
	Sum float64 `json:"sum"`
	// Min and Max are the exact extremes observed (not bucket bounds).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// P50, P95 and P99 are nearest-rank quantile estimates at bucket
	// resolution (~25% relative error), clamped into [Min, Max].
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Buckets lists every occupied bucket in ascending boundary order.
	// Counts are per-bucket, not cumulative; summed they equal Count (up
	// to a best-effort cut under concurrent writers).
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. An empty histogram
// reports all-zero fields.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || h.count.Load() == 0 {
		return HistogramSnapshot{}
	}
	counts := h.bucketCounts()
	var buckets []BucketSnapshot
	for i, c := range counts {
		if c == 0 {
			continue
		}
		buckets = append(buckets, BucketSnapshot{
			LE:       bucketUpper(i),
			Count:    c,
			Exemplar: h.exemplars[i].Load(),
		})
	}
	return HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Min:     math.Float64frombits(h.minBits.Load()),
		Max:     math.Float64frombits(h.maxBits.Load()),
		P50:     h.Quantile(0.50),
		P95:     h.Quantile(0.95),
		P99:     h.Quantile(0.99),
		Buckets: buckets,
	}
}
