package obs

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSampleRe matches one exposition sample line: a valid metric name,
// an optional {le="..."} label set, a float value, and an optional
// OpenMetrics exemplar suffix (# {trace_id="..."} value timestamp).
var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)( # \{trace_id="[0-9a-f]{32}"\} [0-9.eE+-]+ [0-9.eE+-]+)?$`)

// promTypeRe matches a # TYPE comment line.
var promTypeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)

// validatePrometheus line-checks an exposition body (either rendering;
// the OpenMetrics `# EOF` terminator is accepted) and returns the
// parsed samples (name+labels → value).
func validatePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line != "# EOF" && !promTypeRe.MatchString(line) {
				t.Errorf("malformed comment line %q", line)
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		var v float64
		switch m[4] {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		default:
			var err error
			if v, err = strconv.ParseFloat(m[4], 64); err != nil {
				t.Errorf("unparseable value in %q: %v", line, err)
			}
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestWritePrometheusExposition(t *testing.T) {
	r := enabledRegistry()
	r.Counter("demo.cells.ok").Add(7)
	r.Gauge("demo.workers").Set(4)
	h := r.Histogram("demo.cell_seconds")
	for _, v := range []float64{0.001, 0.002, 0.002, 0.5, 3} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	samples := validatePrometheus(t, body)

	if samples["demo_cells_ok"] != 7 {
		t.Errorf("counter sample = %v, want 7", samples["demo_cells_ok"])
	}
	if samples["demo_workers"] != 4 {
		t.Errorf("gauge sample = %v, want 4", samples["demo_workers"])
	}
	if !strings.Contains(body, "# TYPE demo_cell_seconds histogram") {
		t.Error("missing histogram TYPE line")
	}
	if samples["demo_cell_seconds_count"] != 5 {
		t.Errorf("_count = %v, want 5", samples["demo_cell_seconds_count"])
	}
	if got, want := samples["demo_cell_seconds_sum"], 0.001+0.002+0.002+0.5+3; math.Abs(got-want) > 1e-12 {
		t.Errorf("_sum = %v, want %v", got, want)
	}
	if samples[`demo_cell_seconds_bucket{le="+Inf"}`] != samples["demo_cell_seconds_count"] {
		t.Error("+Inf bucket must equal _count")
	}

	// Buckets must be cumulative and monotone in both le and count.
	prevLE := math.Inf(-1)
	prevCum := -1.0
	bucketLines := 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "demo_cell_seconds_bucket{") {
			continue
		}
		bucketLines++
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("bucket line %q did not parse", line)
		}
		le := math.Inf(1)
		if m[3] != "+Inf" {
			var err error
			if le, err = strconv.ParseFloat(m[3], 64); err != nil {
				t.Fatalf("bucket le %q: %v", m[3], err)
			}
		}
		cum, _ := strconv.ParseFloat(m[4], 64)
		if le <= prevLE {
			t.Errorf("bucket le %v not increasing after %v", le, prevLE)
		}
		if cum < prevCum {
			t.Errorf("cumulative count %v decreased after %v", cum, prevCum)
		}
		prevLE, prevCum = le, cum
	}
	if bucketLines < 2 {
		t.Errorf("expected several bucket lines, got %d", bucketLines)
	}
}

// Exemplar exposition is OpenMetrics-only: in WriteOpenMetrics a bucket
// that received a sampled observation carries the trace ID in the
// exemplar syntax, on the bucket line that holds that observation, and
// the body ends with `# EOF` — while the 0.0.4 WritePrometheus body
// stays exemplar-free, because that format's grammar allows nothing
// after a sample value (a mid-line `#` fails the whole scrape).
func TestExpositionExemplars(t *testing.T) {
	r := enabledRegistry()
	r.Counter("traced.requests").Add(2)
	h := r.Histogram("traced.seconds")
	trace := strings.Repeat("ab", 16)
	h.Observe(0.001)
	h.ObserveWithExemplar(0.5, trace)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text004 := sb.String()
	samples := validatePrometheus(t, text004)
	if strings.Contains(text004, "# {trace_id=") {
		t.Error("text 0.0.4 body must not carry exemplars")
	}
	if strings.Contains(text004, "# EOF") {
		t.Error("text 0.0.4 body must not carry the OpenMetrics EOF marker")
	}
	if samples["traced_requests"] != 2 {
		t.Errorf("0.0.4 counter sample traced_requests = %v, want 2", samples["traced_requests"])
	}

	sb.Reset()
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	om := sb.String()
	omSamples := validatePrometheus(t, om)
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OpenMetrics body must end with # EOF")
	}
	if omSamples["traced_requests_total"] != 2 {
		t.Errorf("OpenMetrics counter sample traced_requests_total = %v, want 2 (samples: %v)",
			omSamples["traced_requests_total"], omSamples)
	}
	if !strings.Contains(om, "# TYPE traced_requests counter") {
		t.Error("OpenMetrics TYPE line must keep the family name without _total")
	}

	exemplarLines := 0
	for _, line := range strings.Split(om, "\n") {
		if !strings.Contains(line, "# {trace_id=") {
			continue
		}
		exemplarLines++
		if !strings.HasPrefix(line, "traced_seconds_bucket{") {
			t.Errorf("exemplar on a non-bucket line: %q", line)
		}
		if !strings.Contains(line, `# {trace_id="`+trace+`"} 0.5 `) {
			t.Errorf("exemplar payload wrong: %q", line)
		}
	}
	if exemplarLines != 1 {
		t.Fatalf("got %d exemplar lines, want exactly 1 (only the sampled bucket)", exemplarLines)
	}
}

func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := enabledRegistry()
	r.Histogram("quiet.seconds")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := validatePrometheus(t, sb.String())
	if samples[`quiet_seconds_bucket{le="+Inf"}`] != 0 || samples["quiet_seconds_count"] != 0 {
		t.Errorf("empty histogram must expose zero +Inf bucket and count: %v", samples)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"experiments.cells.ok":   "experiments_cells_ok",
		"simplex.pivots":         "simplex_pivots",
		"already_fine:total":     "already_fine:total",
		"9starts.with.digit":     "_9starts_with_digit",
		"odd-chars per metric/s": "odd_chars_per_metric_s",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// The content-negotiation contract of /metrics: JSON by default (the
// pre-existing behavior, asserted by TestDebugMuxMetricsEndpoint), the
// Prometheus exposition on ?format=prometheus or a scraper Accept header.
func TestDebugMuxMetricsContentNegotiation(t *testing.T) {
	r := enabledRegistry()
	r.Counter("nego.hits").Add(3)
	r.Histogram("nego.seconds").Observe(0.25)
	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()

	get := func(path string, accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	// Explicit format query: Prometheus 0.0.4, line-format valid,
	// exemplar-free.
	body, ct := get("/metrics?format=prometheus", "")
	if ct != PrometheusContentType {
		t.Errorf("prometheus content-type = %q", ct)
	}
	samples := validatePrometheus(t, body)
	if samples["nego_hits"] != 3 {
		t.Errorf("nego_hits = %v, want 3", samples["nego_hits"])
	}
	if strings.Contains(body, "# {trace_id=") || strings.Contains(body, "# EOF") {
		t.Error("0.0.4 rendering must carry neither exemplars nor the EOF marker")
	}

	// OpenMetrics negotiation — explicit query or an OpenMetrics Accept
	// header (what a modern Prometheus scraper sends) — selects the
	// EOF-terminated rendering with _total counter samples: the only
	// body allowed to carry exemplars.
	for _, req := range []struct{ path, accept string }{
		{"/metrics?format=openmetrics", ""},
		{"/metrics", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.9"},
	} {
		body, ct := get(req.path, req.accept)
		if ct != OpenMetricsContentType {
			t.Errorf("GET %s Accept %q: content-type = %q, want OpenMetrics", req.path, req.accept, ct)
		}
		omSamples := validatePrometheus(t, body)
		if omSamples["nego_hits_total"] != 3 {
			t.Errorf("nego_hits_total = %v, want 3", omSamples["nego_hits_total"])
		}
		if !strings.HasSuffix(body, "# EOF\n") {
			t.Errorf("GET %s Accept %q: OpenMetrics body must end with # EOF", req.path, req.accept)
		}
	}

	// A text/plain-only scraper still negotiates the 0.0.4 exposition.
	if body, ct := get("/metrics", "text/plain"); ct != PrometheusContentType ||
		!strings.Contains(body, "# TYPE nego_hits counter") {
		t.Errorf("Accept text/plain: content-type %q did not negotiate text 0.0.4", ct)
	}

	// Default, browser, JSON-preferring and format=json requests stay JSON.
	for _, tc := range []struct{ path, accept string }{
		{"/metrics", ""},
		{"/metrics", "*/*"},
		{"/metrics", "text/html,application/xhtml+xml,*/*;q=0.8"},
		{"/metrics", "application/json, text/plain;q=0.5"},
		{"/metrics?format=json", "text/plain"},
	} {
		body, ct := get(tc.path, tc.accept)
		if ct != "application/json" || !strings.HasPrefix(strings.TrimSpace(body), "{") {
			t.Errorf("GET %s with Accept %q: content-type %q, want unchanged JSON", tc.path, tc.accept, ct)
		}
	}
}
