package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func enabledRegistry() *Registry {
	r := NewRegistry()
	r.SetEnabled(true)
	return r
}

func TestDefaultStartsDisabled(t *testing.T) {
	if Default().Enabled() {
		t.Fatal("the process-wide default registry must start disabled")
	}
}

func TestDisabledRegistryIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Inc()
	c.Add(10)
	g.Set(3.5)
	h.Observe(1)
	if c.Value() != 0 {
		t.Errorf("disabled counter recorded %d", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("disabled gauge recorded %v", g.Value())
	}
	if h.Count() != 0 {
		t.Errorf("disabled histogram recorded %d observations", h.Count())
	}
	if sp := r.StartSpan("s"); sp.reg != nil {
		t.Error("disabled StartSpan must return the inert zero span")
	}
}

func TestEnableActivatesExistingHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("late")
	c.Inc() // dropped: disabled
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("counter = %d, want 1 (pre-enable increment dropped, post-enable kept)", c.Value())
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil metric handles must read as zero")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot must be zero")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := enabledRegistry()
	c := r.Counter("concurrent")
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGetOrCreateReturnsSameHandle(t *testing.T) {
	r := enabledRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter must return a stable handle per name")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge must return a stable handle per name")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram must return a stable handle per name")
	}
}

func TestResetZeroesInPlace(t *testing.T) {
	r := enabledRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(5)
	g.Set(2)
	h.Observe(1)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("Reset must zero all metrics")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Error("handles must stay live across Reset")
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := enabledRegistry()
	r.Counter("a.hits").Add(3)
	r.Gauge("b.level").Set(1.5)
	r.Histogram("c.seconds").Observe(0.25)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]HistogramSnapshot
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Counters["a.hits"] != 3 {
		t.Errorf("counter a.hits = %d, want 3", decoded.Counters["a.hits"])
	}
	if math.Abs(decoded.Gauges["b.level"]-1.5) > 1e-12 {
		t.Errorf("gauge b.level = %v, want 1.5", decoded.Gauges["b.level"])
	}
	hs := decoded.Histograms["c.seconds"]
	if hs.Count != 1 || math.Abs(hs.P50-0.25) > 1e-12 {
		t.Errorf("histogram c.seconds = %+v, want count 1, p50 0.25 (exact via min/max clamp)", hs)
	}
}

func TestSnapshotSerializationIsDeterministic(t *testing.T) {
	r := enabledRegistry()
	for _, name := range []string{"z", "a", "m"} {
		r.Counter(name).Inc()
	}
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("snapshot serialization unstable:\n%s\n%s", first, again)
		}
	}
}

func TestCounterNamesSorted(t *testing.T) {
	r := enabledRegistry()
	r.Counter("b")
	r.Counter("a")
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("CounterNames = %v, want [a b]", names)
	}
}
