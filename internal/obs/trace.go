package obs

// trace.go is the request-scoped side of the tracing layer: a TraceContext
// (trace ID, current span ID, sampling decision) carried through
// context.Context, so every span started with StartSpanCtx on the request
// path shares one trace ID and records its parent — turning the flat span
// JSONL of SetTraceWriter into connected per-request trees that
// cmd/tracetool can reassemble. TRACING.md is the operator's guide.

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"time"
)

// TraceContext is the per-request correlation state: which trace the
// current work belongs to, which span is the current parent, and whether
// the trace was sampled at ingress. The zero value means "no trace".
type TraceContext struct {
	// TraceID identifies the request end-to-end: 32 lowercase hex
	// characters (16 random bytes), minted once at ingress and echoed to
	// the client in the X-Defender-Trace-Id response header.
	TraceID string
	// SpanID is the identifier of the innermost open span — the parent of
	// any span started under this context. Empty at ingress, before the
	// root span opens.
	SpanID string
	// Sampled is the ingress sampling decision. Spans under an unsampled
	// trace still feed their latency histograms but emit no JSONL events,
	// so sampling bounds trace volume without losing metrics.
	Sampled bool
}

// Valid reports whether tc carries a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// traceKey is the private context key of the TraceContext.
type traceKey struct{}

// ContextWithTrace returns a context carrying tc. An invalid tc returns
// ctx unchanged.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFromContext extracts the TraceContext carried by ctx, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceKey{}).(TraceContext)
	return tc, ok
}

// DetachTrace returns a fresh background context carrying only ctx's
// TraceContext — the handoff primitive for work that must outlive the
// request's cancellation (a 202 job conversion) while staying
// correlated to it. Without a trace it returns a plain background
// context.
func DetachTrace(ctx context.Context) context.Context {
	if tc, ok := TraceFromContext(ctx); ok {
		return ContextWithTrace(context.Background(), tc)
	}
	return context.Background()
}

// NewTraceID mints a 32-hex-character random trace ID.
func NewTraceID() string { return randomHex(16) }

// newSpanID mints a 16-hex-character random span ID.
func newSpanID() string { return randomHex(8) }

// randomHex returns 2n lowercase hex characters of cryptographic
// randomness. crypto/rand cannot fail on supported platforms; if it ever
// does, the nanosecond clock keeps IDs unique enough for diagnostics
// (tracing must never fail the traced request).
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := cryptorand.Read(b); err != nil {
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b)
}

// StartTrace mints the TraceContext of a new request at ingress. The
// sampling decision is deterministic in the trace ID (SampleTrace), so
// replaying a trace ID replays its decision.
func StartTrace(sampleRate float64) TraceContext {
	id := NewTraceID()
	return TraceContext{TraceID: id, Sampled: SampleTrace(id, sampleRate)}
}

// ValidTraceID reports whether s is a well-formed trace ID: 32 lowercase
// hex characters. Ingress uses it to decide whether an inbound
// X-Defender-Trace-Id header may be adopted for cross-service
// correlation.
func ValidTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SampleTrace is the deterministic head-based sampler: it hashes the
// trace ID's first 16 hex characters into [0, 1) and compares against
// rate. rate >= 1 samples everything, rate <= 0 nothing, and a given
// trace ID always decides the same way — so multi-process captures of
// one request agree.
func SampleTrace(traceID string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 || len(traceID) < 16 {
		return false
	}
	raw, err := hex.DecodeString(traceID[:16])
	if err != nil {
		return false
	}
	u := binary.BigEndian.Uint64(raw)
	const scale = 1 << 63
	return float64(u>>1)/scale < rate
}
