package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanRecordsHistogramAndEvent(t *testing.T) {
	r := enabledRegistry()
	var buf bytes.Buffer
	r.SetTraceWriter(&buf)

	sp := r.StartSpan("unit.work")
	sp.Annotate("table", "E1")
	sp.End()

	h := r.Histogram("unit.work.seconds")
	if h.Count() != 1 {
		t.Fatalf("span end must observe the duration histogram, count = %d", h.Count())
	}
	var ev SpanEvent
	line := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("trace line is not JSON: %v\n%q", err, line)
	}
	if ev.Name != "unit.work" || ev.DurNS < 0 || ev.StartUnixNS == 0 {
		t.Errorf("bad span event: %+v", ev)
	}
	if ev.Attrs["table"] != "E1" {
		t.Errorf("annotation lost: %+v", ev.Attrs)
	}
}

func TestSpanDoubleEndHarmless(t *testing.T) {
	r := enabledRegistry()
	sp := r.StartSpan("twice")
	sp.End()
	sp.End()
	if got := r.Histogram("twice.seconds").Count(); got != 1 {
		t.Fatalf("double End recorded %d observations, want 1", got)
	}
}

func TestInertSpanMethods(t *testing.T) {
	var sp Span
	sp.Annotate("k", "v")
	sp.End() // must not panic or record
	r := NewRegistry()
	sp2 := r.StartSpan("disabled")
	sp2.End()
	r.SetEnabled(true)
	if got := r.Histogram("disabled.seconds").Count(); got != 0 {
		t.Fatalf("disabled-time span recorded %d observations", got)
	}
}

func TestNoTraceWriterStillObserves(t *testing.T) {
	r := enabledRegistry()
	sp := r.StartSpan("untraced")
	sp.End()
	if got := r.Histogram("untraced.seconds").Count(); got != 1 {
		t.Fatalf("span without trace writer must still feed the histogram, count = %d", got)
	}
}

// Concurrent spans must interleave into whole JSONL lines, never torn ones.
func TestSpanTraceWriterSerialized(t *testing.T) {
	r := enabledRegistry()
	var buf bytes.Buffer
	r.SetTraceWriter(&buf)
	const spans = 200
	var wg sync.WaitGroup
	for i := 0; i < spans; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := r.StartSpan("par")
			sp.End()
		}()
	}
	wg.Wait()
	r.SetTraceWriter(nil)
	lines := 0
	scanner := bufio.NewScanner(&buf)
	for scanner.Scan() {
		var ev SpanEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("torn trace line: %v\n%q", err, scanner.Text())
		}
		lines++
	}
	if lines != spans {
		t.Fatalf("trace has %d lines, want %d", lines, spans)
	}
}
