package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// testSLOMonitor returns a monitor with a controllable clock.
func testSLOMonitor(cfg SLOConfig) (*SLOMonitor, *time.Time) {
	m := NewSLOMonitor(cfg)
	clock := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return clock }
	return m, &clock
}

func TestSLOMonitorIdleWindow(t *testing.T) {
	m, _ := testSLOMonitor(SLOConfig{})
	st := m.Status()
	if st.Requests != 0 || st.Errors != 0 || st.Slow != 0 {
		t.Fatalf("idle window counted outcomes: %+v", st)
	}
	if st.Availability != 1 || st.AvailabilityBurnRate != 0 || st.LatencyBurnRate != 0 {
		t.Fatalf("idle window must report perfect health, got %+v", st)
	}
	if st.WindowSeconds != 60 {
		t.Errorf("default window = %v, want 60s", st.WindowSeconds)
	}
}

func TestSLOMonitorBurnRateMath(t *testing.T) {
	m, _ := testSLOMonitor(SLOConfig{
		AvailabilityObjective: 0.99,
		LatencyObjective:      0.9,
		LatencyThreshold:      100 * time.Millisecond,
	})
	// 100 requests: 2 errors, 20 slow.
	for i := 0; i < 100; i++ {
		ok := i >= 2
		lat := 10 * time.Millisecond
		if i < 20 {
			lat = 200 * time.Millisecond
		}
		m.Record(ok, lat)
	}
	st := m.Status()
	if st.Requests != 100 || st.Errors != 2 || st.Slow != 20 {
		t.Fatalf("counts = %+v, want 100/2/20", st)
	}
	if math.Abs(st.Availability-0.98) > 1e-12 {
		t.Errorf("availability = %v, want 0.98", st.Availability)
	}
	// error rate 0.02 over a 0.01 budget → burn 2.0
	if math.Abs(st.AvailabilityBurnRate-2.0) > 1e-9 {
		t.Errorf("availability burn = %v, want 2.0", st.AvailabilityBurnRate)
	}
	// slow rate 0.20 over a 0.1 budget → burn 2.0
	if math.Abs(st.LatencyBurnRate-2.0) > 1e-9 {
		t.Errorf("latency burn = %v, want 2.0", st.LatencyBurnRate)
	}
}

func TestSLOMonitorWindowExpiry(t *testing.T) {
	m, clock := testSLOMonitor(SLOConfig{Window: 10 * time.Second})
	m.Record(false, time.Second) // an error now
	if st := m.Status(); st.Errors != 1 {
		t.Fatalf("fresh error not counted: %+v", st)
	}
	*clock = clock.Add(5 * time.Second)
	m.Record(true, time.Millisecond)
	if st := m.Status(); st.Requests != 2 || st.Errors != 1 {
		t.Fatalf("mid-window status = %+v, want 2 requests / 1 error", st)
	}
	// Advance past the window: the old error must age out.
	*clock = clock.Add(11 * time.Second)
	st := m.Status()
	if st.Requests != 0 || st.Errors != 0 {
		t.Fatalf("expired outcomes still counted: %+v", st)
	}
	if st.Availability != 1 || st.AvailabilityBurnRate != 0 {
		t.Fatalf("drained window must be healthy again: %+v", st)
	}
}

func TestSLOMonitorRingReuse(t *testing.T) {
	// Wrap the ring several times; stale cells from earlier laps must be
	// overwritten, not double-counted.
	m, clock := testSLOMonitor(SLOConfig{Window: 3 * time.Second})
	for i := 0; i < 20; i++ {
		m.Record(true, time.Millisecond)
		*clock = clock.Add(time.Second)
	}
	st := m.Status()
	// The clock ended at t+20 with records at t..t+19; a 3s window keeps
	// the seconds after t+17, i.e. the records at t+18 and t+19.
	if st.Requests != 2 {
		t.Fatalf("after wrapping, requests = %d, want 2", st.Requests)
	}
}

func TestSLOMonitorDefaultsGuardObjectives(t *testing.T) {
	for _, bad := range []float64{0, 1, 1.5, -0.2} {
		cfg := SLOConfig{AvailabilityObjective: bad, LatencyObjective: bad}.withDefaults()
		if cfg.AvailabilityObjective != 0.999 || cfg.LatencyObjective != 0.99 {
			t.Errorf("objective %v not defaulted: %+v", bad, cfg)
		}
	}
}

func TestSLOMonitorNilSafe(t *testing.T) {
	var m *SLOMonitor
	m.Record(true, time.Second) // must not panic
	if st := m.Status(); st.Availability != 1 {
		t.Fatalf("nil monitor status = %+v, want healthy", st)
	}
}

func TestSLOMonitorConcurrent(t *testing.T) {
	m, _ := testSLOMonitor(SLOConfig{})
	var wg sync.WaitGroup
	const workers, per = 8, 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Record(i%10 != 0, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	st := m.Status()
	if st.Requests != workers*per {
		t.Fatalf("requests = %d, want %d", st.Requests, workers*per)
	}
	if st.Errors != workers*per/10 {
		t.Fatalf("errors = %d, want %d", st.Errors, workers*per/10)
	}
}
