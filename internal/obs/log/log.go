// Package log is the structured request logger of the serving stack: one
// JSON line per event on a caller-owned writer, replacing ad-hoc
// log.Printf so request outcomes are machine-queryable (jq) and every
// line can carry the request's trace ID for correlation with the span
// JSONL (see TRACING.md).
//
// The package is deliberately tiny: no levels, no global state, no
// dependencies beyond the standard library. A nil *Logger discards
// everything, so library code can log unconditionally and let the caller
// decide whether a sink exists.
package log

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Fields carries the per-event key/value payload. Values must be
// JSON-marshalable; keys "ts" and "event" are reserved for the envelope
// and are overwritten if present.
type Fields map[string]any

// Logger writes one JSON object per Log call, newline-terminated, with
// deterministic key order (encoding/json sorts map keys). Safe for
// concurrent use; the Logger serializes writes, so the writer needs no
// locking of its own.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// New returns a Logger writing to w. A nil w (like a nil Logger)
// discards every event.
func New(w io.Writer) *Logger {
	return &Logger{w: w, now: time.Now}
}

// Log emits one event line: the envelope ("ts" in RFC 3339 with
// nanoseconds, UTC; "event") merged with fields. Marshal and write
// errors are deliberately dropped — logging is diagnostics, never a
// reason to fail the logged request.
func (l *Logger) Log(event string, fields Fields) {
	if l == nil || l.w == nil {
		return
	}
	line := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		line[k] = v
	}
	line["ts"] = l.now().UTC().Format(time.RFC3339Nano)
	line["event"] = event
	data, err := json.Marshal(line)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(append(data, '\n'))
}
