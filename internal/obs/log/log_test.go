package log

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogLineShape(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC) }
	l.Log("solve", Fields{"status": 200, "trace_id": "abc", "latency_ms": 1.5})

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if got["event"] != "solve" || got["trace_id"] != "abc" || got["status"] != float64(200) {
		t.Errorf("fields lost: %v", got)
	}
	if got["ts"] != "2026-08-08T12:00:00.123456789Z" {
		t.Errorf("ts = %v, want RFC3339Nano UTC", got["ts"])
	}
	// encoding/json sorts map keys, so output is deterministic.
	var buf2 bytes.Buffer
	l2 := New(&buf2)
	l2.now = l.now
	l2.Log("solve", Fields{"latency_ms": 1.5, "trace_id": "abc", "status": 200})
	if buf2.String() != line {
		t.Errorf("same fields produced different bytes:\n%q\n%q", line, buf2.String())
	}
}

func TestLogReservedKeysWin(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.now = func() time.Time { return time.Unix(0, 0).UTC() }
	l.Log("real", Fields{"event": "spoofed", "ts": "spoofed"})
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["event"] != "real" || got["ts"] == "spoofed" {
		t.Errorf("envelope keys must win over fields: %v", got)
	}
}

func TestLogNilSafety(t *testing.T) {
	var l *Logger
	l.Log("never", Fields{"k": "v"}) // nil logger must not panic
	New(nil).Log("never", nil)       // nil writer must not panic
}

func TestLogUnmarshalableFieldDropped(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Log("bad", Fields{"ch": make(chan int)})
	if buf.Len() != 0 {
		t.Fatalf("marshal failure must drop the line, wrote %q", buf.String())
	}
}

func TestLogConcurrentLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Log("tick", Fields{"worker": w, "i": i})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != workers*per {
		t.Fatalf("got %d lines, want %d", len(lines), workers*per)
	}
	for _, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("interleaved write corrupted a line: %q (%v)", line, err)
		}
	}
}
