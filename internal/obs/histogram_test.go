package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBasicStats(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	for _, v := range []float64{0.001, 0.002, 0.003, 0.004} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-0.010) > 1e-12 {
		t.Errorf("sum = %v, want 0.010", h.Sum())
	}
	s := h.Snapshot()
	if math.Abs(s.Min-0.001) > 1e-12 || math.Abs(s.Max-0.004) > 1e-12 {
		t.Errorf("min/max = %v/%v, want 0.001/0.004 exactly", s.Min, s.Max)
	}
}

// Quantile estimates land within one geometric bucket (±25% relative) of
// the true order statistic, and are clamped into the observed range.
func TestHistogramQuantileAccuracy(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	// 1000 observations: 1ms, 2ms, ..., 1000ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	checks := []struct {
		q, want float64
	}{
		{0.50, 0.500},
		{0.95, 0.950},
		{0.99, 0.990},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want*0.75 || got > c.want*1.30 {
			t.Errorf("q%.0f = %v, want within a bucket of %v", c.q*100, got, c.want)
		}
	}
	if p100 := h.Quantile(1); math.Abs(p100-1.0) > 1e-12 {
		t.Errorf("q100 = %v, want exactly the max 1.0", p100)
	}
}

func TestHistogramSingleObservationIsExact(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	h.Observe(0.123)
	s := h.Snapshot()
	for name, got := range map[string]float64{"p50": s.P50, "p95": s.P95, "p99": s.P99} {
		if math.Abs(got-0.123) > 1e-12 {
			t.Errorf("%s = %v, want 0.123 (min/max clamp makes single values exact)", name, got)
		}
	}
}

func TestHistogramEdgeObservations(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	h.Observe(-5)          // clamps to 0
	h.Observe(math.NaN())  // dropped
	h.Observe(0)           // bucket 0
	h.Observe(1e12)        // beyond the top bucket bound: clamps to last bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3 (NaN dropped)", h.Count())
	}
	s := h.Snapshot()
	if s.Min != 0 {
		t.Errorf("min = %v, want 0", s.Min)
	}
	if math.Abs(s.Max-1e12) > 1 {
		t.Errorf("max = %v, want 1e12 exactly", s.Max)
	}
	if s.P99 > 1e12+1 {
		t.Errorf("p99 = %v must clamp to the observed max", s.P99)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 ||
		s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Buckets != nil {
		t.Fatalf("empty histogram snapshot = %+v, want zero value", s)
	}
}

// Snapshot buckets carry their upper boundary (the JSON /metrics fix:
// counts alone were uninterpretable without the geometric grid), are
// sorted ascending, hold per-bucket counts, and sum to Count.
func TestHistogramSnapshotBuckets(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	obs := []float64{0.001, 0.001, 0.010, 2.5}
	for _, v := range obs {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Buckets) == 0 {
		t.Fatal("snapshot has no buckets")
	}
	var total uint64
	prevLE := 0.0
	for _, b := range s.Buckets {
		if b.LE <= prevLE {
			t.Errorf("bucket boundaries not strictly ascending: %v after %v", b.LE, prevLE)
		}
		if b.Count == 0 {
			t.Errorf("empty bucket le=%v must be omitted", b.LE)
		}
		total += b.Count
		prevLE = b.LE
	}
	if total != uint64(len(obs)) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(obs))
	}
	// Each observation must fall at or below its bucket's boundary.
	for _, v := range obs {
		le := bucketUpper(bucketIndex(v))
		if v > le {
			t.Errorf("observation %v above its bucket bound %v", v, le)
		}
	}
}

func TestHistogramExemplarLatestWins(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	// Two sampled observations in the same bucket: the newest trace wins.
	h.ObserveWithExemplar(0.100, strings.Repeat("a", 32))
	h.ObserveWithExemplar(0.101, strings.Repeat("b", 32))
	// A plain observation elsewhere leaves no exemplar.
	h.Observe(3)
	s := h.Snapshot()
	var seen int
	for _, b := range s.Buckets {
		if b.Exemplar == nil {
			continue
		}
		seen++
		if b.Exemplar.TraceID != strings.Repeat("b", 32) {
			t.Errorf("exemplar trace = %q, want the most recent", b.Exemplar.TraceID)
		}
		if math.Abs(b.Exemplar.Value-0.101) > 1e-12 {
			t.Errorf("exemplar value = %v, want 0.101", b.Exemplar.Value)
		}
		if b.Exemplar.UnixNano == 0 {
			t.Error("exemplar timestamp missing")
		}
	}
	if seen != 1 {
		t.Fatalf("got %d exemplars, want 1", seen)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := 1e-10; v < 1e4; v *= 1.07 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone at v=%v: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucket index out of range at v=%v: %d", v, idx)
		}
		prev = idx
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := enabledRegistry()
	h := r.Histogram("h")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	// Sum of 0..3999 µs = 7.998 s
	want := float64(workers*perWorker-1) * float64(workers*perWorker) / 2 * 1e-6
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %v, want %v (CAS accumulation must not lose updates)", h.Sum(), want)
	}
}
