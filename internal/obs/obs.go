// Package obs is the zero-dependency observability layer of the library:
// counters, gauges, streaming latency histograms, and lightweight span
// tracing, collected in a concurrency-safe Registry and surfaced as a JSON
// snapshot (the `metrics` block of BENCH_experiments.json, the /metrics
// endpoint of -debug-addr) and as JSONL span events (-trace-out).
//
// Design constraints, in order:
//
//  1. Hot paths pay ~nothing when disabled. The process-wide Default
//     registry starts disabled; every record operation is a single atomic
//     load and branch in that state, and StartSpan returns an inert Span
//     without allocating. Instrumented packages therefore create their
//     metric handles unconditionally at init and never guard call sites.
//  2. No dependencies beyond the standard library, matching the rest of
//     the repository.
//  3. Recording never changes observable program output. Metrics are
//     strictly write-only from the instrumented code's point of view; the
//     golden-table suite runs with metrics enabled to prove it.
//
// Metric names are dot-separated lowercase paths ("experiments.cache.
// matching.hits"); every name used by this repository is catalogued with
// its meaning and unit in OBSERVABILITY.md.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named metrics. The zero
// value is not usable; construct with NewRegistry. A Registry records only
// while enabled (SetEnabled); handles obtained while it was disabled start
// recording as soon as it is enabled, so enabling late (e.g. from a CLI
// flag) retroactively activates every instrumented call site.
type Registry struct {
	enabled atomic.Bool

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	traceMu sync.Mutex
	traceW  io.Writer
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// std is the process-wide default registry. It starts disabled, so library
// code instrumented against it is inert until a command (or a test)
// explicitly enables it.
var std = NewRegistry()

// Default returns the process-wide registry that all instrumented packages
// of this repository record into.
func Default() *Registry { return std }

// SetEnabled turns recording on or off. Metric values survive a disable;
// use Reset to zero them.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is currently recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// on is the per-record fast-path check shared by every metric handle.
func (r *Registry) on() bool { return r != nil && r.enabled.Load() }

// Counter returns the counter registered under name, creating it if
// needed. Counters are monotone event totals (unit: events).
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{reg: r}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Gauges hold the latest value of a level (cache entries, workers).
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{reg: r}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed. The unit of the observed values is part of the metric's contract
// and is conventionally suffixed to the name ("…_seconds", "…_rounds").
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = newHistogram(r)
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place. Handles held by
// instrumented packages stay valid; only their values are cleared. Tests
// use this to assert exact deltas.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.n.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// Counter is a monotone event counter, safe for concurrent use. All
// methods are no-ops on a nil receiver or while the owning registry is
// disabled.
type Counter struct {
	reg *Registry
	n   atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) {
	if c == nil || !c.reg.on() {
		return
	}
	c.n.Add(delta)
}

// Value returns the current total. Reads are always allowed, even while
// the registry is disabled.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value-wins level metric, safe for concurrent use. All
// write methods are no-ops on a nil receiver or while the owning registry
// is disabled.
type Gauge struct {
	reg  *Registry
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.reg.on() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge's current value (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Snapshot is a point-in-time copy of every metric in a registry, shaped
// for JSON: the `metrics` block of BENCH_experiments.json and the body of
// the /metrics debug endpoint. Map keys are metric names; encoding/json
// sorts them, so serialized snapshots are deterministically ordered.
type Snapshot struct {
	// Counters holds each counter's cumulative count.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges holds each gauge's current level.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms holds each histogram's distribution summary.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric. It is safe
// to call concurrently with recording; each metric is read atomically, the
// set as a whole is a best-effort cut (no global pause).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// CounterNames returns the sorted names of all registered counters —
// convenience for tests and for the OBSERVABILITY.md catalogue check.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
