package obs

// slo.go is the service-level-objective side of the observability layer:
// a fixed-memory rolling window over request outcomes from which
// availability and latency burn rates are computed. cmd/defenderd wires
// one SLOMonitor into the /readyz readiness probe so load balancers
// drain the instance while the error budget is burning, before the
// broker queue saturates into 429 storms. TRACING.md ("The SLO monitor")
// is the operator's guide.

import (
	"sync"
	"time"
)

// SLOConfig tunes an SLOMonitor. The zero value is usable: every field
// has a production default.
type SLOConfig struct {
	// Window is the rolling evaluation window (default 60s). Outcomes
	// older than Window no longer influence the burn rates, so a drained
	// incident stops tripping /readyz one window later.
	Window time.Duration
	// AvailabilityObjective is the target success ratio (default 0.999):
	// the fraction of requests that must not fail server-side.
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of requests that must
	// complete under LatencyThreshold (default 0.99).
	LatencyObjective float64
	// LatencyThreshold is the latency SLO boundary (default 250ms).
	LatencyThreshold time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	// An objective of exactly 1 would zero the error budget and make
	// every burn rate infinite; out-of-range values fall back to the
	// defaults.
	if c.AvailabilityObjective <= 0 || c.AvailabilityObjective >= 1 {
		c.AvailabilityObjective = 0.999
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective >= 1 {
		c.LatencyObjective = 0.99
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 250 * time.Millisecond
	}
	return c
}

// sloCell is one second of outcome counts in the ring.
type sloCell struct {
	sec    int64 // unix second this cell currently represents
	total  uint64
	errors uint64
	slow   uint64
}

// SLOMonitor accumulates request outcomes into a per-second ring buffer
// spanning the configured window and reports burn rates over it. All
// methods are safe for concurrent use; memory is fixed at one cell per
// window second.
type SLOMonitor struct {
	cfg SLOConfig
	now func() time.Time // injected by tests

	mu    sync.Mutex
	cells []sloCell
}

// NewSLOMonitor returns a monitor for cfg (zero fields defaulted).
func NewSLOMonitor(cfg SLOConfig) *SLOMonitor {
	cfg = cfg.withDefaults()
	return &SLOMonitor{
		cfg:   cfg,
		now:   time.Now,
		cells: make([]sloCell, int(cfg.Window/time.Second)+1),
	}
}

// Record adds one request outcome: whether it succeeded from the SLO's
// point of view (server-side failures and shed load are not-ok; client
// errors are ok) and how long it took.
func (m *SLOMonitor) Record(ok bool, latency time.Duration) {
	if m == nil {
		return
	}
	sec := m.now().Unix()
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.cells[int(sec%int64(len(m.cells)))]
	if c.sec != sec {
		*c = sloCell{sec: sec}
	}
	c.total++
	if !ok {
		c.errors++
	}
	if latency > m.cfg.LatencyThreshold {
		c.slow++
	}
}

// SLOStatus is a point-in-time evaluation of the window, shaped for the
// /readyz response body and the /slo debug endpoint.
type SLOStatus struct {
	// WindowSeconds is the evaluation window length.
	WindowSeconds float64 `json:"window_seconds"`
	// Requests, Errors and Slow count the window's outcomes. Slow is the
	// number of requests over the latency threshold.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Slow     uint64 `json:"slow"`
	// Availability is the window's success ratio (1 when idle).
	Availability float64 `json:"availability"`
	// AvailabilityBurnRate is the error rate divided by the availability
	// error budget (1 - objective). 1.0 means the budget is being spent
	// exactly as fast as it accrues; sustained values above it exhaust
	// the budget ahead of schedule.
	AvailabilityBurnRate float64 `json:"availability_burn_rate"`
	// LatencyBurnRate is the same ratio for the latency objective: the
	// over-threshold rate divided by (1 - latency objective).
	LatencyBurnRate float64 `json:"latency_burn_rate"`
}

// Status evaluates the current window. An idle window reports perfect
// availability and zero burn.
func (m *SLOMonitor) Status() SLOStatus {
	st := SLOStatus{Availability: 1}
	if m == nil {
		return st
	}
	st.WindowSeconds = m.cfg.Window.Seconds()
	cutoff := m.now().Unix() - int64(m.cfg.Window/time.Second)
	m.mu.Lock()
	for i := range m.cells {
		c := &m.cells[i]
		if c.sec <= cutoff || c.total == 0 {
			continue
		}
		st.Requests += c.total
		st.Errors += c.errors
		st.Slow += c.slow
	}
	m.mu.Unlock()
	if st.Requests == 0 {
		return st
	}
	total := float64(st.Requests)
	st.Availability = 1 - float64(st.Errors)/total
	st.AvailabilityBurnRate = (float64(st.Errors) / total) / (1 - m.cfg.AvailabilityObjective)
	st.LatencyBurnRate = (float64(st.Slow) / total) / (1 - m.cfg.LatencyObjective)
	return st
}
