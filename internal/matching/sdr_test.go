package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
)

// checkSDR validates that rep is a genuine system of distinct
// representatives for s with the given restriction.
func checkSDR(t *testing.T, g *graph.Graph, s []int, allowed func(int) bool, rep map[int]int) {
	t.Helper()
	if len(rep) != len(graph.NormalizeSet(s)) {
		t.Fatalf("rep covers %d of %d set members", len(rep), len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		r, ok := rep[v]
		if !ok {
			t.Fatalf("no representative for %d", v)
		}
		if !g.HasEdge(v, r) {
			t.Fatalf("representative %d of %d is not a neighbor", r, v)
		}
		if allowed != nil && !allowed(r) {
			t.Fatalf("representative %d of %d violates restriction", r, v)
		}
		if seen[r] {
			t.Fatalf("representative %d reused", r)
		}
		seen[r] = true
	}
}

// checkViolator validates the Hall-violator certificate: the witnesses'
// permitted neighborhood is strictly smaller than the witness set.
func checkViolator(t *testing.T, g *graph.Graph, violator []int, allowed func(int) bool) {
	t.Helper()
	if len(violator) == 0 {
		t.Fatal("empty violator")
	}
	nbrs := make(map[int]bool)
	for _, v := range violator {
		g.EachNeighbor(v, func(u int) {
			if allowed == nil || allowed(u) {
				nbrs[u] = true
			}
		})
	}
	if len(nbrs) >= len(violator) {
		t.Fatalf("violator %v has %d permitted neighbors — not a violation", violator, len(nbrs))
	}
}

func TestRepresentativesOnStar(t *testing.T) {
	g := graph.Star(5)
	// Leaves need distinct representatives but share the single hub.
	rep, violator := Representatives(g, []int{1, 2}, nil)
	if rep != nil {
		t.Fatal("two leaves cannot have distinct representatives")
	}
	checkViolator(t, g, violator, nil)

	// A single leaf is fine.
	rep, violator = Representatives(g, []int{3}, nil)
	if violator != nil {
		t.Fatalf("unexpected violator %v", violator)
	}
	checkSDR(t, g, []int{3}, nil, rep)
}

func TestRepresentativesWithRestriction(t *testing.T) {
	g := graph.Cycle(6)
	is := map[int]bool{1: true, 3: true, 5: true}
	allowed := func(v int) bool { return is[v] }
	vc := []int{0, 2, 4}
	rep, violator := Representatives(g, vc, allowed)
	if violator != nil {
		t.Fatalf("C6 with alternating partition must have an SDR, violator %v", violator)
	}
	checkSDR(t, g, vc, allowed, rep)
}

func TestRepresentativesTriangleLiteralVsRestricted(t *testing.T) {
	g := graph.Complete(3)
	// Literal definition: {b, c} can use each other and a — SDR exists.
	rep, violator := Representatives(g, []int{1, 2}, nil)
	if violator != nil {
		t.Fatalf("literal SDR should exist on a triangle, violator %v", violator)
	}
	checkSDR(t, g, []int{1, 2}, nil, rep)
	// Restricted to IS = {0}: two cover vertices cannot share vertex 0.
	allowed := func(v int) bool { return v == 0 }
	rep, violator = Representatives(g, []int{1, 2}, allowed)
	if rep != nil {
		t.Fatal("restricted SDR must not exist")
	}
	checkViolator(t, g, violator, allowed)
}

func TestRepresentativesEmptySet(t *testing.T) {
	g := graph.Path(3)
	rep, violator := Representatives(g, nil, nil)
	if violator != nil || len(rep) != 0 {
		t.Errorf("empty set: rep=%v violator=%v", rep, violator)
	}
}

func TestRepresentativesDeduplicatesInput(t *testing.T) {
	g := graph.Path(4)
	rep, violator := Representatives(g, []int{1, 1, 2, 2}, nil)
	if violator != nil {
		t.Fatalf("violator %v", violator)
	}
	checkSDR(t, g, []int{1, 2}, nil, rep)
}

// Property: Representatives either returns a valid SDR or a valid Hall
// violator — never both, never neither.
func TestPropertyRepresentativesSoundAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := graph.RandomGNP(n, 0.35, seed)
		var s []int
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				s = append(s, v)
			}
		}
		rep, violator := Representatives(g, s, nil)
		if (rep == nil) == (violator == nil) && len(s) > 0 {
			return false
		}
		if rep != nil {
			seen := make(map[int]bool)
			for _, v := range graph.NormalizeSet(s) {
				r, ok := rep[v]
				if !ok || !g.HasEdge(v, r) || seen[r] {
					return false
				}
				seen[r] = true
			}
			return true
		}
		// Check the violator certificate.
		nbrs := make(map[int]bool)
		for _, v := range violator {
			g.EachNeighbor(v, func(u int) { nbrs[u] = true })
		}
		return len(nbrs) < len(violator)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
