package matching

import (
	"context"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
)

// Blossom iteration counters (catalogued in OBSERVABILITY.md): one search
// per alternating-tree growth from a free vertex, one augmentation per
// search that finds an augmenting path, one contraction per odd cycle
// collapsed. The searches:augmentations ratio exposes how much work the
// greedy initialization already did.
var (
	obsBlossomSearches      = obs.Default().Counter("matching.blossom.searches")
	obsBlossomAugmentations = obs.Default().Counter("matching.blossom.augmentations")
	obsBlossomContractions  = obs.Default().Counter("matching.blossom.contractions")
)

// Maximum computes a maximum matching of an arbitrary (not necessarily
// bipartite) graph using Edmonds' blossom algorithm, in O(n^3) time.
//
// The paper's Corollary 3.2 reduces pure-equilibrium existence to computing
// a minimum edge cover, which by Gallai's identity requires a maximum
// matching of a general graph — hence the blossom machinery rather than
// only Hopcroft–Karp. Allocates the blossom state (several O(n) arrays)
// and the mate array it returns; for million-vertex bipartite instances
// use HopcroftKarpCSR instead (see SCALING.md).
func Maximum(g *graph.Graph) []int {
	return MaximumCtx(context.Background(), g)
}

// MaximumCtx is Maximum under ctx's trace: the blossom run is timed as
// the span "matching.maximum" (histogram matching.maximum.seconds), so
// solve waterfalls expose the O(n^3) general-matching leg separately
// from the rest of the cover pipeline. The algorithm itself is not
// interruptible; ctx only correlates.
func MaximumCtx(ctx context.Context, g *graph.Graph) []int {
	sp, _ := obs.Default().StartSpanCtx(ctx, "matching.maximum")
	defer sp.End()
	b := newBlossomState(g)
	// Greedy initialization cuts the number of augmentation phases roughly
	// in half on random graphs without affecting correctness.
	b.mate = Greedy(g)
	for v := 0; v < b.n; v++ {
		if b.mate[v] == Unmatched {
			obsBlossomSearches.Inc()
			if end := b.findAugmentingPath(v); end != Unmatched {
				obsBlossomAugmentations.Inc()
				b.augment(end)
			}
		}
	}
	return b.mate
}

// blossomState carries the per-phase scratch arrays of the algorithm.
type blossomState struct {
	g    *graph.Graph
	n    int
	mate []int
	// p is the alternating-tree parent pointer of each vertex (over
	// non-matching edges); base maps each vertex to the base of the
	// blossom currently containing it.
	p    []int
	base []int
	used []bool
	q    []int
}

func newBlossomState(g *graph.Graph) *blossomState {
	n := g.NumVertices()
	return &blossomState{
		g:    g,
		n:    n,
		mate: NewMateArray(n),
		p:    make([]int, n),
		base: make([]int, n),
		used: make([]bool, n),
		q:    make([]int, 0, n),
	}
}

// findAugmentingPath grows an alternating tree rooted at the free vertex
// root, contracting blossoms as they appear. It returns the free vertex at
// the far end of an augmenting path, or Unmatched if none exists.
func (b *blossomState) findAugmentingPath(root int) int {
	for i := 0; i < b.n; i++ {
		b.p[i] = Unmatched
		b.base[i] = i
		b.used[i] = false
	}
	b.used[root] = true
	b.q = append(b.q[:0], root)

	for head := 0; head < len(b.q); head++ {
		v := b.q[head]
		for _, to := range b.g.Neighbors(v) {
			if b.base[v] == b.base[to] || b.mate[v] == to {
				continue
			}
			if to == root || (b.mate[to] != Unmatched && b.p[b.mate[to]] != Unmatched) {
				// v and to are both even-level vertices of the tree: the
				// edge closes an odd cycle — contract the blossom.
				b.contractBlossom(v, to)
			} else if b.p[to] == Unmatched {
				b.p[to] = v
				if b.mate[to] == Unmatched {
					return to // augmenting path root..v-to found
				}
				next := b.mate[to]
				b.used[next] = true
				b.q = append(b.q, next)
			}
		}
	}
	return Unmatched
}

// contractBlossom contracts the odd cycle closed by the edge (v, to):
// every vertex on the two tree paths down to the lowest common ancestor is
// re-based onto that ancestor and re-enqueued as an even vertex.
func (b *blossomState) contractBlossom(v, to int) {
	obsBlossomContractions.Inc()
	curBase := b.lowestCommonAncestor(v, to)
	inBlossom := make([]bool, b.n)
	b.markPath(v, curBase, to, inBlossom)
	b.markPath(to, curBase, v, inBlossom)
	for i := 0; i < b.n; i++ {
		if inBlossom[b.base[i]] {
			b.base[i] = curBase
			if !b.used[i] {
				b.used[i] = true
				b.q = append(b.q, i)
			}
		}
	}
}

// lowestCommonAncestor walks to the root from a (through blossom bases and
// matched edges), marking the bases it visits, then walks from b2 until it
// hits a marked base.
func (b *blossomState) lowestCommonAncestor(a, b2 int) int {
	visited := make([]bool, b.n)
	for {
		a = b.base[a]
		visited[a] = true
		if b.mate[a] == Unmatched {
			break
		}
		a = b.p[b.mate[a]]
	}
	for {
		b2 = b.base[b2]
		if visited[b2] {
			return b2
		}
		b2 = b.p[b.mate[b2]]
	}
}

// markPath records parent pointers along the tree path from v down to the
// blossom base `stop`, so that a later augmentation can thread through the
// contracted blossom, and marks the traversed bases as blossom members.
func (b *blossomState) markPath(v, stop, child int, inBlossom []bool) {
	for b.base[v] != stop {
		inBlossom[b.base[v]] = true
		inBlossom[b.base[b.mate[v]]] = true
		b.p[v] = child
		child = b.mate[v]
		v = b.p[b.mate[v]]
	}
}

// augment flips matched and unmatched edges along the alternating path that
// ends at the free vertex end (following parent pointers back to the root).
func (b *blossomState) augment(end int) {
	v := end
	for v != Unmatched {
		pv := b.p[v]
		ppv := b.mate[pv]
		b.mate[v] = pv
		b.mate[pv] = v
		v = ppv
	}
}
