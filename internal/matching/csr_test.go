package matching

import (
	"errors"
	"fmt"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// goldenBipartite is the golden corpus of bipartite graphs the CSR and
// dense Hopcroft–Karp implementations are differentially tested on: named
// families with known matching numbers plus seeded random families.
func goldenBipartite() map[string]*graph.Graph {
	corpus := map[string]*graph.Graph{
		"empty":      graph.New(0),
		"isolated4":  graph.New(4),
		"single":     graph.Path(2),
		"path7":      graph.Path(7),
		"path8":      graph.Path(8),
		"cycle10":    graph.Cycle(10),
		"star9":      graph.Star(9),
		"k33":        graph.CompleteBipartite(3, 3),
		"k27":        graph.CompleteBipartite(2, 7),
		"k55":        graph.CompleteBipartite(5, 5),
		"grid45":     graph.Grid(4, 5),
		"hypercube4": graph.Hypercube(4),
		"heawood":    graph.Heawood(),
		"matching12": graph.PerfectMatchingGraph(12),
		"tree3":      graph.CompleteBinaryTree(3),
		"cater":      graph.Caterpillar(6, 2),
	}
	gen := graph.NewSeededGenerator(13)
	for i := 0; i < 6; i++ {
		corpus[fmt.Sprintf("bip%d", i)] = gen.Bipartite(8+3*i, 8+2*i, 0.25)
	}
	for i := 0; i < 4; i++ {
		corpus[fmt.Sprintf("tree%d", i)] = gen.Tree(20 + 10*i)
	}
	corpus["baBip"] = gen.BarabasiAlbertBipartiteCSR(200, 3).ToGraph()
	return corpus
}

// TestHopcroftKarpCSRMatchesDense is the differential acceptance test: on
// every golden graph the CSR and dense Hopcroft–Karp return matchings of
// equal cardinality, and the CSR matching is a valid matching of the graph.
func TestHopcroftKarpCSRMatchesDense(t *testing.T) {
	for name, g := range goldenBipartite() {
		denseMate, err := MaximumBipartite(g)
		if err != nil {
			t.Fatalf("%s: dense: %v", name, err)
		}
		c := graph.FromGraph(g)
		mate, side, err := MaximumBipartiteCSR(c)
		if err != nil {
			t.Fatalf("%s: csr: %v", name, err)
		}
		if got, want := SizeCSR(mate), Size(denseMate); got != want {
			t.Errorf("%s: CSR matching size %d, dense %d", name, got, want)
		}
		for v := range mate {
			u := mate[v]
			if u == Unmatched {
				continue
			}
			if int(mate[u]) != v {
				t.Fatalf("%s: mate not symmetric at %d<->%d", name, v, u)
			}
			if !g.HasEdge(v, int(u)) {
				t.Fatalf("%s: pair (%d,%d) is not an edge", name, v, u)
			}
		}
		// König duality on the sparse path: |cover| = |matching| and the
		// cover covers every edge.
		cover := KonigVertexCoverCSR(c, side, mate)
		if len(cover) != SizeCSR(mate) {
			t.Errorf("%s: König cover size %d != matching size %d", name, len(cover), SizeCSR(mate))
		}
		in := make(map[int]bool, len(cover))
		for _, v := range cover {
			in[int(v)] = true
		}
		for _, e := range g.Edges() {
			if !in[e.U] && !in[e.V] {
				t.Fatalf("%s: edge %v uncovered by König cover", name, e)
			}
		}
	}
}

func TestHopcroftKarpCSRValidation(t *testing.T) {
	c := graph.FromGraph(graph.Cycle(5))
	if _, err := HopcroftKarpCSR(c, []int8{0, 1, 0, 1, 0}); !errors.Is(err, graph.ErrNotBipartite) {
		t.Errorf("odd cycle accepted: %v", err)
	}
	p := graph.FromGraph(graph.Path(4))
	if _, err := HopcroftKarpCSR(p, []int8{0, 1}); err == nil {
		t.Error("short side array accepted")
	}
	if _, err := HopcroftKarpCSR(p, []int8{0, 1, 2, 1}); err == nil {
		t.Error("side value 2 accepted")
	}
	mate, err := HopcroftKarpCSR(p, []int8{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if SizeCSR(mate) != 2 {
		t.Errorf("P4 matching size %d, want 2", SizeCSR(mate))
	}
}

// TestHopcroftKarpCSRSubgraph checks the SDR entry point: excluded
// vertices (side -1) stay unmatched, same-side edges are ignored rather
// than rejected, and the cross-edge subgraph is matched maximally.
func TestHopcroftKarpCSRSubgraph(t *testing.T) {
	// K4 with side = {0, 1, 1, -1}: cross edges are (0,1) and (0,2); the
	// same-side edge (1,2) and everything touching 3 must be ignored.
	c := graph.FromGraph(graph.Complete(4))
	mate := HopcroftKarpCSRSubgraph(c, []int8{0, 1, 1, -1})
	if SizeCSR(mate) != 1 {
		t.Fatalf("matching size %d, want 1", SizeCSR(mate))
	}
	if mate[3] != Unmatched {
		t.Fatal("excluded vertex matched")
	}
	if mate[0] != 1 && mate[0] != 2 {
		t.Fatalf("vertex 0 matched to %d, want 1 or 2", mate[0])
	}
	// A perfect SDR case: C6 with alternating sides saturates side 0.
	c6 := graph.FromGraph(graph.Cycle(6))
	mate = HopcroftKarpCSRSubgraph(c6, []int8{0, 1, 0, 1, 0, 1})
	if SizeCSR(mate) != 3 {
		t.Fatalf("C6 matching size %d, want 3", SizeCSR(mate))
	}
}

// TestHopcroftKarpCSRLarge exercises the iterative DFS and bitset frontier
// machinery on an instance deep enough to need several phases.
func TestHopcroftKarpCSRLarge(t *testing.T) {
	c := graph.NewSeededGenerator(17).BarabasiAlbertBipartiteCSR(20000, 3)
	mate, side, err := MaximumBipartiteCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	size := SizeCSR(mate)
	if size == 0 {
		t.Fatal("empty matching on a connected graph")
	}
	cover := KonigVertexCoverCSR(c, side, mate)
	if len(cover) != size {
		t.Fatalf("König duality violated: cover %d, matching %d", len(cover), size)
	}
	covered := graph.NewBitset(c.NumVertices())
	for _, v := range cover {
		covered.Set(v)
	}
	c.EachEdge(func(u, v int32) {
		if !covered.Has(u) && !covered.Has(v) {
			t.Fatalf("edge (%d,%d) uncovered", u, v)
		}
	})
}
