package matching

import (
	"sort"

	"github.com/defender-game/defender/internal/graph"
)

// Representatives finds a system of distinct representatives (SDR) for the
// vertex set s: an injective assignment rep[v] for each v in s, where rep[v]
// is a neighbor of v in g satisfying the allowed predicate. By Hall's
// theorem an SDR exists iff |Neigh(X) ∩ allowed| >= |X| for every X ⊆ s.
//
// On success it returns (rep, nil). On failure it returns (nil, violator)
// where violator ⊆ s is a concrete Hall violator: a set X with
// |Neigh(X) ∩ allowed| < |X|, extracted from the failed alternating search.
//
// This is the decision procedure for the paper's expander conditions
// (Corollary 4.11): g is a "VC-expander" in the sense required by the
// matching-equilibrium constructions exactly when VC has an SDR into IS.
// Passing allowed == nil permits every vertex of g as a representative,
// which decides the literal S-expander definition of the paper's Section 2.
//
// The implementation is Kuhn's augmenting-path algorithm, O(|s| * m); it
// allocates the assignment map and O(n) search scratch. Note
// that a vertex of s may itself serve as a representative of another vertex
// of s (the left and right sides of the auxiliary bipartite structure are
// disjoint copies), which is exactly what the literal definition asks for.
func Representatives(g *graph.Graph, s []int, allowed func(int) bool) (map[int]int, []int) {
	s = graph.NormalizeSet(s)
	n := g.NumVertices()
	// owner[v] = index into s of the set member currently represented by v.
	owner := make([]int, n)
	for i := range owner {
		owner[i] = Unmatched
	}
	visited := make([]bool, n) // right-side vertices seen in current search

	permitted := func(v int) bool { return allowed == nil || allowed(v) }

	var tryAssign func(i int) bool
	tryAssign = func(i int) bool {
		for _, u := range g.Neighbors(s[i]) {
			if visited[u] || !permitted(u) {
				continue
			}
			visited[u] = true
			if owner[u] == Unmatched || tryAssign(owner[u]) {
				owner[u] = i
				return true
			}
		}
		return false
	}

	for i := range s {
		for j := range visited {
			visited[j] = false
		}
		if tryAssign(i) {
			continue
		}
		// Hall violator: s[i] plus the owners of every right vertex the
		// failed search reached. All their permitted neighbors are visited
		// and matched within the violator minus s[i].
		violator := []int{s[i]}
		for u := 0; u < n; u++ {
			if visited[u] && owner[u] != Unmatched {
				violator = append(violator, s[owner[u]])
			}
		}
		sort.Ints(violator)
		return nil, violator
	}

	rep := make(map[int]int, len(s))
	for u := 0; u < n; u++ {
		if owner[u] != Unmatched {
			rep[s[owner[u]]] = u
		}
	}
	return rep, nil
}
