package matching

import (
	"context"
	"fmt"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
)

// Hopcroft–Karp phase counter (catalogued in OBSERVABILITY.md): one phase
// per BFS layering that found at least one augmenting path; the algorithm
// guarantees O(sqrt n) phases, which this counter lets callers verify
// empirically (experiment E8).
var obsHKPhases = obs.Default().Counter("matching.hopcroftkarp.phases")

// HopcroftKarp computes a maximum matching of a bipartite graph in
// O(m sqrt n) time. The bipartition is supplied as side[v] in {0, 1}; use
// (*graph.Graph).Bipartition to obtain one. It returns the mate array.
//
// The function validates that side is a proper 2-coloring of g and returns
// an error otherwise, so callers cannot silently run it on an odd cycle.
// Allocates the mate array plus per-phase BFS/DFS scratch.
func HopcroftKarp(g *graph.Graph, side []int) ([]int, error) {
	return HopcroftKarpCtx(context.Background(), g, side)
}

// HopcroftKarpCtx is HopcroftKarp under ctx's trace: the run is timed as
// the span "matching.hopcroftkarp" (histogram
// matching.hopcroftkarp.seconds). The algorithm itself is not
// interruptible; ctx only correlates.
func HopcroftKarpCtx(ctx context.Context, g *graph.Graph, side []int) ([]int, error) {
	sp, _ := obs.Default().StartSpanCtx(ctx, "matching.hopcroftkarp")
	defer sp.End()
	n := g.NumVertices()
	if len(side) != n {
		return nil, fmt.Errorf("matching: side array length %d, want %d", len(side), n)
	}
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			return nil, fmt.Errorf("%w: edge %v has both endpoints on side %d", graph.ErrNotBipartite, e, side[e.U])
		}
	}
	for v := 0; v < n; v++ {
		if side[v] != 0 && side[v] != 1 {
			return nil, fmt.Errorf("matching: side[%d]=%d, want 0 or 1", v, side[v])
		}
	}

	mate := NewMateArray(n)
	var left []int
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			left = append(left, v)
		}
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	queue := make([]int, 0, n)

	// bfs layers the left vertices by shortest alternating-path distance
	// from the set of free left vertices; it reports whether a free right
	// vertex is reachable (i.e. an augmenting path exists).
	bfs := func() bool {
		queue = queue[:0]
		for _, v := range left {
			if mate[v] == Unmatched {
				dist[v] = 0
				queue = append(queue, v)
			} else {
				dist[v] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			g.EachNeighbor(v, func(u int) {
				w := mate[u]
				if w == Unmatched {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			})
		}
		return found
	}

	// dfs searches for an augmenting path from left vertex v respecting the
	// BFS layering, flipping matched edges along the way.
	var dfs func(v int) bool
	dfs = func(v int) bool {
		for _, u := range g.Neighbors(v) {
			w := mate[u]
			if w == Unmatched || (dist[w] == dist[v]+1 && dfs(w)) {
				mate[v] = u
				mate[u] = v
				return true
			}
		}
		dist[v] = inf
		return false
	}

	for bfs() {
		obsHKPhases.Inc()
		for _, v := range left {
			if mate[v] == Unmatched {
				dfs(v)
			}
		}
	}
	return mate, nil
}

// MaximumBipartite computes a maximum matching of g, deriving the
// bipartition itself. It returns graph.ErrNotBipartite if g has an odd cycle.
// O(m sqrt n); allocates the side array plus HopcroftKarp's scratch.
func MaximumBipartite(g *graph.Graph) ([]int, error) {
	return MaximumBipartiteCtx(context.Background(), g)
}

// MaximumBipartiteCtx is MaximumBipartite with ctx threaded through to
// HopcroftKarpCtx for trace correlation.
func MaximumBipartiteCtx(ctx context.Context, g *graph.Graph) ([]int, error) {
	side, err := g.Bipartition()
	if err != nil {
		return nil, err
	}
	return HopcroftKarpCtx(ctx, g, side)
}

// KonigVertexCover converts a maximum matching of a bipartite graph into a
// minimum vertex cover using König's theorem: starting from the free left
// vertices, alternate unmatched/matched edges; the cover is the unreachable
// left vertices plus the reachable right vertices.
//
// side must be the same 2-coloring the matching was computed with, and mate
// a *maximum* matching (the construction is only a vertex cover then).
// O(n + m); allocates the cover and the BFS scratch.
func KonigVertexCover(g *graph.Graph, side []int, mate []int) []int {
	n := g.NumVertices()
	reached := make([]bool, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if side[v] == 0 && mate[v] == Unmatched {
			reached[v] = true
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if side[v] == 0 {
			// Leave the left side via non-matching edges.
			g.EachNeighbor(v, func(u int) {
				if mate[v] != u && !reached[u] {
					reached[u] = true
					queue = append(queue, u)
				}
			})
		} else if w := mate[v]; w != Unmatched && !reached[w] {
			// Return to the left side via the matching edge.
			reached[w] = true
			queue = append(queue, w)
		}
	}
	var cover []int
	for v := 0; v < n; v++ {
		if (side[v] == 0 && !reached[v]) || (side[v] == 1 && reached[v]) {
			cover = append(cover, v)
		}
	}
	return cover
}
