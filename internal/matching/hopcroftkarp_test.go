package matching

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
)

func maxBipartite(t *testing.T, g *graph.Graph) []int {
	t.Helper()
	mate, err := MaximumBipartite(g)
	if err != nil {
		t.Fatalf("MaximumBipartite: %v", err)
	}
	if err := Verify(g, mate); err != nil {
		t.Fatalf("invalid matching: %v", err)
	}
	return mate
}

func TestHopcroftKarpKnownSizes(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single edge", graph.Path(2), 1},
		{"path5", graph.Path(5), 2},
		{"path6", graph.Path(6), 3},
		{"even cycle", graph.Cycle(8), 4},
		{"star", graph.Star(6), 1},
		{"K34", graph.CompleteBipartite(3, 4), 3},
		{"K44", graph.CompleteBipartite(4, 4), 4},
		{"grid34", graph.Grid(3, 4), 6},
		{"hypercube3", graph.Hypercube(3), 4},
		{"disjoint edges", graph.PerfectMatchingGraph(10), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mate := maxBipartite(t, tt.g)
			if got := Size(mate); got != tt.want {
				t.Errorf("matching size = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestHopcroftKarpRejectsOddCycle(t *testing.T) {
	if _, err := MaximumBipartite(graph.Cycle(5)); !errors.Is(err, graph.ErrNotBipartite) {
		t.Errorf("err = %v, want ErrNotBipartite", err)
	}
}

func TestHopcroftKarpRejectsBadSideArrays(t *testing.T) {
	g := graph.Path(3)
	if _, err := HopcroftKarp(g, []int{0, 1}); err == nil {
		t.Error("short side array must fail")
	}
	if _, err := HopcroftKarp(g, []int{0, 0, 1}); err == nil {
		t.Error("monochromatic edge must fail")
	}
	if _, err := HopcroftKarp(g, []int{0, 2, 0}); err == nil {
		t.Error("side value outside {0,1} must fail")
	}
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b := 1+rng.Intn(4), 1+rng.Intn(4)
		g := graph.RandomBipartite(a, b, 0.5, seed)
		if g.NumEdges() > 16 {
			continue
		}
		mate := maxBipartite(t, g)
		if got, want := Size(mate), bruteForceMaximumMatchingSize(g); got != want {
			t.Fatalf("seed %d: HK size %d, brute force %d\n%s", seed, got, want, g.EncodeString())
		}
	}
}

func TestKonigVertexCover(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path5", graph.Path(5)},
		{"even cycle", graph.Cycle(10)},
		{"star", graph.Star(9)},
		{"K35", graph.CompleteBipartite(3, 5)},
		{"grid", graph.Grid(4, 4)},
		{"tree", graph.RandomTree(20, 1)},
		{"random bipartite", graph.RandomBipartite(10, 12, 0.3, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			side, err := tt.g.Bipartition()
			if err != nil {
				t.Fatal(err)
			}
			mate, err := HopcroftKarp(tt.g, side)
			if err != nil {
				t.Fatal(err)
			}
			vc := KonigVertexCover(tt.g, side, mate)
			// König: |VC| equals the maximum matching size.
			if len(vc) != Size(mate) {
				t.Errorf("|VC| = %d, matching size = %d", len(vc), Size(mate))
			}
			member := make(map[int]bool)
			for _, v := range vc {
				member[v] = true
			}
			for _, e := range tt.g.Edges() {
				if !member[e.U] && !member[e.V] {
					t.Fatalf("edge %v not covered", e)
				}
			}
		})
	}
}

// Property: on random bipartite graphs, the König construction always yields
// a vertex cover of size equal to the maximum matching.
func TestPropertyKonigDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomBipartite(1+rng.Intn(10), 1+rng.Intn(10), rng.Float64(), seed)
		side, err := g.Bipartition()
		if err != nil {
			return false
		}
		mate, err := HopcroftKarp(g, side)
		if err != nil {
			return false
		}
		vc := KonigVertexCover(g, side, mate)
		if len(vc) != Size(mate) {
			return false
		}
		member := make(map[int]bool)
		for _, v := range vc {
			member[v] = true
		}
		for _, e := range g.Edges() {
			if !member[e.U] && !member[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
