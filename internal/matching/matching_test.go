package matching

import (
	"errors"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

// bruteForceMaximumMatchingSize enumerates all edge subsets (2^m) and
// returns the maximum matching size — the oracle for the fast algorithms.
func bruteForceMaximumMatchingSize(g *graph.Graph) int {
	edges := g.Edges()
	m := len(edges)
	if m > 20 {
		panic("oracle limited to 20 edges")
	}
	best := 0
	for mask := 0; mask < 1<<uint(m); mask++ {
		used := make(map[int]bool)
		count := 0
		ok := true
		for i := 0; i < m && ok; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			e := edges[i]
			if used[e.U] || used[e.V] {
				ok = false
				break
			}
			used[e.U], used[e.V] = true, true
			count++
		}
		if ok && count > best {
			best = count
		}
	}
	return best
}

func TestMateArrayHelpers(t *testing.T) {
	mate := NewMateArray(4)
	for _, v := range mate {
		if v != Unmatched {
			t.Fatal("new mate array must be all unmatched")
		}
	}
	mate[0], mate[1] = 1, 0
	if Size(mate) != 1 {
		t.Errorf("Size = %d, want 1", Size(mate))
	}
	edges := Edges(mate)
	if len(edges) != 1 || edges[0] != graph.NewEdge(0, 1) {
		t.Errorf("Edges = %v", edges)
	}
}

func TestFromEdges(t *testing.T) {
	mate, err := FromEdges(4, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if mate[0] != 1 || mate[2] != 3 {
		t.Error("mate array wrong")
	}
	if _, err := FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}); !errors.Is(err, ErrNotMatching) {
		t.Errorf("overlapping edges: err = %v, want ErrNotMatching", err)
	}
	if _, err := FromEdges(2, []graph.Edge{{U: 0, V: 5}}); err == nil {
		t.Error("out of range must fail")
	}
	if _, err := FromEdges(2, []graph.Edge{{U: 1, V: 1}}); err == nil {
		t.Error("self loop must fail")
	}
}

func TestIsMatchingAndIsPerfect(t *testing.T) {
	g := graph.Cycle(6)
	m1 := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3), graph.NewEdge(4, 5)}
	if !IsMatching(g, m1) || !IsPerfect(g, m1) {
		t.Error("alternate cycle edges form a perfect matching")
	}
	if IsMatching(g, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2)}) {
		t.Error("sharing vertex 1 is not a matching")
	}
	if IsMatching(g, []graph.Edge{graph.NewEdge(0, 2)}) {
		t.Error("non-edges are rejected")
	}
	if IsPerfect(g, m1[:2]) {
		t.Error("4 of 6 vertices is not perfect")
	}
}

func TestSaturates(t *testing.T) {
	mate := NewMateArray(4)
	mate[0], mate[1] = 1, 0
	if !Saturates(mate, []int{0, 1}) {
		t.Error("0,1 matched")
	}
	if Saturates(mate, []int{0, 2}) {
		t.Error("2 unmatched")
	}
	if Saturates(mate, []int{9}) {
		t.Error("out of range never saturated")
	}
}

func TestGreedyIsMaximal(t *testing.T) {
	g := graph.RandomGNP(30, 0.2, 11)
	mate := Greedy(g)
	if err := Verify(g, mate); err != nil {
		t.Fatalf("greedy produced invalid matching: %v", err)
	}
	// Maximality: no edge with both endpoints unmatched.
	for _, e := range g.Edges() {
		if mate[e.U] == Unmatched && mate[e.V] == Unmatched {
			t.Fatalf("edge %v could extend the greedy matching", e)
		}
	}
}

func TestVerifyRejectsCorruptMateArrays(t *testing.T) {
	g := graph.Path(4)
	tests := []struct {
		name string
		mate []int
	}{
		{"wrong length", make([]int, 3)},
		{"asymmetric", []int{1, 2, Unmatched, Unmatched}},
		{"out of range", []int{9, Unmatched, Unmatched, Unmatched}},
		{"non-edge", []int{2, Unmatched, 0, Unmatched}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.name == "wrong length" {
				for i := range tt.mate {
					tt.mate[i] = Unmatched
				}
			}
			if err := Verify(g, tt.mate); err == nil {
				t.Error("Verify should fail")
			}
		})
	}
}

func TestCloneMate(t *testing.T) {
	if CloneMate(nil) != nil {
		t.Error("CloneMate(nil) must be nil")
	}
	mate := []int{1, 0, Unmatched}
	clone := CloneMate(mate)
	if len(clone) != len(mate) {
		t.Fatalf("clone length %d, want %d", len(clone), len(mate))
	}
	clone[0] = 99
	if mate[0] != 1 {
		t.Error("mutating the clone changed the original")
	}
}
