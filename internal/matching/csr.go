package matching

import (
	"fmt"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/par"
)

// CSR Hopcroft–Karp phase counter (catalogued in OBSERVABILITY.md): one
// increment per BFS layering that found an augmenting path, mirroring
// matching.hopcroftkarp.phases for the sparse path so the O(sqrt n) phase
// bound stays empirically checkable at 10^6 vertices.
var obsCSRHKPhases = obs.Default().Counter("matching.csr.hopcroftkarp.phases")

// hkParallelGrain is the vertex count below which the CSR matching paths
// stay serial — same reasoning as the graph package's grain guard: the
// parallel and serial routes are bit-identical, fan-out just does not pay
// for small instances.
const hkParallelGrain = 1 << 15

// HopcroftKarpCSR computes a maximum matching of a bipartite CSR graph in
// O(m sqrt n) time. The 2-coloring is supplied as side[v] in {0, 1}; use
// (*graph.CSR).Bipartition to obtain one. It returns the mate array
// (mate[v] = partner of v, or Unmatched), validating first that side is a
// proper 2-coloring so callers cannot silently run it on an odd cycle.
// The validation scan runs on the par worker budget with rejections
// reduced to the smallest vertex index — the error the serial scan
// reports first.
//
// This is the scale path: a greedy warm start, BFS layering with bitset
// frontiers reset in O(n/64) words per phase, and an iterative DFS with a
// per-vertex edge cursor so each phase touches every arc at most once —
// no recursion, no per-phase reallocation. All O(n) scratch is pooled;
// only the returned mate array is allocated.
func HopcroftKarpCSR(c *graph.CSR, side []int8) ([]int32, error) {
	n := c.NumVertices()
	if len(side) != n {
		return nil, fmt.Errorf("matching: side array length %d, want %d", len(side), n)
	}
	workers := par.Split(par.Workers(0), n, hkParallelGrain)
	faults := make([]par.Fault, workers)
	par.For(workers, n, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			if side[v] != 0 && side[v] != 1 {
				faults[w] = par.Fault{At: v, Err: fmt.Errorf("matching: side[%d]=%d, want 0 or 1", v, side[v])}
				return
			}
			for _, u := range c.Neighbors(v) {
				if side[u] == side[v] {
					faults[w] = par.Fault{At: v, Err: fmt.Errorf("%w: edge (%d,%d) has both endpoints on side %d", graph.ErrNotBipartite, v, u, side[v])}
					return
				}
			}
		}
	})
	if err := par.FirstFault(faults); err != nil {
		return nil, err
	}
	return hopcroftKarpCSR(c, side), nil
}

// HopcroftKarpCSRSubgraph computes a maximum matching of the bipartite
// subgraph of c induced by the cross edges between side-0 and side-1
// vertices. Unlike HopcroftKarpCSR it does not validate: side[v] may be -1
// (vertex excluded) and same-side edges are skipped rather than rejected.
// This is how the sparse partition search matches VC vertices to distinct
// IS representatives (Corollary 4.11's SDR) without materializing the
// auxiliary bipartite graph. Same complexity and allocation profile as
// HopcroftKarpCSR; excluded vertices stay Unmatched.
func HopcroftKarpCSRSubgraph(c *graph.CSR, side []int8) []int32 {
	return hopcroftKarpCSR(c, side)
}

// hopcroftKarpCSR is the engine behind both entry points: left = side 0,
// right = side 1, every other vertex and every non-cross edge ignored.
//
// The phase BFS is the multicore leg: above hkParallelGrain vertices it
// expands each layer level-synchronously on the par worker budget, with
// atomic bitset claims deciding vertex ownership and per-worker next
// frontiers merged in worker order. A left vertex's layer is its
// alternating-path distance from the free set — the same quantity the
// serial FIFO computes — so the layered graph, the augmenting DFS that
// walks it (always serial: its shared arc cursors are order-dependent by
// design), and hence the returned matching are bit-identical at every
// thread count.
func hopcroftKarpCSR(c *graph.CSR, side []int8) []int32 {
	n := c.NumVertices()
	mate := make([]int32, n)
	for i := range mate {
		mate[i] = Unmatched
	}
	left := par.GetInt32(n)[:0]
	defer func() { par.PutInt32(left) }()
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			left = append(left, int32(v))
		}
	}

	// Greedy warm start: pairs off the easy vertices so the first phases
	// have fewer augmenting paths to find. Serial on purpose — each pick
	// depends on every earlier one, and the matching must not depend on
	// the thread budget.
	for _, v := range left {
		for _, u := range c.Neighbors(int(v)) {
			if side[u] == 1 && mate[u] == Unmatched {
				mate[v], mate[u] = u, v
				break
			}
		}
	}

	dist := par.GetInt32(n)
	ptr := par.GetInt32(n)
	frontier := par.GetInt32(n)
	stack := par.GetInt32(n)[:0]
	chosen := par.GetInt32(n)
	defer func() {
		par.PutInt32(dist)
		par.PutInt32(ptr)
		par.PutInt32(frontier)
		par.PutInt32(stack)
		par.PutInt32(chosen)
	}()
	visited := graph.GetBitset(n)
	defer graph.PutBitset(visited)
	workers := par.Split(par.Workers(0), n, hkParallelGrain)
	nexts := make([][]int32, workers)
	founds := make([]bool, workers)

	// bfs layers left vertices by alternating-path distance from the free
	// ones; dist is only meaningful where visited is set, so the per-phase
	// reset is the bitset's O(n/64) word clear, not an O(n) fill.
	bfs := func() bool {
		visited.Reset()
		frontLen := 0
		for _, v := range left {
			if mate[v] == Unmatched {
				dist[v] = 0
				visited.Set(v)
				frontier[frontLen] = v
				frontLen++
			}
		}
		found := false
		if workers == 1 {
			queue := frontier[:frontLen]
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				for _, u := range c.Neighbors(int(v)) {
					if side[u] != 1 {
						continue
					}
					w := mate[u]
					if w == Unmatched {
						found = true
					} else if !visited.Has(w) {
						visited.Set(w)
						dist[w] = dist[v] + 1
						queue = append(queue, w)
					}
				}
			}
			return found
		}
		for frontLen > 0 {
			fw := par.Split(workers, frontLen, 512)
			for w := 0; w < fw; w++ {
				nexts[w] = nexts[w][:0]
				founds[w] = false
			}
			par.For(fw, frontLen, func(w, lo, hi int) {
				next := nexts[w]
				hit := false
				for fi := lo; fi < hi; fi++ {
					v := frontier[fi]
					dv := dist[v]
					for _, u := range c.Neighbors(int(v)) {
						if side[u] != 1 {
							continue
						}
						m := mate[u]
						if m == Unmatched {
							hit = true
						} else if visited.TrySetAtomic(m) {
							dist[m] = dv + 1
							next = append(next, m)
						}
					}
				}
				nexts[w] = next
				founds[w] = hit
			})
			frontLen = 0
			for w := 0; w < fw; w++ {
				found = found || founds[w]
				frontLen += copy(frontier[frontLen:], nexts[w])
			}
		}
		return found
	}

	// dfs searches for an augmenting path from root along the BFS layers,
	// iteratively: the stack holds the left vertices of the current
	// alternating path, ptr[v] the next arc to try (persisting across
	// roots, so a phase scans each arc once), chosen[v] the right vertex v
	// will pair with if the path augments.
	dfs := func(root int32) bool {
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			advanced := false
			for ptr[v] < c.RowPtr[v+1] {
				u := c.Col[ptr[v]]
				ptr[v]++
				if side[u] != 1 {
					continue
				}
				w := mate[u]
				if w == Unmatched {
					chosen[v] = u
					for _, x := range stack {
						y := chosen[x]
						mate[x], mate[y] = y, x
					}
					return true
				}
				if visited.Has(w) && dist[w] == dist[v]+1 {
					chosen[v] = u
					stack = append(stack, w)
					advanced = true
					break
				}
			}
			if !advanced {
				stack = stack[:len(stack)-1]
			}
		}
		return false
	}

	for bfs() {
		obsCSRHKPhases.Inc()
		copy(ptr, c.RowPtr[:n])
		for _, v := range left {
			if mate[v] == Unmatched {
				dfs(v)
			}
		}
	}
	return mate
}

// MaximumBipartiteCSR computes a maximum matching of a CSR graph, deriving
// the bipartition itself and returning it alongside the mate array (König
// conversion needs both). Returns graph.ErrNotBipartite on an odd cycle.
// O(m sqrt n); allocates the side and mate arrays plus the engine scratch.
func MaximumBipartiteCSR(c *graph.CSR) ([]int32, []int8, error) {
	side, err := c.Bipartition()
	if err != nil {
		return nil, nil, err
	}
	mate := hopcroftKarpCSR(c, side)
	return mate, side, nil
}

// SizeCSR returns the number of edges in the matching encoded by an int32
// mate array. O(n), does not allocate.
func SizeCSR(mate []int32) int {
	count := 0
	for v, u := range mate {
		if u != Unmatched && int(u) > v {
			count++
		}
	}
	return count
}

// KonigVertexCoverCSR converts a maximum matching of a bipartite CSR graph
// into a minimum vertex cover using König's theorem, exactly like
// KonigVertexCover but on the sparse path: alternating BFS from the free
// left vertices with a bitset reachability set, cover = unreached left +
// reached right, ascending. side must be the 2-coloring the matching was
// computed with and mate a maximum matching. O(n + m); allocates only
// the returned cover — the queue and reachability bitset are pooled.
func KonigVertexCoverCSR(c *graph.CSR, side []int8, mate []int32) []int32 {
	n := c.NumVertices()
	reached := graph.GetBitset(n)
	defer graph.PutBitset(reached)
	queue := par.GetInt32(n)[:0]
	defer func() { par.PutInt32(queue) }()
	for v := 0; v < n; v++ {
		if side[v] == 0 && mate[v] == Unmatched {
			reached.Set(int32(v))
			queue = append(queue, int32(v))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if side[v] == 0 {
			// Leave the left side via non-matching edges.
			for _, u := range c.Neighbors(int(v)) {
				if mate[v] != u && !reached.Has(u) {
					reached.Set(u)
					queue = append(queue, u)
				}
			}
		} else if w := mate[v]; w != Unmatched && !reached.Has(w) {
			// Return to the left side via the matching edge.
			reached.Set(w)
			queue = append(queue, w)
		}
	}
	var cover []int32
	for v := 0; v < n; v++ {
		r := reached.Has(int32(v))
		if (side[v] == 0 && !r) || (side[v] == 1 && r) {
			cover = append(cover, int32(v))
		}
	}
	return cover
}
