package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/defender-game/defender/internal/graph"
)

func maxGeneral(t *testing.T, g *graph.Graph) []int {
	t.Helper()
	mate := Maximum(g)
	if err := Verify(g, mate); err != nil {
		t.Fatalf("blossom produced invalid matching: %v", err)
	}
	return mate
}

func TestBlossomKnownSizes(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"triangle", graph.Complete(3), 1},
		{"K4", graph.Complete(4), 2},
		{"K5", graph.Complete(5), 2},
		{"K6", graph.Complete(6), 3},
		{"C5", graph.Cycle(5), 2},
		{"C7", graph.Cycle(7), 3},
		{"C8", graph.Cycle(8), 4},
		{"petersen", graph.Petersen(), 5},
		{"star", graph.Star(7), 1},
		{"path7", graph.Path(7), 3},
		{"wheel6", graph.Wheel(6), 3},
		{"grid33", graph.Grid(3, 3), 4},
		{"hypercube4", graph.Hypercube(4), 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mate := maxGeneral(t, tt.g)
			if got := Size(mate); got != tt.want {
				t.Errorf("matching size = %d, want %d", got, tt.want)
			}
		})
	}
}

// twoTriangles is the classic blossom stress shape: two triangles joined by
// a bridge; maximum matching is 3 and requires threading through a blossom.
func TestBlossomTwoTriangles(t *testing.T) {
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	mate := maxGeneral(t, g)
	if got := Size(mate); got != 3 {
		t.Errorf("matching size = %d, want 3", got)
	}
}

// flowerGraph nests blossoms: an odd cycle with pendant edges.
func TestBlossomFlower(t *testing.T) {
	g := graph.New(10)
	// C5 on 0..4 plus a pendant vertex 5..9 hanging off each cycle vertex.
	for i := 0; i < 5; i++ {
		if err := g.AddEdge(i, (i+1)%5); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(i, i+5); err != nil {
			t.Fatal(err)
		}
	}
	mate := maxGeneral(t, g)
	if got := Size(mate); got != 5 {
		t.Errorf("matching size = %d, want 5 (perfect)", got)
	}
}

func TestBlossomMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := graph.RandomGNP(n, 0.55, seed)
		if g.NumEdges() > 16 || g.NumEdges() == 0 {
			continue
		}
		mate := maxGeneral(t, g)
		if got, want := Size(mate), bruteForceMaximumMatchingSize(g); got != want {
			t.Fatalf("seed %d: blossom %d, brute force %d\n%s", seed, got, want, g.EncodeString())
		}
	}
}

// Property: on bipartite graphs, blossom and Hopcroft–Karp agree.
func TestPropertyBlossomAgreesWithHopcroftKarp(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomBipartite(1+rng.Intn(12), 1+rng.Intn(12), rng.Float64(), seed)
		hk, err := MaximumBipartite(g)
		if err != nil {
			return false
		}
		bl := Maximum(g)
		if err := Verify(g, bl); err != nil {
			return false
		}
		return Size(hk) == Size(bl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the blossom matching is maximal (no augmenting edge remains
// between two unmatched vertices) and never exceeds n/2.
func TestPropertyBlossomMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(16)
		g := graph.RandomGNP(n, 0.3, seed)
		mate := Maximum(g)
		if err := Verify(g, mate); err != nil {
			return false
		}
		if Size(mate) > n/2 {
			return false
		}
		for _, e := range g.Edges() {
			if mate[e.U] == Unmatched && mate[e.V] == Unmatched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBlossomPerfectOnEvenCompleteGraphs(t *testing.T) {
	for n := 2; n <= 12; n += 2 {
		g := graph.Complete(n)
		mate := maxGeneral(t, g)
		if Size(mate) != n/2 {
			t.Errorf("K%d: size = %d, want %d", n, Size(mate), n/2)
		}
	}
}

func TestBlossomEmptyAndEdgeless(t *testing.T) {
	if got := Size(Maximum(graph.New(0))); got != 0 {
		t.Errorf("empty graph matching = %d", got)
	}
	if got := Size(Maximum(graph.New(5))); got != 0 {
		t.Errorf("edgeless graph matching = %d", got)
	}
}
