// Package matching implements the matching algorithms the equilibrium
// constructions depend on: Hopcroft–Karp maximum matching for bipartite
// graphs (Theorem 5.1 of the paper computes a minimum vertex cover of a
// bipartite graph in O(m sqrt n) this way), Edmonds' blossom algorithm for
// maximum matching in general graphs (minimum edge covers, Corollary 3.2),
// and Kuhn-style systems of distinct representatives used to decide the
// VC-expander condition of Corollary 4.11 via Hall's theorem.
//
// Matchings are exchanged in two forms: a mate array (mate[v] = partner of v
// or -1) and an edge list. Both forms are normalized and validated by the
// helpers in this file.
package matching

import (
	"errors"
	"fmt"

	"github.com/defender-game/defender/internal/graph"
)

// ErrNotMatching is returned when an edge set is not a matching of the graph.
var ErrNotMatching = errors.New("matching: edge set is not a matching")

// Unmatched marks a vertex without a partner in a mate array.
const Unmatched = -1

// NewMateArray returns a mate array of length n with every vertex unmatched.
// O(n); allocates the array.
func NewMateArray(n int) []int {
	mate := make([]int, n)
	for i := range mate {
		mate[i] = Unmatched
	}
	return mate
}

// CloneMate returns an independent copy of a mate array. Concurrency-safe
// caches hand out clones so a caller mutating its copy cannot corrupt the
// cached matching. O(n); allocates the copy.
func CloneMate(mate []int) []int {
	if mate == nil {
		return nil
	}
	out := make([]int, len(mate))
	copy(out, mate)
	return out
}

// Size returns the number of edges in the matching encoded by mate.
// O(n), does not allocate.
func Size(mate []int) int {
	c := 0
	for v, u := range mate {
		if u != Unmatched && u > v {
			c++
		}
	}
	return c
}

// Edges converts a mate array into a normalized edge list. O(n);
// allocates the list.
func Edges(mate []int) []graph.Edge {
	var out []graph.Edge
	for v, u := range mate {
		if u != Unmatched && u > v {
			out = append(out, graph.NewEdge(v, u))
		}
	}
	return out
}

// FromEdges converts an edge list into a mate array for a graph on n
// vertices. It returns ErrNotMatching if two edges share a vertex, and an
// error if an endpoint is out of range or an edge is a self-loop.
// O(n + |edges|); allocates the mate array.
func FromEdges(n int, edges []graph.Edge) ([]int, error) {
	mate := NewMateArray(n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("matching: edge %v out of range for n=%d", e, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("matching: self-loop %v", e)
		}
		if mate[e.U] != Unmatched || mate[e.V] != Unmatched {
			return nil, fmt.Errorf("%w: %v shares a vertex with another edge", ErrNotMatching, e)
		}
		mate[e.U] = e.V
		mate[e.V] = e.U
	}
	return mate, nil
}

// IsMatching reports whether edges is a matching of g: every edge belongs to
// g and no two edges share an endpoint. O(|edges|) expected (edge-id map
// lookups); allocates a scratch endpoint set.
func IsMatching(g *graph.Graph, edges []graph.Edge) bool {
	used := make(map[int]bool, 2*len(edges))
	for _, e := range edges {
		if g.EdgeID(e) < 0 {
			return false
		}
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U] = true
		used[e.V] = true
	}
	return true
}

// IsPerfect reports whether edges is a perfect matching of g. Cost of
// IsMatching: O(|edges|) expected, allocates its scratch set.
func IsPerfect(g *graph.Graph, edges []graph.Edge) bool {
	return IsMatching(g, edges) && 2*len(edges) == g.NumVertices()
}

// Saturates reports whether every vertex of sorted set vs is matched in mate.
// O(|vs|), does not allocate.
func Saturates(mate []int, vs []int) bool {
	for _, v := range vs {
		if v < 0 || v >= len(mate) || mate[v] == Unmatched {
			return false
		}
	}
	return true
}

// Greedy returns a maximal (not necessarily maximum) matching of g, built by
// scanning the edge list once. Useful as a fast 2-approximation and as a
// warm start for the exact algorithms. O(n + m); allocates the mate array
// and the edge-list copy it scans.
func Greedy(g *graph.Graph) []int {
	mate := NewMateArray(g.NumVertices())
	for _, e := range g.Edges() {
		if mate[e.U] == Unmatched && mate[e.V] == Unmatched {
			mate[e.U] = e.V
			mate[e.V] = e.U
		}
	}
	return mate
}

// Verify checks that mate is a well-formed symmetric mate array over edges
// of g. It is used by tests and by debug assertions. O(n) expected
// (edge-map lookups); does not allocate beyond the returned error.
func Verify(g *graph.Graph, mate []int) error {
	if len(mate) != g.NumVertices() {
		return fmt.Errorf("matching: mate array length %d, want %d", len(mate), g.NumVertices())
	}
	for v, u := range mate {
		if u == Unmatched {
			continue
		}
		if u < 0 || u >= len(mate) {
			return fmt.Errorf("matching: mate[%d]=%d out of range", v, u)
		}
		if mate[u] != v {
			return fmt.Errorf("matching: mate not symmetric at %d<->%d", v, u)
		}
		if !g.HasEdge(v, u) {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", v, u)
		}
	}
	return nil
}
