package par

import "sync"

// Scratch pools: the sparse hot paths (Hopcroft–Karp phases, the Theorem
// 3.4 verifier, BFS bipartition) need O(n) int32/int8 scratch per solve,
// and under defenderd traffic a fresh make per solve churns the GC. The
// pools hand back previously used slices re-sliced to the requested
// length; contents are UNSPECIFIED — callers own (re)initialization,
// which they need for determinism anyway. An undersized pool entry is
// dropped for the GC and replaced by a fresh make, so a mixed-size
// workload degenerates to allocation, never to corruption.

var int32Pool = sync.Pool{New: func() any { return new([]int32) }}

// GetInt32 returns a []int32 of length n with arbitrary contents.
func GetInt32(n int) []int32 {
	p := int32Pool.Get().(*[]int32)
	s := *p
	*p = nil
	int32Pool.Put(p)
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// PutInt32 returns s to the pool. The caller must not retain s.
func PutInt32(s []int32) {
	if cap(s) == 0 {
		return
	}
	p := int32Pool.Get().(*[]int32)
	if cap(*p) < cap(s) {
		*p = s[:0]
	}
	int32Pool.Put(p)
}

var int8Pool = sync.Pool{New: func() any { return new([]int8) }}

// GetInt8 returns a []int8 of length n with arbitrary contents.
func GetInt8(n int) []int8 {
	p := int8Pool.Get().(*[]int8)
	s := *p
	*p = nil
	int8Pool.Put(p)
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int8, n)
}

// PutInt8 returns s to the pool. The caller must not retain s.
func PutInt8(s []int8) {
	if cap(s) == 0 {
		return
	}
	p := int8Pool.Get().(*[]int8)
	if cap(*p) < cap(s) {
		*p = s[:0]
	}
	int8Pool.Put(p)
}
