package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForCoversRangeExactlyOnce checks the chunking contract: every index
// in [0, n) is handled exactly once, for worker counts on both sides of n.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d handled %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestForChunksDeterministic checks that chunk boundaries depend only on
// (workers, n): two runs hand every worker the same range.
func TestForChunksDeterministic(t *testing.T) {
	record := func() [][2]int {
		got := make([][2]int, 4)
		For(4, 1003, func(w, lo, hi int) { got[w] = [2]int{lo, hi} })
		return got
	}
	a, b := record(), record()
	covered := 0
	for w := range a {
		if a[w] != b[w] {
			t.Fatalf("worker %d chunk changed between runs: %v vs %v", w, a[w], b[w])
		}
		covered += a[w][1] - a[w][0]
	}
	if covered != 1003 {
		t.Fatalf("chunks cover %d indices, want 1003", covered)
	}
}

// TestForWorkerOrderMerge checks the deterministic-reduction pattern:
// per-worker partial sums merged in worker order give the serial total,
// independent of the worker count.
func TestForWorkerOrderMerge(t *testing.T) {
	const n = 100000
	want := int64(n) * (n - 1) / 2
	for _, workers := range []int{1, 2, 5, 8} {
		partial := make([]int64, workers)
		For(workers, n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				partial[w] += int64(i)
			}
		})
		var total int64
		for w := 0; w < workers; w++ {
			total += partial[w]
		}
		if total != want {
			t.Fatalf("workers=%d: merged sum %d, want %d", workers, total, want)
		}
	}
}

// TestForInlineWhenSingleWorker checks that the budget-1 path never
// leaves the calling goroutine (no fan-out to observe: the closure sees
// the same goroutine-local state throughout).
func TestForInlineWhenSingleWorker(t *testing.T) {
	calls := 0
	For(1, 100, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 100 {
			t.Fatalf("inline chunk = (%d, %d, %d), want (0, 0, 100)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("inline For called fn %d times, want 1", calls)
	}
}

func TestFirstFault(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	cases := []struct {
		faults []Fault
		want   error
	}{
		{nil, nil},
		{[]Fault{{}, {}}, nil},
		{[]Fault{{At: 7, Err: errA}, {}}, errA},
		{[]Fault{{At: 7, Err: errA}, {At: 3, Err: errB}}, errB},
		{[]Fault{{At: 3, Err: errA}, {At: 7, Err: errB}}, errA},
	}
	for i, c := range cases {
		if got := FirstFault(c.faults); !errors.Is(got, c.want) && got != c.want {
			t.Errorf("case %d: FirstFault = %v, want %v", i, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ workers, n, grain, want int }{
		{8, 100, 1000, 1},  // range below one grain: serial
		{8, 8000, 1000, 8}, // exactly enough for all workers
		{8, 3000, 1000, 3}, // shrink to keep chunks at grain
		{1, 1 << 20, 1, 1}, // serial budget stays serial
		{4, 0, 1000, 1},    // empty range
		{8, 100, 0, 8},     // degenerate grain defends itself
	}
	for _, c := range cases {
		if got := Split(c.workers, c.n, c.grain); got != c.want {
			t.Errorf("Split(%d, %d, %d) = %d, want %d", c.workers, c.n, c.grain, got, c.want)
		}
	}
}

func TestThreadsBudget(t *testing.T) {
	defer SetThreads(0)
	if got := SetThreads(3); got != 3 {
		t.Fatalf("SetThreads(3) = %d", got)
	}
	if got := Threads(); got != 3 {
		t.Fatalf("Threads() = %d after SetThreads(3)", got)
	}
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) = %d, want budget 3", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want explicit request honored", got)
	}
	if got := SetThreads(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetThreads(0) = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := SetThreads(maxThreads + 5); got != maxThreads {
		t.Fatalf("SetThreads(max+5) = %d, want saturation at %d", got, maxThreads)
	}
}

// TestPoolRoundTrip checks that pooled scratch keeps capacity across a
// get/put cycle and that undersized entries degrade to allocation.
func TestPoolRoundTrip(t *testing.T) {
	s := GetInt32(1000)
	if len(s) != 1000 {
		t.Fatalf("GetInt32(1000) len = %d", len(s))
	}
	s[0], s[999] = 1, 2
	PutInt32(s)
	s2 := GetInt32(500)
	if len(s2) != 500 {
		t.Fatalf("GetInt32(500) len = %d", len(s2))
	}
	PutInt32(s2)

	b := GetInt8(64)
	if len(b) != 64 {
		t.Fatalf("GetInt8(64) len = %d", len(b))
	}
	PutInt8(b)
	PutInt32(nil) // nil is a no-op, not a poison pill
	PutInt8(nil)
}

// TestForParallelFaultScan exercises the canonical find-first-error shape
// under real fan-out: ascending scans with per-worker first faults reduce
// to the serial answer at any worker count.
func TestForParallelFaultScan(t *testing.T) {
	const n = 10000
	bad := map[int]bool{137: true, 4096: true, 9999: true}
	for _, workers := range []int{1, 2, 8} {
		faults := make([]Fault, workers)
		For(workers, n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if bad[i] {
					faults[w] = Fault{At: i, Err: fmt.Errorf("bad index %d", i)}
					return
				}
			}
		})
		err := FirstFault(faults)
		if err == nil || err.Error() != "bad index 137" {
			t.Fatalf("workers=%d: FirstFault = %v, want bad index 137", workers, err)
		}
	}
}
