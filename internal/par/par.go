// Package par is the multicore substrate of the sparse solver stack: a
// bounded parallel-for over index ranges with deterministic chunking,
// per-worker scratch pools, and worker-order fault reduction, designed so
// threads=1 and threads=N produce bit-identical results.
//
// The determinism contract every caller relies on:
//
//   - For splits [0, n) into exactly `workers` contiguous chunks whose
//     boundaries depend only on (workers, n) — never on scheduling — so
//     per-worker partial results are reproducible and can be merged in
//     worker-index order.
//   - FirstFault reduces per-worker failures to the one with the smallest
//     index, which for ascending scans is exactly the fault a serial loop
//     would have reported first.
//   - Workers(0) resolves to the process-wide thread budget (SetThreads);
//     a budget of 1 makes every For run inline on the calling goroutine,
//     byte-identical to the pre-parallel serial code by construction.
//
// The budget is a goroutine count, not a core count: it is deliberately
// not clamped to GOMAXPROCS so scaling ladders can record honest
// oversubscribed rungs (workers_effective = requested, gomaxprocs = what
// the box had). Callers that must never oversubscribe — defenderd's
// broker, which multiplies the budget by its pool size — apply their own
// clamp before calling SetThreads (see internal/server).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// Parallel-region counter (catalogued in OBSERVABILITY.md): one increment
// per For that fanned out to more than one worker goroutine. Against
// par.tasks_inline it shows how often the grain guards and thread budget
// actually engage the parallel paths.
var obsTasks = obs.Default().Counter("par.tasks")

// Inline-region counter (catalogued in OBSERVABILITY.md): one increment
// per For that ran on the calling goroutine (budget 1, or the range too
// small to split). A workload showing only inline tasks at threads>1 has
// ranges below the grain guards, not a scheduling problem.
var obsTasksInline = obs.Default().Counter("par.tasks_inline")

// Worker-count gauge (catalogued in OBSERVABILITY.md): the fan-out of the
// most recent parallel For — what the grain guard left of the requested
// budget.
var obsWorkers = obs.Default().Gauge("par.workers")

// Imbalance gauge (catalogued in OBSERVABILITY.md): max worker busy time
// over mean busy time (x1000) for the most recent parallel For. 1000 is a
// perfectly balanced region; sustained values far above it mean the
// contiguous chunking is fighting skewed per-index cost (e.g. hub rows in
// a power-law graph).
var obsImbalance = obs.Default().Gauge("par.imbalance")

// maxThreads bounds any budget or per-call request; far above useful
// fan-out, it only guards against absurd flag values.
const maxThreads = 1024

// threads is the process-wide default worker budget; 0 means "unset, use
// GOMAXPROCS at resolve time" so tests that never touch the budget follow
// the runtime's sizing.
var threads atomic.Int64

// Threads returns the current default worker budget.
func Threads() int {
	if t := threads.Load(); t > 0 {
		return int(t)
	}
	return min(runtime.GOMAXPROCS(0), maxThreads)
}

// SetThreads sets the process-wide default worker budget and returns the
// effective value: n <= 0 resets to GOMAXPROCS-at-use, n > maxThreads
// saturates. The budget is read by Workers(0) at each call, so a change
// applies to every subsequent parallel region in the process.
func SetThreads(n int) int {
	if n <= 0 {
		threads.Store(0)
		return Threads()
	}
	n = min(n, maxThreads)
	threads.Store(int64(n))
	return n
}

// Workers resolves a per-call worker request: n <= 0 defers to the
// process budget, anything else is clamped to [1, maxThreads].
func Workers(n int) int {
	if n <= 0 {
		return Threads()
	}
	return min(n, maxThreads)
}

// Split shrinks a worker count so every chunk of an n-element range keeps
// at least minGrain elements — the guard that stops fine-grained levels
// (tiny BFS frontiers, short tuple tables) from paying goroutine fan-out
// for a handful of indices. Deterministic in (workers, n, minGrain).
func Split(workers, n, minGrain int) int {
	if minGrain < 1 {
		minGrain = 1
	}
	if byGrain := n / minGrain; workers > byGrain {
		workers = byGrain
	}
	return max(workers, 1)
}

// For runs fn over [0, n) split into exactly `workers` contiguous chunks:
// fn(w, lo, hi) handles indices [lo, hi) as worker w in 0..workers-1.
// Chunk boundaries depend only on (workers, n), so per-worker partials
// indexed by w are deterministic and mergeable in worker order. With
// workers <= 1 (or n <= 1) fn runs inline on the calling goroutine —
// no goroutines, no atomics, no barrier.
//
// fn must not assume chunks run in any order, and cross-chunk writes must
// use atomic claims; everything written before For returns is visible to
// the caller (the join is a happens-before edge).
func For(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		obsTasksInline.Inc()
		fn(0, 0, n)
		return
	}
	obsTasks.Inc()
	obsWorkers.Set(float64(workers))
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			fn(w, w*n/workers, (w+1)*n/workers)
			busy[w] = time.Since(start)
		}(w)
	}
	start := time.Now()
	fn(0, 0, n/workers)
	busy[0] = time.Since(start)
	wg.Wait()

	var total, peak time.Duration
	for _, d := range busy {
		total += d
		if d > peak {
			peak = d
		}
	}
	if total > 0 {
		obsImbalance.Set(float64(peak) * float64(workers) * 1000 / float64(total))
	}
}

// Fault is one worker's first failure in an ascending scan: the index it
// occurred at and the error built at the point of detection. Workers fill
// exactly one Fault (their chunk's first, then stop scanning), so
// FirstFault over the per-worker slice recovers the globally first
// failure.
type Fault struct {
	At  int
	Err error
}

// FirstFault reduces per-worker faults to the one with the smallest
// index — for ascending scans, exactly the error a serial loop reports
// first — or nil when no worker failed. Ties (impossible for disjoint
// chunks) break toward the lower worker index, keeping the reduction
// deterministic regardless.
func FirstFault(faults []Fault) error {
	best := -1
	for w := range faults {
		if faults[w].Err == nil {
			continue
		}
		if best < 0 || faults[w].At < faults[best].At {
			best = w
		}
	}
	if best < 0 {
		return nil
	}
	return faults[best].Err
}
