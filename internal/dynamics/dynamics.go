// Package dynamics implements decentralized learning dynamics for the Edge
// model Π_1(G) with a single attacker — the constant-sum case. Neither
// player needs to know the equilibrium theory: fictitious play and
// multiplicative weights both converge to the minimax value, giving the
// library a third, independent route (after the structural constructions
// and the LP oracle) to the same number, and modelling how real attackers
// and defenders could *reach* the equilibrium by repeated interaction.
package dynamics

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/obs"
)

// Learning-dynamics metrics (catalogued in OBSERVABILITY.md): completed
// runs per algorithm and the distribution of horizon lengths — the
// "rounds until the caller accepted convergence" signal. The final bound
// gap per run lands in the matching ".gap" histogram (unitless
// probability width), so widening convergence shows up without reading
// any table.
var (
	obsFPRuns   = obs.Default().Counter("dynamics.fictitious_play.runs")
	obsFPRounds = obs.Default().Histogram("dynamics.fictitious_play.rounds")
	obsFPGap    = obs.Default().Histogram("dynamics.fictitious_play.gap")
	obsMWRuns   = obs.Default().Counter("dynamics.multiplicative_weights.runs")
	obsMWRounds = obs.Default().Histogram("dynamics.multiplicative_weights.rounds")
	obsMWGap    = obs.Default().Histogram("dynamics.multiplicative_weights.gap")
	obsRMRuns   = obs.Default().Counter("dynamics.regret_matching.runs")
	obsRMRounds = obs.Default().Histogram("dynamics.regret_matching.rounds")
	obsRMGap    = obs.Default().Histogram("dynamics.regret_matching.gap")
)

// ErrBadRounds rejects non-positive round counts.
var ErrBadRounds = errors.New("dynamics: rounds must be positive")

// FPResult reports a fictitious-play run.
type FPResult struct {
	Rounds int
	// LowerBound is the catch probability the defender's empirical mixture
	// guarantees: min_v P_emp(Hit(v)). Exact rational.
	LowerBound *big.Rat
	// UpperBound is the cap the attacker's empirical mixture enforces:
	// max_e (empirical mass on e's endpoints). Exact rational.
	UpperBound *big.Rat
	// AttackerCounts[v] is how often the attacker best-responded to v.
	AttackerCounts []int
	// DefenderCounts[e] is how often the defender best-responded with edge
	// index e.
	DefenderCounts []int
}

// Gap returns UpperBound − LowerBound; by Robinson's theorem it converges
// to zero as rounds grow, squeezing the game value.
func (r FPResult) Gap() *big.Rat {
	return new(big.Rat).Sub(r.UpperBound, r.LowerBound)
}

// Brackets reports whether the exact game value lies within the computed
// bounds — a sanity invariant tests assert against the LP oracle.
func (r FPResult) Brackets(value *big.Rat) bool {
	return r.LowerBound.Cmp(value) <= 0 && value.Cmp(r.UpperBound) <= 0
}

// FictitiousPlay runs simultaneous fictitious play on Π_1(G) with one
// attacker: each round both players best-respond to the opponent's
// empirical history (ties broken by lowest index, making the process
// deterministic). All bookkeeping is integer-exact; the returned bounds
// are exact rationals that bracket the minimax value at every horizon.
func FictitiousPlay(g *graph.Graph, rounds int) (FPResult, error) {
	if rounds <= 0 {
		return FPResult{}, fmt.Errorf("%w: %d", ErrBadRounds, rounds)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		return FPResult{}, errors.New("dynamics: graph has no edges")
	}
	if g.HasIsolatedVertex() {
		return FPResult{}, game.ErrIsolatedVertex
	}
	n, m := g.NumVertices(), g.NumEdges()

	attackerCounts := make([]int, n) // vertex play counts
	defenderCounts := make([]int, m) // edge play counts
	hitCount := make([]int, n)       // Σ_{e ∋ v} defenderCounts[e]

	for t := 0; t < rounds; t++ {
		// Attacker best response: least-hit vertex so far.
		bestV := 0
		for v := 1; v < n; v++ {
			if hitCount[v] < hitCount[bestV] {
				bestV = v
			}
		}
		// Defender best response: edge with maximum attacker mass so far.
		bestE, bestLoad := 0, -1
		for e := 0; e < m; e++ {
			edge := g.EdgeByID(e)
			load := attackerCounts[edge.U] + attackerCounts[edge.V]
			if load > bestLoad {
				bestE, bestLoad = e, load
			}
		}
		// Simultaneous update.
		attackerCounts[bestV]++
		defenderCounts[bestE]++
		chosen := g.EdgeByID(bestE)
		hitCount[chosen.U]++
		hitCount[chosen.V]++
	}

	// Defender guarantee: min over vertices of empirical hit probability.
	minHit := hitCount[0]
	for _, h := range hitCount[1:] {
		if h < minHit {
			minHit = h
		}
	}
	// Attacker cap: max over edges of empirical endpoint mass.
	maxLoad := 0
	for e := 0; e < m; e++ {
		edge := g.EdgeByID(e)
		if load := attackerCounts[edge.U] + attackerCounts[edge.V]; load > maxLoad {
			maxLoad = load
		}
	}
	res := FPResult{
		Rounds:         rounds,
		LowerBound:     big.NewRat(int64(minHit), int64(rounds)),
		UpperBound:     big.NewRat(int64(maxLoad), int64(rounds)),
		AttackerCounts: attackerCounts,
		DefenderCounts: defenderCounts,
	}
	obsFPRuns.Inc()
	obsFPRounds.Observe(float64(rounds))
	gap, _ := res.Gap().Float64()
	obsFPGap.Observe(gap)
	return res, nil
}

// MWResult reports a multiplicative-weights (Hedge) run.
type MWResult struct {
	Rounds int
	// Value is the average-play estimate of the game value.
	Value float64
	// LowerBound / UpperBound bracket the value via the players' average
	// mixed strategies (float arithmetic; width shrinks as O(sqrt(log/T))).
	LowerBound float64
	UpperBound float64
	// AttackerAvg and DefenderAvg are the time-averaged mixed strategies.
	AttackerAvg []float64
	DefenderAvg []float64
}

// MultiplicativeWeights runs the Hedge algorithm for both players of
// Π_1(G) with one attacker: the attacker maintains weights over vertices
// (loss = caught), the defender over edges (loss = missed). The
// time-averaged strategies converge to equilibrium at the no-regret rate
// O(sqrt(ln N / T)). eta <= 0 selects the standard sqrt(8 ln N / T) step.
func MultiplicativeWeights(g *graph.Graph, rounds int, eta float64) (MWResult, error) {
	if rounds <= 0 {
		return MWResult{}, fmt.Errorf("%w: %d", ErrBadRounds, rounds)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		return MWResult{}, errors.New("dynamics: graph has no edges")
	}
	if g.HasIsolatedVertex() {
		return MWResult{}, game.ErrIsolatedVertex
	}
	n, m := g.NumVertices(), g.NumEdges()
	if eta <= 0 {
		maxN := n
		if m > maxN {
			maxN = m
		}
		eta = math.Sqrt(8 * math.Log(float64(maxN)) / float64(rounds))
	}

	atkW := uniform(n)
	defW := uniform(m)
	atkAvg := make([]float64, n)
	defAvg := make([]float64, m)

	for t := 0; t < rounds; t++ {
		atkP := normalize(atkW)
		defP := normalize(defW)
		for v := range atkAvg {
			atkAvg[v] += atkP[v]
		}
		for e := range defAvg {
			defAvg[e] += defP[e]
		}
		// Expected hit probability of each vertex under defP; expected
		// attacker mass on each edge under atkP.
		hit := make([]float64, n)
		for e := 0; e < m; e++ {
			edge := g.EdgeByID(e)
			hit[edge.U] += defP[e]
			hit[edge.V] += defP[e]
		}
		for v := 0; v < n; v++ {
			// Attacker loss = probability of being caught at v.
			atkW[v] *= math.Exp(-eta * hit[v])
		}
		for e := 0; e < m; e++ {
			edge := g.EdgeByID(e)
			catch := atkP[edge.U] + atkP[edge.V]
			// Defender loss = probability of missing with edge e.
			defW[e] *= math.Exp(-eta * (1 - catch))
		}
		rescale(atkW)
		rescale(defW)
	}
	for v := range atkAvg {
		atkAvg[v] /= float64(rounds)
	}
	for e := range defAvg {
		defAvg[e] /= float64(rounds)
	}

	// Bounds from the average strategies.
	hit := make([]float64, n)
	for e := 0; e < m; e++ {
		edge := g.EdgeByID(e)
		hit[edge.U] += defAvg[e]
		hit[edge.V] += defAvg[e]
	}
	lower := math.Inf(1)
	for _, h := range hit {
		lower = math.Min(lower, h)
	}
	upper := 0.0
	for e := 0; e < m; e++ {
		edge := g.EdgeByID(e)
		upper = math.Max(upper, atkAvg[edge.U]+atkAvg[edge.V])
	}
	obsMWRuns.Inc()
	obsMWRounds.Observe(float64(rounds))
	obsMWGap.Observe(upper - lower)
	return MWResult{
		Rounds:      rounds,
		Value:       (lower + upper) / 2,
		LowerBound:  lower,
		UpperBound:  upper,
		AttackerAvg: atkAvg,
		DefenderAvg: defAvg,
	}, nil
}

func uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func normalize(w []float64) []float64 {
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	p := make([]float64, len(w))
	for i, x := range w {
		p[i] = x / sum
	}
	return p
}

// rescale guards against underflow on long runs by renormalizing the
// weight vector to mean 1.
func rescale(w []float64) {
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	// Weights are non-negative, so <= 0 means total underflow: reset.
	if sum <= 0 {
		for i := range w {
			w[i] = 1
		}
		return
	}
	mean := sum / float64(len(w))
	for i := range w {
		w[i] /= mean
	}
}
