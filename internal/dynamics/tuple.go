package dynamics

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// FictitiousPlayTuple runs fictitious play on the full Tuple model Π_k(G)
// with one attacker. The attacker best-responds with a least-hit vertex;
// the defender best-responds with a k-edge tuple maximizing the coverage
// of the attacker's empirical counts — an exact integer branch-and-bound
// (the same maximization the equilibrium verifier performs, specialized to
// integer loads for speed). Bounds are exact rationals bracketing the
// k-power minimax value.
//
// Cost per round is the branch-and-bound search; keep graphs moderate
// (tens of edges) and rounds in the low thousands.
func FictitiousPlayTuple(g *graph.Graph, k, rounds int) (FPResult, error) {
	if rounds <= 0 {
		return FPResult{}, fmt.Errorf("%w: %d", ErrBadRounds, rounds)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		return FPResult{}, errors.New("dynamics: graph has no edges")
	}
	if g.HasIsolatedVertex() {
		return FPResult{}, game.ErrIsolatedVertex
	}
	if k < 1 || k > g.NumEdges() {
		return FPResult{}, fmt.Errorf("%w: k=%d, m=%d", game.ErrBadK, k, g.NumEdges())
	}
	n := g.NumVertices()

	attackerCounts := make([]int, n)
	defenderCounts := make([]int, g.NumEdges()) // per-edge occurrence counts
	hitCount := make([]int, n)

	scratch := newIntCoverage(g, k)
	for t := 0; t < rounds; t++ {
		bestV := 0
		for v := 1; v < n; v++ {
			if hitCount[v] < hitCount[bestV] {
				bestV = v
			}
		}
		tuple := scratch.maxCoverage(attackerCounts)
		attackerCounts[bestV]++
		coveredOnce := make(map[int]bool, 2*k)
		for _, id := range tuple {
			defenderCounts[id]++
			e := g.EdgeByID(id)
			coveredOnce[e.U] = true
			coveredOnce[e.V] = true
		}
		for v := range coveredOnce {
			hitCount[v]++
		}
	}

	minHit := hitCount[0]
	for _, h := range hitCount[1:] {
		if h < minHit {
			minHit = h
		}
	}
	// Attacker cap: the best coverage any tuple extracts from the final
	// empirical attacker distribution.
	bestTuple := scratch.maxCoverage(attackerCounts)
	maxLoad := 0
	seen := make(map[int]bool, 2*k)
	for _, id := range bestTuple {
		e := g.EdgeByID(id)
		if !seen[e.U] {
			seen[e.U] = true
			maxLoad += attackerCounts[e.U]
		}
		if !seen[e.V] {
			seen[e.V] = true
			maxLoad += attackerCounts[e.V]
		}
	}
	return FPResult{
		Rounds:         rounds,
		LowerBound:     big.NewRat(int64(minHit), int64(rounds)),
		UpperBound:     big.NewRat(int64(maxLoad), int64(rounds)),
		AttackerCounts: attackerCounts,
		DefenderCounts: defenderCounts,
	}, nil
}

// intCoverage is an integer-weight max-coverage solver over k-edge
// subsets: branch and bound in descending-potential order, reusing buffers
// across rounds.
type intCoverage struct {
	g       *graph.Graph
	k       int
	order   []int
	pot     []int
	prefix  []int
	covered []int
	chosen  []int
	best    int
	bestSet []int
	loads   []int
}

func newIntCoverage(g *graph.Graph, k int) *intCoverage {
	m := g.NumEdges()
	return &intCoverage{
		g:       g,
		k:       k,
		order:   make([]int, m),
		pot:     make([]int, m),
		prefix:  make([]int, m+1),
		covered: make([]int, g.NumVertices()),
		chosen:  make([]int, 0, k),
		bestSet: make([]int, k),
	}
}

// maxCoverage returns edge indices of a k-tuple maximizing the summed
// loads of covered vertices. The returned slice is valid until the next
// call.
func (c *intCoverage) maxCoverage(loads []int) []int {
	m := c.g.NumEdges()
	c.loads = loads
	for i := range c.order {
		c.order[i] = i
	}
	for id := 0; id < m; id++ {
		e := c.g.EdgeByID(id)
		c.pot[id] = loads[e.U] + loads[e.V]
	}
	sort.SliceStable(c.order, func(a, b int) bool { return c.pot[c.order[a]] > c.pot[c.order[b]] })
	c.prefix[0] = 0
	for i, id := range c.order {
		c.prefix[i+1] = c.prefix[i] + c.pot[id]
	}
	for i := range c.covered {
		c.covered[i] = 0
	}
	c.best = -1
	c.chosen = c.chosen[:0]
	c.dfs(0, 0)
	return c.bestSet
}

func (c *intCoverage) dfs(pos, current int) {
	if len(c.chosen) == c.k {
		if current > c.best {
			c.best = current
			copy(c.bestSet, c.chosen)
		}
		return
	}
	remaining := c.k - len(c.chosen)
	m := c.g.NumEdges()
	if m-pos < remaining {
		return
	}
	hi := pos + remaining
	if hi > m {
		hi = m
	}
	if current+c.prefix[hi]-c.prefix[pos] <= c.best {
		return
	}
	id := c.order[pos]
	e := c.g.EdgeByID(id)
	add := 0
	if c.covered[e.U] == 0 {
		add += c.loads[e.U]
	}
	if c.covered[e.V] == 0 {
		add += c.loads[e.V]
	}
	c.covered[e.U]++
	c.covered[e.V]++
	c.chosen = append(c.chosen, id)
	c.dfs(pos+1, current+add)
	c.chosen = c.chosen[:len(c.chosen)-1]
	c.covered[e.U]--
	c.covered[e.V]--
	c.dfs(pos+1, current)
}
